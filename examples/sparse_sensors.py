"""Sparse, irregular sensor sampling (paper Sec. 2).

"No assumption is made on the distribution of the measurement points,
thus the functional data representation can deal with sparse
measurements as well as uniform ones."

This example simulates an acquisition system in which every run is
sampled at its own irregular time points (event-driven logging, packet
loss, variable sampling rates) and shows the complete workflow:

  IrregularFData -> penalized B-spline fits -> common evaluation grid
  -> curvature mapping -> detector,

with a correlation fault planted in a few runs.

Run:  python examples/sparse_sensors.py
"""

import numpy as np

from repro import roc_auc
from repro.detectors import KNNDetector
from repro.fda import (
    BasisSmoother,
    BSplineBasis,
    IrregularFData,
    MultivariateBasisFData,
)
from repro.geometry import CurvatureMapping


def simulate(n_normal=40, n_faulty=5, random_state=0):
    rng = np.random.default_rng(random_state)
    points, x1_values, x2_values = [], [], []
    labels = []
    for i in range(n_normal + n_faulty):
        faulty = i >= n_normal
        m = int(rng.integers(35, 70))  # each run has its own sample count
        t = np.sort(rng.uniform(0.0, 1.0, m))
        t[0], t[-1] = 0.0, 1.0
        phase = rng.uniform(-0.1, 0.1)
        delta = rng.uniform(0.9, 1.2) if faulty else 0.0  # broken coupling
        arg = 2 * np.pi * t + phase
        x1 = 2 * np.sin(arg) + 0.03 * rng.standard_normal(m)
        x2 = 2 * np.cos(arg + delta) + 0.03 * rng.standard_normal(m)
        points.append(t)
        x1_values.append(x1)
        x2_values.append(x2)
        labels.append(int(faulty))
    return points, x1_values, x2_values, np.array(labels)


def main() -> None:
    points, x1_values, x2_values, labels = simulate()
    sizes = sorted(len(t) for t in points)
    print(f"{len(points)} runs, per-run sample counts from {sizes[0]} to {sizes[-1]} "
          f"(no common grid), {labels.sum()} faulty")

    # Fit each parameter from its irregular observations.
    basis = BSplineBasis((0.0, 1.0), n_basis=14)
    smoother = BasisSmoother(basis, smoothing=1e-4)
    fit = MultivariateBasisFData([
        smoother.fit_irregular(IrregularFData(points, x1_values)),
        smoother.fit_irregular(IrregularFData(points, x2_values)),
    ])

    # Everything downstream is identical to the common-grid case.
    eval_grid = np.linspace(0.0, 1.0, 85)
    kappa = CurvatureMapping().transform(fit, eval_grid)
    features = np.sign(kappa.values) * np.log1p(np.abs(kappa.values))

    detector = KNNDetector(5).fit(features[labels == 0])
    scores = detector.score_samples(features)
    auc = roc_auc(scores, labels)
    print(f"curvature-pipeline AUC from irregular samples: {auc:.3f}")
    assert auc > 0.95


if __name__ == "__main__":
    main()
