"""Outlyingness composition — the paper's future-work proposal (Sec. 5).

"Given a detected outlier, ideally one would like to access the amount
of the different outlyingness classes."  The paper sketches the recipe:
train one detector (with the mapping function) per known outlier class
and read each member's contribution off the ensemble.

This example runs :class:`repro.OutlierCompositionEnsemble` on a mixed
test set and prints, for every flagged sample, its dominant class and
the class shares — turning the black-box score into a diagnosis.

Run:  python examples/outlyingness_composition.py
"""

import numpy as np

from repro.core.ensemble import OutlierCompositionEnsemble
from repro.data.synthetic import SyntheticMFD
from repro.fda import MFDataGrid


def main() -> None:
    factory = SyntheticMFD(random_state=42)
    classes = ["magnitude_isolated", "shape_persistent", "correlation"]

    # Per-class training sets, as the paper proposes (in practice these
    # come from depth-based pre-detection of "easy" examples per class).
    training_sets = {}
    for kind in classes:
        inliers = factory.inliers(40)
        outliers = factory.outliers(4, kind)
        training_sets[kind] = MFDataGrid(
            np.concatenate([inliers, outliers]), factory.grid
        )

    ensemble = OutlierCompositionEnsemble(classes, n_basis=16, random_state=0)
    ensemble.fit(training_sets)

    # Mixed test set: 20 inliers + 2 of each outlier class.
    parts = [factory.inliers(20)] + [factory.outliers(2, kind) for kind in classes]
    truth = ["inlier"] * 20 + [k for kind in classes for k in (kind, kind)]
    test = MFDataGrid(np.concatenate(parts), factory.grid)

    report = ensemble.composition(test)
    order = np.argsort(-report.total)

    print(f"{'rank':>4s}  {'total':>7s}  {'true class':22s}  "
          f"{'dominant member':22s}  shares " + " / ".join(classes))
    print("-" * 110)
    for rank, i in enumerate(order[:10], start=1):
        shares = " / ".join(f"{s:.2f}" for s in report.shares[i])
        print(f"{rank:>4d}  {report.total[i]:7.2f}  {truth[i]:22s}  "
              f"{report.dominant_class(i):22s}  {shares}")

    flagged = order[:6]
    hits = sum(truth[i] != "inlier" for i in flagged)
    print(f"\ntop-6 by ensemble score: {hits}/6 are true outliers")


if __name__ == "__main__":
    main()
