"""Why geometry beats depth aggregation — the paper's three issues, live.

Section 1.2 lists three failure modes of depth-based MFD outlier
detection:

(1) insensitivity to persistent outliers (pointwise depths look normal),
(2) masking of isolated outliers by the integral aggregation,
(3) blindness to abnormal correlation between parameters.

This example constructs a minimal dataset for each issue and shows the
numbers: the pointwise-depth profile, its integral vs infimum
aggregation, and the curvature alternative.

Run:  python examples/depth_vs_geometry.py
"""

import numpy as np

from repro import roc_auc
from repro.core.methods import MappedDetectorMethod
from repro.depth import aggregate_depth, pointwise_depth_profile
from repro.fda import MFDataGrid


def issue_2_masking() -> None:
    """Isolated outlier masked by the integral, caught by the infimum."""
    rng = np.random.default_rng(0)
    grid = np.linspace(0, 1, 100)
    n = 30
    values = np.stack(
        [
            np.sin(2 * np.pi * grid)[None, :] + 0.1 * rng.standard_normal((n, 100)),
            np.cos(2 * np.pi * grid)[None, :] + 0.1 * rng.standard_normal((n, 100)),
        ],
        axis=2,
    )
    # Sample 29: perfectly central except one violent spike.
    values[29] = values[:28].mean(axis=0)
    values[29, 50, 0] += 5.0
    data = MFDataGrid(values, grid)
    labels = np.r_[np.zeros(29, int), np.ones(1, int)]

    profile = pointwise_depth_profile(data, notion="projection", random_state=0)
    integral = aggregate_depth(profile, grid, "integral")
    infimum = aggregate_depth(profile, grid, "infimum")

    print("Issue (2) — isolated outlier vs aggregation:")
    print(f"  integral aggregation: outlier rank "
          f"{int(np.argsort(integral).tolist().index(29)) + 1} of 30 "
          f"(1 = shallowest)")
    print(f"  infimum  aggregation: outlier rank "
          f"{int(np.argsort(infimum).tolist().index(29)) + 1} of 30")
    assert infimum.argmin() == 29


def issue_3_correlation() -> None:
    """Correlation outlier: typical marginals, abnormal joint path."""
    from repro.data import make_taxonomy_dataset
    from repro.depth import dirout_scores

    data, labels = make_taxonomy_dataset(
        "correlation", n_inliers=60, n_outliers=8, random_state=4
    )
    dirout_auc = roc_auc(dirout_scores(data, random_state=0), labels)
    method = MappedDetectorMethod("iforest", n_estimators=200)
    idx = np.arange(data.n_samples)
    curvature_auc = roc_auc(
        method.score_dataset(data, idx, idx, random_state=0), labels
    )
    print("\nIssue (3) — abnormal correlation between parameters:")
    print(f"  Dir.out (pointwise depth) AUC : {dirout_auc:.3f}")
    print(f"  curvature pipeline AUC        : {curvature_auc:.3f}")


def main() -> None:
    issue_2_masking()
    issue_3_correlation()


if __name__ == "__main__":
    main()
