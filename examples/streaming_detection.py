"""Streaming detection end to end: drift, bursts, adaptive thresholds.

A fixed-reference detector degrades the moment the underlying process
moves: post-drift inliers score as outliers forever.  This example
drives the full streaming subsystem over a synthetic stream with an
injected regime change and outlier bursts:

1. generate a drifting bivariate stream with
   :func:`repro.data.make_drifting_stream` (the inlier process itself
   shifts halfway through; two chunks carry genuine shift outliers),
2. score it online with a :class:`repro.streaming.StreamingDetector`
   (FUNTA kind, sliding reference window, incremental tangent-angle
   cache),
3. adapt the decision boundary with a streaming quantile threshold,
4. watch the depth-rank KS monitor flag the regime change, and
5. check the flags: burst curves should rank above the adaptive
   threshold, while drifted inliers stop being flagged once the sliding
   window has absorbed the new regime (a quantile threshold always
   flags ~contamination of the traffic — the question is *which*
   curves).

Run:  python examples/streaming_detection.py
"""

from repro.data import make_drifting_stream
from repro.streaming import (
    DepthRankDrift,
    SlidingWindow,
    StreamingDetector,
    StreamingQuantileThreshold,
)

N_CHUNKS = 60
CHUNK_SIZE = 16
DRIFT_AT = 30
BURSTS = (18, 46)


def main() -> None:
    stream = make_drifting_stream(
        n_chunks=N_CHUNKS,
        chunk_size=CHUNK_SIZE,
        n_points=64,
        drift_at=DRIFT_AT,
        drift_phase=0.9,
        drift_scale=1.35,
        burst_at=BURSTS,
        burst_size=4,
        burst_kind="shift_isolated",
        random_state=11,
    )

    detector = StreamingDetector(
        "funta",
        SlidingWindow(160),
        threshold=StreamingQuantileThreshold(contamination=0.03, capacity=256),
        drift=DepthRankDrift(baseline_size=128, recent_size=96, alpha=0.01,
                             patience=1, min_gap=32),
        min_reference=32,
    )

    flagged_true = flagged_false = n_outliers = 0
    drift_chunks = []
    for chunk_idx, (chunk, labels) in enumerate(stream):
        result = detector.process(chunk)
        if result.drift is not None:
            drift_chunks.append(chunk_idx)
        if result.flags is None:
            continue
        n_outliers += int(labels.sum())
        flagged_true += int((result.flags & (labels == 1)).sum())
        flagged_false += int((result.flags & (labels == 0)).sum())

    stats = detector.stats()
    print(f"stream: {N_CHUNKS} chunks x {CHUNK_SIZE} curves, drift ramps in "
          f"at chunk {DRIFT_AT}, bursts at {BURSTS}")
    print(f"scored {stats['n_scored']} curves against a sliding reference "
          f"(incremental caches: {stats['incremental']})")
    print(f"flagged {flagged_true}/{n_outliers} injected burst outliers, "
          f"{flagged_false} false alarms among scored inliers")
    print(f"drift events at chunks: {drift_chunks or 'none'} "
          f"(KS statistic {detector.drift.last_statistic:.3f} on the last check)")

    if not drift_chunks:
        raise SystemExit("expected the KS monitor to flag the injected drift")
    if min(drift_chunks) < DRIFT_AT - 2:
        raise SystemExit("drift fired before the injected regime change")
    if flagged_true == 0:
        raise SystemExit("expected at least some burst outliers to be flagged")
    print("OK: drift localized after the regime change, bursts flagged")


if __name__ == "__main__":
    main()
