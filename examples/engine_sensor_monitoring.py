"""Engine sensor monitoring — the paper's motivating industrial scenario.

The introduction motivates MFD outlier detection with complex-system
monitoring (the first author works on aircraft engines): p correlated
sensor channels per test run, and a fault that shows up as an *abnormal
relationship between channels* rather than an extreme value on any one
of them.

This example simulates that setting with a p = 3 system:

* channel 1 — shaft speed-like slow oscillation,
* channel 2 — temperature-like response that lags channel 1,
* channel 3 — pressure-like mixture of both,

where faulty runs have a broken lag between channels 1 and 2 (e.g. a
degraded thermal path).  All marginal ranges stay normal — classical
per-channel threshold monitoring sees nothing — but the run's path in
R^3 bends differently, and the curvature pipeline flags it.

Run:  python examples/engine_sensor_monitoring.py
"""

import numpy as np

from repro import GeometricOutlierPipeline, IsolationForest, roc_auc
from repro.data.noise import smooth_gaussian_process, white_noise
from repro.fda import MFDataGrid


def simulate_runs(n_normal: int = 60, n_faulty: int = 6, n_points: int = 120,
                  random_state: int = 0):
    """Simulate engine test runs as p = 3 multivariate functional data."""
    rng = np.random.default_rng(random_state)
    grid = np.linspace(0.0, 1.0, n_points)
    runs = np.empty((n_normal + n_faulty, n_points, 3))
    labels = np.r_[np.zeros(n_normal, dtype=int), np.ones(n_faulty, dtype=int)]

    for i in range(n_normal + n_faulty):
        faulty = labels[i] == 1
        # Healthy thermal lag ~ 0.08; the fault breaks the coupling.
        lag = rng.uniform(0.06, 0.10) if not faulty else rng.uniform(0.18, 0.25)
        phase = rng.uniform(-0.1, 0.1)
        speed = np.sin(2 * np.pi * (grid + phase))
        temperature = 0.9 * np.sin(2 * np.pi * (grid + phase - lag))
        pressure = 0.5 * speed + 0.5 * temperature
        channels = np.stack([speed, temperature, pressure], axis=1)
        drift = smooth_gaussian_process(
            3, grid, amplitude=0.05, length_scale=0.3, random_state=rng
        ).T
        noise = white_noise(3, grid, sigma=0.02, random_state=rng).T
        runs[i] = channels + drift + noise
    return MFDataGrid(runs, grid), labels


def main() -> None:
    data, labels = simulate_runs()
    print(f"simulated {data.n_samples} test runs, p={data.n_parameters} channels, "
          f"{labels.sum()} faulty")

    # Per-channel extreme-value check (what classical monitoring does):
    per_channel_max = np.abs(data.values).max(axis=1)  # (n, p)
    healthy_envelope = per_channel_max[labels == 0].max(axis=0)
    flagged_by_threshold = (per_channel_max[labels == 1] > healthy_envelope).any()
    print(f"any faulty run beyond the healthy per-channel envelope? "
          f"{flagged_by_threshold}")

    # The geometric pipeline on the R^3 paths.
    pipeline = GeometricOutlierPipeline(
        IsolationForest(n_estimators=200, random_state=0)
    )
    scores = pipeline.fit(data).score_samples(data)
    auc = roc_auc(scores, labels)
    ranks = np.argsort(-scores)
    top = ranks[: labels.sum()]
    print(f"curvature-pipeline AUC: {auc:.3f}")
    print(f"faulty runs found in top-{labels.sum()}: {labels[top].sum()} / {labels.sum()}")

    assert not flagged_by_threshold, "fault should be invisible to thresholds"
    assert auc > 0.9


if __name__ == "__main__":
    main()
