"""A tour of the functional-outlier taxonomy (Hubert et al. 2015).

The paper's Section 1.1 taxonomy distinguishes isolated outliers
(extreme for few t) from persistent ones (never extreme, deviating for
many t), plus mixed types.  This example generates one population per
class and scores it with all four Figure-3 methods, showing where each
method's blind spots are — including the instructive negative result
that a *shift-isolated* outlier traversing the same path is invisible to
the curvature (a parametrization-invariant feature).

Run:  python examples/outlier_taxonomy_tour.py
"""

import numpy as np

from repro import make_taxonomy_dataset, roc_auc
from repro.core.methods import DirOutMethod, FuntaMethod, MappedDetectorMethod
from repro.data import OUTLIER_CLASSES

DESCRIPTIONS = {
    "magnitude_isolated": "narrow extreme peak on one parameter",
    "shift_isolated": "horizontal time shift (same path image!)",
    "shape_persistent": "Lissajous path instead of a circle",
    "amplitude_persistent": "uniformly scaled path",
    "correlation": "broken phase relation between parameters",
    "mixed": "Lissajous path + isolated peak",
}


def main() -> None:
    methods = [
        DirOutMethod(),
        FuntaMethod(),
        MappedDetectorMethod("iforest", n_estimators=200),
        MappedDetectorMethod("ocsvm"),
    ]
    header = f"{'class':22s} {'description':42s} " + " ".join(
        f"{m.name:>15s}" for m in methods
    )
    print(header)
    print("-" * len(header))
    for kind in OUTLIER_CLASSES:
        data, labels = make_taxonomy_dataset(
            kind, n_inliers=60, n_outliers=8, random_state=11
        )
        idx = np.arange(data.n_samples)
        cells = []
        for method in methods:
            scores = method.score_dataset(data, idx, idx, random_state=3)
            cells.append(f"{roc_auc(scores, labels):15.3f}")
        print(f"{kind:22s} {DESCRIPTIONS[kind]:42s} " + " ".join(cells))

    print(
        "\nNotes: curvature methods dominate on correlation/mixed/shape "
        "classes (the paper's target); Dir.out wins on pure magnitude; "
        "shift-isolated outliers keep the same path image, so the "
        "curvature mapping cannot see them — combine mappings (e.g. "
        "CompositeMapping with SpeedMapping) to cover that class."
    )


if __name__ == "__main__":
    main()
