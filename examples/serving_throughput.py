"""Persist & serve: fit once, save, reload, score traffic fast.

The experiment harness fits a pipeline per protocol cell; production
traffic is the opposite shape — fit *once*, persist the fitted pipeline,
and score incoming curve batches indefinitely.  This example walks that
full path:

1. fit the paper's pipeline on a training window,
2. save it with :func:`repro.serving.save_pipeline` (``.npz`` + JSON
   manifest, no pickle),
3. reload it into a :class:`repro.serving.ScoringService`,
4. push micro-batched and streamed traffic through it, and
5. show the factorization cache making warm batches cheap: after the
   first batch on a grid, scoring refactorizes nothing.

Run:  python examples/serving_throughput.py
"""

import tempfile
import time

import numpy as np

from repro import GeometricOutlierPipeline, IsolationForest, make_taxonomy_dataset
from repro.fda.fdata import MFDataGrid
from repro.serving import ScoringService, save_pipeline


def main() -> None:
    # 1. Fit once on a training window.
    train, _ = make_taxonomy_dataset("correlation", n_inliers=80, n_outliers=8, random_state=0)
    pipeline = GeometricOutlierPipeline(
        IsolationForest(n_estimators=100, random_state=0), n_basis=15
    )
    pipeline.fit(train)
    print(f"fitted: basis sizes {pipeline.selected_n_basis_} on "
          f"{train.n_samples} training curves")

    # 2/3. Save, then reload into a serving context (fresh cache).
    with tempfile.TemporaryDirectory() as tmp:
        save_pipeline(pipeline, tmp)
        service = ScoringService()
        service.load("ecg-v1", tmp)
        print(f"persisted + reloaded from {tmp}")

        # Simulated traffic: 200 batches of 5 curves on the training grid.
        rng = np.random.default_rng(1)
        batches = []
        for _ in range(200):
            base = train.values[rng.integers(0, train.n_samples, size=5)]
            noisy = base + 0.02 * rng.standard_normal(base.shape)
            batches.append(MFDataGrid(noisy, train.grid))
        n_curves = sum(b.n_samples for b in batches)

        # 4a. Micro-batched scoring: submit everything, flush once.
        before = service.context.cache.stats.copy()
        start = time.perf_counter()
        tickets = [service.submit("ecg-v1", batch) for batch in batches]
        service.flush()
        elapsed = time.perf_counter() - start
        delta = service.context.cache.stats - before
        print(f"\nmicro-batched: {n_curves} curves in {elapsed:.3f}s "
              f"({n_curves / elapsed:,.0f} curves/sec)")
        print(f"  factorizations during serving: {delta.factorizations} "
              f"(hits: {delta.factorization_hits})")
        scores = np.concatenate([t.result() for t in tickets])

        # 4b. Streaming a large dataset in bounded memory.
        big = MFDataGrid(np.concatenate([b.values for b in batches]), train.grid)
        start = time.perf_counter()
        streamed = np.concatenate(list(service.score_stream("ecg-v1", big, chunk_size=100)))
        elapsed = time.perf_counter() - start
        print(f"streamed:      {big.n_samples} curves in {elapsed:.3f}s "
              f"({big.n_samples / elapsed:,.0f} curves/sec)")
        assert np.allclose(scores, streamed, atol=1e-12)
        print("  micro-batched and streamed scores agree")

        print(f"\nservice stats: {service.stats()}")


if __name__ == "__main__":
    main()
