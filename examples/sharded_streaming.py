"""Sharded streaming: N shard states, single-stream answers.

Partitioning a stream across workers normally changes the answers —
each partition sees a different reference sample.  The sharded tier
avoids that by making every piece of reference state *mergeable*: the
shard windows recombine into the exact single-stream ring, per-shard
depth partials sum to the full-reference statistic, the federated
threshold reads the quantile of the union score window, and the
federated drift monitor pools per-shard KS buffers into the global
ECDF before deciding.  This example proves it end to end:

1. drive one drifting stream through a single-stream
   :class:`repro.streaming.StreamingDetector`,
2. drive the *same* stream through
   :class:`repro.streaming.ShardedStreamingDetector` at several shard
   counts (federated threshold + drift, coordinated re-reference
   barrier),
3. compare: scores within ``rtol=1e-12``, identical flag sequences,
   identical drift-event chunks — through the re-reference, where
   every shard must re-anchor on the same window.

Run:  python examples/sharded_streaming.py
"""

import numpy as np

from repro.data import make_drifting_stream
from repro.streaming import (
    DepthRankDrift,
    FederatedDrift,
    FederatedThreshold,
    ShardedStreamingDetector,
    SlidingWindow,
    StreamingDetector,
    make_threshold,
)

# 84 = 2^2 * 3 * 7 — window, drift buffers and chunk size divide evenly
# for every shard count below, keeping the federated decision sequence
# chunk-aligned with the single-stream monitor.
WINDOW = 84
CHUNK = 21
N_CHUNKS = 20
CONTAMINATION = 0.1
ALPHA = 0.05
SHARD_COUNTS = (2, 3, 7)


def stream():
    return make_drifting_stream(
        n_chunks=N_CHUNKS, chunk_size=CHUNK, n_points=40, drift_at=8,
        drift_ramp=2, drift_phase=1.2, drift_scale=1.8, random_state=3,
    )


def drive(detector):
    scores, flags, events = [], [], []
    for chunk_idx, (chunk, _) in enumerate(stream()):
        result = detector.process(chunk)
        if result.scores is not None:
            scores.append(result.scores)
        if result.flags is not None:
            flags.append(result.flags)
        if result.drift is not None:
            events.append(chunk_idx)
    return np.concatenate(scores), np.concatenate(flags), events


def main() -> None:
    single = StreamingDetector(
        "funta",
        SlidingWindow(WINDOW),
        min_reference=2,
        threshold=make_threshold(CONTAMINATION, "window", capacity=WINDOW),
        drift=DepthRankDrift(baseline_size=WINDOW, recent_size=WINDOW,
                             alpha=ALPHA, patience=1, min_gap=CHUNK),
        on_drift="rereference",
    )
    ref_scores, ref_flags, ref_events = drive(single)
    print(f"single stream: {ref_scores.size} curves scored, "
          f"{int(ref_flags.sum())} flagged, drift + re-reference at chunks "
          f"{ref_events} ({single.n_rereferences} barrier(s))")
    if not ref_events:
        raise SystemExit("expected the KS monitor to fire on this stream")

    for n_shards in SHARD_COUNTS:
        detector = ShardedStreamingDetector(
            "funta",
            shards=n_shards,
            capacity=WINDOW,
            min_reference=2,
            threshold=FederatedThreshold(CONTAMINATION, n_shards,
                                         mode="window", capacity=WINDOW),
            drift=FederatedDrift(n_shards, baseline_size=WINDOW,
                                 recent_size=WINDOW, alpha=ALPHA,
                                 patience=1, min_gap=CHUNK),
            on_drift="rereference",
            backend="thread",
        )
        try:
            scores, flags, events = drive(detector)
        finally:
            detector.close()
        np.testing.assert_allclose(scores, ref_scores, rtol=1e-12, atol=0.0)
        np.testing.assert_array_equal(flags, ref_flags)
        if events != ref_events:
            raise SystemExit(
                f"{n_shards} shards: drift at {events}, single at {ref_events}"
            )
        worst = float(np.max(np.abs(scores - ref_scores)))
        print(f"{n_shards} shards: scores match (max |delta| {worst:.2e}), "
              f"flags identical, re-reference barrier at chunks {events}")

    print("OK: every shard count reproduced the single stream through drift")


if __name__ == "__main__":
    main()
