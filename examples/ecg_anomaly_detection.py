"""ECG anomaly detection — the paper's Section 4 experiment, end to end.

Reproduces the full experimental protocol at a configurable scale:

1. build the ECG substitute data set (133 normal / 67 abnormal beats,
   85 samples each — ECG200 dimensions);
2. augment the univariate series to bivariate MFD by squaring
   (paper Sec. 4.1);
3. evaluate Dir.out, FUNTA, iFor(Curvmap) and OCSVM(Curvmap) over
   contaminated train/test splits at c in {5, ..., 25}%;
4. print the Figure 3 table.

Run:  python examples/ecg_anomaly_detection.py [n_repetitions]
"""

import sys

from repro import (
    default_methods,
    make_ecg_dataset,
    run_contamination_experiment,
    square_augment,
)


def main(n_repetitions: int = 10) -> None:
    data, labels, tags = make_ecg_dataset(
        n_normal=133, n_abnormal=67, random_state=7
    )
    mfd = square_augment(data)
    archetypes = sorted({t for t in tags if t != "normal"})
    print(f"ECG substitute: {data.n_samples} beats x {data.n_points} samples, "
          f"{labels.sum()} abnormal")
    print(f"abnormal archetypes present: {', '.join(archetypes)}\n")

    table = run_contamination_experiment(
        mfd,
        labels,
        default_methods(),
        n_repetitions=n_repetitions,
        train_fraction=0.7,
        random_state=7,
    )
    print(table.to_text())

    print(
        "\nReading the table (paper Sec. 4.3): the Curvmap methods lead the "
        "depth baselines; OCSVM(Curvmap) degrades as c grows because its "
        "nu parameter estimates the training contamination and becomes "
        "hard to tune; FUNTA trails because it only detects persistent "
        "shape outliers while the abnormal class is of mixed type."
    )


if __name__ == "__main__":
    reps = int(sys.argv[1]) if len(sys.argv) > 1 else 10
    main(reps)
