"""Quickstart: detect outliers in multivariate functional data.

This is the 60-second tour of the library: generate a labelled MFD data
set, run the paper's pipeline (B-spline smoothing -> curvature mapping
-> Isolation Forest), evaluate the ranking — then run the *same*
pipeline from a declarative JSON spec through the plan layer, with
bit-identical scores.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    CurvatureMapping,
    GeometricOutlierPipeline,
    IsolationForest,
    compile_plan,
    make_taxonomy_dataset,
    roc_auc,
    spec_from_json,
)


def main() -> None:
    # 1. Data: 60 bivariate inlier paths (near-circles in R^2) plus 8
    #    correlation-breaking outliers — their marginals x1(t), x2(t)
    #    look perfectly typical; only the joint path is wrong.
    data, labels = make_taxonomy_dataset(
        "correlation", n_inliers=60, n_outliers=8, random_state=0
    )
    print(f"dataset: n={data.n_samples} samples, m={data.n_points} points, "
          f"p={data.n_parameters} parameters, {labels.sum()} outliers")

    # 2. The paper's method: smooth each parameter into a B-spline basis
    #    (size chosen by leave-one-out CV), map each sample to its
    #    curvature function kappa(t) (Eq. 5), feed the mapped curves to a
    #    multivariate outlier detector.
    pipeline = GeometricOutlierPipeline(
        detector=IsolationForest(n_estimators=200, random_state=0),
        mapping=CurvatureMapping(),
    )
    pipeline.fit(data)
    print(f"selected basis sizes per parameter: {pipeline.selected_n_basis_}")

    # 3. Score: higher = more anomalous.
    scores = pipeline.score_samples(data)
    auc = roc_auc(scores, labels)
    print(f"AUC = {auc:.3f}")

    top = np.argsort(-scores)[: labels.sum()]
    hits = labels[top].sum()
    print(f"top-{labels.sum()} scored samples contain {hits} of the "
          f"{labels.sum()} true outliers")

    assert auc > 0.9, "the correlation outliers should be clearly separated"

    # 4. The same run, declaratively: a JSON spec parsed by the plan
    #    layer and compiled into an identical pipeline.  This is what
    #    `repro plan validate` checks and what v2 serving manifests
    #    persist — one construction path for batch, serving, streaming.
    spec = spec_from_json("""
    {
      "spec": "pipeline",
      "detector": {"name": "iforest",
                   "params": {"n_estimators": 200, "random_state": 0}},
      "mapping": {"type": "CurvatureMapping"},
      "smoother": {"smoothing": 1e-4}
    }
    """)
    plan = compile_plan(spec)
    spec_scores = plan.fit_score(data, data)
    assert np.array_equal(spec_scores, scores), "spec path must be bit-identical"
    print("JSON-spec-driven run reproduced the scores bit-identically")


if __name__ == "__main__":
    main()
