"""Unit tests for Frenet frames and generalized curvatures."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.geometry.frenet import frenet_frame, generalized_curvature, gram_schmidt_frame


class TestGramSchmidt:
    def test_orthonormal_output(self, rng):
        vectors = rng.standard_normal((20, 3, 4))
        frame = gram_schmidt_frame(vectors)
        for j in range(3):
            np.testing.assert_allclose(
                np.linalg.norm(frame[:, j, :], axis=1), 1.0, atol=1e-10
            )
        for j in range(3):
            for k in range(j):
                dots = np.sum(frame[:, j, :] * frame[:, k, :], axis=1)
                np.testing.assert_allclose(dots, 0.0, atol=1e-10)

    def test_degenerate_vector_zeroed(self):
        vectors = np.zeros((1, 2, 3))
        vectors[0, 0] = [1.0, 0.0, 0.0]
        vectors[0, 1] = [2.0, 0.0, 0.0]  # linearly dependent
        frame = gram_schmidt_frame(vectors)
        np.testing.assert_allclose(frame[0, 1], 0.0)

    def test_too_many_vectors_rejected(self):
        with pytest.raises(ValidationError):
            gram_schmidt_frame(np.ones((1, 4, 3)))

    def test_preserves_span_direction(self):
        vectors = np.array([[[3.0, 0.0], [1.0, 1.0]]])
        frame = gram_schmidt_frame(vectors)
        np.testing.assert_allclose(frame[0, 0], [1.0, 0.0])
        np.testing.assert_allclose(frame[0, 1], [0.0, 1.0])


class TestFrenetFrame:
    def test_circle_frame(self):
        t = np.linspace(0, 2 * np.pi, 100)
        v = np.stack([-np.sin(t), np.cos(t)], axis=1)
        a = np.stack([-np.cos(t), -np.sin(t)], axis=1)
        frame = frenet_frame([v, a])
        # e1 is the unit tangent; e2 the inward normal.
        np.testing.assert_allclose(frame[:, 0, :], v, atol=1e-10)
        np.testing.assert_allclose(frame[:, 1, :], a, atol=1e-10)

    def test_shape_mismatch(self):
        with pytest.raises(ValidationError):
            frenet_frame([np.ones((5, 2)), np.ones((6, 2))])

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            frenet_frame([])


class TestGeneralizedCurvature:
    def test_chi1_equals_curvature_circle(self):
        t = np.linspace(0, 2 * np.pi, 400)
        radius = 2.0
        v = radius * np.stack([-np.sin(t), np.cos(t)], axis=1)
        a = radius * np.stack([-np.cos(t), -np.sin(t)], axis=1)
        chi1 = generalized_curvature([v, a], t, order=1)
        np.testing.assert_allclose(chi1[5:-5], 1.0 / radius, atol=1e-3)

    def test_chi2_equals_torsion_helix(self):
        c = 0.5
        t = np.linspace(0, 4 * np.pi, 800)
        v = np.stack([-np.sin(t), np.cos(t), np.full_like(t, c)], axis=1)
        a = np.stack([-np.cos(t), -np.sin(t), np.zeros_like(t)], axis=1)
        j = np.stack([np.sin(t), -np.cos(t), np.zeros_like(t)], axis=1)
        chi2 = generalized_curvature([v, a, j], t, order=2)
        np.testing.assert_allclose(chi2[10:-10], c / (1 + c**2), atol=1e-3)

    def test_insufficient_derivatives(self):
        t = np.linspace(0, 1, 10)
        with pytest.raises(ValidationError):
            generalized_curvature([np.ones((10, 3))], t, order=2)

    def test_grid_mismatch(self):
        t = np.linspace(0, 1, 10)
        with pytest.raises(ValidationError):
            generalized_curvature([np.ones((12, 2)), np.ones((12, 2))], t, order=1)
