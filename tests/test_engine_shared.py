"""Unit tests for the zero-copy shared-array transport.

Covers :class:`~repro.engine.shared.SharedArrayPool` placement
(shared memory vs memmap spill), the attach/detach round trip with its
identity-preserving dedupe, unlink idempotency, the leak registry, and
the :meth:`~repro.engine.ExecutionContext.run_blocks` executor's
serial fallbacks and failure-path cleanup.
"""

import os

import numpy as np
import pytest

from repro.engine import ExecutionContext, SharedArrayPool, SharedArrayRef, live_segments
from repro.engine.shared import attach_arrays, detach_arrays
from repro.exceptions import ValidationError


def _sum_block(block, values):
    lo, hi = block
    return values[lo:hi].sum(axis=1)


def _identity_probe(block, values, ref_values):
    return values is ref_values


def _boom(block, values):
    raise RuntimeError("boom")


class TestSharedArrayPool:
    def test_share_attach_roundtrip_bitwise(self):
        rng = np.random.default_rng(0)
        arrays = {"a": rng.standard_normal((7, 5)), "b": np.arange(12).reshape(3, 4)}
        with SharedArrayPool() as pool:
            refs = pool.share(arrays)
            assert set(refs) == {"a", "b"}
            assert all(isinstance(r, SharedArrayRef) for r in refs.values())
            assert all(r.kind == "shm" for r in refs.values())
            attached, handles = attach_arrays(refs)
            np.testing.assert_array_equal(attached["a"], arrays["a"])
            np.testing.assert_array_equal(attached["b"], arrays["b"])
            assert attached["a"].dtype == arrays["a"].dtype
            detach_arrays(handles)
        assert not live_segments()

    def test_same_object_dedupes_to_one_segment_and_identity(self):
        x = np.random.default_rng(1).standard_normal((6, 3))
        with SharedArrayPool() as pool:
            refs = pool.share({"values": x, "ref_values": x})
            assert refs["values"] is refs["ref_values"]
            attached, handles = attach_arrays(refs)
            # The kernels' `values is ref_values` self-scoring fast path
            # must survive the process boundary.
            assert attached["values"] is attached["ref_values"]
            detach_arrays(handles)

    def test_distinct_equal_arrays_stay_distinct(self):
        x = np.ones((4, 4))
        y = np.ones((4, 4))
        with SharedArrayPool() as pool:
            refs = pool.share({"x": x, "y": y})
            assert refs["x"].location != refs["y"].location

    def test_attached_arrays_are_readonly(self):
        with SharedArrayPool() as pool:
            refs = pool.share({"a": np.arange(6.0)})
            attached, handles = attach_arrays(refs)
            with pytest.raises(ValueError):
                attached["a"][0] = 99.0
            detach_arrays(handles)

    def test_spill_path_roundtrip(self, tmp_path):
        big = np.random.default_rng(2).standard_normal((64, 8))
        small = np.arange(4.0)
        with SharedArrayPool(spill_bytes=1024, spill_dir=str(tmp_path)) as pool:
            refs = pool.share({"big": big, "small": small})
            assert refs["big"].kind == "memmap"
            assert refs["small"].kind == "shm"
            assert os.path.dirname(refs["big"].location) == str(tmp_path)
            attached, handles = attach_arrays(refs)
            np.testing.assert_array_equal(attached["big"], big)
            detach_arrays(handles)
        assert not os.listdir(tmp_path)
        assert not live_segments()

    def test_empty_array_roundtrip(self):
        empty = np.empty((0, 3))
        with SharedArrayPool() as pool:
            refs = pool.share({"e": empty})
            attached, handles = attach_arrays(refs)
            assert attached["e"].shape == (0, 3)
            detach_arrays(handles)

    def test_unlink_is_idempotent_and_blocks_reuse(self):
        pool = SharedArrayPool()
        pool.share({"a": np.arange(3.0)})
        pool.unlink()
        pool.unlink()  # second call is a no-op, not an error
        assert not live_segments()
        with pytest.raises(ValidationError, match="unlinked"):
            pool.share({"b": np.arange(3.0)})

    def test_object_dtype_rejected(self):
        with SharedArrayPool() as pool:
            with pytest.raises(ValidationError, match="object dtype"):
                pool.share({"bad": np.array([{"a": 1}], dtype=object)})

    def test_invalid_spill_bytes_rejected(self):
        for bad in (0, -1, 1.5, True):
            with pytest.raises(ValidationError, match="spill_bytes"):
                SharedArrayPool(spill_bytes=bad)

    def test_unknown_ref_kind_rejected(self):
        ref = SharedArrayRef("carrier-pigeon", "nowhere", (1,), "<f8")
        with pytest.raises(ValidationError, match="kind"):
            attach_arrays({"a": ref})

    def test_leak_registry_tracks_until_unlink(self):
        pool = SharedArrayPool()
        refs = pool.share({"a": np.arange(5.0)})
        assert refs["a"].location in live_segments()
        pool.unlink()
        assert refs["a"].location not in live_segments()


class TestRunBlocks:
    def test_pooled_matches_serial_bitwise(self):
        rng = np.random.default_rng(3)
        values = rng.standard_normal((40, 9))
        blocks = [(0, 11), (11, 25), (25, 40)]
        serial = [_sum_block(b, values) for b in blocks]
        pooled = ExecutionContext(n_jobs=2).run_blocks(
            _sum_block, blocks, arrays={"values": values}
        )
        assert len(pooled) == len(serial)
        for s, p in zip(serial, pooled):
            np.testing.assert_array_equal(s, p)

    def test_identity_fast_path_survives_workers(self):
        values = np.random.default_rng(4).standard_normal((16, 4))
        flags = ExecutionContext(n_jobs=2).run_blocks(
            _identity_probe,
            [(0, 8), (8, 16)],
            arrays={"values": values, "ref_values": values},
        )
        assert flags == [True, True]

    def test_serial_fallback_single_block(self):
        values = np.arange(12.0).reshape(4, 3)
        out = ExecutionContext(n_jobs=4).run_blocks(
            _sum_block, [(0, 4)], arrays={"values": values}
        )
        np.testing.assert_array_equal(out[0], values.sum(axis=1))
        assert not live_segments()

    def test_serial_fallback_n_jobs_one(self):
        values = np.arange(12.0).reshape(4, 3)
        out = ExecutionContext(n_jobs=1).run_blocks(
            _sum_block, [(0, 2), (2, 4)], arrays={"values": values}
        )
        assert len(out) == 2
        assert not live_segments()

    def test_worker_failure_unlinks_segments(self):
        values = np.random.default_rng(5).standard_normal((8, 3))
        context = ExecutionContext(n_jobs=2)
        with pytest.raises(RuntimeError, match="boom"):
            context.run_blocks(_boom, [(0, 4), (4, 8)], arrays={"values": values})
        assert not live_segments()

    def test_memmap_spill_end_to_end(self, tmp_path):
        values = np.random.default_rng(6).standard_normal((30, 7))
        context = ExecutionContext(n_jobs=2, spill_bytes=64, spill_dir=str(tmp_path))
        blocks = [(0, 10), (10, 20), (20, 30)]
        pooled = context.run_blocks(_sum_block, blocks, arrays={"values": values})
        serial = [_sum_block(b, values) for b in blocks]
        for s, p in zip(serial, pooled):
            np.testing.assert_array_equal(s, p)
        assert not os.listdir(tmp_path)
        assert not live_segments()


class TestCleanupHooks:
    def test_cleanup_live_segments_idempotent(self):
        pool = SharedArrayPool()
        refs = pool.share({"a": np.arange(6.0)})
        from repro.engine import cleanup_live_segments

        assert refs["a"].location in live_segments()
        cleanup_live_segments()
        assert not live_segments()
        cleanup_live_segments()  # second sweep over nothing is a no-op
        assert not live_segments()

    @pytest.mark.parametrize("how", ["sigterm", "exception"])
    def test_killed_process_leaves_no_orphan_segments(self, how, tmp_path):
        """SIGTERM / unhandled exit must unlink /dev/shm segments.

        The child creates shared segments, reports their names, then
        either blocks until SIGTERM'd or raises; the parent asserts the
        segments are gone afterwards.  This is the regression test for
        interrupted parents orphaning segments until reboot.
        """
        import signal
        import subprocess
        import sys
        import time
        from multiprocessing import shared_memory

        script = r"""
import sys
import numpy as np
from repro.engine import SharedArrayPool, live_segments

pool = SharedArrayPool()
pool.share({"a": np.arange(512.0), "b": np.ones((64, 8))})
print("SEGMENTS:" + ",".join(sorted(live_segments())), flush=True)
if sys.argv[1] == "exception":
    raise RuntimeError("die without unlinking")
import time
while True:
    time.sleep(0.1)
"""
        proc = subprocess.Popen(
            [sys.executable, "-c", script, how],
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            text=True,
        )
        try:
            line = proc.stdout.readline().strip()
            assert line.startswith("SEGMENTS:"), f"child said {line!r}"
            names = [n for n in line[len("SEGMENTS:"):].split(",") if n]
            assert names, "child created no segments"
            if how == "sigterm":
                proc.send_signal(signal.SIGTERM)
                proc.wait(timeout=10)
                assert proc.returncode == -signal.SIGTERM
            else:
                proc.wait(timeout=10)
                assert proc.returncode == 1
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)

        # Give the dying process a beat to finish its unlink sweep.
        deadline = time.monotonic() + 5
        leaked = names
        while leaked and time.monotonic() < deadline:
            leaked = []
            for name in names:
                try:
                    segment = shared_memory.SharedMemory(name=name)
                except FileNotFoundError:
                    continue
                segment.close()
                leaked.append(name)
            time.sleep(0.05)
        assert not leaked, f"orphaned shared segments: {leaked}"
