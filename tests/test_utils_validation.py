"""Unit tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.exceptions import GridError, ValidationError
from repro.utils.validation import (
    as_float_array,
    check_grid,
    check_in_range,
    check_int,
    check_matrix,
    check_positive,
    check_probability,
    check_same_length,
    check_vector,
)


class TestAsFloatArray:
    def test_converts_lists(self):
        out = as_float_array([1, 2, 3])
        assert out.dtype == np.float64
        np.testing.assert_array_equal(out, [1.0, 2.0, 3.0])

    def test_rejects_nan(self):
        with pytest.raises(ValidationError, match="NaN"):
            as_float_array([1.0, np.nan])

    def test_rejects_inf(self):
        with pytest.raises(ValidationError):
            as_float_array([np.inf])

    def test_rejects_strings(self):
        with pytest.raises(ValidationError):
            as_float_array(["a", "b"])

    def test_empty_array_allowed(self):
        assert as_float_array([]).size == 0

    def test_name_in_message(self):
        with pytest.raises(ValidationError, match="myname"):
            as_float_array([np.nan], name="myname")


class TestCheckVector:
    def test_accepts_vector(self):
        out = check_vector([1.0, 2.0])
        assert out.shape == (2,)

    def test_rejects_matrix(self):
        with pytest.raises(ValidationError, match="one-dimensional"):
            check_vector([[1.0, 2.0]])

    def test_min_length(self):
        with pytest.raises(ValidationError, match="at least 3"):
            check_vector([1.0, 2.0], min_length=3)


class TestCheckMatrix:
    def test_accepts_matrix(self):
        out = check_matrix([[1.0, 2.0], [3.0, 4.0]])
        assert out.shape == (2, 2)

    def test_rejects_vector(self):
        with pytest.raises(ValidationError, match="two-dimensional"):
            check_matrix([1.0, 2.0])

    def test_min_shape(self):
        with pytest.raises(ValidationError):
            check_matrix([[1.0]], min_rows=2)


class TestCheckGrid:
    def test_accepts_increasing(self):
        out = check_grid([0.0, 0.5, 1.0])
        assert out.shape == (3,)

    def test_rejects_decreasing(self):
        with pytest.raises(GridError):
            check_grid([0.0, 1.0, 0.5])

    def test_rejects_duplicates(self):
        with pytest.raises(GridError):
            check_grid([0.0, 0.5, 0.5, 1.0])

    def test_irregular_spacing_ok(self):
        out = check_grid([0.0, 0.1, 0.9, 1.0])
        assert out.shape == (4,)

    def test_min_length(self):
        with pytest.raises(ValidationError):
            check_grid([0.0])


class TestScalarChecks:
    def test_check_positive_strict(self):
        assert check_positive(1.5) == 1.5
        with pytest.raises(ValidationError):
            check_positive(0.0)

    def test_check_positive_nonstrict(self):
        assert check_positive(0.0, strict=False) == 0.0
        with pytest.raises(ValidationError):
            check_positive(-1.0, strict=False)

    def test_check_positive_rejects_nan(self):
        with pytest.raises(ValidationError):
            check_positive(float("nan"))

    def test_check_in_range_inclusive(self):
        assert check_in_range(0.0, 0.0, 1.0) == 0.0
        assert check_in_range(1.0, 0.0, 1.0) == 1.0

    def test_check_in_range_exclusive(self):
        with pytest.raises(ValidationError):
            check_in_range(0.0, 0.0, 1.0, inclusive=(False, True))

    def test_check_int_accepts_numpy(self):
        assert check_int(np.int64(5)) == 5

    def test_check_int_rejects_bool(self):
        with pytest.raises(ValidationError):
            check_int(True)

    def test_check_int_rejects_float(self):
        with pytest.raises(ValidationError):
            check_int(1.5)

    def test_check_int_minimum(self):
        with pytest.raises(ValidationError):
            check_int(0, minimum=1)

    def test_check_probability(self):
        assert check_probability(0.5) == 0.5
        with pytest.raises(ValidationError):
            check_probability(1.5)

    def test_check_same_length(self):
        check_same_length([1, 2], [3, 4])
        with pytest.raises(ValidationError):
            check_same_length([1], [2, 3])
