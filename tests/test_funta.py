"""Unit tests for the FUNTA baseline."""

import numpy as np
import pytest

from repro.depth.funta import _crossing_angles, funta_depth, funta_outlyingness
from repro.exceptions import ValidationError
from repro.fda.fdata import FDataGrid, MFDataGrid


@pytest.fixture
def crossing_lines():
    """Curves through the origin with different slopes: all cross at 0.5."""
    grid = np.linspace(0, 1, 41)
    slopes = np.array([1.0, 1.1, 0.9, 1.05, 0.95])
    values = slopes[:, None] * (grid[None, :] - 0.5)
    return FDataGrid(values, grid)


class TestCrossingAngles:
    def test_known_angle(self):
        grid = np.linspace(0, 1, 101)
        a = grid - 0.5          # slope 1
        b = -(grid - 0.5)       # slope -1
        angles = _crossing_angles(a, b, grid)
        assert angles.shape[0] >= 1
        np.testing.assert_allclose(angles, np.pi / 2, atol=1e-6)

    def test_parallel_no_crossing(self):
        grid = np.linspace(0, 1, 11)
        angles = _crossing_angles(grid, grid + 1.0, grid)
        assert angles.size == 0

    def test_shallow_crossing_small_angle(self):
        grid = np.linspace(0, 1, 101)
        a = grid - 0.5
        b = 1.02 * (grid - 0.5)
        angles = _crossing_angles(a, b, grid)
        assert (angles < 0.05).all()

    def test_angles_in_range(self, rng):
        grid = np.linspace(0, 1, 51)
        a = rng.standard_normal(51).cumsum() / 10
        b = rng.standard_normal(51).cumsum() / 10
        angles = _crossing_angles(a, b, grid)
        assert ((angles >= 0) & (angles <= np.pi / 2 + 1e-12)).all()


class TestFuntaDepth:
    def test_similar_slopes_deep(self, crossing_lines):
        depth = funta_depth(crossing_lines)
        assert (depth > 0.9).all()

    def test_shape_outlier_shallow(self, crossing_lines):
        grid = crossing_lines.grid
        outlier = -1.0 * (grid - 0.5)  # opposite slope: steep crossings
        values = np.vstack([crossing_lines.values, outlier[None, :]])
        depth = funta_depth(FDataGrid(values, grid))
        assert depth.argmin() == 5

    def test_range(self, crossing_lines):
        depth = funta_depth(crossing_lines)
        assert ((depth >= 0) & (depth <= 1)).all()

    def test_non_crossing_curve_penalized(self, crossing_lines):
        grid = crossing_lines.grid
        isolated = np.full((1, grid.shape[0]), 10.0)  # never crosses anyone
        values = np.vstack([crossing_lines.values, isolated])
        depth = funta_depth(FDataGrid(values, grid))
        assert depth[5] == pytest.approx(0.0, abs=1e-9)

    def test_reference_based(self, crossing_lines):
        test = FDataGrid(crossing_lines.values[:2], crossing_lines.grid)
        depth = funta_depth(test, reference=crossing_lines)
        assert depth.shape == (2,)

    def test_multivariate_averages_parameters(self, crossing_lines):
        mfd = MFDataGrid(
            np.stack([crossing_lines.values, crossing_lines.values], axis=2),
            crossing_lines.grid,
        )
        d_mfd = funta_depth(mfd)
        d_ufd = funta_depth(crossing_lines)
        np.testing.assert_allclose(d_mfd, d_ufd, atol=1e-12)

    def test_trim_reduces_influence_of_extreme_angles(self, crossing_lines):
        grid = crossing_lines.grid
        spiky = crossing_lines.values.copy()
        spiky[0, 20] += 3.0  # one violent crossing for curve 0
        data = FDataGrid(spiky, grid)
        plain = funta_depth(data)[0]
        trimmed = funta_depth(data, trim=0.2)[0]
        assert trimmed >= plain

    def test_needs_two_curves(self, crossing_lines):
        with pytest.raises(ValidationError):
            funta_depth(crossing_lines[0])

    def test_invalid_trim(self, crossing_lines):
        with pytest.raises(ValidationError):
            funta_depth(crossing_lines, trim=0.9)

    def test_rejects_arrays(self):
        with pytest.raises(ValidationError):
            funta_depth(np.zeros((3, 10)))


class TestFuntaOutlyingness:
    def test_complement_of_depth(self, crossing_lines):
        np.testing.assert_allclose(
            funta_outlyingness(crossing_lines), 1.0 - funta_depth(crossing_lines)
        )
