"""Unit tests for KNN, LOF and Mahalanobis extension detectors."""

import numpy as np
import pytest

from repro.detectors.knn import KNNDetector
from repro.detectors.lof import LocalOutlierFactor
from repro.detectors.mahalanobis import MahalanobisDetector
from repro.evaluation.metrics import roc_auc
from repro.exceptions import NotFittedError, ValidationError


class TestKNNDetector:
    def test_separates_outliers(self, gaussian_cloud):
        X, y = gaussian_cloud
        det = KNNDetector(n_neighbors=5).fit(X)
        assert roc_auc(det.score_samples(X), y) > 0.95

    def test_kth_distance_exact(self):
        train = np.array([[0.0], [1.0], [2.0], [3.0]])
        det = KNNDetector(n_neighbors=2).fit(train)
        score = det.score_samples(np.array([[10.0]]))
        assert score[0] == pytest.approx(8.0)  # distance to 2nd NN (value 2)

    def test_mean_aggregation(self):
        train = np.array([[0.0], [1.0], [2.0], [3.0]])
        det = KNNDetector(n_neighbors=2, aggregation="mean").fit(train)
        score = det.score_samples(np.array([[10.0]]))
        assert score[0] == pytest.approx((7.0 + 8.0) / 2)

    def test_self_exclusion_on_training_data(self, rng):
        """Scoring the training set must not return zero distances."""
        X = rng.standard_normal((30, 2))
        det = KNNDetector(n_neighbors=3).fit(X)
        assert (det.score_samples(X) > 0).all()

    def test_bad_aggregation(self):
        with pytest.raises(ValidationError):
            KNNDetector(aggregation="max")

    def test_too_few_rows(self):
        with pytest.raises(ValidationError):
            KNNDetector(n_neighbors=5).fit(np.zeros((4, 2)))


class TestLocalOutlierFactor:
    def test_separates_outliers(self, gaussian_cloud):
        X, y = gaussian_cloud
        det = LocalOutlierFactor(n_neighbors=20).fit(X)
        assert roc_auc(det.score_samples(X), y) > 0.95

    def test_uniform_cluster_scores_near_one(self, rng):
        X = rng.uniform(0, 1, size=(400, 2))
        det = LocalOutlierFactor(n_neighbors=15).fit(X)
        inner = X[(X[:, 0] > 0.2) & (X[:, 0] < 0.8) & (X[:, 1] > 0.2) & (X[:, 1] < 0.8)]
        scores = det.score_samples(inner)
        assert abs(np.median(scores) - 1.0) < 0.1

    def test_local_density_awareness(self, rng):
        """A point between a tight and a loose cluster is outlying for
        the tight cluster even at moderate absolute distance."""
        tight = rng.standard_normal((100, 2)) * 0.1
        loose = rng.standard_normal((100, 2)) * 2.0 + np.array([20.0, 0.0])
        X = np.vstack([tight, loose])
        det = LocalOutlierFactor(n_neighbors=10).fit(X)
        # 1.5 away from the tight cluster: locally very anomalous.
        score_near_tight = det.score_samples(np.array([[1.5, 0.0]]))[0]
        score_inside_loose = det.score_samples(np.array([[20.0, 0.5]]))[0]
        assert score_near_tight > score_inside_loose

    def test_out_of_sample_scoring(self, gaussian_cloud):
        X, _ = gaussian_cloud
        det = LocalOutlierFactor(n_neighbors=10).fit(X[:100])
        scores = det.score_samples(X[100:])
        assert np.isfinite(scores).all()

    def test_too_few_rows(self):
        with pytest.raises(ValidationError):
            LocalOutlierFactor(n_neighbors=30).fit(np.zeros((10, 2)))


class TestMahalanobisDetector:
    def test_separates_outliers(self, gaussian_cloud):
        X, y = gaussian_cloud
        det = MahalanobisDetector().fit(X)
        assert roc_auc(det.score_samples(X), y) > 0.95

    def test_scores_are_distances(self, rng):
        X = rng.standard_normal((200, 2))
        det = MahalanobisDetector(trim=0.0, n_refits=0, shrinkage=0.0).fit(X)
        scores = det.score_samples(np.array([[0.0, 0.0], [3.0, 0.0]]))
        assert scores[0] < 0.5
        assert scores[1] == pytest.approx(3.0, abs=0.5)

    def test_trimming_resists_contamination(self, rng):
        """With 20% clustered contamination the trimmed estimator keeps
        the outlier cluster far; the untrimmed one absorbs it."""
        inliers = rng.standard_normal((160, 2))
        blob = rng.standard_normal((40, 2)) * 0.3 + np.array([8.0, 8.0])
        X = np.vstack([inliers, blob])
        robust = MahalanobisDetector(trim=0.25, n_refits=3).fit(X)
        naive = MahalanobisDetector(trim=0.0, n_refits=0).fit(X)
        blob_center = np.array([[8.0, 8.0]])
        assert robust.score_samples(blob_center)[0] > naive.score_samples(blob_center)[0]

    def test_singular_covariance_handled(self):
        X = np.column_stack([np.arange(10.0), np.arange(10.0)])  # rank 1
        det = MahalanobisDetector(shrinkage=0.1).fit(X)
        assert np.isfinite(det.score_samples(X)).all()

    def test_too_few_rows(self):
        with pytest.raises(ValidationError):
            MahalanobisDetector().fit(np.zeros((2, 2)))

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            MahalanobisDetector().score_samples(np.zeros((1, 2)))


class TestDetectorBaseBehavior:
    def test_decision_function_requires_threshold(self, gaussian_cloud):
        X, _ = gaussian_cloud
        det = KNNDetector(n_neighbors=5).fit(X)  # no natural threshold
        with pytest.raises(NotFittedError):
            det.decision_function(X)

    def test_contamination_threshold_quantile(self, gaussian_cloud):
        X, _ = gaussian_cloud
        det = KNNDetector(n_neighbors=5, contamination=0.1).fit(X)
        flagged = np.mean(det.predict(X) == -1)
        assert flagged == pytest.approx(0.1, abs=0.05)

    def test_1d_input_rejected(self, gaussian_cloud):
        X, _ = gaussian_cloud
        det = KNNDetector(n_neighbors=5).fit(X)
        with pytest.raises(ValidationError):
            det.score_samples(np.zeros(5))
