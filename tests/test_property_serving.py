"""Property-based round-trip tests for pipeline persistence.

Mirrors the existing ``test_property_*`` style: hypothesis draws the
configuration space (basis types, mapping configs, every detector in
the registry) and the invariant is exact save→load→score equality.
"""

import tempfile

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pipeline import GeometricOutlierPipeline
from repro.data.synthetic import make_taxonomy_dataset
from repro.detectors import DETECTOR_REGISTRY, make_detector
from repro.fda.basis import BASIS_REGISTRY, BSplineBasis, basis_from_config
from repro.fda.fdata import FDataGrid
from repro.fda.smoothing import BasisSmoother
from repro.geometry.mappings import (
    ArcLengthMapping,
    ComponentMapping,
    CompositeMapping,
    CurvatureMapping,
    NormMapping,
    SpeedMapping,
    mapping_from_config,
)
from repro.serving import load_pipeline, save_pipeline

COMMON = settings(max_examples=10, deadline=None)

#: Constructor kwargs keeping every registered detector happy on tiny data.
DETECTOR_KWARGS = {
    "iforest": {"random_state": 0, "n_estimators": 20},
    "ocsvm": {},
    "knn": {"n_neighbors": 3},
    "lof": {"n_neighbors": 5},
    "mahalanobis": {},
}

MAPPING_FACTORIES = [
    lambda: CurvatureMapping(),
    lambda: CurvatureMapping(regularization=0.0),
    lambda: SpeedMapping(),
    lambda: ArcLengthMapping(),
    lambda: NormMapping(),
    lambda: ComponentMapping(0),
    lambda: CompositeMapping([CurvatureMapping(), SpeedMapping()]),
]


@pytest.fixture(scope="module")
def mfd_dataset():
    data, _ = make_taxonomy_dataset(
        "correlation", n_inliers=30, n_outliers=4, random_state=5
    )
    return data


class TestBasisConfigRoundTrip:
    @COMMON
    @given(
        st.sampled_from(sorted(BASIS_REGISTRY)),
        st.integers(min_value=5, max_value=20),
        st.integers(min_value=0, max_value=10_000),
    )
    def test_design_matrices_bit_identical(self, basis_type, n_basis, seed):
        rng = np.random.default_rng(seed)
        low = float(rng.uniform(-2.0, 0.0))
        high = low + float(rng.uniform(0.5, 3.0))
        basis = BASIS_REGISTRY[basis_type]((low, high), n_basis)
        restored = basis_from_config(basis.to_config())
        assert restored.cache_key == basis.cache_key
        points = np.linspace(low, high, 40)
        assert np.array_equal(restored.evaluate(points), basis.evaluate(points))

    @COMMON
    @given(
        st.integers(min_value=4, max_value=20),
        st.integers(min_value=2, max_value=4),
    )
    def test_bspline_order_and_knots_survive(self, n_basis, order):
        n_basis = max(n_basis, order)
        basis = BSplineBasis((0.0, 1.0), n_basis, order=order)
        restored = basis_from_config(basis.to_config())
        assert restored.cache_key == basis.cache_key


class TestSmootherConfigRoundTrip:
    @COMMON
    @given(
        st.sampled_from(sorted(BASIS_REGISTRY)),
        st.integers(min_value=5, max_value=15),
        st.sampled_from([0.0, 1e-6, 1e-4, 1e-2]),
        st.integers(min_value=0, max_value=2),
        st.integers(min_value=0, max_value=10_000),
    )
    def test_coefficients_bit_identical(self, basis_type, n_basis, lam, order, seed):
        rng = np.random.default_rng(seed)
        grid = np.linspace(0.0, 1.0, 40)
        data = FDataGrid(rng.standard_normal((6, 40)), grid)
        smoother = BasisSmoother(
            BASIS_REGISTRY[basis_type]((0.0, 1.0), n_basis),
            smoothing=lam,
            penalty_order=order,
        )
        restored = BasisSmoother.from_config(smoother.to_config())
        assert np.array_equal(
            restored.transform(data).coefficients,
            smoother.fit(data).coefficients,
        )


class TestMappingConfigRoundTrip:
    @COMMON
    @given(
        st.integers(min_value=0, max_value=len(MAPPING_FACTORIES) - 1),
        st.integers(min_value=0, max_value=10_000),
    )
    def test_mapped_curves_bit_identical(self, mapping_index, seed):
        rng = np.random.default_rng(seed)
        grid = np.linspace(0.0, 1.0, 30)
        from repro.fda.fdata import BasisFData, MultivariateBasisFData

        basis = BSplineBasis((0.0, 1.0), 8)
        fdata = MultivariateBasisFData(
            [BasisFData(basis, rng.standard_normal((5, 8))) for _ in range(2)]
        )
        mapping = MAPPING_FACTORIES[mapping_index]()
        restored = mapping_from_config(mapping.to_config())
        assert np.array_equal(
            restored.transform(fdata, grid).values,
            mapping.transform(fdata, grid).values,
        )


class TestPipelineSaveLoadScore:
    @COMMON
    @given(
        st.sampled_from(sorted(DETECTOR_REGISTRY)),
        st.integers(min_value=0, max_value=len(MAPPING_FACTORIES) - 1),
        st.sampled_from([8, 12, (8, 12, 16)]),
    )
    def test_round_trip_scores_identical(
        self, mfd_dataset, detector_name, mapping_index, n_basis
    ):
        pipeline = GeometricOutlierPipeline(
            make_detector(detector_name, **DETECTOR_KWARGS[detector_name]),
            mapping=MAPPING_FACTORIES[mapping_index](),
            n_basis=n_basis,
        ).fit(mfd_dataset)
        reference = pipeline.score_samples(mfd_dataset)
        with tempfile.TemporaryDirectory() as tmp:
            save_pipeline(pipeline, tmp)
            loaded = load_pipeline(tmp)
        np.testing.assert_allclose(
            loaded.score_samples(mfd_dataset), reference, atol=1e-12
        )
        assert loaded.selected_n_basis_ == pipeline.selected_n_basis_
