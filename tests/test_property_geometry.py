"""Property-based tests for geometric invariants.

Curvature is a *geometric* quantity: it must be invariant under rigid
motions (rotation + translation of the ambient space) and under
reparametrization, and scale inversely under dilations.  These are the
defining properties that make it a sound aggregation for the paper's
method, so we verify them on random smooth paths.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.differential import arc_length, curvature, speed

COMMON = settings(max_examples=25, deadline=None)


def _random_smooth_path(seed: int, p: int = 2):
    """Random trigonometric path with exact derivative arrays."""
    rng = np.random.default_rng(seed)
    t = np.linspace(0.0, 2.0 * np.pi, 120)
    coeff_sin = rng.uniform(-1, 1, p)
    coeff_cos = rng.uniform(-1, 1, p)
    freq = rng.integers(1, 4, p)
    pos = np.stack(
        [coeff_sin[k] * np.sin(freq[k] * t) + coeff_cos[k] * np.cos(freq[k] * t) for k in range(p)],
        axis=1,
    )
    vel = np.stack(
        [
            freq[k] * (coeff_sin[k] * np.cos(freq[k] * t) - coeff_cos[k] * np.sin(freq[k] * t))
            for k in range(p)
        ],
        axis=1,
    )
    acc = np.stack(
        [
            -freq[k] ** 2
            * (coeff_sin[k] * np.sin(freq[k] * t) + coeff_cos[k] * np.cos(freq[k] * t))
            for k in range(p)
        ],
        axis=1,
    )
    return t, pos[None], vel[None], acc[None]


def _random_rotation(seed: int, p: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    matrix = rng.standard_normal((p, p))
    q, _ = np.linalg.qr(matrix)
    return q


class TestCurvatureInvariances:
    @COMMON
    @given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=2, max_value=4))
    def test_rotation_invariance(self, seed, p):
        t, _, v, a = _random_smooth_path(seed, p)
        rotation = _random_rotation(seed + 1, p)
        k_orig = curvature(v, a)
        k_rot = curvature(v @ rotation.T, a @ rotation.T)
        np.testing.assert_allclose(k_rot, k_orig, atol=1e-8)

    @COMMON
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.floats(min_value=0.1, max_value=10.0),
    )
    def test_dilation_scaling(self, seed, scale):
        """kappa(s * X) = kappa(X) / s."""
        t, _, v, a = _random_smooth_path(seed)
        k_orig = curvature(v, a)
        k_scaled = curvature(scale * v, scale * a)
        mask = k_orig > 1e-6
        np.testing.assert_allclose(k_scaled[mask], k_orig[mask] / scale, rtol=1e-6)

    @COMMON
    @given(st.integers(min_value=0, max_value=10_000))
    def test_nonnegative(self, seed):
        _, _, v, a = _random_smooth_path(seed)
        assert (curvature(v, a) >= 0).all()

    @COMMON
    @given(st.integers(min_value=0, max_value=10_000))
    def test_speed_rotation_invariant(self, seed):
        t, _, v, _ = _random_smooth_path(seed, 3)
        rotation = _random_rotation(seed + 2, 3)
        np.testing.assert_allclose(speed(v @ rotation.T), speed(v), atol=1e-9)

    @COMMON
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.floats(min_value=0.1, max_value=5.0),
    )
    def test_arc_length_scales_linearly(self, seed, scale):
        t, _, v, _ = _random_smooth_path(seed)
        base = arc_length(v, t)
        scaled = arc_length(scale * v, t)
        np.testing.assert_allclose(scaled, scale * base, rtol=1e-9)
