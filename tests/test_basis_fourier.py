"""Unit tests for the Fourier basis."""

import numpy as np
import pytest

from repro.fda.basis.fourier import FourierBasis
from repro.fda.penalty import gram_matrix


@pytest.fixture
def basis():
    return FourierBasis((0.0, 1.0), n_basis=7)


class TestFourierBasis:
    def test_orthonormal(self, basis):
        gram = gram_matrix(basis, n_nodes=64)
        np.testing.assert_allclose(gram, np.eye(7), atol=1e-12)

    def test_constant_term(self, basis):
        design = basis.evaluate(np.array([0.1, 0.9]))
        np.testing.assert_allclose(design[:, 0], 1.0)

    def test_periodicity(self, basis):
        left = basis.evaluate(np.array([0.0]))
        right = basis.evaluate(np.array([1.0]))
        np.testing.assert_allclose(left, right, atol=1e-10)

    def test_derivative_of_constant_is_zero(self, basis):
        design = basis.evaluate(np.linspace(0, 1, 11), derivative=1)
        np.testing.assert_allclose(design[:, 0], 0.0)

    def test_derivative_analytic(self):
        basis = FourierBasis((0.0, 1.0), n_basis=3)
        t = np.linspace(0, 1, 101)
        d1 = basis.evaluate(t, derivative=1)
        omega = 2 * np.pi
        norm = np.sqrt(2.0)
        # phi_2 = norm*sin(omega t) -> D phi_2 = norm*omega*cos(omega t)
        np.testing.assert_allclose(d1[:, 1], norm * omega * np.cos(omega * t), atol=1e-10)
        # phi_3 = norm*cos(omega t) -> D phi_3 = -norm*omega*sin(omega t)
        np.testing.assert_allclose(d1[:, 2], -norm * omega * np.sin(omega * t), atol=1e-10)

    def test_second_derivative_eigenfunction(self):
        """Sines/cosines are eigenfunctions of D^2 with eigenvalue -freq^2."""
        basis = FourierBasis((0.0, 2.0), n_basis=5)
        t = np.linspace(0, 2, 50)
        values = basis.evaluate(t)
        d2 = basis.evaluate(t, derivative=2)
        for idx in range(1, 5):
            harmonic = (idx + 1) // 2
            freq = harmonic * basis.omega
            np.testing.assert_allclose(d2[:, idx], -(freq**2) * values[:, idx], atol=1e-8)

    def test_even_basis_size(self):
        basis = FourierBasis((0.0, 1.0), n_basis=4)
        design = basis.evaluate(np.linspace(0, 1, 9))
        assert design.shape == (9, 4)
