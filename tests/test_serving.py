"""Tests for the serving layer: persistence, scoring service, streaming."""

import json
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.core.pipeline import GeometricOutlierPipeline
from repro.data.synthetic import make_taxonomy_dataset
from repro.detectors import DETECTOR_REGISTRY, detector_from_state, make_detector
from repro.engine import ExecutionContext
from repro.exceptions import NotFittedError, PersistenceError, ValidationError
from repro.fda.fdata import MFDataGrid
from repro.geometry.mappings import (
    CompositeMapping,
    CurvatureMapping,
    SpeedMapping,
    mapping_from_config,
)
from repro.serving import (
    ARRAYS_NAME,
    FORMAT_VERSION,
    MANIFEST_NAME,
    ScoringService,
    load_pipeline,
    save_pipeline,
    score_stream,
)

#: Constructor kwargs keeping every registered detector happy on tiny data.
DETECTOR_KWARGS = {
    "iforest": {"random_state": 0, "n_estimators": 25},
    "ocsvm": {},
    "knn": {"n_neighbors": 3},
    "lof": {"n_neighbors": 5},
    "mahalanobis": {},
}


@pytest.fixture(scope="module")
def dataset():
    data, labels = make_taxonomy_dataset(
        "correlation", n_inliers=40, n_outliers=6, random_state=0
    )
    return data, labels


def _fitted_pipeline(data, detector_name="iforest", **pipeline_kwargs):
    detector = make_detector(detector_name, **DETECTOR_KWARGS[detector_name])
    pipeline_kwargs.setdefault("n_basis", 12)
    return GeometricOutlierPipeline(detector, **pipeline_kwargs).fit(data)


class TestDetectorState:
    @pytest.mark.parametrize("name", sorted(DETECTOR_REGISTRY))
    def test_export_import_bit_identical(self, name, gaussian_cloud):
        X, _ = gaussian_cloud
        detector = make_detector(name, **DETECTOR_KWARGS[name]).fit(X)
        restored = detector_from_state(detector.export_state())
        assert np.array_equal(restored.score_samples(X), detector.score_samples(X))
        assert restored.threshold_ == detector.threshold_
        assert restored.n_features_ == detector.n_features_

    def test_export_requires_fit(self):
        with pytest.raises(NotFittedError):
            make_detector("iforest").export_state()

    def test_state_contains_no_objects(self, gaussian_cloud):
        X, _ = gaussian_cloud
        state = make_detector("ocsvm").fit(X).export_state()
        for value in state["fitted"].values():
            assert isinstance(value, (np.ndarray, int, float, str, bool))

    def test_type_mismatch_rejected(self, gaussian_cloud):
        X, _ = gaussian_cloud
        state = make_detector("knn", n_neighbors=3).fit(X).export_state()
        state["type"] = "LocalOutlierFactor"
        with pytest.raises(ValidationError):
            from repro.detectors import KNNDetector

            KNNDetector.from_state(state)

    def test_unknown_type_rejected(self):
        with pytest.raises(ValidationError):
            detector_from_state({"type": "NoSuchDetector", "config": {}, "fitted": {}})


class TestPersistenceRoundTrip:
    @pytest.mark.parametrize("name", sorted(DETECTOR_REGISTRY))
    def test_save_load_score_identical(self, name, dataset, tmp_path):
        data, _ = dataset
        pipeline = _fitted_pipeline(data, name)
        reference = pipeline.score_samples(data)
        save_pipeline(pipeline, tmp_path / "model")
        loaded = load_pipeline(tmp_path / "model")
        np.testing.assert_allclose(loaded.score_samples(data), reference, atol=1e-12)

    def test_composite_mapping_round_trip(self, dataset, tmp_path):
        data, _ = dataset
        mapping = CompositeMapping([CurvatureMapping(), SpeedMapping()])
        pipeline = GeometricOutlierPipeline(
            make_detector("iforest", random_state=1), mapping=mapping, n_basis=12
        ).fit(data)
        save_pipeline(pipeline, tmp_path / "model")
        loaded = load_pipeline(tmp_path / "model")
        assert loaded.mapping.name == mapping.name
        np.testing.assert_allclose(
            loaded.score_samples(data), pipeline.score_samples(data), atol=1e-12
        )

    def test_loaded_pipeline_selected_sizes_preserved(self, dataset, tmp_path):
        data, _ = dataset
        pipeline = _fitted_pipeline(data, n_basis=(8, 12, 16))
        save_pipeline(pipeline, tmp_path / "model")
        loaded = load_pipeline(tmp_path / "model")
        assert loaded.selected_n_basis_ == pipeline.selected_n_basis_

    def test_fresh_process_scores_identical(self, dataset, tmp_path):
        """The acceptance criterion: save, reload in a *new* process, score."""
        data, _ = dataset
        pipeline = _fitted_pipeline(data)
        reference = pipeline.score_samples(data)
        save_pipeline(pipeline, tmp_path / "model")
        np.savez(tmp_path / "batch.npz", values=data.values, grid=data.grid)
        script = (
            "import numpy as np\n"
            "from repro.serving import load_pipeline\n"
            "from repro.fda.fdata import MFDataGrid\n"
            f"pipeline = load_pipeline({str(tmp_path / 'model')!r})\n"
            f"bundle = np.load({str(tmp_path / 'batch.npz')!r})\n"
            "data = MFDataGrid(bundle['values'], bundle['grid'])\n"
            f"np.save({str(tmp_path / 'scores.npy')!r}, pipeline.score_samples(data))\n"
        )
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        subprocess.run([sys.executable, "-c", script], check=True, env=env)
        fresh = np.load(tmp_path / "scores.npy")
        np.testing.assert_allclose(fresh, reference, atol=1e-12)

    def test_save_requires_fitted(self, tmp_path):
        pipeline = GeometricOutlierPipeline(make_detector("iforest"))
        with pytest.raises(NotFittedError):
            save_pipeline(pipeline, tmp_path / "model")

    def test_save_rejects_non_pipeline(self, tmp_path):
        with pytest.raises(PersistenceError):
            save_pipeline(object(), tmp_path / "model")


class TestPersistenceErrors:
    def test_missing_directory(self, tmp_path):
        with pytest.raises(PersistenceError, match="no saved pipeline"):
            load_pipeline(tmp_path / "nope")

    def test_missing_manifest(self, tmp_path):
        (tmp_path / "model").mkdir()
        with pytest.raises(PersistenceError, match="manifest"):
            load_pipeline(tmp_path / "model")

    def test_corrupt_manifest_json(self, dataset, tmp_path):
        data, _ = dataset
        save_pipeline(_fitted_pipeline(data), tmp_path / "model")
        (tmp_path / "model" / MANIFEST_NAME).write_text("{not json", encoding="utf-8")
        with pytest.raises(PersistenceError, match="cannot read"):
            load_pipeline(tmp_path / "model")

    def test_wrong_format_version(self, dataset, tmp_path):
        data, _ = dataset
        save_pipeline(_fitted_pipeline(data), tmp_path / "model")
        manifest_path = tmp_path / "model" / MANIFEST_NAME
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        manifest["format_version"] = FORMAT_VERSION + 1
        manifest_path.write_text(json.dumps(manifest), encoding="utf-8")
        with pytest.raises(PersistenceError, match="format version"):
            load_pipeline(tmp_path / "model")

    def test_not_a_repro_manifest(self, dataset, tmp_path):
        data, _ = dataset
        save_pipeline(_fitted_pipeline(data), tmp_path / "model")
        (tmp_path / "model" / MANIFEST_NAME).write_text(
            json.dumps({"format": "something-else"}), encoding="utf-8"
        )
        with pytest.raises(PersistenceError, match="not a repro pipeline"):
            load_pipeline(tmp_path / "model")

    def test_missing_array_bundle(self, dataset, tmp_path):
        data, _ = dataset
        save_pipeline(_fitted_pipeline(data), tmp_path / "model")
        (tmp_path / "model" / ARRAYS_NAME).unlink()
        with pytest.raises(PersistenceError, match="array bundle"):
            load_pipeline(tmp_path / "model")

    def test_corrupt_array_bundle(self, dataset, tmp_path):
        data, _ = dataset
        save_pipeline(_fitted_pipeline(data), tmp_path / "model")
        (tmp_path / "model" / ARRAYS_NAME).write_bytes(b"garbage")
        with pytest.raises(PersistenceError, match="cannot read"):
            load_pipeline(tmp_path / "model")

    @pytest.mark.parametrize("dropped", ["eval_grid", "smoothers", "detector"])
    def test_truncated_state_raises_persistence_error(self, dataset, tmp_path, dropped):
        """Missing state sections surface as PersistenceError, not KeyError."""
        data, _ = dataset
        save_pipeline(_fitted_pipeline(data), tmp_path / "model")
        manifest_path = tmp_path / "model" / MANIFEST_NAME
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        del manifest["state"][dropped]
        manifest_path.write_text(json.dumps(manifest), encoding="utf-8")
        with pytest.raises(PersistenceError):
            load_pipeline(tmp_path / "model")

    @pytest.mark.parametrize("section", ["spec", "state"])
    def test_missing_manifest_section_raises(self, dataset, tmp_path, section):
        """A v2 manifest without its spec/state section fails loudly."""
        data, _ = dataset
        save_pipeline(_fitted_pipeline(data), tmp_path / "model")
        manifest_path = tmp_path / "model" / MANIFEST_NAME
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        del manifest[section]
        manifest_path.write_text(json.dumps(manifest), encoding="utf-8")
        with pytest.raises(PersistenceError, match=section):
            load_pipeline(tmp_path / "model")

    def test_invalid_spec_section_raises(self, dataset, tmp_path):
        """A corrupted spec section surfaces the validator's message."""
        data, _ = dataset
        save_pipeline(_fitted_pipeline(data), tmp_path / "model")
        manifest_path = tmp_path / "model" / MANIFEST_NAME
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        manifest["spec"]["detector"] = {"name": "not-a-detector"}
        manifest_path.write_text(json.dumps(manifest), encoding="utf-8")
        with pytest.raises(PersistenceError, match="unknown detector"):
            load_pipeline(tmp_path / "model")


class TestScoringService:
    def test_register_and_score(self, dataset):
        data, _ = dataset
        pipeline = _fitted_pipeline(data)
        service = ScoringService()
        service.register("main", pipeline)
        assert service.names() == ["main"]
        np.testing.assert_array_equal(
            service.score("main", data), pipeline.score_samples(data)
        )

    def test_register_rejects_unfitted(self):
        service = ScoringService()
        with pytest.raises(NotFittedError):
            service.register("main", GeometricOutlierPipeline(make_detector("iforest")))

    def test_unknown_pipeline_name(self, dataset):
        data, _ = dataset
        with pytest.raises(ValidationError, match="no pipeline named"):
            ScoringService().score("nope", data)

    def test_load_joins_service_context(self, dataset, tmp_path):
        data, _ = dataset
        save_pipeline(_fitted_pipeline(data), tmp_path / "model")
        context = ExecutionContext()
        service = ScoringService(context=context)
        loaded = service.load("main", tmp_path / "model")
        assert loaded.context is context

    def test_micro_batching_matches_direct(self, dataset, tmp_path):
        data, _ = dataset
        save_pipeline(_fitted_pipeline(data), tmp_path / "model")
        service = ScoringService()
        service.load("main", tmp_path / "model")
        direct = service.score("main", data)
        tickets = [
            service.submit("main", data[np.arange(start, min(start + 7, data.n_samples))])
            for start in range(0, data.n_samples, 7)
        ]
        assert not tickets[0].done
        assert service.flush() == len(tickets)
        merged = np.concatenate([t.result() for t in tickets])
        np.testing.assert_allclose(merged, direct, atol=1e-12)

    def test_auto_flush_at_max_pending(self, dataset):
        data, _ = dataset
        service = ScoringService(max_pending=10)
        service.register("main", _fitted_pipeline(data))
        first = service.submit("main", data[np.arange(6)])
        assert not first.done
        second = service.submit("main", data[np.arange(6, 12)])
        # 12 curves >= max_pending=10 -> flushed automatically.
        assert first.done and second.done

    def test_pending_ticket_raises(self, dataset):
        data, _ = dataset
        service = ScoringService()
        service.register("main", _fitted_pipeline(data))
        ticket = service.submit("main", data[np.arange(3)])
        with pytest.raises(NotFittedError, match="pending"):
            ticket.result()

    def test_flush_empty_queue(self):
        assert ScoringService().flush() == 0

    def test_bad_group_does_not_strand_other_tickets(self, dataset):
        """A failing batch poisons only its own group on flush."""
        data, _ = dataset
        service = ScoringService()
        service.register("main", _fitted_pipeline(data))
        good = service.submit("main", data[np.arange(5)])
        # Same grid but p=1 while the pipeline was fitted on p=2 curves:
        # that group fails inside the pipeline when flushed.
        bad = service.submit("main", MFDataGrid(data.values[:3, :, :1], data.grid))
        service.flush()
        assert good.done and bad.done
        np.testing.assert_allclose(
            good.result(), service.score("main", data[np.arange(5)]), atol=1e-12
        )
        with pytest.raises(Exception):
            bad.result()

    def test_same_grid_different_p_not_merged(self, dataset):
        """Grouping keys include the parameter count, not just the grid."""
        data, _ = dataset
        service = ScoringService()
        service.register("main", _fitted_pipeline(data))
        a = service.submit("main", data[np.arange(4)])
        b = service.submit("main", data[np.arange(4, 8)])
        univariate = MFDataGrid(data.values[:3, :, :1], data.grid)
        c = service.submit("main", univariate)
        service.flush()
        # The matching-p groups resolve fine despite c's group failing.
        merged = np.concatenate([a.result(), b.result()])
        np.testing.assert_allclose(
            merged, service.score("main", data[np.arange(8)]), atol=1e-12
        )
        with pytest.raises(Exception):
            c.result()

    def test_warm_grid_skips_refactorization(self, dataset, tmp_path):
        data, _ = dataset
        save_pipeline(_fitted_pipeline(data), tmp_path / "model")
        service = ScoringService()
        service.load("main", tmp_path / "model")
        service.score("main", data[np.arange(5)])  # cold: builds artifacts
        before = service.context.cache.stats.copy()
        for start in range(5, 25, 5):
            service.score("main", data[np.arange(start, start + 5)])
        delta = service.context.cache.stats - before
        assert delta.factorizations == 0
        assert delta.design_builds == 0
        assert delta.factorization_hits > 0

    def test_stats_counters(self, dataset):
        data, _ = dataset
        service = ScoringService()
        service.register("main", _fitted_pipeline(data))
        service.score("main", data[np.arange(4)])
        stats = service.stats()
        assert stats["pipelines"] == 1
        assert stats["served_curves"] == 4
        assert stats["served_requests"] == 1
        assert "cache" in stats


class TestScoreStream:
    def test_chunked_equals_full(self, dataset):
        data, _ = dataset
        pipeline = _fitted_pipeline(data)
        full = pipeline.score_samples(data)
        chunks = list(score_stream(pipeline, data, chunk_size=7))
        assert all(chunk.shape[0] <= 7 for chunk in chunks)
        np.testing.assert_allclose(np.concatenate(chunks), full, atol=1e-12)

    def test_iterable_of_batches(self, dataset):
        data, _ = dataset
        pipeline = _fitted_pipeline(data)
        batches = [data[np.arange(0, 10)], data[np.arange(10, 25)]]
        chunks = list(score_stream(pipeline, iter(batches), chunk_size=100))
        np.testing.assert_allclose(
            np.concatenate(chunks),
            pipeline.score_samples(data[np.arange(25)]),
            atol=1e-12,
        )

    def test_service_stream_counts(self, dataset):
        data, _ = dataset
        service = ScoringService()
        service.register("main", _fitted_pipeline(data))
        list(service.score_stream("main", data, chunk_size=10))
        assert service.served_curves == data.n_samples

    def test_generator_source_is_consumed_lazily(self, dataset):
        data, _ = dataset
        pipeline = _fitted_pipeline(data)
        pulled = []

        def generate():
            for start in (0, 10):
                pulled.append(start)
                yield data[np.arange(start, start + 10)]

        stream = score_stream(pipeline, generate(), chunk_size=100)
        assert pulled == []  # nothing consumed before iteration
        first = next(stream)
        assert pulled == [0]  # one batch pulled per yielded score array
        rest = list(stream)
        assert pulled == [0, 10]
        np.testing.assert_allclose(
            np.concatenate([first, *rest]),
            pipeline.score_samples(data[np.arange(20)]),
            atol=1e-12,
        )

    def test_rejects_bad_input(self, dataset):
        data, _ = dataset
        pipeline = _fitted_pipeline(data)
        with pytest.raises(ValidationError):
            list(score_stream(pipeline, 42))

    def test_rejects_raw_arrays(self, dataset):
        data, _ = dataset
        pipeline = _fitted_pipeline(data)
        with pytest.raises(ValidationError, match="ambiguous"):
            list(score_stream(pipeline, data.values))

    def test_rejects_bad_chunk_size(self, dataset):
        data, _ = dataset
        pipeline = _fitted_pipeline(data)
        with pytest.raises(ValidationError):
            list(score_stream(pipeline, data, chunk_size=0))


class TestFlushHardening:
    """Exception safety + counter integrity of the micro-batch queue."""

    def test_failed_ticket_reraises_captured_error(self, dataset):
        data, _ = dataset
        service = ScoringService()
        service.register("main", _fitted_pipeline(data))
        bad = service.submit("main", MFDataGrid(data.values[:3, :, :1], data.grid))
        service.flush()
        assert bad.done and bad.failed
        with pytest.raises(Exception) as first:
            bad.result()
        with pytest.raises(Exception) as second:
            bad.result()  # re-raises the same captured error every time
        assert first.value is second.value

    def test_base_exception_mid_flush_fails_stragglers(self, dataset):
        """A KeyboardInterrupt-style teardown strands no ticket."""

        class Teardown(BaseException):
            pass

        data, _ = dataset
        service = ScoringService()
        pipeline = _fitted_pipeline(data)

        def exploding_score(mfd):
            raise Teardown("worker torn down")

        pipeline.score_samples = exploding_score
        service.register("main", pipeline)
        tickets = [service.submit("main", data[np.arange(3)]) for _ in range(3)]
        with pytest.raises(Teardown):
            service.flush()
        for ticket in tickets:
            assert ticket.done and ticket.failed
            with pytest.raises(RuntimeError, match="flush aborted mid-run"):
                ticket.result()
        # The finally-block bookkeeping still ran exactly once.
        stats = service.stats()
        assert stats["pending_requests"] == 0
        assert stats["pending_curves"] == 0
        assert stats["inflight_curves"] == 0
        assert stats["flushes"] == 1
        assert stats["failed_requests"] == 3

    def test_wrong_score_shape_fails_only_that_group(self, dataset):
        data, _ = dataset
        service = ScoringService()
        good_pipeline = _fitted_pipeline(data)
        bad_pipeline = _fitted_pipeline(data)
        bad_pipeline.score_samples = lambda mfd: np.zeros(mfd.n_samples + 1)
        service.register("good", good_pipeline)
        service.register("bad", bad_pipeline)
        good = service.submit("good", data[np.arange(4)])
        bad = service.submit("bad", data[np.arange(4)])
        assert service.flush() == 2
        np.testing.assert_allclose(
            good.result(), good_pipeline.score_samples(data[np.arange(4)]), atol=1e-12
        )
        with pytest.raises(ValidationError, match="returned scores of shape"):
            bad.result()

    def test_ticket_resolves_exactly_once(self):
        from repro.serving import ScoreTicket

        ticket = ScoreTicket("main", 2)
        ticket._resolve(np.zeros(2))
        with pytest.raises(RuntimeError, match="already resolved"):
            ticket._resolve(np.zeros(2))
        with pytest.raises(RuntimeError, match="already resolved"):
            ticket._fail(ValueError("late"))
        np.testing.assert_array_equal(ticket.result(), np.zeros(2))

    def test_stats_no_drift_across_interleaved_traffic(self, dataset):
        """flushes/pending/served/failed stay consistent through a messy mix."""
        data, _ = dataset
        service = ScoringService(max_pending=1_000_000)
        service.register("main", _fitted_pipeline(data))

        def assert_invariants():
            stats = service.stats()
            assert stats["pending_requests"] >= 0
            assert stats["pending_curves"] >= 0
            assert stats["inflight_curves"] == 0  # single-threaded here
            return stats

        submitted = 0
        service.flush()  # empty: must not count as a flush
        assert assert_invariants()["flushes"] == 0

        for round_no in range(3):
            service.submit("main", data[np.arange(3)])
            service.submit("main", MFDataGrid(data.values[:2, :, :1], data.grid))
            submitted += 2
            assert assert_invariants()["pending_requests"] == 2
            service.flush()
            stats = assert_invariants()
            assert stats["flushes"] == round_no + 1
            assert stats["pending_requests"] == 0
            assert stats["served_requests"] + stats["failed_requests"] == submitted
        # Direct scoring and empty flushes do not disturb request accounting.
        service.score("main", data[np.arange(2)])
        service.flush()
        stats = assert_invariants()
        assert stats["flushes"] == 3
        assert stats["served_requests"] + stats["failed_requests"] == submitted + 1

    def test_threaded_submits_resolve_exactly_once(self, dataset):
        """Every ticket resolves under racing auto-flushes (satellite 5)."""
        import threading

        data, _ = dataset
        service = ScoringService(max_pending=12)
        service.register("main", _fitted_pipeline(data))

        per_thread, n_threads, batch = 15, 6, 3
        tickets: list = []
        tickets_lock = threading.Lock()
        start = threading.Barrier(n_threads + 1)

        def submitter():
            start.wait()
            for _ in range(per_thread):
                ticket = service.submit("main", data[np.arange(batch)])
                with tickets_lock:
                    tickets.append(ticket)

        def flusher():
            start.wait()
            for _ in range(10):
                service.flush()

        threads = [threading.Thread(target=submitter) for _ in range(n_threads)]
        threads.append(threading.Thread(target=flusher))
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        service.flush()  # drain whatever the races left behind

        assert len(tickets) == per_thread * n_threads
        expected = service.score("main", data[np.arange(batch)])
        for ticket in tickets:
            assert ticket.done and not ticket.failed
            np.testing.assert_allclose(ticket.result(), expected, atol=1e-12)
        stats = service.stats()
        assert stats["pending_requests"] == 0
        assert stats["inflight_curves"] == 0
        assert stats["served_requests"] == len(tickets) + 1  # + direct score
        assert stats["failed_requests"] == 0
        assert stats["served_curves"] == (len(tickets) + 1) * batch


class TestMmapPersistence:
    def test_uncompressed_mmap_roundtrip_identical(self, dataset, tmp_path):
        data, _ = dataset
        pipeline = _fitted_pipeline(data)
        save_pipeline(pipeline, tmp_path / "model", compressed=False)
        loaded = load_pipeline(tmp_path / "model", mmap=True)
        np.testing.assert_array_equal(
            loaded.score_samples(data), pipeline.score_samples(data)
        )

    def test_uncompressed_bundle_actually_memory_maps(self, dataset, tmp_path):
        from repro.serving.persist import _read_arrays

        data, _ = dataset
        save_pipeline(_fitted_pipeline(data), tmp_path / "model", compressed=False)
        arrays = _read_arrays(tmp_path / "model", mmap=True)
        mapped = [k for k, v in arrays.items() if isinstance(v, np.memmap)]
        assert mapped, "no array member was memory-mapped from the stored bundle"

    def test_compressed_bundle_mmap_falls_back_to_eager(self, dataset, tmp_path):
        data, _ = dataset
        pipeline = _fitted_pipeline(data)
        save_pipeline(pipeline, tmp_path / "model")  # compressed (deflated members)
        loaded = load_pipeline(tmp_path / "model", mmap=True)
        np.testing.assert_array_equal(
            loaded.score_samples(data), pipeline.score_samples(data)
        )

    def test_state_type_corruption_raises_persistence_error(self, dataset, tmp_path):
        """A malformed manifest must never leak a raw TypeError/ValueError."""
        data, _ = dataset
        save_pipeline(_fitted_pipeline(data), tmp_path / "model")
        manifest_path = tmp_path / "model" / MANIFEST_NAME
        manifest = json.loads(manifest_path.read_text())
        manifest["state"]["eval_grid"] = "hello"
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(PersistenceError, match="cannot restore pipeline"):
            load_pipeline(tmp_path / "model")
