"""Tests for the shared execution engine (cache, context, parallel harness)."""

import numpy as np
import pytest

from repro.core.methods import MappedDetectorMethod
from repro.data import make_ecg_dataset, square_augment
from repro.engine import CacheStats, ExecutionContext, FactorizationCache
from repro.evaluation import experiment as experiment_module
from repro.evaluation.experiment import (
    MAX_SPLIT_RETRIES,
    _draw_valid_split,
    run_contamination_experiment,
)
from repro.evaluation.splits import Split
from repro.exceptions import ValidationError
from repro.fda.basis import BSplineBasis, FourierBasis
from repro.fda.fdata import FDataGrid
from repro.fda.selection import select_n_basis
from repro.fda.smoothing import BasisSmoother


@pytest.fixture(scope="module")
def small_dataset():
    data, labels, _ = make_ecg_dataset(n_normal=40, n_abnormal=20, random_state=3)
    return square_augment(data), labels


@pytest.fixture()
def noisy_sines():
    rng = np.random.default_rng(0)
    grid = np.linspace(0.0, 1.0, 60)
    values = np.sin(2 * np.pi * grid)[None, :] + 0.05 * rng.standard_normal((8, 60))
    return FDataGrid(values, grid)


class TestFactorizationCache:
    def test_design_cached_by_basis_and_grid(self, noisy_sines):
        cache = FactorizationCache()
        basis = BSplineBasis((0.0, 1.0), 10)
        d1 = cache.design(basis, noisy_sines.grid)
        # An *equal but distinct* basis object must hit the same entry.
        d2 = cache.design(BSplineBasis((0.0, 1.0), 10), noisy_sines.grid)
        assert d1 is d2
        assert cache.stats.design_builds == 1
        assert cache.stats.design_hits == 1

    def test_distinct_configurations_do_not_collide(self, noisy_sines):
        cache = FactorizationCache()
        grid = noisy_sines.grid
        cache.solver(BSplineBasis((0.0, 1.0), 10), grid, 1e-4, 2)
        cache.solver(BSplineBasis((0.0, 1.0), 12), grid, 1e-4, 2)
        cache.solver(BSplineBasis((0.0, 1.0), 10), grid, 1e-3, 2)
        cache.solver(BSplineBasis((0.0, 1.0), 10), grid[:-1], 1e-4, 2)
        cache.solver(FourierBasis((0.0, 1.0), 10), grid, 1e-4, 2)
        assert cache.stats.factorizations == 5
        assert cache.stats.factorization_hits == 0

    def test_bspline_order_distinguishes_keys(self):
        a = BSplineBasis((0.0, 1.0), 10, order=4)
        b = BSplineBasis((0.0, 1.0), 10, order=5)
        assert a.cache_key != b.cache_key

    def test_lru_bound(self, noisy_sines):
        cache = FactorizationCache(maxsize=2)
        for n in (8, 9, 10, 11):
            cache.design(BSplineBasis((0.0, 1.0), n), noisy_sines.grid)
        # Only the two most recent entries survive.
        cache.design(BSplineBasis((0.0, 1.0), 11), noisy_sines.grid)
        assert cache.stats.design_hits == 1
        cache.design(BSplineBasis((0.0, 1.0), 8), noisy_sines.grid)
        assert cache.stats.design_builds == 5

    def test_clear_resets(self, noisy_sines):
        cache = FactorizationCache()
        cache.design(BSplineBasis((0.0, 1.0), 10), noisy_sines.grid)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats == CacheStats()

    def test_rejects_bad_maxsize(self):
        with pytest.raises(ValidationError):
            FactorizationCache(maxsize=0)


class TestCachedSmoothingEquivalence:
    def test_cached_and_private_coefficients_identical(self, noisy_sines):
        shared = FactorizationCache()
        basis = BSplineBasis((0.0, 1.0), 12)
        warm = BasisSmoother(basis, smoothing=1e-4, cache=shared)
        warm.fit_grid(noisy_sines)  # populate the shared cache
        cached = BasisSmoother(BSplineBasis((0.0, 1.0), 12), smoothing=1e-4, cache=shared)
        fresh = BasisSmoother(BSplineBasis((0.0, 1.0), 12), smoothing=1e-4)
        c1 = cached.fit_grid(noisy_sines).coefficients
        c2 = fresh.fit_grid(noisy_sines).coefficients
        assert np.array_equal(c1, c2)
        assert shared.stats.factorizations == 1

    def test_hat_matrix_identical(self, noisy_sines):
        shared = FactorizationCache()
        basis = BSplineBasis((0.0, 1.0), 12)
        cached = BasisSmoother(basis, smoothing=1e-4, cache=shared)
        h1 = cached.hat_matrix(noisy_sines.grid)
        h2 = cached.hat_matrix(noisy_sines.grid)
        assert h1 is h2  # second call is a pure cache hit
        fresh = BasisSmoother(BSplineBasis((0.0, 1.0), 12), smoothing=1e-4)
        assert np.array_equal(h1, fresh.hat_matrix(noisy_sines.grid))

    def test_selection_cached_vs_uncached_identical(self, noisy_sines):
        factory = lambda dom, L: BSplineBasis(dom, L)
        candidates = (6, 8, 10, 12)
        plain = select_n_basis(noisy_sines, factory, candidates, smoothing=1e-4)
        cache = FactorizationCache()
        fitted = select_n_basis(
            noisy_sines, factory, candidates, smoothing=1e-4,
            cache=cache, return_fitted=True,
        )
        assert fitted.best == plain.best
        for cand in candidates:
            assert fitted.scores[cand] == plain.scores[cand]
        # The returned fit equals an explicit fit of the winner.
        direct = BasisSmoother(factory((0.0, 1.0), plain.best), smoothing=1e-4)
        assert np.array_equal(
            fitted.fit.coefficients, direct.fit_grid(noisy_sines).coefficients
        )
        # One factorization per candidate, none for the winner's refit.
        assert cache.stats.factorizations == len(candidates)


class TestPrepareFactorizationCount:
    def test_one_factorization_per_candidate_configuration(self, small_dataset):
        data, _ = small_dataset
        candidates = (8, 12, 16)
        ctx = ExecutionContext()
        method = MappedDetectorMethod("iforest", n_basis=candidates)
        method.prepare(data, random_state=0, context=ctx)
        # The p parameters share grid/λ/order, so the distinct normal-equation
        # configurations are exactly the candidate sizes: one factorization
        # each, every other (parameter, candidate) evaluation is a cache hit.
        assert ctx.cache.stats.factorizations == len(candidates)
        assert ctx.cache.stats.factorization_hits > 0
        method.prepare(data, random_state=0, context=ctx)
        assert ctx.cache.stats.factorizations == len(candidates)


class TestExecutionContext:
    def test_map_serial_and_parallel_agree(self):
        ctx = ExecutionContext(n_jobs=2)
        items = list(range(7))
        assert ctx.map(_square, items) == [i * i for i in items]
        assert ctx.map(_square, items, n_jobs=1) == [i * i for i in items]

    def test_rejects_bad_n_jobs(self):
        for bad in (-3, 0, 1.5, "2", True):
            with pytest.raises(ValidationError):
                ExecutionContext(n_jobs=bad)

    def test_negative_one_resolves_to_cores(self):
        assert ExecutionContext(n_jobs=-1).n_jobs >= 1

    def test_rejects_bad_cache(self):
        with pytest.raises(ValidationError):
            ExecutionContext(cache="nope")


def _square(x):
    return x * x


class TestParallelExperiment:
    def test_parallel_records_bit_identical_to_serial(self, small_dataset):
        data, labels = small_dataset
        def run(n_jobs):
            return run_contamination_experiment(
                data, labels,
                [MappedDetectorMethod("iforest", n_basis=10)],
                contamination_levels=(0.1, 0.2),
                n_repetitions=2,
                random_state=11,
                n_jobs=n_jobs,
            )
        serial, parallel = run(1), run(2)
        assert serial.to_records() == parallel.to_records()

    def test_n_jobs_two_bit_identical_golden_path(self, small_dataset):
        """Regression guard for the engine's seed-spawning contract.

        The serving/production story leans on parallel experiment runs
        being *bit-identical* to serial ones; this pins the full
        golden path (two mapped methods, shared context, OCSVM with ν
        tuning) on a small grid so any scheduler- or seed-ordering
        regression fails loudly.
        """
        data, labels = small_dataset

        def run(n_jobs):
            table = run_contamination_experiment(
                data, labels,
                [MappedDetectorMethod("iforest", n_basis=10, n_estimators=25),
                 MappedDetectorMethod("ocsvm", n_basis=10)],
                contamination_levels=(0.05, 0.2),
                n_repetitions=3,
                train_fraction=0.7,
                random_state=123,
                n_jobs=n_jobs,
                context=ExecutionContext(),
            )
            return table.to_records()

        serial, parallel = run(1), run(2)
        assert serial == parallel  # exact float equality, not approximate

    def test_shared_context_caches_across_methods(self, small_dataset):
        data, labels = small_dataset
        ctx = ExecutionContext()
        run_contamination_experiment(
            data, labels,
            [MappedDetectorMethod("iforest", n_basis=10),
             MappedDetectorMethod("ocsvm", n_basis=10)],
            contamination_levels=(0.1,),
            n_repetitions=1,
            random_state=0,
            context=ctx,
        )
        # Both methods smooth the same (basis, grid, λ) configuration.
        assert ctx.cache.stats.factorizations == 1
        assert ctx.cache.stats.factorization_hits >= 1


class TestDegenerateSplitRetry:
    def test_retries_until_two_class_test_set(self, small_dataset, monkeypatch):
        _, labels = small_dataset
        real_split = experiment_module.contaminated_split
        calls = {"n": 0}

        def flaky(labels_, c, train_fraction, random_state):
            calls["n"] += 1
            if calls["n"] <= 3:
                inliers = np.nonzero(np.asarray(labels_) == 0)[0]
                return Split(train=inliers[:2], test=inliers[2:4])
            return real_split(labels_, c, train_fraction=train_fraction,
                              random_state=random_state)

        monkeypatch.setattr(experiment_module, "contaminated_split", flaky)
        rng = np.random.default_rng(0)
        split, test_labels = _draw_valid_split(labels, 0.2, 0.5, rng)
        assert calls["n"] == 4
        assert test_labels.min() != test_labels.max()

    def test_raises_after_bounded_attempts(self, small_dataset, monkeypatch):
        _, labels = small_dataset
        inliers = np.nonzero(np.asarray(labels) == 0)[0]
        calls = {"n": 0}

        def always_degenerate(labels_, c, train_fraction, random_state):
            calls["n"] += 1
            return Split(train=inliers[:2], test=inliers[2:4])

        monkeypatch.setattr(experiment_module, "contaminated_split", always_degenerate)
        rng = np.random.default_rng(0)
        with pytest.raises(ValidationError, match="both classes"):
            _draw_valid_split(labels, 0.2, 0.5, rng)
        assert calls["n"] == MAX_SPLIT_RETRIES
