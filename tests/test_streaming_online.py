"""Unit tests for StreamingDetector and its incremental scorer caches."""

import numpy as np
import pytest

from repro.core.pipeline import GeometricOutlierPipeline
from repro.data import make_drifting_stream
from repro.depth.dirout import dirout_scores
from repro.depth.functional import functional_depth
from repro.depth.funta import funta_outlyingness
from repro.detectors import IsolationForest
from repro.exceptions import NotFittedError, ValidationError
from repro.fda.fdata import MFDataGrid
from repro.serving import ScoringService
from repro.streaming import (
    DepthRankDrift,
    ReservoirWindow,
    SlidingWindow,
    StreamingDetector,
    StreamingQuantileThreshold,
)
from repro.streaming.online import SortedLanes, _PipelineState

GRID = np.linspace(0.0, 1.0, 36)
M = GRID.shape[0]


def _curves(n, p=1, seed=0):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((n, M, p)).cumsum(axis=1) / 5.0


def _mfd(values):
    return MFDataGrid(values, GRID)


class TestSortedLanes:
    def test_insert_and_replace_track_full_sort(self):
        rng = np.random.default_rng(0)
        lanes = SortedLanes(6, 12)
        rows = []
        for _ in range(12):
            row = rng.standard_normal(6).round(1)  # rounding forces ties
            lanes.insert(row)
            rows.append(row)
        reference = np.array(rows)
        np.testing.assert_array_equal(
            lanes.lanes[:, :12], np.sort(reference.T, axis=1)
        )
        for _ in range(100):
            victim = rng.integers(0, 12)
            replacement = rng.standard_normal(6).round(1)
            lanes.replace(reference[victim].copy(), replacement)
            reference[victim] = replacement
            np.testing.assert_array_equal(
                lanes.lanes[:, :12], np.sort(reference.T, axis=1)
            )

    def test_median_is_bit_identical_to_numpy(self):
        rng = np.random.default_rng(1)
        for n in (3, 4, 11, 12):
            lanes = SortedLanes(5, n)
            rows = rng.standard_normal((n, 5))
            for row in rows:
                lanes.insert(row)
            np.testing.assert_array_equal(lanes.median(), np.median(rows, axis=0))

    def test_rank_counts_match_boolean_comparisons(self):
        rng = np.random.default_rng(2)
        lanes = SortedLanes(4, 9)
        rows = rng.standard_normal((9, 4)).round(1)
        for row in rows:
            lanes.insert(row)
        queries = np.concatenate([rng.standard_normal((5, 4)).round(1), rows[:2]])
        le, lt = lanes.rank_counts(queries)
        expected_le = (rows[None, :, :] <= queries[:, None, :]).sum(axis=1).T
        expected_lt = (rows[None, :, :] < queries[:, None, :]).sum(axis=1).T
        np.testing.assert_array_equal(le, expected_le)
        np.testing.assert_array_equal(lt, expected_lt)


class TestStreamingEqualsBatch:
    """The acceptance pins: online full window == one-shot batch."""

    @pytest.mark.parametrize("p", [1, 2])
    def test_funta_full_window_matches_batch(self, p):
        reference = _curves(20, p=p, seed=3)
        queries = _mfd(_curves(6, p=p, seed=4))
        detector = StreamingDetector("funta", SlidingWindow(32), min_reference=4)
        detector.prime(_mfd(reference))
        online = detector.score(queries)
        batch = funta_outlyingness(queries, reference=_mfd(reference))
        np.testing.assert_array_equal(online, batch)

    def test_funta_after_evictions_matches_batch_on_window(self, subtests=None):
        stream = _curves(50, p=2, seed=5)
        detector = StreamingDetector("funta", SlidingWindow(16), min_reference=4)
        detector.prime(_mfd(stream))  # 50 curves through a 16-slot ring
        queries = _mfd(_curves(5, p=2, seed=6))
        online = detector.score(queries)
        physical = funta_outlyingness(
            queries, reference=_mfd(detector.window.values.copy())
        )
        np.testing.assert_array_equal(online, physical)
        logical = funta_outlyingness(
            queries, reference=_mfd(detector.window.ordered_values())
        )
        np.testing.assert_allclose(online, logical, rtol=1e-12, atol=0.0)

    def test_dirout_p1_full_window_matches_batch(self):
        reference = _curves(20, seed=7)
        queries = _mfd(_curves(6, seed=8))
        detector = StreamingDetector("dirout", SlidingWindow(32), min_reference=4)
        detector.prime(_mfd(reference))
        online = detector.score(queries)
        batch = dirout_scores(queries, reference=_mfd(reference), method="total")
        np.testing.assert_array_equal(online, batch)

    def test_dirout_p1_after_evictions_matches_batch_on_window(self):
        detector = StreamingDetector("dirout", SlidingWindow(12), min_reference=4)
        detector.prime(_mfd(_curves(40, seed=9)))
        queries = _mfd(_curves(5, seed=10))
        online = detector.score(queries)
        batch = dirout_scores(
            queries, reference=_mfd(detector.window.values.copy()), method="total"
        )
        np.testing.assert_array_equal(online, batch)

    def test_halfspace_p1_matches_batch(self):
        detector = StreamingDetector("halfspace", SlidingWindow(12), min_reference=4)
        detector.prime(_mfd(_curves(30, seed=11)))
        queries = _mfd(_curves(5, seed=12))
        online = detector.score(queries)
        depth = functional_depth(
            queries, _mfd(detector.window.values.copy()), notion="halfspace"
        )
        np.testing.assert_array_equal(online, 1.0 - depth)

    @pytest.mark.parametrize("kind", ["funta", "dirout", "halfspace"])
    def test_incremental_equals_refit_oracle_per_arrival(self, kind):
        stream = _curves(40, seed=13)
        incremental = StreamingDetector(kind, SlidingWindow(10), min_reference=4)
        refit = StreamingDetector(
            kind, SlidingWindow(10), min_reference=4, incremental=False
        )
        for i in range(40):
            chunk = _mfd(stream[i : i + 1])
            a = incremental.process(chunk)
            b = refit.process(chunk)
            assert (a.scores is None) == (b.scores is None)
            if a.scores is not None:
                np.testing.assert_array_equal(a.scores, b.scores)

    @pytest.mark.parametrize("kind", ["dirout", "halfspace"])
    def test_p2_falls_back_to_seeded_refit(self, kind):
        detector = StreamingDetector(kind, SlidingWindow(16), min_reference=4)
        detector.prime(_mfd(_curves(16, p=2, seed=14)))
        assert detector.effective_incremental is False
        queries = _mfd(_curves(3, p=2, seed=15))
        np.testing.assert_array_equal(detector.score(queries), detector.score(queries))


class TestPipelineKind:
    @pytest.fixture(scope="class")
    def pipeline(self):
        curves = _curves(30, p=2, seed=16)
        # Few eval points keep the feature dimension (8) below the
        # window sizes used here, so the windowed scatter is full rank.
        pipeline = GeometricOutlierPipeline(
            IsolationForest(n_estimators=20, random_state=0), n_basis=8,
            eval_points=8,
        )
        pipeline.fit(_mfd(curves))
        return pipeline

    def test_features_are_windowed_and_scored(self, pipeline):
        detector = StreamingDetector(
            "pipeline", SlidingWindow(16), pipeline=pipeline, min_reference=8
        )
        detector.prime(_mfd(_curves(16, p=2, seed=17)))
        scores = detector.score(_mfd(_curves(4, p=2, seed=18)))
        assert scores.shape == (4,)
        assert np.all(np.isfinite(scores)) and np.all(scores >= 0.0)

    def test_incremental_moments_match_rebuild(self, pipeline):
        incremental = StreamingDetector(
            "pipeline", SlidingWindow(16), pipeline=pipeline, min_reference=12
        )
        refit = StreamingDetector(
            "pipeline", SlidingWindow(16), pipeline=pipeline, min_reference=12,
            incremental=False,
        )
        stream = _curves(40, p=2, seed=19)
        queries = _mfd(_curves(4, p=2, seed=20))
        for i in range(0, 40, 4):
            chunk = _mfd(stream[i : i + 4])
            incremental.process(chunk)
            refit.process(chunk)
        np.testing.assert_allclose(
            incremental.score(queries), refit.score(queries), rtol=1e-6
        )

    def test_cholesky_survives_many_rank_one_updates(self):
        rng = np.random.default_rng(21)
        state = _PipelineState(ridge_eps=1e-9, resync_every=10_000, incremental=True)
        window = SlidingWindow(10)
        features = rng.standard_normal((80, 5))
        for i in range(12):
            state.apply(window.observe(features[i]))
        queries = rng.standard_normal((3, 5))
        state.score(queries, window)  # installs the factor
        for i in range(12, 80):
            state.apply(window.observe(features[i]))
        assert state._chol is not None  # maintained, not rebuilt
        oracle = _PipelineState(ridge_eps=1e-9, resync_every=10_000, incremental=False)
        np.testing.assert_allclose(
            state.score(queries, window), oracle.score(queries, window), rtol=1e-6
        )

    def test_requires_fitted_pipeline(self):
        unfitted = GeometricOutlierPipeline(IsolationForest(), n_basis=8)
        with pytest.raises(ValidationError, match="fitted"):
            StreamingDetector("pipeline", SlidingWindow(8), pipeline=unfitted)

    def test_pipeline_argument_rejected_for_other_kinds(self, pipeline):
        with pytest.raises(ValidationError, match="only accepted"):
            StreamingDetector("funta", SlidingWindow(8), pipeline=pipeline)


class TestProcessFlow:
    def test_warmup_then_scores(self):
        detector = StreamingDetector("funta", SlidingWindow(16), min_reference=8)
        first = detector.process(_mfd(_curves(5, seed=22)))
        assert first.warmup and first.scores is None and first.n_reference == 5
        second = detector.process(_mfd(_curves(5, seed=23)))
        assert second.warmup  # 5 < 8 still
        third = detector.process(_mfd(_curves(5, seed=24)))
        assert not third.warmup and third.scores.shape == (5,)
        assert detector.n_seen == 15 and detector.n_scored == 5

    def test_threshold_flags_and_counts(self):
        detector = StreamingDetector(
            "funta", SlidingWindow(32), min_reference=8,
            threshold=StreamingQuantileThreshold(0.2, capacity=64),
        )
        detector.prime(_mfd(_curves(16, seed=25)))
        result = detector.process(_mfd(_curves(10, seed=26)))
        assert result.flags is not None and result.threshold is not None
        np.testing.assert_array_equal(result.flags, result.scores > result.threshold)
        assert detector.n_flagged == int(result.flags.sum())

    def test_update_policy_none_freezes_reference(self):
        detector = StreamingDetector(
            "funta", SlidingWindow(16), min_reference=8, update_policy="none"
        )
        detector.prime(_mfd(_curves(10, seed=27)))
        frozen = detector.window.values.copy()
        detector.process(_mfd(_curves(5, seed=28)))
        np.testing.assert_array_equal(detector.window.values, frozen)

    def test_update_policy_inliers_keeps_flagged_out(self):
        detector = StreamingDetector(
            "funta", SlidingWindow(64), min_reference=8,
            threshold=StreamingQuantileThreshold(0.3, capacity=64),
            update_policy="inliers",
        )
        detector.prime(_mfd(_curves(16, seed=29)))
        result = detector.process(_mfd(_curves(12, seed=30)))
        expected = 16 + int((~result.flags).sum())
        assert detector.window.size == expected

    def test_on_drift_rereference_resets_window(self):
        detector = StreamingDetector(
            "funta",
            ReservoirWindow(32, random_state=0),
            min_reference=8,
            threshold=StreamingQuantileThreshold(0.1, capacity=64),
            drift=DepthRankDrift(
                baseline_size=16, recent_size=8, alpha=0.2, patience=1, min_gap=1
            ),
            on_drift="rereference",
        )
        detector.prime(_mfd(_curves(32, seed=31)))
        rng = np.random.default_rng(32)
        fired = False
        for i in range(40):
            shifted = rng.standard_normal((4, M, 1)).cumsum(axis=1) / 5.0 + 5.0
            result = detector.process(_mfd(shifted))
            if result.drift is not None:
                fired = True
                assert detector.n_rereferences == 1
                assert result.n_reference <= 4  # refilled from this batch only
                break
        assert fired

    @pytest.mark.parametrize("kind", ["funta", "dirout", "halfspace"])
    def test_externally_prefilled_window_syncs_caches(self, kind):
        # A window populated before the detector attaches (shared or
        # hand-primed through observe()) must still score correctly:
        # the incremental caches replay its contents on first use.
        window = SlidingWindow(24)
        for curve in _curves(20, seed=45):
            window.observe(curve)
        detector = StreamingDetector(kind, window, min_reference=8)
        refit = StreamingDetector(
            kind, SlidingWindow(24), min_reference=8, incremental=False
        )
        refit.prime(_mfd(_curves(20, seed=45)))
        queries = _mfd(_curves(4, seed=46))
        np.testing.assert_array_equal(detector.score(queries), refit.score(queries))
        # process() on the prefilled window works too (scorer exists).
        result = detector.process(queries)
        assert not result.warmup and result.scores.shape == (4,)

    def test_score_before_ready_raises(self):
        detector = StreamingDetector("funta", SlidingWindow(16), min_reference=8)
        with pytest.raises(NotFittedError, match="min_reference"):
            detector.score(_mfd(_curves(3, seed=33)))

    def test_grid_and_parameter_mismatches_rejected(self):
        detector = StreamingDetector("funta", SlidingWindow(16), min_reference=8)
        detector.prime(_mfd(_curves(8, seed=34)))
        other_grid = MFDataGrid(_curves(2, seed=35), np.linspace(0.0, 2.0, M))
        with pytest.raises(ValidationError, match="grid"):
            detector.process(other_grid)
        with pytest.raises(ValidationError, match="parameters"):
            detector.process(_mfd(_curves(2, p=2, seed=36)))

    def test_constructor_validation(self):
        with pytest.raises(ValidationError, match="kind"):
            StreamingDetector("knn", SlidingWindow(8))
        with pytest.raises(ValidationError, match="ReferenceWindow"):
            StreamingDetector("funta", object())
        with pytest.raises(ValidationError, match="update_policy"):
            StreamingDetector("funta", SlidingWindow(8), update_policy="some")
        with pytest.raises(ValidationError, match="on_drift"):
            StreamingDetector("funta", SlidingWindow(8), on_drift="panic")
        with pytest.raises(ValidationError, match="unknown options"):
            StreamingDetector("funta", SlidingWindow(8), n_directions=5)
        with pytest.raises(ValidationError, match="exceeds"):
            StreamingDetector("funta", SlidingWindow(8), min_reference=9)
        with pytest.raises(ValidationError, match="update"):
            StreamingDetector("funta", SlidingWindow(8), threshold=object())
        with pytest.raises(ValidationError, match="DepthRankDrift"):
            StreamingDetector("funta", SlidingWindow(8), drift=object())

    def test_stats_surface(self):
        detector = StreamingDetector("funta", SlidingWindow(16), min_reference=8)
        detector.prime(_mfd(_curves(8, seed=37)))
        detector.process(_mfd(_curves(4, seed=38)))
        stats = detector.stats()
        assert stats["kind"] == "funta"
        assert stats["n_seen"] == 12 and stats["n_scored"] == 4
        assert stats["incremental"] is True


class TestDriftingStreamIntegration:
    def test_drift_monitor_fires_after_injected_regime_change(self):
        stream = make_drifting_stream(
            n_chunks=30, chunk_size=16, n_points=48, drift_at=15,
            drift_phase=1.0, drift_scale=1.4, random_state=0,
        )
        detector = StreamingDetector(
            "funta", SlidingWindow(96), min_reference=32,
            drift=DepthRankDrift(
                baseline_size=96, recent_size=64, alpha=0.01,
                patience=1, min_gap=32,
            ),
        )
        fired_at = None
        for chunk_idx, (chunk, _) in enumerate(stream):
            result = detector.process(chunk)
            if result.drift is not None and fired_at is None:
                fired_at = chunk_idx
        assert fired_at is not None and fired_at >= 14

    def test_stream_generator_is_reproducible_and_labelled(self):
        make = lambda: make_drifting_stream(
            n_chunks=4, chunk_size=6, n_points=32, burst_at=(2,),
            burst_size=2, random_state=5,
        )
        first = [(chunk.values, labels) for chunk, labels in make()]
        second = [(chunk.values, labels) for chunk, labels in make()]
        for (va, la), (vb, lb) in zip(first, second):
            np.testing.assert_array_equal(va, vb)
            np.testing.assert_array_equal(la, lb)
        labels = np.concatenate([l for _, l in first])
        assert labels.sum() == 2  # exactly the injected burst
        assert first[0][0].shape == (6, 32, 2)


class TestServiceIntegration:
    def test_streaming_detector_serves_through_service(self):
        service = ScoringService()
        detector = StreamingDetector("funta", SlidingWindow(32), min_reference=8)
        service.register("stream", detector)
        assert detector.context is service.context
        warm = _mfd(_curves(16, seed=40))
        list(service.stream("stream", warm, chunk_size=8))
        scores = service.score("stream", _mfd(_curves(3, seed=41)))
        assert scores.shape == (3,)
        assert service.served_curves == 19

    def test_score_stream_pads_warmup_with_nan(self):
        service = ScoringService()
        detector = StreamingDetector("funta", SlidingWindow(32), min_reference=16)
        service.register("stream", detector)
        data = _mfd(_curves(32, seed=42))
        chunks = list(service.score_stream("stream", data, chunk_size=8))
        flat = np.concatenate(chunks)
        assert flat.shape == (32,)
        assert np.isnan(flat[:16]).all() and np.isfinite(flat[16:]).all()

    def test_submit_rejects_streaming_detectors(self):
        service = ScoringService()
        service.register("stream", StreamingDetector("funta", SlidingWindow(8)))
        with pytest.raises(ValidationError, match="micro-batching"):
            service.submit("stream", _mfd(_curves(2, seed=43)))

    def test_stream_route_rejects_batch_pipelines(self):
        service = ScoringService()
        curves = _curves(10, p=2, seed=44)
        pipeline = GeometricOutlierPipeline(
            IsolationForest(n_estimators=10, random_state=0), n_basis=8
        )
        pipeline.fit(_mfd(curves))
        service.register("batch", pipeline)
        with pytest.raises(ValidationError, match="not a StreamingDetector"):
            list(service.stream("batch", _mfd(curves)))
