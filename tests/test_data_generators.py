"""Unit tests for the data generators (noise, ECG, taxonomy, augmentation)."""

import numpy as np
import pytest

from repro.data.augment import derivative_augment, power_augment, square_augment
from repro.data.ecg import ECGGenerator, ECGWave, make_ecg_dataset
from repro.data.noise import smooth_gaussian_process, white_noise
from repro.data.synthetic import (
    OUTLIER_CLASSES,
    SyntheticMFD,
    make_fig1_dataset,
    make_taxonomy_dataset,
)
from repro.exceptions import ValidationError
from repro.fda.fdata import FDataGrid, MFDataGrid


class TestNoise:
    def test_white_noise_shape_and_scale(self, unit_grid):
        draws = white_noise(200, unit_grid, sigma=0.5, random_state=0)
        assert draws.shape == (200, 85)
        assert draws.std() == pytest.approx(0.5, abs=0.02)

    def test_white_noise_zero_sigma(self, unit_grid):
        draws = white_noise(3, unit_grid, sigma=0.0, random_state=0)
        np.testing.assert_array_equal(draws, 0.0)

    def test_gp_smoothness(self, unit_grid):
        """GP draws are far smoother than white noise: adjacent-point
        correlation must be near 1."""
        draws = smooth_gaussian_process(100, unit_grid, length_scale=0.3, random_state=0)
        diffs = np.diff(draws, axis=1)
        assert np.abs(diffs).mean() < 0.05 * np.abs(draws).mean() + 0.05

    def test_gp_marginal_scale(self, unit_grid):
        draws = smooth_gaussian_process(
            400, unit_grid, amplitude=2.0, length_scale=0.2, random_state=1
        )
        assert draws.std() == pytest.approx(2.0, rel=0.15)

    def test_gp_reproducible(self, unit_grid):
        a = smooth_gaussian_process(2, unit_grid, random_state=3)
        b = smooth_gaussian_process(2, unit_grid, random_state=3)
        np.testing.assert_array_equal(a, b)


class TestECGWave:
    def test_peak_at_location(self):
        wave = ECGWave(amplitude=2.0, location=0.3, width=0.05)
        grid = np.linspace(0, 1, 101)
        values = wave(grid)
        assert values.max() == pytest.approx(2.0, abs=1e-6)
        assert grid[values.argmax()] == pytest.approx(0.3, abs=0.01)


class TestECGGenerator:
    def test_normal_beats_shape(self):
        gen = ECGGenerator(n_points=85, random_state=0)
        beats = gen.normal_beats(10)
        assert beats.shape == (10, 85)

    def test_r_peak_dominates_normal_beats(self):
        gen = ECGGenerator(random_state=0, noise_sigma=0.0, wander_amplitude=0.0)
        beats = gen.normal_beats(20)
        peak_positions = gen.grid[np.argmax(beats, axis=1)]
        # R wave near t = 0.38 (within phase jitter).
        assert np.all(np.abs(peak_positions - 0.38) < 0.1)

    def test_abnormal_tags_valid(self):
        gen = ECGGenerator(random_state=1, mixed_rate=1.0)
        _, tags = gen.abnormal_beats(30)
        for tag in tags:
            parts = tag.split("+")
            assert 1 <= len(parts) <= 2
            assert all(p in ("ischemia", "ventricular", "spike") for p in parts)
            if len(parts) == 2:
                assert parts[0] != parts[1]

    def test_mixed_rate_zero_single_archetype(self):
        gen = ECGGenerator(random_state=2, mixed_rate=0.0)
        _, tags = gen.abnormal_beats(20)
        assert all("+" not in t for t in tags)

    def test_ischemia_depresses_st_segment(self):
        gen = ECGGenerator(random_state=3, noise_sigma=0.0, wander_amplitude=0.0,
                           phase_jitter=0.0)
        normal = gen.normal_beats(30)
        waves = gen._jittered_waves(gen._rng)
        isch = gen._render(gen._apply_ischemia(waves, gen._rng), gen._rng)
        st_region = (gen.grid > 0.47) & (gen.grid < 0.55)
        assert isch[st_region].mean() < normal[:, st_region].mean() - 0.03

    def test_reproducible(self):
        a = ECGGenerator(random_state=5).normal_beats(3)
        b = ECGGenerator(random_state=5).normal_beats(3)
        np.testing.assert_array_equal(a, b)

    def test_invalid_params(self):
        with pytest.raises(ValidationError):
            ECGGenerator(n_points=2)
        with pytest.raises(ValidationError):
            ECGGenerator(jitter=0.9)


class TestMakeEcgDataset:
    def test_shapes_and_labels(self):
        data, labels, tags = make_ecg_dataset(50, 25, random_state=0)
        assert isinstance(data, FDataGrid)
        assert data.n_samples == 75
        assert data.n_points == 85
        assert labels.sum() == 25
        assert tags[:50] == ["normal"] * 50
        assert all(t != "normal" for t in tags[50:])

    def test_no_abnormal(self):
        data, labels, tags = make_ecg_dataset(10, 0, random_state=0)
        assert labels.sum() == 0

    def test_invalid_counts(self):
        with pytest.raises(ValidationError):
            make_ecg_dataset(0, 5)


class TestSyntheticMFD:
    def test_inliers_near_circle(self):
        factory = SyntheticMFD(random_state=0, noise_sigma=0.0, gp_amplitude=0.0)
        paths = factory.inliers(5)
        radii = np.linalg.norm(paths, axis=2)
        np.testing.assert_allclose(radii, 2.0, atol=0.05)

    @pytest.mark.parametrize("kind", OUTLIER_CLASSES)
    def test_all_outlier_classes_generate(self, kind):
        factory = SyntheticMFD(random_state=1)
        out = factory.outliers(3, kind)
        assert out.shape == (3, 85, 2)
        assert np.isfinite(out).all()

    def test_unknown_class(self):
        factory = SyntheticMFD(random_state=0)
        with pytest.raises(ValidationError, match="unknown outlier class"):
            factory.outliers(1, "weird")

    def test_correlation_outlier_marginally_typical(self):
        """Correlation outliers stay in the inlier amplitude range at
        every t (the paper's issue (3): invisible marginally)."""
        factory = SyntheticMFD(random_state=2, noise_sigma=0.0, gp_amplitude=0.0)
        out = factory.outliers(5, "correlation")
        assert np.abs(out).max() <= 2.0 + 1e-6

    def test_magnitude_isolated_has_extreme_points(self):
        factory = SyntheticMFD(random_state=3, noise_sigma=0.0, gp_amplitude=0.0)
        out = factory.outliers(5, "magnitude_isolated")
        assert np.abs(out[:, :, 0]).max() > 2.5


class TestTaxonomyDataset:
    def test_labels_order(self):
        data, labels = make_taxonomy_dataset("shape_persistent", 20, 4, random_state=0)
        assert isinstance(data, MFDataGrid)
        np.testing.assert_array_equal(labels, np.r_[np.zeros(20), np.ones(4)])

    def test_fig1_dataset(self):
        data, labels = make_fig1_dataset(random_state=0)
        assert data.n_samples == 21
        assert labels.sum() == 1
        assert labels[20] == 1
        # The outlier stays inside the inlier range (never extreme).
        inlier_max = np.abs(data.values[:20]).max()
        outlier_max = np.abs(data.values[20]).max()
        assert outlier_max <= inlier_max + 0.3


class TestAugmentation:
    def test_square_augment(self, sine_curves):
        mfd = square_augment(sine_curves)
        assert mfd.n_parameters == 2
        np.testing.assert_allclose(mfd.values[:, :, 1], sine_curves.values**2)

    def test_power_augment_p3(self, sine_curves):
        mfd = power_augment(sine_curves, powers=(1, 2, 3))
        assert mfd.n_parameters == 3
        np.testing.assert_allclose(mfd.values[:, :, 2], sine_curves.values**3)

    def test_derivative_augment(self, unit_grid):
        clean = FDataGrid(np.sin(2 * np.pi * unit_grid)[None, :], unit_grid)
        mfd = derivative_augment(clean)
        assert mfd.n_parameters == 2
        truth = 2 * np.pi * np.cos(2 * np.pi * unit_grid)
        np.testing.assert_allclose(mfd.values[0, 2:-2, 1], truth[2:-2], atol=0.1)

    def test_rejects_mfd_input(self, circle_mfd):
        with pytest.raises(ValidationError):
            square_augment(circle_mfd)

    def test_invalid_powers(self, sine_curves):
        with pytest.raises(ValidationError):
            power_augment(sine_curves, powers=())
        with pytest.raises(ValidationError):
            power_augment(sine_curves, powers=(0,))
