"""Unit tests for contaminated splitting and k-fold indices."""

import numpy as np
import pytest

from repro.evaluation.splits import Split, contaminated_split, kfold_indices
from repro.exceptions import ValidationError


@pytest.fixture
def labels():
    return np.r_[np.zeros(100, dtype=int), np.ones(30, dtype=int)]


class TestContaminatedSplit:
    def test_training_contamination_close_to_target(self, labels):
        for c in (0.05, 0.15, 0.25):
            split = contaminated_split(labels, c, random_state=0)
            train_labels = labels[split.train]
            achieved = train_labels.mean()
            assert achieved == pytest.approx(c, abs=0.03)

    def test_no_overlap(self, labels):
        split = contaminated_split(labels, 0.1, random_state=1)
        assert np.intersect1d(split.train, split.test).size == 0

    def test_covers_all_samples(self, labels):
        split = contaminated_split(labels, 0.1, random_state=1)
        combined = np.sort(np.concatenate([split.train, split.test]))
        np.testing.assert_array_equal(combined, np.arange(130))

    def test_test_set_contains_both_classes(self, labels):
        split = contaminated_split(labels, 0.25, random_state=2)
        test_labels = labels[split.test]
        assert test_labels.min() == 0 and test_labels.max() == 1

    def test_train_fraction(self, labels):
        split = contaminated_split(labels, 0.1, train_fraction=0.7, random_state=3)
        n_train_inliers = (labels[split.train] == 0).sum()
        assert n_train_inliers == pytest.approx(70, abs=1)

    def test_reproducible(self, labels):
        s1 = contaminated_split(labels, 0.1, random_state=9)
        s2 = contaminated_split(labels, 0.1, random_state=9)
        np.testing.assert_array_equal(np.sort(s1.train), np.sort(s2.train))

    def test_different_seeds_differ(self, labels):
        s1 = contaminated_split(labels, 0.1, random_state=1)
        s2 = contaminated_split(labels, 0.1, random_state=2)
        assert not np.array_equal(np.sort(s1.train), np.sort(s2.train))

    def test_contamination_bounds(self, labels):
        with pytest.raises(ValidationError):
            contaminated_split(labels, 0.0)
        with pytest.raises(ValidationError):
            contaminated_split(labels, 0.5)

    def test_too_few_outliers(self):
        labels = np.r_[np.zeros(50, dtype=int), np.ones(1, dtype=int)]
        with pytest.raises(ValidationError):
            contaminated_split(labels, 0.2)

    def test_split_overlap_guard(self):
        with pytest.raises(ValidationError):
            Split(train=np.array([0, 1]), test=np.array([1, 2]))


class TestKfoldIndices:
    def test_partition(self):
        folds = kfold_indices(23, n_folds=5, random_state=0)
        assert len(folds) == 5
        all_validation = np.sort(np.concatenate([v for _, v in folds]))
        np.testing.assert_array_equal(all_validation, np.arange(23))

    def test_train_validation_disjoint(self):
        for train, valid in kfold_indices(20, 4, random_state=1):
            assert np.intersect1d(train, valid).size == 0
            assert len(train) + len(valid) == 20

    def test_too_many_folds(self):
        with pytest.raises(ValidationError):
            kfold_indices(3, n_folds=5)

    def test_reproducible(self):
        f1 = kfold_indices(10, 2, random_state=7)
        f2 = kfold_indices(10, 2, random_state=7)
        np.testing.assert_array_equal(f1[0][1], f2[0][1])
