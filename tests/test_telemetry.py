"""Tests for the unified telemetry layer: metrics, traces, registry views.

Covers the correctness claims the observability layer makes:

* histogram bucket boundaries follow the Prometheus ``le`` (inclusive
  upper bound) convention and :meth:`~repro.telemetry.Histogram.merge`
  is exactly additive (property-based);
* exact-reservoir percentiles match NumPy's linear interpolation;
* concurrent increments lose no updates — across threads on one
  counter, and coordinator-side across a 2-worker shared-memory pool;
* a caller-opened span becomes the parent of ``run_chunked``'s chunk
  spans, sharing one trace ID;
* :meth:`~repro.serving.ScoringService.stats` stays a bit-compatible
  view over the registry (same keys and values as before the registry
  existed), and the queue-depth gauge is the single definition both the
  flush loop and backpressure read.
"""

import io
import json
import math
import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pipeline import GeometricOutlierPipeline
from repro.data.synthetic import make_taxonomy_dataset
from repro.detectors import make_detector
from repro.engine import ExecutionContext
from repro.exceptions import ValidationError
from repro.fda.fdata import MFDataGrid
from repro.plan import run_chunked
from repro.serving import ScoringService
from repro.telemetry import (
    CATALOGUE,
    NULL_TELEMETRY,
    NullTelemetry,
    Telemetry,
    resolve_telemetry,
)
from repro.telemetry.metrics import (
    DEFAULT_SIZE_BUCKETS,
    Histogram,
    MetricsRegistry,
    _RESERVOIR,
)

BOUNDS = (0.1, 0.5, 1.0, 2.5)

finite_samples = st.lists(
    st.floats(min_value=-1.0, max_value=5.0, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=60,
)


# --------------------------------------------------------------------------- metrics
class TestCounterGauge:
    def test_counter_monotonic(self):
        reg = MetricsRegistry()
        c = reg.counter("x_total")
        c.inc()
        c.inc(5)
        assert c.value == 6
        with pytest.raises(ValidationError):
            c.inc(-1)

    def test_gauge_set_inc_dec(self):
        g = MetricsRegistry().gauge("x")
        g.set(3.5)
        g.inc(2)
        g.dec(0.5)
        assert g.value == 5.0

    def test_registry_get_or_create_identity(self):
        reg = MetricsRegistry()
        a = reg.counter("hits_total", kind="design")
        b = reg.counter("hits_total", kind="design")
        other = reg.counter("hits_total", kind="penalty")
        assert a is b
        assert a is not other

    def test_registry_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x_total")
        with pytest.raises(ValidationError, match="is a counter"):
            reg.gauge("x_total")
        reg.histogram("lat_seconds", buckets=BOUNDS)
        with pytest.raises(ValidationError, match="different buckets"):
            reg.histogram("lat_seconds", buckets=(1.0, 2.0))


class TestHistogram:
    @given(samples=finite_samples)
    @settings(max_examples=100, deadline=None)
    def test_bucket_boundaries_le_convention(self, samples):
        """Cumulative bucket counts == brute-force ``sum(v <= bound)``."""
        hist = Histogram("h", {}, buckets=BOUNDS)
        for v in samples:
            hist.observe(v)
        snap = hist.snapshot()
        for (bound, cum), b in zip(snap["buckets"], BOUNDS):
            assert bound == b
            assert cum == sum(1 for v in samples if v <= b)
        assert snap["buckets"][-1] == ["+Inf", len(samples)]
        assert snap["count"] == len(samples)
        assert math.isclose(snap["sum"], math.fsum(samples), abs_tol=1e-12)
        assert snap["min"] == min(samples)
        assert snap["max"] == max(samples)

    @given(left=finite_samples, right=finite_samples)
    @settings(max_examples=100, deadline=None)
    def test_merge_is_additive(self, left, right):
        """merge(a, b) is indistinguishable from observing a + b directly."""
        ha = Histogram("h", {}, buckets=BOUNDS)
        hb = Histogram("h", {}, buckets=BOUNDS)
        combined = Histogram("h", {}, buckets=BOUNDS)
        for v in left:
            ha.observe(v)
            combined.observe(v)
        for v in right:
            hb.observe(v)
            combined.observe(v)
        ha.merge(hb)
        sa, sc = ha.snapshot(), combined.snapshot()
        assert sa["buckets"] == sc["buckets"]
        assert sa["count"] == sc["count"]
        assert math.isclose(sa["sum"], sc["sum"], abs_tol=1e-12)
        assert sa["min"] == sc["min"] and sa["max"] == sc["max"]
        for q in (0, 50, 95, 99, 100):
            assert math.isclose(
                ha.percentile(q), combined.percentile(q), abs_tol=1e-12
            )

    def test_merge_rejects_mismatched_bounds(self):
        ha = Histogram("h", {}, buckets=BOUNDS)
        hb = Histogram("h", {}, buckets=(1.0, 2.0))
        with pytest.raises(ValidationError, match="identical bucket bounds"):
            ha.merge(hb)

    def test_exact_percentiles_match_numpy(self):
        rng = np.random.default_rng(0)
        samples = rng.lognormal(mean=-3.0, sigma=1.0, size=500)
        hist = Histogram("h", {})
        for v in samples:
            hist.observe(v)
        for q in (0, 10, 50, 95, 99, 100):
            assert hist.percentile(q) == pytest.approx(
                float(np.percentile(samples, q)), rel=1e-12
            )

    def test_bucket_fallback_after_reservoir_overflow(self):
        """Past the reservoir, quantiles become in-bucket interpolations:
        still bracketed by the true percentile's bucket bounds."""
        rng = np.random.default_rng(1)
        samples = rng.uniform(0.0, 3.0, size=_RESERVOIR + 500)
        hist = Histogram("h", {}, buckets=BOUNDS)
        for v in samples:
            hist.observe(v)
        assert not hist._exact
        for q in (50, 95):
            true = float(np.percentile(samples, q))
            est = hist.percentile(q)
            lo = max([b for b in BOUNDS if b < true], default=0.0)
            hi = min([b for b in BOUNDS if b >= true], default=samples.max())
            assert lo <= est <= max(hi, samples.max())

    def test_empty_histogram(self):
        hist = Histogram("h", {})
        assert math.isnan(hist.percentile(50))
        assert math.isnan(hist.min) and math.isnan(hist.max)
        assert hist.count == 0


class TestConcurrency:
    def test_concurrent_counter_increments_no_lost_updates(self):
        reg = MetricsRegistry()
        n_threads, per_thread = 8, 5_000
        barrier = threading.Barrier(n_threads)

        def hammer():
            # get-or-create from every thread: same instrument must come back
            counter = reg.counter("hammer_total", kind="shared")
            hist = reg.histogram("hammer_seconds")
            barrier.wait()
            for i in range(per_thread):
                counter.inc()
                hist.observe(i * 1e-6)

        threads = [threading.Thread(target=hammer) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.counter("hammer_total", kind="shared").value == n_threads * per_thread
        assert reg.histogram("hammer_seconds").count == n_threads * per_thread

    def test_pool_counters_survive_worker_fanout(self):
        """Coordinator-side counting: a 2-worker shared-memory run leaves
        the pool counters consistent and the live-segment gauge at rest."""
        telemetry = Telemetry()
        context = ExecutionContext(n_jobs=2, telemetry=telemetry)
        rng = np.random.default_rng(0)
        values = rng.standard_normal((64, 32))

        blocks = [(0, 32), (32, 64)]
        out = context.run_blocks(_block_sum, blocks, arrays={"values": values})
        assert [round(v, 10) for v in out] == [
            round(float(values[lo:hi].sum()), 10) for lo, hi in blocks
        ]
        assert telemetry.counter("engine_pool_placements_total").value >= 1
        assert telemetry.counter("engine_pool_bytes_total").value >= values.nbytes
        assert telemetry.gauge("engine_pool_live_segments").value == 0


def _block_sum(block, values):
    lo, hi = block
    return float(values[lo:hi].sum())


# --------------------------------------------------------------------------- tracing
class TestTracing:
    def test_run_chunked_nests_under_caller_span(self):
        telemetry = Telemetry()
        rng = np.random.default_rng(0)
        mfd = MFDataGrid(rng.standard_normal((20, 8, 1)), np.linspace(0.0, 1.0, 8))

        with telemetry.span("request", curves=20) as root:
            results = list(
                run_chunked(lambda c: c.n_samples, mfd, chunk_size=6,
                            telemetry=telemetry)
            )
            trace_id = root.trace_id
        assert results == [6, 6, 6, 2]

        trees = telemetry.tracer.traces()
        assert len(trees) == 1
        tree = trees[0]
        assert tree["name"] == "request"
        assert tree["parent_id"] is None
        assert tree["trace_id"] == trace_id
        children = tree["children"]
        assert [c["name"] for c in children] == ["chunk"] * 4
        assert [c["attrs"]["index"] for c in children] == [0, 1, 2, 3]
        assert [c["attrs"]["curves"] for c in children] == [6, 6, 6, 2]
        for child in children:
            assert child["trace_id"] == trace_id
            assert child["parent_id"] == tree["span_id"]
            assert child["duration_s"] >= 0

        assert telemetry.counter("plan_chunks_total").value == 4
        assert telemetry.counter("plan_chunk_curves_total").value == 20
        assert telemetry.histogram("plan_chunk_seconds").count == 4

    def test_detached_spans_do_not_cross_link(self):
        telemetry = Telemetry()
        a = telemetry.start_span("req", route="/a")
        b = telemetry.start_span("req", route="/b")
        assert a.trace_id != b.trace_id
        assert telemetry.current_trace_id() is None  # detached: no stack entry
        b.end()
        a.end()
        ids = {t["trace_id"] for t in telemetry.tracer.traces()}
        assert ids == {a.trace_id, b.trace_id}

    def test_export_jsonl_roundtrip(self):
        telemetry = Telemetry()
        with telemetry.span("outer"):
            with telemetry.span("inner"):
                pass
        buf = io.StringIO()
        assert telemetry.tracer.export_jsonl(buf) == 1
        (line,) = buf.getvalue().strip().splitlines()
        tree = json.loads(line)
        assert tree["name"] == "outer"
        assert tree["children"][0]["name"] == "inner"


# --------------------------------------------------------------------------- exposition
class TestExposition:
    def test_prometheus_text_format(self):
        telemetry = Telemetry()
        telemetry.counter("engine_cache_hits_total", kind="design").inc(3)
        telemetry.gauge("serving_queue_depth_curves").set(7)
        hist = telemetry.histogram("lat_seconds", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        text = telemetry.to_prometheus()
        assert "# TYPE engine_cache_hits_total counter" in text
        assert 'engine_cache_hits_total{kind="design"} 3' in text
        # CATALOGUE supplies the HELP text so call sites never repeat it.
        assert (
            f"# HELP engine_cache_hits_total {CATALOGUE['engine_cache_hits_total'][2]}"
            in text
        )
        assert "serving_queue_depth_curves 7" in text
        assert 'lat_seconds_bucket{le="0.1"} 1' in text
        assert 'lat_seconds_bucket{le="1"} 2' in text
        assert 'lat_seconds_bucket{le="+Inf"} 2' in text
        assert "lat_seconds_count 2" in text

    def test_label_escaping(self):
        telemetry = Telemetry()
        telemetry.counter("x_total", path='a"b\\c\nd').inc()
        text = telemetry.to_prometheus()
        assert r'x_total{path="a\"b\\c\nd"} 1' in text

    def test_snapshot_is_json_able(self):
        telemetry = Telemetry()
        telemetry.counter("c_total").inc()
        telemetry.histogram("h_seconds").observe(0.1)
        snap = json.loads(json.dumps(telemetry.snapshot()))
        assert snap["counters"][0]["name"] == "c_total"
        assert snap["histograms"][0]["count"] == 1


# --------------------------------------------------------------------------- defaults
class TestNullAndResolve:
    def test_null_telemetry_is_shared_noop(self):
        assert NULL_TELEMETRY.counter("a") is NULL_TELEMETRY.counter("b")
        NULL_TELEMETRY.counter("a").inc(100)
        assert NULL_TELEMETRY.counter("a").value == 0
        assert math.isnan(NULL_TELEMETRY.histogram("h").percentile(50))
        with NULL_TELEMETRY.span("x") as span:
            assert span.trace_id is None
        assert NULL_TELEMETRY.snapshot() == {}
        assert NULL_TELEMETRY.to_prometheus() == ""

    def test_resolve_telemetry_precedence(self):
        explicit = Telemetry()
        context = ExecutionContext(telemetry=Telemetry())
        assert resolve_telemetry(context, explicit) is explicit
        assert resolve_telemetry(context) is context.telemetry
        assert resolve_telemetry(None) is NULL_TELEMETRY
        with pytest.raises(ValidationError, match="Telemetry"):
            resolve_telemetry(None, "prometheus")

    def test_context_default_is_null(self):
        assert isinstance(ExecutionContext().telemetry, NullTelemetry)


# --------------------------------------------------------------------------- service view
@pytest.fixture(scope="module")
def fitted_pipeline():
    data, _ = make_taxonomy_dataset(
        "correlation", n_inliers=40, n_outliers=6, random_state=0
    )
    detector = make_detector("iforest", random_state=0, n_estimators=25)
    return GeometricOutlierPipeline(detector, n_basis=12).fit(data), data


class TestServiceRegistryView:
    def test_stats_backward_compat_keys(self, fitted_pipeline):
        pipeline, data = fitted_pipeline
        service = ScoringService()
        service.register("demo", pipeline)
        service.score("demo", data)
        stats = service.stats()
        assert set(stats) == {
            "pipelines", "served_curves", "served_requests", "failed_requests",
            "flushes", "pending_requests", "pending_curves", "inflight_curves",
            "cache",
        }
        assert stats["served_curves"] == data.n_samples
        assert stats["served_requests"] == 1
        # Bit-compatible with the registry: the same instruments back both.
        assert stats["served_curves"] == (
            service.telemetry.counter("serving_served_curves_total").value
        )

    def test_queue_depth_gauge_is_single_definition(self, fitted_pipeline):
        pipeline, data = fitted_pipeline
        service = ScoringService(max_pending=10_000)
        service.register("demo", pipeline)
        ticket = service.submit("demo", data, auto_flush=False)
        gauge = service.telemetry.gauge("serving_queue_depth_curves")
        assert service.queue_depth() == data.n_samples == int(gauge.value)
        assert service.stats()["pending_curves"] == service.queue_depth()
        service.flush()
        assert service.queue_depth() == 0 == int(gauge.value)
        assert np.all(np.isfinite(ticket.result()))
        assert service.telemetry.histogram("serving_flush_curves").count == 1

    def test_flush_metrics_recorded(self, fitted_pipeline):
        pipeline, data = fitted_pipeline
        service = ScoringService(max_pending=10_000)
        service.register("demo", pipeline)
        for _ in range(3):
            service.submit("demo", data, auto_flush=False)
        service.flush()
        assert service.flushes == 1
        hist = service.telemetry.histogram("serving_flush_curves")
        assert hist.count == 1
        assert hist.sum == 3 * data.n_samples
        assert service.telemetry.histogram("serving_flush_seconds").count == 1

    def test_catalogue_covers_emitted_metrics(self, fitted_pipeline):
        """Everything the service emits under load is documented."""
        pipeline, data = fitted_pipeline
        service = ScoringService()
        service.register("demo", pipeline)
        service.submit("demo", data, auto_flush=False)
        service.flush()
        for _ in service.score_stream("demo", data, chunk_size=16):
            pass
        families = service.telemetry.registry.families()
        undocumented = [name for name in families if name not in CATALOGUE]
        assert not undocumented, f"metrics missing from CATALOGUE: {undocumented}"
