"""Property tests: blocked vectorized depth kernels ≡ naive loop oracles.

Every public depth function keeps its original loop implementation
reachable via ``naive=True``; these tests pin the vectorized kernels to
that oracle at ``rtol=1e-12`` across depth notions, parameter counts
p ∈ {1, 2, 3}, block sizes (including blocks smaller than the sample
count), and degenerate inputs (ties, duplicated curves, constant
curves, curves that never cross).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.depth import multivariate as mvdepth
from repro.depth._kernels import rank_counts
from repro.depth.dirout import directional_outlyingness
from repro.depth.functional import modified_band_depth, pointwise_depth_profile
from repro.depth.funta import funta_depth
from repro.fda.fdata import FDataGrid, MFDataGrid

COMMON = settings(max_examples=12, deadline=None)

RTOL = 1e-12
ATOL = 1e-12

#: Tiny scratch budgets force several blocks even on tiny inputs
#: (including blocks smaller than the sample count).
BLOCK_SIZES = (None, 40_000, 3_000)


def _cube(seed: int, n: int, m: int, p: int, degenerate: int) -> np.ndarray:
    """Random (n, m, p) cube; ``degenerate`` selects a pathology."""
    rng = np.random.default_rng(seed)
    cube = rng.standard_normal((n, m, p))
    if degenerate == 1:  # heavy value ties
        cube = np.round(cube, 0)
    elif degenerate == 2:  # duplicated samples
        cube[n // 2 :] = cube[: n - n // 2]
    elif degenerate == 3:  # constant curves (zero spread cross-sections)
        cube[:] = 1.5
    return cube


class TestRankCounts:
    @COMMON
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=2, max_value=25),
        st.integers(min_value=1, max_value=20),
        st.integers(min_value=0, max_value=2),
    )
    def test_matches_searchsorted(self, seed, lanes, n_ref, n_pts, round_to):
        """Integer-exact per-lane order statistics, any tie structure."""
        rng = np.random.default_rng(seed)
        ref = np.round(rng.standard_normal((lanes, n_ref)), round_to)
        pts = np.round(rng.standard_normal((lanes, n_pts)), round_to)
        if seed % 3 == 0:  # force cross ties
            pts[:, : min(n_pts, n_ref)] = ref[:, : min(n_pts, n_ref)]
        le, lt = rank_counts(ref, pts)
        for j in range(lanes):
            lane = np.sort(ref[j])
            np.testing.assert_array_equal(le[j], lane.searchsorted(pts[j], "right"))
            np.testing.assert_array_equal(lt[j], lane.searchsorted(pts[j], "left"))

    @COMMON
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=2, max_value=25),
    )
    def test_self_path(self, seed, lanes, n_ref):
        """The identity fast path equals scoring the lanes as queries."""
        rng = np.random.default_rng(seed)
        ref = np.round(rng.standard_normal((lanes, n_ref)), 1)
        le_self, lt_self = rank_counts(ref, ref)
        le, lt = rank_counts(ref, ref.copy())  # distinct object → general path
        np.testing.assert_array_equal(le_self, le)
        np.testing.assert_array_equal(lt_self, lt)


class TestFuntaEquivalence:
    @COMMON
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=3, max_value=15),
        st.integers(min_value=5, max_value=30),
        st.sampled_from([0.0, 0.1, 0.3]),
        st.integers(min_value=0, max_value=3),
    )
    def test_self_scoring(self, seed, n, m, trim, degenerate):
        values = _cube(seed, n, m, 1, degenerate)[:, :, 0]
        data = FDataGrid(values, np.linspace(0.0, 1.0, m))
        expected = funta_depth(data, trim=trim, naive=True)
        for block_bytes in BLOCK_SIZES:
            got = funta_depth(data, trim=trim, block_bytes=block_bytes)
            np.testing.assert_allclose(got, expected, rtol=RTOL, atol=ATOL)

    @COMMON
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=0, max_value=3),
    )
    def test_reference_scoring_multivariate(self, seed, p, degenerate):
        grid = np.linspace(0.0, 1.0, 20)
        data = MFDataGrid(_cube(seed, 6, 20, p, degenerate), grid)
        ref = MFDataGrid(_cube(seed + 1, 8, 20, p, degenerate), grid)
        expected = funta_depth(data, reference=ref, naive=True)
        got = funta_depth(data, reference=ref, block_bytes=2_000)
        np.testing.assert_allclose(got, expected, rtol=RTOL, atol=ATOL)

    def test_never_crossing_curves(self):
        """Isolated-level curves hit the pi/2 no-crossing contribution."""
        grid = np.linspace(0.0, 1.0, 25)
        values = np.vstack(
            [grid - 0.5, 1.02 * (grid - 0.5), np.full(25, 50.0), np.full(25, -50.0)]
        )
        data = FDataGrid(values, grid)
        np.testing.assert_allclose(
            funta_depth(data), funta_depth(data, naive=True), rtol=RTOL, atol=ATOL
        )


class TestProfileEquivalence:
    @COMMON
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=1, max_value=3),
        st.sampled_from(["projection", "halfspace", "mahalanobis", "spatial"]),
        st.integers(min_value=0, max_value=3),
        st.booleans(),
    )
    def test_all_notions(self, seed, p, notion, degenerate, with_reference):
        grid = np.linspace(0.0, 1.0, 12)
        data = MFDataGrid(_cube(seed, 8, 12, p, degenerate), grid)
        reference = (
            MFDataGrid(_cube(seed + 7, 9, 12, p, degenerate), grid)
            if with_reference
            else None
        )
        kwargs = (
            {"random_state": seed % 100}
            if notion in ("projection", "halfspace")
            else {}
        )
        expected = pointwise_depth_profile(
            data, reference=reference, notion=notion, naive=True, **kwargs
        )
        for block_bytes in BLOCK_SIZES:
            got = pointwise_depth_profile(
                data, reference=reference, notion=notion,
                block_bytes=block_bytes, **kwargs,
            )
            np.testing.assert_allclose(got, expected, rtol=RTOL, atol=ATOL)

    @COMMON
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=0, max_value=2),
    )
    def test_simplicial(self, seed, degenerate):
        grid = np.linspace(0.0, 1.0, 6)
        data = MFDataGrid(_cube(seed, 9, 6, 2, degenerate), grid)
        expected = pointwise_depth_profile(data, notion="simplicial", naive=True)
        got = pointwise_depth_profile(data, notion="simplicial", block_bytes=3_000)
        np.testing.assert_allclose(got, expected, rtol=RTOL, atol=ATOL)


class TestCloudEquivalence:
    @COMMON
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=0, max_value=1),
    )
    def test_halfspace_and_spatial(self, seed, p, round_to):
        rng = np.random.default_rng(seed)
        points = np.round(rng.standard_normal((12, p)), round_to + 1)
        reference = np.round(rng.standard_normal((15, p)), round_to + 1)
        np.testing.assert_allclose(
            mvdepth.halfspace_depth(points, reference, random_state=seed % 50),
            mvdepth.halfspace_depth(
                points, reference, random_state=seed % 50, naive=True
            ),
            rtol=RTOL, atol=ATOL,
        )
        np.testing.assert_allclose(
            mvdepth.spatial_depth(points, reference, block_bytes=2_000),
            mvdepth.spatial_depth(points, reference, naive=True),
            rtol=RTOL, atol=ATOL,
        )

    @COMMON
    @given(st.integers(min_value=0, max_value=10_000))
    def test_simplicial_with_collinear_points(self, seed):
        rng = np.random.default_rng(seed)
        reference = np.round(rng.standard_normal((10, 2)), 1)
        reference[3] = reference[0]  # duplicate → degenerate triangles
        reference[4] = 0.5 * (reference[0] + reference[1])  # collinear
        points = np.vstack([reference[:4], np.round(rng.standard_normal((4, 2)), 1)])
        np.testing.assert_allclose(
            mvdepth.simplicial_depth(points, reference, block_bytes=1_000),
            mvdepth.simplicial_depth(points, reference, naive=True),
            rtol=RTOL, atol=ATOL,
        )


class TestDiroutAndBandDepth:
    @COMMON
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=0, max_value=2),
    )
    def test_dirout_decomposition(self, seed, p, degenerate):
        grid = np.linspace(0.0, 1.0, 15)
        data = MFDataGrid(_cube(seed, 9, 15, p, degenerate), grid)
        naive = directional_outlyingness(data, random_state=seed % 100, naive=True)
        batched = directional_outlyingness(data, random_state=seed % 100)
        np.testing.assert_allclose(batched.mean, naive.mean, rtol=RTOL, atol=ATOL)
        np.testing.assert_allclose(
            batched.variation, naive.variation, rtol=RTOL, atol=ATOL
        )
        np.testing.assert_allclose(batched.total, naive.total, rtol=RTOL, atol=ATOL)

    @COMMON
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=0, max_value=2),
    )
    def test_modified_band_depth_oracle(self, seed, degenerate):
        values = _cube(seed, 8, 18, 1, degenerate)[:, :, 0]
        data = FDataGrid(values, np.linspace(0.0, 1.0, 18))
        np.testing.assert_allclose(
            modified_band_depth(data),
            modified_band_depth(data, naive=True),
            rtol=RTOL, atol=ATOL,
        )
