"""Integration tests: full paper pipeline end to end.

These exercise the complete chain — data generation, square
augmentation, smoothing with LOO-CV basis selection, curvature mapping,
detector fitting, contaminated evaluation — at reduced scale, and
assert the *qualitative* claims of the paper:

1. the geometric methods detect the ECG abnormal class well;
2. they beat or match the depth baselines;
3. they remain usable as training contamination grows;
4. per-taxonomy behavior matches each method's design (FUNTA on shape,
   Dir.out on magnitude, curvature on correlation/mixed).
"""

import numpy as np
import pytest

from repro.core.methods import (
    DirOutMethod,
    FuntaMethod,
    MappedDetectorMethod,
    default_methods,
)
from repro.data import make_ecg_dataset, make_taxonomy_dataset, square_augment
from repro.depth import dirout_scores, funta_outlyingness
from repro.evaluation import roc_auc, run_contamination_experiment


@pytest.fixture(scope="module")
def ecg_experiment_table():
    data, labels, _ = make_ecg_dataset(n_normal=70, n_abnormal=35, random_state=7)
    mfd = square_augment(data)
    return run_contamination_experiment(
        mfd,
        labels,
        default_methods(),
        contamination_levels=(0.05, 0.25),
        n_repetitions=4,
        train_fraction=0.7,
        random_state=7,
    )


class TestEcgEndToEnd:
    def test_geometric_methods_detect_well(self, ecg_experiment_table):
        table = ecg_experiment_table
        assert table.mean("iFor(Curvmap)", 0.05) > 0.75
        assert table.mean("OCSVM(Curvmap)", 0.05) > 0.75

    def test_ocsvm_best_at_low_contamination(self, ecg_experiment_table):
        table = ecg_experiment_table
        others = [table.mean(m, 0.05) for m in ("Dir.out", "FUNTA")]
        assert table.mean("OCSVM(Curvmap)", 0.05) > max(others) - 0.05

    def test_robust_to_contamination(self, ecg_experiment_table):
        """Paper Sec. 4.3: the geometric combination stays usable at 25%
        training contamination."""
        table = ecg_experiment_table
        assert table.mean("iFor(Curvmap)", 0.25) > 0.7
        assert table.mean("OCSVM(Curvmap)", 0.25) > 0.65

    def test_funta_weakest_on_mixed_class(self, ecg_experiment_table):
        """FUNTA only sees shape outliers (paper Sec. 1.2), so on the
        mixed abnormal class it trails the geometric methods."""
        table = ecg_experiment_table
        assert table.mean("FUNTA", 0.05) < table.mean("OCSVM(Curvmap)", 0.05)


class TestTaxonomyBehavior:
    def test_curvature_sees_correlation_outliers(self):
        """Correlation-breaking outliers (typical marginals!) are found
        by the curvature pipeline — the paper's core motivation."""
        data, labels = make_taxonomy_dataset(
            "correlation", n_inliers=50, n_outliers=8, random_state=5
        )
        method = MappedDetectorMethod("iforest", n_basis=20)
        idx = np.arange(data.n_samples)
        scores = method.score_dataset(data, idx, idx, random_state=0)
        assert roc_auc(scores, labels) > 0.9

    def test_funta_sees_shape_outliers(self):
        """FUNTA targets gentle-slope shape outliers (trend changes):
        an opposite-trend curve crosses the bulk at near-maximal angles."""
        from repro.fda.fdata import MFDataGrid

        rng = np.random.default_rng(6)
        grid = np.linspace(0, 1, 60)
        slopes = rng.uniform(0.8, 1.2, 30)
        inliers = slopes[:, None] * (grid[None, :] - 0.5)
        outliers = -np.array([[1.0], [0.9]]) * (grid[None, :] - 0.5)
        values = np.vstack([inliers, outliers]) + 0.01 * rng.standard_normal((32, 60))
        data = MFDataGrid(np.stack([values, values * 0.5], axis=2), grid)
        labels = np.r_[np.zeros(30, int), np.ones(2, int)]
        scores = funta_outlyingness(data)
        assert roc_auc(scores, labels) > 0.9

    def test_dirout_sees_magnitude_outliers(self):
        data, labels = make_taxonomy_dataset(
            "magnitude_isolated", n_inliers=40, n_outliers=6, random_state=8
        )
        scores = dirout_scores(data, random_state=0)
        assert roc_auc(scores, labels) > 0.9

    def test_dirout_weak_on_pure_correlation_vs_curvature(self):
        """The discriminating case: Dir.out relies on pointwise
        outlyingness, correlation outliers have typical pointwise values
        in each cross-section cloud along their path."""
        data, labels = make_taxonomy_dataset(
            "correlation", n_inliers=50, n_outliers=8, random_state=9
        )
        dirout_auc = roc_auc(dirout_scores(data, random_state=0), labels)
        method = MappedDetectorMethod("iforest", n_basis=20)
        idx = np.arange(data.n_samples)
        curv_auc = roc_auc(method.score_dataset(data, idx, idx, random_state=0), labels)
        assert curv_auc >= dirout_auc - 0.05


class TestScoreOrientationConsistency:
    """All four Figure-3 methods share the same score orientation."""

    def test_all_methods_rank_planted_outlier_high(self, small_ecg):
        data, labels, _ = small_ecg
        mfd = square_augment(data)
        idx = np.arange(mfd.n_samples)
        for method in default_methods():
            scores = method.score_dataset(mfd, idx, idx, random_state=0)
            auc = roc_auc(scores, labels)
            assert auc > 0.5, f"{method.name} is oriented wrong (AUC={auc:.3f})"
