"""Tests for the async HTTP front door: server, app routes, backpressure."""

import asyncio
import json
import re
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.core.pipeline import GeometricOutlierPipeline
from repro.data.synthetic import make_taxonomy_dataset
from repro.detectors import make_detector
from repro.exceptions import ValidationError
from repro.perf import _http_post_json
from repro.plan import pipeline_to_spec, spec_hash
from repro.serving import ScoringService, save_pipeline
from repro.serving.app import JsonResponse, ServingApp
from repro.serving.server import ScoringServer, http_request_json, load_service


@pytest.fixture(scope="module")
def dataset():
    data, labels = make_taxonomy_dataset(
        "correlation", n_inliers=40, n_outliers=6, random_state=0
    )
    return data, labels


@pytest.fixture(scope="module")
def fitted(dataset):
    data, _ = dataset
    detector = make_detector("iforest", random_state=0, n_estimators=25)
    return GeometricOutlierPipeline(detector, n_basis=12).fit(data)


@pytest.fixture(scope="module")
def bundle(fitted, tmp_path_factory):
    path = tmp_path_factory.mktemp("bundles") / "model"
    save_pipeline(fitted, path, compressed=False)
    return path


def _batch_doc(data, n=4, pipeline="main"):
    return {
        "pipeline": pipeline,
        "values": data.values[:n].tolist(),
        "grid": data.grid.tolist(),
    }


def _run(bundle, scenario, **server_kwargs):
    """Start a server around ``scenario(server)`` and always close it."""

    async def main():
        service = load_service({"main": bundle}, mmap=True, **{
            k: server_kwargs.pop(k) for k in ("max_pending",) if k in server_kwargs
        })
        server = ScoringServer(service, **server_kwargs)
        await server.start()
        try:
            return await scenario(server)
        finally:
            await server.close()

    return asyncio.run(main())


async def _post(server, path, doc):
    return await _http_post_json("127.0.0.1", server.port, path, doc)


class TestServerRoutes:
    def test_score_roundtrip(self, bundle, fitted, dataset):
        data, _ = dataset

        async def scenario(server):
            return await _post(server, "/score", _batch_doc(data))

        status, body = _run(bundle, scenario)
        assert status == 200
        assert body["pipeline"] == "main"
        np.testing.assert_allclose(
            body["scores"], fitted.score_samples(data[np.arange(4)]), atol=1e-9
        )

    def test_submit_resolves_via_deadline_flush(self, bundle, dataset):
        data, _ = dataset

        async def scenario(server):
            # One small request, far below max_pending: only the
            # background deadline flush can resolve it.
            return await _post(server, "/submit", _batch_doc(data, n=3))

        status, body = _run(bundle, scenario, max_pending=1000, flush_interval=0.02)
        assert status == 200
        assert len(body["scores"]) == 3
        assert np.all(np.isfinite(body["scores"]))

    def test_submit_resolves_via_max_pending_flush(self, bundle, dataset):
        data, _ = dataset

        async def scenario(server):
            posts = [_post(server, "/submit", _batch_doc(data, n=4)) for _ in range(4)]
            return await asyncio.gather(*posts)

        # max_pending=8 with a glacial deadline: only the queue-depth
        # trigger can resolve these within the test timeout.
        results = _run(bundle, scenario, max_pending=8, flush_interval=30.0)
        assert [status for status, _ in results] == [200] * 4
        for _, body in results:
            assert len(body["scores"]) == 4

    def test_routing_by_spec_hash(self, bundle, fitted, dataset):
        data, _ = dataset
        hashed = spec_hash(pipeline_to_spec(fitted))

        async def scenario(server):
            return await _post(server, "/score", _batch_doc(data, pipeline=hashed))

        status, body = _run(bundle, scenario)
        assert status == 200
        assert body["pipeline"] == "main"

    def test_healthz_and_stats(self, bundle, dataset):
        data, _ = dataset

        async def scenario(server):
            loop = asyncio.get_running_loop()
            health = await loop.run_in_executor(
                None,
                http_request_json,
                f"http://127.0.0.1:{server.port}/healthz",
            )
            await _post(server, "/score", _batch_doc(data))
            stats = await loop.run_in_executor(
                None,
                http_request_json,
                f"http://127.0.0.1:{server.port}/stats",
            )
            return health, stats

        (h_status, health), (s_status, stats) = _run(bundle, scenario)
        assert (h_status, s_status) == (200, 200)
        assert health == {"status": "ok", "pipelines": ["main"]}
        assert stats["served_curves"] == 4
        assert stats["http"]["accepted_requests"] == 1
        assert stats["http"]["shed_requests"] == 0

    def test_error_statuses(self, bundle, dataset):
        data, _ = dataset

        async def scenario(server):
            unknown = await _post(server, "/score", _batch_doc(data, pipeline="nope"))
            missing_keys = await _post(server, "/score", {"pipeline": "main"})
            not_json = await _http_post_json(
                "127.0.0.1", server.port, "/score", "not json"
            )
            bad_path = await _post(server, "/nothing-here", {})
            return unknown, missing_keys, not_json, bad_path

        unknown, missing_keys, not_json, bad_path = _run(bundle, scenario)
        assert unknown[0] == 404 and "no pipeline named" in unknown[1]["error"]
        assert missing_keys[0] == 400 and "missing keys" in missing_keys[1]["error"]
        assert not_json[0] == 400
        assert bad_path[0] == 404

    def test_clean_shutdown_settles_outstanding(self, bundle, dataset):
        data, _ = dataset

        async def scenario(server):
            # Park a submit on a glacial flush deadline, then close the
            # server while it is still pending: close() must drain the
            # queue and answer the request rather than hang it.
            task = asyncio.ensure_future(_post(server, "/submit", _batch_doc(data, n=2)))
            while not server.service.stats()["pending_requests"]:
                await asyncio.sleep(0.005)
            await server.close()
            status, body = await asyncio.wait_for(task, timeout=5)
            assert status == 200 and len(body["scores"]) == 2
            assert server.service.outstanding_curves() == 0

        _run(bundle, scenario, max_pending=1000, flush_interval=30.0)


class TestBackpressure:
    def test_429_sheds_before_queueing(self, bundle, dataset):
        data, _ = dataset

        async def scenario(server):
            first = asyncio.ensure_future(
                _post(server, "/submit", _batch_doc(data, n=6))
            )
            while not server.service.stats()["pending_requests"]:
                await asyncio.sleep(0.005)
            # 6 outstanding + 6 new > high_water=8 -> shed immediately.
            shed_status, shed_body = await _post(
                server, "/submit", _batch_doc(data, n=6)
            )
            first_status, first_body = await asyncio.wait_for(first, timeout=5)
            return shed_status, shed_body, first_status, first_body, server.app.stats().body

        shed_status, shed_body, first_status, first_body, stats = _run(
            bundle, scenario,
            max_pending=1000, flush_interval=0.2, high_water=8,
        )
        assert shed_status == 429
        assert "shed" in shed_body["error"]
        assert shed_body["high_water"] == 8
        # The accepted request still resolves with scores.
        assert first_status == 200 and len(first_body["scores"]) == 6
        # The shed request never touched the queue.
        assert stats["served_curves"] == 6
        assert stats["http"] == {
            "accepted_requests": 1, "shed_requests": 1, "high_water": 8,
        }

    def test_retry_after_header_at_app_layer(self, dataset, fitted):
        data, _ = dataset
        service = ScoringService()
        service.register("main", fitted)
        app = ServingApp(service, high_water=2, retry_after=1.5)
        body = json.dumps(_batch_doc(data, n=4)).encode()
        shed = app.try_submit(body)
        assert isinstance(shed, JsonResponse)
        assert shed.status == 429
        assert shed.headers["Retry-After"] == "1.5"
        assert app.shed_requests == 1 and app.accepted_requests == 0

    def test_app_rejects_bad_high_water(self, fitted):
        service = ScoringService()
        service.register("main", fitted)
        with pytest.raises(ValidationError, match="high_water"):
            ServingApp(service, high_water=0)


class TestMultiWorkerServe:
    def test_forked_workers_share_one_socket(self, bundle, dataset):
        """`repro serve --workers 2` answers on one port from two processes."""
        data, _ = dataset
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--pipeline", f"main={bundle}",
                "--host", "127.0.0.1", "--port", "0", "--workers", "2",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            line = proc.stdout.readline()
            match = re.search(r"http://127\.0\.0\.1:(\d+)", line)
            assert match, f"no listening banner in {line!r}"
            port = int(match.group(1))
            deadline = time.monotonic() + 15
            doc = _batch_doc(data, n=3)
            statuses = []
            while len(statuses) < 6 and time.monotonic() < deadline:
                try:
                    status, body = http_request_json(
                        f"http://127.0.0.1:{port}/score", doc, timeout=5
                    )
                except OSError:
                    time.sleep(0.1)
                    continue
                assert status == 200 and len(body["scores"]) == 3
                statuses.append(status)
            assert statuses == [200] * 6
        finally:
            proc.terminate()
            proc.wait(timeout=10)
        # SIGTERM on the supervisor must also reap the forked workers —
        # they share its command line, so pgrep finds any orphans.
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            leftovers = subprocess.run(
                ["pgrep", "-f", f"main={bundle}"], capture_output=True, text=True
            ).stdout.split()
            if not leftovers:
                break
            time.sleep(0.1)
        else:
            subprocess.run(["pkill", "-9", "-f", f"main={bundle}"])
            pytest.fail(f"serve workers survived parent SIGTERM: {leftovers}")
