"""Unit tests for repro.utils.linalg."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.utils.linalg import pairwise_sq_dists, safe_inverse_sqrt, solve_psd, symmetrize


class TestSymmetrize:
    def test_symmetric_output(self):
        A = np.array([[1.0, 2.0], [0.0, 1.0]])
        S = symmetrize(A)
        np.testing.assert_allclose(S, S.T)
        np.testing.assert_allclose(S, [[1.0, 1.0], [1.0, 1.0]])

    def test_rejects_nonsquare(self):
        with pytest.raises(ValidationError):
            symmetrize(np.ones((2, 3)))


class TestSolvePsd:
    def test_spd_exact(self, rng):
        A = rng.standard_normal((6, 6))
        M = A @ A.T + 6 * np.eye(6)
        x_true = rng.standard_normal(6)
        x = solve_psd(M, M @ x_true)
        np.testing.assert_allclose(x, x_true, atol=1e-8)

    def test_matrix_rhs(self, rng):
        A = rng.standard_normal((5, 5))
        M = A @ A.T + 5 * np.eye(5)
        B = rng.standard_normal((5, 3))
        X = solve_psd(M, B)
        np.testing.assert_allclose(M @ X, B, atol=1e-8)

    def test_singular_falls_back(self):
        # Rank-deficient PSD matrix: should not raise.
        M = np.outer([1.0, 1.0], [1.0, 1.0])
        rhs = np.array([1.0, 1.0])
        x = solve_psd(M, rhs)
        np.testing.assert_allclose(M @ x, rhs, atol=1e-5)


class TestSafeInverseSqrt:
    def test_values(self):
        out = safe_inverse_sqrt(np.array([4.0, 0.25]))
        np.testing.assert_allclose(out, [0.5, 2.0])

    def test_floor_prevents_inf(self):
        out = safe_inverse_sqrt(np.array([0.0]))
        assert np.isfinite(out).all()


class TestPairwiseSqDists:
    def test_against_naive(self, rng):
        a = rng.standard_normal((7, 3))
        b = rng.standard_normal((4, 3))
        fast = pairwise_sq_dists(a, b)
        naive = ((a[:, None, :] - b[None, :, :]) ** 2).sum(axis=2)
        np.testing.assert_allclose(fast, naive, atol=1e-10)

    def test_self_distances_zero_diag(self, rng):
        a = rng.standard_normal((5, 2))
        d = pairwise_sq_dists(a)
        np.testing.assert_allclose(np.diag(d), 0.0, atol=1e-10)

    def test_nonnegative(self, rng):
        a = rng.standard_normal((50, 4)) * 1e-8
        assert (pairwise_sq_dists(a) >= 0).all()

    def test_dimension_mismatch(self, rng):
        with pytest.raises(ValidationError):
            pairwise_sq_dists(rng.standard_normal((3, 2)), rng.standard_normal((3, 4)))

    def test_rejects_1d(self):
        with pytest.raises(ValidationError):
            pairwise_sq_dists(np.array([1.0, 2.0]))
