"""Unit tests for the directional outlyingness (Dir.out) baseline."""

import numpy as np
import pytest

from repro.depth.dirout import (
    DirectionalOutlyingness,
    _spatial_median,
    directional_outlyingness,
    dirout_scores,
)
from repro.exceptions import ValidationError
from repro.fda.fdata import FDataGrid, MFDataGrid


@pytest.fixture
def shifted_population(rng):
    """19 curves near sin plus one magnitude outlier (constant +3 shift)."""
    grid = np.linspace(0, 1, 40)
    base = np.sin(2 * np.pi * grid)
    values = base[None, :] + 0.1 * rng.standard_normal((20, 40))
    values[19] = base + 3.0
    return FDataGrid(values, grid)


@pytest.fixture
def shape_population(rng):
    """19 near-sin curves plus one frequency (shape) outlier."""
    grid = np.linspace(0, 1, 40)
    base = np.sin(2 * np.pi * grid)
    values = base[None, :] + 0.1 * rng.standard_normal((20, 40))
    values[19] = np.sin(6 * np.pi * grid)
    return FDataGrid(values, grid)


class TestSpatialMedian:
    def test_symmetric_cloud(self, rng):
        cloud = rng.standard_normal((500, 2))
        med = _spatial_median(cloud)
        assert np.linalg.norm(med) < 0.2

    def test_collinear_points(self):
        cloud = np.array([[0.0, 0.0], [1.0, 0.0], [2.0, 0.0]])
        med = _spatial_median(cloud)
        assert med[0] == pytest.approx(1.0, abs=1e-6)


class TestDirectionalOutlyingness:
    def test_shapes(self, shifted_population):
        out = directional_outlyingness(shifted_population, random_state=0)
        assert isinstance(out, DirectionalOutlyingness)
        assert out.mean.shape == (20, 1)
        assert out.variation.shape == (20,)
        assert out.total.shape == (20,)

    def test_total_decomposition(self, shifted_population):
        """FO = |MO|^2 + VO by construction."""
        out = directional_outlyingness(shifted_population, random_state=0)
        np.testing.assert_allclose(
            out.total, np.sum(out.mean**2, axis=1) + out.variation, atol=1e-10
        )

    def test_magnitude_outlier_high_mo_low_vo(self, shifted_population):
        """A constant shift is pure magnitude outlyingness: it must show
        in MO, not VO (the Dai-Genton class separation)."""
        out = directional_outlyingness(shifted_population, random_state=0)
        mo_mag = out.mean_magnitude
        assert mo_mag.argmax() == 19
        # For a pure shift the mean component dominates the variation
        # component, unlike for inliers (the class-separation property).
        ratio = np.sum(out.mean**2, axis=1) / np.maximum(out.variation, 1e-12)
        assert ratio[19] > 10 * ratio[:19].max()

    def test_shape_outlier_high_vo(self, shape_population):
        """A frequency outlier swings direction: dominant VO component."""
        out = directional_outlyingness(shape_population, random_state=0)
        assert out.variation.argmax() == 19

    def test_mfd_input(self, correlation_mfd):
        data, labels = correlation_mfd
        out = directional_outlyingness(data, random_state=0)
        assert out.mean.shape == (data.n_samples, 2)

    def test_reference_based(self, shifted_population):
        ref = shifted_population[:10]
        out = directional_outlyingness(shifted_population, reference=ref, random_state=0)
        assert out.total.shape == (20,)

    def test_grid_mismatch(self, shifted_population):
        bad_ref = FDataGrid(
            shifted_population.values[:, :-1], shifted_population.grid[:-1]
        )
        with pytest.raises(ValidationError):
            directional_outlyingness(shifted_population, reference=bad_ref)

    def test_rejects_arrays(self):
        with pytest.raises(ValidationError):
            directional_outlyingness(np.zeros((3, 5)))


class TestDiroutScores:
    def test_total_ranks_outlier_first(self, shifted_population):
        scores = dirout_scores(shifted_population, random_state=0)
        assert scores.argmax() == 19

    def test_mahalanobis_variant(self, shifted_population):
        scores = dirout_scores(shifted_population, method="mahalanobis", random_state=0)
        assert scores.argmax() == 19
        assert (scores >= 0).all()

    def test_unknown_method(self, shifted_population):
        with pytest.raises(ValidationError):
            dirout_scores(shifted_population, method="sum")

    def test_detects_shape_outlier(self, shape_population):
        scores = dirout_scores(shape_population, random_state=0)
        assert scores.argmax() == 19
