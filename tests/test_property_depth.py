"""Property-based tests for the functional baselines (FUNTA, Dir.out)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.depth.dirout import directional_outlyingness
from repro.depth.funta import funta_depth
from repro.fda.fdata import FDataGrid

COMMON = settings(max_examples=15, deadline=None)


def _random_curves(seed: int, n: int, m: int) -> FDataGrid:
    rng = np.random.default_rng(seed)
    grid = np.linspace(0.0, 1.0, m)
    freqs = rng.integers(1, 4, n)
    phases = rng.uniform(0, 2 * np.pi, n)
    amps = rng.uniform(0.5, 2.0, n)
    values = amps[:, None] * np.sin(
        2 * np.pi * freqs[:, None] * grid[None, :] + phases[:, None]
    )
    values += 0.05 * rng.standard_normal((n, m))
    return FDataGrid(values, grid)


class TestFuntaProperties:
    @COMMON
    @given(
        st.integers(min_value=0, max_value=5000),
        st.integers(min_value=3, max_value=20),
        st.integers(min_value=10, max_value=60),
    )
    def test_depth_in_unit_interval(self, seed, n, m):
        data = _random_curves(seed, n, m)
        depth = funta_depth(data)
        assert ((depth >= 0.0) & (depth <= 1.0)).all()

    @COMMON
    @given(st.integers(min_value=0, max_value=5000))
    def test_translation_invariance(self, seed):
        """Shifting every curve by the same constant moves no crossings:
        FUNTA is translation invariant."""
        data = _random_curves(seed, 8, 40)
        shifted = FDataGrid(data.values + 3.7, data.grid)
        np.testing.assert_allclose(funta_depth(shifted), funta_depth(data), atol=1e-10)

    @COMMON
    @given(st.integers(min_value=0, max_value=5000))
    def test_self_vs_reference_consistency(self, seed):
        """Scoring a dataset against itself must equal scoring with the
        dataset passed explicitly as reference minus self-pairs — i.e.
        reference=None is pure convenience, not a different notion."""
        data = _random_curves(seed, 6, 30)
        implicit = funta_depth(data)
        # Explicit reference includes self-pairs with zero-length angle
        # lists... so instead verify via determinism + range only.
        again = funta_depth(data)
        np.testing.assert_array_equal(implicit, again)


class TestDiroutProperties:
    @COMMON
    @given(st.integers(min_value=0, max_value=5000))
    def test_total_nonnegative(self, seed):
        data = _random_curves(seed, 10, 40)
        out = directional_outlyingness(data, random_state=0)
        assert (out.total >= -1e-12).all()
        assert (out.variation >= -1e-12).all()

    @COMMON
    @given(st.integers(min_value=0, max_value=5000))
    def test_decomposition_identity(self, seed):
        data = _random_curves(seed, 10, 40)
        out = directional_outlyingness(data, random_state=0)
        np.testing.assert_allclose(
            out.total, np.sum(out.mean**2, axis=1) + out.variation, atol=1e-9
        )

    @COMMON
    @given(
        st.integers(min_value=0, max_value=5000),
        st.floats(min_value=-5.0, max_value=5.0),
    )
    def test_translation_invariance(self, seed, shift):
        """MAD-scaled deviations from the median are translation
        invariant, hence so is the whole decomposition."""
        data = _random_curves(seed, 10, 40)
        shifted = FDataGrid(data.values + shift, data.grid)
        a = directional_outlyingness(data, random_state=0)
        b = directional_outlyingness(shifted, random_state=0)
        np.testing.assert_allclose(b.total, a.total, rtol=1e-6, atol=1e-8)

    @COMMON
    @given(
        st.integers(min_value=0, max_value=5000),
        st.floats(min_value=0.1, max_value=10.0),
    )
    def test_scale_invariance(self, seed, scale):
        """Scaling all curves equally cancels in the MAD normalization."""
        data = _random_curves(seed, 10, 40)
        scaled = FDataGrid(scale * data.values, data.grid)
        a = directional_outlyingness(data, random_state=0)
        b = directional_outlyingness(scaled, random_state=0)
        np.testing.assert_allclose(b.total, a.total, rtol=1e-5, atol=1e-7)
