"""Unit tests for the ring-buffer reference maintainers."""

import numpy as np
import pytest

from repro.engine import ExecutionContext
from repro.exceptions import ValidationError
from repro.streaming import ReservoirWindow, SlidingWindow


def _items(n, shape=(4,), seed=0):
    return np.random.default_rng(seed).standard_normal((n, *shape))


class TestSlidingWindow:
    def test_grows_then_tracks_last_capacity_items(self):
        window = SlidingWindow(5)
        items = _items(13)
        for item in items:
            window.observe(item)
        assert window.size == 5
        assert window.n_seen == 13
        np.testing.assert_array_equal(window.ordered_values(), items[-5:])

    def test_updates_report_slot_insert_and_eviction(self):
        window = SlidingWindow(3)
        items = _items(5)
        updates = [window.observe(item) for item in items]
        assert [u.slot for u in updates] == [0, 1, 2, 0, 1]
        assert all(u.evicted is None for u in updates[:3])
        np.testing.assert_array_equal(updates[3].evicted, items[0])
        np.testing.assert_array_equal(updates[4].evicted, items[1])
        np.testing.assert_array_equal(updates[4].inserted, items[4])
        assert not updates[4].skipped

    def test_values_is_a_view_ordered_values_a_copy(self):
        window = SlidingWindow(4)
        for item in _items(4):
            window.observe(item)
        assert window.values.base is not None
        ordered = window.ordered_values()
        ordered[:] = 0.0
        assert not np.allclose(window.values, 0.0)

    def test_multi_axis_items(self):
        window = SlidingWindow(3)
        items = np.random.default_rng(1).standard_normal((7, 6, 2))
        for item in items:
            window.observe(item)
        np.testing.assert_array_equal(window.ordered_values(), items[-3:])

    def test_reset_empties_but_keeps_buffer(self):
        window = SlidingWindow(3)
        for item in _items(3):
            window.observe(item)
        window.reset()
        assert window.size == 0 and window.n_seen == 0
        item = _items(1)[0]
        update = window.observe(item)
        assert update.slot == 0 and update.evicted is None

    def test_item_shape_mismatch_rejected(self):
        window = SlidingWindow(3)
        window.observe(np.zeros(4))
        with pytest.raises(ValidationError, match="item shape"):
            window.observe(np.zeros(5))

    def test_capacity_validated(self):
        with pytest.raises(ValidationError):
            SlidingWindow(1)

    def test_scalar_item_rejected(self):
        with pytest.raises(ValidationError, match="arrays"):
            SlidingWindow(3).observe(np.float64(1.0))


class TestReservoirWindow:
    def test_seeded_eviction_is_reproducible(self):
        items = _items(200, seed=3)
        first = ReservoirWindow(16, random_state=11)
        second = ReservoirWindow(16, random_state=11)
        for item in items:
            first.observe(item)
            second.observe(item)
        np.testing.assert_array_equal(first.values, second.values)

    def test_context_spawned_seed_is_reproducible(self):
        items = _items(100, seed=4)
        context = ExecutionContext()
        first = ReservoirWindow(8, random_state=5, context=context)
        second = ReservoirWindow(8, random_state=5, context=ExecutionContext())
        for item in items:
            first.observe(item)
            second.observe(item)
        np.testing.assert_array_equal(first.values, second.values)

    def test_skipped_arrivals_report_none_slot(self):
        window = ReservoirWindow(4, random_state=0)
        skipped = 0
        for item in _items(300, seed=5):
            update = window.observe(item)
            if update.skipped:
                skipped += 1
                assert update.inserted is None and update.evicted is None
        assert skipped > 0  # a full reservoir must reject most arrivals
        assert window.size == 4 and window.n_seen == 300

    def test_reservoir_contents_come_from_the_stream(self):
        items = _items(50, shape=(3,), seed=6)
        window = ReservoirWindow(8, random_state=1)
        for item in items:
            window.observe(item)
        for row in window.values:
            assert any(np.array_equal(row, item) for item in items)

    def test_uniformity_over_many_runs(self):
        # Each of 20 scalar items should land in a capacity-5 reservoir
        # with probability 1/4; check the empirical rate over seeds.
        hits = np.zeros(20)
        n_runs = 300
        for seed in range(n_runs):
            window = ReservoirWindow(5, random_state=seed)
            for i in range(20):
                window.observe(np.array([float(i)]))
            kept = window.values[:, 0].astype(int)
            hits[kept] += 1
        rates = hits / n_runs
        assert np.all(np.abs(rates - 0.25) < 0.08)
