"""Unit tests for the declarative spec layer (`repro.plan.specs`)."""

import json

import pytest

from repro.detectors import DETECTOR_REGISTRY
from repro.exceptions import ConfigurationError, ValidationError
from repro.geometry.mappings import MAPPING_REGISTRY
from repro.plan import (
    DEFAULT_METHOD_SPECS,
    DetectorSpec,
    MappingSpec,
    MethodSpec,
    PipelineSpec,
    SmootherSpec,
    StreamSpec,
    WorkloadSpec,
    dump_spec,
    load_spec,
    spec_from_dict,
    spec_from_json,
    spec_to_json,
)


class TestJsonRoundTrips:
    @pytest.mark.parametrize("spec", [
        PipelineSpec(),
        PipelineSpec(
            detector=DetectorSpec("ocsvm", {"nu": 0.2, "gamma": 0.05}),
            mapping=MappingSpec("SpeedMapping"),
            smoother=SmootherSpec(n_basis=(8, 12), smoothing=1e-3, spline_order=5),
            eval_points=50,
        ),
        PipelineSpec(mapping=MappingSpec(
            "CompositeMapping",
            mappings=(MappingSpec("CurvatureMapping"), MappingSpec("SpeedMapping")),
        )),
        MethodSpec("funta", {"trim": 0.1}),
        MethodSpec("ocsvm", {"gamma": 0.05, "tune": False}),
        StreamSpec(kind="dirout", policy="reservoir", window=64,
                   params={"n_directions": 50}),
        WorkloadSpec(mode="microbatch", n_jobs=2, chunk_size=64, max_pending=16),
    ])
    def test_spec_json_identity(self, spec):
        assert spec_from_json(spec_to_json(spec)) == spec

    def test_load_dump_file_round_trip(self, tmp_path):
        spec = PipelineSpec(detector=DetectorSpec("knn", {"n_neighbors": 3}))
        path = dump_spec(spec, tmp_path / "spec.json")
        assert load_spec(path) == spec

    def test_n_basis_list_normalizes_to_tuple(self):
        spec = SmootherSpec(n_basis=[8, 12, 16])
        assert spec.n_basis == (8, 12, 16)
        assert SmootherSpec.from_dict(spec.to_dict()) == spec

    def test_default_method_specs_round_trip(self):
        for spec in DEFAULT_METHOD_SPECS:
            assert spec_from_json(spec_to_json(spec)) == spec


class TestAliases:
    @pytest.mark.parametrize("label, kind", [
        ("Dir.out", "dirout"), ("FUNTA", "funta"), ("iFor(Curvmap)", "iforest"),
        ("OCSVM(Curvmap)", "ocsvm"), ("ifor", "iforest"), ("dirout", "dirout"),
    ])
    def test_method_labels_canonicalize(self, label, kind):
        assert MethodSpec(label).kind == kind

    def test_detector_class_name_canonicalizes(self):
        assert DetectorSpec("IsolationForest").name == "iforest"

    @pytest.mark.parametrize("alias, cls_name", [
        ("curvature", "CurvatureMapping"), ("speed", "SpeedMapping"),
        ("composite", "CompositeMapping"), ("NormMapping", "NormMapping"),
    ])
    def test_mapping_aliases(self, alias, cls_name):
        if cls_name == "CompositeMapping":
            spec = MappingSpec(alias, mappings=(MappingSpec(), MappingSpec("speed")))
        else:
            spec = MappingSpec(alias)
        assert spec.type == cls_name


class TestValidationErrors:
    def test_unknown_detector_lists_registry(self):
        with pytest.raises(ConfigurationError, match="known:") as err:
            DetectorSpec("lstm")
        for name in DETECTOR_REGISTRY:
            assert name in str(err.value)

    def test_unknown_detector_param_lists_valid_keys(self):
        with pytest.raises(ConfigurationError, match="n_estimators"):
            DetectorSpec("iforest", {"n_estimatorz": 5})

    def test_unknown_mapping_type_lists_registry(self):
        with pytest.raises(ConfigurationError) as err:
            MappingSpec("wavelet")
        for name in MAPPING_REGISTRY:
            assert name in str(err.value)

    def test_unknown_mapping_param(self):
        with pytest.raises(ConfigurationError, match="regularization"):
            MappingSpec("curvature", {"regularisation": 0.0})

    def test_composite_requires_submappings(self):
        with pytest.raises(ConfigurationError, match="mappings"):
            MappingSpec("CompositeMapping")

    def test_composite_does_not_nest(self):
        inner = MappingSpec("CompositeMapping", mappings=(MappingSpec(),))
        with pytest.raises(ConfigurationError, match="nest"):
            MappingSpec("CompositeMapping", mappings=(inner,))

    def test_unknown_method_kind(self):
        with pytest.raises(ConfigurationError, match="known kinds"):
            MethodSpec("LSTM")

    def test_unknown_method_param_lists_valid_keys(self):
        with pytest.raises(ConfigurationError) as err:
            MethodSpec("funta", {"trims": 0.1})
        assert "trim" in str(err.value)
        assert "valid:" in str(err.value)

    def test_method_param_keys_include_detector_keys(self):
        # iforest method kwargs merge the wrapper's and the detector's.
        spec = MethodSpec("iforest", {"n_estimators": 50, "standardize": False})
        assert spec.params["n_estimators"] == 50

    def test_stream_pipeline_kind_rejected_with_hint(self):
        with pytest.raises(ConfigurationError, match="fitted pipeline"):
            StreamSpec(kind="pipeline")

    def test_stream_unknown_option(self):
        with pytest.raises(ConfigurationError, match="trim"):
            StreamSpec(kind="funta", params={"trin": 0.1})

    def test_stream_min_reference_bounded_by_window(self):
        with pytest.raises(ConfigurationError, match="min_reference"):
            StreamSpec(window=8, min_reference=9)

    def test_n_basis_below_spline_order_rejected(self):
        with pytest.raises(ConfigurationError, match="spline_order"):
            SmootherSpec(n_basis=3)
        with pytest.raises(ConfigurationError, match="spline_order"):
            SmootherSpec(n_basis=[8, 3], spline_order=4)

    def test_spline_order_must_support_mapping_derivatives(self):
        # Curvature consumes two derivatives: a quadratic spline cannot.
        with pytest.raises(ConfigurationError, match="spline_order >= 3"):
            PipelineSpec(smoother=SmootherSpec(spline_order=2))
        # The composite takes the max over its members (torsion needs 3).
        with pytest.raises(ConfigurationError, match="spline_order >= 4"):
            PipelineSpec(
                mapping=MappingSpec("CompositeMapping", mappings=(
                    MappingSpec("speed"), MappingSpec("TorsionMapping"),
                )),
                smoother=SmootherSpec(n_basis=8, spline_order=3),
            )
        # GeneralizedCurvatureMapping's need depends on its order param.
        with pytest.raises(ConfigurationError, match="spline_order >= 4"):
            PipelineSpec(
                mapping=MappingSpec("GeneralizedCurvatureMapping", {"order": 2}),
                smoother=SmootherSpec(n_basis=8, spline_order=3),
            )

    def test_stream_min_reference_floor(self):
        with pytest.raises(ConfigurationError, match="min_reference"):
            StreamSpec(min_reference=1)

    def test_stream_drift_window_floors(self):
        with pytest.raises(ConfigurationError, match="drift_recent"):
            StreamSpec(drift_recent=4)
        with pytest.raises(ConfigurationError, match="drift_baseline"):
            StreamSpec(drift_baseline=4)

    def test_workload_accepts_float32_rejects_unknown_dtype(self):
        assert WorkloadSpec(dtype="float32").dtype == "float32"
        with pytest.raises(ConfigurationError, match="dtype"):
            WorkloadSpec(dtype="float16")

    def test_workload_rejects_unknown_mode(self):
        with pytest.raises(ConfigurationError, match="mode"):
            WorkloadSpec(mode="warp")

    def test_pipeline_doc_unknown_key(self):
        with pytest.raises(ConfigurationError, match="valid:"):
            PipelineSpec.from_dict({"spec": "pipeline", "detektor": {}})

    def test_untagged_document_rejected(self):
        with pytest.raises(ConfigurationError, match="'spec' tag"):
            spec_from_dict({"detector": {"name": "iforest"}})

    def test_unknown_tag_rejected(self):
        with pytest.raises(ConfigurationError, match="known tags"):
            spec_from_dict({"spec": "warp-drive"})

    def test_invalid_json_text(self):
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            spec_from_json("{broken")

    def test_configuration_error_is_validation_error(self):
        # Callers catching the broad validation family keep working.
        assert issubclass(ConfigurationError, ValidationError)


class TestMakeMethodRegression:
    """The historical string path must keep working — and fail loudly."""

    def test_string_path_still_constructs(self):
        from repro.core.methods import (
            DirOutMethod,
            FuntaMethod,
            MappedDetectorMethod,
            make_method,
        )

        assert isinstance(make_method("Dir.out"), DirOutMethod)
        assert isinstance(make_method("FUNTA"), FuntaMethod)
        method = make_method("iFor(Curvmap)", n_estimators=50)
        assert isinstance(method, MappedDetectorMethod)
        assert method.detector_kwargs["n_estimators"] == 50
        assert method.name == "iFor(Curvmap)"

    def test_unknown_spec_still_raises_validation_error(self):
        from repro.core.methods import make_method

        with pytest.raises(ValidationError):
            make_method("LSTM")

    def test_unknown_kwarg_no_longer_silent(self):
        """Regression: unrecognized kwargs used to flow silently into
        detector_kwargs and explode (or worse, be ignored) much later;
        the spec validator now rejects them at the call site with the
        valid-key list."""
        from repro.core.methods import make_method

        with pytest.raises(ConfigurationError) as err:
            make_method("iforest", n_estimatorz=50)
        message = str(err.value)
        assert "n_estimatorz" in message
        assert "n_estimators" in message  # the valid-key list names the fix

    def test_unknown_kwarg_funta(self):
        from repro.core.methods import make_method

        with pytest.raises(ConfigurationError, match="valid:"):
            make_method("funta", window=3)


class TestManifestSpecSection:
    def test_saved_manifest_carries_validated_spec(self, tmp_path):
        from repro.core.pipeline import GeometricOutlierPipeline
        from repro.data.synthetic import make_taxonomy_dataset
        from repro.detectors import IsolationForest
        from repro.serving import MANIFEST_NAME, read_spec, save_pipeline

        data, _ = make_taxonomy_dataset(
            "correlation", n_inliers=20, n_outliers=3, random_state=0
        )
        pipeline = GeometricOutlierPipeline(
            IsolationForest(n_estimators=10, random_state=0), n_basis=8
        ).fit(data)
        save_pipeline(pipeline, tmp_path / "model")
        manifest = json.loads(
            (tmp_path / "model" / MANIFEST_NAME).read_text(encoding="utf-8")
        )
        assert manifest["format_version"] == 2
        assert manifest["spec"]["spec"] == "pipeline"
        # The declarative parts moved out of the fitted state entirely.
        assert "config" not in manifest["state"]
        assert "mapping" not in manifest["state"]
        spec = read_spec(tmp_path / "model")
        assert spec == PipelineSpec.from_dict(manifest["spec"])
        assert spec == pipeline.to_spec()
        # The detector's constructor config lives in the spec only.
        assert "config" not in manifest["state"]["detector"]

    def test_edited_spec_section_governs_restored_detector(self, tmp_path):
        """The spec section is authoritative: editing a hyperparameter in
        the manifest changes the restored detector (no silently ignored
        duplicate inside the fitted state)."""
        from repro.core.pipeline import GeometricOutlierPipeline
        from repro.data.synthetic import make_taxonomy_dataset
        from repro.detectors import IsolationForest
        from repro.serving import MANIFEST_NAME, load_pipeline, save_pipeline

        data, _ = make_taxonomy_dataset(
            "correlation", n_inliers=20, n_outliers=3, random_state=0
        )
        pipeline = GeometricOutlierPipeline(
            IsolationForest(n_estimators=10, random_state=0), n_basis=8
        ).fit(data)
        save_pipeline(pipeline, tmp_path / "model")
        manifest_path = tmp_path / "model" / MANIFEST_NAME
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        manifest["spec"]["detector"]["params"]["contamination"] = 0.25
        manifest_path.write_text(json.dumps(manifest), encoding="utf-8")
        restored = load_pipeline(tmp_path / "model")
        assert restored.detector.contamination == 0.25
