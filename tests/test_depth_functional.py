"""Unit tests for functional depth aggregation (paper Sec. 1.2 issues)."""

import numpy as np
import pytest

from repro.depth.functional import (
    _modified_band_depth_pairwise,
    aggregate_depth,
    functional_depth,
    modified_band_depth,
    pointwise_depth_profile,
    univariate_integrated_depth,
)
from repro.exceptions import ValidationError
from repro.fda.fdata import FDataGrid, MFDataGrid


@pytest.fixture
def band_curves():
    """9 horizontal lines at levels 0..8 plus a grid."""
    grid = np.linspace(0, 1, 20)
    values = np.tile(np.arange(9.0)[:, None], (1, 20))
    return FDataGrid(values, grid)


@pytest.fixture
def fan_mfd(rng):
    """Bivariate curves fanned around zero; index 0 is the most central."""
    grid = np.linspace(0, 1, 30)
    offsets = np.array([0.0, 1.0, -1.0, 2.0, -2.0, 3.0, -3.0])
    x = offsets[:, None] + 0.0 * grid[None, :]
    y = 2 * offsets[:, None] + 0.0 * grid[None, :]
    values = np.stack([x, y], axis=2) + 0.01 * rng.standard_normal((7, 30, 2))
    return MFDataGrid(values, grid)


class TestPointwiseProfile:
    def test_shape(self, fan_mfd):
        profile = pointwise_depth_profile(fan_mfd, notion="mahalanobis")
        assert profile.shape == (7, 30)

    def test_central_curve_deepest(self, fan_mfd):
        profile = pointwise_depth_profile(fan_mfd, notion="projection", random_state=0)
        means = profile.mean(axis=1)
        assert means.argmax() == 0

    def test_unknown_notion(self, fan_mfd):
        with pytest.raises(ValidationError, match="unknown depth notion"):
            pointwise_depth_profile(fan_mfd, notion="bogus")

    def test_reference_grid_mismatch(self, fan_mfd):
        other = MFDataGrid(fan_mfd.values[:, :-1, :], fan_mfd.grid[:-1])
        with pytest.raises(ValidationError):
            pointwise_depth_profile(fan_mfd, reference=other)


class TestAggregateDepth:
    def test_integral_averages(self):
        grid = np.linspace(0, 1, 11)
        profile = np.vstack([np.full(11, 0.5), np.linspace(0, 1, 11)])
        out = aggregate_depth(profile, grid, "integral")
        np.testing.assert_allclose(out, [0.5, 0.5], atol=1e-8)

    def test_infimum_takes_min(self):
        grid = np.linspace(0, 1, 11)
        profile = np.vstack([np.full(11, 0.5), np.linspace(0.1, 1, 11)])
        out = aggregate_depth(profile, grid, "infimum")
        np.testing.assert_allclose(out, [0.5, 0.1])

    def test_infimum_catches_isolated_dip(self):
        """Paper issue (2): an isolated outlier's single deep dip is
        masked by the integral but caught by the infimum."""
        grid = np.linspace(0, 1, 101)
        inlier = np.full(101, 0.45)
        isolated = np.full(101, 0.5)
        isolated[50] = 0.01  # extreme at a single point
        profile = np.vstack([inlier, isolated])
        integral = aggregate_depth(profile, grid, "integral")
        infimum = aggregate_depth(profile, grid, "infimum")
        assert integral[1] > integral[0]  # masked: looks deeper on average
        assert infimum[1] < infimum[0]  # caught by the infimum

    def test_unknown_aggregation(self):
        with pytest.raises(ValidationError):
            aggregate_depth(np.ones((2, 5)), np.linspace(0, 1, 5), "median")


class TestFunctionalDepth:
    def test_outlier_ranked_last(self, correlation_mfd):
        data, labels = correlation_mfd
        depth = functional_depth(data, notion="projection", random_state=0)
        # The correlation outliers have typical marginals: pointwise depth
        # in the joint R^2 cloud must still pull some of them down.
        assert depth[labels == 1].mean() < depth[labels == 0].mean()

    def test_reference_based_scoring(self, fan_mfd):
        ref = fan_mfd[:5]
        depth = functional_depth(fan_mfd, reference=ref, notion="mahalanobis")
        assert depth.shape == (7,)

    def test_rejects_raw_arrays(self):
        with pytest.raises(ValidationError):
            functional_depth(np.zeros((3, 5, 2)))


class TestUnivariateIntegratedDepth:
    def test_median_curve_deepest(self, band_curves):
        depth = univariate_integrated_depth(band_curves)
        assert depth.argmax() == 4  # the middle level

    def test_extremes_shallowest(self, band_curves):
        depth = univariate_integrated_depth(band_curves)
        assert depth.argmin() in (0, 8)


class TestModifiedBandDepth:
    def test_middle_curve_deepest(self, band_curves):
        depth = modified_band_depth(band_curves)
        assert depth.argmax() == 4

    def test_extreme_curves_shallowest(self, band_curves):
        depth = modified_band_depth(band_curves)
        assert set([depth.argmin()]) <= {0, 8}

    def test_exact_small_case(self):
        """Three constant curves at 0, 1, 2: middle one is inside the only
        band not involving it; each curve is always inside its own bands."""
        grid = np.linspace(0, 1, 5)
        data = FDataGrid(np.tile(np.array([0.0, 1.0, 2.0])[:, None], (1, 5)), grid)
        depth = modified_band_depth(data)
        # Bands: {0,1}, {0,2}, {1,2}. Curve 1 inside all 3; curves 0 and 2
        # inside the 2 bands containing them.
        np.testing.assert_allclose(depth, [2 / 3, 1.0, 2 / 3])

    def test_needs_two_reference_curves(self, band_curves):
        with pytest.raises(ValidationError):
            modified_band_depth(band_curves, reference=band_curves[0])

    def test_out_of_sample(self, band_curves):
        new = FDataGrid(np.full((1, 20), 4.2), band_curves.grid)
        depth = modified_band_depth(new, reference=band_curves)
        assert 0.0 < depth[0] <= 1.0

    def test_rank_count_matches_pairwise(self, rng):
        """The vectorized rank-count identity equals the explicit pair loop."""
        grid = np.linspace(0, 1, 17)
        data = FDataGrid(rng.standard_normal((12, 17)), grid)
        np.testing.assert_allclose(
            modified_band_depth(data),
            _modified_band_depth_pairwise(data),
            rtol=0, atol=1e-12,
        )

    def test_rank_count_matches_pairwise_with_ties_and_reference(self, rng):
        grid = np.linspace(0, 1, 9)
        # Quantized values force ties, the regime where strict/non-strict
        # inequalities in the identity must line up exactly.
        ref = FDataGrid(np.round(rng.standard_normal((15, 9)) * 2) / 2, grid)
        new = FDataGrid(np.round(rng.standard_normal((6, 9)) * 2) / 2, grid)
        np.testing.assert_allclose(
            modified_band_depth(new, reference=ref),
            _modified_band_depth_pairwise(new, reference=ref),
            rtol=0, atol=1e-12,
        )
