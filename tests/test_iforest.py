"""Unit tests for the from-scratch Isolation Forest."""

import numpy as np
import pytest

from repro.detectors.iforest import IsolationForest, average_path_length
from repro.evaluation.metrics import roc_auc
from repro.exceptions import NotFittedError, ValidationError


class TestAveragePathLength:
    def test_known_values(self):
        assert average_path_length(1) == 0.0
        assert average_path_length(2) == 1.0
        # c(n) = 2 H(n-1) - 2(n-1)/n
        n = 256
        expected = 2 * (np.log(n - 1) + 0.5772156649015329) - 2 * (n - 1) / n
        assert average_path_length(n) == pytest.approx(expected)

    def test_monotone(self):
        values = average_path_length(np.arange(2, 100))
        assert (np.diff(values) > 0).all()

    def test_vectorized(self):
        out = average_path_length(np.array([1, 2, 10]))
        assert out.shape == (3,)


class TestIsolationForest:
    def test_separates_gaussian_outliers(self, gaussian_cloud):
        X, y = gaussian_cloud
        forest = IsolationForest(random_state=0).fit(X)
        assert roc_auc(forest.score_samples(X), y) > 0.95

    def test_scores_in_unit_interval(self, gaussian_cloud):
        X, _ = gaussian_cloud
        scores = IsolationForest(random_state=0).fit(X).score_samples(X)
        assert ((scores > 0) & (scores < 1)).all()

    def test_center_scores_below_half(self, rng):
        X = rng.standard_normal((500, 2))
        forest = IsolationForest(random_state=1).fit(X)
        center_score = forest.score_samples(np.zeros((1, 2)))[0]
        far_score = forest.score_samples(np.array([[8.0, 8.0]]))[0]
        assert center_score < 0.5 < far_score

    def test_reproducible_with_seed(self, gaussian_cloud):
        X, _ = gaussian_cloud
        s1 = IsolationForest(random_state=5).fit(X).score_samples(X)
        s2 = IsolationForest(random_state=5).fit(X).score_samples(X)
        np.testing.assert_array_equal(s1, s2)

    def test_different_seeds_differ(self, gaussian_cloud):
        X, _ = gaussian_cloud
        s1 = IsolationForest(random_state=1).fit(X).score_samples(X)
        s2 = IsolationForest(random_state=2).fit(X).score_samples(X)
        assert not np.array_equal(s1, s2)

    def test_subsample_capped_at_n(self, rng):
        X = rng.standard_normal((20, 2))
        forest = IsolationForest(max_samples=256, random_state=0).fit(X)
        assert forest._psi == 20

    def test_score_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            IsolationForest().score_samples(np.zeros((2, 2)))

    def test_feature_mismatch_after_fit(self, gaussian_cloud):
        X, _ = gaussian_cloud
        forest = IsolationForest(random_state=0).fit(X)
        with pytest.raises(ValidationError):
            forest.score_samples(np.zeros((2, 5)))

    def test_predict_with_contamination(self, gaussian_cloud):
        X, y = gaussian_cloud
        forest = IsolationForest(random_state=0, contamination=0.05).fit(X)
        labels = forest.predict(X)
        assert set(np.unique(labels)) <= {-1, 1}
        # Roughly the contamination fraction flagged on the training set.
        assert np.mean(labels == -1) == pytest.approx(0.05, abs=0.03)

    def test_natural_threshold_half(self, gaussian_cloud):
        X, _ = gaussian_cloud
        forest = IsolationForest(random_state=0).fit(X)
        assert forest.threshold_ == 0.5

    def test_constant_features_handled(self):
        X = np.ones((50, 3))
        forest = IsolationForest(random_state=0).fit(X)
        scores = forest.score_samples(X)
        assert np.isfinite(scores).all()
        # All-identical points cannot be isolated: every score equal.
        assert np.allclose(scores, scores[0])

    def test_single_informative_feature(self, rng):
        """Outliers separated on one of many noise features still found."""
        X = rng.standard_normal((300, 10)) * 0.01
        X[:, 3] = rng.standard_normal(300)
        X_out = X[:5].copy()
        X_out[:, 3] = 6.0
        forest = IsolationForest(random_state=0).fit(np.vstack([X, X_out]))
        scores = forest.score_samples(np.vstack([X, X_out]))
        y = np.r_[np.zeros(300), np.ones(5)]
        assert roc_auc(scores, y) > 0.9

    def test_invalid_params(self):
        with pytest.raises(ValidationError):
            IsolationForest(n_estimators=0)
        with pytest.raises(ValidationError):
            IsolationForest(max_samples=1)
        with pytest.raises(ValidationError):
            IsolationForest(contamination=0.7)

    def test_fit_predict(self, gaussian_cloud):
        X, _ = gaussian_cloud
        labels = IsolationForest(random_state=0, contamination=0.1).fit_predict(X)
        assert labels.shape == (X.shape[0],)
