"""Unit tests for the repetition harness."""

import numpy as np
import pytest

from repro.core.methods import DirOutMethod, MappedDetectorMethod
from repro.data import make_ecg_dataset, square_augment
from repro.evaluation.experiment import (
    PAPER_CONTAMINATION_LEVELS,
    run_contamination_experiment,
)
from repro.exceptions import ValidationError


@pytest.fixture(scope="module")
def small_dataset():
    data, labels, _ = make_ecg_dataset(n_normal=40, n_abnormal=20, random_state=3)
    return square_augment(data), labels


class TestRunContaminationExperiment:
    def test_record_count(self, small_dataset):
        data, labels = small_dataset
        methods = [MappedDetectorMethod("iforest", n_basis=12)]
        table = run_contamination_experiment(
            data, labels, methods,
            contamination_levels=(0.1, 0.2),
            n_repetitions=3,
            random_state=0,
        )
        assert len(table.records) == 2 * 3

    def test_paper_levels_constant(self):
        assert PAPER_CONTAMINATION_LEVELS == (0.05, 0.10, 0.15, 0.20, 0.25)

    def test_reproducible_with_seed(self, small_dataset):
        data, labels = small_dataset
        def run():
            return run_contamination_experiment(
                data, labels,
                [MappedDetectorMethod("iforest", n_basis=12)],
                contamination_levels=(0.15,),
                n_repetitions=2,
                random_state=11,
            )
        t1, t2 = run(), run()
        np.testing.assert_allclose(
            t1.values("iFor(Curvmap)", 0.15), t2.values("iFor(Curvmap)", 0.15)
        )

    def test_multiple_methods_same_splits(self, small_dataset):
        """Both methods must be evaluated on identical splits: record
        counts match per (level, repetition)."""
        data, labels = small_dataset
        methods = [MappedDetectorMethod("iforest", n_basis=12), DirOutMethod()]
        table = run_contamination_experiment(
            data, labels, methods,
            contamination_levels=(0.1,),
            n_repetitions=2,
            random_state=0,
        )
        assert len(table.values("iFor(Curvmap)", 0.1)) == 2
        assert len(table.values("Dir.out", 0.1)) == 2

    def test_aucs_in_unit_interval(self, small_dataset):
        data, labels = small_dataset
        table = run_contamination_experiment(
            data, labels,
            [MappedDetectorMethod("iforest", n_basis=12)],
            contamination_levels=(0.2,),
            n_repetitions=3,
            random_state=1,
        )
        values = table.values("iFor(Curvmap)", 0.2)
        assert ((values >= 0) & (values <= 1)).all()

    def test_label_length_mismatch(self, small_dataset):
        data, labels = small_dataset
        with pytest.raises(ValidationError):
            run_contamination_experiment(
                data, labels[:-1], [DirOutMethod()], n_repetitions=1
            )

    def test_no_methods_rejected(self, small_dataset):
        data, labels = small_dataset
        with pytest.raises(ValidationError):
            run_contamination_experiment(data, labels, [], n_repetitions=1)

    def test_no_levels_rejected(self, small_dataset):
        data, labels = small_dataset
        with pytest.raises(ValidationError):
            run_contamination_experiment(
                data, labels, [DirOutMethod()], contamination_levels=(), n_repetitions=1
            )
