"""Unit tests for result aggregation."""

import numpy as np
import pytest

from repro.evaluation.results import ResultRecord, ResultTable
from repro.exceptions import ValidationError


@pytest.fixture
def table():
    t = ResultTable()
    for rep, auc in enumerate([0.9, 0.92, 0.88]):
        t.add("iFor", 0.05, rep, auc)
    for rep, auc in enumerate([0.8, 0.82]):
        t.add("iFor", 0.25, rep, auc)
    for rep, auc in enumerate([0.7, 0.75, 0.72]):
        t.add("FUNTA", 0.05, rep, auc)
    return t


class TestResultRecord:
    def test_auc_bounds(self):
        with pytest.raises(ValidationError):
            ResultRecord("m", 0.05, 0, 1.2)


class TestResultTable:
    def test_methods_preserve_insertion_order(self, table):
        assert table.methods == ["iFor", "FUNTA"]

    def test_contamination_levels_sorted(self, table):
        assert table.contamination_levels == [0.05, 0.25]

    def test_mean(self, table):
        assert table.mean("iFor", 0.05) == pytest.approx(0.9)

    def test_std_sample(self, table):
        values = np.array([0.9, 0.92, 0.88])
        assert table.std("iFor", 0.05) == pytest.approx(values.std(ddof=1))

    def test_std_single_value_zero(self):
        t = ResultTable()
        t.add("m", 0.1, 0, 0.9)
        assert t.std("m", 0.1) == 0.0

    def test_missing_cell_raises(self, table):
        with pytest.raises(ValidationError):
            table.mean("FUNTA", 0.25)

    def test_series(self, table):
        levels, means, stds = table.series("iFor")
        np.testing.assert_array_equal(levels, [0.05, 0.25])
        assert means[0] == pytest.approx(0.9)
        assert means[1] == pytest.approx(0.81)

    def test_to_text_contains_cells(self, table):
        text = table.to_text()
        assert "iFor" in text and "FUNTA" in text
        assert "c=0.05" in text and "c=0.25" in text
        assert "0.900" in text

    def test_to_records_roundtrip(self, table):
        records = table.to_records()
        assert len(records) == 8
        assert records[0] == {
            "method": "iFor",
            "contamination": 0.05,
            "repetition": 0,
            "auc": 0.9,
        }
