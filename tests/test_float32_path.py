"""Float32 fast-path accuracy: pinned ULP tolerances + rank preservation.

The vectorized kernels accept ``dtype="float32"`` (threaded from
``WorkloadSpec.dtype`` through the plan compiler); the naive oracles
always run in float64.  These tests pin how far the float32 path may
drift from the float64 result, measured in units of float32 machine
epsilon (one "ULP" here = ``eps32 * max(|x|, 1)``), and assert that the
drift never reorders scores on the Figure-3 workload — the property
detection actually relies on.

Tolerances are pinned per kernel from their numerics, with headroom
over observed error (seeded workload, BLAS-order dependent):

* funta — counts and aggregation stay float64, only the tangent-angle
  slabs are float32: observed ~1 ULP, pinned at 16.
* dirout — float32 projections, float64 Weiszfeld/statistics:
  observed ~3 ULP, pinned at 64.
* projection (SDO) — fully float32 including the medians: observed
  ~12 ULP, pinned at 128.
* spatial — unit-vector cancellation amplifies rounding: observed
  ~750 ULP, pinned at 8192 (~1e-3 relative).
* halfspace — rank *counts*: float32 rounding can flip points across a
  projection threshold, shifting a count by an integer, so the honest
  tolerance is absolute: at most 4 rank flips out of ``n_ref``.
"""

import numpy as np
import pytest

from repro.data import make_ecg_dataset, square_augment
from repro.depth._kernels import resolve_dtype
from repro.depth.dirout import dirout_scores
from repro.depth.functional import pointwise_depth_profile
from repro.depth.funta import funta_outlyingness
from repro.exceptions import ValidationError
from repro.plan import MethodSpec, WorkloadSpec, compile_plan

EPS32 = float(np.finfo(np.float32).eps)


@pytest.fixture(scope="module")
def fig3_workload():
    """The Figure-3 curve family: ECG beats + squared augmentation."""
    data, labels, _ = make_ecg_dataset(n_normal=60, n_abnormal=30, random_state=3)
    return data, square_augment(data), labels


def _max_ulp(f64, f32):
    f64 = np.asarray(f64, dtype=np.float64)
    f32 = np.asarray(f32, dtype=np.float64)
    scale = np.maximum(np.abs(f64), 1.0)
    return float(np.max(np.abs(f64 - f32) / (scale * EPS32)))


class TestPinnedUlpTolerances:
    def test_funta(self, fig3_workload):
        data, _, _ = fig3_workload
        ref = funta_outlyingness(data)
        fast = funta_outlyingness(data, dtype="float32")
        assert fast.dtype == np.float64  # counts/aggregation stay f64
        assert _max_ulp(ref, fast) <= 16

    def test_dirout(self, fig3_workload):
        _, mfd, _ = fig3_workload
        ref = dirout_scores(mfd, random_state=5)
        fast = dirout_scores(mfd, random_state=5, dtype="float32")
        assert fast.dtype == np.float64
        assert _max_ulp(ref, fast) <= 64

    def test_projection(self, fig3_workload):
        _, mfd, _ = fig3_workload
        ref = pointwise_depth_profile(mfd, notion="projection", random_state=5)
        fast = pointwise_depth_profile(
            mfd, notion="projection", random_state=5, dtype="float32"
        )
        assert fast.dtype == np.float32  # the pure-slab kernel stays f32
        assert _max_ulp(ref, fast) <= 128

    def test_spatial(self, fig3_workload):
        _, mfd, _ = fig3_workload
        ref = pointwise_depth_profile(mfd, notion="spatial")
        fast = pointwise_depth_profile(mfd, notion="spatial", dtype="float32")
        assert _max_ulp(ref, fast) <= 8192

    def test_halfspace_counts_absolute(self, fig3_workload):
        _, mfd, _ = fig3_workload
        ref = pointwise_depth_profile(mfd, notion="halfspace", random_state=5)
        fast = pointwise_depth_profile(
            mfd, notion="halfspace", random_state=5, dtype="float32"
        )
        # depth quantum is 1/n per flipped rank
        assert np.max(np.abs(ref - fast)) * mfd.n_samples <= 4.0

    def test_naive_oracle_ignores_dtype(self, fig3_workload):
        """The float64 oracle is the fixed point dtype cannot move."""
        _, mfd, _ = fig3_workload
        small = mfd[:20]
        ref = pointwise_depth_profile(small, notion="spatial", naive=True)
        also = pointwise_depth_profile(
            small, notion="spatial", naive=True, dtype="float32"
        )
        np.testing.assert_array_equal(ref, also)
        assert also.dtype == np.float64


class TestRankPreservation:
    """Detection consumes score *order*; float32 must not perturb it."""

    def test_funta_ranks(self, fig3_workload):
        data, _, _ = fig3_workload
        ref = funta_outlyingness(data)
        fast = funta_outlyingness(data, dtype="float32")
        np.testing.assert_array_equal(
            np.argsort(ref, kind="stable"), np.argsort(fast, kind="stable")
        )

    def test_dirout_ranks(self, fig3_workload):
        _, mfd, _ = fig3_workload
        ref = dirout_scores(mfd, random_state=5)
        fast = dirout_scores(mfd, random_state=5, dtype="float32")
        np.testing.assert_array_equal(
            np.argsort(ref, kind="stable"), np.argsort(fast, kind="stable")
        )

    def test_projection_curve_ranks(self, fig3_workload):
        _, mfd, _ = fig3_workload
        ref = pointwise_depth_profile(mfd, notion="projection", random_state=5)
        fast = pointwise_depth_profile(
            mfd, notion="projection", random_state=5, dtype="float32"
        )
        np.testing.assert_array_equal(
            np.argsort(ref.mean(axis=1)), np.argsort(np.float64(fast).mean(axis=1))
        )


class TestDtypePlumbing:
    def test_resolve_dtype(self):
        assert resolve_dtype(None) == np.float64
        assert resolve_dtype("float32") == np.float32
        assert resolve_dtype(np.float64) == np.float64
        with pytest.raises(ValidationError, match="dtype"):
            resolve_dtype("float16")

    def test_workload_dtype_reaches_method(self):
        method = compile_plan(
            MethodSpec("funta"), WorkloadSpec(dtype="float32")
        ).build()
        assert method.dtype == "float32"

    def test_default_workload_leaves_dtype_unset(self):
        method = compile_plan(MethodSpec("funta"), WorkloadSpec()).build()
        assert method.dtype is None

    def test_explicit_method_dtype_wins_over_workload(self):
        method = compile_plan(
            MethodSpec("funta", {"dtype": "float32"}), WorkloadSpec()
        ).build()
        assert method.dtype == "float32"

    def test_method_scores_with_dtype(self, fig3_workload):
        from repro.core.methods import FuntaMethod

        data, _, _ = fig3_workload
        idx = np.arange(data.n_samples)
        ref = FuntaMethod().score_dataset(data, idx, idx, random_state=3)
        fast = FuntaMethod(dtype="float32").score_dataset(data, idx, idx, random_state=3)
        assert _max_ulp(ref, fast) <= 64
        np.testing.assert_array_equal(
            np.argsort(ref, kind="stable"), np.argsort(fast, kind="stable")
        )
