"""Property-based tests (hypothesis) for the basis/smoothing substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fda.basis import BSplineBasis, FourierBasis
from repro.fda.smoothing import BasisSmoother

# Keep hypothesis example counts moderate: each example does linear algebra.
COMMON = settings(max_examples=25, deadline=None)


@st.composite
def bspline_config(draw):
    order = draw(st.integers(min_value=2, max_value=5))
    n_basis = draw(st.integers(min_value=order, max_value=18))
    low = draw(st.floats(min_value=-5.0, max_value=5.0))
    length = draw(st.floats(min_value=0.5, max_value=10.0))
    return (low, low + length), n_basis, order


class TestBSplineProperties:
    @COMMON
    @given(bspline_config())
    def test_partition_of_unity(self, config):
        domain, n_basis, order = config
        basis = BSplineBasis(domain, n_basis, order=order)
        t = np.linspace(domain[0], domain[1], 50)
        np.testing.assert_allclose(basis.evaluate(t).sum(axis=1), 1.0, atol=1e-9)

    @COMMON
    @given(bspline_config())
    def test_nonnegativity(self, config):
        domain, n_basis, order = config
        basis = BSplineBasis(domain, n_basis, order=order)
        t = np.linspace(domain[0], domain[1], 50)
        assert (basis.evaluate(t) >= -1e-12).all()

    @COMMON
    @given(bspline_config())
    def test_local_support(self, config):
        """Each B-spline is supported on at most `order` knot spans, so at
        any point at most `order` basis functions are nonzero."""
        domain, n_basis, order = config
        basis = BSplineBasis(domain, n_basis, order=order)
        t = np.linspace(domain[0], domain[1], 64)
        active = (basis.evaluate(t) > 1e-12).sum(axis=1)
        assert (active <= order).all()

    @COMMON
    @given(bspline_config())
    def test_first_derivative_sums_to_zero(self, config):
        """D(sum of basis) = D(1) = 0."""
        domain, n_basis, order = config
        if order < 2:
            return
        basis = BSplineBasis(domain, n_basis, order=order)
        interior = np.linspace(domain[0], domain[1], 30)[1:-1]
        d1 = basis.evaluate(interior, derivative=1)
        np.testing.assert_allclose(d1.sum(axis=1), 0.0, atol=1e-8)


class TestFourierProperties:
    @COMMON
    @given(
        st.integers(min_value=1, max_value=15),
        st.floats(min_value=0.5, max_value=8.0),
    )
    def test_periodic_boundaries(self, n_basis, length):
        basis = FourierBasis((0.0, length), n_basis)
        left = basis.evaluate(np.array([0.0]))
        right = basis.evaluate(np.array([length]))
        np.testing.assert_allclose(left, right, atol=1e-8)


class TestSmootherProperties:
    @COMMON
    @given(
        st.integers(min_value=5, max_value=14),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_fit_is_linear_in_data(self, n_basis, lam):
        """alpha*(a y1 + b y2) = a alpha*(y1) + b alpha*(y2): penalized LS
        is a linear operator on the observations."""
        rng = np.random.default_rng(42)
        grid = np.linspace(0, 1, 30)
        basis = BSplineBasis((0.0, 1.0), n_basis)
        smoother = BasisSmoother(basis, smoothing=lam)
        y1 = rng.standard_normal(30)
        y2 = rng.standard_normal(30)
        combined = smoother.fit_sample(grid, 2.0 * y1 - 3.0 * y2)
        separate = 2.0 * smoother.fit_sample(grid, y1) - 3.0 * smoother.fit_sample(grid, y2)
        np.testing.assert_allclose(combined, separate, atol=1e-7)

    @COMMON
    @given(st.floats(min_value=1e-8, max_value=1e4))
    def test_penalty_reduces_roughness(self, lam):
        """Increasing lambda never increases the fitted roughness
        alpha' R alpha relative to the unpenalized fit."""
        rng = np.random.default_rng(7)
        grid = np.linspace(0, 1, 40)
        values = rng.standard_normal(40)
        basis = BSplineBasis((0.0, 1.0), 12)
        rough_fit = BasisSmoother(basis, smoothing=0.0)
        smooth_fit = BasisSmoother(basis, smoothing=lam)
        R = smooth_fit.penalty
        alpha0 = rough_fit.fit_sample(grid, values)
        alpha1 = smooth_fit.fit_sample(grid, values)
        assert alpha1 @ R @ alpha1 <= alpha0 @ R @ alpha0 + 1e-8
