"""Unit tests for the method registry (Figure 3 methods)."""

import numpy as np
import pytest

from repro.core.methods import (
    DirOutMethod,
    FuntaMethod,
    MappedDetectorMethod,
    _robust_standardize,
    default_methods,
    make_method,
    smooth_dataset,
)
from repro.data import square_augment
from repro.evaluation.metrics import roc_auc
from repro.exceptions import ValidationError
from repro.geometry.mappings import SpeedMapping


@pytest.fixture(scope="module")
def ecg_mfd():
    from repro.data import make_ecg_dataset

    data, labels, _ = make_ecg_dataset(n_normal=40, n_abnormal=20, random_state=3)
    return square_augment(data), labels


@pytest.fixture
def split_indices(ecg_mfd):
    _, labels = ecg_mfd
    rng = np.random.default_rng(0)
    train = np.concatenate(
        [
            rng.choice(np.nonzero(labels == 0)[0], 25, replace=False),
            rng.choice(np.nonzero(labels == 1)[0], 4, replace=False),
        ]
    )
    test = np.setdiff1d(np.arange(labels.shape[0]), train)
    return train, test


class TestRobustStandardize:
    def test_clipping(self, rng):
        train = rng.standard_normal((50, 3))
        test = train.copy()
        test[0, 0] = 1e9
        tr, te = _robust_standardize(train, test)
        assert te.max() <= 10.0
        assert tr.max() <= 10.0

    def test_constant_feature_guard(self):
        train = np.ones((10, 2))
        tr, te = _robust_standardize(train, train)
        assert np.isfinite(tr).all()


class TestSmoothDataset:
    def test_reduces_noise(self, ecg_mfd):
        data, _ = ecg_mfd
        smoothed = smooth_dataset(data)
        assert smoothed.values.shape == data.values.shape
        # Smoothing removes high-frequency energy.
        raw_roughness = np.abs(np.diff(data.values, 2, axis=1)).mean()
        smooth_roughness = np.abs(np.diff(smoothed.values, 2, axis=1)).mean()
        assert smooth_roughness < raw_roughness


class TestMappedDetectorMethod:
    def test_name_convention(self):
        assert MappedDetectorMethod("iforest").name == "iFor(Curvmap)"
        assert MappedDetectorMethod("ocsvm").name == "OCSVM(Curvmap)"

    def test_custom_mapping_name(self):
        method = MappedDetectorMethod("iforest", mapping=SpeedMapping())
        assert "Speed" in method.name

    def test_invalid_detector(self):
        with pytest.raises(ValidationError):
            MappedDetectorMethod("svm")

    def test_invalid_transform(self):
        with pytest.raises(ValidationError):
            MappedDetectorMethod("iforest", feature_transform="sqrt")

    def test_prepare_returns_features(self, ecg_mfd):
        data, _ = ecg_mfd
        state = MappedDetectorMethod("iforest", n_basis=12).prepare(data, random_state=0)
        assert state["features"].shape == (data.n_samples, data.n_points)
        assert state["sizes"] == [12, 12]

    def test_fit_score_detects(self, ecg_mfd, split_indices):
        data, labels = ecg_mfd
        train, test = split_indices
        method = MappedDetectorMethod("iforest", n_basis=20)
        state = method.prepare(data, random_state=0)
        scores = method.fit_score(state, train, test, random_state=1)
        assert roc_auc(scores, labels[test]) > 0.7

    def test_ocsvm_with_tuning(self, ecg_mfd, split_indices):
        data, labels = ecg_mfd
        train, test = split_indices
        method = MappedDetectorMethod(
            "ocsvm", n_basis=16, tune=True, nu_candidates=(0.05, 0.15), gamma=0.05
        )
        state = method.prepare(data, random_state=0)
        scores = method.fit_score(state, train, test, random_state=1)
        assert roc_auc(scores, labels[test]) > 0.7

    def test_score_dataset_one_shot(self, ecg_mfd, split_indices):
        data, labels = ecg_mfd
        train, test = split_indices
        scores = MappedDetectorMethod("iforest", n_basis=12).score_dataset(
            data, train, test, random_state=2
        )
        assert scores.shape == (len(test),)


class TestBaselineMethods:
    def test_funta_reference_scoring(self, ecg_mfd, split_indices):
        data, labels = ecg_mfd
        train, test = split_indices
        method = FuntaMethod()
        state = method.prepare(data)
        scores = method.fit_score(state, train, test)
        assert scores.shape == (len(test),)
        assert ((scores >= 0) & (scores <= 1)).all()

    def test_dirout_detects(self, ecg_mfd, split_indices):
        data, labels = ecg_mfd
        train, test = split_indices
        method = DirOutMethod()
        state = method.prepare(data)
        scores = method.fit_score(state, train, test, random_state=0)
        assert roc_auc(scores, labels[test]) > 0.6

    def test_smoothing_can_be_disabled(self, ecg_mfd):
        data, _ = ecg_mfd
        raw_state = DirOutMethod(smooth=False).prepare(data)
        np.testing.assert_array_equal(raw_state["data"].values, data.values)


class TestRegistry:
    def test_default_methods_are_figure3(self):
        names = [m.name for m in default_methods()]
        assert names == ["Dir.out", "FUNTA", "iFor(Curvmap)", "OCSVM(Curvmap)"]

    @pytest.mark.parametrize(
        "spec, expected",
        [
            ("Dir.out", DirOutMethod),
            ("FUNTA", FuntaMethod),
            ("iFor(Curvmap)", MappedDetectorMethod),
            ("ocsvm", MappedDetectorMethod),
        ],
    )
    def test_make_method(self, spec, expected):
        assert isinstance(make_method(spec), expected)

    def test_unknown_spec(self):
        with pytest.raises(ValidationError):
            make_method("LSTM")
