"""Unit tests for the B-spline basis (validated against scipy)."""

import numpy as np
import pytest
from scipy.interpolate import BSpline

from repro.exceptions import BasisError
from repro.fda.basis.bspline import BSplineBasis


@pytest.fixture
def cubic():
    return BSplineBasis((0.0, 1.0), n_basis=9, order=4)


class TestConstruction:
    def test_knot_vector_clamped(self, cubic):
        assert np.all(cubic.knot_vector[:4] == 0.0)
        assert np.all(cubic.knot_vector[-4:] == 1.0)
        assert cubic.knot_vector.shape == (13,)

    def test_degree(self, cubic):
        assert cubic.degree == 3
        assert cubic.max_derivative == 3

    def test_minimal_basis_no_interior_knots(self):
        basis = BSplineBasis((0.0, 1.0), n_basis=4, order=4)
        assert basis.interior_breakpoints.size == 0

    def test_explicit_knots(self):
        basis = BSplineBasis((0.0, 1.0), n_basis=6, order=4, knots=[0.3, 0.7])
        np.testing.assert_allclose(basis.interior_breakpoints, [0.3, 0.7])

    def test_wrong_knot_count(self):
        with pytest.raises(BasisError, match="interior knots"):
            BSplineBasis((0.0, 1.0), n_basis=6, order=4, knots=[0.5])

    def test_knots_outside_domain(self):
        with pytest.raises(BasisError):
            BSplineBasis((0.0, 1.0), n_basis=5, order=4, knots=[1.5])

    def test_unsorted_knots(self):
        with pytest.raises(BasisError):
            BSplineBasis((0.0, 1.0), n_basis=6, order=4, knots=[0.7, 0.3])

    def test_n_basis_below_order(self):
        with pytest.raises(BasisError):
            BSplineBasis((0.0, 1.0), n_basis=3, order=4)

    def test_invalid_domain(self):
        with pytest.raises(BasisError):
            BSplineBasis((1.0, 0.0), n_basis=5)


class TestEvaluation:
    def test_partition_of_unity(self, cubic):
        t = np.linspace(0, 1, 197)
        design = cubic.evaluate(t)
        np.testing.assert_allclose(design.sum(axis=1), 1.0, atol=1e-12)

    def test_nonnegative(self, cubic):
        design = cubic.evaluate(np.linspace(0, 1, 100))
        assert (design >= -1e-14).all()

    def test_matches_scipy_values(self, cubic):
        t = np.linspace(0, 1, 173)
        design = cubic.evaluate(t)
        for l in range(cubic.n_basis):
            coeffs = np.zeros(cubic.n_basis)
            coeffs[l] = 1.0
            ref = np.nan_to_num(
                BSpline(cubic.knot_vector, coeffs, 3, extrapolate=False)(t)
            )
            np.testing.assert_allclose(design[:-1, l], ref[:-1], atol=1e-12)

    @pytest.mark.parametrize("deriv", [1, 2, 3])
    def test_matches_scipy_derivatives(self, cubic, deriv):
        t = np.linspace(0, 1, 173)
        design = cubic.evaluate(t, derivative=deriv)
        for l in range(cubic.n_basis):
            coeffs = np.zeros(cubic.n_basis)
            coeffs[l] = 1.0
            ref = BSpline(cubic.knot_vector, coeffs, 3).derivative(deriv)(t)
            np.testing.assert_allclose(design[1:-1, l], ref[1:-1], atol=1e-6)

    def test_derivative_beyond_degree_rejected(self, cubic):
        """Requesting D^4 of a cubic spline is a caller error (the result
        would be identically zero and a q=4 penalty would not penalize)."""
        with pytest.raises(BasisError, match="derivatives up to"):
            cubic.evaluate(np.linspace(0, 1, 10), derivative=4)

    def test_right_endpoint_well_defined(self, cubic):
        design = cubic.evaluate(np.array([1.0]))
        assert design.sum() == pytest.approx(1.0)
        # At the right endpoint only the last basis function is active.
        assert design[0, -1] == pytest.approx(1.0)

    def test_points_outside_domain_rejected(self, cubic):
        with pytest.raises(BasisError, match="domain"):
            cubic.evaluate(np.array([1.5]))

    def test_scalar_point(self, cubic):
        design = cubic.evaluate(0.5)
        assert design.shape == (1, 9)

    def test_2d_points_rejected(self, cubic):
        with pytest.raises(BasisError):
            cubic.evaluate(np.zeros((2, 2)))

    def test_linear_reproduction(self):
        """Clamped cubic B-splines reproduce linear functions exactly via
        the Greville abscissae."""
        basis = BSplineBasis((0.0, 1.0), n_basis=8, order=4)
        knots = basis.knot_vector
        greville = np.array(
            [knots[l + 1 : l + 4].mean() for l in range(basis.n_basis)]
        )
        t = np.linspace(0, 1, 63)
        design = basis.evaluate(t)
        np.testing.assert_allclose(design @ greville, t, atol=1e-12)


class TestLowerOrders:
    def test_order_two_piecewise_linear(self):
        basis = BSplineBasis((0.0, 1.0), n_basis=5, order=2)
        t = np.linspace(0, 1, 41)
        design = basis.evaluate(t)
        np.testing.assert_allclose(design.sum(axis=1), 1.0, atol=1e-12)
        # Hat functions peak at their own knot with value 1.
        assert design.max() == pytest.approx(1.0)

    def test_order_one_indicators(self):
        basis = BSplineBasis((0.0, 1.0), n_basis=4, order=1)
        design = basis.evaluate(np.array([0.1, 0.3, 0.6, 0.9]))
        np.testing.assert_allclose(design.sum(axis=1), 1.0)
        assert set(np.unique(design)) == {0.0, 1.0}
