"""Unit tests for the functional boxplot."""

import numpy as np
import pytest

from repro.depth.boxplot import functional_boxplot
from repro.exceptions import ValidationError
from repro.fda.fdata import FDataGrid


@pytest.fixture
def curves_with_outlier(rng):
    grid = np.linspace(0, 1, 60)
    values = np.sin(2 * np.pi * grid)[None, :] + 0.1 * rng.standard_normal((25, 60))
    values[24] = np.sin(2 * np.pi * grid) + 3.0  # magnitude outlier
    return FDataGrid(values, grid)


class TestFunctionalBoxplot:
    def test_flags_magnitude_outlier(self, curves_with_outlier):
        result = functional_boxplot(curves_with_outlier)
        assert result.outlier_mask[24]
        assert result.scores[24] > 0

    def test_typical_curves_not_flagged(self, curves_with_outlier):
        result = functional_boxplot(curves_with_outlier)
        assert result.outlier_mask[:24].sum() <= 2

    def test_envelope_ordering(self, curves_with_outlier):
        result = functional_boxplot(curves_with_outlier)
        assert (result.fence_lower <= result.lower).all()
        assert (result.lower <= result.upper).all()
        assert (result.upper <= result.fence_upper).all()

    def test_median_inside_central_region(self, curves_with_outlier):
        result = functional_boxplot(curves_with_outlier)
        assert (result.median >= result.lower - 1e-12).all()
        assert (result.median <= result.upper + 1e-12).all()

    def test_scores_zero_inside_fence(self, curves_with_outlier):
        result = functional_boxplot(curves_with_outlier)
        inside = ~result.outlier_mask
        np.testing.assert_array_equal(result.scores[inside], 0.0)

    def test_higher_inflation_flags_less(self, curves_with_outlier):
        strict = functional_boxplot(curves_with_outlier, inflation=0.5)
        loose = functional_boxplot(curves_with_outlier, inflation=3.0)
        assert loose.outlier_mask.sum() <= strict.outlier_mask.sum()

    def test_shape_outlier_inside_band_not_flagged(self, rng):
        """The functional boxplot is magnitude-only: a frequency outlier
        living inside the envelope escapes — the known limitation that
        motivates shape-aware methods."""
        grid = np.linspace(0, 1, 60)
        values = np.sin(2 * np.pi * grid)[None, :] + 0.2 * rng.standard_normal((25, 60))
        # Same trend with a superimposed wiggle: stays inside the band.
        values[24] = 0.95 * np.sin(2 * np.pi * grid) + 0.1 * np.sin(10 * np.pi * grid)
        result = functional_boxplot(FDataGrid(values, grid))
        assert not result.outlier_mask[24]

    def test_needs_four_curves(self, rng):
        grid = np.linspace(0, 1, 20)
        with pytest.raises(ValidationError):
            functional_boxplot(FDataGrid(rng.standard_normal((3, 20)), grid))

    def test_parameter_validation(self, curves_with_outlier):
        with pytest.raises(ValidationError):
            functional_boxplot(curves_with_outlier, central_fraction=1.5)
        with pytest.raises(ValidationError):
            functional_boxplot(curves_with_outlier, inflation=0.0)
