"""Property suite: spec → JSON → spec → compile → score bit-identity.

The plan layer's core promise is that the declarative path is a *pure
re-encoding*: for every registered detector, mapping, smoother
configuration and Figure-3 method, serializing the spec to JSON,
parsing it back, compiling it and scoring is **bit-identical** to
constructing the objects directly.  Hypothesis drives the parameter
space; the registries drive the coverage sweep.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.methods import (
    DirOutMethod,
    FuntaMethod,
    MappedDetectorMethod,
)
from repro.core.pipeline import GeometricOutlierPipeline
from repro.data.synthetic import make_taxonomy_dataset
from repro.detectors import DETECTOR_REGISTRY, make_detector
from repro.geometry.mappings import MAPPING_REGISTRY, mapping_from_config
from repro.plan import (
    DetectorSpec,
    MappingSpec,
    MethodSpec,
    PipelineSpec,
    SmootherSpec,
    compile_plan,
    spec_from_json,
    spec_to_json,
)

COMMON = settings(max_examples=8, deadline=None)


@pytest.fixture(scope="module")
def dataset():
    data, _ = make_taxonomy_dataset(
        "correlation", n_inliers=24, n_outliers=4, random_state=9
    )
    return data


def _round_trip(spec):
    """JSON round trip, asserting exact spec equality on the way."""
    restored = spec_from_json(spec_to_json(spec))
    assert restored == spec
    return restored


#: Hypothesis strategies for each registered detector's constructor
#: space (kept tiny so fits stay fast and every detector is valid on
#: the 28-curve module dataset).
DETECTOR_PARAMS = {
    "iforest": st.fixed_dictionaries({
        "n_estimators": st.integers(5, 20),
        "max_samples": st.integers(4, 16),
        "random_state": st.integers(0, 3),
    }),
    "ocsvm": st.fixed_dictionaries({
        "nu": st.sampled_from([0.1, 0.2, 0.5]),
        "kernel": st.sampled_from(["rbf", "linear"]),
    }),
    "knn": st.fixed_dictionaries({
        "n_neighbors": st.integers(1, 4),
        "aggregation": st.sampled_from(["kth", "mean"]),
    }),
    "lof": st.fixed_dictionaries({"n_neighbors": st.integers(2, 6)}),
    "mahalanobis": st.fixed_dictionaries({
        "trim": st.sampled_from([0.0, 0.1, 0.2]),
        "shrinkage": st.sampled_from([0.05, 0.1]),
    }),
}

assert set(DETECTOR_PARAMS) == set(DETECTOR_REGISTRY), (
    "a newly registered detector needs a strategy here so the plan "
    "round-trip property keeps covering the whole registry"
)


@pytest.mark.parametrize("name", sorted(DETECTOR_REGISTRY))
def test_every_detector_round_trips_to_identical_scores(name, dataset):
    @COMMON
    @given(params=DETECTOR_PARAMS[name])
    def run(params):
        spec = _round_trip(PipelineSpec(
            detector=DetectorSpec(name, params),
            smoother=SmootherSpec(n_basis=8),
        ))
        compiled = compile_plan(spec).fit(dataset)
        direct = GeometricOutlierPipeline(
            make_detector(name, **params), n_basis=8
        ).fit(dataset)
        np.testing.assert_array_equal(
            compiled.score_samples(dataset), direct.score_samples(dataset)
        )

    run()


def _mapping_case(cls_name):
    """A valid (spec, dataset kwargs) pair for one registered mapping."""
    cls = MAPPING_REGISTRY[cls_name]
    p = max(getattr(cls, "min_dimension", 1), 2)
    spline_order = max(4, cls.required_derivatives + 1)
    return p, spline_order


@pytest.mark.parametrize("cls_name", sorted(MAPPING_REGISTRY))
def test_every_mapping_round_trips_to_identical_scores(cls_name):
    p, spline_order = _mapping_case(cls_name)
    rng = np.random.default_rng(4)
    grid = np.linspace(0.0, 1.0, 30)
    from repro.fda.fdata import MFDataGrid

    values = np.cumsum(rng.standard_normal((16, 30, p)), axis=1) * 0.1
    data = MFDataGrid(values, grid)
    spec = _round_trip(PipelineSpec(
        detector=DetectorSpec("mahalanobis"),
        mapping=MappingSpec(cls_name),
        smoother=SmootherSpec(n_basis=8, spline_order=spline_order),
    ))
    compiled = compile_plan(spec).fit(data)
    direct = GeometricOutlierPipeline(
        make_detector("mahalanobis"),
        mapping=mapping_from_config({"type": cls_name, "params": {}}),
        n_basis=8,
        spline_order=spline_order,
    ).fit(data)
    np.testing.assert_array_equal(
        compiled.score_samples(data), direct.score_samples(data)
    )


def test_composite_mapping_round_trips_to_identical_scores(dataset):
    spec = _round_trip(PipelineSpec(
        detector=DetectorSpec("mahalanobis"),
        mapping=MappingSpec("CompositeMapping", mappings=(
            MappingSpec("CurvatureMapping"), MappingSpec("SpeedMapping"),
        )),
        smoother=SmootherSpec(n_basis=8),
    ))
    compiled = compile_plan(spec).fit(dataset)
    direct = GeometricOutlierPipeline(
        make_detector("mahalanobis"),
        mapping=mapping_from_config({
            "type": "CompositeMapping",
            "mappings": [
                {"type": "CurvatureMapping", "params": {}},
                {"type": "SpeedMapping", "params": {}},
            ],
        }),
        n_basis=8,
    ).fit(dataset)
    np.testing.assert_array_equal(
        compiled.score_samples(dataset), direct.score_samples(dataset)
    )


@COMMON
@given(
    n_basis=st.one_of(
        st.none(),
        st.integers(6, 14),
        st.lists(st.integers(6, 14), min_size=1, max_size=3, unique=True),
    ),
    smoothing=st.sampled_from([0.0, 1e-6, 1e-4, 1e-2]),
    penalty_order=st.integers(0, 3),
)
def test_smoother_spec_space_round_trips(n_basis, smoothing, penalty_order):
    spec = SmootherSpec(
        n_basis=n_basis, smoothing=smoothing, penalty_order=penalty_order
    )
    assert SmootherSpec.from_dict(spec.to_dict()) == spec


@COMMON
@given(smoothing=st.sampled_from([1e-5, 1e-4, 1e-3]), n_basis=st.integers(6, 12))
def test_smoother_configuration_round_trips_to_identical_scores(
    smoothing, n_basis, dataset
):
    spec = _round_trip(PipelineSpec(
        detector=DetectorSpec("mahalanobis"),
        smoother=SmootherSpec(n_basis=n_basis, smoothing=smoothing),
    ))
    compiled = compile_plan(spec).fit(dataset)
    direct = GeometricOutlierPipeline(
        make_detector("mahalanobis"), n_basis=n_basis, smoothing=smoothing
    ).fit(dataset)
    np.testing.assert_array_equal(
        compiled.score_samples(dataset), direct.score_samples(dataset)
    )


_METHOD_DIRECT = {
    "funta": lambda params: FuntaMethod(**params),
    "dirout": lambda params: DirOutMethod(**params),
    "iforest": lambda params: MappedDetectorMethod("iforest", **params),
    "ocsvm": lambda params: MappedDetectorMethod("ocsvm", **params),
}

METHOD_PARAMS = {
    "funta": st.fixed_dictionaries({"trim": st.sampled_from([0.0, 0.1])}),
    "dirout": st.fixed_dictionaries({"n_directions": st.integers(20, 60)}),
    "iforest": st.fixed_dictionaries({
        "n_basis": st.just(8),
        "n_estimators": st.integers(5, 15),
    }),
    "ocsvm": st.fixed_dictionaries({
        "n_basis": st.just(8),
        "tune": st.just(False),
        "nu": st.sampled_from([0.1, 0.2]),
    }),
}


@pytest.mark.parametrize("kind", sorted(_METHOD_DIRECT))
def test_every_method_round_trips_to_identical_scores(kind, dataset):
    idx = np.arange(dataset.n_samples)

    @COMMON
    @given(params=METHOD_PARAMS[kind], seed=st.integers(0, 2))
    def run(params, seed):
        spec = _round_trip(MethodSpec(kind, params))
        compiled = compile_plan(spec).build()
        direct = _METHOD_DIRECT[kind](dict(params))
        np.testing.assert_array_equal(
            compiled.score_dataset(dataset, idx, idx, random_state=seed),
            direct.score_dataset(dataset, idx, idx, random_state=seed),
        )

    run()
