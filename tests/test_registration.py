"""Unit tests for curve registration."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.fda.fdata import FDataGrid
from repro.fda.registration import landmark_register, shift_register


@pytest.fixture
def shifted_sines(rng):
    """Sine curves with known per-sample phase shifts."""
    grid = np.linspace(0.0, 1.0, 120)
    true_shifts = rng.uniform(-0.08, 0.08, 12)
    values = np.stack([np.sin(2 * np.pi * (grid + s)) for s in true_shifts])
    return FDataGrid(values, grid), true_shifts


class TestShiftRegister:
    def test_recovers_known_shifts(self, shifted_sines):
        data, true_shifts = shifted_sines
        result = shift_register(data, max_shift=0.12, periodic=True, n_candidates=121)
        # Shifts are recovered up to a common offset and a sign flip:
        # x_i(t) = sin(2 pi (t + s_i)) needs evaluation at t - s_i to
        # align, so the estimated shift is -s_i (+ common offset).
        centered_est = result.shifts - result.shifts.mean()
        centered_true = true_shifts - true_shifts.mean()
        np.testing.assert_allclose(centered_est, -centered_true, atol=0.01)

    def test_reduces_pointwise_variance(self, shifted_sines):
        data, _ = shifted_sines
        result = shift_register(data, max_shift=0.12, periodic=True)
        var_before = data.values.var(axis=0).mean()
        var_after = result.aligned.values.var(axis=0).mean()
        assert var_after < 0.2 * var_before

    def test_fixed_template(self, shifted_sines):
        data, _ = shifted_sines
        template = np.sin(2 * np.pi * data.grid)
        result = shift_register(
            data, max_shift=0.12, periodic=True, template=template, n_candidates=121
        )
        # Against the zero-phase template the absolute shifts are recovered.
        residual = result.aligned.values - template[None, :]
        assert np.abs(residual).mean() < 0.05

    def test_clamped_boundaries(self, rng):
        grid = np.linspace(0.0, 1.0, 60)
        values = np.stack([np.exp(-((grid - 0.5 - s) ** 2) / 0.01) for s in (-0.05, 0.0, 0.05)])
        data = FDataGrid(values, grid)
        result = shift_register(data, max_shift=0.1, periodic=False)
        peaks = data.grid[np.argmax(result.aligned.values, axis=1)]
        assert np.ptp(peaks) < 0.03

    def test_template_length_mismatch(self, shifted_sines):
        data, _ = shifted_sines
        with pytest.raises(ValidationError):
            shift_register(data, template=np.zeros(5))

    def test_rejects_arrays(self):
        with pytest.raises(ValidationError):
            shift_register(np.zeros((3, 10)))


class TestLandmarkRegister:
    def test_aligns_peaks(self, rng):
        grid = np.linspace(0.0, 1.0, 200)
        centers = np.array([0.35, 0.45, 0.55])
        values = np.stack([np.exp(-((grid - c) ** 2) / 0.005) for c in centers])
        data = FDataGrid(values, grid)
        registered = landmark_register(data, centers[:, None])
        peaks = grid[np.argmax(registered.values, axis=1)]
        np.testing.assert_allclose(peaks, 0.45, atol=0.02)

    def test_custom_targets(self):
        grid = np.linspace(0.0, 1.0, 100)
        values = np.stack([np.exp(-((grid - c) ** 2) / 0.01) for c in (0.4, 0.6)])
        data = FDataGrid(values, grid)
        registered = landmark_register(data, np.array([[0.4], [0.6]]), targets=np.array([0.5]))
        peaks = grid[np.argmax(registered.values, axis=1)]
        np.testing.assert_allclose(peaks, 0.5, atol=0.03)

    def test_identity_when_landmarks_equal_targets(self):
        grid = np.linspace(0.0, 1.0, 50)
        values = np.sin(2 * np.pi * grid)[None, :]
        data = FDataGrid(values, grid)
        registered = landmark_register(data, np.array([[0.5]]), targets=np.array([0.5]))
        np.testing.assert_allclose(registered.values, values, atol=1e-10)

    def test_landmark_outside_domain(self):
        grid = np.linspace(0.0, 1.0, 50)
        data = FDataGrid(np.zeros((1, 50)), grid)
        with pytest.raises(ValidationError):
            landmark_register(data, np.array([[1.5]]))

    def test_nonmonotone_landmarks(self):
        grid = np.linspace(0.0, 1.0, 50)
        data = FDataGrid(np.zeros((1, 50)), grid)
        with pytest.raises(ValidationError):
            landmark_register(data, np.array([[0.7, 0.3]]))

    def test_row_count_mismatch(self):
        grid = np.linspace(0.0, 1.0, 50)
        data = FDataGrid(np.zeros((2, 50)), grid)
        with pytest.raises(ValidationError):
            landmark_register(data, np.array([[0.5]]))
