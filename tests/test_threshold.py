"""Unit tests for threshold learning (paper Sec. 4.2)."""

import numpy as np
import pytest

from repro.detectors.threshold import (
    LearnedThreshold,
    threshold_from_quantile,
    threshold_from_roc,
    threshold_max_f1,
)
from repro.exceptions import ValidationError


@pytest.fixture
def separable():
    scores = np.array([0.1, 0.2, 0.3, 0.4, 0.8, 0.9])
    labels = np.array([0, 0, 0, 0, 1, 1])
    return scores, labels


@pytest.fixture
def overlapping(rng):
    inlier_scores = rng.normal(0.0, 1.0, 200)
    outlier_scores = rng.normal(2.5, 1.0, 40)
    scores = np.concatenate([inlier_scores, outlier_scores])
    labels = np.r_[np.zeros(200, int), np.ones(40, int)]
    return scores, labels


class TestThresholdFromRoc:
    def test_perfect_separation(self, separable):
        scores, labels = separable
        learned = threshold_from_roc(scores, labels)
        assert 0.4 < learned.value < 0.8
        assert learned.objective == pytest.approx(1.0)  # J = 1 when separable
        np.testing.assert_array_equal(
            learned.predict(scores), np.r_[np.ones(4), -np.ones(2)]
        )

    def test_overlapping_reasonable(self, overlapping):
        scores, labels = overlapping
        learned = threshold_from_roc(scores, labels)
        # Optimal J point lies between the two means.
        assert 0.0 < learned.value < 2.5
        assert learned.objective > 0.5

    def test_criterion_name(self, separable):
        assert threshold_from_roc(*separable).criterion == "youden"


class TestThresholdMaxF1:
    def test_perfect_separation(self, separable):
        scores, labels = separable
        learned = threshold_max_f1(scores, labels)
        assert learned.objective == pytest.approx(1.0)
        assert 0.4 < learned.value < 0.8

    def test_overlapping_positive_f1(self, overlapping):
        scores, labels = overlapping
        learned = threshold_max_f1(scores, labels)
        assert learned.objective > 0.6

    def test_single_distinct_score_rejected(self):
        with pytest.raises(ValidationError):
            threshold_max_f1(np.ones(5), np.array([0, 0, 0, 1, 1]))


class TestThresholdFromQuantile:
    def test_flags_target_fraction(self, rng):
        scores = rng.standard_normal(1000)
        learned = threshold_from_quantile(scores, 0.1)
        flagged = np.mean(learned.predict(scores) == -1)
        assert flagged == pytest.approx(0.1, abs=0.01)

    def test_contamination_bounds(self, rng):
        with pytest.raises(ValidationError):
            threshold_from_quantile(rng.standard_normal(10), 0.7)

    def test_needs_two_scores(self):
        with pytest.raises(ValidationError):
            threshold_from_quantile(np.array([1.0]), 0.1)


class TestLearnedThreshold:
    def test_predict_orientation(self):
        learned = LearnedThreshold(value=0.5, criterion="manual", objective=0.0)
        np.testing.assert_array_equal(
            learned.predict([0.4, 0.6]), np.array([1, -1])
        )
