"""Property tests: mergeable shard state combines like the single stream.

The sharded tier is only sound if its merge operations behave like set
union on the underlying observations.  Hypothesis-driven pins:

* :class:`QuantileSketch` merge is **exactly commutative** (identical
  centroid state both ways) and associative — bit-exact while no
  compression triggers, within a bucket-resolution tolerance once it
  does — including empty and single-element shards;
* :func:`merge_moments` is order-insensitive and associative at
  ``rtol=1e-12`` with empty partials acting as identity elements;
* ``SlidingWindow.split`` → ``SlidingWindow.merged`` round-trips the
  window **bit-exactly** (values, slot order, ``n_seen``) across shard
  counts and fill levels, and permuting equally-filled shards leaves
  the merged value multiset unchanged;
* :meth:`SortedLanes.merged` is insensitive to how rows were dealt to
  the parts, bitwise.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.streaming import QuantileSketch, SlidingWindow
from repro.streaming.online import SortedLanes, merge_moments

COMMON = settings(max_examples=20, deadline=None)

RTOL = 1e-12


def _chunks(seed: int, sizes) -> list:
    rng = np.random.default_rng(seed)
    return [rng.standard_normal(int(s)) for s in sizes]


class TestQuantileSketchMerge:
    @COMMON
    @given(
        seed=st.integers(0, 2**31 - 1),
        size_a=st.integers(0, 50),
        size_b=st.integers(0, 50),
    )
    def test_merge_exactly_commutative(self, seed, size_a, size_b):
        chunk_a, chunk_b = _chunks(seed, [size_a, size_b])
        a = QuantileSketch(compression=16)
        b = QuantileSketch(compression=16)
        a.update(chunk_a)
        b.update(chunk_b)
        ab, ba = a.merge(b), b.merge(a)
        assert ab.n_seen == ba.n_seen == size_a + size_b
        np.testing.assert_array_equal(ab._means, ba._means)
        np.testing.assert_array_equal(ab._weights, ba._weights)
        if ab.n_seen:
            for q in (0.0, 0.05, 0.5, 0.95, 1.0):
                assert ab.quantile(q) == ba.quantile(q)

    @COMMON
    @given(
        seed=st.integers(0, 2**31 - 1),
        sizes=st.tuples(*[st.integers(0, 40)] * 3),
    )
    def test_merge_associative(self, seed, sizes):
        compression = 32
        chunks = _chunks(seed, sizes)
        sketches = []
        for chunk in chunks:
            sketch = QuantileSketch(compression=compression)
            sketch.update(chunk)
            sketches.append(sketch)
        a, b, c = sketches
        left = a.merge(b).merge(c)
        right = a.merge(b.merge(c))
        total = sum(sizes)
        assert left.n_seen == right.n_seen == total
        if total == 0:
            return
        pooled = np.concatenate(chunks)
        if total <= compression:
            # No folding anywhere: both sides hold the exact multiset.
            np.testing.assert_array_equal(left._means, right._means)
            for q in (0.05, 0.5, 0.95):
                assert left.quantile(q) == np.quantile(pooled, q)
                assert right.quantile(q) == np.quantile(pooled, q)
        else:
            # Compressed: parenthesizations agree to bucket resolution.
            span = float(pooled.max() - pooled.min()) or 1.0
            atol = 6.0 * span / compression
            for q in (0.05, 0.5, 0.95):
                assert abs(left.quantile(q) - right.quantile(q)) <= atol

    def test_empty_and_singleton_shards(self):
        empty = QuantileSketch()
        single = QuantileSketch()
        single.update([2.5])
        merged = QuantileSketch.merged([empty, single, QuantileSketch()])
        assert merged.n_seen == 1
        assert merged.quantile(0.5) == 2.5


class TestMergeMoments:
    @COMMON
    @given(
        seed=st.integers(0, 2**31 - 1),
        sizes=st.tuples(*[st.integers(0, 30)] * 3),
        dim=st.integers(1, 4),
    )
    def test_order_insensitive_and_associative(self, seed, sizes, dim):
        rng = np.random.default_rng(seed)
        parts = []
        for size in sizes:
            block = rng.standard_normal((int(size), dim))
            if size == 0:
                parts.append((0, None, None))
                continue
            mean = block.mean(axis=0)
            centered = block - mean
            parts.append((int(size), mean, centered.T @ centered))
        a, b, c = parts

        def close(x, y):
            assert x[0] == y[0]
            if x[0] == 0:
                return
            np.testing.assert_allclose(x[1], y[1], rtol=RTOL, atol=1e-10)
            np.testing.assert_allclose(x[2], y[2], rtol=RTOL, atol=1e-10)

        close(merge_moments([a, b, c]), merge_moments([c, b, a]))
        left = merge_moments([merge_moments([a, b]), c])
        right = merge_moments([a, merge_moments([b, c])])
        close(left, right)
        # Identity: folding in empty partials changes nothing.
        close(
            merge_moments([a, (0, None, None)]),
            merge_moments([a]),
        )


class TestSlidingWindowMerge:
    @COMMON
    @given(
        seed=st.integers(0, 2**31 - 1),
        n_shards=st.integers(1, 4),
        slots_per_shard=st.integers(2, 6),
        total=st.integers(0, 80),
    )
    def test_split_merge_round_trip_bit_exact(
        self, seed, n_shards, slots_per_shard, total
    ):
        capacity = n_shards * slots_per_shard
        rng = np.random.default_rng(seed)
        window = SlidingWindow(capacity)
        for value in rng.standard_normal((total, 3, 1)):
            window.observe(value)
        shards = window.split(n_shards)
        assert sum(s.n_seen for s in shards) == total
        merged = SlidingWindow.merged(shards)
        assert merged.n_seen == window.n_seen
        assert merged.size == window.size
        np.testing.assert_array_equal(merged.values, window.values)

    @COMMON
    @given(
        seed=st.integers(0, 2**31 - 1),
        n_shards=st.integers(1, 4),
        rounds=st.integers(0, 12),
    )
    def test_merge_value_multiset_order_insensitive(self, seed, n_shards, rounds):
        # With equally-filled shards (total divisible by the shard
        # count) any shard ordering is a valid round-robin phase, and
        # the merged window must hold the same value multiset.
        rng = np.random.default_rng(seed)
        window = SlidingWindow(n_shards * 4)
        for value in rng.standard_normal((rounds * n_shards, 2, 1)):
            window.observe(value)
        shards = window.split(n_shards)
        forward = SlidingWindow.merged(shards)
        backward = SlidingWindow.merged(shards[::-1])
        np.testing.assert_array_equal(
            np.sort(forward.values, axis=None),
            np.sort(backward.values, axis=None),
        )


class TestSortedLanesMerge:
    @COMMON
    @given(
        seed=st.integers(0, 2**31 - 1),
        n_parts=st.integers(1, 4),
        rows_each=st.integers(1, 10),
        m=st.integers(2, 8),
    )
    def test_merged_deal_insensitive(self, seed, n_parts, rows_each, m):
        rng = np.random.default_rng(seed)
        rows = rng.standard_normal((n_parts * rows_each, m))

        def lanes_for(block):
            lanes = SortedLanes(m, block.shape[0])
            for row in block:
                lanes.insert(row)
            return lanes

        dealt = [rows[i::n_parts] for i in range(n_parts)]  # round-robin deal
        contiguous = np.array_split(rows, n_parts)  # contiguous deal
        merged_a = SortedLanes.merged([lanes_for(b) for b in dealt])
        merged_b = SortedLanes.merged([lanes_for(b) for b in contiguous])
        single = lanes_for(rows)
        assert merged_a.size == merged_b.size == single.size
        np.testing.assert_array_equal(
            merged_a.lanes[:, : single.size], single.lanes[:, : single.size]
        )
        np.testing.assert_array_equal(
            merged_b.lanes[:, : single.size], single.lanes[:, : single.size]
        )
