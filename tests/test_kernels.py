"""Unit tests for SVM kernels."""

import numpy as np
import pytest

from repro.detectors.kernels import (
    linear_kernel,
    make_kernel,
    polynomial_kernel,
    rbf_kernel,
    resolve_gamma,
    sigmoid_kernel,
)
from repro.exceptions import ValidationError


@pytest.fixture
def points(rng):
    return rng.standard_normal((6, 3)), rng.standard_normal((4, 3))


class TestRbfKernel:
    def test_diagonal_one(self, points):
        a, _ = points
        K = rbf_kernel(a, a, gamma=0.7)
        np.testing.assert_allclose(np.diag(K), 1.0)

    def test_symmetric_psd(self, points):
        a, _ = points
        K = rbf_kernel(a, a, gamma=0.5)
        np.testing.assert_allclose(K, K.T, atol=1e-12)
        assert np.linalg.eigvalsh(K).min() > -1e-10

    def test_range(self, points):
        a, b = points
        K = rbf_kernel(a, b, gamma=1.0)
        assert ((K > 0) & (K <= 1)).all()

    def test_known_value(self):
        a = np.array([[0.0, 0.0]])
        b = np.array([[1.0, 1.0]])
        assert rbf_kernel(a, b, gamma=0.5)[0, 0] == pytest.approx(np.exp(-1.0))

    def test_gamma_positive(self, points):
        a, _ = points
        with pytest.raises(ValidationError):
            rbf_kernel(a, a, gamma=0.0)


class TestOtherKernels:
    def test_linear_is_inner_product(self, points):
        a, b = points
        np.testing.assert_allclose(linear_kernel(a, b), a @ b.T)

    def test_polynomial_known_value(self):
        a = np.array([[1.0, 2.0]])
        b = np.array([[3.0, 4.0]])
        # (0.5 * 11 + 1)^2 = 42.25
        value = polynomial_kernel(a, b, gamma=0.5, degree=2, coef0=1.0)[0, 0]
        assert value == pytest.approx(42.25)

    def test_sigmoid_bounded(self, points):
        a, b = points
        K = sigmoid_kernel(a, b, gamma=0.3)
        assert (np.abs(K) <= 1.0).all()


class TestResolveGamma:
    def test_scale_heuristic(self, rng):
        X = rng.standard_normal((100, 4)) * 2.0
        gamma = resolve_gamma("scale", X)
        assert gamma == pytest.approx(1.0 / (4 * X.var()), rel=1e-9)

    def test_auto(self, rng):
        X = rng.standard_normal((10, 5))
        assert resolve_gamma("auto", X) == pytest.approx(0.2)

    def test_float_passthrough(self, rng):
        assert resolve_gamma(0.3, rng.standard_normal((3, 2))) == 0.3

    def test_constant_data_guard(self):
        X = np.ones((10, 2))
        assert np.isfinite(resolve_gamma("scale", X))

    def test_negative_rejected(self, rng):
        with pytest.raises(ValidationError):
            resolve_gamma(-1.0, rng.standard_normal((3, 2)))


class TestMakeKernel:
    @pytest.mark.parametrize("name", ["rbf", "linear", "poly", "sigmoid"])
    def test_builds_callable(self, name, points):
        a, b = points
        kernel = make_kernel(name, gamma=0.5)
        K = kernel(a, b)
        assert K.shape == (6, 4)

    def test_unknown_kernel(self):
        with pytest.raises(ValidationError):
            make_kernel("laplacian", gamma=1.0)
