"""Unit tests for the GeometricOutlierPipeline (the paper's method)."""

import numpy as np
import pytest

from repro.core.pipeline import GeometricOutlierPipeline
from repro.detectors import IsolationForest, KNNDetector, OneClassSVM
from repro.evaluation.metrics import roc_auc
from repro.exceptions import NotFittedError, ValidationError
from repro.geometry.mappings import CompositeMapping, CurvatureMapping, SpeedMapping


@pytest.fixture
def pipeline():
    return GeometricOutlierPipeline(IsolationForest(random_state=0), n_basis=15)


class TestConstruction:
    def test_default_mapping_is_curvature(self, pipeline):
        assert isinstance(pipeline.mapping, CurvatureMapping)

    def test_rejects_non_detector(self):
        with pytest.raises(ValidationError):
            GeometricOutlierPipeline(detector="iforest")

    def test_rejects_non_mapping(self):
        with pytest.raises(ValidationError):
            GeometricOutlierPipeline(IsolationForest(), mapping="curvature")

    def test_spline_order_must_support_mapping(self):
        # Curvature needs 2 derivatives; order-2 splines only provide 1.
        with pytest.raises(ValidationError, match="spline_order"):
            GeometricOutlierPipeline(IsolationForest(), spline_order=2)

    def test_empty_candidates_rejected(self):
        with pytest.raises(ValidationError):
            GeometricOutlierPipeline(IsolationForest(), n_basis=[])

    def test_candidate_below_order_rejected(self):
        with pytest.raises(ValidationError):
            GeometricOutlierPipeline(IsolationForest(), n_basis=[3])


class TestFit:
    def test_fixed_basis_size(self, correlation_mfd):
        data, _ = correlation_mfd
        pipe = GeometricOutlierPipeline(IsolationForest(random_state=0), n_basis=12)
        pipe.fit(data)
        assert pipe.selected_n_basis_ == [12, 12]

    def test_loocv_selection_runs(self, correlation_mfd):
        data, _ = correlation_mfd
        pipe = GeometricOutlierPipeline(
            IsolationForest(random_state=0), n_basis=[8, 16, 24]
        )
        pipe.fit(data)
        assert all(size in (8, 16, 24) for size in pipe.selected_n_basis_)

    def test_eval_grid_defaults_to_data_grid(self, correlation_mfd, pipeline):
        data, _ = correlation_mfd
        pipeline.fit(data)
        np.testing.assert_array_equal(pipeline.eval_grid_, data.grid)

    def test_custom_eval_points(self, correlation_mfd):
        data, _ = correlation_mfd
        pipe = GeometricOutlierPipeline(
            IsolationForest(random_state=0), n_basis=12, eval_points=40
        )
        pipe.fit(data)
        assert pipe.eval_grid_.shape == (40,)

    def test_ufd_input_promoted(self, sine_curves):
        pipe = GeometricOutlierPipeline(
            IsolationForest(random_state=0), mapping=SpeedMapping(), n_basis=10
        )
        pipe.fit(sine_curves)
        assert pipe.selected_n_basis_ == [10]

    def test_rejects_arrays(self, pipeline):
        with pytest.raises(ValidationError):
            pipeline.fit(np.zeros((3, 10, 2)))


class TestScoring:
    def test_detects_correlation_outliers(self, correlation_mfd):
        """The headline property: correlation-breaking outliers invisible
        to marginal analysis are caught by the curvature pipeline."""
        data, labels = correlation_mfd
        pipe = GeometricOutlierPipeline(KNNDetector(5), n_basis=20)
        scores = pipe.fit(data).score_samples(data)
        assert roc_auc(scores, labels) > 0.9

    def test_transform_shape(self, correlation_mfd, pipeline):
        data, _ = correlation_mfd
        pipeline.fit(data)
        features = pipeline.transform(data)
        assert features.shape == (data.n_samples, data.n_points)

    def test_composite_mapping_widens_features(self, correlation_mfd):
        data, _ = correlation_mfd
        pipe = GeometricOutlierPipeline(
            IsolationForest(random_state=0),
            mapping=CompositeMapping([CurvatureMapping(), SpeedMapping()]),
            n_basis=12,
        )
        pipe.fit(data)
        assert pipe.transform(data).shape[1] == 2 * data.n_points

    def test_score_before_fit(self, correlation_mfd, pipeline):
        data, _ = correlation_mfd
        with pytest.raises(NotFittedError):
            pipeline.score_samples(data)

    def test_out_of_sample_scoring(self, correlation_mfd):
        data, labels = correlation_mfd
        pipe = GeometricOutlierPipeline(KNNDetector(5), n_basis=16)
        pipe.fit(data[:30])
        scores = pipe.score_samples(data[30:])
        assert scores.shape == (data.n_samples - 30,)

    def test_predict_with_contamination(self, correlation_mfd):
        data, labels = correlation_mfd
        pipe = GeometricOutlierPipeline(
            IsolationForest(random_state=0, contamination=0.15), n_basis=12
        )
        predictions = pipe.fit(data).predict(data)
        assert set(np.unique(predictions)) <= {-1, 1}

    def test_fit_score_convenience(self, correlation_mfd):
        data, labels = correlation_mfd
        pipe = GeometricOutlierPipeline(KNNDetector(5), n_basis=12)
        scores = pipe.fit_score(data, data)
        assert scores.shape == (data.n_samples,)

    def test_ocsvm_head(self, correlation_mfd):
        data, labels = correlation_mfd
        pipe = GeometricOutlierPipeline(OneClassSVM(nu=0.15), n_basis=16)
        scores = pipe.fit(data).score_samples(data)
        assert roc_auc(scores, labels) > 0.7
