"""Unit tests for LOO-CV / GCV model selection."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.fda.basis import BSplineBasis
from repro.fda.fdata import FDataGrid
from repro.fda.selection import (
    gcv_score,
    loocv_score,
    select_n_basis,
    select_smoothing,
)
from repro.fda.smoothing import BasisSmoother


class TestLoocvScore:
    def test_matches_explicit_leave_one_out(self, rng):
        """The hat-matrix shortcut must equal literal refit-without-point CV."""
        grid = np.linspace(0, 1, 25)
        values = np.sin(2 * np.pi * grid) + 0.1 * rng.standard_normal(25)
        basis = BSplineBasis((0.0, 1.0), n_basis=6)
        smoother = BasisSmoother(basis, smoothing=1e-3)
        fast = loocv_score(smoother, grid, values)

        errors = []
        for j in range(25):
            keep = np.arange(25) != j
            coeffs = smoother.fit_sample(grid[keep], values[keep])
            pred = basis.evaluate(grid[j : j + 1]) @ coeffs
            errors.append((values[j] - pred[0]) ** 2)
        np.testing.assert_allclose(fast, np.mean(errors), rtol=1e-6)

    def test_penalizes_overfitting(self, sine_curves):
        """LOO-CV must increase when the basis badly overfits the noise."""
        small = BasisSmoother(BSplineBasis((0.0, 1.0), n_basis=10), smoothing=0.0)
        huge = BasisSmoother(BSplineBasis((0.0, 1.0), n_basis=80), smoothing=0.0)
        score_small = loocv_score(small, sine_curves.grid, sine_curves.values)
        score_huge = loocv_score(huge, sine_curves.grid, sine_curves.values)
        assert score_small < score_huge

    def test_multiple_curves_averaged(self, sine_curves):
        smoother = BasisSmoother(BSplineBasis((0.0, 1.0), n_basis=8))
        all_curves = loocv_score(smoother, sine_curves.grid, sine_curves.values)
        first = loocv_score(smoother, sine_curves.grid, sine_curves.values[0])
        assert all_curves != pytest.approx(first)


class TestGcvScore:
    def test_close_to_loocv_for_stable_fit(self, sine_curves):
        smoother = BasisSmoother(BSplineBasis((0.0, 1.0), n_basis=10), smoothing=1e-4)
        loo = loocv_score(smoother, sine_curves.grid, sine_curves.values)
        gcv = gcv_score(smoother, sine_curves.grid, sine_curves.values)
        assert gcv == pytest.approx(loo, rel=0.25)


class TestSelectNBasis:
    def test_picks_reasonable_size(self, sine_curves):
        result = select_n_basis(
            sine_curves,
            lambda dom, L: BSplineBasis(dom, L),
            candidates=[4, 8, 16, 40, 70],
        )
        # A single sine needs few basis functions; huge bases overfit noise.
        assert result.best in (4, 8, 16)
        assert set(result.scores) == {4, 8, 16, 40, 70}

    def test_empty_candidates_rejected(self, sine_curves):
        with pytest.raises(ValidationError):
            select_n_basis(sine_curves, lambda dom, L: BSplineBasis(dom, L), [])

    def test_unknown_criterion(self, sine_curves):
        with pytest.raises(ValidationError):
            select_n_basis(
                sine_curves, lambda dom, L: BSplineBasis(dom, L), [5], criterion="aic"
            )

    def test_gcv_criterion(self, sine_curves):
        result = select_n_basis(
            sine_curves, lambda dom, L: BSplineBasis(dom, L), [6, 12], criterion="gcv"
        )
        assert result.best in (6, 12)


class TestSelectSmoothing:
    def test_prefers_moderate_lambda_on_noisy_data(self, rng):
        grid = np.linspace(0, 1, 40)
        truth = np.sin(2 * np.pi * grid)
        noisy = truth[None, :] + 0.3 * rng.standard_normal((10, 40))
        data = FDataGrid(noisy, grid)
        basis = BSplineBasis((0.0, 1.0), n_basis=25)
        result = select_smoothing(data, basis, candidates=[0.0, 1e-6, 1e-4, 1e-2, 1.0])
        # With strong noise and a big basis, some penalty must win over none.
        assert result.best != 0.0

    def test_scores_recorded_per_candidate(self, sine_curves):
        basis = BSplineBasis((0.0, 1.0), n_basis=12)
        result = select_smoothing(sine_curves, basis, candidates=[1e-6, 1e-3])
        assert len(result.scores) == 2
