"""Unit tests for the streaming quantile thresholds (exact ring + P²)."""

import numpy as np
import pytest

from repro.detectors.threshold import (
    StreamingQuantileThreshold,
    threshold_from_quantile,
)
from repro.exceptions import ValidationError
from repro.streaming import P2Quantile, P2QuantileThreshold, make_threshold


class TestStreamingQuantileThreshold:
    def test_batch_delegation_is_bit_identical(self):
        rng = np.random.default_rng(0)
        for size in (2, 17, 256):
            scores = rng.standard_normal(size)
            for contamination in (0.01, 0.1, 0.49):
                learned = threshold_from_quantile(scores, contamination)
                assert learned.value == float(
                    np.quantile(scores, 1.0 - contamination)
                )
                assert learned.criterion == "quantile"
                assert learned.objective == contamination

    def test_streaming_updates_match_trailing_window_quantile(self):
        rng = np.random.default_rng(1)
        scores = rng.standard_normal(300)
        tracker = StreamingQuantileThreshold(0.1, capacity=64)
        for start in range(0, 300, 10):
            tracker.update(scores[start : start + 10])
        # Quantile is order-independent: compare against the last 64.
        assert tracker.value == float(np.quantile(scores[-64:], 0.9))
        assert tracker.n_seen == 300 and tracker.size == 64

    def test_update_larger_than_capacity_keeps_tail(self):
        tracker = StreamingQuantileThreshold(0.25, capacity=4)
        tracker.update(np.arange(10.0))
        assert tracker.size == 4
        assert tracker.value == float(np.quantile(np.arange(6.0, 10.0), 0.75))

    def test_not_ready_until_two_scores(self):
        tracker = StreamingQuantileThreshold(0.1, capacity=8)
        assert tracker.update(np.array([1.0])) is None
        assert not tracker.ready
        with pytest.raises(ValidationError):
            tracker.value
        assert tracker.update(np.array([2.0])) is not None
        assert tracker.ready

    def test_reset_forgets_scores(self):
        tracker = StreamingQuantileThreshold(0.1, capacity=8)
        tracker.update(np.arange(8.0))
        tracker.reset()
        assert not tracker.ready and tracker.n_seen == 0

    def test_adapts_to_distribution_shift(self):
        rng = np.random.default_rng(2)
        tracker = StreamingQuantileThreshold(0.05, capacity=128)
        tracker.update(rng.standard_normal(128))
        before = tracker.value
        tracker.update(rng.standard_normal(128) + 10.0)
        assert tracker.value > before + 5.0

    def test_contamination_validated(self):
        with pytest.raises(ValidationError):
            StreamingQuantileThreshold(0.0)
        with pytest.raises(ValidationError):
            StreamingQuantileThreshold(0.5)
        with pytest.raises(ValidationError):
            StreamingQuantileThreshold(0.1, capacity=1)


class TestP2Quantile:
    def test_exact_until_five_observations(self):
        tracker = P2Quantile(0.9)
        seen = []
        rng = np.random.default_rng(3)
        for x in rng.standard_normal(4):
            seen.append(x)
            tracker.update(np.array([x]))
            assert tracker.value == pytest.approx(
                float(np.quantile(np.sort(seen), 0.9))
            )

    @pytest.mark.parametrize("q", [0.1, 0.5, 0.9, 0.95])
    def test_converges_on_gaussian_stream(self, q):
        rng = np.random.default_rng(4)
        sample = rng.standard_normal(20_000)
        tracker = P2Quantile(q)
        tracker.update(sample)
        assert tracker.value == pytest.approx(
            float(np.quantile(sample, q)), abs=0.08
        )

    def test_handles_new_extremes(self):
        tracker = P2Quantile(0.5)
        tracker.update(np.arange(10.0))
        tracker.update(np.array([-100.0, 100.0]))
        assert -100.0 <= tracker.value <= 100.0

    def test_validation_and_empty_state(self):
        with pytest.raises(ValidationError):
            P2Quantile(1.0)
        with pytest.raises(ValidationError):
            P2Quantile(0.5).value


class TestP2QuantileThreshold:
    def test_tracks_quantile_with_constant_memory(self):
        rng = np.random.default_rng(5)
        tracker = P2QuantileThreshold(0.05)
        for _ in range(50):
            tracker.update(rng.standard_normal(100))
        assert tracker.value == pytest.approx(
            float(np.quantile(rng.standard_normal(100_000), 0.95)), abs=0.1
        )
        learned = tracker.learned()
        assert learned.criterion == "quantile-p2"

    def test_reset(self):
        tracker = P2QuantileThreshold(0.1)
        tracker.update(np.arange(10.0))
        tracker.reset()
        assert not tracker.ready


class TestMakeThreshold:
    def test_builds_both_flavours(self):
        assert isinstance(make_threshold(0.1, "window", 32), StreamingQuantileThreshold)
        assert isinstance(make_threshold(0.1, "p2"), P2QuantileThreshold)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValidationError, match="window"):
            make_threshold(0.1, "exact")
