"""Unit tests for the functional-data containers."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.fda.basis import BSplineBasis
from repro.fda.fdata import (
    BasisFData,
    FDataGrid,
    IrregularFData,
    MFDataGrid,
    MultivariateBasisFData,
)


class TestFDataGrid:
    def test_basic_properties(self, unit_grid):
        data = FDataGrid(np.zeros((5, 85)), unit_grid)
        assert data.n_samples == 5
        assert data.n_points == 85
        assert data.domain == (0.0, 1.0)
        assert len(data) == 5

    def test_single_curve_promoted(self, unit_grid):
        data = FDataGrid(np.zeros(85), unit_grid)
        assert data.n_samples == 1

    def test_shape_mismatch(self, unit_grid):
        with pytest.raises(ValidationError):
            FDataGrid(np.zeros((5, 10)), unit_grid)

    def test_indexing_returns_fdatagrid(self, sine_curves):
        sub = sine_curves[2:5]
        assert isinstance(sub, FDataGrid)
        assert sub.n_samples == 3

    def test_single_index(self, sine_curves):
        sub = sine_curves[0]
        assert sub.n_samples == 1

    def test_integrate(self):
        grid = np.linspace(0, 1, 101)
        data = FDataGrid(np.vstack([np.ones(101), grid]), grid)
        np.testing.assert_allclose(data.integrate(), [1.0, 0.5], atol=1e-6)

    def test_to_multivariate(self, sine_curves):
        mfd = sine_curves.to_multivariate()
        assert mfd.n_parameters == 1
        np.testing.assert_array_equal(mfd.values[:, :, 0], sine_curves.values)

    def test_rejects_nan(self, unit_grid):
        values = np.zeros((2, 85))
        values[0, 0] = np.nan
        with pytest.raises(ValidationError):
            FDataGrid(values, unit_grid)


class TestMFDataGrid:
    def test_properties(self, circle_mfd):
        assert circle_mfd.n_parameters == 2
        assert circle_mfd.n_samples == 15

    def test_parameter_extraction(self, circle_mfd):
        param = circle_mfd.parameter(1)
        assert isinstance(param, FDataGrid)
        np.testing.assert_array_equal(param.values, circle_mfd.values[:, :, 1])

    def test_parameter_out_of_range(self, circle_mfd):
        with pytest.raises(ValidationError):
            circle_mfd.parameter(2)

    def test_indexing(self, circle_mfd):
        sub = circle_mfd[:4]
        assert sub.n_samples == 4
        single = circle_mfd[0]
        assert single.n_samples == 1

    def test_concat_parameters(self, circle_mfd):
        combined = circle_mfd.concat_parameters(circle_mfd)
        assert combined.n_parameters == 4

    def test_concat_mismatched(self, circle_mfd):
        other = MFDataGrid(circle_mfd.values[:4], circle_mfd.grid)
        with pytest.raises(ValidationError):
            circle_mfd.concat_parameters(other)

    def test_requires_3d(self, unit_grid):
        with pytest.raises(ValidationError):
            MFDataGrid(np.zeros((5, 85)), unit_grid)


class TestIrregularFData:
    def test_construction(self):
        data = IrregularFData(
            [np.array([0.0, 0.5, 1.0]), np.array([0.0, 1.0])],
            [np.array([1.0, 2.0, 3.0]), np.array([4.0, 5.0])],
        )
        assert data.n_samples == 2
        assert data.domain == (0.0, 1.0)

    def test_length_mismatch(self):
        with pytest.raises(ValidationError):
            IrregularFData([np.array([0.0, 1.0])], [])

    def test_value_shape_mismatch(self):
        with pytest.raises(ValidationError):
            IrregularFData([np.array([0.0, 1.0])], [np.array([1.0, 2.0, 3.0])])

    def test_from_grid(self, sine_curves):
        irregular = IrregularFData.from_grid(sine_curves)
        assert irregular.n_samples == sine_curves.n_samples
        np.testing.assert_array_equal(irregular.values[0], sine_curves.values[0])


class TestBasisFData:
    def test_evaluate_shapes(self, unit_grid):
        basis = BSplineBasis((0.0, 1.0), n_basis=6)
        fdata = BasisFData(basis, np.random.default_rng(0).standard_normal((4, 6)))
        out = fdata.evaluate(unit_grid)
        assert out.shape == (4, 85)

    def test_coefficient_mismatch(self):
        basis = BSplineBasis((0.0, 1.0), n_basis=6)
        with pytest.raises(ValidationError):
            BasisFData(basis, np.zeros((3, 5)))

    def test_1d_coefficients_promoted(self):
        basis = BSplineBasis((0.0, 1.0), n_basis=6)
        fdata = BasisFData(basis, np.zeros(6))
        assert fdata.n_samples == 1

    def test_to_grid_roundtrip(self, unit_grid):
        basis = BSplineBasis((0.0, 1.0), n_basis=6)
        coeffs = np.random.default_rng(1).standard_normal((2, 6))
        fdata = BasisFData(basis, coeffs)
        grid_data = fdata.to_grid(unit_grid)
        assert isinstance(grid_data, FDataGrid)
        np.testing.assert_allclose(grid_data.values, fdata.evaluate(unit_grid))

    def test_derivative_linear_combination(self, unit_grid):
        """Eq. 2: D^q x~ equals the coefficient combination of D^q phi."""
        basis = BSplineBasis((0.0, 1.0), n_basis=7)
        coeffs = np.random.default_rng(2).standard_normal((1, 7))
        fdata = BasisFData(basis, coeffs)
        manual = coeffs @ basis.evaluate(unit_grid, derivative=2).T
        np.testing.assert_allclose(fdata.evaluate(unit_grid, derivative=2), manual)


class TestMultivariateBasisFData:
    def _make(self, n_samples=3, sizes=(5, 7)):
        comps = []
        rng = np.random.default_rng(0)
        for size in sizes:
            basis = BSplineBasis((0.0, 1.0), n_basis=size)
            comps.append(BasisFData(basis, rng.standard_normal((n_samples, size))))
        return MultivariateBasisFData(comps)

    def test_properties(self):
        mfd = self._make()
        assert mfd.n_parameters == 2
        assert mfd.n_samples == 3
        assert mfd.domain == (0.0, 1.0)

    def test_evaluate_stacks_parameters(self, unit_grid):
        mfd = self._make()
        out = mfd.evaluate(unit_grid)
        assert out.shape == (3, 85, 2)

    def test_sample_count_mismatch(self):
        basis = BSplineBasis((0.0, 1.0), n_basis=5)
        a = BasisFData(basis, np.zeros((2, 5)))
        b = BasisFData(basis, np.zeros((3, 5)))
        with pytest.raises(ValidationError):
            MultivariateBasisFData([a, b])

    def test_domain_mismatch(self):
        a = BasisFData(BSplineBasis((0.0, 1.0), n_basis=5), np.zeros((2, 5)))
        b = BasisFData(BSplineBasis((0.0, 2.0), n_basis=5), np.zeros((2, 5)))
        with pytest.raises(ValidationError):
            MultivariateBasisFData([a, b])

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            MultivariateBasisFData([])

    def test_to_grid(self, unit_grid):
        mfd = self._make()
        grid_data = mfd.to_grid(unit_grid)
        assert isinstance(grid_data, MFDataGrid)
        assert grid_data.n_parameters == 2
