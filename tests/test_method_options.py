"""Tests for the less-travelled method-configuration paths."""

import numpy as np
import pytest

from repro.core.methods import MappedDetectorMethod, make_method
from repro.data import make_taxonomy_dataset
from repro.evaluation.metrics import roc_auc
from repro.geometry.mappings import CompositeMapping, CurvatureMapping, SpeedMapping


@pytest.fixture(scope="module")
def small_mfd():
    return make_taxonomy_dataset("correlation", n_inliers=30, n_outliers=5, random_state=2)


class TestFeatureOptions:
    def test_transform_none(self, small_mfd):
        data, labels = small_mfd
        method = MappedDetectorMethod("iforest", n_basis=12, feature_transform=None)
        state = method.prepare(data, random_state=0)
        # Without log1p the features are the raw mapped values.
        from repro.core.pipeline import GeometricOutlierPipeline
        from repro.detectors import IsolationForest

        pipe = GeometricOutlierPipeline(IsolationForest(random_state=0), n_basis=12)
        pipe.fit(data)
        np.testing.assert_allclose(state["features"], pipe.transform(data), atol=1e-9)

    def test_standardize_off(self, small_mfd):
        data, labels = small_mfd
        method = MappedDetectorMethod("iforest", n_basis=12, standardize=False)
        idx = np.arange(data.n_samples)
        scores = method.score_dataset(data, idx, idx, random_state=0)
        # iForest is scale-equivariant per feature, so this still works.
        assert roc_auc(scores, labels) > 0.8

    def test_log1p_preserves_sign(self, small_mfd):
        data, _ = small_mfd
        method = MappedDetectorMethod(
            "iforest", mapping=SpeedMapping(), n_basis=12
        )
        state = method.prepare(data, random_state=0)
        assert (state["features"] >= 0).all()  # speed is non-negative

    def test_composite_mapping_through_method(self, small_mfd):
        data, labels = small_mfd
        mapping = CompositeMapping([CurvatureMapping(), SpeedMapping()])
        method = MappedDetectorMethod("iforest", mapping=mapping, n_basis=12)
        state = method.prepare(data, random_state=0)
        assert state["features"].shape[1] == 2 * data.n_points
        idx = np.arange(data.n_samples)
        scores = method.fit_score(state, idx, idx, random_state=0)
        assert roc_auc(scores, labels) > 0.8

    def test_ocsvm_without_tuning(self, small_mfd):
        data, labels = small_mfd
        method = MappedDetectorMethod("ocsvm", n_basis=12, tune=False, nu=0.15)
        idx = np.arange(data.n_samples)
        scores = method.score_dataset(data, idx, idx, random_state=0)
        assert scores.shape == (data.n_samples,)


class TestMakeMethodKwargs:
    def test_kwargs_forwarded(self):
        method = make_method("iforest", n_estimators=50)
        assert method.detector_kwargs["n_estimators"] == 50

    def test_custom_name(self):
        method = make_method("ocsvm", name="my-ocsvm")
        assert method.name == "my-ocsvm"


class TestDeterminism:
    def test_same_seed_same_scores(self, small_mfd):
        data, _ = small_mfd
        idx = np.arange(data.n_samples)

        def run():
            method = MappedDetectorMethod("iforest", n_basis=12)
            return method.score_dataset(data, idx, idx, random_state=123)

        np.testing.assert_array_equal(run(), run())

    def test_different_seed_different_forest(self, small_mfd):
        data, _ = small_mfd
        idx = np.arange(data.n_samples)
        method = MappedDetectorMethod("iforest", n_basis=12)
        s1 = method.score_dataset(data, idx, idx, random_state=1)
        s2 = method.score_dataset(data, idx, idx, random_state=2)
        assert not np.array_equal(s1, s2)
