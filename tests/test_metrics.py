"""Unit tests for ROC/AUC and ranking metrics."""

import numpy as np
import pytest

from repro.evaluation.metrics import (
    average_precision,
    f1_at_threshold,
    precision_at_k,
    roc_auc,
    roc_curve,
)
from repro.exceptions import ValidationError


class TestRocCurve:
    def test_perfect_ranking(self):
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        labels = np.array([0, 0, 1, 1])
        fpr, tpr, thresholds = roc_curve(scores, labels)
        assert fpr[0] == 0.0 and tpr[0] == 0.0
        assert fpr[-1] == 1.0 and tpr[-1] == 1.0
        # TPR reaches 1 before FPR leaves 0.
        assert tpr[np.argmax(fpr > 0)] == 1.0

    def test_thresholds_decreasing(self, rng):
        scores = rng.standard_normal(50)
        labels = (rng.uniform(size=50) < 0.3).astype(int)
        if labels.sum() in (0, 50):
            labels[0] = 1 - labels[0]
        _, _, thresholds = roc_curve(scores, labels)
        assert (np.diff(thresholds) <= 0).all()

    def test_monotone_curve(self, rng):
        scores = rng.standard_normal(100)
        labels = np.r_[np.zeros(80, int), np.ones(20, int)]
        fpr, tpr, _ = roc_curve(scores, labels)
        assert (np.diff(fpr) >= 0).all()
        assert (np.diff(tpr) >= 0).all()


class TestRocAuc:
    def test_perfect(self):
        assert roc_auc([0.1, 0.2, 0.9], [0, 0, 1]) == 1.0

    def test_inverted(self):
        assert roc_auc([0.9, 0.8, 0.1], [0, 0, 1]) == 0.0

    def test_random_half(self, rng):
        scores = rng.uniform(size=10000)
        labels = (rng.uniform(size=10000) < 0.5).astype(int)
        assert roc_auc(scores, labels) == pytest.approx(0.5, abs=0.03)

    def test_ties_midrank(self):
        # All scores equal -> AUC exactly 0.5 by midrank convention.
        assert roc_auc([1.0, 1.0, 1.0, 1.0], [0, 1, 0, 1]) == 0.5

    def test_matches_trapezoid_integration(self, rng):
        scores = rng.standard_normal(200)
        labels = (rng.uniform(size=200) < 0.25).astype(int)
        labels[0] = 1
        labels[1] = 0
        fpr, tpr, _ = roc_curve(scores, labels)
        trapezoid = np.trapezoid(tpr, fpr)
        assert roc_auc(scores, labels) == pytest.approx(trapezoid, abs=1e-10)

    def test_invariant_to_monotone_transform(self, rng):
        scores = rng.uniform(1, 2, size=100)
        labels = (rng.uniform(size=100) < 0.3).astype(int)
        labels[:2] = [0, 1]
        a1 = roc_auc(scores, labels)
        a2 = roc_auc(np.log(scores), labels)
        assert a1 == pytest.approx(a2, abs=1e-12)

    def test_single_class_rejected(self):
        with pytest.raises(ValidationError):
            roc_auc([0.1, 0.2], [1, 1])

    def test_nonbinary_rejected(self):
        with pytest.raises(ValidationError):
            roc_auc([0.1, 0.2], [0, 2])

    def test_length_mismatch(self):
        with pytest.raises(ValidationError):
            roc_auc([0.1], [0, 1])


class TestAveragePrecision:
    def test_perfect(self):
        assert average_precision([0.1, 0.9, 0.8], [0, 1, 1]) == 1.0

    def test_worst_case(self):
        # Outlier ranked last among 3: AP = 1/3.
        assert average_precision([0.9, 0.8, 0.1], [0, 0, 1]) == pytest.approx(1 / 3)

    def test_between_zero_one(self, rng):
        scores = rng.uniform(size=50)
        labels = (rng.uniform(size=50) < 0.2).astype(int)
        labels[:2] = [0, 1]
        ap = average_precision(scores, labels)
        assert 0.0 < ap <= 1.0


class TestPrecisionAtK:
    def test_exact(self):
        scores = [0.9, 0.8, 0.7, 0.1]
        labels = [1, 0, 1, 0]
        assert precision_at_k(scores, labels, 1) == 1.0
        assert precision_at_k(scores, labels, 2) == 0.5
        assert precision_at_k(scores, labels, 4) == 0.5

    def test_k_too_large(self):
        with pytest.raises(ValidationError):
            precision_at_k([0.1, 0.9], [0, 1], 3)


class TestF1AtThreshold:
    def test_perfect_split(self):
        assert f1_at_threshold([0.1, 0.2, 0.9, 0.8], [0, 0, 1, 1], 0.5) == 1.0

    def test_no_predictions(self):
        assert f1_at_threshold([0.1, 0.2], [0, 1], 0.5) == 0.0

    def test_partial(self):
        # threshold 0.5: predict [F, T, T]; tp=1, fp=1, fn=1 -> F1 = 0.5
        assert f1_at_threshold([0.4, 0.6, 0.7], [1, 0, 1], 0.5) == pytest.approx(0.5)
