"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.ecg import make_ecg_dataset
from repro.data.synthetic import make_taxonomy_dataset
from repro.fda.fdata import FDataGrid, MFDataGrid


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def unit_grid():
    return np.linspace(0.0, 1.0, 85)


@pytest.fixture
def sine_curves(unit_grid, rng):
    """20 noisy sine curves on a common grid (UFD)."""
    true = np.sin(2 * np.pi * unit_grid)
    values = true[None, :] + 0.05 * rng.standard_normal((20, unit_grid.shape[0]))
    return FDataGrid(values, unit_grid)


@pytest.fixture
def circle_mfd(rng):
    """15 noisy circles of radius 2 in R^2 (MFD) — curvature 1/2."""
    grid = np.linspace(0.0, 2.0 * np.pi, 101)
    x = 2.0 * np.cos(grid)[None, :] + 0.01 * rng.standard_normal((15, 101))
    y = 2.0 * np.sin(grid)[None, :] + 0.01 * rng.standard_normal((15, 101))
    return MFDataGrid(np.stack([x, y], axis=2), grid)


@pytest.fixture
def gaussian_cloud(rng):
    """2-D standard-normal cloud with a handful of far outliers."""
    inliers = rng.standard_normal((150, 2))
    outliers = rng.uniform(4.0, 6.0, size=(8, 2)) * rng.choice([-1.0, 1.0], size=(8, 2))
    X = np.vstack([inliers, outliers])
    y = np.concatenate([np.zeros(150, dtype=int), np.ones(8, dtype=int)])
    return X, y


@pytest.fixture(scope="session")
def small_ecg():
    """A small ECG substitute data set shared by integration-style tests."""
    data, labels, tags = make_ecg_dataset(n_normal=40, n_abnormal=20, random_state=3)
    return data, labels, tags


@pytest.fixture(scope="session")
def correlation_mfd():
    """Synthetic MFD whose outliers break cross-parameter correlation."""
    data, labels = make_taxonomy_dataset(
        "correlation", n_inliers=40, n_outliers=6, random_state=11
    )
    return data, labels
