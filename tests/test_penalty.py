"""Unit tests for roughness penalty matrices (paper Eq. 3's R matrix)."""

import numpy as np
import pytest

from repro.exceptions import BasisError
from repro.fda.basis import BSplineBasis, FourierBasis, MonomialBasis
from repro.fda.penalty import gram_matrix, penalty_matrix


class TestPenaltyMatrix:
    def test_symmetric_psd(self):
        basis = BSplineBasis((0.0, 1.0), n_basis=10)
        R = penalty_matrix(basis, derivative=2)
        np.testing.assert_allclose(R, R.T, atol=1e-12)
        eigenvalues = np.linalg.eigvalsh(R)
        assert eigenvalues.min() > -1e-8

    def test_nullspace_dimension(self):
        """The q = 2 penalty annihilates exactly the linear functions:
        nullspace dimension 2 for a cubic spline basis."""
        basis = BSplineBasis((0.0, 1.0), n_basis=8)
        R = penalty_matrix(basis, derivative=2)
        eigenvalues = np.sort(np.linalg.eigvalsh(R))
        scale = eigenvalues[-1]
        assert (np.abs(eigenvalues[:2]) < 1e-8 * scale).all()
        assert eigenvalues[2] > 1e-6 * scale

    def test_monomial_closed_form(self):
        """For monomials 1, s, s^2 on [-1, 1]: D^2 -> (0, 0, 2), so
        R = [[0,0,0],[0,0,0],[0,0,8]] (integral of 2*2 over length 2)."""
        basis = MonomialBasis((-1.0, 1.0), n_basis=3)
        R = penalty_matrix(basis, derivative=2)
        expected = np.zeros((3, 3))
        expected[2, 2] = 8.0
        np.testing.assert_allclose(R, expected, atol=1e-10)

    def test_fourier_diagonal(self):
        """Fourier D^q penalties are diagonal: derivative of a harmonic
        stays in the same frequency pair."""
        basis = FourierBasis((0.0, 1.0), n_basis=5)
        R = penalty_matrix(basis, derivative=2, n_nodes=64)
        off_diag = R - np.diag(np.diag(R))
        np.testing.assert_allclose(off_diag, 0.0, atol=1e-6)

    def test_derivative_beyond_max_rejected(self):
        basis = BSplineBasis((0.0, 1.0), n_basis=5, order=3)
        with pytest.raises(BasisError):
            penalty_matrix(basis, derivative=5)

    def test_q0_equals_gram(self):
        basis = BSplineBasis((0.0, 1.0), n_basis=6)
        np.testing.assert_allclose(
            penalty_matrix(basis, derivative=0), gram_matrix(basis), atol=1e-12
        )


class TestGramMatrix:
    def test_bspline_rows_integrate_to_knot_spans(self):
        """Row sums of the Gram matrix equal the integrals of each basis
        function (partition of unity integrates to the domain length)."""
        basis = BSplineBasis((0.0, 2.0), n_basis=7)
        gram = gram_matrix(basis)
        assert gram.sum() == pytest.approx(2.0, abs=1e-10)

    def test_positive_definite(self):
        basis = BSplineBasis((0.0, 1.0), n_basis=8)
        eigenvalues = np.linalg.eigvalsh(gram_matrix(basis))
        assert eigenvalues.min() > 0
