"""Unit tests for monomial and Legendre bases."""

import numpy as np
import pytest

from repro.fda.basis.polynomial import LegendreBasis, MonomialBasis
from repro.fda.penalty import gram_matrix


class TestMonomialBasis:
    def test_values_centred(self):
        basis = MonomialBasis((0.0, 2.0), n_basis=3)
        design = basis.evaluate(np.array([1.0]))  # center -> s = 0
        np.testing.assert_allclose(design, [[1.0, 0.0, 0.0]])

    def test_first_derivative(self):
        basis = MonomialBasis((-1.0, 1.0), n_basis=4)
        t = np.linspace(-1, 1, 21)
        d1 = basis.evaluate(t, derivative=1)
        np.testing.assert_allclose(d1[:, 0], 0.0)
        np.testing.assert_allclose(d1[:, 1], 1.0)
        np.testing.assert_allclose(d1[:, 2], 2 * t)
        np.testing.assert_allclose(d1[:, 3], 3 * t**2)

    def test_second_derivative_factorials(self):
        basis = MonomialBasis((-1.0, 1.0), n_basis=4)
        d2 = basis.evaluate(np.array([0.0]), derivative=2)
        # D^2 of 1, s, s^2, s^3 at s=0 -> 0, 0, 2, 0
        np.testing.assert_allclose(d2, [[0.0, 0.0, 2.0, 0.0]])

    def test_exact_parabola_representation(self):
        """A parabola is exactly representable: coefficients recover it."""
        basis = MonomialBasis((0.0, 1.0), n_basis=3)
        t = np.linspace(0, 1, 9)
        # f(t) = (t - c)^2 with c the basis center -> coeffs (0, 0, 1)
        design = basis.evaluate(t)
        f = (t - basis.center) ** 2
        coeffs, *_ = np.linalg.lstsq(design, f, rcond=None)
        np.testing.assert_allclose(coeffs, [0.0, 0.0, 1.0], atol=1e-10)


class TestLegendreBasis:
    def test_orthogonal(self):
        basis = LegendreBasis((0.0, 1.0), n_basis=5)
        gram = gram_matrix(basis, n_nodes=32)
        off_diag = gram - np.diag(np.diag(gram))
        np.testing.assert_allclose(off_diag, 0.0, atol=1e-12)

    def test_degree_zero_constant(self):
        basis = LegendreBasis((0.0, 1.0), n_basis=3)
        design = basis.evaluate(np.linspace(0, 1, 7))
        np.testing.assert_allclose(design[:, 0], 1.0)

    def test_derivative_chain_rule(self):
        """P_1 mapped to [0, 2] is t - 1; derivative must be 1 (not 2/(b-a))."""
        basis = LegendreBasis((0.0, 2.0), n_basis=2)
        d1 = basis.evaluate(np.array([0.5, 1.5]), derivative=1)
        np.testing.assert_allclose(d1[:, 1], 1.0)

    def test_values_match_numpy(self):
        basis = LegendreBasis((-1.0, 1.0), n_basis=4)
        t = np.linspace(-1, 1, 31)
        design = basis.evaluate(t)
        np.testing.assert_allclose(design[:, 2], 0.5 * (3 * t**2 - 1), atol=1e-12)
        np.testing.assert_allclose(design[:, 3], 0.5 * (5 * t**3 - 3 * t), atol=1e-12)
