"""Unit tests for unsupervised hyper-parameter tuning."""

import numpy as np
import pytest

from repro.detectors.knn import KNNDetector
from repro.evaluation.tuning import TuningResult, grid_search, tune_nu
from repro.exceptions import ValidationError


class TestTuneNu:
    def test_returns_candidate(self, rng):
        X = rng.standard_normal((80, 3))
        result = tune_nu(X, candidates=(0.05, 0.1, 0.2), random_state=0)
        assert result.best in (0.05, 0.1, 0.2)
        assert set(result.scores) == {0.05, 0.1, 0.2}

    def test_scores_are_gaps(self, rng):
        X = rng.standard_normal((60, 2))
        result = tune_nu(X, candidates=(0.1,), random_state=0)
        assert 0.0 <= result.scores[0.1] <= 1.0

    def test_reproducible(self, rng):
        X = rng.standard_normal((60, 2))
        r1 = tune_nu(X, candidates=(0.05, 0.2), random_state=5)
        r2 = tune_nu(X, candidates=(0.05, 0.2), random_state=5)
        assert r1.best == r2.best
        assert r1.scores == r2.scores

    def test_empty_candidates(self, rng):
        with pytest.raises(ValidationError):
            tune_nu(rng.standard_normal((20, 2)), candidates=())

    def test_result_requires_scores(self):
        with pytest.raises(ValidationError):
            TuningResult(best=0.1, scores={})


class TestGridSearch:
    def test_finds_best_by_criterion(self, rng):
        X = rng.standard_normal((60, 2))

        def criterion(detector, X_train, X_valid):
            # Prefer smaller mean validation score (denser fit).
            return float(np.mean(detector.score_samples(X_valid)))

        result = grid_search(
            X,
            lambda n_neighbors: KNNDetector(n_neighbors=n_neighbors),
            {"n_neighbors": [1, 5, 15]},
            criterion,
            random_state=0,
        )
        assert result.best["n_neighbors"] in (1, 5, 15)
        assert len(result.scores) == 3

    def test_cartesian_product(self, rng):
        X = rng.standard_normal((40, 2))

        result = grid_search(
            X,
            lambda n_neighbors, aggregation: KNNDetector(n_neighbors, aggregation),
            {"n_neighbors": [2, 4], "aggregation": ["kth", "mean"]},
            lambda det, tr, va: 0.0,
            random_state=0,
        )
        assert len(result.scores) == 4

    def test_empty_grid(self, rng):
        with pytest.raises(ValidationError):
            grid_search(
                rng.standard_normal((20, 2)),
                lambda: None,
                {},
                lambda det, tr, va: 0.0,
            )
