"""Unit tests for pointwise multivariate depth functions."""

import numpy as np
import pytest

from repro.depth.multivariate import (
    halfspace_depth,
    mahalanobis_depth,
    projection_depth,
    simplicial_depth,
    spatial_depth,
    stahel_donoho_outlyingness,
)
from repro.exceptions import ValidationError


@pytest.fixture
def cloud(rng):
    return rng.standard_normal((200, 2))


def _center_ranks_higher(depth_fn, cloud, **kwargs):
    center = np.zeros((1, cloud.shape[1]))
    far = np.full((1, cloud.shape[1]), 5.0)
    d = depth_fn(np.vstack([center, far]), cloud, **kwargs)
    return d[0], d[1]


class TestMahalanobisDepth:
    def test_center_deeper_than_tail(self, cloud):
        d_center, d_far = _center_ranks_higher(mahalanobis_depth, cloud)
        assert d_center > d_far

    def test_range(self, cloud):
        d = mahalanobis_depth(cloud, cloud)
        assert (d > 0).all() and (d <= 1).all()

    def test_affine_invariance(self, cloud, rng):
        """Mahalanobis depth is exactly affine invariant."""
        A = rng.standard_normal((2, 2)) + 2 * np.eye(2)
        b = rng.standard_normal(2)
        pts = rng.standard_normal((10, 2))
        d1 = mahalanobis_depth(pts, cloud)
        d2 = mahalanobis_depth(pts @ A.T + b, cloud @ A.T + b)
        np.testing.assert_allclose(d1, d2, atol=1e-8)

    def test_dimension_mismatch(self, cloud):
        with pytest.raises(ValidationError):
            mahalanobis_depth(np.zeros((1, 3)), cloud)


class TestStahelDonoho:
    def test_exact_univariate(self):
        ref = np.arange(1.0, 12.0)[:, None]  # median 6, MAD = 3*1.4826
        out = stahel_donoho_outlyingness(np.array([[6.0], [12.0]]), ref)
        assert out[0] == pytest.approx(0.0)
        assert out[1] == pytest.approx(6.0 / (3 * 1.4826), rel=1e-6)

    def test_monotone_along_ray(self, cloud):
        pts = np.array([[0.0, 0.0], [1.0, 1.0], [3.0, 3.0], [6.0, 6.0]])
        out = stahel_donoho_outlyingness(pts, cloud, random_state=0)
        assert (np.diff(out) > 0).all()

    def test_degenerate_direction_guarded(self):
        """A reference cloud constant in one coordinate must not divide
        by a zero MAD."""
        ref = np.column_stack([np.arange(20.0), np.zeros(20)])
        out = stahel_donoho_outlyingness(np.array([[0.0, 5.0]]), ref, random_state=0)
        assert np.isfinite(out).all()


class TestProjectionDepth:
    def test_reciprocal_relation(self, cloud):
        pts = cloud[:5]
        sdo = stahel_donoho_outlyingness(pts, cloud, random_state=1)
        pd = projection_depth(pts, cloud, random_state=1)
        np.testing.assert_allclose(pd, 1.0 / (1.0 + sdo))

    def test_center_deeper(self, cloud):
        d_center, d_far = _center_ranks_higher(projection_depth, cloud, random_state=0)
        assert d_center > d_far


class TestHalfspaceDepth:
    def test_univariate_exact(self):
        ref = np.arange(10.0)[:, None]
        d = halfspace_depth(np.array([[0.0], [4.5], [9.0]]), ref)
        assert d[0] == pytest.approx(0.1)
        assert d[1] == pytest.approx(0.5)
        assert d[2] == pytest.approx(0.1)

    def test_max_half(self, cloud):
        d = halfspace_depth(cloud, cloud, random_state=0)
        assert d.max() <= 0.5 + 1e-12

    def test_far_point_depth_zero(self, cloud):
        d = halfspace_depth(np.array([[50.0, 50.0]]), cloud, random_state=0)
        assert d[0] == pytest.approx(0.0)

    def test_center_deeper(self, cloud):
        d_center, d_far = _center_ranks_higher(halfspace_depth, cloud, random_state=0)
        assert d_center > d_far


class TestSpatialDepth:
    def test_center_near_one(self, cloud):
        d = spatial_depth(np.zeros((1, 2)), cloud)
        assert d[0] > 0.9

    def test_far_point_near_zero(self, cloud):
        d = spatial_depth(np.array([[100.0, 0.0]]), cloud)
        assert d[0] < 0.05

    def test_point_in_reference_handled(self, cloud):
        d = spatial_depth(cloud[:3], cloud)
        assert np.isfinite(d).all()


class TestSimplicialDepth:
    def test_center_of_triangle(self):
        ref = np.array([[0.0, 0.0], [1.0, 0.0], [0.5, 1.0], [0.5, 0.4]])
        d = simplicial_depth(np.array([[0.5, 0.3]]), ref)
        assert d[0] > 0.4

    def test_outside_point_zero(self):
        ref = np.array([[0.0, 0.0], [1.0, 0.0], [0.5, 1.0]])
        d = simplicial_depth(np.array([[5.0, 5.0]]), ref)
        assert d[0] == 0.0

    def test_p2_only(self, rng):
        with pytest.raises(ValidationError):
            simplicial_depth(np.zeros((1, 3)), rng.standard_normal((10, 3)))

    def test_needs_three_points(self):
        with pytest.raises(ValidationError):
            simplicial_depth(np.zeros((1, 2)), np.zeros((2, 2)))
