"""Unit tests for the magnitude-shape plot analysis."""

import numpy as np
import pytest

from repro.depth.msplot import ms_plot
from repro.exceptions import ValidationError
from repro.fda.fdata import FDataGrid


@pytest.fixture
def mixed_population(rng):
    """Inliers + one magnitude outlier + one shape outlier."""
    grid = np.linspace(0, 1, 50)
    base = np.sin(2 * np.pi * grid)
    values = base[None, :] + 0.1 * rng.standard_normal((30, 50))
    values[28] = base + 3.0                       # magnitude
    values[29] = np.sin(6 * np.pi * grid)         # shape
    return FDataGrid(values, grid)


class TestMsPlot:
    def test_flags_both_outliers(self, mixed_population):
        result = ms_plot(mixed_population, random_state=0)
        assert result.outlier_mask[28]
        assert result.outlier_mask[29]

    def test_type_labels(self, mixed_population):
        result = ms_plot(mixed_population, random_state=0)
        assert result.types[28] in ("magnitude", "mixed")
        assert result.types[29] in ("shape", "mixed")
        # The pure magnitude shift loads on |MO|; the frequency outlier on VO.
        assert result.magnitude[28] > result.magnitude[29]
        assert result.shape[29] > result.shape[28]

    def test_inliers_mostly_unflagged(self, mixed_population):
        result = ms_plot(mixed_population, random_state=0)
        assert result.outlier_mask[:28].sum() <= 3
        assert all(t == "inlier" for i, t in enumerate(result.types[:28])
                   if not result.outlier_mask[i])

    def test_cutoff_respects_alpha(self, mixed_population):
        loose = ms_plot(mixed_population, alpha=0.8, random_state=0)
        strict = ms_plot(mixed_population, alpha=0.999, random_state=0)
        assert strict.cutoff > loose.cutoff
        assert strict.outlier_mask.sum() <= loose.outlier_mask.sum()

    def test_alpha_bounds(self, mixed_population):
        with pytest.raises(ValidationError):
            ms_plot(mixed_population, alpha=1.5)

    def test_too_few_samples(self, rng):
        grid = np.linspace(0, 1, 10)
        data = FDataGrid(rng.standard_normal((3, 10)), grid)
        with pytest.raises(ValidationError):
            ms_plot(data, random_state=0)

    def test_coordinates_match_decomposition(self, mixed_population):
        from repro.depth.dirout import directional_outlyingness

        result = ms_plot(mixed_population, random_state=0)
        decomposition = directional_outlyingness(mixed_population, random_state=0)
        np.testing.assert_allclose(result.magnitude, decomposition.mean_magnitude)
        np.testing.assert_allclose(result.shape, decomposition.variation)
