"""Sharded streaming: N shard states must reproduce the single stream.

The acceptance pins for the sharded tier:

* on :func:`repro.data.make_drifting_stream` with shard-aligned
  geometry (window 84 = 2²·3·7, chunk 21), the sharded detector must
  reproduce the single-stream scores (``rtol=1e-12`` — the only
  difference is floating summation order over shard partials), the
  exact flag sequence, and the exact drift/re-reference chunk indices,
  for every shard count in {1, 2, 3, 7} **through a re-reference
  barrier** (the hard part: all shards must re-anchor on the same
  window or the states diverge silently);
* the serial / thread / process backends are bitwise interchangeable;
* the process backend refuses configurations whose per-arrival state
  cannot be shipped as additive partials;
* the plan layer compiles ``StreamSpec(shards=N)`` into the sharded
  detector and rejects non-mergeable / non-divisible configurations;
* the serving layer streams through a registered sharded detector.
"""

import numpy as np
import pytest

from repro.data import make_drifting_stream
from repro.exceptions import ConfigurationError, ValidationError
from repro.fda.fdata import MFDataGrid
from repro.plan import StreamSpec, compile_plan
from repro.serving import ScoringService
from repro.streaming import (
    DepthRankDrift,
    FederatedDrift,
    FederatedThreshold,
    ShardedStreamingDetector,
    SlidingWindow,
    StreamingDetector,
    make_threshold,
)

RTOL = 1e-12

# 84 = 2^2 * 3 * 7: window, drift buffers and chunk size all divide
# evenly for every tested shard count, and min_gap == chunk_size lands
# both monitors' checks on chunk boundaries (required for the federated
# decision sequence to be identical, not just statistically close).
WINDOW = 84
CHUNK = 21
CONTAMINATION = 0.1
ALPHA = 0.05
SHARD_COUNTS = (1, 2, 3, 7)


def _stream():
    return make_drifting_stream(
        n_chunks=20, chunk_size=CHUNK, n_points=40, drift_at=8, drift_ramp=2,
        drift_phase=1.2, drift_scale=1.8, random_state=3,
    )


def _collect(detector):
    scores, flags, events = [], [], []
    for chunk_idx, (chunk, _) in enumerate(_stream()):
        result = detector.process(chunk)
        if result.scores is not None:
            scores.append(result.scores)
        if result.flags is not None:
            flags.append(result.flags)
        if result.drift is not None:
            events.append(chunk_idx)
    return (
        np.concatenate(scores),
        np.concatenate(flags),
        events,
        detector.n_rereferences,
    )


def _run_single(kind):
    detector = StreamingDetector(
        kind, SlidingWindow(WINDOW), min_reference=2,
        threshold=make_threshold(CONTAMINATION, "window", capacity=WINDOW),
        drift=DepthRankDrift(
            baseline_size=WINDOW, recent_size=WINDOW, alpha=ALPHA,
            patience=1, min_gap=CHUNK,
        ),
        on_drift="rereference",
    )
    return _collect(detector)


def _run_sharded(kind, n_shards, backend="serial"):
    detector = ShardedStreamingDetector(
        kind, shards=n_shards, capacity=WINDOW, min_reference=2,
        threshold=FederatedThreshold(
            CONTAMINATION, n_shards, mode="window", capacity=WINDOW
        ),
        drift=FederatedDrift(
            n_shards, baseline_size=WINDOW, recent_size=WINDOW, alpha=ALPHA,
            patience=1, min_gap=CHUNK,
        ),
        on_drift="rereference", backend=backend,
    )
    try:
        return _collect(detector)
    finally:
        detector.close()


class TestShardedEqualsSingleStream:
    @pytest.mark.parametrize("n_shards", SHARD_COUNTS)
    def test_funta_scores_flags_and_rereference_match(self, n_shards):
        scores, flags, events, rereferences = _run_single("funta")
        assert events, "stream parameters must provoke a drift event"
        assert rereferences >= 1, "re-reference barrier must actually fire"
        sh_scores, sh_flags, sh_events, sh_rereferences = _run_sharded(
            "funta", n_shards
        )
        np.testing.assert_allclose(sh_scores, scores, rtol=RTOL, atol=0.0)
        np.testing.assert_array_equal(sh_flags, flags)
        assert sh_events == events
        assert sh_rereferences == rereferences

    @pytest.mark.parametrize("kind", ["dirout", "halfspace"])
    def test_other_kinds_match_bitwise(self, kind):
        scores, flags, events, rereferences = _run_single(kind)
        sh_scores, sh_flags, sh_events, sh_rereferences = _run_sharded(kind, 3)
        np.testing.assert_array_equal(sh_scores, scores)
        np.testing.assert_array_equal(sh_flags, flags)
        assert sh_events == events
        assert sh_rereferences == rereferences


class TestBackends:
    @pytest.mark.parametrize("kind", ["funta", "halfspace"])
    def test_thread_backend_bitwise_equals_serial(self, kind):
        serial = _run_sharded(kind, 2, backend="serial")
        threaded = _run_sharded(kind, 2, backend="thread")
        np.testing.assert_array_equal(threaded[0], serial[0])
        np.testing.assert_array_equal(threaded[1], serial[1])
        assert threaded[2] == serial[2]

    def test_process_backend_bitwise_equals_serial(self):
        rng = np.random.default_rng(11)
        m, window, chunk = 32, 24, 6
        grid = np.linspace(0.0, 1.0, m)
        prime = MFDataGrid(rng.standard_normal((window, m, 1)), grid)
        batches = [
            MFDataGrid(rng.standard_normal((chunk, m, 1)), grid)
            for _ in range(4)
        ]

        def run(backend):
            detector = ShardedStreamingDetector(
                "funta", shards=2, capacity=window, min_reference=2,
                backend=backend,
            )
            try:
                detector.prime(prime)
                return np.concatenate(
                    [detector.process(b).scores for b in batches]
                )
            finally:
                detector.close()

        np.testing.assert_array_equal(run("process"), run("serial"))

    def test_process_backend_rejects_non_partial_configs(self):
        with pytest.raises(ValidationError, match="process"):
            ShardedStreamingDetector(
                "dirout", shards=2, capacity=16, backend="process"
            )
        with pytest.raises(ValidationError, match="process"):
            ShardedStreamingDetector(
                "funta", shards=2, capacity=16, backend="process", trim=0.1
            )
        with pytest.raises(ValidationError, match="process"):
            ShardedStreamingDetector(
                "funta", shards=2, capacity=16, backend="process",
                incremental=False,
            )


class TestValidation:
    def test_capacity_must_divide_across_shards(self):
        with pytest.raises(ValidationError, match="divide"):
            ShardedStreamingDetector("funta", shards=3, capacity=16)

    def test_federated_state_must_match_shard_count(self):
        with pytest.raises(ValidationError, match="shards"):
            ShardedStreamingDetector(
                "funta", shards=2, capacity=16,
                threshold=FederatedThreshold(0.1, 3, capacity=12),
            )
        with pytest.raises(ValidationError, match="shards"):
            ShardedStreamingDetector(
                "funta", shards=2, capacity=16,
                drift=FederatedDrift(3, baseline_size=24, recent_size=24),
            )


class TestPlanIntegration:
    def test_stream_spec_compiles_to_sharded_detector(self):
        spec = StreamSpec(
            kind="funta", window=WINDOW, shards=2,
            drift_baseline=WINDOW, drift_recent=WINDOW,
        )
        plan = compile_plan(spec)
        detector = plan.build()
        try:
            assert isinstance(detector, ShardedStreamingDetector)
            assert detector.n_shards == 2
            assert isinstance(detector.threshold, FederatedThreshold)
            assert isinstance(detector.drift, FederatedDrift)
            assert plan.describe()["shards"] == 2
        finally:
            detector.close()

    def test_round_trip_keeps_shard_fields(self):
        spec = StreamSpec(
            kind="funta", window=WINDOW, shards=3, shard_backend="serial",
            drift_baseline=WINDOW, drift_recent=WINDOW,
        )
        again = StreamSpec.from_dict(spec.to_dict())
        assert again.shards == 3 and again.shard_backend == "serial"

    def test_sharded_spec_rejects_p2_threshold(self):
        with pytest.raises(ConfigurationError, match="merge"):
            StreamSpec(
                kind="funta", window=WINDOW, shards=2, threshold_mode="p2",
                drift_baseline=WINDOW, drift_recent=WINDOW,
            )

    def test_sharded_spec_rejects_indivisible_window(self):
        with pytest.raises(ConfigurationError, match="divide"):
            StreamSpec(
                kind="funta", window=100, shards=3,
                drift_baseline=84, drift_recent=84,
            )


class TestServingIntegration:
    def test_sharded_detector_streams_through_service(self):
        rng = np.random.default_rng(21)
        m = 32
        grid = np.linspace(0.0, 1.0, m)
        service = ScoringService()
        detector = ShardedStreamingDetector(
            "funta", shards=2, capacity=16, min_reference=4, backend="serial"
        )
        try:
            service.register("sharded", detector)
            data = MFDataGrid(rng.standard_normal((24, m, 1)), grid)
            batches = list(service.stream("sharded", data, chunk_size=8))
            assert len(batches) == 3
            scored = [b for b in batches if b.scores is not None]
            assert scored and all(b.scores.ndim == 1 for b in scored)
            with pytest.raises(ValidationError, match="streaming"):
                service.submit("sharded", data)
        finally:
            detector.close()
