"""Tests for the plan compiler/executor (`repro.plan.compile`)."""

import json

import numpy as np
import pytest

from repro.core.methods import (
    DirOutMethod,
    FuntaMethod,
    MappedDetectorMethod,
)
from repro.core.pipeline import GeometricOutlierPipeline
from repro.data.synthetic import make_taxonomy_dataset
from repro.detectors import IsolationForest
from repro.engine import ExecutionContext
from repro.exceptions import ConfigurationError, NotFittedError
from repro.plan import (
    DetectorSpec,
    MethodSpec,
    PipelineSpec,
    SmootherSpec,
    StreamSpec,
    WorkloadSpec,
    compile_plan,
    pipeline_to_spec,
    plan_for_pipeline,
)
from repro.serving import MANIFEST_NAME, load_pipeline, save_pipeline
from repro.streaming import ReservoirWindow, SlidingWindow, StreamingDetector


@pytest.fixture(scope="module")
def dataset():
    data, labels = make_taxonomy_dataset(
        "correlation", n_inliers=30, n_outliers=4, random_state=3
    )
    return data, labels


PIPELINE_SPEC = PipelineSpec(
    detector=DetectorSpec("iforest", {"n_estimators": 25, "random_state": 0}),
    smoother=SmootherSpec(n_basis=10),
)


class TestPipelinePlan:
    def test_compiled_pipeline_matches_direct_construction(self, dataset):
        data, _ = dataset
        plan = compile_plan(PIPELINE_SPEC)
        plan.fit(data)
        direct = GeometricOutlierPipeline(
            IsolationForest(n_estimators=25, random_state=0), n_basis=10
        ).fit(data)
        np.testing.assert_array_equal(plan.score(data), direct.score_samples(data))

    def test_score_chunks_concatenates_to_batch_scores(self, dataset):
        data, _ = dataset
        plan = compile_plan(PIPELINE_SPEC, WorkloadSpec(mode="stream", chunk_size=7))
        plan.fit(data)
        chunked = np.concatenate(list(plan.score_chunks(data)))
        np.testing.assert_array_equal(chunked, plan.score(data))

    def test_unfitted_plan_refuses_to_score(self, dataset):
        data, _ = dataset
        plan = compile_plan(PIPELINE_SPEC)
        with pytest.raises(NotFittedError):
            plan.score(data)

    def test_plan_for_pipeline_binds_existing_instance(self, dataset):
        data, _ = dataset
        pipeline = GeometricOutlierPipeline(
            IsolationForest(n_estimators=25, random_state=0), n_basis=10
        ).fit(data)
        plan = plan_for_pipeline(pipeline)
        assert plan.pipeline is pipeline
        np.testing.assert_array_equal(plan.score(data), pipeline.score_samples(data))

    def test_pipeline_to_spec_round_trips_configuration(self, dataset):
        data, _ = dataset
        pipeline = GeometricOutlierPipeline(
            IsolationForest(n_estimators=25, random_state=0),
            n_basis=10,
            smoothing=1e-3,
            eval_points=40,
        )
        spec = pipeline_to_spec(pipeline)
        rebuilt = compile_plan(spec).build()
        assert rebuilt.n_basis == pipeline.n_basis
        assert rebuilt.smoothing == pipeline.smoothing
        assert rebuilt.eval_points == pipeline.eval_points
        assert type(rebuilt.detector) is type(pipeline.detector)

    def test_from_spec_classmethod(self):
        pipeline = GeometricOutlierPipeline.from_spec(PIPELINE_SPEC)
        assert isinstance(pipeline, GeometricOutlierPipeline)
        assert pipeline.n_basis == 10

    def test_compile_accepts_tagged_dict(self):
        plan = compile_plan({"spec": "pipeline", "detector": "iforest"})
        assert plan.kind == "pipeline"

    def test_compile_rejects_uncompilable(self):
        with pytest.raises(ConfigurationError, match="compilable"):
            compile_plan(WorkloadSpec())

    def test_context_threading(self):
        ctx = ExecutionContext(n_jobs=1)
        plan = compile_plan(PIPELINE_SPEC, context=ctx)
        assert plan.build().context is ctx


class TestMethodPlan:
    @pytest.mark.parametrize("kind, cls", [
        ("funta", FuntaMethod),
        ("dirout", DirOutMethod),
        ("iforest", MappedDetectorMethod),
        ("ocsvm", MappedDetectorMethod),
    ])
    def test_builds_expected_classes(self, kind, cls):
        method = compile_plan(MethodSpec(kind)).build()
        assert isinstance(method, cls)

    def test_figure3_names_preserved(self):
        names = [
            compile_plan(spec).build().name
            for spec in (MethodSpec("dirout"), MethodSpec("funta"),
                         MethodSpec("iforest"), MethodSpec("ocsvm"))
        ]
        assert names == ["Dir.out", "FUNTA", "iFor(Curvmap)", "OCSVM(Curvmap)"]

    def test_workload_block_bytes_threads_into_depth_methods(self):
        plan = compile_plan(
            MethodSpec("funta"), WorkloadSpec(block_bytes=1 << 20)
        )
        assert plan.build().block_bytes == 1 << 20
        # Explicit spec params win over the workload default.
        plan = compile_plan(
            MethodSpec("funta", {"block_bytes": 123}),
            WorkloadSpec(block_bytes=1 << 20),
        )
        assert plan.build().block_bytes == 123

    def test_json_mapping_param_resolves(self, dataset):
        data, _ = dataset
        spec = MethodSpec(
            "iforest",
            {"mapping": {"type": "SpeedMapping"}, "n_basis": 8,
             "n_estimators": 10, "random_state": 0},
        )
        method = compile_plan(spec).build()
        from repro.geometry.mappings import SpeedMapping

        assert isinstance(method.mapping, SpeedMapping)

    def test_score_dataset_matches_direct_method(self, dataset):
        data, _ = dataset
        idx = np.arange(data.n_samples)
        plan = compile_plan(
            MethodSpec("iforest", {"n_basis": 8, "n_estimators": 10}))
        direct = MappedDetectorMethod("iforest", n_basis=8, n_estimators=10)
        np.testing.assert_array_equal(
            plan.score_dataset(data, idx, idx, random_state=0),
            direct.score_dataset(data, idx, idx, random_state=0),
        )


class TestStreamPlan:
    def test_builds_configured_detector(self):
        plan = compile_plan(StreamSpec(
            kind="funta", window=32, policy="sliding", min_reference=8,
            params={"trim": 0.1},
        ))
        detector = plan.build()
        assert isinstance(detector, StreamingDetector)
        assert detector.kind == "funta"
        assert isinstance(detector.window, SlidingWindow)
        assert detector.window.capacity == 32
        assert detector.min_reference == 8
        assert detector.on_drift == "adapt"
        assert detector.options == {"trim": 0.1}
        assert detector.threshold is not None
        assert detector.drift is not None

    def test_reservoir_policy_defaults_to_rereference(self):
        detector = compile_plan(
            StreamSpec(kind="halfspace", policy="reservoir", window=16,
                       min_reference=4)
        ).build()
        assert isinstance(detector.window, ReservoirWindow)
        assert detector.on_drift == "rereference"

    def test_explicit_on_drift_wins(self):
        detector = compile_plan(
            StreamSpec(policy="reservoir", on_drift="adapt", window=16,
                       min_reference=4)
        ).build()
        assert detector.on_drift == "adapt"

    def test_from_spec_classmethod(self):
        detector = StreamingDetector.from_spec(
            StreamSpec(kind="funta", window=16, min_reference=4))
        assert isinstance(detector, StreamingDetector)

    def test_process_chunks_runs_online_detection(self, dataset):
        data, _ = dataset
        plan = compile_plan(
            StreamSpec(kind="funta", window=16, min_reference=8),
            WorkloadSpec(mode="stream", chunk_size=8),
        )
        results = list(plan.process_chunks(data))
        assert results[0].warmup  # first chunk fills the window
        assert any(r.scores is not None for r in results)


class TestV1ManifestReader:
    def _downgrade_to_v1(self, model_dir):
        """Rewrite a saved v2 manifest into the historical v1 layout."""
        manifest_path = model_dir / MANIFEST_NAME
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        assert manifest["format_version"] == 2
        spec = manifest.pop("spec")
        state = manifest["state"]
        smoother = spec["smoother"]
        state["config"] = {
            "smoothing": smoother["smoothing"],
            "penalty_order": smoother["penalty_order"],
            "spline_order": smoother["spline_order"],
        }
        mapping = spec["mapping"]
        state["mapping"] = {
            "type": mapping["type"],
            "params": mapping.get("params", {}),
        }
        manifest["format_version"] = 1
        manifest_path.write_text(json.dumps(manifest), encoding="utf-8")

    def test_v1_manifest_loads_bit_identically(self, dataset, tmp_path):
        data, _ = dataset
        pipeline = GeometricOutlierPipeline(
            IsolationForest(n_estimators=25, random_state=0), n_basis=10
        ).fit(data)
        reference = pipeline.score_samples(data)
        save_pipeline(pipeline, tmp_path / "model")
        self._downgrade_to_v1(tmp_path / "model")
        restored = load_pipeline(tmp_path / "model")
        np.testing.assert_array_equal(restored.score_samples(data), reference)


class TestServiceChunkDedup:
    """The service streaming routes share the executor's chunk path."""

    def test_score_stream_counts_traffic(self, dataset):
        from repro.serving import ScoringService

        data, _ = dataset
        pipeline = GeometricOutlierPipeline(
            IsolationForest(n_estimators=25, random_state=0), n_basis=10
        ).fit(data)
        service = ScoringService()
        service.register("m", pipeline)
        chunks = list(service.score_stream("m", data, chunk_size=7))
        np.testing.assert_array_equal(
            np.concatenate(chunks), pipeline.score_samples(data)
        )
        assert service.served_curves == data.n_samples
        assert service.served_requests == len(chunks)

    def test_stream_route_counts_traffic_and_validates_eagerly(self, dataset):
        from repro.exceptions import ValidationError
        from repro.serving import ScoringService
        from repro.streaming import SlidingWindow

        data, _ = dataset
        detector = StreamingDetector("funta", SlidingWindow(16), min_reference=8)
        service = ScoringService()
        service.register("s", detector)
        results = list(service.stream("s", data, chunk_size=8))
        assert service.served_curves == data.n_samples
        assert len(results) == -(-data.n_samples // 8)
        pipeline = GeometricOutlierPipeline(
            IsolationForest(n_estimators=10, random_state=0), n_basis=8
        ).fit(data)
        service.register("m", pipeline)
        with pytest.raises(ValidationError, match="not a StreamingDetector"):
            service.stream("m", data)


class TestExperimentSpecEntries:
    def test_method_specs_match_method_objects(self, dataset):
        from repro.evaluation.experiment import run_contamination_experiment

        data, labels = dataset
        kwargs = dict(
            contamination_levels=(0.1,),
            n_repetitions=2,
            random_state=11,
        )
        by_spec = run_contamination_experiment(
            data, labels,
            [MethodSpec("funta"), MethodSpec("iforest", {"n_basis": 8, "n_estimators": 10})],
            **kwargs,
        )
        by_object = run_contamination_experiment(
            data, labels,
            [FuntaMethod(), MappedDetectorMethod("iforest", n_basis=8, n_estimators=10)],
            **kwargs,
        )
        assert by_spec.to_text() == by_object.to_text()

    def test_label_strings_accepted(self, dataset):
        from repro.evaluation.experiment import run_contamination_experiment

        data, labels = dataset
        table = run_contamination_experiment(
            data, labels, ["FUNTA"],
            contamination_levels=(0.1,), n_repetitions=1, random_state=5,
        )
        assert "FUNTA" in table.to_text()


class TestPlanValidateCli:
    def test_validates_spec_files_and_manifests(self, dataset, tmp_path, capsys):
        from repro.cli import main
        from repro.plan import dump_spec

        data, _ = dataset
        spec_path = dump_spec(PIPELINE_SPEC, tmp_path / "pipeline.json")
        stream_path = dump_spec(StreamSpec(window=16, min_reference=4),
                                tmp_path / "stream.json")
        pipeline = GeometricOutlierPipeline(
            IsolationForest(n_estimators=10, random_state=0), n_basis=8
        ).fit(data)
        model_dir = tmp_path / "model"
        save_pipeline(pipeline, model_dir)
        rc = main(["plan", "validate", str(spec_path), str(stream_path),
                   str(model_dir), str(model_dir / MANIFEST_NAME)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "plan validate" in out
        assert out.count(" ok") >= 4

    def test_unbuildable_spec_exits_nonzero(self, tmp_path, capsys):
        """validate builds the plan, so value errors the signature check
        cannot see (nu outside (0, 1]) still fail the gate."""
        from repro.cli import main
        from repro.plan import dump_spec

        spec_path = dump_spec(
            PipelineSpec(detector=DetectorSpec("ocsvm", {"nu": 1.5})),
            tmp_path / "bad_nu.json",
        )
        assert main(["plan", "validate", str(spec_path)]) == 2
        assert "nu" in capsys.readouterr().err

    def test_invalid_spec_exits_nonzero(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"spec": "pipeline",
                                   "detector": {"name": "lstm"}}),
                       encoding="utf-8")
        assert main(["plan", "validate", str(bad)]) == 2
        assert "unknown detector" in capsys.readouterr().err

    def test_missing_file_exits_nonzero(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["plan", "validate", str(tmp_path / "nope.json")]) == 2
        assert "error:" in capsys.readouterr().err
