"""Unit tests for the mapping functions (paper Sec. 3)."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.fda.basis import BSplineBasis
from repro.fda.fdata import FDataGrid
from repro.fda.smoothing import smooth_mfd
from repro.geometry.mappings import (
    ArcLengthMapping,
    ComponentMapping,
    CompositeMapping,
    CurvatureMapping,
    GeneralizedCurvatureMapping,
    NormMapping,
    SignedCurvatureMapping,
    SpeedMapping,
    TangentAngleMapping,
    TorsionMapping,
)


@pytest.fixture
def circle_fit(circle_mfd):
    fit, _ = smooth_mfd(circle_mfd, lambda dom: BSplineBasis(dom, 25), smoothing=1e-5)
    return fit, circle_mfd.grid


class TestCurvatureMapping:
    def test_recovers_circle_curvature(self, circle_fit):
        fit, grid = circle_fit
        mapped = CurvatureMapping(regularization=0.0).transform(fit, grid)
        interior = mapped.values[:, 10:-10]
        assert abs(interior.mean() - 0.5) < 0.05

    def test_returns_fdatagrid(self, circle_fit):
        fit, grid = circle_fit
        out = CurvatureMapping().transform(fit, grid)
        assert isinstance(out, FDataGrid)
        assert out.values.shape == (fit.n_samples, grid.shape[0])

    def test_name(self):
        assert CurvatureMapping().name == "curvature"

    def test_rejects_non_basis_input(self, circle_mfd):
        with pytest.raises(ValidationError):
            CurvatureMapping().transform(circle_mfd, circle_mfd.grid)

    def test_transform_grid_finite_differences(self, circle_mfd):
        """The raw finite-difference route approximates the true value."""
        mapped = CurvatureMapping(regularization=0.0).transform_grid(circle_mfd)
        interior = mapped.values[:, 10:-10]
        assert abs(np.median(interior) - 0.5) < 0.1

    def test_negative_regularization_rejected(self):
        with pytest.raises(ValidationError):
            CurvatureMapping(regularization=-0.5)


class TestSpeedMapping:
    def test_circle_speed(self, circle_fit):
        fit, grid = circle_fit
        mapped = SpeedMapping().transform(fit, grid)
        interior = mapped.values[:, 5:-5]
        assert abs(interior.mean() - 2.0) < 0.05

    def test_name(self):
        assert SpeedMapping().name == "speed"


class TestArcLengthMapping:
    def test_monotone_from_zero(self, circle_fit):
        fit, grid = circle_fit
        mapped = ArcLengthMapping().transform(fit, grid)
        np.testing.assert_allclose(mapped.values[:, 0], 0.0)
        assert (np.diff(mapped.values, axis=1) >= -1e-10).all()

    def test_total_length(self, circle_fit):
        fit, grid = circle_fit
        mapped = ArcLengthMapping().transform(fit, grid)
        np.testing.assert_allclose(mapped.values[:, -1], 4 * np.pi, rtol=0.02)


class TestDimensionGuards:
    def test_tangent_angle_needs_p2(self, sine_curves):
        fit, _ = smooth_mfd(
            sine_curves.to_multivariate(), lambda dom: BSplineBasis(dom, 10)
        )
        with pytest.raises(ValidationError, match="p >= 2"):
            TangentAngleMapping().transform(fit, sine_curves.grid)

    def test_torsion_needs_p3(self, circle_fit):
        fit, grid = circle_fit
        with pytest.raises(ValidationError, match="p >= 3"):
            TorsionMapping().transform(fit, grid)

    def test_signed_curvature_p2(self, circle_fit):
        fit, grid = circle_fit
        out = SignedCurvatureMapping().transform(fit, grid)
        # Counterclockwise circle: signed curvature positive.
        assert np.median(out.values[:, 10:-10]) > 0


class TestGeneralizedCurvatureMapping:
    def test_chi1_close_to_curvature(self, circle_fit):
        fit, grid = circle_fit
        chi1 = GeneralizedCurvatureMapping(1).transform(fit, grid)
        kappa = CurvatureMapping(regularization=0.0).transform(fit, grid)
        diff = np.abs(np.abs(chi1.values[:, 10:-10]) - kappa.values[:, 10:-10])
        assert diff.mean() < 0.05

    def test_name(self):
        assert GeneralizedCurvatureMapping(2).name == "chi2"

    def test_requires_enough_spline_order(self, circle_mfd):
        fit, _ = smooth_mfd(circle_mfd, lambda dom: BSplineBasis(dom, 25, order=6))
        chi = GeneralizedCurvatureMapping(1)
        out = chi.transform(fit, circle_mfd.grid)
        assert out.values.shape[0] == circle_mfd.n_samples


class TestZerothOrderMappings:
    def test_norm_mapping(self, circle_fit):
        fit, grid = circle_fit
        out = NormMapping().transform(fit, grid)
        np.testing.assert_allclose(out.values, 2.0, atol=0.1)

    def test_component_mapping(self, circle_fit):
        fit, grid = circle_fit
        out = ComponentMapping(0).transform(fit, grid)
        direct = fit.evaluate(grid)[:, :, 0]
        np.testing.assert_allclose(out.values, direct)

    def test_component_out_of_range(self, circle_fit):
        fit, grid = circle_fit
        with pytest.raises(ValidationError):
            ComponentMapping(5).transform(fit, grid)


class TestCompositeMapping:
    def test_concatenates_blocks(self, circle_fit):
        fit, grid = circle_fit
        composite = CompositeMapping([CurvatureMapping(), SpeedMapping()])
        out = composite.transform(fit, grid)
        assert out.values.shape == (fit.n_samples, 2 * grid.shape[0])

    def test_name_joins(self):
        composite = CompositeMapping([CurvatureMapping(), SpeedMapping()])
        assert composite.name == "curvature+speed"

    def test_required_derivatives_max(self):
        composite = CompositeMapping([SpeedMapping(), CurvatureMapping()])
        assert composite.required_derivatives == 2

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            CompositeMapping([])

    def test_non_mapping_rejected(self):
        with pytest.raises(ValidationError):
            CompositeMapping([CurvatureMapping(), "speed"])

    def test_blocks_match_individual_transforms(self, circle_fit):
        fit, grid = circle_fit
        composite = CompositeMapping([CurvatureMapping(), SpeedMapping()])
        out = composite.transform(fit, grid)
        m = grid.shape[0]
        solo_kappa = CurvatureMapping().transform(fit, grid)
        solo_speed = SpeedMapping().transform(fit, grid)
        np.testing.assert_allclose(out.values[:, :m], solo_kappa.values)
        np.testing.assert_allclose(out.values[:, m:], solo_speed.values)
