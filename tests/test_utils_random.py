"""Unit tests for repro.utils.random."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.utils.random import check_random_state, spawn_random_states


class TestCheckRandomState:
    def test_none_gives_generator(self):
        assert isinstance(check_random_state(None), np.random.Generator)

    def test_int_seed_reproducible(self):
        a = check_random_state(7).standard_normal(5)
        b = check_random_state(7).standard_normal(5)
        np.testing.assert_array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert check_random_state(gen) is gen

    def test_seed_sequence(self):
        seq = np.random.SeedSequence(1)
        gen = check_random_state(seq)
        assert isinstance(gen, np.random.Generator)

    def test_rejects_bool(self):
        with pytest.raises(ValidationError):
            check_random_state(True)

    def test_rejects_string(self):
        with pytest.raises(ValidationError):
            check_random_state("seed")


class TestSpawnRandomStates:
    def test_count(self):
        children = spawn_random_states(3, 5)
        assert len(children) == 5

    def test_independent_streams(self):
        children = spawn_random_states(3, 2)
        a = children[0].standard_normal(100)
        b = children[1].standard_normal(100)
        assert abs(np.corrcoef(a, b)[0, 1]) < 0.5

    def test_reproducible_from_int(self):
        a = spawn_random_states(9, 3)[1].standard_normal(4)
        b = spawn_random_states(9, 3)[1].standard_normal(4)
        np.testing.assert_array_equal(a, b)

    def test_zero_children(self):
        assert spawn_random_states(0, 0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValidationError):
            spawn_random_states(0, -1)

    def test_from_generator(self):
        children = spawn_random_states(np.random.default_rng(0), 2)
        assert len(children) == 2
