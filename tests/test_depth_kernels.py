"""Unit tests for the blocked depth-kernel layer and its integrations.

Covers what the property suite doesn't: block/budget plumbing, the
ExecutionContext fan-out (pooled results bit-identical to serial), the
batched Weiszfeld early exit, the serving ``DepthScorer``, the
partition-select detectors, and the perf-trajectory machinery behind
``repro bench-depth``.
"""

import json
import os

import numpy as np
import pytest

from repro.depth import _kernels
from repro.depth.dirout import _spatial_median
from repro.depth.funta import funta_depth
from repro.depth.functional import pointwise_depth_profile
from repro.depth.msplot import ms_plot
from repro.detectors.knn import KNNDetector
from repro.detectors.lof import LocalOutlierFactor
from repro.engine import ExecutionContext
from repro.exceptions import ValidationError
from repro.fda.fdata import FDataGrid, MFDataGrid
from repro.perf import append_bench_record, git_sha
from repro.serving import DepthScorer, ScoringService
from repro.utils.linalg import row_blocks


@pytest.fixture
def curves():
    rng = np.random.default_rng(3)
    grid = np.linspace(0.0, 1.0, 30)
    return FDataGrid(rng.standard_normal((20, 30)).cumsum(axis=1) / 5, grid)


@pytest.fixture
def cube2(curves):
    rng = np.random.default_rng(4)
    return MFDataGrid(rng.standard_normal((20, 30, 2)), curves.grid)


class TestBlockPlumbing:
    def test_row_blocks_cover_range(self):
        blocks = row_blocks(10, bytes_per_row=100.0, block_bytes=250)
        assert blocks[0] == (0, 2)
        assert blocks[-1][1] == 10
        covered = [i for a, b in blocks for i in range(a, b)]
        assert covered == list(range(10))

    def test_row_blocks_minimum_one_row(self):
        assert row_blocks(3, bytes_per_row=1e12, block_bytes=64)[0] == (0, 1)

    def test_row_blocks_rejects_bad_budget(self):
        with pytest.raises(ValidationError):
            row_blocks(5, 10.0, 0)

    def test_resolve_block_bytes(self):
        assert _kernels.resolve_block_bytes(None) == _kernels.DEFAULT_BLOCK_BYTES
        assert _kernels.resolve_block_bytes(1024) == 1024
        for bad in (0, -5, 1.5, True, "64MB"):
            with pytest.raises(ValidationError):
                _kernels.resolve_block_bytes(bad)

    def test_invalid_block_bytes_surfaces_from_public_api(self, curves):
        with pytest.raises(ValidationError):
            funta_depth(curves, block_bytes=-1)

    def test_profile_rejects_parameter_mismatch(self, cube2):
        bad_ref = MFDataGrid(np.zeros((5, cube2.n_points, 3)), cube2.grid)
        for naive in (False, True):
            with pytest.raises(ValidationError):
                pointwise_depth_profile(
                    cube2, reference=bad_ref, notion="spatial", naive=naive
                )

    def test_profile_rejects_tiny_reference(self, cube2):
        tiny = cube2[np.arange(1)]
        with pytest.raises(ValidationError):
            pointwise_depth_profile(cube2, reference=tiny, notion="spatial")

    def test_dirout_rejects_parameter_mismatch(self, cube2):
        from repro.depth.dirout import directional_outlyingness

        bad_ref = MFDataGrid(np.zeros((5, cube2.n_points, 3)), cube2.grid)
        with pytest.raises(ValidationError):
            directional_outlyingness(cube2, reference=bad_ref)


class TestContextFanOut:
    def test_distribute_preserves_order(self):
        ctx = ExecutionContext(n_jobs=3)
        groups = ctx.distribute(list(range(7)))
        assert [x for g in groups for x in g] == list(range(7))
        assert len(groups) <= 3

    def test_funta_pool_bit_identical(self, curves):
        serial = funta_depth(curves, block_bytes=20_000)
        pooled = funta_depth(
            curves, block_bytes=20_000, context=ExecutionContext(n_jobs=2)
        )
        np.testing.assert_array_equal(pooled, serial)

    @pytest.mark.parametrize("notion", ["halfspace", "spatial", "projection"])
    def test_profile_pool_bit_identical(self, cube2, notion):
        kwargs = {"random_state": 0} if notion in ("halfspace", "projection") else {}
        serial = pointwise_depth_profile(
            cube2, notion=notion, block_bytes=50_000, **kwargs
        )
        pooled = pointwise_depth_profile(
            cube2, notion=notion, block_bytes=50_000,
            context=ExecutionContext(n_jobs=2), **kwargs,
        )
        np.testing.assert_array_equal(pooled, serial)


class TestBatchedWeiszfeld:
    def test_matches_per_cloud_loop(self):
        rng = np.random.default_rng(11)
        clouds = rng.standard_normal((25, 8, 3))
        batched = _kernels.batched_spatial_median(clouds)
        for j in range(8):
            np.testing.assert_allclose(
                batched[j], _spatial_median(clouds[:, j, :]), rtol=1e-9, atol=1e-9
            )

    def test_early_exit_on_degenerate_cloud(self):
        # All points identical: the mean IS the median; the loop must
        # freeze immediately rather than iterating to max_iter.
        clouds = np.ones((10, 4, 2))
        np.testing.assert_allclose(
            _kernels.batched_spatial_median(clouds, max_iter=1_000_000),
            np.ones((4, 2)),
        )

    def test_scale_aware_tolerance_converges_fast_on_large_offsets(self):
        rng = np.random.default_rng(5)
        cloud = rng.standard_normal((50, 2)) + 1e9  # huge magnitude
        median = _spatial_median(cloud, max_iter=200)
        assert np.linalg.norm(median - cloud.mean(axis=0)) < 1.0

    def test_per_column_early_exit_iteration_counts(self):
        # Regression pin for the per-column early exit: converged columns
        # must drop out of the active set individually.  Before the fix,
        # every column iterated until the slowest one converged, so all
        # counts came out equal; these pinned counts (including the
        # 1-iteration degenerate column) can only be produced by
        # genuinely per-column termination.
        rng = np.random.default_rng(0)
        clouds = rng.standard_normal((9, 15, 2))
        clouds[:, 3, :] = 0.25  # all points identical -> immediate freeze
        median, iterations = _kernels.batched_spatial_median(
            clouds, return_iterations=True
        )
        expected = [50, 52, 32, 1, 52, 56, 41, 49, 32, 43, 34, 56, 41, 25, 41]
        np.testing.assert_array_equal(iterations, expected)
        # Dropping out early must not change the answer: each column run
        # alone (its own active set throughout) lands on the same median
        # after the same number of iterations.
        for j in (0, 3, 5, 13):
            alone, alone_iters = _kernels.batched_spatial_median(
                clouds[:, j : j + 1, :], return_iterations=True
            )
            assert alone_iters[0] == expected[j]
            np.testing.assert_array_equal(alone[0], median[j])


class TestMsPlotTypes:
    def test_vectorized_labels_match_reference_rule(self, cube2):
        result = ms_plot(cube2, random_state=0)
        assert len(result.types) == cube2.n_samples
        assert set(result.types) <= {"inlier", "magnitude", "shape", "mixed"}
        for i, label in enumerate(result.types):
            if not result.outlier_mask[i]:
                assert label == "inlier"


class TestDepthScorerServing:
    def test_funta_scorer_matches_direct_call(self, curves):
        ref = curves[np.arange(12)]
        batch = curves[np.arange(12, 20)]
        scorer = DepthScorer("funta", ref)
        direct = 1.0 - funta_depth(batch.to_multivariate(), reference=ref.to_multivariate())
        np.testing.assert_allclose(scorer.score_samples(batch), direct, atol=1e-12)

    def test_registered_scorer_serves_and_micro_batches(self, curves):
        ref = curves[np.arange(12)]
        service = ScoringService()
        service.register("funta", DepthScorer("funta", ref))
        assert service._pipelines["funta"].context is service.context
        batch_a = curves[np.arange(12, 16)]
        batch_b = curves[np.arange(16, 20)]
        direct = np.concatenate(
            [service.score("funta", batch_a), service.score("funta", batch_b)]
        )
        tickets = [service.submit("funta", batch_a), service.submit("funta", batch_b)]
        service.flush()
        micro = np.concatenate([t.result() for t in tickets])
        np.testing.assert_allclose(micro, direct, atol=1e-12)

    def test_dirout_scorer_deterministic(self, curves):
        scorer = DepthScorer("dirout", curves, random_state=3)
        a = scorer.score_samples(curves[np.arange(5)])
        b = scorer.score_samples(curves[np.arange(5)])
        np.testing.assert_array_equal(a, b)

    def test_rejects_unknown_kind_and_tiny_reference(self, curves):
        with pytest.raises(ValidationError):
            DepthScorer("mbd", curves)
        with pytest.raises(ValidationError):
            DepthScorer("funta", curves[np.arange(1)])

    def test_rejects_typoed_or_mismatched_options(self, curves):
        with pytest.raises(ValidationError):
            DepthScorer("funta", curves, trm=0.1)  # typo
        with pytest.raises(ValidationError):
            DepthScorer("funta", curves, n_directions=500)  # dirout-only
        with pytest.raises(ValidationError):
            DepthScorer("dirout", curves, method="totl")  # bad value
        with pytest.raises(ValidationError):
            # Batch-dependent rule: would break the micro-batching
            # invariant (scores must not depend on flush grouping).
            DepthScorer("dirout", curves, method="mahalanobis")
        DepthScorer("dirout", curves, method="total")  # valid

    def test_register_still_rejects_junk(self):
        service = ScoringService()
        with pytest.raises(ValidationError):
            service.register("x", object())


class TestPartitionSelectDetectors:
    def test_knn_bit_identical_to_full_sort(self):
        rng = np.random.default_rng(9)
        X = rng.standard_normal((40, 6))
        batch = rng.standard_normal((15, 6))
        for aggregation in ("kth", "mean"):
            det = KNNDetector(n_neighbors=5, aggregation=aggregation).fit(X)
            from repro.utils.linalg import pairwise_sq_dists

            dists = np.sqrt(pairwise_sq_dists(batch, X))
            reference = np.sort(dists, axis=1)[:, :5]
            expected = reference[:, -1] if aggregation == "kth" else reference.mean(axis=1)
            np.testing.assert_array_equal(det.score_samples(batch), expected)
            # Self-scoring drops the zero distance.
            self_dists = np.sort(np.sqrt(pairwise_sq_dists(X, X)), axis=1)[:, 1:6]
            expected_self = (
                self_dists[:, -1] if aggregation == "kth" else self_dists.mean(axis=1)
            )
            np.testing.assert_array_equal(det.score_samples(X), expected_self)

    def test_lof_scores_unchanged_semantics(self):
        rng = np.random.default_rng(10)
        X = np.vstack([rng.standard_normal((60, 2)), [[8.0, 8.0]]])
        det = LocalOutlierFactor(n_neighbors=10).fit(X)
        scores = det.score_samples(X)
        assert scores.argmax() == 60  # the planted outlier
        assert np.abs(scores[:60] - 1.0).max() < 1.0


class TestPerfTrajectory:
    def test_append_and_dedupe(self, tmp_path):
        path = tmp_path / "BENCH_depth_kernels.json"
        record = {
            "schema_version": 1, "bench": "depth_kernels",
            "git_sha": "abc", "quick": True, "dirty": False, "results": [],
        }
        assert len(append_bench_record(path, record)) == 1
        assert len(append_bench_record(path, dict(record))) == 1  # dedup
        other = dict(record, git_sha="def")
        trajectory = append_bench_record(path, other)
        assert [r["git_sha"] for r in trajectory] == ["abc", "def"]
        assert json.loads(path.read_text())[-1]["git_sha"] == "def"

    def test_dirty_run_never_replaces_clean_baseline(self, tmp_path):
        path = tmp_path / "BENCH_depth_kernels.json"
        clean = {
            "schema_version": 1, "bench": "depth_kernels",
            "git_sha": "abc", "quick": True, "dirty": False, "results": [],
        }
        dirty = dict(clean, dirty=True)
        append_bench_record(path, clean)
        trajectory = append_bench_record(path, dirty)
        assert len(trajectory) == 2  # the clean baseline survives
        assert [r["dirty"] for r in trajectory] == [False, True]
        # A second dirty run replaces only the dirty record.
        assert len(append_bench_record(path, dict(dirty))) == 2

    def test_append_recovers_from_corrupt_file(self, tmp_path):
        path = tmp_path / "BENCH_depth_kernels.json"
        path.write_text("{not json")
        trajectory = append_bench_record(
            path, {"bench": "depth_kernels", "git_sha": "x", "quick": False}
        )
        assert len(trajectory) == 1

    def test_git_sha_in_repo(self):
        sha = git_sha()
        assert sha == "unknown" or len(sha) == 40


class TestBenchDepthCli:
    def test_bench_depth_writes_trajectory(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "bench.json"
        code = main([
            "bench-depth", "--n", "12", "--m", "8", "--repeats", "1",
            "--quick", "--output", str(out),
        ])
        assert code == 0
        printed = capsys.readouterr().out
        assert "Depth kernels" in printed
        trajectory = json.loads(out.read_text())
        assert len(trajectory) == 1
        record = trajectory[0]
        assert record["schema_version"] == 3
        assert record["bench"] == "depth_kernels"
        assert record["workload"]["cpu_count"] == os.cpu_count()
        kernels = {r["kernel"] for r in record["results"]}
        assert {"funta", "halfspace_p1", "halfspace_p2", "spatial_p2",
                "projection_p2", "dirout_p2"} <= kernels
        for r in record["results"]:
            assert r["pool_s"] is None
            assert r["parallel_speedup"] is None
            assert r["naive_s"] > 0 and r["vectorized_s"] > 0

    def test_bench_depth_scale_mode(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "bench.json"
        code = main([
            "bench-depth", "--scale", "--n", "40", "--n-ref", "16", "--m", "8",
            "--repeats", "1", "--n-jobs", "2", "--quick", "--output", str(out),
        ])
        assert code == 0
        assert "scaled" in capsys.readouterr().out
        record = json.loads(out.read_text())[0]
        assert record["bench"] == "depth_kernels_scaled"
        assert record["workload"]["n_ref"] == 16
        for r in record["results"]:
            assert r["naive_s"] is None and r["speedup"] is None
            assert r["pool_s"] is not None
            assert r["parallel_speedup"] is not None

    def test_format_rows_falls_back_on_v1_records(self):
        from repro.perf import format_bench_rows

        v1 = {
            "results": [
                {"kernel": "funta", "p": 1, "gated": True,
                 "naive_s": 0.5, "vectorized_s": 0.05,
                 "pool_s": None, "speedup": 10.0},
            ]
        }
        headers, rows = format_bench_rows(v1)
        assert "pool ms" not in headers
        assert rows[0][-1] == "10.0x"
