"""Property tests: streaming scoring ≡ one-shot batch scoring.

The streaming acceptance pins, hypothesis-driven:

* a full window scored online must equal the one-shot batch score of
  the same reference — exactly in physical window order, and at
  ``rtol=1e-12`` in insertion order (the only difference is floating
  summation order over reference curves);
* the reservoir policy must be seed-reproducible;
* eviction + insert must leave every incrementally maintained reference
  statistic identical to a rebuild from scratch over the surviving
  window contents.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.depth.dirout import dirout_scores
from repro.depth.functional import functional_depth
from repro.depth.funta import funta_outlyingness
from repro.fda.fdata import MFDataGrid
from repro.streaming import ReservoirWindow, SlidingWindow, StreamingDetector
from repro.streaming.online import SortedLanes

COMMON = settings(max_examples=10, deadline=None)

RTOL = 1e-12


def _stream(seed: int, n: int, m: int, p: int, degenerate: bool) -> np.ndarray:
    rng = np.random.default_rng(seed)
    curves = rng.standard_normal((n, m, p)).cumsum(axis=1) / 5.0
    if degenerate:  # value ties and duplicated curves
        curves = np.round(curves, 1)
        curves[n // 2] = curves[0]
    return curves


class TestStreamingEqualsBatch:
    @COMMON
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=6, max_value=24),
        st.integers(min_value=8, max_value=30),
        st.integers(min_value=1, max_value=2),
        st.booleans(),
    )
    def test_funta_full_window_online_equals_batch(self, seed, capacity, m, p, degenerate):
        curves = _stream(seed, capacity + 7, m, p, degenerate)
        grid = np.linspace(0.0, 1.0, m)
        detector = StreamingDetector("funta", SlidingWindow(capacity), min_reference=2)
        detector.prime(MFDataGrid(curves, grid))  # forces 7 evictions
        queries = MFDataGrid(_stream(seed + 1, 4, m, p, False), grid)
        online = detector.score(queries)
        physical = funta_outlyingness(
            queries, reference=MFDataGrid(detector.window.values.copy(), grid)
        )
        np.testing.assert_array_equal(online, physical)
        insertion_order = funta_outlyingness(
            queries, reference=MFDataGrid(detector.window.ordered_values(), grid)
        )
        np.testing.assert_allclose(online, insertion_order, rtol=RTOL, atol=0.0)

    @COMMON
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=6, max_value=24),
        st.integers(min_value=8, max_value=30),
        st.booleans(),
    )
    def test_dirout_p1_full_window_online_equals_batch(self, seed, capacity, m, degenerate):
        curves = _stream(seed, capacity + 5, m, 1, degenerate)
        grid = np.linspace(0.0, 1.0, m)
        detector = StreamingDetector("dirout", SlidingWindow(capacity), min_reference=2)
        detector.prime(MFDataGrid(curves, grid))
        queries = MFDataGrid(_stream(seed + 1, 4, m, 1, False), grid)
        online = detector.score(queries)
        batch = dirout_scores(
            queries,
            reference=MFDataGrid(detector.window.values.copy(), grid),
            method="total",
        )
        np.testing.assert_array_equal(online, batch)
        insertion_order = dirout_scores(
            queries,
            reference=MFDataGrid(detector.window.ordered_values(), grid),
            method="total",
        )
        np.testing.assert_allclose(online, insertion_order, rtol=RTOL, atol=0.0)

    @COMMON
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=6, max_value=20),
        st.integers(min_value=8, max_value=24),
        st.booleans(),
    )
    def test_halfspace_p1_full_window_online_equals_batch(self, seed, capacity, m, degenerate):
        curves = _stream(seed, capacity + 5, m, 1, degenerate)
        grid = np.linspace(0.0, 1.0, m)
        detector = StreamingDetector("halfspace", SlidingWindow(capacity), min_reference=2)
        detector.prime(MFDataGrid(curves, grid))
        # Mix fresh queries with exact members of the reference (ties).
        fresh = _stream(seed + 1, 3, m, 1, False)
        queries_values = np.concatenate([fresh, detector.window.values[:2].copy()])
        queries = MFDataGrid(queries_values, grid)
        online = detector.score(queries)
        depth = functional_depth(
            queries, MFDataGrid(detector.window.values.copy(), grid), notion="halfspace"
        )
        np.testing.assert_array_equal(online, 1.0 - depth)


class TestReservoirReproducibility:
    @COMMON
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=2, max_value=16),
        st.integers(min_value=1, max_value=120),
    )
    def test_same_seed_same_reservoir(self, seed, capacity, n_items):
        rng = np.random.default_rng(seed)
        items = rng.standard_normal((n_items, 5))
        first = ReservoirWindow(capacity, random_state=seed)
        second = ReservoirWindow(capacity, random_state=seed)
        for item in items:
            update_a = first.observe(item)
            update_b = second.observe(item)
            assert update_a.slot == update_b.slot
        np.testing.assert_array_equal(first.values, second.values)
        assert first.size == min(capacity, n_items)


class TestEvictInsertEqualsRebuild:
    @COMMON
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=2, max_value=12),
        st.integers(min_value=3, max_value=20),
        st.integers(min_value=0, max_value=60),
        st.booleans(),
    )
    def test_sorted_lanes_match_full_sort_after_churn(
        self, seed, capacity, m, churn, degenerate
    ):
        rng = np.random.default_rng(seed)
        window = SlidingWindow(capacity)
        lanes = SortedLanes(m, capacity)
        for _ in range(capacity + churn):
            row = rng.standard_normal(m)
            if degenerate:
                row = np.round(row, 0)
            update = window.observe(row)
            if update.evicted is None:
                lanes.insert(update.inserted)
            else:
                lanes.replace(update.evicted, update.inserted)
        np.testing.assert_array_equal(
            lanes.lanes[:, : window.size], np.sort(window.values.T, axis=1)
        )
        np.testing.assert_array_equal(
            lanes.median(), np.median(window.values, axis=0)
        )

    @COMMON
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=4, max_value=12),
        st.integers(min_value=0, max_value=40),
    )
    def test_funta_theta_cache_matches_recompute(self, seed, capacity, churn):
        m, p = 12, 2
        grid = np.linspace(0.0, 1.0, m)
        curves = _stream(seed, capacity + churn, m, p, False)
        detector = StreamingDetector("funta", SlidingWindow(capacity), min_reference=2)
        detector.prime(MFDataGrid(curves, grid))
        theta = detector._scorer._theta[: detector.window.size]
        dt = np.diff(grid)
        recomputed = np.arctan(
            np.diff(detector.window.values, axis=1) / dt[:, None]
        )
        np.testing.assert_array_equal(theta, recomputed)

    @COMMON
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=5, max_value=10),
        st.integers(min_value=0, max_value=40),
    )
    def test_pipeline_moments_match_rebuild_after_churn(self, seed, capacity, churn):
        from repro.streaming.online import _PipelineState

        rng = np.random.default_rng(seed)
        d = 4
        window = SlidingWindow(capacity)
        state = _PipelineState(ridge_eps=1e-9, resync_every=10_000, incremental=True)
        for _ in range(capacity + churn):
            state.apply(window.observe(rng.standard_normal(d)))
        features = window.values
        np.testing.assert_allclose(
            state.mean, features.mean(axis=0), rtol=1e-9, atol=1e-12
        )
        centered = features - features.mean(axis=0)
        np.testing.assert_allclose(
            state.scatter, centered.T @ centered, rtol=1e-7, atol=1e-9
        )
