"""Property tests: the shared-memory executor is invisible to results.

For arbitrary block splits and worker counts, fanning blocks out over
:meth:`~repro.engine.ExecutionContext.run_blocks` must return results
bit-identical to the serial loop — the blocks run identical code on
identical float64 inputs and are concatenated in input order, so there
is no legitimate source of drift.  The same holds one level up, through
a real depth kernel driven by a tiny ``block_bytes`` governor.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.depth.funta import funta_outlyingness
from repro.engine import ExecutionContext, live_segments
from repro.fda.fdata import FDataGrid

# Each example forks a process pool, so keep the budget tight.
COMMON = settings(max_examples=8, deadline=None)


def _block_stats(block, values):
    lo, hi = block
    rows = values[lo:hi]
    return np.stack([rows.sum(axis=1), rows.min(axis=1), rows.max(axis=1)])


@st.composite
def _split_cases(draw):
    n = draw(st.integers(min_value=1, max_value=24))
    m = draw(st.integers(min_value=2, max_value=10))
    n_jobs = draw(st.integers(min_value=2, max_value=4))
    # Arbitrary ordered cut points -> contiguous blocks covering [0, n).
    n_cuts = draw(st.integers(min_value=0, max_value=min(n - 1, 5)))
    cuts = draw(
        st.lists(
            st.integers(min_value=1, max_value=max(n - 1, 1)),
            min_size=n_cuts, max_size=n_cuts, unique=True,
        )
    )
    bounds = [0, *sorted(cuts), n]
    blocks = [(bounds[i], bounds[i + 1]) for i in range(len(bounds) - 1)]
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    return n, m, n_jobs, blocks, seed


@COMMON
@given(_split_cases())
def test_arbitrary_splits_bit_identical_to_serial(case):
    n, m, n_jobs, blocks, seed = case
    values = np.random.default_rng(seed).standard_normal((n, m))
    serial = [_block_stats(b, values) for b in blocks]
    pooled = ExecutionContext(n_jobs=n_jobs).run_blocks(
        _block_stats, blocks, arrays={"values": values}
    )
    assert len(pooled) == len(serial)
    for s, p in zip(serial, pooled):
        assert s.dtype == p.dtype == np.float64
        np.testing.assert_array_equal(s, p)
    assert not live_segments()


@COMMON
@given(
    n=st.integers(min_value=2, max_value=30),
    m=st.integers(min_value=4, max_value=12),
    n_jobs=st.integers(min_value=2, max_value=4),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_kernel_through_pool_bit_identical(n, m, n_jobs, seed):
    rng = np.random.default_rng(seed)
    curves = FDataGrid(rng.standard_normal((n, m)).cumsum(axis=1), np.linspace(0, 1, m))
    # A tiny governor forces many row blocks regardless of n.
    serial = funta_outlyingness(curves, block_bytes=512)
    pooled = funta_outlyingness(
        curves, block_bytes=512, context=ExecutionContext(n_jobs=n_jobs)
    )
    np.testing.assert_array_equal(serial, pooled)
    assert not live_segments()


def test_fewer_blocks_than_workers():
    values = np.random.default_rng(7).standard_normal((6, 5))
    blocks = [(0, 3), (3, 6)]
    serial = [_block_stats(b, values) for b in blocks]
    pooled = ExecutionContext(n_jobs=8).run_blocks(
        _block_stats, blocks, arrays={"values": values}
    )
    for s, p in zip(serial, pooled):
        np.testing.assert_array_equal(s, p)
    assert not live_segments()


def test_single_curve_workload():
    grid = np.linspace(0.0, 1.0, 8)
    one = FDataGrid(np.random.default_rng(8).standard_normal((1, 8)), grid)
    ref = FDataGrid(np.random.default_rng(9).standard_normal((12, 8)), grid)
    serial = funta_outlyingness(one, reference=ref, block_bytes=256)
    pooled = funta_outlyingness(
        one, reference=ref, block_bytes=256, context=ExecutionContext(n_jobs=3)
    )
    assert serial.shape == (1,)
    np.testing.assert_array_equal(serial, pooled)
    assert not live_segments()
