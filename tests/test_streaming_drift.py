"""Unit tests for the depth-rank KS drift monitor."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.streaming import DepthRankDrift, ks_two_sample
from repro.streaming.drift import ks_critical_value


class TestKSTwoSample:
    def test_matches_brute_force_ecdf_sup(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            a = rng.standard_normal(rng.integers(5, 40))
            b = rng.standard_normal(rng.integers(5, 40)) + rng.uniform(-1, 1)
            pooled = np.concatenate([a, b])
            brute = max(
                abs((a <= x).mean() - (b <= x).mean()) for x in pooled
            )
            assert ks_two_sample(a, b) == pytest.approx(brute, abs=1e-15)

    def test_identical_samples_give_zero(self):
        a = np.arange(10.0)
        assert ks_two_sample(a, a) == 0.0

    def test_disjoint_samples_give_one(self):
        assert ks_two_sample(np.arange(5.0), np.arange(10.0, 15.0)) == 1.0

    def test_critical_value_decreases_with_sample_size(self):
        assert ks_critical_value(500, 500, 0.01) < ks_critical_value(50, 50, 0.01)


class TestDepthRankDrift:
    def test_stationary_stream_stays_quiet(self):
        rng = np.random.default_rng(1)
        monitor = DepthRankDrift(baseline_size=128, recent_size=64, alpha=0.001)
        for _ in range(40):
            assert monitor.update(rng.standard_normal(32)) is None
        assert monitor.events == []
        assert monitor.n_checks > 0

    def test_detects_mean_shift_and_rebases(self):
        rng = np.random.default_rng(2)
        monitor = DepthRankDrift(
            baseline_size=128, recent_size=64, alpha=0.01, patience=1, min_gap=16
        )
        for _ in range(8):
            monitor.update(rng.standard_normal(32))
        event = None
        for _ in range(20):
            fired = monitor.update(rng.standard_normal(32) + 2.0)
            if fired is not None:
                event = fired
                break
        assert event is not None
        assert event.statistic > event.critical
        assert event.baseline_size == 128 and event.recent_size == 64
        assert monitor.events == [event]
        # Re-based on the shifted regime: after the baseline has refilled
        # with purely shifted scores (the firing window straddles the
        # transition, so one more event may fire while it flushes), the
        # shifted stream is quiet.
        for _ in range(10):
            monitor.update(rng.standard_normal(32) + 2.0)
        quiet = [monitor.update(rng.standard_normal(32) + 2.0) for _ in range(15)]
        assert all(e is None for e in quiet)

    def test_patience_suppresses_single_burst(self):
        rng = np.random.default_rng(3)
        patient = DepthRankDrift(
            baseline_size=64, recent_size=32, alpha=0.05, patience=3, min_gap=32
        )
        for _ in range(4):
            patient.update(rng.standard_normal(32))
        # One strongly shifted recent window, then back to normal.
        assert patient.update(rng.standard_normal(32) + 5.0) is None
        for _ in range(10):
            assert patient.update(rng.standard_normal(32)) is None
        assert patient.events == []

    def test_explicit_rebase_resets_recent(self):
        rng = np.random.default_rng(4)
        monitor = DepthRankDrift(baseline_size=32, recent_size=16, min_gap=1)
        monitor.update(rng.standard_normal(64))
        monitor.rebase(rng.standard_normal(32) + 3.0)
        assert monitor.baselined
        assert monitor.recent_scores().size == 0

    def test_parameters_validated(self):
        with pytest.raises(ValidationError):
            DepthRankDrift(baseline_size=2)
        with pytest.raises(ValidationError):
            DepthRankDrift(alpha=0.0)
        with pytest.raises(ValidationError):
            DepthRankDrift(patience=0)
