"""Unit tests for repro.fda.quadrature."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.fda.quadrature import (
    gauss_legendre_nodes,
    integrate_function,
    integrate_sampled,
    simpson_weights,
    trapezoid_weights,
)


class TestTrapezoidWeights:
    def test_uniform_grid_integral_of_one(self):
        grid = np.linspace(0.0, 2.0, 21)
        w = trapezoid_weights(grid)
        assert w.sum() == pytest.approx(2.0)

    def test_irregular_grid(self):
        grid = np.array([0.0, 0.1, 0.5, 1.0])
        w = trapezoid_weights(grid)
        # Integrating f(t) = t over [0, 1] exactly (trapezoid is exact for linear).
        assert w @ grid == pytest.approx(0.5)

    def test_linear_exactness(self):
        grid = np.sort(np.random.default_rng(0).uniform(0, 1, 30))
        grid[0], grid[-1] = 0.0, 1.0
        w = trapezoid_weights(grid)
        assert w @ (3 * grid + 2) == pytest.approx(3.5)


class TestSimpsonWeights:
    def test_cubic_exactness(self):
        grid = np.linspace(0.0, 1.0, 11)
        w = simpson_weights(grid)
        # Simpson integrates cubics exactly.
        assert w @ grid**3 == pytest.approx(0.25)

    def test_rejects_even_point_count(self):
        with pytest.raises(ValidationError, match="odd"):
            simpson_weights(np.linspace(0, 1, 10))

    def test_rejects_irregular(self):
        with pytest.raises(ValidationError, match="uniform"):
            simpson_weights(np.array([0.0, 0.1, 0.5, 0.7, 1.0]))


class TestIntegrateSampled:
    def test_scalar_result_for_vector(self):
        grid = np.linspace(0, np.pi, 201)
        value = integrate_sampled(np.sin(grid), grid)
        assert value == pytest.approx(2.0, abs=1e-3)

    def test_vectorized_over_samples(self):
        grid = np.linspace(0, 1, 51)
        values = np.vstack([grid, grid**2])
        out = integrate_sampled(values, grid)
        np.testing.assert_allclose(out, [0.5, 1 / 3], atol=1e-3)

    def test_simpson_rule_option(self):
        grid = np.linspace(0, 1, 51)
        assert integrate_sampled(grid**3, grid, rule="simpson") == pytest.approx(0.25)

    def test_unknown_rule(self):
        grid = np.linspace(0, 1, 5)
        with pytest.raises(ValidationError):
            integrate_sampled(grid, grid, rule="midpoint")

    def test_length_mismatch(self):
        with pytest.raises(ValidationError):
            integrate_sampled(np.ones(4), np.linspace(0, 1, 5))


class TestGaussLegendre:
    def test_polynomial_exactness(self):
        nodes, weights = gauss_legendre_nodes(0.0, 1.0, 5)
        # 5 nodes integrate degree <= 9 exactly.
        assert weights @ nodes**9 == pytest.approx(0.1)

    def test_interval_mapping(self):
        nodes, weights = gauss_legendre_nodes(-2.0, 3.0, 8)
        assert nodes.min() > -2 and nodes.max() < 3
        assert weights.sum() == pytest.approx(5.0)

    def test_invalid_interval(self):
        with pytest.raises(ValidationError):
            gauss_legendre_nodes(1.0, 0.0, 4)


class TestIntegrateFunction:
    def test_scalar_integrand(self):
        value = integrate_function(np.sin, 0.0, np.pi)
        assert value == pytest.approx(2.0)

    def test_matrix_integrand(self):
        def outer(points):
            design = np.stack([np.ones_like(points), points], axis=1)
            return design[:, :, None] * design[:, None, :]

        gram = integrate_function(outer, 0.0, 1.0)
        np.testing.assert_allclose(gram, [[1.0, 0.5], [0.5, 1 / 3]], atol=1e-12)

    def test_breakpoints_piecewise(self):
        # |t - 0.5| has a kink: piecewise GL handles it exactly.
        value = integrate_function(
            lambda t: np.abs(t - 0.5), 0.0, 1.0, n_nodes=4, breakpoints=np.array([0.5])
        )
        assert value == pytest.approx(0.25)

    def test_empty_breakpoints(self):
        value = integrate_function(lambda t: t, 0.0, 1.0, breakpoints=np.empty(0))
        assert value == pytest.approx(0.5)
