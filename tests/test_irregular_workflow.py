"""Integration test: the sparse/irregular measurement path (paper Sec. 2).

"No assumption is made on the distribution of the measurement points,
thus the functional data representation can deal with sparse
measurements as well as uniform ones."  This exercises that claim end
to end: every sample is observed at its own random measurement points,
yet smoothing, derivative evaluation and the curvature mapping still
separate the planted outlier.
"""

import numpy as np
import pytest

from repro.detectors import KNNDetector
from repro.evaluation.metrics import roc_auc
from repro.fda import (
    BasisFData,
    BasisSmoother,
    BSplineBasis,
    IrregularFData,
    MultivariateBasisFData,
)
from repro.geometry import CurvatureMapping


@pytest.fixture
def irregular_population(rng):
    """30 near-circle paths + 3 ellipse-collapsed outliers, each sample
    observed at its own 40–60 random points."""
    def sample_one(outlier: bool):
        m = int(rng.integers(40, 61))
        points = np.sort(rng.uniform(0.0, 1.0, m))
        points[0], points[-1] = 0.0, 1.0
        phase = rng.uniform(-0.1, 0.1)
        arg = 2 * np.pi * points + phase
        delta = rng.uniform(0.9, 1.1) if outlier else 0.0
        x1 = 2 * np.sin(arg) + 0.02 * rng.standard_normal(m)
        x2 = 2 * np.cos(arg + delta) + 0.02 * rng.standard_normal(m)
        return points, x1, x2

    samples = [sample_one(False) for _ in range(30)] + [sample_one(True) for _ in range(3)]
    labels = np.r_[np.zeros(30, int), np.ones(3, int)]
    return samples, labels


def test_irregular_curvature_detection(irregular_population):
    samples, labels = irregular_population
    points = [s[0] for s in samples]
    x1_data = IrregularFData(points, [s[1] for s in samples])
    x2_data = IrregularFData(points, [s[2] for s in samples])

    basis = BSplineBasis((0.0, 1.0), n_basis=14)
    smoother = BasisSmoother(basis, smoothing=1e-4)
    fit = MultivariateBasisFData(
        [smoother.fit_irregular(x1_data), smoother.fit_irregular(x2_data)]
    )

    eval_grid = np.linspace(0.0, 1.0, 85)
    mapped = CurvatureMapping().transform(fit, eval_grid)

    features = np.sign(mapped.values) * np.log1p(np.abs(mapped.values))
    detector = KNNDetector(5).fit(features[labels == 0])
    scores = detector.score_samples(features)
    assert roc_auc(scores, labels) > 0.95


def test_irregular_and_grid_fits_agree(rng):
    """Fitting the same curve from irregular vs gridded observations must
    give nearly identical reconstructions."""
    grid = np.linspace(0.0, 1.0, 60)
    truth = np.sin(2 * np.pi * grid)
    basis = BSplineBasis((0.0, 1.0), n_basis=12)
    smoother = BasisSmoother(basis, smoothing=1e-6)

    from repro.fda import FDataGrid

    grid_fit = smoother.fit(FDataGrid(truth[None, :], grid))
    irregular_fit = smoother.fit(IrregularFData([grid], [truth]))
    probe = np.linspace(0.0, 1.0, 100)
    np.testing.assert_allclose(
        grid_fit.evaluate(probe), irregular_fit.evaluate(probe), atol=1e-8
    )
