"""Unit tests for the from-scratch One-Class SVM (SMO solver)."""

import numpy as np
import pytest
from scipy.optimize import minimize

from repro.detectors.kernels import rbf_kernel
from repro.detectors.ocsvm import OneClassSVM, smo_solve
from repro.evaluation.metrics import roc_auc
from repro.exceptions import NotFittedError, ValidationError


class TestSmoSolve:
    def test_constraints_satisfied(self, rng):
        X = rng.standard_normal((40, 2))
        Q = rbf_kernel(X, X, 0.5)
        C = 1.0 / (0.2 * 40)
        alpha, rho, n_iter = smo_solve(Q, C)
        assert alpha.sum() == pytest.approx(1.0, abs=1e-10)
        assert (alpha >= -1e-12).all() and (alpha <= C + 1e-12).all()
        assert n_iter >= 1

    def test_matches_slsqp(self, rng):
        """The SMO optimum must match a general-purpose QP solver."""
        X = rng.standard_normal((25, 2))
        Q = rbf_kernel(X, X, 0.8)
        C = 1.0 / (0.3 * 25)
        alpha, _, _ = smo_solve(Q, C, tol=1e-8)
        ours = 0.5 * alpha @ Q @ alpha
        res = minimize(
            lambda a: 0.5 * a @ Q @ a,
            np.full(25, 1 / 25),
            jac=lambda a: Q @ a,
            bounds=[(0, C)] * 25,
            constraints={"type": "eq", "fun": lambda a: a.sum() - 1},
            method="SLSQP",
            options={"maxiter": 500, "ftol": 1e-14},
        )
        assert ours <= res.fun + 1e-8

    def test_kkt_at_optimum(self, rng):
        X = rng.standard_normal((30, 3))
        Q = rbf_kernel(X, X, 0.5)
        C = 1.0 / (0.25 * 30)
        alpha, rho, _ = smo_solve(Q, C, tol=1e-10)
        grad = Q @ alpha
        free = (alpha > 1e-9) & (alpha < C - 1e-9)
        if free.any():
            np.testing.assert_allclose(grad[free], rho, atol=1e-6)
        at_zero = alpha <= 1e-9
        at_bound = alpha >= C - 1e-9
        assert (grad[at_zero] >= rho - 1e-6).all()
        assert (grad[at_bound] <= rho + 1e-6).all()

    def test_infeasible_rejected(self):
        Q = np.eye(3)
        with pytest.raises(ValidationError, match="infeasible"):
            smo_solve(Q, 0.1)  # 3 * 0.1 < 1

    def test_nu_one_forces_uniform(self, rng):
        """nu = 1 -> C = 1/n: the only feasible point is alpha_i = 1/n."""
        X = rng.standard_normal((10, 2))
        Q = rbf_kernel(X, X, 1.0)
        alpha, _, _ = smo_solve(Q, 1.0 / 10)
        np.testing.assert_allclose(alpha, 0.1, atol=1e-10)

    def test_nonsquare_rejected(self):
        with pytest.raises(ValidationError):
            smo_solve(np.ones((2, 3)), 1.0)


class TestOneClassSVM:
    def test_nu_property(self, rng):
        """nu upper-bounds the training outlier fraction and lower-bounds
        the support-vector fraction (Scholkopf Proposition 3)."""
        X = rng.standard_normal((300, 2))
        for nu in (0.1, 0.25, 0.4):
            model = OneClassSVM(nu=nu).fit(X)
            frac_outliers = np.mean(model.raw_decision(X) < -1e-8)
            frac_sv = len(model.support_) / 300
            assert frac_outliers <= nu + 0.02
            assert frac_sv >= nu - 0.02

    def test_separates_outliers(self, gaussian_cloud):
        X, y = gaussian_cloud
        model = OneClassSVM(nu=0.1).fit(X)
        assert roc_auc(model.score_samples(X), y) > 0.9

    def test_score_orientation(self, rng):
        """Far points must score higher (more anomalous) than the center."""
        X = rng.standard_normal((200, 2))
        model = OneClassSVM(nu=0.1).fit(X)
        scores = model.score_samples(np.array([[0.0, 0.0], [10.0, 10.0]]))
        assert scores[1] > scores[0]

    def test_raw_decision_negates_score(self, gaussian_cloud):
        X, _ = gaussian_cloud
        model = OneClassSVM(nu=0.1).fit(X)
        np.testing.assert_allclose(
            model.raw_decision(X), -model.score_samples(X), atol=1e-12
        )

    def test_linear_kernel(self, gaussian_cloud):
        X, y = gaussian_cloud
        model = OneClassSVM(nu=0.2, kernel="linear").fit(X)
        assert model.support_vectors_.shape[1] == 2

    def test_poly_kernel_runs(self, gaussian_cloud):
        X, y = gaussian_cloud
        model = OneClassSVM(nu=0.2, kernel="poly", degree=2).fit(X)
        assert np.isfinite(model.score_samples(X)).all()

    def test_sparse_dual(self, rng):
        """Most multipliers vanish: support vectors are a minority for
        small nu on clean data."""
        X = rng.standard_normal((200, 2))
        model = OneClassSVM(nu=0.05).fit(X)
        assert len(model.support_) < 100

    def test_predict_threshold(self, gaussian_cloud):
        X, y = gaussian_cloud
        model = OneClassSVM(nu=0.1).fit(X)
        predictions = model.predict(X)
        # Natural threshold f(x) = 0: flagged fraction ~ nu on train.
        assert np.mean(predictions == -1) <= 0.15

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            OneClassSVM().score_samples(np.zeros((2, 2)))

    def test_invalid_nu(self):
        with pytest.raises(ValidationError):
            OneClassSVM(nu=0.0)
        with pytest.raises(ValidationError):
            OneClassSVM(nu=1.5)

    def test_needs_two_rows(self):
        with pytest.raises(ValidationError):
            OneClassSVM().fit(np.ones((1, 2)))

    def test_reproducible(self, gaussian_cloud):
        """The solver is deterministic: same data, same model."""
        X, _ = gaussian_cloud
        s1 = OneClassSVM(nu=0.1).fit(X).score_samples(X)
        s2 = OneClassSVM(nu=0.1).fit(X).score_samples(X)
        np.testing.assert_array_equal(s1, s2)
