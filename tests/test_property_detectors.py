"""Property-based tests for the detectors and depth notions."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.depth.multivariate import (
    halfspace_depth,
    mahalanobis_depth,
    projection_depth,
    spatial_depth,
)
from repro.detectors.iforest import IsolationForest
from repro.detectors.kernels import rbf_kernel
from repro.detectors.ocsvm import OneClassSVM, smo_solve

COMMON = settings(max_examples=20, deadline=None)


class TestSmoProperties:
    @COMMON
    @given(
        st.integers(min_value=5, max_value=60),
        st.floats(min_value=0.05, max_value=1.0),
        st.integers(min_value=0, max_value=10_000),
    )
    def test_feasibility_and_optimal_value(self, n, nu, seed):
        rng = np.random.default_rng(seed)
        X = rng.standard_normal((n, 3))
        Q = rbf_kernel(X, X, 0.5)
        C = 1.0 / (nu * n)
        alpha, rho, _ = smo_solve(Q, C)
        assert abs(alpha.sum() - 1.0) < 1e-9
        assert (alpha >= -1e-10).all()
        assert (alpha <= C + 1e-10).all()
        # The uniform vector is always feasible; the optimum cannot be worse.
        uniform = np.full(n, 1.0 / n)
        assert 0.5 * alpha @ Q @ alpha <= 0.5 * uniform @ Q @ uniform + 1e-8


class TestOcsvmNuProperty:
    @COMMON
    @given(
        st.sampled_from([0.1, 0.2, 0.3, 0.5]),
        st.integers(min_value=0, max_value=10_000),
    )
    def test_nu_bounds_outlier_and_sv_fractions(self, nu, seed):
        rng = np.random.default_rng(seed)
        X = rng.standard_normal((150, 2))
        model = OneClassSVM(nu=nu).fit(X)
        frac_out = float(np.mean(model.raw_decision(X) < -1e-8))
        frac_sv = len(model.support_) / X.shape[0]
        assert frac_out <= nu + 0.05
        assert frac_sv >= nu - 0.05


class TestIsolationForestProperties:
    @COMMON
    @given(st.integers(min_value=0, max_value=10_000))
    def test_scores_bounded(self, seed):
        rng = np.random.default_rng(seed)
        X = rng.standard_normal((100, 3))
        forest = IsolationForest(n_estimators=30, random_state=seed).fit(X)
        scores = forest.score_samples(X)
        assert ((scores > 0) & (scores < 1)).all()

    @COMMON
    @given(st.integers(min_value=0, max_value=10_000))
    def test_extreme_point_scores_higher_than_median_point(self, seed):
        rng = np.random.default_rng(seed)
        X = rng.standard_normal((150, 2))
        forest = IsolationForest(n_estimators=50, random_state=seed).fit(X)
        probe = np.vstack([np.median(X, axis=0), X.max(axis=0) * 3 + 1])
        scores = forest.score_samples(probe)
        assert scores[1] > scores[0]


class TestDepthProperties:
    @COMMON
    @given(st.integers(min_value=0, max_value=10_000))
    def test_depths_in_unit_interval(self, seed):
        rng = np.random.default_rng(seed)
        cloud = rng.standard_normal((80, 2))
        pts = rng.standard_normal((10, 2)) * 2
        for fn, kwargs in [
            (mahalanobis_depth, {}),
            (projection_depth, {"random_state": 0}),
            (halfspace_depth, {"random_state": 0}),
            (spatial_depth, {}),
        ]:
            d = fn(pts, cloud, **kwargs)
            assert (d >= 0).all() and (d <= 1).all()

    @COMMON
    @given(st.integers(min_value=0, max_value=10_000))
    def test_vanishing_at_infinity(self, seed):
        """Depth must vanish as the point moves to infinity (Zuo-Serfling
        axiom D4)."""
        rng = np.random.default_rng(seed)
        cloud = rng.standard_normal((80, 3))
        far = np.array([[1e4, 1e4, 1e4]])
        assert mahalanobis_depth(far, cloud)[0] < 1e-4
        assert projection_depth(far, cloud, random_state=0)[0] < 1e-2
        assert halfspace_depth(far, cloud, random_state=0)[0] == 0.0
        assert spatial_depth(far, cloud)[0] < 1e-2

    @COMMON
    @given(st.integers(min_value=0, max_value=10_000))
    def test_translation_invariance_of_mahalanobis(self, seed):
        rng = np.random.default_rng(seed)
        cloud = rng.standard_normal((60, 2))
        pts = rng.standard_normal((5, 2))
        shift = rng.uniform(-10, 10, 2)
        np.testing.assert_allclose(
            mahalanobis_depth(pts + shift, cloud + shift),
            mahalanobis_depth(pts, cloud),
            atol=1e-8,
        )
