"""Unit tests for penalized least-squares smoothing (paper Eq. 3-4)."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.fda.basis import BSplineBasis, MonomialBasis
from repro.fda.fdata import FDataGrid, IrregularFData, MFDataGrid
from repro.fda.smoothing import BasisSmoother, smooth_mfd


@pytest.fixture
def basis():
    return BSplineBasis((0.0, 1.0), n_basis=12)


class TestFitSample:
    def test_exact_recovery_of_representable_function(self, unit_grid):
        """An unpenalized fit recovers a function inside the span exactly."""
        basis = MonomialBasis((0.0, 1.0), n_basis=3)
        smoother = BasisSmoother(basis)
        truth = 2.0 - 3.0 * (unit_grid - basis.center) + (unit_grid - basis.center) ** 2
        coeffs = smoother.fit_sample(unit_grid, truth)
        np.testing.assert_allclose(coeffs, [2.0, -3.0, 1.0], atol=1e-9)

    def test_denoising(self, basis, unit_grid, rng):
        truth = np.sin(2 * np.pi * unit_grid)
        noisy = truth + 0.1 * rng.standard_normal(85)
        smoother = BasisSmoother(basis, smoothing=1e-4)
        coeffs = smoother.fit_sample(unit_grid, noisy)
        fitted = basis.evaluate(unit_grid) @ coeffs
        assert np.sqrt(np.mean((fitted - truth) ** 2)) < 0.08

    def test_ridge_solution_formula(self, basis, unit_grid, rng):
        """The fit must match Eq. 4 computed by hand."""
        values = rng.standard_normal(85)
        lam = 0.01
        smoother = BasisSmoother(basis, smoothing=lam, penalty_order=2)
        coeffs = smoother.fit_sample(unit_grid, values)
        design = basis.evaluate(unit_grid)
        manual = np.linalg.solve(
            design.T @ design + lam * smoother.penalty, design.T @ values
        )
        np.testing.assert_allclose(coeffs, manual, atol=1e-8)

    def test_underdetermined_unpenalized_rejected(self, basis):
        smoother = BasisSmoother(basis)
        points = np.linspace(0, 1, 5)  # fewer than 12 basis functions
        with pytest.raises(ValidationError, match="at least"):
            smoother.fit_sample(points, np.zeros(5))

    def test_underdetermined_penalized_allowed(self, basis):
        smoother = BasisSmoother(basis, smoothing=1e-2)
        points = np.linspace(0, 1, 5)
        coeffs = smoother.fit_sample(points, np.ones(5))
        assert np.isfinite(coeffs).all()

    def test_shape_mismatch(self, basis, unit_grid):
        smoother = BasisSmoother(basis)
        with pytest.raises(ValidationError):
            smoother.fit_sample(unit_grid, np.zeros(10))


class TestFitGrid:
    def test_matches_per_sample_fits(self, basis, sine_curves):
        smoother = BasisSmoother(basis, smoothing=1e-5)
        batch = smoother.fit_grid(sine_curves)
        single = smoother.fit_sample(sine_curves.grid, sine_curves.values[3])
        np.testing.assert_allclose(batch.coefficients[3], single, atol=1e-10)

    def test_dispatch_fit(self, basis, sine_curves):
        smoother = BasisSmoother(basis, smoothing=1e-5)
        out = smoother.fit(sine_curves)
        assert out.n_samples == sine_curves.n_samples

    def test_fit_rejects_unknown_type(self, basis):
        with pytest.raises(ValidationError):
            BasisSmoother(basis).fit(np.zeros((3, 5)))


class TestFitIrregular:
    def test_irregular_samples(self, basis, rng):
        points = [np.sort(rng.uniform(0, 1, 40)) for _ in range(3)]
        for p in points:
            p[0], p[-1] = 0.0, 1.0
        values = [np.sin(2 * np.pi * p) + 0.02 * rng.standard_normal(40) for p in points]
        data = IrregularFData(points, values)
        smoother = BasisSmoother(basis, smoothing=1e-5)
        fit = smoother.fit(data)
        grid = np.linspace(0, 1, 50)
        recon = fit.evaluate(grid)
        truth = np.sin(2 * np.pi * grid)
        assert np.abs(recon - truth).mean() < 0.1


class TestHatMatrix:
    def test_projection_when_unpenalized(self, unit_grid):
        """With lambda = 0 the hat matrix is an orthogonal projection:
        idempotent with trace = n_basis."""
        basis = BSplineBasis((0.0, 1.0), n_basis=9)
        smoother = BasisSmoother(basis)
        hat = smoother.hat_matrix(unit_grid)
        np.testing.assert_allclose(hat @ hat, hat, atol=1e-8)
        assert np.trace(hat) == pytest.approx(9.0, abs=1e-8)

    def test_penalty_shrinks_df(self, basis, unit_grid):
        df_unpenalized = BasisSmoother(basis).effective_df(unit_grid)
        df_penalized = BasisSmoother(basis, smoothing=1.0).effective_df(unit_grid)
        assert df_penalized < df_unpenalized
        # The q=2 penalty never shrinks below its 2-dim nullspace.
        assert df_penalized >= 2.0 - 1e-6

    def test_fitted_values_via_hat(self, basis, sine_curves):
        smoother = BasisSmoother(basis, smoothing=1e-4)
        hat = smoother.hat_matrix(sine_curves.grid)
        fit = smoother.fit_grid(sine_curves)
        direct = fit.evaluate(sine_curves.grid)
        via_hat = sine_curves.values @ hat.T
        np.testing.assert_allclose(direct, via_hat, atol=1e-8)


class TestSmoothMfd:
    def test_returns_components_per_parameter(self, circle_mfd):
        fit, smoothers = smooth_mfd(
            circle_mfd, lambda dom: BSplineBasis(dom, 15), smoothing=1e-5
        )
        assert fit.n_parameters == 2
        assert len(smoothers) == 2

    def test_per_parameter_settings(self, circle_mfd):
        factories = [lambda dom: BSplineBasis(dom, 10), lambda dom: BSplineBasis(dom, 20)]
        fit, smoothers = smooth_mfd(circle_mfd, factories, smoothing=[1e-6, 1e-3])
        assert smoothers[0].basis.n_basis == 10
        assert smoothers[1].basis.n_basis == 20
        assert smoothers[1].smoothing == 1e-3

    def test_wrong_factory_count(self, circle_mfd):
        with pytest.raises(ValidationError):
            smooth_mfd(circle_mfd, [lambda dom: BSplineBasis(dom, 10)])

    def test_rejects_ufd(self, sine_curves):
        with pytest.raises(ValidationError):
            smooth_mfd(sine_curves, lambda dom: BSplineBasis(dom, 10))
