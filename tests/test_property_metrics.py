"""Property-based tests for ranking metrics and splits."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.evaluation.metrics import average_precision, precision_at_k, roc_auc
from repro.evaluation.splits import contaminated_split

COMMON = settings(max_examples=40, deadline=None)


@st.composite
def scores_and_labels(draw):
    n = draw(st.integers(min_value=4, max_value=120))
    scores = draw(
        hnp.arrays(
            np.float64,
            n,
            elements=st.floats(min_value=-100, max_value=100, allow_nan=False),
        )
    )
    n_pos = draw(st.integers(min_value=1, max_value=n - 1))
    labels = np.zeros(n, dtype=int)
    labels[:n_pos] = 1
    rng = np.random.default_rng(draw(st.integers(min_value=0, max_value=2**31)))
    rng.shuffle(labels)
    return scores, labels


class TestAucProperties:
    @COMMON
    @given(scores_and_labels())
    def test_bounded(self, data):
        scores, labels = data
        assert 0.0 <= roc_auc(scores, labels) <= 1.0

    @COMMON
    @given(scores_and_labels())
    def test_negation_flips(self, data):
        """AUC(-s) = 1 - AUC(s)."""
        scores, labels = data
        np.testing.assert_allclose(
            roc_auc(-scores, labels), 1.0 - roc_auc(scores, labels), atol=1e-10
        )

    @COMMON
    @given(scores_and_labels())
    def test_monotone_transform_invariant(self, data):
        scores, labels = data
        # Multiplication by a power of two is exact in binary floating
        # point: strictly monotone and tie-preserving for any inputs.
        transformed = 4.0 * scores
        np.testing.assert_allclose(
            roc_auc(scores, labels), roc_auc(transformed, labels), atol=1e-10
        )

    @COMMON
    @given(scores_and_labels())
    def test_label_flip_complements(self, data):
        """Swapping the positive class complements the AUC."""
        scores, labels = data
        np.testing.assert_allclose(
            roc_auc(scores, 1 - labels), 1.0 - roc_auc(scores, labels), atol=1e-10
        )

    @COMMON
    @given(scores_and_labels())
    def test_average_precision_bounds(self, data):
        scores, labels = data
        ap = average_precision(scores, labels)
        base_rate = labels.mean()
        # AP is at least the best single-precision floor 0 and at most 1;
        # for a random ranking it concentrates near the base rate.
        assert 0.0 <= ap <= 1.0
        assert ap >= base_rate / len(labels)

    @COMMON
    @given(scores_and_labels(), st.integers(min_value=1, max_value=4))
    def test_precision_at_k_bounds(self, data, k):
        scores, labels = data
        if k <= len(scores):
            assert 0.0 <= precision_at_k(scores, labels, k) <= 1.0


class TestSplitProperties:
    @COMMON
    @given(
        st.integers(min_value=20, max_value=200),
        st.integers(min_value=10, max_value=60),
        st.sampled_from([0.05, 0.1, 0.15, 0.2, 0.25]),
        st.integers(min_value=0, max_value=1000),
    )
    def test_partition_and_contamination(self, n_in, n_out, c, seed):
        labels = np.r_[np.zeros(n_in, dtype=int), np.ones(n_out, dtype=int)]
        split = contaminated_split(labels, c, random_state=seed)
        # Exact partition of the index set.
        union = np.sort(np.concatenate([split.train, split.test]))
        np.testing.assert_array_equal(union, np.arange(n_in + n_out))
        # Training contamination within rounding of the target.
        achieved = labels[split.train].mean()
        n_train_in = (labels[split.train] == 0).sum()
        tolerance = 1.0 / max(n_train_in, 1) + 0.02
        assert abs(achieved - c) <= tolerance or labels[split.train].sum() == n_out - 1
