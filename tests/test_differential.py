"""Unit tests for differential-geometry invariants on analytic curves."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.geometry.differential import (
    arc_length,
    cumulative_arc_length,
    curvature,
    speed,
    tangent_angle,
    torsion,
    turning_rate,
)


@pytest.fixture
def circle_derivs():
    """Circle of radius 2: exact velocity/acceleration arrays."""
    t = np.linspace(0.0, 2.0 * np.pi, 201)
    v = np.stack([-2.0 * np.sin(t), 2.0 * np.cos(t)], axis=1)[None]
    a = np.stack([-2.0 * np.cos(t), -2.0 * np.sin(t)], axis=1)[None]
    return t, v, a


class TestSpeed:
    def test_circle_constant_speed(self, circle_derivs):
        _, v, _ = circle_derivs
        np.testing.assert_allclose(speed(v), 2.0)

    def test_shape(self, circle_derivs):
        _, v, _ = circle_derivs
        assert speed(v).shape == (1, 201)

    def test_2d_input_promoted(self):
        v = np.ones((10, 3))
        assert speed(v).shape == (1, 10)


class TestArcLength:
    def test_circle_circumference(self, circle_derivs):
        t, v, _ = circle_derivs
        np.testing.assert_allclose(arc_length(v, t), 4.0 * np.pi, rtol=1e-4)

    def test_straight_line(self):
        t = np.linspace(0, 1, 11)
        v = np.stack([3.0 * np.ones(11), 4.0 * np.ones(11)], axis=1)[None]
        np.testing.assert_allclose(arc_length(v, t), 5.0)

    def test_cumulative_monotone_and_endpoints(self, circle_derivs):
        t, v, _ = circle_derivs
        s = cumulative_arc_length(v, t)
        assert s[0, 0] == 0.0
        assert (np.diff(s[0]) >= 0).all()
        np.testing.assert_allclose(s[0, -1], 4.0 * np.pi, rtol=1e-4)

    def test_grid_mismatch(self, circle_derivs):
        t, v, _ = circle_derivs
        with pytest.raises(ValidationError):
            arc_length(v, t[:-1])


class TestCurvature:
    def test_circle_radius_reciprocal(self, circle_derivs):
        _, v, a = circle_derivs
        np.testing.assert_allclose(curvature(v, a), 0.5, atol=1e-12)

    def test_line_zero(self):
        t = np.linspace(0, 1, 21)
        v = np.stack([np.ones(21), 2.0 * np.ones(21)], axis=1)[None]
        a = np.zeros_like(v)
        np.testing.assert_allclose(curvature(v, a), 0.0)

    def test_parabola_apex(self):
        """y = x^2 parametrized by x: curvature at the apex is 2."""
        x = np.linspace(-1, 1, 201)
        v = np.stack([np.ones_like(x), 2 * x], axis=1)[None]
        a = np.stack([np.zeros_like(x), 2 * np.ones_like(x)], axis=1)[None]
        kappa = curvature(v, a)
        apex = np.argmin(np.abs(x))
        assert kappa[0, apex] == pytest.approx(2.0, abs=1e-10)
        # Formula check everywhere: kappa = 2 / (1 + 4x^2)^{3/2}
        np.testing.assert_allclose(kappa[0], 2.0 / (1 + 4 * x**2) ** 1.5, atol=1e-10)

    def test_parametrization_invariance(self, rng):
        """Curvature is geometric: reparametrizing t -> t^2 must not
        change it (up to the matching of points)."""
        u = np.linspace(0.2, 1.0, 301)
        # Path (cos u, sin u) with unit curvature...
        v1 = np.stack([-np.sin(u), np.cos(u)], axis=1)[None]
        a1 = np.stack([-np.cos(u), -np.sin(u)], axis=1)[None]
        # ...reparametrized: u = s^2, chain rule gives v, a w.r.t. s.
        s = np.sqrt(u)
        du = 2 * s
        ddu = 2 * np.ones_like(s)
        v2 = v1 * du[None, :, None]
        a2 = a1 * (du**2)[None, :, None] + v1 * ddu[None, :, None]
        np.testing.assert_allclose(curvature(v2, a2), curvature(v1, a1), atol=1e-9)

    def test_scaling_law(self, circle_derivs):
        """Scaling a curve by factor s divides curvature by s."""
        _, v, a = circle_derivs
        np.testing.assert_allclose(curvature(3 * v, 3 * a), 0.5 / 3.0, atol=1e-12)

    def test_regularization_damps_stalls(self):
        """Near-zero velocity points blow up unregularized curvature but
        are damped to ~0 with regularization."""
        t = np.linspace(-1, 1, 101)
        # Path (t^3, t^6): velocity vanishes at t=0 (singular parametrization).
        v = np.stack([3 * t**2, 6 * t**5], axis=1)[None]
        a = np.stack([6 * t, 30 * t**4], axis=1)[None]
        raw = curvature(v, a)
        damped = curvature(v, a, regularization=0.1)
        near_stall = 52  # v tiny but nonzero: raw kappa ~ 2, damped ~ 0
        assert damped[0, near_stall] < raw[0, near_stall]
        assert np.isfinite(damped).all()
        # Away from the stall the two must agree (damping is relative).
        np.testing.assert_allclose(damped[0, :20], raw[0, :20], rtol=0.05)

    def test_regularization_negative_rejected(self, circle_derivs):
        _, v, a = circle_derivs
        with pytest.raises(ValidationError):
            curvature(v, a, regularization=-1.0)

    def test_shape_mismatch(self, circle_derivs):
        _, v, a = circle_derivs
        with pytest.raises(ValidationError):
            curvature(v, a[:, :-1])

    def test_univariate_path_zero_curvature(self):
        """p = 1 paths live on a line: curvature must vanish."""
        t = np.linspace(0, 1, 51)
        v = (1 + t**2)[None, :, None]
        a = (2 * t)[None, :, None]
        # Up to floating-point cancellation in the Lagrange identity.
        np.testing.assert_allclose(curvature(v, a), 0.0, atol=1e-6)


class TestTorsion:
    def test_helix_constant(self):
        c = 0.5
        t = np.linspace(0, 4 * np.pi, 301)
        v = np.stack([-np.sin(t), np.cos(t), c * np.ones_like(t)], axis=1)[None]
        a = np.stack([-np.cos(t), -np.sin(t), np.zeros_like(t)], axis=1)[None]
        j = np.stack([np.sin(t), -np.cos(t), np.zeros_like(t)], axis=1)[None]
        np.testing.assert_allclose(torsion(v, a, j), c / (1 + c**2), atol=1e-12)

    def test_planar_curve_zero(self):
        t = np.linspace(0, 2 * np.pi, 101)
        v = np.stack([-np.sin(t), np.cos(t), np.zeros_like(t)], axis=1)[None]
        a = np.stack([-np.cos(t), -np.sin(t), np.zeros_like(t)], axis=1)[None]
        j = np.stack([np.sin(t), -np.cos(t), np.zeros_like(t)], axis=1)[None]
        np.testing.assert_allclose(torsion(v, a, j), 0.0, atol=1e-12)

    def test_mirror_flips_sign(self):
        c = 0.5
        t = np.linspace(0, 2 * np.pi, 101)
        v = np.stack([-np.sin(t), np.cos(t), c * np.ones_like(t)], axis=1)[None]
        a = np.stack([-np.cos(t), -np.sin(t), np.zeros_like(t)], axis=1)[None]
        j = np.stack([np.sin(t), -np.cos(t), np.zeros_like(t)], axis=1)[None]
        mirror = np.array([1.0, 1.0, -1.0])
        np.testing.assert_allclose(
            torsion(v * mirror, a * mirror, j * mirror), -torsion(v, a, j), atol=1e-12
        )

    def test_requires_p3(self):
        v = np.ones((1, 10, 2))
        with pytest.raises(ValidationError):
            torsion(v, v, v)


class Test2DInvariants:
    def test_tangent_angle_circle_unwraps(self, circle_derivs):
        _, v, _ = circle_derivs
        angles = tangent_angle(v)
        # One full counterclockwise turn: angle grows by 2 pi.
        assert angles[0, -1] - angles[0, 0] == pytest.approx(2 * np.pi, abs=1e-6)

    def test_turning_rate_signed(self, circle_derivs):
        _, v, a = circle_derivs
        signed = turning_rate(v, a)
        np.testing.assert_allclose(signed, 0.5, atol=1e-12)  # counterclockwise
        np.testing.assert_allclose(turning_rate(v[..., ::-1], a[..., ::-1]), -0.5, atol=1e-12)

    def test_abs_turning_rate_equals_curvature(self, circle_derivs):
        _, v, a = circle_derivs
        np.testing.assert_allclose(
            np.abs(turning_rate(v, a)), curvature(v, a), atol=1e-12
        )

    def test_requires_p2(self):
        v = np.ones((1, 5, 3))
        with pytest.raises(ValidationError):
            tangent_angle(v)
