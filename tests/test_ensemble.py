"""Unit tests for the per-class composition ensemble (paper Sec. 5)."""

import numpy as np
import pytest

from repro.core.ensemble import OutlierCompositionEnsemble
from repro.data.synthetic import SyntheticMFD
from repro.evaluation.metrics import roc_auc
from repro.exceptions import NotFittedError, ValidationError
from repro.fda.fdata import MFDataGrid


@pytest.fixture(scope="module")
def ensemble_setup():
    """Per-class contaminated training sets + a labelled mixed test set."""
    factory = SyntheticMFD(random_state=42)
    classes = ["magnitude_isolated", "shape_persistent"]
    training_sets = {}
    for kind in classes:
        inliers = factory.inliers(40)
        outliers = factory.outliers(4, kind)
        training_sets[kind] = MFDataGrid(
            np.concatenate([inliers, outliers]), factory.grid
        )
    # Test set: inliers + both outlier classes.
    test_inliers = factory.inliers(30)
    test_mag = factory.outliers(4, "magnitude_isolated")
    test_shape = factory.outliers(4, "shape_persistent")
    test = MFDataGrid(
        np.concatenate([test_inliers, test_mag, test_shape]), factory.grid
    )
    labels = np.r_[np.zeros(30, int), np.ones(8, int)]
    kinds = ["inlier"] * 30 + ["magnitude_isolated"] * 4 + ["shape_persistent"] * 4
    ensemble = OutlierCompositionEnsemble(classes, n_basis=16, random_state=0)
    ensemble.fit(training_sets)
    return ensemble, test, labels, kinds


class TestConstruction:
    def test_empty_classes_rejected(self):
        with pytest.raises(ValidationError):
            OutlierCompositionEnsemble([])

    def test_duplicate_classes_rejected(self):
        with pytest.raises(ValidationError):
            OutlierCompositionEnsemble(["a", "a"])

    def test_missing_training_set(self):
        ensemble = OutlierCompositionEnsemble(["a", "b"])
        with pytest.raises(ValidationError, match="missing training sets"):
            ensemble.fit({"a": None})

    def test_not_fitted(self, ensemble_setup):
        _, test, _, _ = ensemble_setup
        with pytest.raises(NotFittedError):
            OutlierCompositionEnsemble(["a"]).score_samples(test)


class TestScoring:
    def test_detects_both_classes(self, ensemble_setup):
        ensemble, test, labels, _ = ensemble_setup
        scores = ensemble.score_samples(test)
        assert roc_auc(scores, labels) > 0.85

    def test_composition_shares_normalized(self, ensemble_setup):
        ensemble, test, labels, _ = ensemble_setup
        report = ensemble.composition(test)
        assert report.shares.shape == (test.n_samples, 2)
        assert (report.shares >= 0).all()
        sums = report.shares.sum(axis=1)
        positive = report.total > 0.5
        np.testing.assert_allclose(sums[positive], 1.0, atol=1e-9)

    def test_dominant_class_identifies_outlier_type(self, ensemble_setup):
        """The paper's goal: read off the outlyingness composition.
        Magnitude outliers should load on the magnitude member at least
        as often as shape outliers do."""
        ensemble, test, labels, kinds = ensemble_setup
        report = ensemble.composition(test)
        mag_idx = [i for i, k in enumerate(kinds) if k == "magnitude_isolated"]
        shape_idx = [i for i, k in enumerate(kinds) if k == "shape_persistent"]
        mag_share_on_mag = report.shares[mag_idx, 0].mean()
        shape_share_on_mag = report.shares[shape_idx, 0].mean()
        assert mag_share_on_mag >= shape_share_on_mag - 0.15

    def test_dominant_class_accessor(self, ensemble_setup):
        ensemble, test, _, _ = ensemble_setup
        report = ensemble.composition(test)
        assert report.dominant_class(0) in ("magnitude_isolated", "shape_persistent")
