"""Smoke tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_known_commands(self):
        parser = build_parser()
        for command in ("fig1", "fig2", "fig3", "taxonomy", "all"):
            args = parser.parse_args([command])
            assert args.command == command

    def test_defaults(self):
        args = build_parser().parse_args(["fig3"])
        assert args.reps == 15
        assert args.seed == 7

    def test_custom_options(self):
        args = build_parser().parse_args(["fig3", "--reps", "50", "--seed", "1"])
        assert args.reps == 50
        assert args.seed == 1

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig9"])


class TestCommands:
    def test_fig1_prints_table(self, capsys):
        assert main(["fig1"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out
        assert "AUC" in out

    def test_fig2_prints_circles(self, capsys):
        assert main(["fig2"]) == 0
        out = capsys.readouterr().out
        assert "circle r=2.0" in out

    def test_fig3_small(self, capsys):
        assert main(["fig3", "--reps", "1"]) == 0
        out = capsys.readouterr().out
        assert "iFor(Curvmap)" in out
        assert "OCSVM(Curvmap)" in out
        assert "c=0.25" in out
