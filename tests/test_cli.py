"""Smoke tests for the command-line interface."""

import json

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.serving import MANIFEST_NAME, save_pipeline


class TestParser:
    def test_known_commands(self):
        parser = build_parser()
        for command in ("fig1", "fig2", "fig3", "taxonomy", "all"):
            args = parser.parse_args([command])
            assert args.command == command

    def test_defaults(self):
        args = build_parser().parse_args(["fig3"])
        assert args.reps == 15
        assert args.seed == 7

    def test_custom_options(self):
        args = build_parser().parse_args(["fig3", "--reps", "50", "--seed", "1"])
        assert args.reps == 50
        assert args.seed == 1

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig9"])


class TestCommands:
    def test_fig1_prints_table(self, capsys):
        assert main(["fig1"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out
        assert "AUC" in out

    def test_fig2_prints_circles(self, capsys):
        assert main(["fig2"]) == 0
        out = capsys.readouterr().out
        assert "circle r=2.0" in out

    def test_fig3_small(self, capsys):
        assert main(["fig3", "--reps", "1"]) == 0
        out = capsys.readouterr().out
        assert "iFor(Curvmap)" in out
        assert "OCSVM(Curvmap)" in out
        assert "c=0.25" in out


@pytest.fixture()
def saved_pipeline(tmp_path):
    """A small fitted pipeline persisted to disk, plus a matching batch."""
    from repro.core.pipeline import GeometricOutlierPipeline
    from repro.data.synthetic import make_taxonomy_dataset
    from repro.detectors import IsolationForest

    data, _ = make_taxonomy_dataset(
        "correlation", n_inliers=30, n_outliers=4, random_state=0
    )
    pipeline = GeometricOutlierPipeline(
        IsolationForest(n_estimators=25, random_state=0), n_basis=10
    ).fit(data)
    model_dir = tmp_path / "model"
    save_pipeline(pipeline, model_dir)
    batch_path = tmp_path / "batch.npz"
    np.savez(batch_path, values=data.values, grid=data.grid)
    return model_dir, batch_path


class TestServeScore:
    def test_happy_path_writes_scores(self, saved_pipeline, tmp_path, capsys):
        model_dir, batch_path = saved_pipeline
        output = tmp_path / "scores.npz"
        rc = main([
            "serve-score", "--pipeline", str(model_dir), "--data", str(batch_path),
            "--chunk-size", "8", "--output", str(output),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "serve-score" in out
        assert "curves scored" in out
        assert np.load(output)["scores"].shape == (34,)

    def test_missing_pipeline_directory(self, saved_pipeline, tmp_path, capsys):
        _, batch_path = saved_pipeline
        rc = main(["serve-score", "--pipeline", str(tmp_path / "nope"),
                   "--data", str(batch_path)])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_corrupt_pipeline_manifest(self, saved_pipeline, capsys):
        model_dir, batch_path = saved_pipeline
        (model_dir / MANIFEST_NAME).write_text("{broken", encoding="utf-8")
        rc = main(["serve-score", "--pipeline", str(model_dir),
                   "--data", str(batch_path)])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_wrong_manifest_format(self, saved_pipeline, capsys):
        model_dir, batch_path = saved_pipeline
        (model_dir / MANIFEST_NAME).write_text(
            json.dumps({"format": "other"}), encoding="utf-8"
        )
        assert main(["serve-score", "--pipeline", str(model_dir),
                     "--data", str(batch_path)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_missing_data_file(self, saved_pipeline, tmp_path, capsys):
        model_dir, _ = saved_pipeline
        rc = main(["serve-score", "--pipeline", str(model_dir),
                   "--data", str(tmp_path / "nothing.npz")])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_empty_batch_rejected(self, saved_pipeline, tmp_path, capsys):
        model_dir, _ = saved_pipeline
        empty = tmp_path / "empty.npz"
        np.savez(empty, values=np.zeros((0, 5, 2)), grid=np.linspace(0, 1, 5))
        rc = main(["serve-score", "--pipeline", str(model_dir), "--data", str(empty)])
        assert rc == 2
        assert "no curves" in capsys.readouterr().err

    def test_data_missing_required_arrays(self, saved_pipeline, tmp_path, capsys):
        model_dir, _ = saved_pipeline
        bad = tmp_path / "bad.npz"
        np.savez(bad, wrong=np.zeros(3))
        rc = main(["serve-score", "--pipeline", str(model_dir), "--data", str(bad)])
        assert rc == 2
        assert "missing arrays" in capsys.readouterr().err

    def test_missing_required_options_exit_nonzero(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["serve-score"])
        assert excinfo.value.code != 0

    def test_unknown_subcommand_exit_nonzero(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["frobnicate"])
        assert excinfo.value.code != 0


@pytest.fixture()
def stream_npz(tmp_path):
    """A univariate curve stream saved as the .npz the CLI consumes."""
    rng = np.random.default_rng(9)
    values = rng.standard_normal((120, 24)).cumsum(axis=1) / 5.0
    path = tmp_path / "stream.npz"
    np.savez(path, values=values, grid=np.linspace(0.0, 1.0, 24))
    return path


class TestStreamScore:
    def test_happy_path_writes_scores_and_flags(self, stream_npz, tmp_path, capsys):
        output = tmp_path / "out.npz"
        rc = main([
            "stream-score", "--data", str(stream_npz), "--kind", "funta",
            "--window", "32", "--chunk-size", "16", "--min-reference", "16",
            "--drift-baseline", "32", "--drift-recent", "16",
            "--output", str(output),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "stream-score" in out
        assert "curves scored" in out
        with np.load(output) as bundle:
            scores = bundle["scores"]
            flags = bundle["flags"]
        assert scores.shape == (120,) and flags.shape == (120,)
        assert np.isnan(scores[:16]).all()  # warm-up curves
        assert np.isfinite(scores[16:]).all()

    def test_reservoir_policy_and_p2_threshold(self, stream_npz, capsys):
        rc = main([
            "stream-score", "--data", str(stream_npz), "--kind", "halfspace",
            "--policy", "reservoir", "--threshold-mode", "p2",
            "--window", "32", "--min-reference", "8",
            "--drift-baseline", "32", "--drift-recent", "16",
        ])
        assert rc == 0
        assert "reservoir" in capsys.readouterr().out

    def test_missing_data_file_exits_2(self, tmp_path, capsys):
        rc = main(["stream-score", "--data", str(tmp_path / "nope.npz")])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_bad_options_exit_2(self, stream_npz, capsys):
        # min_reference beyond the window capacity is a validation error.
        rc = main([
            "stream-score", "--data", str(stream_npz),
            "--window", "8", "--min-reference", "64",
        ])
        assert rc == 2
        assert "error:" in capsys.readouterr().err


class TestBenchStream:
    def test_print_only_run(self, capsys):
        rc = main([
            "bench-stream", "--window", "24", "--m", "16", "--arrivals", "10",
            "--repeats", "1", "--quick", "--output", "",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Streaming" in out
        assert "funta_p1" in out

    def test_appends_perf_record(self, tmp_path, capsys):
        output = tmp_path / "BENCH_streaming.json"
        rc = main([
            "bench-stream", "--window", "24", "--m", "16", "--arrivals", "8",
            "--repeats", "1", "--quick", "--output", str(output),
        ])
        assert rc == 0
        trajectory = json.loads(output.read_text())
        assert len(trajectory) == 1
        record = trajectory[0]
        assert record["bench"] == "streaming"
        assert {r["case"] for r in record["results"]} >= {
            "funta_p1", "dirout_p1", "halfspace_p1",
        }


class TestServeScoreDiagnostics:
    def test_state_type_corruption_exits_2_with_one_line_error(
        self, saved_pipeline, capsys
    ):
        """A malformed manifest prints one diagnostic line, not a traceback."""
        model_dir, batch_path = saved_pipeline
        manifest_path = model_dir / MANIFEST_NAME
        manifest = json.loads(manifest_path.read_text())
        manifest["state"]["eval_grid"] = "hello"
        manifest_path.write_text(json.dumps(manifest))
        rc = main(["serve-score", "--pipeline", str(model_dir),
                   "--data", str(batch_path)])
        assert rc == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "cannot restore pipeline" in err
        assert "Traceback" not in err


class TestServeCommand:
    def test_parser_accepts_serve_options(self):
        args = build_parser().parse_args([
            "serve", "--pipeline", "ecg=/models/ecg", "--pipeline", "eeg=/models/eeg",
            "--port", "9000", "--workers", "4", "--high-water", "512",
        ])
        assert args.command == "serve"
        assert args.pipeline == ["ecg=/models/ecg", "eeg=/models/eeg"]
        assert (args.port, args.workers, args.high_water) == (9000, 4, 512)

    def test_pipeline_without_equals_exits_2(self, capsys):
        rc = main(["serve", "--pipeline", "just-a-path"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "error:" in err and "NAME=DIR" in err

    def test_duplicate_pipeline_name_exits_2(self, saved_pipeline, capsys):
        model_dir, _ = saved_pipeline
        rc = main(["serve", "--pipeline", f"m={model_dir}",
                   "--pipeline", f"m={model_dir}"])
        assert rc == 2
        assert "duplicate" in capsys.readouterr().err

    def test_missing_manifest_directory_exits_2(self, tmp_path, capsys):
        rc = main(["serve", "--pipeline", f"m={tmp_path / 'nope'}"])
        assert rc == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err
