"""Setup shim: enables legacy editable installs on environments without the
`wheel` package (PEP 660 editable builds require bdist_wheel)."""
from setuptools import setup

setup()
