"""Figure 1 reproduction: the motivating shape-persistent outlier.

The paper's Figure 1 shows 21 bivariate MFD with one shape-persistent
outlier that is invisible in the per-parameter (t, x_k) views but
obvious in the (x1, x2) projection.  This bench regenerates that data
set, prints the marginal/joint summary that the figure conveys, and
asserts the figure's point quantitatively:

* marginally, the outlier's values stay inside the inlier envelope
  (per-t z-scores stay moderate);
* geometrically, the curvature pipeline isolates it perfectly.
"""

import numpy as np

from benchmarks.conftest import print_table
from repro.core.methods import MappedDetectorMethod
from repro.data import make_fig1_dataset
from repro.evaluation.metrics import roc_auc


def test_fig1_report(benchmark):
    data, labels = benchmark(make_fig1_dataset, random_state=0)
    outlier = data.values[20]
    inliers = data.values[:20]

    # Per-t marginal z-score of the outlier against the inlier cross-sections.
    mu = inliers.mean(axis=0)
    sd = inliers.std(axis=0) + 1e-12
    z = np.abs((outlier - mu) / sd)
    marginal_range_in = np.abs(inliers).max()
    marginal_range_out = np.abs(outlier).max()

    method = MappedDetectorMethod("iforest", n_basis=20)
    idx = np.arange(data.n_samples)
    scores = method.score_dataset(data, idx, idx, random_state=0)
    auc = roc_auc(scores, labels)
    rank = int(np.argsort(-scores).tolist().index(20)) + 1

    print_table(
        "Figure 1: 21 bivariate MFD, one shape-persistent outlier",
        ["quantity", "value"],
        [
            ["samples (n, m, p)", str(data.values.shape)],
            ["inlier |x| max", f"{marginal_range_in:.2f}"],
            ["outlier |x| max", f"{marginal_range_out:.2f} (inside inlier range)"],
            ["outlier mean marginal |z|", f"{z.mean():.2f}"],
            ["curvature-pipeline AUC", f"{auc:.3f}"],
            ["outlier rank by score", f"{rank} / 21"],
        ],
    )

    # The figure's claim: not extreme marginally...
    assert marginal_range_out <= marginal_range_in + 0.3
    # ...but trivially separated by the geometric representation.
    assert auc == 1.0
    assert rank == 1
