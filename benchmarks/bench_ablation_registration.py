"""Ablation A4: does phase registration change the Figure 3 story?

Our reproduction identified benign beat-to-beat phase jitter as the
mechanism that hurts pointwise depth methods on ECG-like data (see
DESIGN.md §5c).  A natural question: if one *registers* the beats first
(shift registration against the mean beat), do the depth baselines
recover and does the geometric method's edge shrink?

This bench runs Dir.out and iFor(Curvmap) on the raw and the
shift-registered ECG data at c = 0.15.
"""

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.core.methods import DirOutMethod, MappedDetectorMethod
from repro.data import square_augment
from repro.evaluation.metrics import roc_auc
from repro.evaluation.splits import contaminated_split
from repro.fda.fdata import FDataGrid
from repro.fda.registration import shift_register


def test_registration_ablation(benchmark, ecg200_substitute):
    mfd, labels, _ = ecg200_substitute
    # Registration acts on the original univariate beats (parameter 0);
    # the square augmentation is recomputed after alignment.
    raw_beats = FDataGrid(mfd.values[:, :, 0], mfd.grid)
    splits = [
        contaminated_split(labels, 0.15, train_fraction=0.7, random_state=seed)
        for seed in range(4)
    ]

    def evaluate_all():
        registered = shift_register(raw_beats, max_shift=0.08, n_iterations=2)
        mfd_registered = square_augment(registered.aligned)
        results = {}
        for tag, dataset in (("raw", mfd), ("registered", mfd_registered)):
            for method in (DirOutMethod(), MappedDetectorMethod("iforest", n_estimators=200)):
                state = method.prepare(dataset, random_state=0)
                aucs = [
                    roc_auc(
                        method.fit_score(state, s.train, s.test, random_state=i),
                        labels[s.test],
                    )
                    for i, s in enumerate(splits)
                ]
                results[(tag, method.name)] = (float(np.mean(aucs)), float(np.std(aucs)))
        results["shift magnitude"] = (
            float(np.abs(registered.shifts).mean()),
            float(np.abs(registered.shifts).max()),
        )
        return results

    results = benchmark.pedantic(evaluate_all, rounds=1, iterations=1)

    rows = []
    for key, (a, b) in results.items():
        if key == "shift magnitude":
            rows.append(["estimated |shift| mean / max", f"{a:.3f} / {b:.3f}"])
        else:
            rows.append([f"{key[1]} on {key[0]} beats", f"{a:.3f} ± {b:.3f}"])
    print_table("Ablation A4: phase registration (c=0.15)", ["configuration", "value"], rows)

    # Registration must help the pointwise baseline (it removes the
    # benign phase variance that masks pointwise outlyingness)...
    assert (
        results[("registered", "Dir.out")][0]
        >= results[("raw", "Dir.out")][0] - 0.02
    )
    # ...while the geometric method stays competitive either way.
    assert results[("registered", "iFor(Curvmap)")][0] > 0.7
