"""Ablation A1 (DESIGN.md §6): choice of the mapping function.

The paper presents curvature as *one example* of a geometric
aggregation.  This ablation swaps the mapping while keeping the rest of
the pipeline fixed and reports the test AUC on the ECG workload — which
geometric summary carries the outlier signal, and what a non-geometric
baseline (raw component values) gives up.
"""

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.core.methods import MappedDetectorMethod
from repro.evaluation.metrics import roc_auc
from repro.evaluation.splits import contaminated_split
from repro.geometry.mappings import (
    ArcLengthMapping,
    ComponentMapping,
    CompositeMapping,
    CurvatureMapping,
    SignedCurvatureMapping,
    SpeedMapping,
    TangentAngleMapping,
)

MAPPINGS = [
    ("curvature (paper)", CurvatureMapping()),
    ("signed curvature", SignedCurvatureMapping()),
    ("speed", SpeedMapping()),
    ("arc length", ArcLengthMapping()),
    ("tangent angle", TangentAngleMapping()),
    ("raw component x1", ComponentMapping(0)),
    ("curvature + speed", CompositeMapping([CurvatureMapping(), SpeedMapping()])),
]


def test_mapping_ablation(benchmark, ecg200_substitute):
    mfd, labels, _ = ecg200_substitute
    splits = [
        contaminated_split(labels, 0.15, train_fraction=0.7, random_state=seed)
        for seed in range(5)
    ]

    def evaluate_all():
        results = {}
        for name, mapping in MAPPINGS:
            method = MappedDetectorMethod("iforest", mapping=mapping, n_estimators=200)
            state = method.prepare(mfd, random_state=0)
            aucs = [
                roc_auc(
                    method.fit_score(state, s.train, s.test, random_state=i),
                    labels[s.test],
                )
                for i, s in enumerate(splits)
            ]
            results[name] = (float(np.mean(aucs)), float(np.std(aucs)))
        return results

    results = benchmark.pedantic(evaluate_all, rounds=1, iterations=1)

    rows = [[name, f"{m:.3f} ± {s:.3f}"] for name, (m, s) in results.items()]
    print_table("Ablation A1: mapping function (iFor head, c=0.15)", ["mapping", "AUC"], rows)

    # Geometric derivative-based mappings must beat the raw component.
    assert results["curvature (paper)"][0] > results["raw component x1"][0]
    # All mapped variants produce sane detectors.
    for name, (mean_auc, _) in results.items():
        assert mean_auc > 0.5, name
