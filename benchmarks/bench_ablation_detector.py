"""Ablation A3-d (DESIGN.md §6): the detector head on curvature features.

The paper combines the geometric representation with iFor and OCSVM;
this ablation adds the extension detectors (kNN, LOF, robust
Mahalanobis) on identical features, plus the OCSVM kernel-width
sensitivity that motivated fixing gamma = 0.05 in the default methods.
"""

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.core.methods import MappedDetectorMethod, _robust_standardize
from repro.detectors import (
    IsolationForest,
    KNNDetector,
    LocalOutlierFactor,
    MahalanobisDetector,
    OneClassSVM,
)
from repro.evaluation.metrics import roc_auc
from repro.evaluation.splits import contaminated_split

DETECTORS = [
    ("iForest (200 trees)", lambda i: IsolationForest(n_estimators=200, random_state=i)),
    ("OCSVM gamma=scale", lambda i: OneClassSVM(nu=0.1)),
    ("OCSVM gamma=0.02", lambda i: OneClassSVM(nu=0.1, gamma=0.02)),
    ("OCSVM gamma=0.05", lambda i: OneClassSVM(nu=0.1, gamma=0.05)),
    ("OCSVM gamma=0.1", lambda i: OneClassSVM(nu=0.1, gamma=0.1)),
    ("kNN (k=5)", lambda i: KNNDetector(5)),
    ("LOF (k=20)", lambda i: LocalOutlierFactor(20)),
    ("robust Mahalanobis", lambda i: MahalanobisDetector()),
]


def test_detector_ablation(benchmark, ecg200_substitute):
    mfd, labels, _ = ecg200_substitute
    state = MappedDetectorMethod("iforest").prepare(mfd, random_state=0)
    features = state["features"]
    splits = [
        contaminated_split(labels, 0.15, train_fraction=0.7, random_state=seed)
        for seed in range(5)
    ]

    def evaluate_all():
        results = {}
        for name, factory in DETECTORS:
            aucs = []
            for i, split in enumerate(splits):
                train, test = _robust_standardize(
                    features[split.train], features[split.test]
                )
                detector = factory(i)
                detector.fit(train)
                aucs.append(roc_auc(detector.score_samples(test), labels[split.test]))
            results[name] = (float(np.mean(aucs)), float(np.std(aucs)))
        return results

    results = benchmark.pedantic(evaluate_all, rounds=1, iterations=1)

    rows = [[name, f"{m:.3f} ± {s:.3f}"] for name, (m, s) in results.items()]
    print_table(
        "Ablation: detector head on curvature features (c=0.15)",
        ["detector", "AUC"],
        rows,
    )

    # The gamma fix must justify itself under contamination.
    assert results["OCSVM gamma=0.05"][0] >= results["OCSVM gamma=scale"][0] - 0.02
    for name, (mean_auc, _) in results.items():
        assert mean_auc > 0.5, name
