"""Figure 3 reproduction: AUC vs. training contamination level.

Paper protocol (Sec. 4.1): ECG data augmented to bivariate MFD by
squaring, four methods — Dir.out, FUNTA, iFor(Curvmap), OCSVM(Curvmap) —
contamination levels c in {5, 10, 15, 20, 25}%, repeated random splits,
mean ± std test AUC per (method, c).

Expected shape (paper Fig. 3): the two Curvmap methods dominate the two
depth baselines; OCSVM(Curvmap) degrades as c grows (the ν-tuning
difficulty the paper describes); Dir.out is flat in c.

Run with ``REPRO_FIG3_REPS=50`` for the paper's full repetition count.
"""

import numpy as np
import pytest

from benchmarks.conftest import FIG3_REPS, print_table
from repro.core.methods import default_methods
from repro.evaluation.experiment import (
    PAPER_CONTAMINATION_LEVELS,
    run_contamination_experiment,
)


def test_fig3_report(benchmark, ecg200_substitute):
    """Print the Figure 3 series and assert the paper's qualitative shape."""
    mfd, labels, _ = ecg200_substitute

    def run_experiment():
        return run_contamination_experiment(
            mfd,
            labels,
            default_methods(),
            contamination_levels=PAPER_CONTAMINATION_LEVELS,
            n_repetitions=FIG3_REPS,
            train_fraction=0.7,
            random_state=7,
        )

    table = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    levels = table.contamination_levels
    rows = []
    for method in table.methods:
        _, means, stds = table.series(method)
        rows.append(
            [method] + [f"{m:.3f} ± {s:.3f}" for m, s in zip(means, stds)]
        )
    print_table(
        f"Figure 3: AUC vs contamination ({FIG3_REPS} repetitions)",
        ["method"] + [f"c={c:.2f}" for c in levels],
        rows,
    )

    # Shape assertions (who wins, robustness, OCSVM degradation).
    for c in levels:
        best_baseline = max(table.mean("Dir.out", c), table.mean("FUNTA", c))
        best_geometric = max(
            table.mean("iFor(Curvmap)", c), table.mean("OCSVM(Curvmap)", c)
        )
        assert best_geometric > best_baseline - 0.02, (
            f"geometric methods should lead at c={c}"
        )
    # OCSVM degrades as c grows (paper Sec. 4.3).
    assert table.mean("OCSVM(Curvmap)", 0.05) > table.mean("OCSVM(Curvmap)", 0.25)
    # Dir.out is roughly flat in c.
    dirout = [table.mean("Dir.out", c) for c in levels]
    assert max(dirout) - min(dirout) < 0.08
    # Everything lives in the paper's plotted band.
    for method in table.methods:
        for c in levels:
            assert 0.55 < table.mean(method, c) <= 1.0


def test_fig3_single_cell_runtime(benchmark, ecg200_substitute):
    """Time one (method, split) evaluation — the harness's unit of work."""
    mfd, labels, _ = ecg200_substitute
    method = default_methods()[2]  # iFor(Curvmap)
    state = method.prepare(mfd, random_state=0)
    from repro.evaluation.splits import contaminated_split

    split = contaminated_split(labels, 0.15, train_fraction=0.7, random_state=0)

    def run_once():
        return method.fit_score(state, split.train, split.test, random_state=1)

    scores = benchmark(run_once)
    assert scores.shape == (len(split.test),)
