"""Ablation A2 (DESIGN.md §6): the smoothing step.

The paper argues (Sec. 2) that the functional approximation step is what
makes derivative evaluation — and hence the curvature — accurate.  This
ablation sweeps the smoothing weight λ and the basis size, and compares
against bypassing the basis entirely (finite differences on raw noisy
samples), on the ECG workload.
"""

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.core.methods import MappedDetectorMethod, _robust_standardize
from repro.detectors import IsolationForest
from repro.evaluation.metrics import roc_auc
from repro.evaluation.splits import contaminated_split
from repro.geometry.mappings import CurvatureMapping


def _evaluate(features, labels, splits):
    aucs = []
    for i, split in enumerate(splits):
        train, test = _robust_standardize(features[split.train], features[split.test])
        detector = IsolationForest(n_estimators=200, random_state=i)
        detector.fit(train)
        aucs.append(roc_auc(detector.score_samples(test), labels[split.test]))
    return float(np.mean(aucs)), float(np.std(aucs))


def test_smoothing_ablation(benchmark, ecg200_substitute):
    mfd, labels, _ = ecg200_substitute
    splits = [
        contaminated_split(labels, 0.15, train_fraction=0.7, random_state=seed)
        for seed in range(5)
    ]

    def evaluate_all():
        results = {}
        # (a) lambda sweep at the default basis.
        for lam in (0.0, 1e-6, 1e-4, 1e-2):
            method = MappedDetectorMethod("iforest", smoothing=lam)
            state = method.prepare(mfd, random_state=0)
            results[f"basis fit, lambda={lam:g}"] = _evaluate(
                state["features"], labels, splits
            )
        # (b) basis-size sweep at the default lambda.
        for size in (8, 16, 40):
            method = MappedDetectorMethod("iforest", n_basis=size)
            state = method.prepare(mfd, random_state=0)
            results[f"basis fit, L={size}"] = _evaluate(
                state["features"], labels, splits
            )
        # (c) no functional approximation: finite differences on raw data.
        mapped = CurvatureMapping().transform_grid(mfd)
        raw_features = np.sign(mapped.values) * np.log1p(np.abs(mapped.values))
        results["raw finite differences"] = _evaluate(raw_features, labels, splits)
        return results

    results = benchmark.pedantic(evaluate_all, rounds=1, iterations=1)

    rows = [[name, f"{m:.3f} ± {s:.3f}"] for name, (m, s) in results.items()]
    print_table(
        "Ablation A2: smoothing (iFor(Curvmap), c=0.15)", ["configuration", "AUC"], rows
    )

    # The paper's point: spline smoothing beats raw finite differences.
    best_basis = max(m for name, (m, _) in results.items() if name.startswith("basis"))
    assert best_basis > results["raw finite differences"][0]
