"""Per-outlier-class bench (DESIGN.md A3) — grounds the paper's Sec. 4.3.

The paper *deduces* from Figure 3 that the abnormal ECG class contains
isolated, persistent-shape and mixed-type outliers, because the
curvature methods beat baselines that are specialized for one class
each.  This bench makes that argument direct: each synthetic population
contains exactly one outlier class of the Hubert et al. taxonomy, and
each method is scored per class.
"""

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.core.methods import DirOutMethod, FuntaMethod, MappedDetectorMethod
from repro.data import OUTLIER_CLASSES, make_taxonomy_dataset
from repro.evaluation.metrics import roc_auc


def test_taxonomy_report(benchmark):
    # OCSVM uses the default gamma="scale" here: the kernel width is
    # workload dependent (the ECG benches fix gamma=0.05 for that
    # feature scale; on these synthetic populations "scale" is correct —
    # see bench_ablation_detector for the ECG gamma sweep).
    methods = [
        DirOutMethod(),
        FuntaMethod(),
        MappedDetectorMethod("iforest", n_estimators=200),
        MappedDetectorMethod("ocsvm"),
    ]

    def evaluate_all():
        results = {}
        for kind in OUTLIER_CLASSES:
            data, labels = make_taxonomy_dataset(
                kind, n_inliers=60, n_outliers=8, random_state=11
            )
            idx = np.arange(data.n_samples)
            for method in methods:
                scores = method.score_dataset(data, idx, idx, random_state=3)
                results[(kind, method.name)] = roc_auc(scores, labels)
        return results

    results = benchmark.pedantic(evaluate_all, rounds=1, iterations=1)

    method_names = [m.name for m in methods]
    rows = []
    for kind in OUTLIER_CLASSES:
        rows.append([kind] + [f"{results[(kind, name)]:.3f}" for name in method_names])
    print_table(
        "Per-class detection AUC (taxonomy populations)",
        ["outlier class"] + method_names,
        rows,
    )

    # The paper's core claims, now per class:
    # (1) correlation outliers (typical marginals) are found by the
    #     geometric methods...
    assert results[("correlation", "iFor(Curvmap)")] > 0.9
    # (2) mixed-type outliers are well discriminated by the curvature
    #     mapping (the Sec. 4.3 conclusion).
    assert results[("mixed", "iFor(Curvmap)")] > 0.9
    # (3) Dir.out handles magnitude outliers (its design target).
    assert results[("magnitude_isolated", "Dir.out")] > 0.9
