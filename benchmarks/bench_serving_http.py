"""Serving-HTTP bench: the async front door under sustained and overload rates.

Starts a :class:`~repro.serving.ScoringServer` fronting the fitted
Fig. 3 pipeline (iforest over curvature features, loaded zero-copy from
an uncompressed manifest) and drives it over localhost in two phases:

* **sustained** — closed-loop keep-alive clients measure real
  micro-batched ``POST /submit`` throughput and latency percentiles;
  the gate asserts the front door sustains >= the floor in curves/s
  (1k/s full, a softer floor in the quick CI configuration, where the
  runner shares cores with the event loop and both phases are short).
* **overload** — the scorer is throttled to a known flush capacity and
  open-loop arrivals are scheduled at 5x that capacity against a small
  high-water mark; the gate asserts the backpressure contract: excess
  arrivals shed with 429 *before* queueing, outstanding work never
  exceeds the high-water mark plus the concurrent-admission window,
  and every accepted request resolves (no dropped tickets, no errors).

The machine-readable record is appended to the perf trajectory
``BENCH_serving_http.json`` at the repo root (same git-sha schema as
``BENCH_depth_kernels.json``).  Set ``REPRO_BENCH_QUICK=1`` for the CI
smoke configuration.
"""

import asyncio
import os
import tempfile
from pathlib import Path

from repro.perf import (
    _fit_fig3_pipeline,
    _http_post_json,
    append_bench_record,
    format_serving_http_rows,
    run_serving_http_bench,
)

from benchmarks.conftest import BENCH_SEED, print_table

QUICK = os.environ.get("REPRO_BENCH_QUICK", "0") == "1"

BATCH_CURVES = 32
SUSTAINED_REQUESTS = 60 if QUICK else 300
OVERLOAD_REQUESTS = 120 if QUICK else 400
CONCURRENCY = 8 if QUICK else 12
SUSTAINED_FLOOR = 400.0 if QUICK else 1000.0

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def test_serving_http_front_door():
    record = run_serving_http_bench(
        batch_curves=BATCH_CURVES,
        sustained_requests=SUSTAINED_REQUESTS,
        overload_requests=OVERLOAD_REQUESTS,
        concurrency=CONCURRENCY,
        seed=BENCH_SEED,
        quick=QUICK,
    )
    append_bench_record(os.path.join(_REPO_ROOT, "BENCH_serving_http.json"), record)

    headers, rows = format_serving_http_rows(record)
    print_table(
        f"Serving HTTP — batch={BATCH_CURVES}, sustained={SUSTAINED_REQUESTS} req "
        f"x {CONCURRENCY} clients, overload=5x capacity",
        headers,
        rows,
    )

    # Record schema: downstream tooling reads these keys.
    for key in ("schema_version", "bench", "git_sha", "quick", "workload", "results"):
        assert key in record, f"missing record key {key!r}"
    assert record["bench"] == "serving_http"
    sustained, overload = record["results"]
    for key in ("curves_per_s", "p50_ms", "p95_ms", "p99_ms"):
        assert key in sustained, f"missing sustained key {key!r}"
    for key in ("shed", "max_outstanding", "high_water", "arrival_curves_per_s"):
        assert key in overload, f"missing overload key {key!r}"

    # Sustained gate: every request scored, finite, at >= the floor.
    assert sustained["errors"] == [], f"sustained-phase errors: {sustained['errors']}"
    assert sustained["accepted"] == SUSTAINED_REQUESTS
    assert sustained["curves_per_s"] >= SUSTAINED_FLOOR, (
        f"front door sustained {sustained['curves_per_s']:,.0f} curves/s, "
        f"below the {SUSTAINED_FLOOR:,.0f} floor"
    )

    # Overload gate: the 5x arrival rate sheds with 429s instead of
    # growing the queue, and every accepted ticket resolves cleanly.
    assert overload["errors"] == [], f"overload-phase errors: {overload['errors']}"
    assert overload["shed"] > 0, "no 429s under 5x-capacity arrivals"
    assert overload["accepted"] + overload["shed"] == overload["requests"]
    admission_window = CONCURRENCY * BATCH_CURVES
    assert overload["max_outstanding"] <= overload["high_water"] + admission_window, (
        f"queue grew to {overload['max_outstanding']} curves, past the "
        f"{overload['high_water']}-curve high-water mark"
    )
    assert overload["failed_requests"] == 0


async def _http_get(host, port, path):
    """Minimal asyncio HTTP/1.1 GET; returns (status, headers, text body)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(
            f"GET {path} HTTP/1.1\r\nHost: {host}\r\n"
            f"Connection: close\r\n\r\n".encode("ascii")
        )
        await writer.drain()
        status = int((await reader.readline()).split(b" ", 2)[1])
        headers = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            key, _, value = line.decode("latin-1").partition(":")
            headers[key.strip().lower()] = value.strip()
        length = int(headers.get("content-length", 0))
        body = (await reader.readexactly(length)).decode("utf-8") if length else ""
        return status, headers, body
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except OSError:
            pass


def _parse_prometheus(text: str) -> dict[str, float]:
    """Exposition text → {sample name with labels: value}; ignores comments."""
    samples: dict[str, float] = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        name, _, value = line.rpartition(" ")
        samples[name] = float(value)
    return samples


def test_metrics_scrape_smoke():
    """The ISSUE acceptance check: one /metrics scrape, taken while the
    server has live traffic behind it, must expose queue depth, shed
    count, per-route latency histograms, and the engine cache hit rate —
    and every scoring response must carry an ``X-Trace-Id`` header.
    """
    from repro.serving.persist import save_pipeline
    from repro.serving.server import ScoringServer, load_service

    pipeline, train = _fit_fig3_pipeline(BENCH_SEED)
    batch = {
        "pipeline": "fig3_iforest",
        "values": train.values[:BATCH_CURVES].tolist(),
        "grid": train.grid.tolist(),
    }

    async def drive() -> tuple[dict, str, dict]:
        with tempfile.TemporaryDirectory() as tmp:
            bundle = Path(tmp) / "fig3_iforest"
            save_pipeline(pipeline, bundle, compressed=False)
            service = load_service({"fig3_iforest": bundle}, mmap=True)
            # high_water below the batch size: the /submit below must shed.
            server = ScoringServer(service, high_water=BATCH_CURVES // 2)
            await server.start()
            try:
                for _ in range(2):  # second /score hits the factorization cache
                    status, body = await _http_post_json(
                        "127.0.0.1", server.port, "/score", batch
                    )
                    assert status == 200, body
                status, body = await _http_post_json(
                    "127.0.0.1", server.port, "/submit", batch
                )
                assert status == 429, f"expected a shed, got {status}: {body}"
                m_status, m_headers, m_body = await _http_get(
                    "127.0.0.1", server.port, "/metrics"
                )
                assert m_status == 200
                return m_headers, m_body, service.stats()
            finally:
                await server.close()

    headers, text, stats = asyncio.run(drive())

    assert headers["content-type"].startswith("text/plain; version=0.0.4")
    assert headers.get("x-trace-id"), "no X-Trace-Id on the /metrics response"

    samples = _parse_prometheus(text)
    assert samples, "empty /metrics exposition"

    # Queue depth gauge — idle again after the shed, and the single
    # definition the service's stats() view reads.
    assert samples["serving_queue_depth_curves"] == stats["pending_curves"]
    # Shed counter saw the 429.
    assert samples["serving_shed_requests_total"] >= 1
    # Per-route latency histogram, keyed by route + pipeline label.
    score_counts = [
        value for name, value in samples.items()
        if name.startswith("serving_request_seconds_count")
        and 'route="/score"' in name
    ]
    assert score_counts and sum(score_counts) >= 2, (
        "no per-route latency series for /score in the scrape"
    )
    # Cache hit rate: the second /score reused the factorization.
    hits = sum(
        value for name, value in samples.items()
        if name.startswith("engine_cache_hits_total")
    )
    assert hits >= 1, "no engine cache hits recorded while serving traffic"
    stats_hits = sum(
        value for key, value in stats["cache"].items() if key.endswith("_hits")
    )
    assert hits == stats_hits, "stats() and /metrics disagree on cache hits"
