"""Serving-HTTP bench: the async front door under sustained and overload rates.

Starts a :class:`~repro.serving.ScoringServer` fronting the fitted
Fig. 3 pipeline (iforest over curvature features, loaded zero-copy from
an uncompressed manifest) and drives it over localhost in two phases:

* **sustained** — closed-loop keep-alive clients measure real
  micro-batched ``POST /submit`` throughput and latency percentiles;
  the gate asserts the front door sustains >= the floor in curves/s
  (1k/s full, a softer floor in the quick CI configuration, where the
  runner shares cores with the event loop and both phases are short).
* **overload** — the scorer is throttled to a known flush capacity and
  open-loop arrivals are scheduled at 5x that capacity against a small
  high-water mark; the gate asserts the backpressure contract: excess
  arrivals shed with 429 *before* queueing, outstanding work never
  exceeds the high-water mark plus the concurrent-admission window,
  and every accepted request resolves (no dropped tickets, no errors).

The machine-readable record is appended to the perf trajectory
``BENCH_serving_http.json`` at the repo root (same git-sha schema as
``BENCH_depth_kernels.json``).  Set ``REPRO_BENCH_QUICK=1`` for the CI
smoke configuration.
"""

import os

from repro.perf import (
    append_bench_record,
    format_serving_http_rows,
    run_serving_http_bench,
)

from benchmarks.conftest import BENCH_SEED, print_table

QUICK = os.environ.get("REPRO_BENCH_QUICK", "0") == "1"

BATCH_CURVES = 32
SUSTAINED_REQUESTS = 60 if QUICK else 300
OVERLOAD_REQUESTS = 120 if QUICK else 400
CONCURRENCY = 8 if QUICK else 12
SUSTAINED_FLOOR = 400.0 if QUICK else 1000.0

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def test_serving_http_front_door():
    record = run_serving_http_bench(
        batch_curves=BATCH_CURVES,
        sustained_requests=SUSTAINED_REQUESTS,
        overload_requests=OVERLOAD_REQUESTS,
        concurrency=CONCURRENCY,
        seed=BENCH_SEED,
        quick=QUICK,
    )
    append_bench_record(os.path.join(_REPO_ROOT, "BENCH_serving_http.json"), record)

    headers, rows = format_serving_http_rows(record)
    print_table(
        f"Serving HTTP — batch={BATCH_CURVES}, sustained={SUSTAINED_REQUESTS} req "
        f"x {CONCURRENCY} clients, overload=5x capacity",
        headers,
        rows,
    )

    # Record schema: downstream tooling reads these keys.
    for key in ("schema_version", "bench", "git_sha", "quick", "workload", "results"):
        assert key in record, f"missing record key {key!r}"
    assert record["bench"] == "serving_http"
    sustained, overload = record["results"]
    for key in ("curves_per_s", "p50_ms", "p95_ms", "p99_ms"):
        assert key in sustained, f"missing sustained key {key!r}"
    for key in ("shed", "max_outstanding", "high_water", "arrival_curves_per_s"):
        assert key in overload, f"missing overload key {key!r}"

    # Sustained gate: every request scored, finite, at >= the floor.
    assert sustained["errors"] == [], f"sustained-phase errors: {sustained['errors']}"
    assert sustained["accepted"] == SUSTAINED_REQUESTS
    assert sustained["curves_per_s"] >= SUSTAINED_FLOOR, (
        f"front door sustained {sustained['curves_per_s']:,.0f} curves/s, "
        f"below the {SUSTAINED_FLOOR:,.0f} floor"
    )

    # Overload gate: the 5x arrival rate sheds with 429s instead of
    # growing the queue, and every accepted ticket resolves cleanly.
    assert overload["errors"] == [], f"overload-phase errors: {overload['errors']}"
    assert overload["shed"] > 0, "no 429s under 5x-capacity arrivals"
    assert overload["accepted"] + overload["shed"] == overload["requests"]
    admission_window = CONCURRENCY * BATCH_CURVES
    assert overload["max_outstanding"] <= overload["high_water"] + admission_window, (
        f"queue grew to {overload['max_outstanding']} curves, past the "
        f"{overload['high_water']}-curve high-water mark"
    )
    assert overload["failed_requests"] == 0
