"""Serving-throughput bench: cache-backed batch scoring vs naive scoring.

Measures the inference path added by :mod:`repro.serving` on simulated
traffic — many small curve batches arriving on one known measurement
grid.  Three regimes over the same traffic:

* **naive** — refit-free scoring *without* cross-batch cache reuse: the
  factorization cache is dropped before every batch, so each batch
  rebuilds the design matrix, the roughness penalty and the Cholesky
  factor (what per-request scoring costs without a serving layer);
* **cached** — one :class:`~repro.serving.ScoringService` context kept
  across batches: after the first batch, scoring skips refactorization
  entirely (asserted on the cache counters, not just timed);
* **micro-batched** — the service's submit/flush queue on top of the
  shared cache, amortizing per-batch fixed costs across requests.

Set ``REPRO_BENCH_QUICK=1`` to shrink the workload for CI smoke runs.
"""

import os
import time

import numpy as np

from repro.core.pipeline import GeometricOutlierPipeline
from repro.data import make_taxonomy_dataset
from repro.detectors import IsolationForest
from repro.fda.fdata import MFDataGrid
from repro.serving import ScoringService, save_pipeline

from benchmarks.conftest import print_table

QUICK = os.environ.get("REPRO_BENCH_QUICK", "0") == "1"

N_BATCHES = 40 if QUICK else 200
BATCH_CURVES = 5 if QUICK else 10


def _traffic(tmp_path):
    """Fit + persist a pipeline; synthesize batches on the training grid."""
    train, _ = make_taxonomy_dataset(
        "correlation", n_inliers=60, n_outliers=6, random_state=0
    )
    pipeline = GeometricOutlierPipeline(
        IsolationForest(n_estimators=100, random_state=0), n_basis=15
    )
    pipeline.fit(train)
    model_dir = tmp_path / "model"
    save_pipeline(pipeline, model_dir)
    rng = np.random.default_rng(1)
    batches = []
    for _ in range(N_BATCHES):
        base = train.values[rng.integers(0, train.n_samples, size=BATCH_CURVES)]
        batches.append(
            MFDataGrid(base + 0.02 * rng.standard_normal(base.shape), train.grid)
        )
    return model_dir, batches


def test_serving_throughput(tmp_path):
    model_dir, batches = _traffic(tmp_path)
    n_curves = sum(b.n_samples for b in batches)

    # Naive: same pipeline, but no artifact survives between batches.
    naive = ScoringService()
    naive.load("m", model_dir)
    start = time.perf_counter()
    naive_scores = []
    for batch in batches:
        naive.context.cache.clear()
        naive_scores.append(naive.score("m", batch))
    naive_time = time.perf_counter() - start
    naive_factorizations = N_BATCHES  # one per cleared-cache batch, by construction

    # Cached: one serving context across the whole traffic.
    cached = ScoringService()
    cached.load("m", model_dir)
    warm_start_stats = None
    start = time.perf_counter()
    cached_scores = []
    for i, batch in enumerate(batches):
        cached_scores.append(cached.score("m", batch))
        if i == 0:
            warm_start_stats = cached.context.cache.stats.copy()
    cached_time = time.perf_counter() - start
    warm_delta = cached.context.cache.stats - warm_start_stats
    # The serving claim, on counters: known grid => zero refactorization.
    assert warm_delta.factorizations == 0
    assert warm_delta.design_builds == 0
    assert warm_delta.factorization_hits >= N_BATCHES - 1

    # Micro-batched: submit everything, flush once.
    micro = ScoringService(max_pending=10 * n_curves)
    micro.load("m", model_dir)
    start = time.perf_counter()
    tickets = [micro.submit("m", batch) for batch in batches]
    micro.flush()
    micro_time = time.perf_counter() - start
    micro_scores = np.concatenate([t.result() for t in tickets])

    # All three regimes score identically.
    flat_naive = np.concatenate(naive_scores)
    flat_cached = np.concatenate(cached_scores)
    np.testing.assert_allclose(flat_cached, flat_naive, atol=1e-12)
    np.testing.assert_allclose(micro_scores, flat_naive, atol=1e-12)

    rows = [
        ["naive (no cache reuse)", f"{naive_time:.3f}",
         f"{n_curves / naive_time:,.0f}", str(naive_factorizations)],
        ["cached (shared context)", f"{cached_time:.3f}",
         f"{n_curves / cached_time:,.0f}", "1"],
        ["micro-batched", f"{micro_time:.3f}",
         f"{n_curves / micro_time:,.0f}", "1"],
    ]
    print_table(
        f"Serving throughput — {N_BATCHES} batches x {BATCH_CURVES} curves",
        ["regime", "seconds", "curves/sec", "factorizations"],
        rows,
    )
    # The headline: cache reuse beats per-batch refactorization.
    assert cached_time < naive_time, (
        f"cached scoring ({cached_time:.3f}s) should beat naive "
        f"({naive_time:.3f}s)"
    )


def test_plan_layer_dispatch_overhead(tmp_path):
    """Plan smoke: spec-compiled dispatch must stay within 5% of direct calls.

    The unified scoring-plan layer routes every entry point through
    ``compile_plan`` → ``ScoringPlan``; this gate pins its dispatch
    cost on the serving traffic shape — same pipeline, same batches,
    once called directly and once through a bound ``PipelinePlan``.
    Scores must also be identical (dispatch is pure indirection).
    """
    from repro.plan import WorkloadSpec, plan_for_pipeline
    from repro.serving import load_pipeline

    model_dir, batches = _traffic(tmp_path)
    pipeline = load_pipeline(model_dir)
    plan = plan_for_pipeline(pipeline, WorkloadSpec(mode="batch"))

    # Warm the factorization cache so both timed loops do identical work.
    pipeline.score_samples(batches[0])

    # Best-of-5 with the two paths interleaved inside each repeat, so a
    # load spike on a shared CI runner hits both measurements alike.
    repeats = 5
    direct_time = plan_time = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        direct_scores = [pipeline.score_samples(batch) for batch in batches]
        direct_time = min(direct_time, time.perf_counter() - start)

        start = time.perf_counter()
        plan_scores = [plan.score(batch) for batch in batches]
        plan_time = min(plan_time, time.perf_counter() - start)

    np.testing.assert_array_equal(
        np.concatenate(plan_scores), np.concatenate(direct_scores)
    )
    overhead = plan_time / direct_time - 1.0
    print_table(
        f"Plan dispatch overhead — {len(batches)} batches x {BATCH_CURVES} curves",
        ["path", f"seconds (best of {repeats})", "overhead"],
        [
            ["direct pipeline calls", f"{direct_time:.4f}", "-"],
            ["plan-layer dispatch", f"{plan_time:.4f}", f"{overhead:+.2%}"],
        ],
    )
    # 20 ms absolute slack on top of the 5% band: both loops do the same
    # numerical work, so on sub-second quick-mode runs the ratio alone
    # would gate on scheduler noise rather than real dispatch cost.  A
    # genuine regression (per-call validation or object churn on the hot
    # path) clears both terms easily.
    assert plan_time <= direct_time * 1.05 + 0.02, (
        f"plan-layer dispatch ({plan_time:.4f}s) exceeds 5% overhead vs "
        f"direct pipeline calls ({direct_time:.4f}s): {overhead:+.2%}"
    )
