"""Streaming bench: incremental reference updates vs naive per-arrival refit.

Primes a sliding window, then pushes single-curve arrivals through
:class:`~repro.streaming.StreamingDetector` twice — once with the
incremental reference-statistic caches (tangent-angle ring, sorted
lanes) and once with ``incremental=False``, which rebuilds every
reference statistic from the full window on each arrival via the batch
entry points.  Scores are asserted identical before timing (a wrong
cache can never post a fast number), the machine-readable record is
appended to the perf trajectory ``BENCH_streaming.json`` at the repo
root (same git-sha schema as ``BENCH_depth_kernels.json``), and the CI
gate asserts that the incremental update beats the naive refit for
every gated case.

The sharded tier rides along: the same chunked stream is pushed through
a 2-shard :class:`~repro.streaming.ShardedStreamingDetector` with score
equivalence asserted before timing (always), and ``shard_speedup > 1``
gated only on machines with >= 2 cores.  A shared-memory leak check
runs the sharded process backend and asserts every segment is released.

Set ``REPRO_BENCH_QUICK=1`` for the CI smoke configuration; the default
run uses a larger workload.  ``repro bench-stream`` exposes the same
measurement from the CLI.
"""

import os

import numpy as np

from repro.perf import append_bench_record, format_streaming_rows, run_streaming_bench

from benchmarks.conftest import BENCH_SEED, print_table

QUICK = os.environ.get("REPRO_BENCH_QUICK", "0") == "1"

WINDOW = 128 if QUICK else 256
M = 100 if QUICK else 150
ARRIVALS = 150 if QUICK else 300
REPEATS = 2 if QUICK else 3
SHARDS = 2

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def test_streaming_incremental_beats_refit():
    record = run_streaming_bench(
        window=WINDOW, m=M, arrivals=ARRIVALS, seed=BENCH_SEED,
        repeats=REPEATS, quick=QUICK, shards=SHARDS,
    )
    append_bench_record(os.path.join(_REPO_ROOT, "BENCH_streaming.json"), record)

    headers, rows = format_streaming_rows(record)
    print_table(
        f"Streaming — window={WINDOW}, m={M}, arrivals={ARRIVALS} "
        f"(incremental vs refit; {SHARDS}-shard tier vs single stream)",
        headers,
        rows,
    )

    # The CI gate: an incremental cache that fails to beat rebuilding
    # the same statistics from scratch is a regression, full stop.
    for r in record["results"]:
        if r["gated"] and r.get("shards", 1) == 1:
            assert r["incremental_s"] < r["naive_s"], (
                f"{r['case']}: incremental ({r['incremental_s']:.4f}s) slower "
                f"than naive refit ({r['naive_s']:.4f}s)"
            )

    # Sharded gate.  Score equivalence with the single stream was
    # already asserted inside run_streaming_bench before timing, on
    # every machine.  The throughput half only means something with
    # real parallelism, so it is conditional on core count.
    sharded = [r for r in record["results"] if r.get("shards", 1) > 1]
    assert sharded, "sharded tier missing from bench record"
    if (os.cpu_count() or 1) >= 2:
        for r in sharded:
            if r["gated"]:
                assert r["shard_speedup"] > 1.0, (
                    f"{r['case']}: {SHARDS}-shard tier "
                    f"({r['incremental_s']:.4f}s) failed to beat the single "
                    f"stream ({r['naive_s']:.4f}s) on a multi-core machine"
                )


def test_sharded_process_backend_releases_shared_memory():
    """The sharded process backend must leave no live shared segments."""
    from repro.engine.shared import live_segments
    from repro.fda.fdata import MFDataGrid
    from repro.streaming import ShardedStreamingDetector

    rng = np.random.default_rng(BENCH_SEED)
    m, window, chunk = 40, 32, 8
    grid = np.linspace(0.0, 1.0, m)
    detector = ShardedStreamingDetector(
        "funta", shards=2, capacity=window, min_reference=2, backend="process"
    )
    try:
        detector.prime(MFDataGrid(rng.standard_normal((window, m, 1)), grid))
        for _ in range(3):
            batch = MFDataGrid(rng.standard_normal((chunk, m, 1)), grid)
            detector.process(batch)
    finally:
        detector.close()
    leaked = live_segments()
    assert not leaked, f"sharded process backend leaked shared segments: {leaked}"
