"""Streaming bench: incremental reference updates vs naive per-arrival refit.

Primes a sliding window, then pushes single-curve arrivals through
:class:`~repro.streaming.StreamingDetector` twice — once with the
incremental reference-statistic caches (tangent-angle ring, sorted
lanes) and once with ``incremental=False``, which rebuilds every
reference statistic from the full window on each arrival via the batch
entry points.  Scores are asserted identical before timing (a wrong
cache can never post a fast number), the machine-readable record is
appended to the perf trajectory ``BENCH_streaming.json`` at the repo
root (same git-sha schema as ``BENCH_depth_kernels.json``), and the CI
gate asserts that the incremental update beats the naive refit for
every gated case.

Set ``REPRO_BENCH_QUICK=1`` for the CI smoke configuration; the default
run uses a larger workload.  ``repro bench-stream`` exposes the same
measurement from the CLI.
"""

import os

from repro.perf import append_bench_record, format_streaming_rows, run_streaming_bench

from benchmarks.conftest import BENCH_SEED, print_table

QUICK = os.environ.get("REPRO_BENCH_QUICK", "0") == "1"

WINDOW = 128 if QUICK else 256
M = 100 if QUICK else 150
ARRIVALS = 150 if QUICK else 300
REPEATS = 2 if QUICK else 3

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def test_streaming_incremental_beats_refit():
    record = run_streaming_bench(
        window=WINDOW, m=M, arrivals=ARRIVALS, seed=BENCH_SEED,
        repeats=REPEATS, quick=QUICK,
    )
    append_bench_record(os.path.join(_REPO_ROOT, "BENCH_streaming.json"), record)

    headers, rows = format_streaming_rows(record)
    print_table(
        f"Streaming — window={WINDOW}, m={M}, arrivals={ARRIVALS} "
        "(incremental update vs naive refit per arrival)",
        headers,
        rows,
    )

    # The CI gate: an incremental cache that fails to beat rebuilding
    # the same statistics from scratch is a regression, full stop.
    for r in record["results"]:
        if r["gated"]:
            assert r["incremental_s"] < r["naive_s"], (
                f"{r['case']}: incremental ({r['incremental_s']:.4f}s) slower "
                f"than naive refit ({r['naive_s']:.4f}s)"
            )
