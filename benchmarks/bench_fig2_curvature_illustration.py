"""Figure 2 reproduction: the curvature mapping illustration.

The paper's Figure 2 explains curvature as the reciprocal radius of the
tangent circle: slow direction change = large radius = small curvature.
This bench reproduces the quantitative content on analytic curves with
known curvature, exercising the full smoothing + Eq. 5 chain:

* circles of radius r  -> kappa = 1/r everywhere,
* a straight line      -> kappa = 0,
* an ellipse (a, b)    -> kappa in [b/a^2, a/b^2],

each fitted from sampled noisy points exactly like real data would be.
"""

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.fda.basis import BSplineBasis
from repro.fda.fdata import MFDataGrid
from repro.fda.smoothing import smooth_mfd
from repro.geometry.mappings import CurvatureMapping


def _fit_curvature(x, y, grid):
    mfd = MFDataGrid(np.stack([x, y], axis=2)[None] if x.ndim == 1 else np.stack([x, y], axis=2), grid)
    if mfd.values.ndim != 3:
        raise AssertionError
    fit, _ = smooth_mfd(mfd, lambda dom: BSplineBasis(dom, 25), smoothing=1e-6)
    mapped = CurvatureMapping(regularization=0.0).transform(fit, grid)
    return mapped.values[:, 10:-10]


def test_fig2_report(benchmark):
    rng = np.random.default_rng(0)
    grid = np.linspace(0.0, 2.0 * np.pi, 201)
    rows = []

    def compute_all():
        results = {}
        for radius in (0.5, 1.0, 2.0, 4.0):
            x = radius * np.cos(grid) + 0.002 * rng.standard_normal(201)
            y = radius * np.sin(grid) + 0.002 * rng.standard_normal(201)
            kappa = _fit_curvature(x[None], y[None], grid)
            results[f"circle r={radius}"] = (1.0 / radius, kappa.mean())
        # Straight line.
        x = grid.copy()
        y = 2.0 * grid + 1.0
        kappa = _fit_curvature(x[None], y[None], grid)
        results["line"] = (0.0, kappa.mean())
        # Ellipse a=2, b=1: curvature range [b/a^2, a/b^2] = [0.25, 2].
        x = 2.0 * np.cos(grid)
        y = np.sin(grid)
        kappa = _fit_curvature(x[None], y[None], grid)
        results["ellipse a=2 b=1 (min)"] = (0.25, kappa.min())
        results["ellipse a=2 b=1 (max)"] = (2.0, kappa.max())
        return results

    results = benchmark.pedantic(compute_all, rounds=1, iterations=1)

    for name, (expected, measured) in results.items():
        rows.append([name, f"{expected:.3f}", f"{measured:.3f}"])
    print_table(
        "Figure 2: curvature = 1 / tangent-circle radius",
        ["curve", "analytic kappa", "measured kappa"],
        rows,
    )

    for name, (expected, measured) in results.items():
        assert measured == pytest.approx(expected, abs=0.05), name
