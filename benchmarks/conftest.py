"""Shared helpers for the benchmark/reproduction harness.

Every bench regenerates one figure (or ablation) of the paper and
prints the corresponding rows/series.  Scale is controlled by
environment variables so the default run stays laptop-fast while the
full paper protocol remains one flag away:

* ``REPRO_FIG3_REPS``  — repetitions per contamination level for the
  Figure 3 bench (default 15; the paper uses 50).
* ``REPRO_BENCH_SEED`` — master seed for dataset generation (default 7).
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.data import make_ecg_dataset, square_augment

FIG3_REPS = int(os.environ.get("REPRO_FIG3_REPS", "15"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "7"))


def print_table(title: str, headers: list[str], rows: list[list]) -> None:
    """Render a fixed-width table to stdout (captured by pytest -s)."""
    widths = [
        max(len(str(headers[j])), max((len(str(r[j])) for r in rows), default=0))
        for j in range(len(headers))
    ]
    line = "  ".join(str(h).ljust(widths[j]) for j, h in enumerate(headers))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(cell).ljust(widths[j]) for j, cell in enumerate(row)))


@pytest.fixture(scope="session")
def ecg200_substitute():
    """The ECG-200-sized substitute data set (133 normal / 67 abnormal)."""
    data, labels, tags = make_ecg_dataset(
        n_normal=133, n_abnormal=67, random_state=BENCH_SEED
    )
    return square_augment(data), np.asarray(labels), tags
