"""Performance bench P1 (DESIGN.md): runtime scaling of the components.

Times the pipeline stages with pytest-benchmark so regressions in the
numerics (B-spline evaluation, SMO, tree building, depth computation)
are visible.  These are proper repeated-timing benchmarks, unlike the
figure benches which run their workload once.

The engine benchmarks at the bottom measure the two scaling levers of
:mod:`repro.engine` on the Fig. 3 workload: factorization-cache reuse
(warm vs. cold method preparation) and the parallel repetition fan-out
(``n_jobs > 1`` vs. serial, with a bit-identity check).  Set
``REPRO_BENCH_QUICK=1`` to shrink the workloads for CI smoke runs.
"""

import os
import time

import numpy as np
import pytest

from repro.core.methods import MappedDetectorMethod, default_methods
from repro.core.pipeline import GeometricOutlierPipeline
from repro.data import make_ecg_dataset, square_augment
from repro.depth import dirout_scores, funta_outlyingness
from repro.detectors import IsolationForest, OneClassSVM
from repro.engine import ExecutionContext
from repro.evaluation.experiment import run_contamination_experiment
from repro.fda.basis import BSplineBasis
from repro.fda.fdata import FDataGrid
from repro.fda.smoothing import BasisSmoother

QUICK = os.environ.get("REPRO_BENCH_QUICK", "0") == "1"


@pytest.fixture(scope="module")
def ecg_small():
    data, labels, _ = make_ecg_dataset(n_normal=60, n_abnormal=20, random_state=1)
    return square_augment(data), labels


class TestSubstrateBenchmarks:
    def test_bspline_design_matrix(self, benchmark):
        basis = BSplineBasis((0.0, 1.0), n_basis=25)
        points = np.linspace(0, 1, 500)
        design = benchmark(basis.evaluate, points)
        assert design.shape == (500, 25)

    def test_bspline_second_derivative(self, benchmark):
        basis = BSplineBasis((0.0, 1.0), n_basis=25)
        points = np.linspace(0, 1, 500)
        design = benchmark(basis.evaluate, points, 2)
        assert design.shape == (500, 25)

    def test_batch_smoothing_100_curves(self, benchmark, rng_data=None):
        rng = np.random.default_rng(0)
        grid = np.linspace(0, 1, 85)
        data = FDataGrid(rng.standard_normal((100, 85)), grid)
        smoother = BasisSmoother(BSplineBasis((0.0, 1.0), 20), smoothing=1e-4)
        fit = benchmark(smoother.fit_grid, data)
        assert fit.n_samples == 100


class TestDetectorBenchmarks:
    def test_iforest_fit(self, benchmark):
        rng = np.random.default_rng(0)
        X = rng.standard_normal((200, 85))
        forest = benchmark(lambda: IsolationForest(random_state=0).fit(X))
        assert forest._psi == 200

    def test_iforest_score(self, benchmark):
        rng = np.random.default_rng(0)
        X = rng.standard_normal((200, 85))
        forest = IsolationForest(random_state=0).fit(X)
        scores = benchmark(forest.score_samples, X)
        assert scores.shape == (200,)

    def test_ocsvm_fit(self, benchmark):
        rng = np.random.default_rng(0)
        X = rng.standard_normal((200, 85))
        model = benchmark(lambda: OneClassSVM(nu=0.1).fit(X))
        assert model.support_vectors_.shape[0] >= 0.08 * 200


class TestBaselineBenchmarks:
    def test_funta_80_curves(self, benchmark, ecg_small):
        mfd, _ = ecg_small
        scores = benchmark.pedantic(
            funta_outlyingness, args=(mfd,), rounds=1, iterations=1
        )
        assert scores.shape == (80,)

    def test_dirout_80_curves(self, benchmark, ecg_small):
        mfd, _ = ecg_small
        scores = benchmark.pedantic(
            dirout_scores, args=(mfd,), kwargs={"random_state": 0}, rounds=1, iterations=1
        )
        assert scores.shape == (80,)


class TestPipelineBenchmark:
    def test_full_pipeline_fit_and_score(self, benchmark, ecg_small):
        mfd, _ = ecg_small
        def run():
            pipeline = GeometricOutlierPipeline(
                IsolationForest(random_state=0), n_basis=20
            )
            return pipeline.fit(mfd).score_samples(mfd)
        scores = benchmark.pedantic(run, rounds=2, iterations=1)
        assert scores.shape == (80,)


class TestEngineBenchmarks:
    """Cache-hit and parallel speedups of the shared execution engine."""

    CANDIDATES = (8, 12, 16) if QUICK else (8, 12, 16, 20, 25, 30)

    def test_prepare_cold_vs_warm_cache(self, ecg_small):
        """Method preparation (LOO-CV sweep + smoothing + mapping) against a
        cold vs. a pre-warmed factorization cache."""
        mfd, _ = ecg_small
        method = MappedDetectorMethod("iforest", n_basis=self.CANDIDATES)

        cold_ctx = ExecutionContext()
        start = time.perf_counter()
        method.prepare(mfd, random_state=0, context=cold_ctx)
        cold = time.perf_counter() - start

        start = time.perf_counter()
        method.prepare(mfd, random_state=0, context=cold_ctx)
        warm = time.perf_counter() - start

        stats = cold_ctx.cache.stats
        print(
            f"\nprepare: cold={cold * 1e3:.1f}ms warm={warm * 1e3:.1f}ms "
            f"speedup={cold / max(warm, 1e-9):.1f}x "
            f"(factorizations={stats.factorizations}, hits={stats.hits})"
        )
        # Every configuration was factorized exactly once, on the cold pass.
        assert stats.factorizations == len(self.CANDIDATES)
        assert warm < cold

    def test_warm_prepare_benchmark(self, benchmark, ecg_small):
        """Steady-state (fully cached) preparation cost for the sweep."""
        mfd, _ = ecg_small
        ctx = ExecutionContext()
        method = MappedDetectorMethod("iforest", n_basis=self.CANDIDATES)
        method.prepare(mfd, random_state=0, context=ctx)
        state = benchmark(method.prepare, mfd, random_state=0, context=ctx)
        assert state["features"].shape[0] == mfd.n_samples

    def test_parallel_fig3_speedup(self, ecg_small):
        """The Fig. 3 repetition fan-out: n_jobs=2 vs serial, bit-identical."""
        mfd, labels = ecg_small
        reps = 2 if QUICK else 6
        levels = (0.1, 0.2) if QUICK else (0.05, 0.10, 0.15, 0.20, 0.25)
        methods = default_methods() if not QUICK else [
            MappedDetectorMethod("iforest", n_basis=12),
            MappedDetectorMethod("ocsvm", n_basis=12),
        ]

        def run(n_jobs):
            start = time.perf_counter()
            table = run_contamination_experiment(
                mfd, labels, methods,
                contamination_levels=levels,
                n_repetitions=reps,
                random_state=7,
                n_jobs=n_jobs,
            )
            return table, time.perf_counter() - start

        serial_table, serial_time = run(1)
        parallel_table, parallel_time = run(2)
        print(
            f"\nfig3 workload ({len(levels)} levels x {reps} reps): "
            f"serial={serial_time:.2f}s n_jobs=2={parallel_time:.2f}s "
            f"speedup={serial_time / max(parallel_time, 1e-9):.2f}x"
        )
        assert serial_table.to_records() == parallel_table.to_records()
