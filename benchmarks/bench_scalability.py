"""Performance bench P1 (DESIGN.md): runtime scaling of the components.

Times the pipeline stages with pytest-benchmark so regressions in the
numerics (B-spline evaluation, SMO, tree building, depth computation)
are visible.  These are proper repeated-timing benchmarks, unlike the
figure benches which run their workload once.
"""

import numpy as np
import pytest

from repro.core.pipeline import GeometricOutlierPipeline
from repro.data import make_ecg_dataset, square_augment
from repro.depth import dirout_scores, funta_outlyingness
from repro.detectors import IsolationForest, OneClassSVM
from repro.fda.basis import BSplineBasis
from repro.fda.fdata import FDataGrid
from repro.fda.smoothing import BasisSmoother


@pytest.fixture(scope="module")
def ecg_small():
    data, labels, _ = make_ecg_dataset(n_normal=60, n_abnormal=20, random_state=1)
    return square_augment(data), labels


class TestSubstrateBenchmarks:
    def test_bspline_design_matrix(self, benchmark):
        basis = BSplineBasis((0.0, 1.0), n_basis=25)
        points = np.linspace(0, 1, 500)
        design = benchmark(basis.evaluate, points)
        assert design.shape == (500, 25)

    def test_bspline_second_derivative(self, benchmark):
        basis = BSplineBasis((0.0, 1.0), n_basis=25)
        points = np.linspace(0, 1, 500)
        design = benchmark(basis.evaluate, points, 2)
        assert design.shape == (500, 25)

    def test_batch_smoothing_100_curves(self, benchmark, rng_data=None):
        rng = np.random.default_rng(0)
        grid = np.linspace(0, 1, 85)
        data = FDataGrid(rng.standard_normal((100, 85)), grid)
        smoother = BasisSmoother(BSplineBasis((0.0, 1.0), 20), smoothing=1e-4)
        fit = benchmark(smoother.fit_grid, data)
        assert fit.n_samples == 100


class TestDetectorBenchmarks:
    def test_iforest_fit(self, benchmark):
        rng = np.random.default_rng(0)
        X = rng.standard_normal((200, 85))
        forest = benchmark(lambda: IsolationForest(random_state=0).fit(X))
        assert forest._psi == 200

    def test_iforest_score(self, benchmark):
        rng = np.random.default_rng(0)
        X = rng.standard_normal((200, 85))
        forest = IsolationForest(random_state=0).fit(X)
        scores = benchmark(forest.score_samples, X)
        assert scores.shape == (200,)

    def test_ocsvm_fit(self, benchmark):
        rng = np.random.default_rng(0)
        X = rng.standard_normal((200, 85))
        model = benchmark(lambda: OneClassSVM(nu=0.1).fit(X))
        assert model.support_vectors_.shape[0] >= 0.08 * 200


class TestBaselineBenchmarks:
    def test_funta_80_curves(self, benchmark, ecg_small):
        mfd, _ = ecg_small
        scores = benchmark.pedantic(
            funta_outlyingness, args=(mfd,), rounds=1, iterations=1
        )
        assert scores.shape == (80,)

    def test_dirout_80_curves(self, benchmark, ecg_small):
        mfd, _ = ecg_small
        scores = benchmark.pedantic(
            dirout_scores, args=(mfd,), kwargs={"random_state": 0}, rounds=1, iterations=1
        )
        assert scores.shape == (80,)


class TestPipelineBenchmark:
    def test_full_pipeline_fit_and_score(self, benchmark, ecg_small):
        mfd, _ = ecg_small
        def run():
            pipeline = GeometricOutlierPipeline(
                IsolationForest(random_state=0), n_basis=20
            )
            return pipeline.fit(mfd).score_samples(mfd)
        scores = benchmark.pedantic(run, rounds=2, iterations=1)
        assert scores.shape == (80,)
