"""Depth-kernel bench: blocked vectorized kernels vs the naive loops.

Times every depth kernel of :mod:`repro.depth._kernels` against its
``naive=True`` oracle on the acceptance workload (``n`` curves × ``m``
grid points), appends the machine-readable record to the perf
trajectory ``BENCH_depth_kernels.json`` at the repo root, and asserts
the CI gate: every *gated* kernel's vectorized path must beat its naive
loop (the remaining rows are informational — their cost is dominated by
work both paths share, e.g. the medians inside projection depth).

The pooled case re-runs the gated kernels through a 2-worker
shared-memory :class:`~repro.engine.ExecutionContext` and asserts (a)
the pool posts wall-clock ahead of serial on a scaled workload — only
on machines with at least 2 cores, a 1-core runner can't win by
forking — and (b) every shared-memory segment is unlinked afterwards,
on the success path and when a worker raises mid-run.

Set ``REPRO_BENCH_QUICK=1`` for the CI smoke configuration (the
acceptance setting n=200, m=100); the default run uses a larger
workload.  ``repro bench-depth`` exposes the same measurement from the
CLI (``--scale --n-jobs K`` for the pooled scoring flavour).
"""

import os

import numpy as np
import pytest

from repro.engine import ExecutionContext, live_segments
from repro.perf import (
    append_bench_record,
    format_bench_rows,
    format_telemetry_overhead_rows,
    run_depth_kernel_bench,
    run_scaled_depth_bench,
    run_telemetry_overhead_bench,
)

from benchmarks.conftest import BENCH_SEED, print_table

QUICK = os.environ.get("REPRO_BENCH_QUICK", "0") == "1"

N = 200 if QUICK else 300
M = 100 if QUICK else 150
REPEATS = 2 if QUICK else 3

# Scaled pooled workload: big enough that per-block work dwarfs the
# fork + pickle overhead, small enough for a CI smoke step.
SCALED_N = 20_000 if QUICK else 100_000
SCALED_M = 48
SCALED_REF = 256

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def test_depth_kernel_speedups():
    record = run_depth_kernel_bench(
        n=N, m=M, seed=BENCH_SEED, repeats=REPEATS, quick=QUICK
    )
    append_bench_record(os.path.join(_REPO_ROOT, "BENCH_depth_kernels.json"), record)

    headers, rows = format_bench_rows(record)
    print_table(
        f"Depth kernels — n={N}, m={M} (naive loop vs blocked vectorized)",
        headers,
        rows,
    )

    # The CI gate: a vectorized kernel that fails to beat its own naive
    # loop is a regression, full stop.
    for r in record["results"]:
        if r["gated"]:
            assert r["vectorized_s"] < r["naive_s"], (
                f"{r['kernel']}: vectorized ({r['vectorized_s']:.4f}s) slower "
                f"than naive ({r['naive_s']:.4f}s)"
            )
    assert not live_segments(), f"leaked shared segments: {live_segments()}"


def test_depth_kernel_pool_scaled():
    """Pooled scoring on the scaled workload: faster than serial, no leaks.

    Every row's pooled output is already asserted bit-identical to the
    serial vectorized one inside :func:`run_scaled_depth_bench`
    (rtol=0, atol=0); this gate adds the wall-clock claim.
    """
    record = run_scaled_depth_bench(
        n=SCALED_N, n_ref=SCALED_REF, m=SCALED_M,
        seed=BENCH_SEED, repeats=1, n_jobs=2, quick=QUICK,
    )
    append_bench_record(os.path.join(_REPO_ROOT, "BENCH_depth_kernels.json"), record)

    headers, rows = format_bench_rows(record)
    print_table(
        f"Depth kernels (scaled) — n={SCALED_N}, n_ref={SCALED_REF}, "
        f"m={SCALED_M}, n_jobs=2",
        headers,
        rows,
    )

    assert not live_segments(), f"leaked shared segments: {live_segments()}"
    for r in record["results"]:
        assert r["pool_s"] is not None, f"{r['kernel']}: no pooled timing recorded"

    if (os.cpu_count() or 1) < 2:
        pytest.skip("pool-beats-serial needs >= 2 cores")
    beats = [r for r in record["results"] if r["pool_s"] < r["vectorized_s"]]
    assert beats, (
        "2-worker pool beat serial on no kernel of the scaled workload: "
        + ", ".join(
            f"{r['kernel']} {r['vectorized_s']:.3f}s->{r['pool_s']:.3f}s"
            for r in record["results"]
        )
    )


def test_telemetry_overhead_gate():
    """Enabled telemetry must stay within 2% of NullTelemetry wall time.

    Both sides of every row already assert bit-identical outputs inside
    :func:`run_telemetry_overhead_bench`; this gate adds the cost claim
    the observability layer advertises.  The gate statistic is
    ``overhead_paired`` — the minimum enabled/null ratio over
    back-to-back timing pairs — because a real instrument cost is
    systematic (it shows in every pair) while scheduler noise on a
    loaded runner only inflates some pairs.  A 1 ms absolute slack
    keeps the sub-millisecond kernels (where one scheduler blip
    outweighs any instrument cost) from flaking the gate without
    loosening it on the kernels where 2% is actually measurable.
    """
    record = run_telemetry_overhead_bench(
        n=N, m=M, seed=BENCH_SEED, repeats=REPEATS + 2, quick=QUICK
    )
    append_bench_record(os.path.join(_REPO_ROOT, "BENCH_depth_kernels.json"), record)

    headers, rows = format_telemetry_overhead_rows(record)
    print_table(
        f"Telemetry overhead — n={N}, m={M} (NullTelemetry vs enabled)",
        headers,
        rows,
    )

    for r in record["results"]:
        if not r["gated"]:
            continue
        budget = 1.02 + 1e-3 / max(r["null_s"], 1e-12)
        assert r["overhead_paired"] <= budget, (
            f"{r['kernel']}: enabled telemetry cost {r['overhead_paired']:.3f}x "
            f"null in the best pair (best-of ratio {r['overhead']:.3f}x, "
            f"budget 1.02x + 1ms)"
        )


def _explode(block, values):
    raise RuntimeError("boom")


def test_pool_unlinks_on_worker_failure():
    """Shared segments must be unlinked even when a pooled worker raises."""
    rng = np.random.default_rng(BENCH_SEED)
    values = rng.standard_normal((64, 32))
    context = ExecutionContext(n_jobs=2)

    blocks = [(0, 32), (32, 64)]
    with pytest.raises(RuntimeError, match="boom"):
        context.run_blocks(_explode, blocks, arrays={"values": values})
    assert not live_segments(), f"leaked shared segments: {live_segments()}"
