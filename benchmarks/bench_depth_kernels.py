"""Depth-kernel bench: blocked vectorized kernels vs the naive loops.

Times every depth kernel of :mod:`repro.depth._kernels` against its
``naive=True`` oracle on the acceptance workload (``n`` curves × ``m``
grid points), appends the machine-readable record to the perf
trajectory ``BENCH_depth_kernels.json`` at the repo root, and asserts
the CI gate: every *gated* kernel's vectorized path must beat its naive
loop (the remaining rows are informational — their cost is dominated by
work both paths share, e.g. the medians inside projection depth).

Set ``REPRO_BENCH_QUICK=1`` for the CI smoke configuration (the
acceptance setting n=200, m=100); the default run uses a larger
workload.  ``repro bench-depth`` exposes the same measurement from the
CLI.
"""

import os

from repro.perf import append_bench_record, format_bench_rows, run_depth_kernel_bench

from benchmarks.conftest import BENCH_SEED, print_table

QUICK = os.environ.get("REPRO_BENCH_QUICK", "0") == "1"

N = 200 if QUICK else 300
M = 100 if QUICK else 150
REPEATS = 2 if QUICK else 3

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def test_depth_kernel_speedups():
    record = run_depth_kernel_bench(
        n=N, m=M, seed=BENCH_SEED, repeats=REPEATS, quick=QUICK
    )
    append_bench_record(os.path.join(_REPO_ROOT, "BENCH_depth_kernels.json"), record)

    headers, rows = format_bench_rows(record)
    print_table(
        f"Depth kernels — n={N}, m={M} (naive loop vs blocked vectorized)",
        headers,
        rows,
    )

    # The CI gate: a vectorized kernel that fails to beat its own naive
    # loop is a regression, full stop.
    for r in record["results"]:
        if r["gated"]:
            assert r["vectorized_s"] < r["naive_s"], (
                f"{r['kernel']}: vectorized ({r['vectorized_s']:.4f}s) slower "
                f"than naive ({r['naive_s']:.4f}s)"
            )
