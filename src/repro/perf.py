"""Machine-readable performance baselines for the depth-kernel layer.

:func:`run_depth_kernel_bench` times every depth kernel of
:mod:`repro.depth._kernels` against its ``naive=True`` loop oracle
(plus, optionally, the vectorized path fanned out over an
:class:`~repro.engine.ExecutionContext` pool) and returns one
JSON-serializable *record*.  :func:`append_bench_record` maintains the
persisted perf trajectory — a JSON array of such records, one per
benchmarked commit — in ``BENCH_depth_kernels.json``, so every future
PR can be measured against this baseline.

Record schema (``schema_version`` 3)::

    {
      "schema_version": 3,
      "bench": "depth_kernels" | "depth_kernels_scaled",
      "git_sha": "<sha or 'unknown'>",
      "created_unix": <float>,
      "quick": <bool>,
      "workload": {"n": ..., "m": ..., "seed": ..., "repeats": ...,
                   "n_jobs": ..., "cpu_count": ..., "gated_kernels": [...]},
      "results": [
        {"kernel": "funta", "p": 1, "gated": true,
         "naive_s": ..., "vectorized_s": ..., "pool_s": ... | null,
         "p50_ms": ..., "p95_ms": ..., "p99_ms": ...,
         "speedup": ..., "parallel_speedup": ... | null},
        ...
      ]
    }

Version 2 added ``workload.cpu_count`` and per-row ``parallel_speedup``
(vectorized / pooled wall time, null for serial runs), plus the
``depth_kernels_scaled`` flavour produced by
:func:`run_scaled_depth_bench` — the 100k-curve scoring workload where
the naive oracles are unaffordable, so rows carry only vectorized/pool
timings (with pooled results still asserted bit-identical to serial).
Version 3 re-bases the timing loop on the telemetry layer's
:class:`~repro.telemetry.metrics.Histogram` — every repeat lands in one
histogram, so rows gain exact ``p50_ms``/``p95_ms``/``p99_ms`` tail
fields alongside the best-of wall times.  Readers fall back gracefully
on older records (missing keys read as null via ``.get``).

``gated`` marks the kernels whose speedup the CI smoke step asserts
(vectorized must beat naive).

Used by ``repro bench-depth`` (CLI) and
``benchmarks/bench_depth_kernels.py`` (pytest smoke / CI gate).
"""

from __future__ import annotations

import json
import os
import subprocess
import time
from pathlib import Path

import numpy as np

__all__ = [
    "SCHEMA_VERSION",
    "BENCH_FILENAME",
    "STREAM_BENCH_FILENAME",
    "SERVING_HTTP_BENCH_FILENAME",
    "GATED_KERNELS",
    "GATED_STREAM_CASES",
    "git_sha",
    "run_depth_kernel_bench",
    "run_scaled_depth_bench",
    "run_serving_http_bench",
    "run_streaming_bench",
    "run_telemetry_overhead_bench",
    "append_bench_record",
    "format_bench_rows",
    "format_serving_http_rows",
    "format_streaming_rows",
    "format_telemetry_overhead_rows",
]

SCHEMA_VERSION = 3
BENCH_FILENAME = "BENCH_depth_kernels.json"

#: Kernels whose vectorized-vs-naive speedup the CI smoke step asserts.
#: ``projection_p2``/``dirout_p2`` joined the gate once their oracles
#: moved to per-direction loop discipline (matching halfspace) and the
#: SDO kernel went lane-major — before that both paths shared the same
#: batched medians and the ratio hovered near 1 by construction.
GATED_KERNELS = (
    "funta", "halfspace_p1", "halfspace_p2", "spatial_p2",
    "projection_p2", "dirout_p2",
)


def git_sha(cwd=None) -> str:
    """Current commit sha, or ``"unknown"`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10, cwd=cwd,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def git_dirty(cwd=None) -> bool:
    """True when tracked files differ from HEAD (conservatively True on
    error).  The check is anchored at the repository toplevel — not the
    caller's cwd — so running the bench from a subdirectory cannot hide
    modifications elsewhere in the tree.  The perf-trajectory files
    themselves are excluded: appending a record must not mark the very
    record it appends as dirty."""
    try:
        top = subprocess.run(
            ["git", "rev-parse", "--show-toplevel"],
            capture_output=True, text=True, timeout=10, cwd=cwd,
        )
        if top.returncode != 0 or not top.stdout.strip():
            return True
        out = subprocess.run(
            ["git", "status", "--porcelain", "--untracked-files=no",
             "--", ".", f":(exclude){BENCH_FILENAME}",
             f":(exclude){STREAM_BENCH_FILENAME}",
             f":(exclude){SERVING_HTTP_BENCH_FILENAME}"],
            capture_output=True, text=True, timeout=10, cwd=top.stdout.strip(),
        )
    except (OSError, subprocess.TimeoutExpired):
        return True
    if out.returncode != 0:
        return True
    return bool(out.stdout.strip())


def _time_histogram(fn, repeats: int):
    """Time ``repeats`` calls of ``fn`` into one telemetry histogram.

    The histogram's exact-sample reservoir holds every repeat, so its
    percentiles are the exact order statistics of the timing samples
    (NumPy linear-interpolation semantics) — the same machinery the
    serving layer uses for request latency, reused as the bench timer.
    """
    from repro.telemetry.metrics import Histogram

    hist = Histogram("bench_seconds", {})
    _observe_times(fn, repeats, hist)
    return hist


def _observe_times(fn, repeats: int, hist) -> None:
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        hist.observe(time.perf_counter() - start)


def _tail_fields(hist) -> dict:
    """``p50_ms``/``p95_ms``/``p99_ms`` record fields from a timing histogram."""
    return {
        "p50_ms": round(hist.percentile(50) * 1e3, 3),
        "p95_ms": round(hist.percentile(95) * 1e3, 3),
        "p99_ms": round(hist.percentile(99) * 1e3, 3),
    }


def _best_time(fn, repeats: int) -> float:
    return _time_histogram(fn, repeats).min


def run_depth_kernel_bench(
    n: int = 200,
    m: int = 100,
    seed: int = 7,
    repeats: int = 2,
    n_jobs: int = 1,
    quick: bool = True,
    block_bytes: int | None = None,
) -> dict:
    """Time naive vs vectorized (vs vectorized + pool) depth kernels.

    The workload mirrors the acceptance setting: ``n`` curves on ``m``
    grid points.  Each row also asserts the two paths agree (to 1e-10,
    far looser than the property tests — this is a smoke check, the
    equivalence suite is in ``tests/``), so a silently wrong kernel can
    never post a fast number.
    """
    from repro.depth.funta import funta_outlyingness
    from repro.depth.functional import pointwise_depth_profile
    from repro.depth.dirout import dirout_scores
    from repro.engine import ExecutionContext
    from repro.fda.fdata import FDataGrid, MFDataGrid

    rng = np.random.default_rng(seed)
    grid = np.linspace(0.0, 1.0, m)
    curves = FDataGrid(rng.standard_normal((n, m)).cumsum(axis=1) / 5.0, grid)
    mfd_p1 = MFDataGrid(curves.values[:, :, None], grid)
    mfd_p2 = MFDataGrid(rng.standard_normal((n, m, 2)), grid)
    context = ExecutionContext(n_jobs=n_jobs) if n_jobs > 1 else None

    cases = [
        # (kernel label, p, naive call, vectorized call factory)
        ("funta", 1,
         lambda **kw: funta_outlyingness(curves, block_bytes=block_bytes, **kw)),
        ("halfspace_p1", 1,
         lambda **kw: pointwise_depth_profile(
             mfd_p1, notion="halfspace", block_bytes=block_bytes, **kw)),
        ("halfspace_p2", 2,
         lambda **kw: pointwise_depth_profile(
             mfd_p2, notion="halfspace", random_state=seed,
             block_bytes=block_bytes, **kw)),
        ("spatial_p2", 2,
         lambda **kw: pointwise_depth_profile(
             mfd_p2, notion="spatial", block_bytes=block_bytes, **kw)),
        ("projection_p2", 2,
         lambda **kw: pointwise_depth_profile(
             mfd_p2, notion="projection", random_state=seed,
             block_bytes=block_bytes, **kw)),
        ("dirout_p2", 2,
         lambda **kw: dirout_scores(
             mfd_p2, random_state=seed, block_bytes=block_bytes, **kw)),
    ]

    results = []
    for kernel, p, call in cases:
        naive_out = call(naive=True)
        vec_out = call()
        np.testing.assert_allclose(vec_out, naive_out, rtol=1e-10, atol=1e-12)
        naive_s = _best_time(lambda: call(naive=True), repeats)
        vec_hist = _time_histogram(lambda: call(), repeats)
        vectorized_s = vec_hist.min
        pool_s = None
        if context is not None:
            pool_out = call(context=context)
            np.testing.assert_allclose(pool_out, vec_out, rtol=0, atol=0)
            pool_s = _best_time(lambda: call(context=context), repeats)
        results.append(
            {
                "kernel": kernel,
                "p": p,
                "gated": kernel in GATED_KERNELS,
                "naive_s": round(naive_s, 6),
                "vectorized_s": round(vectorized_s, 6),
                "pool_s": round(pool_s, 6) if pool_s is not None else None,
                **_tail_fields(vec_hist),
                "speedup": round(naive_s / max(vectorized_s, 1e-12), 2),
                "parallel_speedup": (
                    round(vectorized_s / max(pool_s, 1e-12), 2)
                    if pool_s is not None else None
                ),
            }
        )

    return {
        "schema_version": SCHEMA_VERSION,
        "bench": "depth_kernels",
        "git_sha": git_sha(),
        "dirty": git_dirty(),
        "created_unix": round(time.time(), 3),
        "quick": bool(quick),
        "workload": {
            "n": n, "m": m, "seed": seed, "repeats": repeats,
            "n_jobs": n_jobs, "cpu_count": os.cpu_count(),
            "gated_kernels": list(GATED_KERNELS),
        },
        "results": results,
    }


def run_scaled_depth_bench(
    n: int = 100_000,
    n_ref: int = 256,
    m: int = 48,
    seed: int = 7,
    repeats: int = 1,
    n_jobs: int = 1,
    quick: bool = False,
    block_bytes: int | None = None,
) -> dict:
    """Time the gated kernels on a scoring workload scaled to ``n`` curves.

    The shape mirrors production scoring rather than the toy acceptance
    setting: ``n`` query curves (100k by default) scored against a
    bounded reference sample of ``n_ref`` curves on ``m`` grid points.
    The naive oracles are unaffordable at this size, so rows record
    vectorized and pooled wall time only — correctness is anchored by
    asserting the pooled result bit-identical to the serial vectorized
    one (equivalence to naive is the property suite's job at small n).
    """
    from repro.depth.funta import funta_outlyingness
    from repro.depth.functional import pointwise_depth_profile
    from repro.depth.dirout import dirout_scores
    from repro.engine import ExecutionContext
    from repro.fda.fdata import FDataGrid, MFDataGrid

    rng = np.random.default_rng(seed)
    grid = np.linspace(0.0, 1.0, m)
    curves = FDataGrid(rng.standard_normal((n, m)).cumsum(axis=1) / 5.0, grid)
    ref_curves = FDataGrid(rng.standard_normal((n_ref, m)).cumsum(axis=1) / 5.0, grid)
    mfd_p2 = MFDataGrid(rng.standard_normal((n, m, 2)), grid)
    ref_p2 = MFDataGrid(rng.standard_normal((n_ref, m, 2)), grid)
    context = ExecutionContext(n_jobs=n_jobs) if n_jobs > 1 else None

    cases = [
        ("funta", 1,
         lambda **kw: funta_outlyingness(
             curves, reference=ref_curves, block_bytes=block_bytes, **kw)),
        ("halfspace_p1", 1,
         lambda **kw: pointwise_depth_profile(
             curves.to_multivariate(), ref_curves.to_multivariate(),
             notion="halfspace", block_bytes=block_bytes, **kw)),
        ("halfspace_p2", 2,
         lambda **kw: pointwise_depth_profile(
             mfd_p2, ref_p2, notion="halfspace", random_state=seed,
             block_bytes=block_bytes, **kw)),
        ("spatial_p2", 2,
         lambda **kw: pointwise_depth_profile(
             mfd_p2, ref_p2, notion="spatial", block_bytes=block_bytes, **kw)),
        ("projection_p2", 2,
         lambda **kw: pointwise_depth_profile(
             mfd_p2, ref_p2, notion="projection", random_state=seed,
             block_bytes=block_bytes, **kw)),
        ("dirout_p2", 2,
         lambda **kw: dirout_scores(
             mfd_p2, reference=ref_p2, random_state=seed,
             block_bytes=block_bytes, **kw)),
    ]

    results = []
    for kernel, p, call in cases:
        # At this scale every call is expensive, so the first (result-
        # producing) call doubles as one timing sample instead of a
        # warm-up: best-of over `repeats` samples total per path.
        out_holder = []
        vec_hist = _time_histogram(lambda: out_holder.append(call()), 1)
        vec_out = out_holder[0]
        if repeats > 1:
            _observe_times(lambda: call(), repeats - 1, vec_hist)
        vectorized_s = vec_hist.min
        pool_s = None
        if context is not None:
            start = time.perf_counter()
            pool_out = call(context=context)
            pool_s = time.perf_counter() - start
            np.testing.assert_allclose(pool_out, vec_out, rtol=0, atol=0)
            if repeats > 1:
                pool_s = min(
                    pool_s, _best_time(lambda: call(context=context), repeats - 1)
                )
        results.append(
            {
                "kernel": kernel,
                "p": p,
                "gated": kernel in GATED_KERNELS,
                "naive_s": None,
                "vectorized_s": round(vectorized_s, 6),
                "pool_s": round(pool_s, 6) if pool_s is not None else None,
                **_tail_fields(vec_hist),
                "speedup": None,
                "parallel_speedup": (
                    round(vectorized_s / max(pool_s, 1e-12), 2)
                    if pool_s is not None else None
                ),
            }
        )

    return {
        "schema_version": SCHEMA_VERSION,
        "bench": "depth_kernels_scaled",
        "git_sha": git_sha(),
        "dirty": git_dirty(),
        "created_unix": round(time.time(), 3),
        "quick": bool(quick),
        "workload": {
            "n": n, "n_ref": n_ref, "m": m, "seed": seed, "repeats": repeats,
            "n_jobs": n_jobs, "cpu_count": os.cpu_count(),
            "gated_kernels": list(GATED_KERNELS),
        },
        "results": results,
    }


def run_telemetry_overhead_bench(
    n: int = 200,
    m: int = 100,
    seed: int = 7,
    repeats: int = 3,
    quick: bool = True,
    block_bytes: int | None = None,
) -> dict:
    """Time the gated depth kernels with telemetry disabled vs enabled.

    Both sides run through an :class:`~repro.engine.ExecutionContext` —
    one holding the default :data:`~repro.telemetry.NULL_TELEMETRY`, one
    an enabled :class:`~repro.telemetry.Telemetry` — so the measured
    difference is exactly the cost of live instruments on the hot path
    (counter increments, histogram observes, span bookkeeping), not a
    context-vs-no-context framing difference.  Each row asserts the two
    outputs bit-identical: instrumentation must never perturb results.

    The CI smoke gate asserts ``overhead_paired`` (the minimum
    enabled/null ratio over back-to-back timing pairs) stays within a
    small multiplicative bound on every gated kernel; ``overhead`` is
    the conventional best-of ratio, recorded for the trajectory.
    """
    from repro.depth.funta import funta_outlyingness
    from repro.depth.functional import pointwise_depth_profile
    from repro.depth.dirout import dirout_scores
    from repro.engine import ExecutionContext
    from repro.fda.fdata import FDataGrid, MFDataGrid
    from repro.telemetry import Telemetry

    rng = np.random.default_rng(seed)
    grid = np.linspace(0.0, 1.0, m)
    curves = FDataGrid(rng.standard_normal((n, m)).cumsum(axis=1) / 5.0, grid)
    mfd_p2 = MFDataGrid(rng.standard_normal((n, m, 2)), grid)
    null_context = ExecutionContext()
    live_context = ExecutionContext(telemetry=Telemetry())

    cases = [
        ("funta", 1,
         lambda **kw: funta_outlyingness(curves, block_bytes=block_bytes, **kw)),
        ("halfspace_p1", 1,
         lambda **kw: pointwise_depth_profile(
             curves.to_multivariate(), notion="halfspace",
             block_bytes=block_bytes, **kw)),
        ("halfspace_p2", 2,
         lambda **kw: pointwise_depth_profile(
             mfd_p2, notion="halfspace", random_state=seed,
             block_bytes=block_bytes, **kw)),
        ("spatial_p2", 2,
         lambda **kw: pointwise_depth_profile(
             mfd_p2, notion="spatial", block_bytes=block_bytes, **kw)),
        ("projection_p2", 2,
         lambda **kw: pointwise_depth_profile(
             mfd_p2, notion="projection", random_state=seed,
             block_bytes=block_bytes, **kw)),
        ("dirout_p2", 2,
         lambda **kw: dirout_scores(
             mfd_p2, random_state=seed, block_bytes=block_bytes, **kw)),
    ]

    results = []
    for kernel, p, call in cases:
        null_out = call(context=null_context)
        live_out = call(context=live_context)
        np.testing.assert_allclose(live_out, null_out, rtol=0, atol=0)
        # Time back-to-back (null, enabled) pairs: machine-level drift
        # (thermal, frequency scaling, a neighbour process) then lands on
        # both halves of a pair alike.  ``overhead_paired`` is the
        # minimum per-pair ratio — a real instrument cost is systematic
        # and shows in *every* pair, while a load spike only inflates
        # some, so the min is the noise-robust gate statistic.
        null_times: list[float] = []
        live_times: list[float] = []
        for _ in range(repeats):
            start = time.perf_counter()
            call(context=null_context)
            null_times.append(time.perf_counter() - start)
            start = time.perf_counter()
            call(context=live_context)
            live_times.append(time.perf_counter() - start)
        null_s = min(null_times)
        enabled_s = min(live_times)
        results.append(
            {
                "kernel": kernel,
                "p": p,
                "gated": kernel in GATED_KERNELS,
                "null_s": round(null_s, 6),
                "enabled_s": round(enabled_s, 6),
                "overhead": round(enabled_s / max(null_s, 1e-12), 4),
                "overhead_paired": round(
                    min(l / max(n, 1e-12) for n, l in zip(null_times, live_times)),
                    4,
                ),
            }
        )

    return {
        "schema_version": SCHEMA_VERSION,
        "bench": "telemetry_overhead",
        "git_sha": git_sha(),
        "dirty": git_dirty(),
        "created_unix": round(time.time(), 3),
        "quick": bool(quick),
        "workload": {
            "n": n, "m": m, "seed": seed, "repeats": repeats,
            "gated_kernels": list(GATED_KERNELS),
        },
        "results": results,
    }


def format_telemetry_overhead_rows(record: dict) -> tuple[list[str], list[list[str]]]:
    """Table headers + rows for a telemetry-overhead bench record."""
    headers = ["kernel", "p", "gated", "null ms", "enabled ms", "overhead", "paired"]
    rows = []
    for r in record["results"]:
        paired = r.get("overhead_paired")
        rows.append(
            [
                r["kernel"],
                str(r["p"]),
                "yes" if r["gated"] else "no",
                f"{r['null_s'] * 1e3:,.1f}",
                f"{r['enabled_s'] * 1e3:,.1f}",
                f"{r['overhead']:.3f}x",
                f"{paired:.3f}x" if paired is not None else "-",
            ]
        )
    return headers, rows


def format_bench_rows(record: dict) -> tuple[list[str], list[list[str]]]:
    """Table headers + rows for a bench record (shared by CLI and bench).

    The pool columns appear only when at least one result actually has a
    pooled timing, so ``n_jobs=1`` runs print a compact table.  Reads
    via ``.get`` so schema-version-1 records (no ``parallel_speedup``,
    always-present ``naive_s``) and scaled records (null ``naive_s`` /
    ``speedup``) format without special-casing.
    """
    results = record["results"]
    with_pool = any(r.get("pool_s") is not None for r in results)
    with_tails = any(r.get("p95_ms") is not None for r in results)
    headers = ["kernel", "p", "gated", "naive ms", "vectorized ms"]
    if with_tails:
        headers += ["p50 ms", "p95 ms", "p99 ms"]
    if with_pool:
        headers.append("pool ms")
    headers.append("speedup")
    if with_pool:
        headers.append("pool speedup")
    rows = []
    for r in results:
        naive_s = r.get("naive_s")
        speedup = r.get("speedup")
        row = [
            r["kernel"],
            str(r["p"]),
            "yes" if r["gated"] else "no",
            f"{naive_s * 1e3:,.1f}" if naive_s is not None else "-",
            f"{r['vectorized_s'] * 1e3:,.1f}",
        ]
        if with_tails:
            for key in ("p50_ms", "p95_ms", "p99_ms"):
                tail = r.get(key)
                row.append(f"{tail:,.1f}" if tail is not None else "-")
        if with_pool:
            pool_s = r.get("pool_s")
            row.append(f"{pool_s * 1e3:,.1f}" if pool_s is not None else "-")
        row.append(f"{speedup:.1f}x" if speedup is not None else "-")
        if with_pool:
            par = r.get("parallel_speedup")
            row.append(f"{par:.2f}x" if par is not None else "-")
        rows.append(row)
    return headers, rows


def append_bench_record(path, record: dict) -> list:
    """Append ``record`` to the JSON trajectory at ``path``; returns it.

    The trajectory is a JSON array ordered by insertion.  Re-running on
    the same commit replaces that commit's record of the same ``quick``
    and ``dirty`` flavour instead of stacking duplicates, so the
    trajectory holds one datapoint per (commit, flavour) — and a run
    from a dirty working tree can never overwrite the clean committed
    baseline of the same sha (it is recorded separately, flagged
    ``"dirty": true``).
    """
    path = Path(path)
    trajectory: list = []
    if path.exists():
        try:
            loaded = json.loads(path.read_text())
            if isinstance(loaded, list):
                trajectory = loaded
        except (OSError, json.JSONDecodeError):
            trajectory = []
    trajectory = [
        entry
        for entry in trajectory
        if not (
            isinstance(entry, dict)
            and entry.get("git_sha") == record.get("git_sha")
            and entry.get("quick") == record.get("quick")
            and entry.get("bench") == record.get("bench")
            and entry.get("dirty") == record.get("dirty")
        )
    ]
    trajectory.append(record)
    path.write_text(json.dumps(trajectory, indent=2) + "\n")
    return trajectory


# --------------------------------------------------------------------------- streaming
STREAM_BENCH_FILENAME = "BENCH_streaming.json"

#: Streaming-record schema: v3 added the sharded tier (``shards`` on every
#: result row, ``shard_speedup`` + chunked-baseline timings on sharded rows);
#: v4 re-bases the timing loop on the telemetry histogram, adding exact
#: ``p50_ms``/``p95_ms``/``p99_ms`` tail fields per row.
#: ``format_streaming_rows`` still renders v1–v3 records (no tail fields).
STREAM_SCHEMA_VERSION = 4

#: Streaming cases whose incremental-vs-refit speedup the CI gate asserts.
GATED_STREAM_CASES = ("funta_p1", "funta_p2", "dirout_p1", "halfspace_p1")

#: Sharded cases whose sharded-vs-single-stream throughput the CI gate
#: asserts (``shard_speedup > 1`` whenever >= 2 cores are available).
GATED_SHARD_CASES = ("funta_p1_sharded", "dirout_p1_sharded", "halfspace_p1_sharded")


def run_streaming_bench(
    window: int = 128,
    m: int = 100,
    arrivals: int = 200,
    seed: int = 7,
    repeats: int = 2,
    quick: bool = True,
    block_bytes: int | None = None,
    shards: int = 1,
    chunk: int = 16,
) -> dict:
    """Time per-arrival incremental scoring vs naive refit-from-scratch.

    Each case primes a sliding window with ``window`` curves and then
    pushes ``arrivals`` single-curve batches through
    :meth:`~repro.streaming.StreamingDetector.process` — the canonical
    worst case for a streaming system, where every arrival both scores
    and mutates the reference.  The *incremental* detector refreshes its
    cached reference statistics (tangent-angle ring, sorted lanes) from
    the window update; the *naive* detector (``incremental=False``)
    rebuilds them from the full window on every arrival via the batch
    entry points.  Both paths share the window machinery and produce
    identical scores (asserted here before timing, so a wrong cache can
    never post a fast number); the record schema mirrors
    ``BENCH_depth_kernels.json`` (git sha, per-case rows).

    With ``shards > 1`` the sharded tier is timed as well: the same
    chunked arrival stream is pushed once through a single-stream
    incremental detector and once through a
    :class:`~repro.streaming.ShardedStreamingDetector` (thread backend)
    at the same chunk size, with score equivalence asserted (rtol
    ``1e-12``; exact for dirout/halfspace) before either side is timed.
    Sharded rows carry ``shards``/``shard_speedup`` fields
    (``schema_version`` 3).
    """
    from repro.fda.fdata import MFDataGrid
    from repro.streaming import (
        ShardedStreamingDetector,
        SlidingWindow,
        StreamingDetector,
    )

    rng = np.random.default_rng(seed)
    grid = np.linspace(0.0, 1.0, m)

    cases = [
        ("funta_p1", 1, "funta"),
        ("funta_p2", 2, "funta"),
        ("dirout_p1", 1, "dirout"),
        ("halfspace_p1", 1, "halfspace"),
    ]

    results = []
    for label, p, kind in cases:
        prime_values = rng.standard_normal((window, m, p)).cumsum(axis=1) / 5.0
        stream_values = rng.standard_normal((arrivals, m, p)).cumsum(axis=1) / 5.0
        prime_mfd = MFDataGrid(prime_values, grid)
        chunks = [MFDataGrid(stream_values[i : i + 1], grid) for i in range(arrivals)]

        def run(incremental: bool) -> np.ndarray:
            detector = StreamingDetector(
                kind,
                SlidingWindow(window),
                min_reference=2,
                incremental=incremental,
                block_bytes=block_bytes,
            )
            detector.prime(prime_mfd)
            collected = [detector.process(chunk).scores for chunk in chunks]
            return np.concatenate(collected)

        incremental_scores = run(True)
        naive_scores = run(False)
        np.testing.assert_allclose(
            incremental_scores, naive_scores, rtol=1e-12, atol=0.0
        )
        inc_hist = _time_histogram(lambda: run(True), repeats)
        incremental_s = inc_hist.min
        naive_s = _best_time(lambda: run(False), repeats)
        results.append(
            {
                "case": label,
                "p": p,
                "kind": kind,
                "gated": label in GATED_STREAM_CASES,
                "shards": 1,
                "naive_s": round(naive_s, 6),
                "incremental_s": round(incremental_s, 6),
                **_tail_fields(inc_hist),
                "curves_per_s": round(arrivals / max(incremental_s, 1e-12), 1),
                "speedup": round(naive_s / max(incremental_s, 1e-12), 2),
            }
        )

    if shards > 1:
        if window % shards:
            raise ValueError(
                f"window={window} must divide evenly across shards={shards}"
            )
        n_chunks = max(1, arrivals // chunk)
        shard_cases = [
            ("funta_p1_sharded", 1, "funta"),
            ("dirout_p1_sharded", 1, "dirout"),
            ("halfspace_p1_sharded", 1, "halfspace"),
        ]
        for label, p, kind in shard_cases:
            prime_values = rng.standard_normal((window, m, p)).cumsum(axis=1) / 5.0
            stream_values = (
                rng.standard_normal((n_chunks * chunk, m, p)).cumsum(axis=1) / 5.0
            )
            prime_mfd = MFDataGrid(prime_values, grid)
            chunks = [
                MFDataGrid(stream_values[i * chunk : (i + 1) * chunk], grid)
                for i in range(n_chunks)
            ]

            def run_single() -> np.ndarray:
                detector = StreamingDetector(
                    kind,
                    SlidingWindow(window),
                    min_reference=2,
                    incremental=True,
                    block_bytes=block_bytes,
                )
                detector.prime(prime_mfd)
                collected = [detector.process(c).scores for c in chunks]
                return np.concatenate(collected)

            def run_sharded() -> np.ndarray:
                detector = ShardedStreamingDetector(
                    kind,
                    shards=shards,
                    capacity=window,
                    min_reference=2,
                    backend="thread",
                    block_bytes=block_bytes,
                )
                try:
                    detector.prime(prime_mfd)
                    collected = [detector.process(c).scores for c in chunks]
                    return np.concatenate(collected)
                finally:
                    detector.close()

            single_scores = run_single()
            sharded_scores = run_sharded()
            np.testing.assert_allclose(
                sharded_scores, single_scores, rtol=1e-12, atol=0.0
            )
            single_s = _best_time(run_single, repeats)
            shard_hist = _time_histogram(run_sharded, repeats)
            sharded_s = shard_hist.min
            total = n_chunks * chunk
            results.append(
                {
                    "case": label,
                    "p": p,
                    "kind": kind,
                    "gated": label in GATED_SHARD_CASES,
                    "shards": shards,
                    "arrivals": total,
                    "naive_s": round(single_s, 6),
                    "incremental_s": round(sharded_s, 6),
                    **_tail_fields(shard_hist),
                    "curves_per_s": round(total / max(sharded_s, 1e-12), 1),
                    "speedup": round(single_s / max(sharded_s, 1e-12), 2),
                    "shard_speedup": round(single_s / max(sharded_s, 1e-12), 2),
                }
            )

    return {
        "schema_version": STREAM_SCHEMA_VERSION,
        "bench": "streaming",
        "git_sha": git_sha(),
        "dirty": git_dirty(),
        "created_unix": round(time.time(), 3),
        "quick": bool(quick),
        "workload": {
            "window": window, "m": m, "arrivals": arrivals, "seed": seed,
            "repeats": repeats, "gated_cases": list(GATED_STREAM_CASES),
            "shards": shards, "chunk": chunk,
            "gated_shard_cases": list(GATED_SHARD_CASES) if shards > 1 else [],
        },
        "results": results,
    }


def format_streaming_rows(record: dict) -> tuple[list[str], list[list[str]]]:
    """Table headers + rows for a streaming bench record.

    Renders every streaming schema version: v1/v2 rows predate the
    sharded tier and carry no ``shards``/``shard_speedup`` fields, so
    those columns fall back to ``1``/``-`` (mirroring the v1/v2
    tolerance of ``format_bench_rows`` for ``BENCH_depth_kernels``).
    On sharded rows (v3) the baseline column is the *single-stream*
    chunked detector rather than a refit-from-scratch one, and
    ``speedup`` is the shard speedup.  v4 rows carry per-run
    ``p50_ms``/``p95_ms``/``p99_ms`` tails; older rows render ``-``.
    """
    version = int(record.get("schema_version", 1))
    sharded_record = version >= 3 and any(
        r.get("shards", 1) > 1 for r in record["results"]
    )
    with_tails = any(r.get("p95_ms") is not None for r in record["results"])
    headers = [
        "case", "p", "gated", "refit ms/curve", "incremental ms/curve",
        "curves/s", "speedup",
    ]
    if with_tails:
        headers += ["p95 ms", "p99 ms"]
    if sharded_record:
        headers = headers + ["shards"]
    default_arrivals = record["workload"]["arrivals"]
    rows = []
    for r in record["results"]:
        arrivals = r.get("arrivals", default_arrivals)
        row = [
            r["case"],
            str(r["p"]),
            "yes" if r["gated"] else "no",
            f"{r['naive_s'] / arrivals * 1e3:,.2f}",
            f"{r['incremental_s'] / arrivals * 1e3:,.2f}",
            f"{r['curves_per_s']:,.0f}",
            f"{r['speedup']:.1f}x",
        ]
        if with_tails:
            for key in ("p95_ms", "p99_ms"):
                tail = r.get(key)
                row.append(f"{tail:,.1f}" if tail is not None else "-")
        if sharded_record:
            row.append(str(r.get("shards", 1)))
        rows.append(row)
    return headers, rows


# --------------------------------------------------------------------------
# Serving-HTTP bench: the async front door under sustained and overload rates
# --------------------------------------------------------------------------

SERVING_HTTP_BENCH_FILENAME = "BENCH_serving_http.json"


async def _http_post_json(host, port, path, doc, reader=None, writer=None):
    """Minimal asyncio HTTP/1.1 JSON POST.

    With ``reader``/``writer`` the request reuses an open keep-alive
    connection (the closed-loop sustained phase); without them a fresh
    connection is opened and closed (the open-loop overload phase, where
    every arrival is an independent client).  Returns
    ``(status, parsed_body)``.
    """
    import asyncio
    import json as _json

    own = reader is None
    if own:
        reader, writer = await asyncio.open_connection(host, port)
    try:
        payload = _json.dumps(doc).encode("utf-8")
        writer.write(
            f"POST {path} HTTP/1.1\r\nHost: {host}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: {'close' if own else 'keep-alive'}\r\n\r\n".encode("ascii")
            + payload
        )
        await writer.drain()
        status_line = await reader.readline()
        status = int(status_line.split(b" ", 2)[1])
        length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            key, _, value = line.decode("latin-1").partition(":")
            if key.strip().lower() == "content-length":
                length = int(value.strip())
        body = _json.loads(await reader.readexactly(length)) if length else {}
        return status, body
    finally:
        if own:
            writer.close()
            try:
                await writer.wait_closed()
            except (OSError, asyncio.CancelledError):
                pass


def _fit_fig3_pipeline(seed: int):
    """Fit the Fig. 3 serving pipeline: iforest over curvature features.

    This is the serving form of the paper's strongest Fig. 3 method —
    an :class:`~repro.detectors.IsolationForest` (200 trees) on the
    geometric aggregation of the square-augmented ECG substitute data.
    """
    from repro.core.pipeline import GeometricOutlierPipeline
    from repro.data import make_ecg_dataset, square_augment
    from repro.detectors import IsolationForest

    data, _, _ = make_ecg_dataset(random_state=seed)
    train = square_augment(data)
    pipeline = GeometricOutlierPipeline(
        IsolationForest(n_estimators=200, random_state=0), n_basis=20
    )
    pipeline.fit(train)
    return pipeline, train


def run_serving_http_bench(
    batch_curves: int = 32,
    sustained_requests: int = 300,
    overload_requests: int = 400,
    concurrency: int = 12,
    overload_capacity: float = 2000.0,
    overload_factor: float = 5.0,
    flush_interval: float = 0.02,
    seed: int = 7,
    quick: bool = True,
) -> dict:
    """Benchmark the HTTP front door end-to-end over localhost.

    Two phases, both against a :class:`~repro.serving.ScoringServer`
    fronting the fitted Fig. 3 pipeline loaded zero-copy
    (``mmap=True``) from an uncompressed manifest:

    * **sustained** — ``concurrency`` closed-loop keep-alive clients
      drive ``POST /submit`` as fast as responses return.  A generous
      high-water mark means nothing sheds; the phase measures real
      micro-batched scoring throughput (curves/s) and per-request
      latency percentiles.
    * **overload** — the pipeline's scorer is throttled to a *known*
      flush capacity (``overload_capacity`` curves/s) and open-loop
      arrivals are scheduled at ``overload_factor``× that capacity
      against a small high-water mark.  This phase verifies the
      backpressure contract: excess arrivals shed with 429 before
      queueing, outstanding work stays bounded by the high-water mark
      (plus the concurrent-admission race window), and every accepted
      request resolves with finite scores.

    The record mirrors the other ``BENCH_*`` trajectory schemas.
    """
    import asyncio
    import tempfile
    from pathlib import Path

    from repro.data import make_ecg_dataset, square_augment
    from repro.serving.persist import save_pipeline
    from repro.serving.server import ScoringServer, load_service
    from repro.telemetry.metrics import Histogram

    pipeline, train = _fit_fig3_pipeline(seed)

    # Client traffic: fresh curves from the same generator family.
    probe, _, _ = make_ecg_dataset(random_state=seed + 1)
    traffic = square_augment(probe)
    batch = {
        "pipeline": "fig3_iforest",
        "values": traffic.values[:batch_curves].tolist(),
        "grid": traffic.grid.tolist(),
    }

    results: dict[str, dict] = {}

    with tempfile.TemporaryDirectory() as tmp:
        bundle = Path(tmp) / "fig3_iforest"
        save_pipeline(pipeline, bundle, compressed=False)

        async def sustained_phase() -> dict:
            service = load_service(
                {"fig3_iforest": bundle}, max_pending=4 * batch_curves, mmap=True
            )
            server = ScoringServer(
                service,
                high_water=max(64 * batch_curves, concurrency * 4 * batch_curves),
                flush_interval=flush_interval,
            )
            await server.start()
            try:
                # Warm the factorization cache off the clock.
                await _http_post_json("127.0.0.1", server.port, "/score", batch)

                latencies: list[float] = []
                bad: list[str] = []
                remaining = [sustained_requests]

                async def worker() -> None:
                    reader, writer = await asyncio.open_connection(
                        "127.0.0.1", server.port
                    )
                    try:
                        while remaining[0] > 0:
                            remaining[0] -= 1
                            t0 = time.perf_counter()
                            status, body = await _http_post_json(
                                "127.0.0.1", server.port, "/submit", batch,
                                reader=reader, writer=writer,
                            )
                            latencies.append(time.perf_counter() - t0)
                            if status != 200:
                                bad.append(f"{status}: {body.get('error')}")
                            elif not np.all(np.isfinite(body["scores"])):
                                bad.append("non-finite scores")
                    finally:
                        writer.close()
                        try:
                            await writer.wait_closed()
                        except OSError:
                            pass

                t_start = time.perf_counter()
                await asyncio.gather(*(worker() for _ in range(concurrency)))
                elapsed = time.perf_counter() - t_start
            finally:
                await server.close()

            done = len(latencies)
            # Same Histogram type the serving layer exposes on /metrics;
            # its exact-sample reservoir makes these the exact order
            # statistics of the latency samples.
            lat_hist = Histogram("serving_request_seconds", {})
            for sample in latencies:
                lat_hist.observe(sample)
            return {
                "phase": "sustained",
                "requests": done,
                "accepted": done - len(bad),
                "shed": 0,
                "errors": bad[:5],
                "curves_per_s": round(done * batch_curves / max(elapsed, 1e-9), 1),
                **_tail_fields(lat_hist),
                "flushes": server.service.stats()["flushes"],
            }

        async def overload_phase() -> dict:
            service = load_service(
                {"fig3_iforest": bundle}, max_pending=4 * batch_curves, mmap=True
            )
            # Pin the flush capacity so "5x capacity" is a statement about
            # the workload, not about this machine: the scorer sleeps
            # n / overload_capacity seconds per flushed batch.
            loaded = service._pipeline("fig3_iforest")
            real_score = loaded.score_samples

            def throttled_score(mfd):
                time.sleep(mfd.n_samples / overload_capacity)
                return real_score(mfd)

            loaded.score_samples = throttled_score

            high_water = 4 * batch_curves
            server = ScoringServer(
                service, high_water=high_water, flush_interval=flush_interval
            )
            await server.start()

            target_rps = overload_factor * overload_capacity / batch_curves
            interval = 1.0 / target_rps
            statuses: list[int] = []
            bad: list[str] = []
            max_outstanding = [0]
            stop = asyncio.Event()

            async def sampler() -> None:
                while not stop.is_set():
                    max_outstanding[0] = max(
                        max_outstanding[0], service.outstanding_curves()
                    )
                    await asyncio.sleep(0.002)

            async def one_request() -> None:
                status, body = await _http_post_json(
                    "127.0.0.1", server.port, "/submit", batch
                )
                statuses.append(status)
                if status == 200 and not np.all(np.isfinite(body["scores"])):
                    bad.append("non-finite scores")
                elif status not in (200, 429):
                    bad.append(f"{status}: {body.get('error')}")

            try:
                await _http_post_json("127.0.0.1", server.port, "/score", batch)
                sampler_task = asyncio.ensure_future(sampler())
                t_start = time.perf_counter()
                tasks = []
                for i in range(overload_requests):
                    due = t_start + i * interval
                    delay = due - time.perf_counter()
                    if delay > 0:
                        await asyncio.sleep(delay)
                    tasks.append(asyncio.ensure_future(one_request()))
                # Arrival rate is a property of the schedule, so clock it
                # when the last request is *sent*, not when responses drain.
                elapsed = time.perf_counter() - t_start
                await asyncio.gather(*tasks)
                stop.set()
                await sampler_task
            finally:
                await server.close()

            accepted = sum(1 for s in statuses if s == 200)
            shed = sum(1 for s in statuses if s == 429)
            stats = service.stats()
            return {
                "phase": "overload",
                "requests": len(statuses),
                "accepted": accepted,
                "shed": shed,
                "errors": bad[:5],
                "arrival_curves_per_s": round(target_rps * batch_curves, 1),
                "capacity_curves_per_s": overload_capacity,
                "achieved_rps": round(len(statuses) / max(elapsed, 1e-9), 1),
                "high_water": high_water,
                "max_outstanding": max_outstanding[0],
                "served_requests": stats["served_requests"],
                "failed_requests": stats["failed_requests"],
            }

        results["sustained"] = asyncio.run(sustained_phase())
        results["overload"] = asyncio.run(overload_phase())

    return {
        "schema_version": SCHEMA_VERSION,
        "bench": "serving_http",
        "git_sha": git_sha(),
        "dirty": git_dirty(),
        "created_unix": round(time.time(), 3),
        "quick": bool(quick),
        "workload": {
            "batch_curves": batch_curves,
            "sustained_requests": sustained_requests,
            "overload_requests": overload_requests,
            "concurrency": concurrency,
            "overload_capacity": overload_capacity,
            "overload_factor": overload_factor,
            "flush_interval": flush_interval,
            "seed": seed,
            "pipeline": "fig3 iforest(n_estimators=200) / n_basis=20 / square_augment ECG",
        },
        "results": [results["sustained"], results["overload"]],
    }


def format_serving_http_rows(record: dict) -> tuple[list[str], list[list[str]]]:
    """Table headers + rows for a serving-HTTP bench record."""
    headers = [
        "phase", "requests", "accepted", "shed", "curves/s",
        "p50 ms", "p95 ms", "p99 ms", "max outstanding",
    ]
    rows = []
    for r in record["results"]:
        rows.append(
            [
                r["phase"],
                str(r["requests"]),
                str(r["accepted"]),
                str(r["shed"]),
                f"{r['curves_per_s']:,.0f}" if "curves_per_s" in r
                else f"(arrival {r['arrival_curves_per_s']:,.0f})",
                f"{r['p50_ms']:.1f}" if "p50_ms" in r else "-",
                f"{r['p95_ms']:.1f}" if "p95_ms" in r else "-",
                f"{r['p99_ms']:.1f}" if "p99_ms" in r else "-",
                str(r.get("max_outstanding", "-")),
            ]
        )
    return headers, rows
