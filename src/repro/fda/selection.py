"""Model selection for the smoothing step.

The paper selects the basis sizes ``L_ik`` by leave-one-out
cross-validation (Sec. 4.1) and the smoothing weight ``lambda_k`` by
cross-validation (Sec. 2.2).  For a *linear* smoother with hat matrix
``S`` the leave-one-out residuals have the closed form

    e_i^{loo} = (y_i - yhat_i) / (1 - S_ii)

so LOO-CV costs one fit instead of ``m`` fits.  Generalized
cross-validation (GCV) replaces ``S_ii`` by ``trace(S)/m``, trading a
little statistical efficiency for numerical robustness when some
``S_ii`` approach 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.exceptions import ValidationError
from repro.fda.fdata import BasisFData, FDataGrid
from repro.fda.smoothing import BasisSmoother
from repro.utils.validation import as_float_array, check_grid

__all__ = [
    "loocv_score",
    "gcv_score",
    "SelectionResult",
    "FittedSelection",
    "select_n_basis",
    "select_smoothing",
]


def _check_sample(points, values) -> tuple[np.ndarray, np.ndarray]:
    points = check_grid(points, "points")
    values = as_float_array(values, "values")
    if values.ndim == 1:
        values = values[None, :]
    if values.shape[1] != points.shape[0]:
        raise ValidationError(
            f"values have {values.shape[1]} columns but points has {points.shape[0]} entries"
        )
    return points, values


def loocv_score(smoother: BasisSmoother, points, values) -> float:
    """Leave-one-out CV mean squared error via the hat-matrix identity.

    ``values`` may hold several curves (rows); the score averages over
    curves and points, matching the paper's per-parameter selection in
    which all samples share the candidate basis.
    """
    points, values = _check_sample(points, values)
    hat = smoother.hat_matrix(points)
    leverage = np.clip(np.diag(hat), 0.0, 1.0 - 1e-8)
    residuals = values - values @ hat.T
    loo = residuals / (1.0 - leverage)[None, :]
    return float(np.mean(loo**2))


def gcv_score(smoother: BasisSmoother, points, values) -> float:
    """Generalized cross-validation score (Craven–Wahba)."""
    points, values = _check_sample(points, values)
    hat = smoother.hat_matrix(points)
    m = points.shape[0]
    denom = max(1.0 - np.trace(hat) / m, 1e-8)
    residuals = values - values @ hat.T
    return float(np.mean(residuals**2) / denom**2)


@dataclass(frozen=True)
class SelectionResult:
    """Outcome of a 1-D model-selection sweep."""

    best: float | int
    scores: dict

    def __post_init__(self):
        if not self.scores:
            raise ValidationError("SelectionResult needs at least one candidate score")


@dataclass(frozen=True)
class FittedSelection:
    """A model-selection sweep that also carries the fitted winner.

    The batched selection path (``select_n_basis(..., return_fitted=True)``)
    scores every candidate against cached factorizations and then fits
    the winning smoother with one extra back-substitution — so callers
    (the pipeline, the method registry) never refit from scratch.
    """

    best: float | int
    scores: dict
    smoother: BasisSmoother
    fit: BasisFData

    def __post_init__(self):
        if not self.scores:
            raise ValidationError("FittedSelection needs at least one candidate score")


def _sweep(
    candidates: Sequence,
    make_smoother: Callable[[object], BasisSmoother],
    points,
    values,
    criterion: str,
) -> tuple[dict, dict]:
    if criterion == "loocv":
        scorer = loocv_score
    elif criterion == "gcv":
        scorer = gcv_score
    else:
        raise ValidationError(f"unknown criterion {criterion!r}; use 'loocv' or 'gcv'")
    if len(candidates) == 0:
        raise ValidationError("no candidates supplied")
    scores = {}
    smoothers = {}
    for candidate in candidates:
        smoother = make_smoother(candidate)
        smoothers[candidate] = smoother
        scores[candidate] = scorer(smoother, points, values)
    return scores, smoothers


def select_n_basis(
    data: FDataGrid,
    basis_factory: Callable[[tuple[float, float], int], object],
    candidates: Sequence[int],
    smoothing: float = 0.0,
    penalty_order: int = 2,
    criterion: str = "loocv",
    cache=None,
    return_fitted: bool = False,
) -> SelectionResult | FittedSelection:
    """Choose the basis size by (leave-one-out) cross-validation.

    Parameters
    ----------
    data:
        UFD samples of one parameter on a common grid.
    basis_factory:
        Callable ``(domain, n_basis) -> Basis``.
    candidates:
        Candidate basis sizes (the paper's ``L_ik`` sweep).
    smoothing, penalty_order:
        Passed through to the smoother for each candidate.
    criterion:
        ``"loocv"`` (paper's choice) or ``"gcv"``.
    cache:
        Optional shared :class:`~repro.engine.FactorizationCache`; each
        candidate's design matrix and normal-equation factorization are
        then computed at most once across the sweep, the winner's fit
        and any later pipeline work on the same configuration.
    return_fitted:
        When true, return a :class:`FittedSelection` carrying the
        winning smoother *already fitted* to ``data`` (batched path:
        the fit reuses the sweep's cached factorization, so it costs
        one back-substitution instead of a refit).
    """

    def make(n_basis):
        basis = basis_factory(data.domain, int(n_basis))
        return BasisSmoother(
            basis, smoothing=smoothing, penalty_order=penalty_order, cache=cache
        )

    scores, smoothers = _sweep(list(candidates), make, data.grid, data.values, criterion)
    best = min(scores, key=scores.get)
    if not return_fitted:
        return SelectionResult(best=best, scores=scores)
    winner = smoothers[best]
    return FittedSelection(best=best, scores=scores, smoother=winner, fit=winner.fit_grid(data))


def select_smoothing(
    data: FDataGrid,
    basis,
    candidates: Sequence[float],
    penalty_order: int = 2,
    criterion: str = "gcv",
    cache=None,
) -> SelectionResult:
    """Choose the smoothing weight ``lambda`` by cross-validation."""

    def make(lam):
        return BasisSmoother(
            basis, smoothing=float(lam), penalty_order=penalty_order, cache=cache
        )

    scores, _ = _sweep(list(candidates), make, data.grid, data.values, criterion)
    best = min(scores, key=scores.get)
    return SelectionResult(best=best, scores=scores)
