"""Containers for discrete and basis-represented functional data.

Two families of objects:

* **Discrete** containers hold raw, possibly noisy measurements —
  :class:`FDataGrid` for univariate functional data (UFD) on a common
  grid, :class:`MFDataGrid` for multivariate functional data (MFD,
  the ``(n, m, p)`` cube), and :class:`IrregularFData` for
  sample-specific measurement points (the paper's ``t_{i·}``).
* **Basis** containers (:class:`BasisFData`, :class:`MultivariateBasisFData`)
  hold fitted coefficient vectors and evaluate the smooth
  reconstruction ``x~`` and its derivatives anywhere (paper Eq. 1–2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ValidationError
from repro.fda.basis.base import Basis
from repro.fda.quadrature import integrate_sampled
from repro.utils.validation import as_float_array, check_grid, check_int

__all__ = [
    "FDataGrid",
    "MFDataGrid",
    "IrregularFData",
    "BasisFData",
    "MultivariateBasisFData",
    "as_mfd",
]


def as_mfd(data) -> "MFDataGrid":
    """Coerce (M)FDataGrid input to :class:`MFDataGrid`, rejecting the rest.

    The shared input-normalization step of every consumer that accepts
    both univariate and multivariate gridded data (pipeline, methods,
    serving).
    """
    if isinstance(data, FDataGrid):
        return data.to_multivariate()
    if not isinstance(data, MFDataGrid):
        raise ValidationError(
            f"data must be MFDataGrid or FDataGrid, got {type(data).__name__}"
        )
    return data


@dataclass(frozen=True)
class FDataGrid:
    """Univariate functional data sampled on a common grid.

    Attributes
    ----------
    values:
        Array of shape ``(n_samples, n_points)``.
    grid:
        Strictly increasing array of shape ``(n_points,)``.
    """

    values: np.ndarray
    grid: np.ndarray

    def __post_init__(self):
        grid = check_grid(self.grid, "grid")
        values = as_float_array(self.values, "values")
        if values.ndim == 1:
            values = values[None, :]
        if values.ndim != 2:
            raise ValidationError(f"values must be 2-D (n, m), got shape {values.shape}")
        if values.shape[1] != grid.shape[0]:
            raise ValidationError(
                f"values have {values.shape[1]} points but grid has {grid.shape[0]}"
            )
        object.__setattr__(self, "values", values)
        object.__setattr__(self, "grid", grid)

    @property
    def n_samples(self) -> int:
        return self.values.shape[0]

    @property
    def n_points(self) -> int:
        return self.grid.shape[0]

    @property
    def domain(self) -> tuple[float, float]:
        return float(self.grid[0]), float(self.grid[-1])

    def __len__(self) -> int:
        return self.n_samples

    def __getitem__(self, index) -> "FDataGrid":
        picked = np.atleast_2d(self.values[index])
        return FDataGrid(picked, self.grid)

    def integrate(self) -> np.ndarray:
        """Trapezoid integral of each sample over the grid."""
        return np.asarray(integrate_sampled(self.values, self.grid))

    def to_multivariate(self) -> "MFDataGrid":
        """View as single-parameter MFD (p = 1)."""
        return MFDataGrid(self.values[:, :, None], self.grid)


@dataclass(frozen=True)
class MFDataGrid:
    """Multivariate functional data sampled on a common grid.

    Attributes
    ----------
    values:
        Array of shape ``(n_samples, n_points, n_parameters)`` — sample
        ``i`` is the path ``t -> values[i, :, :]`` in ``R^p``.
    grid:
        Strictly increasing array of shape ``(n_points,)``.
    """

    values: np.ndarray
    grid: np.ndarray

    def __post_init__(self):
        grid = check_grid(self.grid, "grid")
        values = as_float_array(self.values, "values")
        if values.ndim != 3:
            raise ValidationError(f"values must be 3-D (n, m, p), got shape {values.shape}")
        if values.shape[1] != grid.shape[0]:
            raise ValidationError(
                f"values have {values.shape[1]} points but grid has {grid.shape[0]}"
            )
        object.__setattr__(self, "values", values)
        object.__setattr__(self, "grid", grid)

    @property
    def n_samples(self) -> int:
        return self.values.shape[0]

    @property
    def n_points(self) -> int:
        return self.grid.shape[0]

    @property
    def n_parameters(self) -> int:
        return self.values.shape[2]

    @property
    def domain(self) -> tuple[float, float]:
        return float(self.grid[0]), float(self.grid[-1])

    def __len__(self) -> int:
        return self.n_samples

    def __getitem__(self, index) -> "MFDataGrid":
        picked = self.values[index]
        if picked.ndim == 2:
            picked = picked[None, :, :]
        return MFDataGrid(picked, self.grid)

    def parameter(self, k: int) -> FDataGrid:
        """Extract parameter ``k`` as univariate functional data."""
        k = check_int(k, "k", minimum=0)
        if k >= self.n_parameters:
            raise ValidationError(f"parameter index {k} out of range (p={self.n_parameters})")
        return FDataGrid(self.values[:, :, k], self.grid)

    def concat_parameters(self, other: "MFDataGrid") -> "MFDataGrid":
        """Stack the parameters of ``other`` after those of ``self``."""
        if other.n_samples != self.n_samples or other.n_points != self.n_points:
            raise ValidationError("cannot concatenate MFD with mismatched shapes")
        if not np.allclose(other.grid, self.grid):
            raise ValidationError("cannot concatenate MFD with different grids")
        return MFDataGrid(np.concatenate((self.values, other.values), axis=2), self.grid)


class IrregularFData:
    """Univariate functional data with sample-specific measurement points.

    The paper's formulation (Sec. 2) makes no assumption on the
    distribution of the measurement points ``t_{i·}``; this container
    holds one ``(t_i, y_i)`` pair per sample.
    """

    def __init__(self, points: list, values: list):
        if len(points) != len(values):
            raise ValidationError(
                f"points and values must have the same length, got {len(points)} and {len(values)}"
            )
        if not points:
            raise ValidationError("IrregularFData needs at least one sample")
        self.points = [check_grid(t, f"points[{i}]") for i, t in enumerate(points)]
        self.values = []
        for i, (t, y) in enumerate(zip(self.points, values)):
            y = as_float_array(y, f"values[{i}]")
            if y.shape != t.shape:
                raise ValidationError(
                    f"sample {i}: values shape {y.shape} does not match points shape {t.shape}"
                )
            self.values.append(y)

    @property
    def n_samples(self) -> int:
        return len(self.points)

    @property
    def domain(self) -> tuple[float, float]:
        low = min(float(t[0]) for t in self.points)
        high = max(float(t[-1]) for t in self.points)
        return low, high

    def __len__(self) -> int:
        return self.n_samples

    @classmethod
    def from_grid(cls, data: FDataGrid) -> "IrregularFData":
        """Wrap common-grid data as irregular data (shared points per sample)."""
        return cls([data.grid] * data.n_samples, [row for row in data.values])


@dataclass(frozen=True)
class BasisFData:
    """Univariate functional data in basis representation (paper Eq. 1).

    Attributes
    ----------
    basis:
        The shared basis system.
    coefficients:
        Array of shape ``(n_samples, n_basis)`` — row ``i`` is the
        paper's ``alpha_{ik}`` for one parameter ``k``.
    """

    basis: Basis
    coefficients: np.ndarray

    def __post_init__(self):
        coeffs = as_float_array(self.coefficients, "coefficients")
        if coeffs.ndim == 1:
            coeffs = coeffs[None, :]
        if coeffs.ndim != 2:
            raise ValidationError(f"coefficients must be 2-D, got shape {coeffs.shape}")
        if coeffs.shape[1] != self.basis.n_basis:
            raise ValidationError(
                f"coefficients have {coeffs.shape[1]} columns but basis has "
                f"{self.basis.n_basis} functions"
            )
        object.__setattr__(self, "coefficients", coeffs)

    @property
    def n_samples(self) -> int:
        return self.coefficients.shape[0]

    @property
    def domain(self) -> tuple[float, float]:
        return self.basis.domain

    def __len__(self) -> int:
        return self.n_samples

    def evaluate(self, grid, derivative: int = 0) -> np.ndarray:
        """Evaluate ``D^q x~_i`` for all samples on a grid → ``(n, len(grid))``."""
        design = self.basis.evaluate(grid, derivative=derivative)
        return self.coefficients @ design.T

    def to_grid(self, grid) -> FDataGrid:
        """Materialize the smooth reconstructions on a grid."""
        grid = check_grid(grid, "grid")
        return FDataGrid(self.evaluate(grid), grid)


@dataclass(frozen=True)
class MultivariateBasisFData:
    """Multivariate functional data with one basis representation per parameter.

    Attributes
    ----------
    components:
        List of ``p`` :class:`BasisFData`, all with the same number of
        samples and the same domain (bases may differ in size per the
        paper's per-parameter basis selection).
    """

    components: list = field(default_factory=list)

    def __post_init__(self):
        if not self.components:
            raise ValidationError("MultivariateBasisFData needs at least one component")
        n = self.components[0].n_samples
        domain = self.components[0].domain
        for k, comp in enumerate(self.components):
            if not isinstance(comp, BasisFData):
                raise ValidationError(f"component {k} is not a BasisFData")
            if comp.n_samples != n:
                raise ValidationError(
                    f"component {k} has {comp.n_samples} samples, expected {n}"
                )
            if not np.allclose(comp.domain, domain):
                raise ValidationError(f"component {k} has a different domain")

    @property
    def n_samples(self) -> int:
        return self.components[0].n_samples

    @property
    def n_parameters(self) -> int:
        return len(self.components)

    @property
    def domain(self) -> tuple[float, float]:
        return self.components[0].domain

    def __len__(self) -> int:
        return self.n_samples

    def evaluate(self, grid, derivative: int = 0) -> np.ndarray:
        """Evaluate all parameters on a grid → ``(n, len(grid), p)``."""
        layers = [comp.evaluate(grid, derivative=derivative) for comp in self.components]
        return np.stack(layers, axis=2)

    def to_grid(self, grid) -> MFDataGrid:
        grid = check_grid(grid, "grid")
        return MFDataGrid(self.evaluate(grid), grid)
