"""Abstract basis system for functional approximation (paper Eq. 1).

A basis system is a finite family of functions ``phi_1 .. phi_L`` on a
closed interval ``T = [t_min, t_max]``.  A functional datum is
represented by its coefficient vector ``alpha`` via
``x~(t) = sum_l alpha_l * phi_l(t)`` and, by linearity (paper Eq. 2),
its q-th derivative by applying ``D^q`` to each basis function.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.exceptions import BasisError
from repro.utils.validation import as_float_array, check_int

__all__ = ["Basis"]


class Basis(abc.ABC):
    """A finite basis of real functions on a closed interval.

    Parameters
    ----------
    domain:
        Tuple ``(t_min, t_max)`` with ``t_min < t_max``.
    n_basis:
        Number of basis functions ``L`` (the *basis size*).
    """

    def __init__(self, domain: tuple[float, float], n_basis: int):
        low, high = float(domain[0]), float(domain[1])
        if not (np.isfinite(low) and np.isfinite(high)) or high <= low:
            raise BasisError(f"domain must be a finite interval (low < high), got {domain!r}")
        self.domain = (low, high)
        self.n_basis = check_int(n_basis, "n_basis", minimum=1)

    # ------------------------------------------------------------------ API
    @abc.abstractmethod
    def _evaluate(self, points: np.ndarray, derivative: int) -> np.ndarray:
        """Return the (n_points, n_basis) design matrix of ``D^q phi_l``."""

    def _cache_key_extras(self) -> tuple:
        """Subclass hook: extra hashables that pin down the basis functions.

        The default covers bases fully determined by ``(type, domain,
        n_basis)``; bases with further shape parameters (e.g. B-spline
        order and knots) must extend it.
        """
        return ()

    def _config_extras(self) -> dict:
        """Subclass hook: extra JSON-able constructor arguments.

        Must mirror :meth:`to_config`: every key returned here is passed
        back to the constructor by
        :func:`repro.fda.basis.basis_from_config`.
        """
        return {}

    def to_config(self) -> dict:
        """JSON-able description that reconstructs this basis exactly.

        The config contains only plain Python scalars/lists (no arrays,
        no callables) so it can live in a persisted pipeline manifest;
        :func:`repro.fda.basis.basis_from_config` inverts it.  Two bases
        whose configs are equal have equal :attr:`cache_key`, hence
        bit-identical design matrices.
        """
        return {
            "type": type(self).__name__,
            "domain": [float(self.domain[0]), float(self.domain[1])],
            "n_basis": int(self.n_basis),
            **self._config_extras(),
        }

    @property
    def cache_key(self) -> tuple:
        """Hashable identity of the basis *functions* (not the instance).

        Two basis objects with equal keys evaluate to bit-identical
        design matrices, so engine caches may share artifacts between
        them (:class:`repro.engine.FactorizationCache`).
        """
        return (type(self).__name__, self.domain, self.n_basis, *self._cache_key_extras())

    @property
    def max_derivative(self) -> int:
        """Highest derivative order this basis can evaluate (inf-like default)."""
        return 16

    @property
    def interior_breakpoints(self) -> np.ndarray:
        """Points where derivatives may be discontinuous (used by quadrature).

        Smooth bases (Fourier, polynomial) have none; B-splines return
        their interior knots.
        """
        return np.empty(0)

    def evaluate(self, points, derivative: int = 0) -> np.ndarray:
        """Evaluate all basis functions (or a derivative) at the given points.

        Parameters
        ----------
        points:
            1-D array of evaluation points inside the closed domain.
        derivative:
            Derivative order ``q >= 0``.

        Returns
        -------
        numpy.ndarray of shape ``(len(points), n_basis)``
            The design matrix ``Phi`` with ``Phi[j, l] = D^q phi_l(points[j])``.
        """
        derivative = check_int(derivative, "derivative", minimum=0)
        if derivative > self.max_derivative:
            raise BasisError(
                f"{type(self).__name__} supports derivatives up to order "
                f"{self.max_derivative}, got {derivative}"
            )
        pts = as_float_array(points, "points")
        if pts.ndim == 0:
            pts = pts[None]
        if pts.ndim != 1:
            raise BasisError(f"points must be scalar or 1-D, got shape {pts.shape}")
        low, high = self.domain
        eps = 1e-10 * max(1.0, abs(high - low))
        if pts.size and (pts.min() < low - eps or pts.max() > high + eps):
            raise BasisError(
                f"points must lie in the domain [{low}, {high}], "
                f"got range [{pts.min()}, {pts.max()}]"
            )
        pts = np.clip(pts, low, high)
        design = self._evaluate(pts, derivative)
        if design.shape != (pts.shape[0], self.n_basis):
            raise BasisError(
                f"basis evaluation returned shape {design.shape}, expected "
                f"{(pts.shape[0], self.n_basis)}"
            )
        return design

    def design_matrix(self, points) -> np.ndarray:
        """Alias of :meth:`evaluate` with ``derivative=0`` (paper's ``Phi_ik``)."""
        return self.evaluate(points, derivative=0)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(domain={self.domain}, n_basis={self.n_basis})"
