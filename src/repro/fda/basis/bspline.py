"""B-spline basis implemented with the Cox–de Boor recursion.

The paper (Sec. 2.1) represents smooth functional data in a B-spline
basis — piecewise polynomials of a given order glued smoothly at knots.
This implementation builds the basis from first principles:

* knot vector: *open uniform* (clamped) — the boundary knots are repeated
  ``order`` times so the basis spans polynomials on the closed domain and
  interpolation at the boundaries is possible;
* evaluation: Cox–de Boor recursion, vectorized over evaluation points;
* derivatives: the classical derivative formula expressing ``D B_{l,k}``
  as a difference of order ``k-1`` B-splines, applied recursively.

The unit tests validate every value against :class:`scipy.interpolate.BSpline`.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import BasisError
from repro.fda.basis.base import Basis
from repro.utils.validation import check_int, check_vector

__all__ = ["BSplineBasis"]


class BSplineBasis(Basis):
    """Clamped B-spline basis on a closed interval.

    Parameters
    ----------
    domain:
        Closed interval ``(t_min, t_max)``.
    n_basis:
        Number of basis functions ``L``; must satisfy ``L >= order``.
    order:
        Spline order ``k`` (polynomial degree ``k - 1``).  The default
        ``order=4`` gives cubic splines, the standard choice when second
        derivatives are needed (as for the curvature mapping, Eq. 5).
    knots:
        Optional explicit *interior* knots (strictly increasing, inside
        the open domain).  When omitted, ``n_basis - order`` interior
        knots are placed uniformly.
    """

    def __init__(
        self,
        domain: tuple[float, float],
        n_basis: int,
        order: int = 4,
        knots=None,
    ):
        super().__init__(domain, n_basis)
        self.order = check_int(order, "order", minimum=1)
        if self.n_basis < self.order:
            raise BasisError(
                f"n_basis ({self.n_basis}) must be >= order ({self.order})"
            )
        low, high = self.domain
        n_interior = self.n_basis - self.order
        if knots is None:
            if n_interior > 0:
                interior = np.linspace(low, high, n_interior + 2)[1:-1]
            else:
                interior = np.empty(0)
        else:
            interior = check_vector(knots, "knots", min_length=0) if len(knots) else np.empty(0)
            if interior.size:
                if np.any(np.diff(interior) <= 0):
                    raise BasisError("interior knots must be strictly increasing")
                if interior.min() <= low or interior.max() >= high:
                    raise BasisError("interior knots must lie strictly inside the domain")
            if interior.size != n_interior:
                raise BasisError(
                    f"need exactly n_basis - order = {n_interior} interior knots, "
                    f"got {interior.size}"
                )
        self._interior = interior
        self.knot_vector = np.concatenate(
            (np.full(self.order, low), interior, np.full(self.order, high))
        )

    # ------------------------------------------------------------------ info
    def _cache_key_extras(self) -> tuple:
        return (self.order, self._interior.tobytes())

    def _config_extras(self) -> dict:
        return {"order": int(self.order), "knots": [float(t) for t in self._interior]}

    @property
    def degree(self) -> int:
        """Polynomial degree of the spline pieces (``order - 1``)."""
        return self.order - 1

    @property
    def max_derivative(self) -> int:
        return self.degree

    @property
    def interior_breakpoints(self) -> np.ndarray:
        return self._interior.copy()

    # ------------------------------------------------------------ evaluation
    def _zeroth_order(self, points: np.ndarray) -> np.ndarray:
        """Order-1 (piecewise constant) B-splines: indicator of the knot span.

        Returns an ``(n_points, len(knot_vector) - 1)`` matrix.  The last
        span is closed on the right so the basis sums to one on the whole
        closed domain, including the right endpoint.
        """
        knots = self.knot_vector
        n_spans = knots.shape[0] - 1
        design = np.zeros((points.shape[0], n_spans))
        # Index of the last knot strictly <= point, capped to the final
        # *non-degenerate* span for points at the right boundary.
        last_real = np.max(np.nonzero(np.diff(knots) > 0)[0])
        span = np.searchsorted(knots, points, side="right") - 1
        span = np.clip(span, 0, last_real)
        at_right = points >= knots[-1]
        span[at_right] = last_real
        design[np.arange(points.shape[0]), span] = 1.0
        return design

    def _raise_order(self, design: np.ndarray, points: np.ndarray, target_order: int) -> np.ndarray:
        """Apply the Cox–de Boor recursion up to ``target_order``."""
        knots = self.knot_vector
        for k in range(2, target_order + 1):
            n_funcs = knots.shape[0] - k
            new = np.zeros((points.shape[0], n_funcs))
            for l in range(n_funcs):
                left_den = knots[l + k - 1] - knots[l]
                right_den = knots[l + k] - knots[l + 1]
                term = 0.0
                if left_den > 0:
                    term = term + ((points - knots[l]) / left_den) * design[:, l]
                if right_den > 0:
                    term = term + ((knots[l + k] - points) / right_den) * design[:, l + 1]
                new[:, l] = term
            design = new
        return design

    def _evaluate_order(self, points: np.ndarray, order: int) -> np.ndarray:
        """Evaluate all B-splines of the given order on the shared knot vector."""
        design = self._zeroth_order(points)
        if order > 1:
            design = self._raise_order(design, points, order)
        return design

    def _evaluate(self, points: np.ndarray, derivative: int) -> np.ndarray:
        if derivative > self.degree:
            # Derivatives beyond the degree vanish identically.
            return np.zeros((points.shape[0], self.n_basis))
        if derivative == 0:
            return self._evaluate_order(points, self.order)
        # Differentiate via the B-spline derivative recursion:
        # D B_{l,k}(t) = (k-1) * [ B_{l,k-1}/(u_{l+k-1}-u_l) - B_{l+1,k-1}/(u_{l+k}-u_{l+1}) ]
        # Implemented as a banded linear map applied `derivative` times.
        knots = self.knot_vector
        lower = self._evaluate_order(points, self.order - derivative)
        # Build up the coefficient transformation from order k-q to order k.
        design = lower
        for step in range(derivative, 0, -1):
            k = self.order - step + 1  # target order of this step
            n_funcs_target = knots.shape[0] - k
            new = np.zeros((points.shape[0], n_funcs_target))
            for l in range(n_funcs_target):
                left_den = knots[l + k - 1] - knots[l]
                right_den = knots[l + k] - knots[l + 1]
                term = 0.0
                if left_den > 0:
                    term = term + design[:, l] / left_den
                if right_den > 0:
                    term = term - design[:, l + 1] / right_den
                new[:, l] = (k - 1) * term
            design = new
        return design
