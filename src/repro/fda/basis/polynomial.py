"""Polynomial (monomial and Legendre) bases.

Included for completeness and for unit tests: low-order geometry
(lines, parabolas) has closed-form curvature, and representing such
curves exactly in a polynomial basis lets tests verify the whole
smoothing → derivative → curvature chain against analytic results.
"""

from __future__ import annotations

import math

import numpy as np

from repro.fda.basis.base import Basis

__all__ = ["MonomialBasis", "LegendreBasis"]


class MonomialBasis(Basis):
    """Monomials ``1, s, s^2, ...`` in the centred variable ``s = t - mid``.

    Centering at the interval midpoint keeps the design matrix
    well-conditioned for moderate degrees.
    """

    def __init__(self, domain: tuple[float, float], n_basis: int):
        super().__init__(domain, n_basis)
        self.center = 0.5 * (self.domain[0] + self.domain[1])

    def _evaluate(self, points: np.ndarray, derivative: int) -> np.ndarray:
        design = np.zeros((points.shape[0], self.n_basis))
        shifted = points - self.center
        for power in range(self.n_basis):
            if power < derivative:
                continue
            coeff = math.perm(power, derivative)
            design[:, power] = coeff * shifted ** (power - derivative)
        return design


class LegendreBasis(Basis):
    """Legendre polynomials rescaled to the domain (orthogonal in L2)."""

    def _evaluate(self, points: np.ndarray, derivative: int) -> np.ndarray:
        low, high = self.domain
        # Map the domain to [-1, 1]; chain rule brings a factor per derivative.
        scale = 2.0 / (high - low)
        mapped = scale * (points - low) - 1.0
        design = np.zeros((points.shape[0], self.n_basis))
        for degree in range(self.n_basis):
            coeffs = np.zeros(degree + 1)
            coeffs[degree] = 1.0
            poly = np.polynomial.legendre.Legendre(coeffs)
            design[:, degree] = poly.deriv(derivative)(mapped) if derivative else poly(mapped)
        return design * scale**derivative
