"""Fourier basis — the paper's recommended choice for periodic data.

Basis functions on ``[a, b]`` with period ``b - a``::

    phi_1(t) = 1 / sqrt(b - a)
    phi_2(t) = sqrt(2/(b-a)) * sin(omega t),  phi_3 = ... cos(omega t)
    phi_4(t) = sqrt(2/(b-a)) * sin(2 omega t), ...

with ``omega = 2 pi / (b - a)``.  The normalization makes the basis
orthonormal in L2([a, b]), so the roughness penalty matrix is diagonal —
a property exercised by the unit tests.
"""

from __future__ import annotations

import numpy as np

from repro.fda.basis.base import Basis

__all__ = ["FourierBasis"]


class FourierBasis(Basis):
    """Orthonormal Fourier basis (constant + sine/cosine pairs).

    ``n_basis`` may be any positive integer; with an even value the last
    pair is truncated after its sine term.
    """

    def __init__(self, domain: tuple[float, float], n_basis: int):
        super().__init__(domain, n_basis)
        low, high = self.domain
        self.period = high - low
        self.omega = 2.0 * np.pi / self.period

    def _evaluate(self, points: np.ndarray, derivative: int) -> np.ndarray:
        low, _ = self.domain
        length = self.period
        design = np.zeros((points.shape[0], self.n_basis))
        shifted = points - low
        const_norm = 1.0 / np.sqrt(length)
        pair_norm = np.sqrt(2.0 / length)
        # Constant term: derivative 0 keeps it, any derivative kills it.
        if derivative == 0:
            design[:, 0] = const_norm
        for idx in range(1, self.n_basis):
            harmonic = (idx + 1) // 2
            freq = harmonic * self.omega
            phase = freq * shifted
            is_sine = idx % 2 == 1
            # q-th derivative of sin is freq^q * sin(phase + q*pi/2); same for cos.
            shift = derivative * np.pi / 2.0
            amp = pair_norm * freq**derivative
            if is_sine:
                design[:, idx] = amp * np.sin(phase + shift)
            else:
                design[:, idx] = amp * np.cos(phase + shift)
        return design
