"""Basis systems for functional approximation (paper Eq. 1)."""

from repro.exceptions import BasisError
from repro.fda.basis.base import Basis
from repro.fda.basis.bspline import BSplineBasis
from repro.fda.basis.fourier import FourierBasis
from repro.fda.basis.polynomial import LegendreBasis, MonomialBasis

__all__ = [
    "Basis",
    "BSplineBasis",
    "FourierBasis",
    "LegendreBasis",
    "MonomialBasis",
    "BASIS_REGISTRY",
    "basis_from_config",
]

#: Concrete basis classes addressable from persisted configs, keyed by
#: class name (the ``"type"`` field of :meth:`Basis.to_config`).
BASIS_REGISTRY: dict[str, type[Basis]] = {
    cls.__name__: cls for cls in (BSplineBasis, FourierBasis, LegendreBasis, MonomialBasis)
}


def basis_from_config(config: dict) -> Basis:
    """Rebuild a basis from a :meth:`Basis.to_config` dictionary.

    The inverse of :meth:`Basis.to_config`: ``basis_from_config(b.to_config())``
    returns a basis with the same :attr:`~Basis.cache_key` as ``b`` (and
    therefore bit-identical design matrices).
    """
    if not isinstance(config, dict) or "type" not in config:
        raise BasisError(f"basis config must be a dict with a 'type' key, got {config!r}")
    kwargs = dict(config)
    name = kwargs.pop("type")
    cls = BASIS_REGISTRY.get(name)
    if cls is None:
        raise BasisError(
            f"unknown basis type {name!r}; known: {sorted(BASIS_REGISTRY)}"
        )
    domain = kwargs.pop("domain", None)
    if domain is None or len(domain) != 2:
        raise BasisError(f"basis config needs a 2-element 'domain', got {domain!r}")
    return cls(tuple(float(v) for v in domain), **kwargs)
