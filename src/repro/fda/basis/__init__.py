"""Basis systems for functional approximation (paper Eq. 1)."""

from repro.fda.basis.base import Basis
from repro.fda.basis.bspline import BSplineBasis
from repro.fda.basis.fourier import FourierBasis
from repro.fda.basis.polynomial import LegendreBasis, MonomialBasis

__all__ = ["Basis", "BSplineBasis", "FourierBasis", "LegendreBasis", "MonomialBasis"]
