"""Roughness penalty matrices (the ``R`` matrix of paper Eq. 3).

``R[j, m] = integral over T of  D^q phi_j(t) * D^q phi_m(t) dt``

is the Gram matrix of the q-th derivatives of the basis functions.  The
penalized least-squares criterion adds ``lambda * alpha' R alpha`` to
the residual sum of squares, shrinking the fit toward functions with a
small q-th derivative, i.e. smooth fits (paper Sec. 2.2; q=2 penalizes
acceleration, the common default).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import BasisError
from repro.fda.basis.base import Basis
from repro.fda.quadrature import integrate_function
from repro.utils.linalg import symmetrize
from repro.utils.validation import check_int

__all__ = ["penalty_matrix", "gram_matrix"]


def penalty_matrix(basis: Basis, derivative: int = 2, n_nodes: int = 32) -> np.ndarray:
    """Compute the roughness penalty matrix for a basis.

    Parameters
    ----------
    basis:
        Any :class:`~repro.fda.basis.Basis`.
    derivative:
        Penalized derivative order ``q`` (paper recommends 1 or 2).
    n_nodes:
        Gauss–Legendre nodes per smooth piece.  B-spline derivative
        products are piecewise polynomials, so with the basis's interior
        knots as breakpoints the quadrature is exact for practical sizes.

    Returns
    -------
    numpy.ndarray of shape ``(n_basis, n_basis)``
        Symmetric positive semi-definite matrix ``R``.
    """
    derivative = check_int(derivative, "derivative", minimum=0)
    if derivative > basis.max_derivative:
        raise BasisError(
            f"basis supports derivatives up to {basis.max_derivative}, got q={derivative}"
        )
    low, high = basis.domain

    def integrand(points: np.ndarray) -> np.ndarray:
        design = basis.evaluate(points, derivative=derivative)
        # Outer products per point: result has point axis first.
        return design[:, :, None] * design[:, None, :]

    matrix = integrate_function(
        integrand, low, high, n_nodes=n_nodes, breakpoints=basis.interior_breakpoints
    )
    return symmetrize(np.asarray(matrix))


def gram_matrix(basis: Basis, n_nodes: int = 32) -> np.ndarray:
    """L2 Gram matrix of the basis itself (``derivative=0`` penalty matrix)."""
    return penalty_matrix(basis, derivative=0, n_nodes=n_nodes)
