"""Penalized least-squares smoothing (paper Eq. 3–4).

Given noisy observations ``y_j = x(t_j) + eps_j`` and a basis, the
coefficient vector minimizes

    J_lambda(alpha) = || y - Phi alpha ||^2 + lambda * alpha' R alpha

whose closed-form minimizer is the ridge-type solution

    alpha* = (Phi' Phi + lambda R)^{-1} Phi' y          (paper Eq. 4)

The fit is a *linear smoother*: fitted values are ``S y`` with hat
matrix ``S = Phi (Phi' Phi + lambda R)^{-1} Phi'``, which gives the
leave-one-out shortcut used by :mod:`repro.fda.selection`.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.fda.basis.base import Basis
from repro.fda.fdata import BasisFData, FDataGrid, IrregularFData, MFDataGrid, MultivariateBasisFData
from repro.utils.validation import as_float_array, check_grid, check_int, check_positive

__all__ = ["BasisSmoother", "smooth_mfd"]


class BasisSmoother:
    """Fit basis coefficients to noisy curves by penalized least squares.

    Parameters
    ----------
    basis:
        Basis system shared by all samples of one parameter.
    smoothing:
        The penalty weight ``lambda >= 0`` (paper's ``lambda_k``); 0
        disables the penalty (plain least squares).
    penalty_order:
        Derivative order ``q`` in the roughness penalty; the paper
        recommends 1 (velocity) or 2 (acceleration, default).
    cache:
        A shared :class:`~repro.engine.FactorizationCache`.  When
        omitted, the smoother uses a private cache, so repeated fits on
        the same grid still pay for one factorization only.  Passing
        the cache of an :class:`~repro.engine.ExecutionContext` shares
        artifacts across smoothers, the LOO-CV sweep and the pipeline.
    """

    def __init__(
        self,
        basis: Basis,
        smoothing: float = 0.0,
        penalty_order: int = 2,
        cache=None,
    ):
        if not isinstance(basis, Basis):
            raise ValidationError(f"basis must be a Basis instance, got {type(basis).__name__}")
        from repro.engine.cache import FactorizationCache

        if cache is not None and not isinstance(cache, FactorizationCache):
            raise ValidationError(
                f"cache must be a FactorizationCache, got {type(cache).__name__}"
            )
        self.basis = basis
        self.smoothing = check_positive(smoothing, "smoothing", strict=False)
        self.penalty_order = check_int(penalty_order, "penalty_order", minimum=0)
        self.cache = cache if cache is not None else FactorizationCache()

    # ---------------------------------------------------------------- internals
    @property
    def penalty(self) -> np.ndarray:
        """The roughness penalty matrix ``R`` (cached in the engine cache)."""
        if self.smoothing > 0:
            return self.cache.penalty(self.basis, self.penalty_order)
        return np.zeros((self.basis.n_basis, self.basis.n_basis))

    def _solver(self, points: np.ndarray):
        """Cached factorization of the normal equations on ``points``."""
        return self.cache.solver(self.basis, points, self.smoothing, self.penalty_order)

    # ---------------------------------------------------------------- fitting
    def fit_sample(self, points, values) -> np.ndarray:
        """Fit one curve observed at ``points`` and return its coefficients."""
        points = check_grid(points, "points")
        values = as_float_array(values, "values")
        if values.shape != points.shape:
            raise ValidationError(
                f"values shape {values.shape} does not match points shape {points.shape}"
            )
        if points.shape[0] < self.basis.n_basis and self.smoothing == 0:
            raise ValidationError(
                f"unpenalized fit needs at least n_basis={self.basis.n_basis} points, "
                f"got {points.shape[0]} (set smoothing > 0 to regularize)"
            )
        design = self.cache.design(self.basis, points)
        return self._solver(points).solve(design.T @ values)

    def fit_grid(self, data: FDataGrid) -> BasisFData:
        """Fit all curves sharing a common grid (single cached factorization)."""
        design = self.cache.design(self.basis, data.grid)
        rhs = design.T @ data.values.T  # (L, n)
        coeffs = self._solver(data.grid).solve(rhs)
        return BasisFData(self.basis, coeffs.T)

    def fit_irregular(self, data: IrregularFData) -> BasisFData:
        """Fit curves with sample-specific measurement points."""
        coeffs = np.empty((data.n_samples, self.basis.n_basis))
        for i, (points, values) in enumerate(zip(data.points, data.values)):
            coeffs[i] = self.fit_sample(points, values)
        return BasisFData(self.basis, coeffs)

    def fit(self, data) -> BasisFData:
        """Fit :class:`FDataGrid` or :class:`IrregularFData` (dispatching)."""
        if isinstance(data, FDataGrid):
            return self.fit_grid(data)
        if isinstance(data, IrregularFData):
            return self.fit_irregular(data)
        raise ValidationError(
            f"cannot smooth data of type {type(data).__name__}; "
            "expected FDataGrid or IrregularFData"
        )

    # ---------------------------------------------------------------- inference
    def transform(self, data) -> BasisFData:
        """Project *new* curves onto the fixed basis — the inference path.

        Smoothing is a per-curve linear projection: the "fitted state" of
        a smoother is its configuration (basis, ``lambda``, penalty
        order), not training coefficients, so transforming new curves
        never refits anything.  When the curves arrive on a grid the
        shared cache has seen before, the design matrix and the normal
        equation factorization are reused and this costs two GEMMs plus
        a triangular solve.
        """
        return self.fit(data)

    def to_config(self) -> dict:
        """JSON-able description reconstructing this smoother exactly.

        Inverted by :meth:`from_config`; contains the basis config plus
        the penalty settings, which fully determine the projection.
        """
        return {
            "basis": self.basis.to_config(),
            "smoothing": float(self.smoothing),
            "penalty_order": int(self.penalty_order),
        }

    @classmethod
    def from_config(cls, config: dict, cache=None) -> "BasisSmoother":
        """Rebuild a smoother from :meth:`to_config` output.

        ``cache`` optionally attaches a shared
        :class:`~repro.engine.FactorizationCache` so restored smoothers
        join an existing serving context's memoized factorizations.
        """
        from repro.fda.basis import basis_from_config

        if not isinstance(config, dict) or "basis" not in config:
            raise ValidationError(
                f"smoother config must be a dict with a 'basis' key, got {config!r}"
            )
        return cls(
            basis_from_config(config["basis"]),
            smoothing=float(config.get("smoothing", 0.0)),
            penalty_order=int(config.get("penalty_order", 2)),
            cache=cache,
        )

    # ---------------------------------------------------------------- hat matrix
    def hat_matrix(self, points) -> np.ndarray:
        """Hat (smoother) matrix ``S`` mapping observations to fitted values."""
        points = check_grid(points, "points")
        return self.cache.hat(self.basis, points, self.smoothing, self.penalty_order)

    def effective_df(self, points) -> float:
        """Effective degrees of freedom ``trace(S)`` of the smoother."""
        return float(np.trace(self.hat_matrix(points)))


class _FittedMFDSmoother:
    """Bookkeeping result of :func:`smooth_mfd` (fit + chosen settings)."""

    def __init__(self, fdata: MultivariateBasisFData, smoothers: list[BasisSmoother]):
        self.fdata = fdata
        self.smoothers = smoothers

    def __iter__(self):
        # Allow tuple-unpacking: fdata, smoothers = smooth_mfd(...)
        yield self.fdata
        yield self.smoothers


def smooth_mfd(
    data: MFDataGrid,
    basis_factory,
    smoothing: float | list[float] = 0.0,
    penalty_order: int = 2,
    cache=None,
) -> _FittedMFDSmoother:
    """Smooth every parameter of an MFD data set.

    Parameters
    ----------
    data:
        The raw MFD measurements.
    basis_factory:
        Callable ``(domain) -> Basis`` or a list of ``p`` such callables
        (the paper selects a basis size per parameter).
    smoothing:
        A single ``lambda`` or one per parameter.
    penalty_order:
        Roughness penalty order shared by all parameters.
    cache:
        Optional shared :class:`~repro.engine.FactorizationCache`
        threaded into every per-parameter smoother.

    Returns
    -------
    _FittedMFDSmoother
        Unpacks as ``(MultivariateBasisFData, list[BasisSmoother])``.
    """
    if not isinstance(data, MFDataGrid):
        raise ValidationError(f"data must be MFDataGrid, got {type(data).__name__}")
    p = data.n_parameters
    factories = basis_factory if isinstance(basis_factory, (list, tuple)) else [basis_factory] * p
    if len(factories) != p:
        raise ValidationError(f"need {p} basis factories, got {len(factories)}")
    lams = smoothing if isinstance(smoothing, (list, tuple)) else [smoothing] * p
    if len(lams) != p:
        raise ValidationError(f"need {p} smoothing values, got {len(lams)}")
    components = []
    smoothers = []
    for k in range(p):
        basis = factories[k](data.domain)
        smoother = BasisSmoother(
            basis, smoothing=lams[k], penalty_order=penalty_order, cache=cache
        )
        components.append(smoother.fit_grid(data.parameter(k)))
        smoothers.append(smoother)
    return _FittedMFDSmoother(MultivariateBasisFData(components), smoothers)
