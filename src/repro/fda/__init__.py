"""Functional-data substrate: bases, smoothing, selection, containers.

This subpackage implements Section 2 of the paper — representing noisy
discrete measurements as smooth functions in a basis (Eq. 1), fitting
coefficients by penalized least squares (Eq. 3–4), and evaluating
derivative functions by linearity (Eq. 2).
"""

from repro.fda.basis import Basis, BSplineBasis, FourierBasis, LegendreBasis, MonomialBasis
from repro.fda.fdata import (
    BasisFData,
    FDataGrid,
    IrregularFData,
    MFDataGrid,
    MultivariateBasisFData,
)
from repro.fda.penalty import gram_matrix, penalty_matrix
from repro.fda.registration import ShiftRegistrationResult, landmark_register, shift_register
from repro.fda.quadrature import (
    gauss_legendre_nodes,
    integrate_function,
    integrate_sampled,
    simpson_weights,
    trapezoid_weights,
)
from repro.fda.selection import (
    FittedSelection,
    SelectionResult,
    gcv_score,
    loocv_score,
    select_n_basis,
    select_smoothing,
)
from repro.fda.smoothing import BasisSmoother, smooth_mfd

__all__ = [
    "Basis",
    "BasisFData",
    "BasisSmoother",
    "BSplineBasis",
    "FDataGrid",
    "FittedSelection",
    "FourierBasis",
    "IrregularFData",
    "LegendreBasis",
    "MFDataGrid",
    "MonomialBasis",
    "MultivariateBasisFData",
    "SelectionResult",
    "ShiftRegistrationResult",
    "gauss_legendre_nodes",
    "gcv_score",
    "gram_matrix",
    "integrate_function",
    "integrate_sampled",
    "landmark_register",
    "loocv_score",
    "penalty_matrix",
    "select_n_basis",
    "select_smoothing",
    "shift_register",
    "simpson_weights",
    "smooth_mfd",
    "trapezoid_weights",
]
