"""Curve registration (alignment) — separating phase from amplitude.

Functional data often mix *amplitude* variation (what the curves do)
with *phase* variation (when they do it).  Our ECG substitute has
beat-to-beat phase jitter by construction, and the reproduction showed
that phase variation is precisely what degrades pointwise methods.
This module provides the two classical registration tools so that the
interaction can be studied (ablation A4):

* **shift registration** — find, per curve, the time shift maximizing
  its inner product with a template (iterated Procrustes-style against
  the cross-sectional mean); periodic and clamped boundary handling;
* **landmark registration** — warp each curve so that user-supplied
  landmarks (e.g. the R-peak location) map to common positions, using a
  monotone piecewise-linear time warp.

Both operate on :class:`~repro.fda.fdata.FDataGrid` and return aligned
data on the same grid plus the estimated warps.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ValidationError
from repro.fda.fdata import FDataGrid
from repro.utils.validation import as_float_array, check_int, check_positive

__all__ = ["ShiftRegistrationResult", "shift_register", "landmark_register"]


@dataclass(frozen=True)
class ShiftRegistrationResult:
    """Aligned curves plus the per-sample shifts that were applied."""

    aligned: FDataGrid
    shifts: np.ndarray

    def __post_init__(self):
        if self.shifts.shape[0] != self.aligned.n_samples:
            raise ValidationError("one shift per sample required")


def _interp_shifted(values: np.ndarray, grid: np.ndarray, shift: float, periodic: bool) -> np.ndarray:
    """Evaluate a sampled curve at ``grid + shift`` by linear interpolation."""
    query = grid + shift
    if periodic:
        period = grid[-1] - grid[0]
        query = grid[0] + np.mod(query - grid[0], period)
        return np.interp(query, grid, values, period=period)
    return np.interp(query, grid, values, left=values[0], right=values[-1])


def shift_register(
    data: FDataGrid,
    max_shift: float | None = None,
    n_iterations: int = 3,
    n_candidates: int = 81,
    periodic: bool = False,
    template: np.ndarray | None = None,
) -> ShiftRegistrationResult:
    """Align curves by per-sample time shifts against a common template.

    Parameters
    ----------
    data:
        Curves on a common grid.
    max_shift:
        Largest |shift| explored (default: 10% of the domain length).
    n_iterations:
        Template re-estimation rounds (the template is the mean of the
        currently aligned curves; one round = classic pairwise
        registration to the raw mean).
    n_candidates:
        Grid resolution of the shift search (exhaustive 1-D search is
        robust and cheap at these sizes).
    periodic:
        Wrap around the domain instead of clamping at the boundaries.
    template:
        Optional fixed template; skips template re-estimation.

    Returns
    -------
    ShiftRegistrationResult
    """
    if not isinstance(data, FDataGrid):
        raise ValidationError(f"data must be FDataGrid, got {type(data).__name__}")
    n_iterations = check_int(n_iterations, "n_iterations", minimum=1)
    n_candidates = check_int(n_candidates, "n_candidates", minimum=3)
    grid = data.grid
    span = grid[-1] - grid[0]
    if max_shift is None:
        max_shift = 0.1 * span
    max_shift = check_positive(max_shift, "max_shift")
    candidates = np.linspace(-max_shift, max_shift, n_candidates)

    values = data.values
    shifts = np.zeros(data.n_samples)
    fixed_template = None
    if template is not None:
        fixed_template = as_float_array(template, "template")
        if fixed_template.shape != grid.shape:
            raise ValidationError("template must match the grid length")

    aligned = values.copy()
    for _ in range(n_iterations):
        target = fixed_template if fixed_template is not None else aligned.mean(axis=0)
        target_centered = target - target.mean()
        for i in range(data.n_samples):
            best_shift, best_score = 0.0, -np.inf
            for shift in candidates:
                moved = _interp_shifted(values[i], grid, shift, periodic)
                moved_centered = moved - moved.mean()
                score = float(moved_centered @ target_centered)
                if score > best_score:
                    best_score, best_shift = score, float(shift)
            shifts[i] = best_shift
            aligned[i] = _interp_shifted(values[i], grid, best_shift, periodic)
        if fixed_template is not None:
            break
    return ShiftRegistrationResult(aligned=FDataGrid(aligned, grid), shifts=shifts)


def landmark_register(
    data: FDataGrid,
    landmarks: np.ndarray,
    targets: np.ndarray | None = None,
) -> FDataGrid:
    """Warp curves so per-sample landmarks land on common target positions.

    Parameters
    ----------
    data:
        Curves on a common grid.
    landmarks:
        Array ``(n_samples, n_landmarks)`` of strictly increasing interior
        time points per sample (e.g. detected R-peak locations).
    targets:
        Common positions ``(n_landmarks,)``; default: the cross-sample
        mean of each landmark.

    Returns
    -------
    FDataGrid
        Curves warped by the monotone piecewise-linear maps sending the
        grid endpoints to themselves and each landmark to its target.
    """
    if not isinstance(data, FDataGrid):
        raise ValidationError(f"data must be FDataGrid, got {type(data).__name__}")
    landmarks = as_float_array(landmarks, "landmarks")
    if landmarks.ndim == 1:
        landmarks = landmarks[:, None]
    if landmarks.shape[0] != data.n_samples:
        raise ValidationError(
            f"need one landmark row per sample, got {landmarks.shape[0]} rows "
            f"for {data.n_samples} samples"
        )
    grid = data.grid
    low, high = float(grid[0]), float(grid[-1])
    if np.any(landmarks <= low) or np.any(landmarks >= high):
        raise ValidationError("landmarks must lie strictly inside the domain")
    if np.any(np.diff(landmarks, axis=1) <= 0):
        raise ValidationError("each sample's landmarks must be strictly increasing")
    if targets is None:
        targets = landmarks.mean(axis=0)
    else:
        targets = as_float_array(targets, "targets")
        if targets.shape != (landmarks.shape[1],):
            raise ValidationError("targets must have one entry per landmark")
        if np.any(targets <= low) or np.any(targets >= high) or np.any(np.diff(targets) <= 0):
            raise ValidationError("targets must be increasing interior points")

    warped = np.empty_like(data.values)
    target_knots = np.concatenate(([low], targets, [high]))
    for i in range(data.n_samples):
        source_knots = np.concatenate(([low], landmarks[i], [high]))
        # h maps target time -> source time; sample the curve there.
        source_times = np.interp(grid, target_knots, source_knots)
        warped[i] = np.interp(source_times, grid, data.values[i])
    return FDataGrid(warped, grid)
