"""Numerical quadrature over an interval or a sampled grid.

Functional-data pipelines integrate constantly: roughness penalties are
integrals of products of basis derivatives, functional depths integrate
pointwise depths over ``t``, and arc length integrates the path speed.
This module centralizes the quadrature rules so every component uses
the same, tested numerics.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.validation import check_grid, check_int, check_vector

__all__ = [
    "trapezoid_weights",
    "simpson_weights",
    "integrate_sampled",
    "gauss_legendre_nodes",
    "integrate_function",
]


def trapezoid_weights(grid: np.ndarray) -> np.ndarray:
    """Composite trapezoid weights for a (possibly irregular) grid.

    ``w @ f(grid)`` approximates the integral of ``f`` over
    ``[grid[0], grid[-1]]``.
    """
    grid = check_grid(grid, "grid")
    steps = np.diff(grid)
    weights = np.zeros_like(grid)
    weights[:-1] += steps / 2.0
    weights[1:] += steps / 2.0
    return weights


def simpson_weights(grid: np.ndarray) -> np.ndarray:
    """Composite Simpson weights on a *uniform* grid.

    Requires an odd number of points (even number of sub-intervals).
    For irregular grids use :func:`trapezoid_weights`.
    """
    grid = check_grid(grid, "grid", min_length=3)
    steps = np.diff(grid)
    if not np.allclose(steps, steps[0], rtol=1e-8, atol=1e-12):
        raise ValidationError("simpson_weights requires a uniform grid")
    if grid.shape[0] % 2 == 0:
        raise ValidationError(
            "simpson_weights requires an odd number of grid points, "
            f"got {grid.shape[0]}"
        )
    h = steps[0]
    weights = np.ones_like(grid)
    weights[1:-1:2] = 4.0
    weights[2:-1:2] = 2.0
    return weights * h / 3.0


def integrate_sampled(values: np.ndarray, grid: np.ndarray, rule: str = "trapezoid") -> float | np.ndarray:
    """Integrate sampled values over their grid.

    Parameters
    ----------
    values:
        Array whose *last* axis indexes the grid; leading axes are
        integrated independently (vectorized over samples).
    grid:
        Strictly increasing grid of the same length as the last axis.
    rule:
        ``"trapezoid"`` (default, any grid) or ``"simpson"`` (uniform
        grid with an odd number of points).
    """
    grid = check_grid(grid, "grid")
    values = np.asarray(values, dtype=np.float64)
    if values.shape[-1] != grid.shape[0]:
        raise ValidationError(
            f"last axis of values ({values.shape[-1]}) must match grid length ({grid.shape[0]})"
        )
    if rule == "trapezoid":
        weights = trapezoid_weights(grid)
    elif rule == "simpson":
        weights = simpson_weights(grid)
    else:
        raise ValidationError(f"unknown quadrature rule {rule!r}")
    result = values @ weights
    if result.ndim == 0:
        return float(result)
    return result


def gauss_legendre_nodes(low: float, high: float, n_nodes: int) -> tuple[np.ndarray, np.ndarray]:
    """Gauss–Legendre nodes and weights mapped to the interval [low, high]."""
    n_nodes = check_int(n_nodes, "n_nodes", minimum=1)
    if not (np.isfinite(low) and np.isfinite(high)) or high <= low:
        raise ValidationError(f"invalid interval [{low}, {high}]")
    nodes, weights = np.polynomial.legendre.leggauss(n_nodes)
    half = 0.5 * (high - low)
    mid = 0.5 * (high + low)
    return mid + half * nodes, half * weights


def integrate_function(
    func: Callable[[np.ndarray], np.ndarray],
    low: float,
    high: float,
    n_nodes: int = 64,
    breakpoints: np.ndarray | None = None,
) -> float | np.ndarray:
    """Integrate a vectorized function with Gauss–Legendre quadrature.

    When ``breakpoints`` is given (e.g. the interior knots of a spline
    basis, across which derivatives are discontinuous), the rule is
    applied piecewise between consecutive breakpoints, which restores
    spectral accuracy for piecewise-smooth integrands.

    ``func`` must accept an array of points and return either an array of
    the same shape (scalar integrand) or an array with the point axis
    *first* and arbitrary trailing axes (vector/matrix integrand).
    """
    if breakpoints is None or np.size(breakpoints) == 0:
        pieces = np.array([low, high], dtype=np.float64)
    else:
        inner = check_vector(breakpoints, "breakpoints", min_length=1)
        inner = inner[(inner > low) & (inner < high)]
        pieces = np.unique(np.concatenate(([low], inner, [high])))
    total = None
    for left, right in zip(pieces[:-1], pieces[1:]):
        nodes, weights = gauss_legendre_nodes(left, right, n_nodes)
        values = np.asarray(func(nodes), dtype=np.float64)
        contribution = np.tensordot(weights, values, axes=(0, 0))
        total = contribution if total is None else total + contribution
    if np.ndim(total) == 0:
        return float(total)
    return total
