"""Contaminated train/test splitting — the paper's experimental protocol.

Sec. 4.1: "We randomly split the data into a training and a test set.
We generate the training set by setting the ratio of outliers (referred
as the contamination level c) to 5, 10, 15, 20 and 25%.  For each value
of c, we repeat the random splitting 50 times."

:func:`contaminated_split` draws a training set whose outlier fraction
is exactly ``c`` (up to rounding); everything not drawn for training
forms the test set, on which AUC is computed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.random import check_random_state
from repro.utils.validation import check_in_range, check_int

__all__ = ["Split", "contaminated_split", "kfold_indices"]


@dataclass(frozen=True)
class Split:
    """Index sets of one contaminated train/test split."""

    train: np.ndarray
    test: np.ndarray

    def __post_init__(self):
        overlap = np.intersect1d(self.train, self.test)
        if overlap.size:
            raise ValidationError("train and test indices overlap")


def contaminated_split(
    labels,
    contamination: float,
    train_fraction: float = 0.5,
    random_state=None,
) -> Split:
    """Random split with a prescribed training-set outlier ratio.

    Parameters
    ----------
    labels:
        Binary array, 1 = outlier.
    contamination:
        Target outlier ratio ``c`` of the training set (0 < c < 0.5).
    train_fraction:
        Overall fraction of *inliers* assigned to training; the number
        of training outliers is then derived from ``c``.
    random_state:
        Seed or generator.

    Returns
    -------
    Split
        Training indices (shuffled) and test indices.  The test set
        keeps every sample not used for training, so it contains both
        classes as AUC requires.
    """
    labels = np.asarray(labels).astype(int)
    if labels.ndim != 1:
        raise ValidationError("labels must be one-dimensional")
    contamination = check_in_range(
        contamination, 0.0, 0.5, "contamination", inclusive=(False, False)
    )
    train_fraction = check_in_range(
        train_fraction, 0.0, 1.0, "train_fraction", inclusive=(False, False)
    )
    rng = check_random_state(random_state)
    inlier_idx = np.nonzero(labels == 0)[0]
    outlier_idx = np.nonzero(labels == 1)[0]
    if inlier_idx.size < 2 or outlier_idx.size < 2:
        raise ValidationError("need at least 2 samples of each class")
    n_train_inliers = max(int(round(train_fraction * inlier_idx.size)), 1)
    n_train_outliers = int(round(n_train_inliers * contamination / (1.0 - contamination)))
    n_train_outliers = min(n_train_outliers, outlier_idx.size - 1)
    if n_train_outliers < 1:
        raise ValidationError(
            "contamination too low for the available outliers; "
            f"c={contamination} would give an outlier-free training set"
        )
    if n_train_inliers >= inlier_idx.size:
        n_train_inliers = inlier_idx.size - 1
    train_in = rng.choice(inlier_idx, size=n_train_inliers, replace=False)
    train_out = rng.choice(outlier_idx, size=n_train_outliers, replace=False)
    train = np.concatenate([train_in, train_out])
    rng.shuffle(train)
    test_mask = np.ones(labels.shape[0], dtype=bool)
    test_mask[train] = False
    test = np.nonzero(test_mask)[0]
    return Split(train=train, test=test)


def kfold_indices(n_samples: int, n_folds: int = 5, random_state=None) -> list[tuple[np.ndarray, np.ndarray]]:
    """Shuffled k-fold index pairs ``(train, validation)``."""
    n_samples = check_int(n_samples, "n_samples", minimum=2)
    n_folds = check_int(n_folds, "n_folds", minimum=2)
    if n_folds > n_samples:
        raise ValidationError(f"n_folds={n_folds} exceeds n_samples={n_samples}")
    rng = check_random_state(random_state)
    permutation = rng.permutation(n_samples)
    folds = np.array_split(permutation, n_folds)
    pairs = []
    for i in range(n_folds):
        validation = folds[i]
        train = np.concatenate([folds[j] for j in range(n_folds) if j != i])
        pairs.append((train, validation))
    return pairs
