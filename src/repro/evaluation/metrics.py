"""Binary ranking metrics computed from outlyingness scores.

The paper's evaluation metric is the area under the ROC curve of the
outlyingness scores against the ground-truth labels (Sec. 4.1).  All
metrics take scores oriented "higher = more anomalous" and labels with
1 = outlier (positive class).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.validation import as_float_array, check_int

__all__ = ["roc_curve", "roc_auc", "average_precision", "precision_at_k", "f1_at_threshold"]


def _check_scores_labels(scores, labels) -> tuple[np.ndarray, np.ndarray]:
    scores = as_float_array(scores, "scores")
    labels = np.asarray(labels)
    if scores.ndim != 1 or labels.ndim != 1:
        raise ValidationError("scores and labels must be one-dimensional")
    if scores.shape[0] != labels.shape[0]:
        raise ValidationError(
            f"scores ({scores.shape[0]}) and labels ({labels.shape[0]}) lengths differ"
        )
    unique = np.unique(labels)
    if not np.all(np.isin(unique, (0, 1))):
        raise ValidationError(f"labels must be binary 0/1, got values {unique}")
    if unique.shape[0] < 2:
        raise ValidationError("labels must contain both classes for ranking metrics")
    return scores, labels.astype(int)


def roc_curve(scores, labels) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """ROC curve points.

    Returns ``(fpr, tpr, thresholds)`` where thresholds are the distinct
    score values in decreasing order; the curve starts at (0, 0) with an
    infinite threshold and ends at (1, 1).
    """
    scores, labels = _check_scores_labels(scores, labels)
    order = np.argsort(-scores, kind="mergesort")
    sorted_scores = scores[order]
    sorted_labels = labels[order]
    # Collapse ties: evaluate the curve only where the score changes.
    distinct = np.nonzero(np.diff(sorted_scores))[0]
    cut = np.r_[distinct, sorted_labels.shape[0] - 1]
    tps = np.cumsum(sorted_labels)[cut]
    fps = (cut + 1) - tps
    n_pos = labels.sum()
    n_neg = labels.shape[0] - n_pos
    tpr = np.r_[0.0, tps / n_pos]
    fpr = np.r_[0.0, fps / n_neg]
    thresholds = np.r_[np.inf, sorted_scores[cut]]
    return fpr, tpr, thresholds


def roc_auc(scores, labels) -> float:
    """Area under the ROC curve.

    Computed via the Mann–Whitney U statistic with midrank tie
    handling — identical to trapezoidal integration of the tie-collapsed
    ROC curve, but O(n log n) and numerically exact.
    """
    scores, labels = _check_scores_labels(scores, labels)
    order = np.argsort(scores, kind="mergesort")
    ranks = np.empty_like(scores)
    sorted_scores = scores[order]
    ranks_sorted = np.arange(1, scores.shape[0] + 1, dtype=np.float64)
    # Midranks for ties.
    i = 0
    n = scores.shape[0]
    while i < n:
        j = i
        while j + 1 < n and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        if j > i:
            ranks_sorted[i : j + 1] = 0.5 * (i + 1 + j + 1)
        i = j + 1
    ranks[order] = ranks_sorted
    n_pos = labels.sum()
    n_neg = n - n_pos
    u = ranks[labels == 1].sum() - n_pos * (n_pos + 1) / 2.0
    return float(u / (n_pos * n_neg))


def average_precision(scores, labels) -> float:
    """Average precision (area under the precision–recall curve)."""
    scores, labels = _check_scores_labels(scores, labels)
    order = np.argsort(-scores, kind="mergesort")
    sorted_labels = labels[order]
    tps = np.cumsum(sorted_labels)
    precision = tps / np.arange(1, len(sorted_labels) + 1)
    return float(np.sum(precision * sorted_labels) / labels.sum())


def precision_at_k(scores, labels, k: int) -> float:
    """Fraction of true outliers among the top-k scored samples."""
    scores, labels = _check_scores_labels(scores, labels)
    k = check_int(k, "k", minimum=1)
    if k > scores.shape[0]:
        raise ValidationError(f"k = {k} exceeds the number of samples {scores.shape[0]}")
    top = np.argsort(-scores, kind="mergesort")[:k]
    return float(labels[top].mean())


def f1_at_threshold(scores, labels, threshold: float) -> float:
    """F1 of the decision ``score > threshold`` (outlier = positive)."""
    scores, labels = _check_scores_labels(scores, labels)
    predicted = scores > float(threshold)
    tp = int(np.sum(predicted & (labels == 1)))
    fp = int(np.sum(predicted & (labels == 0)))
    fn = int(np.sum(~predicted & (labels == 1)))
    if tp == 0:
        return 0.0
    precision = tp / (tp + fp)
    recall = tp / (tp + fn)
    return float(2.0 * precision * recall / (precision + recall))
