"""Unsupervised hyper-parameter tuning.

The paper tunes the OCSVM ν "on the training set with a 5-fold cross
validation" (Sec. 4.3) — without labels, since the setting is fully
unsupervised.  We implement the natural self-consistency criterion that
matches the paper's reading of ν as "an estimate of the contamination
level in the training set": for each candidate ν, fit on k-1 folds and
measure the fraction of held-out points flagged as outliers; the score
is the absolute gap between that fraction and ν itself.  At the true
contamination level the ν-property makes the held-out rejection rate
track ν closely; past it, the frontier tightens and the rejection rate
overshoots — exactly the behaviour that makes ν "hard to tune as c
increases" (the paper's explanation for OCSVM's degradation).

A generic grid-search helper over any detector factory is also
provided for the ablation benches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.detectors.ocsvm import OneClassSVM
from repro.evaluation.splits import kfold_indices
from repro.exceptions import ValidationError
from repro.utils.random import check_random_state
from repro.utils.validation import check_int, check_matrix

__all__ = ["TuningResult", "tune_nu", "grid_search"]


@dataclass(frozen=True)
class TuningResult:
    """Outcome of an unsupervised hyper-parameter sweep."""

    best: object
    scores: dict

    def __post_init__(self):
        if not self.scores:
            raise ValidationError("TuningResult needs at least one candidate")


def tune_nu(
    X,
    candidates: Sequence[float] = (0.02, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30),
    n_folds: int = 5,
    kernel: str = "rbf",
    gamma="scale",
    random_state=None,
) -> TuningResult:
    """Pick ν by the 5-fold self-consistency criterion (see module doc).

    Returns the :class:`TuningResult` whose ``best`` minimizes the mean
    absolute gap between ν and the held-out rejection rate.
    """
    X = check_matrix(X, "X")
    n_folds = check_int(n_folds, "n_folds", minimum=2)
    if not candidates:
        raise ValidationError("need at least one nu candidate")
    rng = check_random_state(random_state)
    folds = kfold_indices(X.shape[0], n_folds=n_folds, random_state=rng)
    scores: dict[float, float] = {}
    for nu in candidates:
        gaps = []
        for train_idx, valid_idx in folds:
            model = OneClassSVM(nu=float(nu), kernel=kernel, gamma=gamma)
            try:
                model.fit(X[train_idx])
            except ValidationError:
                gaps.append(1.0)
                continue
            rejected = float(np.mean(model.raw_decision(X[valid_idx]) < 0.0))
            gaps.append(abs(rejected - float(nu)))
        scores[float(nu)] = float(np.mean(gaps))
    best = min(scores, key=scores.get)
    return TuningResult(best=best, scores=scores)


def grid_search(
    X,
    factory: Callable[..., object],
    param_grid: dict[str, Sequence],
    criterion: Callable[[object, np.ndarray, np.ndarray], float],
    n_folds: int = 5,
    random_state=None,
) -> TuningResult:
    """Generic unsupervised k-fold grid search.

    Parameters
    ----------
    X:
        Feature matrix.
    factory:
        ``factory(**params) -> detector`` (anything with ``fit``).
    param_grid:
        Mapping name → candidate values; the full Cartesian product is
        evaluated.
    criterion:
        ``criterion(fitted_detector, X_train, X_valid) -> float`` —
        *lower is better*.
    """
    X = check_matrix(X, "X")
    if not param_grid:
        raise ValidationError("param_grid must not be empty")
    rng = check_random_state(random_state)
    folds = kfold_indices(X.shape[0], n_folds=n_folds, random_state=rng)
    names = sorted(param_grid)
    grids = [list(param_grid[name]) for name in names]

    def combinations(level: int, current: dict):
        if level == len(names):
            yield dict(current)
            return
        for value in grids[level]:
            current[names[level]] = value
            yield from combinations(level + 1, current)
            del current[names[level]]

    scores: dict[tuple, float] = {}
    for params in combinations(0, {}):
        fold_scores = []
        for train_idx, valid_idx in folds:
            detector = factory(**params)
            detector.fit(X[train_idx])
            fold_scores.append(float(criterion(detector, X[train_idx], X[valid_idx])))
        scores[tuple(sorted(params.items()))] = float(np.mean(fold_scores))
    best_key = min(scores, key=scores.get)
    return TuningResult(best=dict(best_key), scores=scores)
