"""Evaluation: metrics, contaminated splits, tuning, experiment harness."""

from repro.evaluation.experiment import PAPER_CONTAMINATION_LEVELS, run_contamination_experiment
from repro.evaluation.metrics import (
    average_precision,
    f1_at_threshold,
    precision_at_k,
    roc_auc,
    roc_curve,
)
from repro.evaluation.results import ResultRecord, ResultTable
from repro.evaluation.splits import Split, contaminated_split, kfold_indices
from repro.evaluation.tuning import TuningResult, grid_search, tune_nu

__all__ = [
    "PAPER_CONTAMINATION_LEVELS",
    "ResultRecord",
    "ResultTable",
    "Split",
    "TuningResult",
    "average_precision",
    "contaminated_split",
    "f1_at_threshold",
    "grid_search",
    "kfold_indices",
    "precision_at_k",
    "roc_auc",
    "roc_curve",
    "run_contamination_experiment",
    "tune_nu",
]
