"""Result collection and aggregation for repetition experiments.

A :class:`ResultTable` accumulates per-repetition records
``(method, contamination, repetition, metric value)`` and aggregates
them to the mean ± standard deviation series reported in the paper's
Figure 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ValidationError

__all__ = ["ResultRecord", "ResultTable"]


@dataclass(frozen=True)
class ResultRecord:
    """One repetition's outcome."""

    method: str
    contamination: float
    repetition: int
    auc: float

    def __post_init__(self):
        if not 0.0 <= self.auc <= 1.0:
            raise ValidationError(f"auc must be in [0, 1], got {self.auc}")


@dataclass
class ResultTable:
    """Accumulator with mean/std aggregation and text rendering."""

    records: list = field(default_factory=list)

    def add(self, method: str, contamination: float, repetition: int, auc: float) -> None:
        self.records.append(
            ResultRecord(
                method=str(method),
                contamination=float(contamination),
                repetition=int(repetition),
                auc=float(auc),
            )
        )

    # ------------------------------------------------------------------ access
    @property
    def methods(self) -> list[str]:
        seen: dict[str, None] = {}
        for record in self.records:
            seen.setdefault(record.method, None)
        return list(seen)

    @property
    def contamination_levels(self) -> list[float]:
        return sorted({record.contamination for record in self.records})

    def values(self, method: str, contamination: float) -> np.ndarray:
        picked = [
            r.auc
            for r in self.records
            if r.method == method and r.contamination == contamination
        ]
        return np.asarray(picked, dtype=np.float64)

    def mean(self, method: str, contamination: float) -> float:
        values = self.values(method, contamination)
        if values.size == 0:
            raise ValidationError(f"no records for ({method!r}, c={contamination})")
        return float(values.mean())

    def std(self, method: str, contamination: float) -> float:
        values = self.values(method, contamination)
        if values.size == 0:
            raise ValidationError(f"no records for ({method!r}, c={contamination})")
        return float(values.std(ddof=1)) if values.size > 1 else 0.0

    def series(self, method: str) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(contamination levels, mean AUC, std AUC) for one method."""
        levels = self.contamination_levels
        means = np.array([self.mean(method, c) for c in levels])
        stds = np.array([self.std(method, c) for c in levels])
        return np.asarray(levels), means, stds

    # ------------------------------------------------------------------ output
    def to_text(self, title: str = "AUC vs. contamination level") -> str:
        """Figure-3-style table: one row per method, one column per c."""
        levels = self.contamination_levels
        methods = self.methods
        header = ["method".ljust(18)] + [f"c={c:.2f}".center(15) for c in levels]
        lines = [title, "-" * (18 + 15 * len(levels)), " ".join(header)]
        for method in methods:
            cells = [method.ljust(18)]
            for c in levels:
                if self.values(method, c).size:
                    cells.append(
                        f"{self.mean(method, c):.3f} ± {self.std(method, c):.3f}".center(15)
                    )
                else:
                    cells.append("—".center(15))
            lines.append(" ".join(cells))
        return "\n".join(lines)

    def to_records(self) -> list[dict]:
        """Plain-dict export (for JSON dumping in benches)."""
        return [
            {
                "method": r.method,
                "contamination": r.contamination,
                "repetition": r.repetition,
                "auc": r.auc,
            }
            for r in self.records
        ]
