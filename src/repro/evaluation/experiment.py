"""The repetition harness reproducing the paper's experimental protocol.

Sec. 4.1 in full: for each contamination level ``c`` in
{5, 10, 15, 20, 25}%, repeat 50 times: draw a random contaminated
train/test split, fit every method on the training set, compute the
test-set AUC.  Report mean ± std per (method, c) — Figure 3.

:func:`run_contamination_experiment` implements exactly that for any
labelled MFD data set and any list of methods; it powers the Fig. 3
bench, the ablation benches and the integration tests.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.evaluation.metrics import roc_auc
from repro.evaluation.results import ResultTable
from repro.evaluation.splits import contaminated_split
from repro.exceptions import ValidationError
from repro.fda.fdata import FDataGrid, MFDataGrid
from repro.utils.random import check_random_state, spawn_random_states
from repro.utils.validation import check_int

__all__ = ["run_contamination_experiment"]

PAPER_CONTAMINATION_LEVELS = (0.05, 0.10, 0.15, 0.20, 0.25)


def run_contamination_experiment(
    data,
    labels,
    methods: Sequence,
    contamination_levels: Sequence[float] = PAPER_CONTAMINATION_LEVELS,
    n_repetitions: int = 50,
    train_fraction: float = 0.5,
    random_state=None,
    verbose: bool = False,
) -> ResultTable:
    """Run the paper's AUC-vs-contamination protocol.

    Parameters
    ----------
    data:
        Labelled :class:`MFDataGrid` (or :class:`FDataGrid`) containing
        both inliers and outliers.
    labels:
        Binary array, 1 = outlier.
    methods:
        Method objects (see :mod:`repro.core.methods`).
    contamination_levels:
        The swept training contamination ratios (paper: 5%..25%).
    n_repetitions:
        Random splits per level (paper: 50).
    train_fraction:
        Fraction of inliers used for training in each split.
    random_state:
        Master seed; every (level, repetition) gets an independent child
        stream, so results are invariant to method order.
    verbose:
        Print one line per (level, repetition) pair.

    Returns
    -------
    ResultTable
        One AUC record per (method, level, repetition).
    """
    if not isinstance(data, (MFDataGrid, FDataGrid)):
        raise ValidationError(f"data must be (M)FDataGrid, got {type(data).__name__}")
    labels = np.asarray(labels).astype(int)
    if labels.shape[0] != data.n_samples:
        raise ValidationError(
            f"labels length {labels.shape[0]} != n_samples {data.n_samples}"
        )
    if not methods:
        raise ValidationError("need at least one method")
    n_repetitions = check_int(n_repetitions, "n_repetitions", minimum=1)
    levels = [float(c) for c in contamination_levels]
    if not levels:
        raise ValidationError("need at least one contamination level")

    master = check_random_state(random_state)
    prep_states = spawn_random_states(master, len(methods))
    prepared = [
        method.prepare(data, random_state=prep_states[i])
        for i, method in enumerate(methods)
    ]

    table = ResultTable()
    rep_states = spawn_random_states(master, len(levels) * n_repetitions)
    for level_idx, c in enumerate(levels):
        for rep in range(n_repetitions):
            rng = rep_states[level_idx * n_repetitions + rep]
            split = contaminated_split(
                labels, c, train_fraction=train_fraction, random_state=rng
            )
            test_labels = labels[split.test]
            if test_labels.min() == test_labels.max():
                # Degenerate split (single-class test set); redraw once.
                split = contaminated_split(
                    labels, c, train_fraction=train_fraction, random_state=rng
                )
                test_labels = labels[split.test]
            for method, state in zip(methods, prepared):
                scores = method.fit_score(
                    state, split.train, split.test, random_state=rng
                )
                auc = roc_auc(scores, test_labels)
                table.add(method.name, c, rep, auc)
            if verbose:
                latest = ", ".join(
                    f"{m.name}={table.values(m.name, c)[-1]:.3f}" for m in methods
                )
                print(f"[c={c:.2f} rep={rep + 1}/{n_repetitions}] {latest}")
    return table
