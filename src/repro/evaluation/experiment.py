"""The repetition harness reproducing the paper's experimental protocol.

Sec. 4.1 in full: for each contamination level ``c`` in
{5, 10, 15, 20, 25}%, repeat 50 times: draw a random contaminated
train/test split, fit every method on the training set, compute the
test-set AUC.  Report mean ± std per (method, c) — Figure 3.

:func:`run_contamination_experiment` implements exactly that for any
labelled MFD data set and any list of methods; it powers the Fig. 3
bench, the ablation benches and the integration tests.

The harness runs on the shared execution engine (:mod:`repro.engine`):
method preparation shares one factorization cache, and the
(level, repetition) cells fan out across a process pool when
``n_jobs > 1``.  Each cell consumes only its own child seed stream, so
parallel results are bit-identical to the serial schedule.
"""

from __future__ import annotations

import inspect
from typing import Sequence

import numpy as np

from repro.engine import ExecutionContext
from repro.engine.context import _resolve_n_jobs
from repro.evaluation.metrics import roc_auc
from repro.evaluation.results import ResultTable
from repro.evaluation.splits import contaminated_split
from repro.exceptions import ValidationError
from repro.fda.fdata import FDataGrid, MFDataGrid
from repro.utils.random import check_random_state, spawn_random_states
from repro.utils.validation import check_int

__all__ = ["run_contamination_experiment"]

PAPER_CONTAMINATION_LEVELS = (0.05, 0.10, 0.15, 0.20, 0.25)

#: How many times a degenerate (single-class test set) split is redrawn
#: before the harness gives up with a ValidationError.
MAX_SPLIT_RETRIES = 20


def _draw_valid_split(labels, contamination, train_fraction, rng):
    """Draw a split whose test set contains both classes (bounded retries).

    A single redraw is not enough on small or badly imbalanced data
    sets: every attempt can come up one-class.  Retry up to
    :data:`MAX_SPLIT_RETRIES` times and fail loudly instead of letting
    ``roc_auc`` crash on a one-class test set.
    """
    for _ in range(MAX_SPLIT_RETRIES):
        split = contaminated_split(
            labels, contamination, train_fraction=train_fraction, random_state=rng
        )
        test_labels = labels[split.test]
        if test_labels.min() != test_labels.max():
            return split, test_labels
    raise ValidationError(
        f"could not draw a test set containing both classes after "
        f"{MAX_SPLIT_RETRIES} attempts (contamination={contamination}, "
        f"train_fraction={train_fraction}); the data set is too small or "
        "too imbalanced for this split configuration"
    )


#: Split-invariant state shared by every cell: installed once per worker
#: (or once in-process for the serial path) by ``initializer`` instead of
#: being pickled into all ``levels x repetitions`` payloads.
_CELL_STATE: dict = {}


def _set_cell_state(methods, prepared, labels, train_fraction) -> None:
    _CELL_STATE.update(
        methods=methods, prepared=prepared, labels=labels, train_fraction=train_fraction
    )


def _run_cell(payload):
    """Evaluate every method on one (level, repetition) cell.

    Module-level so it pickles for the process pool.  The cell's
    generator drives the split draw and every method's ``fit_score``
    sequentially — exactly the serial order — which makes the parallel
    schedule bit-identical to ``n_jobs=1``.
    """
    contamination, repetition, rng = payload
    labels = _CELL_STATE["labels"]
    train_fraction = _CELL_STATE["train_fraction"]
    split, test_labels = _draw_valid_split(labels, contamination, train_fraction, rng)
    records = []
    for method, state in zip(_CELL_STATE["methods"], _CELL_STATE["prepared"]):
        scores = method.fit_score(state, split.train, split.test, random_state=rng)
        records.append((method.name, contamination, repetition, roc_auc(scores, test_labels)))
    return records


def _resolve_method(entry, context):
    """Compile declarative method entries through the plan layer.

    ``methods`` items may be live :class:`~repro.core.methods.Method`
    objects (used as-is), :class:`~repro.plan.MethodSpec` instances, or
    Figure-3 label strings (``"FUNTA"``, ``"iFor(Curvmap)"`` ...); the
    latter two are lowered by :func:`repro.plan.compile_plan`, so the
    harness shares the library's single construction path.
    """
    from repro.plan import MethodSpec, compile_plan

    if isinstance(entry, str):
        entry = MethodSpec(entry)
    if isinstance(entry, MethodSpec):
        return compile_plan(entry, context=context).build()
    return entry


def _prepare_method(method, data, random_state, context):
    """Call ``method.prepare``, passing the context only if accepted.

    Decided by signature inspection, not try/except: a ``TypeError``
    raised *inside* a context-aware ``prepare`` must propagate rather
    than silently re-running the expensive preparation without the
    shared cache.
    """
    params = inspect.signature(method.prepare).parameters
    accepts_context = "context" in params or any(
        p.kind is inspect.Parameter.VAR_KEYWORD for p in params.values()
    )
    if accepts_context:
        return method.prepare(data, random_state=random_state, context=context)
    return method.prepare(data, random_state=random_state)


def run_contamination_experiment(
    data,
    labels,
    methods: Sequence,
    contamination_levels: Sequence[float] = PAPER_CONTAMINATION_LEVELS,
    n_repetitions: int = 50,
    train_fraction: float = 0.5,
    random_state=None,
    verbose: bool = False,
    n_jobs: int | None = None,
    context: ExecutionContext | None = None,
) -> ResultTable:
    """Run the paper's AUC-vs-contamination protocol.

    Parameters
    ----------
    data:
        Labelled :class:`MFDataGrid` (or :class:`FDataGrid`) containing
        both inliers and outliers.
    labels:
        Binary array, 1 = outlier.
    methods:
        Method objects (see :mod:`repro.core.methods`),
        :class:`~repro.plan.MethodSpec` instances, or Figure-3 label
        strings — declarative entries are compiled through
        :func:`repro.plan.compile_plan` against the run's context.
    contamination_levels:
        The swept training contamination ratios (paper: 5%..25%).
    n_repetitions:
        Random splits per level (paper: 50).
    train_fraction:
        Fraction of inliers used for training in each split.
    random_state:
        Master seed; every (level, repetition) gets an independent child
        stream, so results are invariant to method order *and* to the
        parallel schedule.
    verbose:
        Print one line per (level, repetition) pair.
    n_jobs:
        Parallel width for the (level, repetition) fan-out: 1 = serial,
        ``-1`` = one worker per core, ``None`` = the context's width.
        Results are bit-identical for every value.
    context:
        Shared :class:`~repro.engine.ExecutionContext` (cache + pool).
        A private one is created when omitted.

    Returns
    -------
    ResultTable
        One AUC record per (method, level, repetition).
    """
    if not isinstance(data, (MFDataGrid, FDataGrid)):
        raise ValidationError(f"data must be (M)FDataGrid, got {type(data).__name__}")
    labels = np.asarray(labels).astype(int)
    if labels.shape[0] != data.n_samples:
        raise ValidationError(
            f"labels length {labels.shape[0]} != n_samples {data.n_samples}"
        )
    if not methods:
        raise ValidationError("need at least one method")
    n_repetitions = check_int(n_repetitions, "n_repetitions", minimum=1)
    levels = [float(c) for c in contamination_levels]
    if not levels:
        raise ValidationError("need at least one contamination level")
    if context is not None and not isinstance(context, ExecutionContext):
        raise ValidationError(
            f"context must be an ExecutionContext, got {type(context).__name__}"
        )
    ctx = context if context is not None else ExecutionContext()
    if n_jobs is not None:
        n_jobs = _resolve_n_jobs(n_jobs)  # fail fast, before the prepare stage
    methods = [_resolve_method(entry, ctx) for entry in methods]

    master = check_random_state(random_state)
    prep_states = spawn_random_states(master, len(methods))
    prepared = [
        _prepare_method(method, data, prep_states[i], ctx)
        for i, method in enumerate(methods)
    ]

    rep_states = spawn_random_states(master, len(levels) * n_repetitions)
    payloads = [
        (c, rep, rep_states[level_idx * n_repetitions + rep])
        for level_idx, c in enumerate(levels)
        for rep in range(n_repetitions)
    ]

    table = ResultTable()
    # imap streams completed cells in order, so verbose progress prints as
    # the experiment runs; the bulky split-invariant state travels once per
    # worker via the initializer, not once per cell.
    cell_records = ctx.imap(
        _run_cell,
        payloads,
        n_jobs=n_jobs,
        initializer=_set_cell_state,
        initargs=(methods, prepared, labels, train_fraction),
    )
    for records in cell_records:
        for method_name, c, rep, auc in records:
            table.add(method_name, c, rep, auc)
        if verbose:
            latest = ", ".join(f"{name}={auc:.3f}" for name, _, _, auc in records)
            c, rep = records[0][1], records[0][2]
            print(f"[c={c:.2f} rep={rep + 1}/{n_repetitions}] {latest}")
    return table
