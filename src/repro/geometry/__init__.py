"""Differential geometry of MFD paths and mapping functions (paper Sec. 3)."""

from repro.geometry.base import MappingFunction
from repro.geometry.differential import (
    arc_length,
    cumulative_arc_length,
    curvature,
    speed,
    tangent_angle,
    torsion,
    turning_rate,
)
from repro.geometry.frenet import frenet_frame, generalized_curvature, gram_schmidt_frame
from repro.geometry.mappings import (
    ArcLengthMapping,
    ComponentMapping,
    CompositeMapping,
    CurvatureMapping,
    GeneralizedCurvatureMapping,
    NormMapping,
    SignedCurvatureMapping,
    SpeedMapping,
    TangentAngleMapping,
    TorsionMapping,
)

__all__ = [
    "ArcLengthMapping",
    "ComponentMapping",
    "CompositeMapping",
    "CurvatureMapping",
    "GeneralizedCurvatureMapping",
    "MappingFunction",
    "NormMapping",
    "SignedCurvatureMapping",
    "SpeedMapping",
    "TangentAngleMapping",
    "TorsionMapping",
    "arc_length",
    "cumulative_arc_length",
    "curvature",
    "frenet_frame",
    "generalized_curvature",
    "gram_schmidt_frame",
    "speed",
    "tangent_angle",
    "torsion",
    "turning_rate",
]
