"""Concrete mapping functions (geometric aggregations).

:class:`CurvatureMapping` is the paper's example (Eq. 5).  The others
are natural members of the same family — each is an interpretable
differential invariant of the path — provided both as extensions and as
ablation points (DESIGN.md §6): if curvature is the right feature for
mixed-type ECG outliers, speed or raw values should do measurably worse.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.fda.fdata import FDataGrid, MultivariateBasisFData
from repro.geometry import differential
from repro.geometry.base import MappingFunction
from repro.geometry.frenet import generalized_curvature
from repro.utils.validation import check_grid, check_int

__all__ = [
    "CurvatureMapping",
    "SpeedMapping",
    "ArcLengthMapping",
    "TangentAngleMapping",
    "SignedCurvatureMapping",
    "TorsionMapping",
    "GeneralizedCurvatureMapping",
    "NormMapping",
    "ComponentMapping",
    "CompositeMapping",
    "MAPPING_REGISTRY",
    "mapping_from_config",
]


class CurvatureMapping(MappingFunction):
    """The paper's curvature mapping ``kappa(t)`` (Eq. 5).

    Combines the first and second derivative functions of the fitted
    MFD; constant for straight-line paths (linearly correlated
    parameters) and large wherever the path bends sharply — hence
    sensitive to changes in the *relationship* between parameters.

    Parameters
    ----------
    regularization:
        Relative damping of near-stationary points (see
        :func:`repro.geometry.curvature`).  The default ``0.1`` keeps
        the mapped curves finite for paths with singular
        parametrizations such as the paper's (x, x^2) augmentation,
        where the velocity vanishes at every critical point of x;
        set to 0 for the unregularized textbook definition.
    """

    required_derivatives = 2

    def __init__(self, regularization: float = 0.1):
        if regularization < 0:
            raise ValidationError(f"regularization must be >= 0, got {regularization}")
        self.regularization = float(regularization)

    def _map(self, derivatives, grid):
        return differential.curvature(
            derivatives[1], derivatives[2], regularization=self.regularization
        )

    def _config_params(self) -> dict:
        return {"regularization": self.regularization}


class SpeedMapping(MappingFunction):
    """Pointwise speed ``|D^1 X(t)|`` — first-order geometry only."""

    required_derivatives = 1

    def _map(self, derivatives, grid):
        return differential.speed(derivatives[1])


class ArcLengthMapping(MappingFunction):
    """Cumulative arc length ``s(t)`` — a monotone summary of traversal."""

    required_derivatives = 1

    def _map(self, derivatives, grid):
        return differential.cumulative_arc_length(derivatives[1], grid)


class TangentAngleMapping(MappingFunction):
    """Unwrapped tangent direction angle (p = 2 only)."""

    required_derivatives = 1
    min_dimension = 2

    def _map(self, derivatives, grid):
        if derivatives[1].shape[2] != 2:
            raise ValidationError("TangentAngleMapping requires p = 2")
        return differential.tangent_angle(derivatives[1])


class SignedCurvatureMapping(MappingFunction):
    """Signed curvature (p = 2 only) — keeps the turning direction."""

    required_derivatives = 2
    min_dimension = 2

    def _map(self, derivatives, grid):
        if derivatives[1].shape[2] != 2:
            raise ValidationError("SignedCurvatureMapping requires p = 2")
        return differential.turning_rate(derivatives[1], derivatives[2])


class TorsionMapping(MappingFunction):
    """Torsion (p = 3 only) — out-of-plane bending of space curves."""

    required_derivatives = 3
    min_dimension = 3

    def _map(self, derivatives, grid):
        if derivatives[1].shape[2] != 3:
            raise ValidationError("TorsionMapping requires p = 3")
        return differential.torsion(derivatives[1], derivatives[2], derivatives[3])


class GeneralizedCurvatureMapping(MappingFunction):
    """The j-th Frenet generalized curvature ``chi_j`` (any p > j)."""

    def __init__(self, order: int = 1):
        self.order = check_int(order, "order", minimum=1)
        self.required_derivatives = self.order + 1
        self.min_dimension = self.order + 1

    @property
    def name(self) -> str:
        return f"chi{self.order}"

    def _config_params(self) -> dict:
        return {"order": self.order}

    def _map(self, derivatives, grid):
        n_samples = derivatives[0].shape[0]
        out = np.empty((n_samples, grid.shape[0]))
        for i in range(n_samples):
            per_sample = [d[i] for d in derivatives[1:]]
            out[i] = generalized_curvature(per_sample, grid, order=self.order)
        return out


class NormMapping(MappingFunction):
    """Euclidean norm of the path position ``|X(t)|`` (zeroth-order)."""

    required_derivatives = 0

    def _map(self, derivatives, grid):
        return np.linalg.norm(derivatives[0], axis=2)


class ComponentMapping(MappingFunction):
    """Projection onto one parameter ``x_{ik}(t)`` — ablation baseline.

    Reduces the method to univariate functional analysis of a single
    parameter, discarding all cross-parameter geometry.
    """

    required_derivatives = 0

    def __init__(self, component: int = 0):
        self.component = check_int(component, "component", minimum=0)

    @property
    def name(self) -> str:
        return f"component{self.component}"

    def _config_params(self) -> dict:
        return {"component": self.component}

    def _map(self, derivatives, grid):
        values = derivatives[0]
        if self.component >= values.shape[2]:
            raise ValidationError(
                f"component {self.component} out of range for p={values.shape[2]}"
            )
        return values[:, :, self.component]


class CompositeMapping:
    """Concatenate the outputs of several mapping functions.

    Not itself a :class:`MappingFunction` (its output is a feature
    matrix, not a single UFD): each constituent mapping contributes its
    evaluated curve, and the blocks are concatenated along the feature
    axis.  Supports the paper's future-work direction of combining
    multiple geometric features.
    """

    def __init__(self, mappings: list[MappingFunction]):
        if not mappings:
            raise ValidationError("CompositeMapping needs at least one mapping")
        for m in mappings:
            if not isinstance(m, MappingFunction):
                raise ValidationError(f"{m!r} is not a MappingFunction")
        self.mappings = list(mappings)

    @property
    def name(self) -> str:
        return "+".join(m.name for m in self.mappings)

    @property
    def required_derivatives(self) -> int:
        return max(m.required_derivatives for m in self.mappings)

    def transform(self, fdata: MultivariateBasisFData, grid) -> FDataGrid:
        """Evaluate every mapping and stack curves horizontally.

        The result is returned as an :class:`FDataGrid` over a synthetic
        index grid (block ``b`` occupies ``[b, b+1)``), which keeps the
        downstream vectorization identical to single mappings.
        """
        grid = check_grid(grid, "grid")
        blocks = [m.transform(fdata, grid).values for m in self.mappings]
        stacked = np.concatenate(blocks, axis=1)
        m = grid.shape[0]
        index_grid = np.concatenate(
            [b + (grid - grid[0]) / (grid[-1] - grid[0]) for b in range(len(blocks))]
        )
        # Guard against duplicated junction points between blocks.
        index_grid = index_grid + np.arange(index_grid.shape[0]) * 1e-12
        assert stacked.shape[1] == index_grid.shape[0] == m * len(blocks)
        return FDataGrid(stacked, index_grid)

    def to_config(self) -> dict:
        """JSON-able description (see :meth:`MappingFunction.to_config`)."""
        return {
            "type": "CompositeMapping",
            "mappings": [m.to_config() for m in self.mappings],
        }


#: Mapping classes addressable from persisted configs, keyed by class
#: name (the ``"type"`` field of :meth:`MappingFunction.to_config`).
MAPPING_REGISTRY: dict[str, type[MappingFunction]] = {
    cls.__name__: cls
    for cls in (
        CurvatureMapping,
        SpeedMapping,
        ArcLengthMapping,
        TangentAngleMapping,
        SignedCurvatureMapping,
        TorsionMapping,
        GeneralizedCurvatureMapping,
        NormMapping,
        ComponentMapping,
    )
}


def mapping_from_config(config: dict) -> MappingFunction | CompositeMapping:
    """Rebuild a mapping from a ``to_config`` dictionary.

    The inverse of :meth:`MappingFunction.to_config` /
    :meth:`CompositeMapping.to_config`.
    """
    if not isinstance(config, dict) or "type" not in config:
        raise ValidationError(
            f"mapping config must be a dict with a 'type' key, got {config!r}"
        )
    name = config["type"]
    if name == "CompositeMapping":
        return CompositeMapping([mapping_from_config(c) for c in config.get("mappings", [])])
    cls = MAPPING_REGISTRY.get(name)
    if cls is None:
        raise ValidationError(
            f"unknown mapping type {name!r}; known: {sorted(MAPPING_REGISTRY)}"
        )
    return cls(**config.get("params", {}))
