"""Mapping-function abstraction (paper Sec. 3).

A *mapping function* is a geometric aggregation ``R^p``-path → scalar
function of ``t``: it compresses a multivariate functional datum into a
univariate one that exposes the geometry of the path (how the relation
between parameters evolves with ``t``).  The paper's flagship example is
the curvature; this module defines the shared interface and the
evaluation plumbing from basis-represented MFD.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.exceptions import ValidationError
from repro.fda.fdata import FDataGrid, MFDataGrid, MultivariateBasisFData
from repro.utils.validation import check_grid

__all__ = ["MappingFunction"]


class MappingFunction(abc.ABC):
    """Geometric aggregation of an R^p path into a univariate function.

    Subclasses declare how many derivatives they consume via
    ``required_derivatives`` and implement :meth:`_map` on raw arrays;
    :meth:`transform` handles evaluation of a basis-represented MFD on a
    grid (using exact basis derivatives, paper Eq. 2).
    """

    #: Highest derivative order consumed by :meth:`_map` (0 = values only).
    required_derivatives: int = 1

    #: Minimum path dimension p this mapping is defined for.
    min_dimension: int = 1

    @property
    def name(self) -> str:
        """Short identifier used in experiment result tables."""
        return type(self).__name__.removesuffix("Mapping").lower()

    # ------------------------------------------------------------------ hooks
    @abc.abstractmethod
    def _map(self, derivatives: list[np.ndarray], grid: np.ndarray) -> np.ndarray:
        """Map derivative arrays to the univariate representation.

        Parameters
        ----------
        derivatives:
            ``[X, D^1 X, ..., D^q X]`` — each of shape
            ``(n_samples, n_points, p)`` — with ``q = required_derivatives``.
        grid:
            The evaluation grid, shape ``(n_points,)``.

        Returns
        -------
        numpy.ndarray of shape ``(n_samples, n_points)``
        """

    # ------------------------------------------------------------------ API
    def transform(self, fdata: MultivariateBasisFData, grid) -> FDataGrid:
        """Apply the mapping to basis-represented MFD, evaluated on ``grid``."""
        if not isinstance(fdata, MultivariateBasisFData):
            raise ValidationError(
                f"fdata must be MultivariateBasisFData, got {type(fdata).__name__}"
            )
        grid = check_grid(grid, "grid")
        self._check_dimension(fdata.n_parameters)
        derivatives = [
            fdata.evaluate(grid, derivative=q)
            for q in range(self.required_derivatives + 1)
        ]
        return FDataGrid(self._map(derivatives, grid), grid)

    def transform_grid(self, data: MFDataGrid) -> FDataGrid:
        """Apply the mapping to raw gridded MFD using finite differences.

        This bypasses the smoothing step — provided for the smoothing
        ablation; on noisy data the basis route of :meth:`transform` is
        strongly preferred (the paper's point about accurate derivative
        evaluation, Sec. 2).
        """
        if not isinstance(data, MFDataGrid):
            raise ValidationError(f"data must be MFDataGrid, got {type(data).__name__}")
        self._check_dimension(data.n_parameters)
        derivatives = [data.values]
        current = data.values
        for _ in range(self.required_derivatives):
            current = np.gradient(current, data.grid, axis=1)
            derivatives.append(current)
        return FDataGrid(self._map(derivatives, data.grid), data.grid)

    def _config_params(self) -> dict:
        """Subclass hook: JSON-able constructor kwargs (see :meth:`to_config`)."""
        return {}

    def to_config(self) -> dict:
        """JSON-able description reconstructing this mapping exactly.

        Inverted by :func:`repro.geometry.mappings.mapping_from_config`;
        used by the serving layer to persist a pipeline's mapping without
        pickling code objects.
        """
        return {"type": type(self).__name__, "params": self._config_params()}

    def _check_dimension(self, p: int) -> None:
        if p < self.min_dimension:
            raise ValidationError(
                f"{type(self).__name__} requires paths in R^p with p >= "
                f"{self.min_dimension}, got p={p}"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"
