"""Differential geometry of paths in R^p evaluated on grids.

A multivariate functional datum is a path ``X : T -> R^p``.  Given its
velocity ``v = D^1 X`` and acceleration ``a = D^2 X`` sampled on a grid,
these functions compute the classical differential invariants used by
the mapping functions:

* **speed** ``|v|`` and **arc length** (its integral),
* **curvature** (paper Eq. 5) via the Lagrange-identity form::

      kappa = sqrt(|v|^2 |a|^2 - (v . a)^2) / |v|^3

  which equals ``|D(v/|v|)| / |v|`` wherever ``|v| > 0`` — exactly the
  paper's definition — while avoiding differentiating a quotient
  numerically,
* **torsion** (p = 3) from the scalar triple product with the jerk,
* **tangent angle** (p = 2), the turning angle of the velocity.

All functions are vectorized over samples: inputs have shape
``(n_samples, n_points, p)``.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.fda.quadrature import trapezoid_weights
from repro.utils.validation import as_float_array, check_grid

__all__ = [
    "speed",
    "arc_length",
    "cumulative_arc_length",
    "curvature",
    "torsion",
    "tangent_angle",
    "turning_rate",
]

#: Floor applied to speed denominators; paths with |v| below this are
#: treated as momentarily stationary and the invariant is damped to 0
#: rather than exploding.
SPEED_FLOOR = 1e-10


def _check_path_array(values, name: str, min_dim: int = 1) -> np.ndarray:
    array = as_float_array(values, name)
    if array.ndim == 2:
        array = array[None, :, :]
    if array.ndim != 3:
        raise ValidationError(
            f"{name} must have shape (n_samples, n_points, p), got {array.shape}"
        )
    if array.shape[2] < min_dim:
        raise ValidationError(
            f"{name} needs at least p={min_dim} coordinates, got p={array.shape[2]}"
        )
    return array


def speed(velocity) -> np.ndarray:
    """Pointwise speed ``|D^1 X(t)|`` → shape ``(n_samples, n_points)``."""
    velocity = _check_path_array(velocity, "velocity")
    return np.linalg.norm(velocity, axis=2)


def arc_length(velocity, grid) -> np.ndarray:
    """Total arc length of each path: the integral of the speed over T."""
    grid = check_grid(grid, "grid")
    spd = speed(velocity)
    if spd.shape[1] != grid.shape[0]:
        raise ValidationError(
            f"velocity has {spd.shape[1]} points but grid has {grid.shape[0]}"
        )
    return spd @ trapezoid_weights(grid)


def cumulative_arc_length(velocity, grid) -> np.ndarray:
    """Running arc length ``s(t)`` per sample → ``(n_samples, n_points)``.

    ``s(t_0) = 0`` and ``s`` is nondecreasing; used for arc-length
    reparameterization features.
    """
    grid = check_grid(grid, "grid")
    spd = speed(velocity)
    if spd.shape[1] != grid.shape[0]:
        raise ValidationError(
            f"velocity has {spd.shape[1]} points but grid has {grid.shape[0]}"
        )
    steps = np.diff(grid)
    segments = 0.5 * (spd[:, :-1] + spd[:, 1:]) * steps[None, :]
    result = np.zeros_like(spd)
    np.cumsum(segments, axis=1, out=result[:, 1:])
    return result


def curvature(velocity, acceleration, regularization: float = 0.0) -> np.ndarray:
    """Curvature of each path at each point (paper Eq. 5).

    Parameters
    ----------
    velocity, acceleration:
        Arrays of shape ``(n_samples, n_points, p)`` holding ``D^1 X``
        and ``D^2 X`` evaluated on a common grid.
    regularization:
        Optional relative Tikhonov damping of the denominator:
        ``kappa_reg = |v ∧ a| / (|v|^2 + (reg * s_i)^2)^{3/2}`` where
        ``s_i`` is sample i's RMS speed.  Paths whose parametrization
        momentarily stalls (``|v| -> 0`` — e.g. the paper's (x, x^2)
        augmentation at every critical point of x) have an unstable 0/0
        curvature there; the damping sends the regularized curvature to
        0 at such points instead of amplifying fitting noise by
        ``1/|v|^3``.  ``0`` (default) recovers the textbook definition.

    Returns
    -------
    numpy.ndarray of shape ``(n_samples, n_points)``

    Notes
    -----
    Uses the identity ``|v|^2 |a|^2 - (v.a)^2 = |v ∧ a|^2`` (Lagrange),
    valid in any dimension ``p >= 1``; for ``p = 1`` the wedge vanishes
    so straight-line motion correctly has zero curvature.
    """
    velocity = _check_path_array(velocity, "velocity")
    acceleration = _check_path_array(acceleration, "acceleration")
    if velocity.shape != acceleration.shape:
        raise ValidationError(
            f"velocity shape {velocity.shape} != acceleration shape {acceleration.shape}"
        )
    if regularization < 0:
        raise ValidationError(f"regularization must be >= 0, got {regularization}")
    v_sq = np.sum(velocity**2, axis=2)
    a_sq = np.sum(acceleration**2, axis=2)
    va = np.sum(velocity * acceleration, axis=2)
    wedge_sq = np.maximum(v_sq * a_sq - va**2, 0.0)
    if regularization > 0:
        rms_speed_sq = np.mean(v_sq, axis=1, keepdims=True)
        damping = (regularization**2) * rms_speed_sq
        denom = (v_sq + np.maximum(damping, SPEED_FLOOR)) ** 1.5
    else:
        denom = np.maximum(v_sq, SPEED_FLOOR) ** 1.5
    return np.sqrt(wedge_sq) / denom


def torsion(velocity, acceleration, jerk) -> np.ndarray:
    """Torsion of 3-D paths: ``det(v, a, j) / |v x a|^2``.

    Only defined for ``p = 3``.  Points where the path is locally planar
    (``|v x a| ~ 0``) get torsion 0 rather than an unstable quotient.
    """
    velocity = _check_path_array(velocity, "velocity", min_dim=3)
    acceleration = _check_path_array(acceleration, "acceleration", min_dim=3)
    jerk = _check_path_array(jerk, "jerk", min_dim=3)
    if velocity.shape[2] != 3:
        raise ValidationError(f"torsion requires p=3 paths, got p={velocity.shape[2]}")
    if not (velocity.shape == acceleration.shape == jerk.shape):
        raise ValidationError("velocity, acceleration and jerk must share a shape")
    cross = np.cross(velocity, acceleration)
    cross_sq = np.sum(cross**2, axis=2)
    det = np.sum(cross * jerk, axis=2)
    out = np.zeros_like(det)
    ok = cross_sq > SPEED_FLOOR
    out[ok] = det[ok] / cross_sq[ok]
    return out


def tangent_angle(velocity) -> np.ndarray:
    """Unwrapped angle of the 2-D tangent vector along each path.

    Only defined for ``p = 2``.  The angle is unwrapped along ``t`` so
    that full turns accumulate; its derivative w.r.t. arc length is the
    signed curvature.
    """
    velocity = _check_path_array(velocity, "velocity", min_dim=2)
    if velocity.shape[2] != 2:
        raise ValidationError(f"tangent_angle requires p=2 paths, got p={velocity.shape[2]}")
    angles = np.arctan2(velocity[:, :, 1], velocity[:, :, 0])
    return np.unwrap(angles, axis=1)


def turning_rate(velocity, acceleration) -> np.ndarray:
    """Signed curvature for 2-D paths: ``(v_x a_y - v_y a_x) / |v|^3``.

    The absolute value of this equals :func:`curvature` for ``p = 2``;
    the sign encodes turning direction (left/right), which the unsigned
    curvature discards.
    """
    velocity = _check_path_array(velocity, "velocity", min_dim=2)
    acceleration = _check_path_array(acceleration, "acceleration", min_dim=2)
    if velocity.shape[2] != 2:
        raise ValidationError(f"turning_rate requires p=2 paths, got p={velocity.shape[2]}")
    if velocity.shape != acceleration.shape:
        raise ValidationError("velocity and acceleration must share a shape")
    numer = velocity[:, :, 0] * acceleration[:, :, 1] - velocity[:, :, 1] * acceleration[:, :, 0]
    v_sq = np.sum(velocity**2, axis=2)
    denom = np.maximum(v_sq, SPEED_FLOOR) ** 1.5
    return numer / denom
