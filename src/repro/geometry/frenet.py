"""Frenet–Serret frames and generalized curvatures in R^p.

For a path in R^p with derivatives ``D^1 X .. D^j X`` linearly
independent, the Frenet frame ``e_1 .. e_j`` is the Gram–Schmidt
orthonormalization of the derivatives, and the generalized curvatures

    chi_j(t) = <e_j'(t), e_{j+1}(t)> / |D^1 X(t)|

recover the classical curvature (j = 1) and torsion (j = 2, p = 3).
This module provides the frame itself plus a numerically robust
generalized-curvature evaluator used by the higher-order mapping
functions (an extension beyond the paper's curvature example).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.geometry.differential import SPEED_FLOOR
from repro.utils.validation import as_float_array, check_grid, check_int

__all__ = ["gram_schmidt_frame", "frenet_frame", "generalized_curvature"]


def gram_schmidt_frame(vectors: np.ndarray) -> np.ndarray:
    """Orthonormalize, per point, a family of vectors in R^p.

    Parameters
    ----------
    vectors:
        Array of shape ``(n_points, n_vectors, p)`` — for each point, the
        rows are the vectors to orthonormalize in order.

    Returns
    -------
    numpy.ndarray of the same shape
        The orthonormal frame.  Where a vector is (numerically) linearly
        dependent on its predecessors, the corresponding frame vector is
        zero — callers treat such points as degenerate.
    """
    vectors = as_float_array(vectors, "vectors")
    if vectors.ndim != 3:
        raise ValidationError(
            f"vectors must have shape (n_points, n_vectors, p), got {vectors.shape}"
        )
    n_points, n_vectors, p = vectors.shape
    if n_vectors > p:
        raise ValidationError(
            f"cannot orthonormalize {n_vectors} vectors in R^{p}"
        )
    frame = np.zeros_like(vectors)
    for j in range(n_vectors):
        residual = vectors[:, j, :].copy()
        for prev in range(j):
            proj = np.sum(residual * frame[:, prev, :], axis=1, keepdims=True)
            residual -= proj * frame[:, prev, :]
        norms = np.linalg.norm(residual, axis=1, keepdims=True)
        ok = norms[:, 0] > np.sqrt(SPEED_FLOOR)
        frame[ok, j, :] = residual[ok] / norms[ok]
    return frame


def frenet_frame(derivatives: list[np.ndarray]) -> np.ndarray:
    """Frenet frame of a *single* path from its first ``j`` derivatives.

    Parameters
    ----------
    derivatives:
        List of arrays ``[D^1 X, D^2 X, ..., D^j X]``, each of shape
        ``(n_points, p)``.

    Returns
    -------
    numpy.ndarray of shape ``(n_points, j, p)``
    """
    if not derivatives:
        raise ValidationError("need at least one derivative array")
    arrays = [as_float_array(d, f"derivatives[{i}]") for i, d in enumerate(derivatives)]
    shape = arrays[0].shape
    for i, arr in enumerate(arrays):
        if arr.ndim != 2:
            raise ValidationError(f"derivatives[{i}] must be 2-D (n_points, p)")
        if arr.shape != shape:
            raise ValidationError("all derivative arrays must share a shape")
    stacked = np.stack(arrays, axis=1)  # (n_points, j, p)
    return gram_schmidt_frame(stacked)


def generalized_curvature(derivatives: list[np.ndarray], grid, order: int = 1) -> np.ndarray:
    """The ``order``-th generalized curvature ``chi_order`` of one path.

    ``chi_1`` is the classical curvature; ``chi_2`` the torsion (p=3).
    Needs ``order + 1`` derivative arrays.  The frame derivative
    ``e_order'`` is computed by centred finite differences on the grid —
    acceptable because the frame of a smoothed path is itself smooth.

    Returns an array of shape ``(n_points,)``.
    """
    order = check_int(order, "order", minimum=1)
    grid = check_grid(grid, "grid", min_length=3)
    if len(derivatives) < order + 1:
        raise ValidationError(
            f"chi_{order} needs {order + 1} derivative arrays, got {len(derivatives)}"
        )
    frame = frenet_frame(derivatives[: order + 1])  # (m, order+1, p)
    if frame.shape[0] != grid.shape[0]:
        raise ValidationError("derivative arrays and grid disagree on n_points")
    e_j = frame[:, order - 1, :]
    e_next = frame[:, order, :]
    de_j = np.gradient(e_j, grid, axis=0)
    speed_values = np.linalg.norm(np.asarray(derivatives[0], dtype=np.float64), axis=1)
    numer = np.sum(de_j * e_next, axis=1)
    return numer / np.maximum(speed_values, np.sqrt(SPEED_FLOOR))
