"""Memoization of the smoothing stack's linear-algebra artifacts.

Everything the penalized least-squares machinery computes is a pure
function of a small configuration tuple: the design matrix ``Phi``
depends on (basis, grid); the roughness penalty ``R`` on (basis,
penalty order); the normal-equation factorization ``(Phi'Phi + λR)``
and the hat matrix ``S`` on (basis, grid, λ, penalty order).  The
experiment protocol (paper Sec. 4.1: 50 repetitions × 5 contamination
levels × 4 methods) re-derives those artifacts thousands of times for
a handful of distinct configurations.

:class:`FactorizationCache` memoizes all four artifact kinds behind
one bounded store so that each configuration is factorized at most
once per process.  Hit/miss counters (:class:`CacheStats`) make the
"at most once" claim testable.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ValidationError
from repro.fda.basis.base import Basis
from repro.fda.penalty import penalty_matrix
from repro.telemetry import NULL_TELEMETRY
from repro.utils.linalg import PSDSolver

__all__ = ["CacheStats", "FactorizationCache"]


@dataclass
class CacheStats:
    """Build (miss) and hit counters per artifact kind."""

    design_builds: int = 0
    design_hits: int = 0
    penalty_builds: int = 0
    penalty_hits: int = 0
    factorizations: int = 0
    factorization_hits: int = 0
    hat_builds: int = 0
    hat_hits: int = 0

    @property
    def hits(self) -> int:
        return self.design_hits + self.penalty_hits + self.factorization_hits + self.hat_hits

    @property
    def builds(self) -> int:
        return self.design_builds + self.penalty_builds + self.factorizations + self.hat_builds

    def as_dict(self) -> dict:
        return {
            "design_builds": self.design_builds,
            "design_hits": self.design_hits,
            "penalty_builds": self.penalty_builds,
            "penalty_hits": self.penalty_hits,
            "factorizations": self.factorizations,
            "factorization_hits": self.factorization_hits,
            "hat_builds": self.hat_builds,
            "hat_hits": self.hat_hits,
        }

    def copy(self) -> "CacheStats":
        """An independent snapshot of the current counters."""
        return CacheStats(**self.as_dict())

    def __sub__(self, other: "CacheStats") -> "CacheStats":
        """Counter delta ``self - other`` — activity since a snapshot.

        Long-running services take a :meth:`copy` before handling a
        request and subtract it afterwards to attribute cache work (and
        verify "zero factorizations on the warm path") per request.
        """
        if not isinstance(other, CacheStats):
            return NotImplemented
        mine, theirs = self.as_dict(), other.as_dict()
        return CacheStats(**{key: mine[key] - theirs[key] for key in mine})


def _grid_key(points: np.ndarray) -> tuple:
    """Hashable identity of an evaluation grid (digest, not the bytes)."""
    points = np.ascontiguousarray(points, dtype=np.float64)
    digest = hashlib.blake2b(points.tobytes(), digest_size=16).digest()
    return (points.shape[0], digest)


class _BoundedStore:
    """A tiny LRU map: at most ``maxsize`` entries, oldest use evicted."""

    def __init__(self, maxsize: int):
        self.maxsize = maxsize
        self._data: OrderedDict = OrderedDict()

    def get(self, key):
        try:
            value = self._data[key]
        except KeyError:
            return None
        self._data.move_to_end(key)
        return value

    def put(self, key, value) -> None:
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)

    def __len__(self) -> int:
        return len(self._data)

    def clear(self) -> None:
        self._data.clear()


class FactorizationCache:
    """Shared memo of design/penalty matrices and normal-equation factors.

    Keys
    ----
    * design matrix: ``(basis.cache_key, grid)``
    * penalty matrix: ``(basis.cache_key, penalty_order)``
    * factorization / hat matrix: ``(basis.cache_key, grid, λ, penalty_order)``

    The cache is bounded (LRU per artifact kind) so long-running
    services with many transient configurations cannot grow it without
    limit.  All artifacts are computed through the exact same code path
    as the uncached smoother (``Phi' Phi + λ R`` then
    :class:`~repro.utils.linalg.PSDSolver`), so cached and uncached
    results are bit-identical.

    Parameters
    ----------
    maxsize:
        Maximum number of entries kept *per artifact kind*.
    """

    _KINDS = ("design", "penalty", "factorization", "hat")

    def __init__(self, maxsize: int = 256):
        if maxsize < 1:
            raise ValidationError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = int(maxsize)
        self._designs = _BoundedStore(self.maxsize)
        self._penalties = _BoundedStore(self.maxsize)
        self._solvers = _BoundedStore(self.maxsize)
        self._hats = _BoundedStore(self.maxsize)
        self.stats = CacheStats()
        self.attach_telemetry(NULL_TELEMETRY)

    def attach_telemetry(self, telemetry) -> None:
        """Bind per-kind hit/build counters into ``telemetry``'s registry.

        The counters double the :class:`CacheStats` bookkeeping into
        ``engine_cache_hits_total{kind}`` / ``engine_cache_builds_total{kind}``
        so a scraped registry exposes the cache hit rate; with the null
        default every bound counter is a shared no-op.
        """
        self._tel_hits = {
            kind: telemetry.counter("engine_cache_hits_total", kind=kind)
            for kind in self._KINDS
        }
        self._tel_builds = {
            kind: telemetry.counter("engine_cache_builds_total", kind=kind)
            for kind in self._KINDS
        }

    # ------------------------------------------------------------------ artifacts
    def design(self, basis: Basis, points: np.ndarray) -> np.ndarray:
        """The design matrix ``Phi`` of ``basis`` on ``points``."""
        key = (basis.cache_key, _grid_key(points))
        cached = self._designs.get(key)
        if cached is not None:
            self.stats.design_hits += 1
            self._tel_hits["design"].inc()
            return cached
        self.stats.design_builds += 1
        self._tel_builds["design"].inc()
        design = basis.evaluate(points)
        self._designs.put(key, design)
        return design

    def penalty(self, basis: Basis, penalty_order: int) -> np.ndarray:
        """The roughness penalty matrix ``R`` for ``basis``."""
        key = (basis.cache_key, int(penalty_order))
        cached = self._penalties.get(key)
        if cached is not None:
            self.stats.penalty_hits += 1
            self._tel_hits["penalty"].inc()
            return cached
        self.stats.penalty_builds += 1
        self._tel_builds["penalty"].inc()
        matrix = penalty_matrix(basis, derivative=penalty_order)
        self._penalties.put(key, matrix)
        return matrix

    def solver(
        self, basis: Basis, points: np.ndarray, smoothing: float, penalty_order: int
    ) -> PSDSolver:
        """Factorization of the normal matrix ``Phi'Phi + λ R`` (paper Eq. 4)."""
        key = (basis.cache_key, _grid_key(points), float(smoothing), int(penalty_order))
        cached = self._solvers.get(key)
        if cached is not None:
            self.stats.factorization_hits += 1
            self._tel_hits["factorization"].inc()
            return cached
        design = self.design(basis, points)
        normal = design.T @ design
        if smoothing > 0:
            normal = normal + smoothing * self.penalty(basis, penalty_order)
        self.stats.factorizations += 1
        self._tel_builds["factorization"].inc()
        solver = PSDSolver(normal)
        self._solvers.put(key, solver)
        return solver

    def hat(
        self, basis: Basis, points: np.ndarray, smoothing: float, penalty_order: int
    ) -> np.ndarray:
        """The hat matrix ``S = Phi (Phi'Phi + λR)^{-1} Phi'`` on ``points``."""
        key = (basis.cache_key, _grid_key(points), float(smoothing), int(penalty_order))
        cached = self._hats.get(key)
        if cached is not None:
            self.stats.hat_hits += 1
            self._tel_hits["hat"].inc()
            return cached
        design = self.design(basis, points)
        solver = self.solver(basis, points, smoothing, penalty_order)
        self.stats.hat_builds += 1
        self._tel_builds["hat"].inc()
        hat = design @ solver.solve(design.T)
        self._hats.put(key, hat)
        return hat

    # ------------------------------------------------------------------ admin
    def __len__(self) -> int:
        return len(self._designs) + len(self._penalties) + len(self._solvers) + len(self._hats)

    def clear(self) -> None:
        """Drop every cached artifact and reset the statistics."""
        self._designs.clear()
        self._penalties.clear()
        self._solvers.clear()
        self._hats.clear()
        self.stats = CacheStats()
