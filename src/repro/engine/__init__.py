"""Shared execution engine: factorization cache, batching, parallel fan-out.

The engine layer decouples *what* the reproduction computes (smoothing,
selection, mapping, detection — :mod:`repro.fda`, :mod:`repro.core`)
from *how fast* it runs:

* :class:`FactorizationCache` memoizes design matrices, roughness
  penalties and normal-equation factorizations keyed by
  ``(basis, grid, λ, penalty order)``;
* :class:`ExecutionContext` threads one cache, a worker pool and a
  seed-spawning scheme through the pipeline, the method registry and
  the repetition harness (``run_contamination_experiment(n_jobs=...)``).

Parallel schedules consume per-cell child seed streams, so results are
bit-identical to the serial order.
"""

from repro.engine.cache import CacheStats, FactorizationCache
from repro.engine.context import ExecutionContext
from repro.engine.shared import (
    SharedArrayPool,
    SharedArrayRef,
    cleanup_live_segments,
    live_segments,
)

__all__ = [
    "CacheStats",
    "FactorizationCache",
    "ExecutionContext",
    "SharedArrayPool",
    "SharedArrayRef",
    "cleanup_live_segments",
    "live_segments",
]
