"""Zero-copy shared-array transport for the multi-process block executor.

The blocked depth kernels split their work into independent row/column
blocks over a handful of large read-only arrays (the curve cubes, the
reference cubes, precomputed tangent angles, direction stacks).  Naive
process fan-out pickles those arrays into every worker — for a 100k-curve
workload that is gigabytes of redundant copying that easily eats the
parallel speedup.  A :class:`SharedArrayPool` instead places each array
in shared storage exactly once:

* **shared memory** (:mod:`multiprocessing.shared_memory`) by default —
  workers attach to the segment and wrap it in an ndarray without any
  copy;
* an **np.memmap spill** for arrays above ``spill_bytes`` — the same
  zero-copy attach discipline through the page cache, for inputs too
  large for ``/dev/shm`` (which is RAM-backed and typically capped at
  half of physical memory).

What crosses the process boundary is a :class:`SharedArrayRef` — a tiny
picklable descriptor (segment name / file path, shape, dtype) — so the
per-task payload is O(1) regardless of the curve count.

Identity is preserved: sharing the *same* ndarray object under two
keys yields refs to one segment, and :func:`attach_arrays` returns the
same ndarray object for both keys — the kernels' ``values is
ref_values`` self-scoring fast paths keep working inside workers.

Every created segment is tracked in a module-level registry until it is
unlinked; :func:`live_segments` exposes the registry so tests (and the
CI leak gate) can assert that both success and failure paths release
everything.  :class:`SharedArrayPool` is a context manager whose
``__exit__`` always unlinks.
"""

from __future__ import annotations

import atexit
import os
import signal
import tempfile
import threading
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from repro.exceptions import ValidationError
from repro.telemetry import NULL_TELEMETRY, resolve_telemetry

__all__ = [
    "SharedArrayPool",
    "SharedArrayRef",
    "attach_arrays",
    "detach_arrays",
    "cleanup_live_segments",
    "live_segments",
]

#: Names of shared segments / spill files created by this process that
#: have not been unlinked yet.  Tests assert this drains to empty.
_LIVE: set[str] = set()

_HOOKS_INSTALLED = False
_HOOKS_LOCK = threading.Lock()


def cleanup_live_segments() -> None:
    """Unlink every segment/spill this process still owns (idempotent).

    Shared-memory segments outlive their creator: a parent killed
    mid-run leaves orphans in ``/dev/shm`` (and spill files in tmp)
    that survive until reboot.  This is the last-resort sweep the
    exit hooks run; pools that exit normally have already drained
    ``_LIVE`` through their own ``unlink``.
    """
    for name in list(_LIVE):
        try:
            if os.path.exists(name):  # memmap spill file
                os.unlink(name)
            else:  # shared-memory segment name
                segment = _attach_shm(name)
                segment.close()
                segment.unlink()
        except (OSError, FileNotFoundError):  # pragma: no cover - already gone
            pass
        _LIVE.discard(name)


def _signal_cleanup(signum, frame):  # pragma: no cover - exercised via subprocess
    cleanup_live_segments()
    # Restore the default disposition and re-raise so the process still
    # dies with the conventional signal exit status (128 + signum).
    signal.signal(signum, signal.SIG_DFL)
    os.kill(os.getpid(), signum)


def _install_cleanup_hooks() -> None:
    """Install the atexit + SIGTERM unlink hooks, once per process.

    ``atexit`` covers normal interpreter shutdown (including an
    unwound ``KeyboardInterrupt``); SIGTERM — the polite kill, which
    never runs atexit — gets a chaining handler, installed only when
    the application has not claimed the signal itself.  Registration
    happens lazily on first segment creation so merely importing the
    library never touches process-global signal state.
    """
    global _HOOKS_INSTALLED
    with _HOOKS_LOCK:
        if _HOOKS_INSTALLED:
            return
        _HOOKS_INSTALLED = True
        atexit.register(cleanup_live_segments)
        try:
            if signal.getsignal(signal.SIGTERM) is signal.SIG_DFL:
                signal.signal(signal.SIGTERM, _signal_cleanup)
        except (ValueError, OSError):  # pragma: no cover - non-main thread
            pass


@dataclass(frozen=True)
class SharedArrayRef:
    """Picklable descriptor of one shared array.

    ``kind`` is ``"shm"`` (a :class:`multiprocessing.shared_memory`
    segment named ``location``) or ``"memmap"`` (a file at
    ``location``).  ``shape``/``dtype`` reconstruct the ndarray view.
    """

    kind: str
    location: str
    shape: tuple
    dtype: str

    @property
    def nbytes(self) -> int:
        return int(np.dtype(self.dtype).itemsize * int(np.prod(self.shape, dtype=np.int64)))


def _attach_shm(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without re-registering it with the
    resource tracker (``track=False`` where available — Python >= 3.13;
    earlier fork-based workers share the parent's tracker, where the
    duplicate registration is a set no-op)."""
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # pragma: no cover - Python < 3.13 signature
        return shared_memory.SharedMemory(name=name)


def attach_arrays(refs: dict) -> tuple[dict, list]:
    """Materialize ndarray views for a dict of :class:`SharedArrayRef`.

    Returns ``(arrays, handles)``: the arrays are zero-copy views into
    the shared storage (read-only — block workers must not mutate their
    inputs), and ``handles`` keeps the backing objects alive; pass it to
    :func:`detach_arrays` when the work is done.  Refs pointing at the
    same segment yield the *same* ndarray object, preserving the
    identity-based fast paths of the kernels.
    """
    arrays: dict = {}
    handles: list = []
    by_location: dict[str, np.ndarray] = {}
    for key, ref in refs.items():
        if ref.location in by_location:
            arrays[key] = by_location[ref.location]
            continue
        if ref.kind == "shm":
            shm = _attach_shm(ref.location)
            handles.append(shm)
            arr = np.ndarray(ref.shape, dtype=np.dtype(ref.dtype), buffer=shm.buf)
        elif ref.kind == "memmap":
            arr = np.memmap(ref.location, dtype=np.dtype(ref.dtype), mode="r",
                            shape=ref.shape)
            handles.append(arr)
        else:
            raise ValidationError(f"unknown shared-array kind {ref.kind!r}")
        arr.flags.writeable = False
        arrays[key] = by_location[ref.location] = arr
    return arrays, handles


def detach_arrays(handles: list) -> None:
    """Release the attach handles (close segments / drop memmap refs)."""
    for handle in handles:
        close = getattr(handle, "close", None)
        if close is not None:
            close()


def live_segments() -> frozenset[str]:
    """Names/paths of segments created by this process and not yet
    unlinked — the CI leak gate asserts this is empty after pooled runs,
    on both success and failure paths."""
    return frozenset(_LIVE)


class SharedArrayPool:
    """Owner of the shared segments backing one block fan-out.

    Parameters
    ----------
    spill_bytes:
        Arrays strictly larger than this many bytes go to an
        ``np.memmap`` spill file instead of shared memory (``None`` —
        the default — keeps everything in shared memory).  The executor
        wires the block governor's budget through here so workloads that
        exceed RAM-backed ``/dev/shm`` stream from disk instead of
        failing.
    spill_dir:
        Directory for spill files (default: the system temp dir).
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry`; placements,
        spills and bytes are counted into its registry, and the
        ``engine_pool_live_segments`` gauge tracks the leak registry.
    """

    def __init__(self, spill_bytes: int | None = None, spill_dir=None,
                 telemetry=None):
        if spill_bytes is not None and (
            not isinstance(spill_bytes, (int, np.integer))
            or isinstance(spill_bytes, bool)
            or spill_bytes <= 0
        ):
            raise ValidationError(
                f"spill_bytes must be a positive int or None, got {spill_bytes!r}"
            )
        self.spill_bytes = int(spill_bytes) if spill_bytes is not None else None
        self.spill_dir = spill_dir
        self.telemetry = resolve_telemetry(None, telemetry)
        self._segments: list[shared_memory.SharedMemory] = []
        self._spill_paths: list[str] = []
        self._refs_by_id: dict[int, SharedArrayRef] = {}
        self._unlinked = False

    # ------------------------------------------------------------------ share
    def share(self, arrays: dict) -> dict:
        """Copy each array into shared storage once; return name → ref.

        Identical ndarray *objects* (``a is b``) are deduplicated to one
        segment.  Arrays must be materialized ndarrays; object dtypes
        are rejected (they cannot live in flat shared buffers).
        """
        if self._unlinked:
            raise ValidationError("SharedArrayPool has been unlinked; create a new one")
        refs: dict = {}
        for key, array in arrays.items():
            array = np.asarray(array)
            if array.dtype.hasobject:
                raise ValidationError(
                    f"array {key!r} has object dtype and cannot be shared"
                )
            cached = self._refs_by_id.get(id(array))
            if cached is not None:
                refs[key] = cached
                continue
            if self.spill_bytes is not None and array.nbytes > self.spill_bytes:
                ref = self._spill(array)
            else:
                ref = self._place_shm(array)
            self._refs_by_id[id(array)] = ref
            refs[key] = ref
        return refs

    def _place_shm(self, array: np.ndarray) -> SharedArrayRef:
        _install_cleanup_hooks()
        # size=0 segments are invalid; keep a 1-byte floor for empties.
        segment = shared_memory.SharedMemory(create=True, size=max(array.nbytes, 1))
        _LIVE.add(segment.name)
        self._segments.append(segment)
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)
        view[...] = array
        if self.telemetry.enabled:
            self.telemetry.counter("engine_pool_placements_total").inc()
            self.telemetry.counter("engine_pool_bytes_total").inc(array.nbytes)
            self.telemetry.gauge("engine_pool_live_segments").set(len(_LIVE))
        return SharedArrayRef("shm", segment.name, tuple(array.shape), array.dtype.str)

    def _spill(self, array: np.ndarray) -> SharedArrayRef:
        _install_cleanup_hooks()
        fd, path = tempfile.mkstemp(prefix="repro-spill-", suffix=".mm",
                                    dir=self.spill_dir)
        os.close(fd)
        _LIVE.add(path)
        self._spill_paths.append(path)
        mm = np.memmap(path, dtype=array.dtype, mode="w+",
                       shape=tuple(array.shape) if array.size else (1,))
        if array.size:
            mm[...] = array
        mm.flush()
        del mm
        if self.telemetry.enabled:
            self.telemetry.counter("engine_pool_spills_total").inc()
            self.telemetry.counter("engine_pool_bytes_total").inc(array.nbytes)
            self.telemetry.gauge("engine_pool_live_segments").set(len(_LIVE))
        return SharedArrayRef("memmap", path, tuple(array.shape), array.dtype.str)

    # ------------------------------------------------------------------ cleanup
    def unlink(self) -> None:
        """Release every segment and spill file (idempotent)."""
        self._unlinked = True
        self._refs_by_id.clear()
        while self._segments:
            segment = self._segments.pop()
            try:
                segment.close()
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
            _LIVE.discard(segment.name)
        while self._spill_paths:
            path = self._spill_paths.pop()
            try:
                os.unlink(path)
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
            _LIVE.discard(path)
        if self.telemetry.enabled:
            self.telemetry.gauge("engine_pool_live_segments").set(len(_LIVE))

    def __enter__(self) -> "SharedArrayPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.unlink()

    def __del__(self):  # pragma: no cover - GC backstop
        try:
            self.unlink()
        except Exception:
            pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SharedArrayPool(segments={len(self._segments)}, "
            f"spills={len(self._spill_paths)}, spill_bytes={self.spill_bytes})"
        )
