"""Execution context: cache + worker pool + deterministic seed spawning.

An :class:`ExecutionContext` bundles the three resources the
smooth→map→detect stack shares across a whole experiment:

* a :class:`~repro.engine.cache.FactorizationCache` so every layer
  (LOO-CV sweep, pipeline fit, transform) reuses the same
  linear-algebra artifacts;
* a process-pool fan-out (``n_jobs``) for embarrassingly parallel
  work units such as the (level, repetition) cells of the paper's
  protocol;
* seed spawning that derives statistically independent child streams
  from one master seed, so parallel schedules are *bit-identical* to
  the serial order (each unit consumes only its own stream).

Contexts are cheap; create one per experiment (or share one across
experiments to also share the cache).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Sequence

import numpy as np

from repro.engine.cache import FactorizationCache
from repro.engine.shared import SharedArrayPool, attach_arrays, detach_arrays
from repro.exceptions import ValidationError
from repro.telemetry import NULL_TELEMETRY, resolve_telemetry
from repro.utils.random import spawn_random_states

__all__ = ["ExecutionContext"]


def _run_shared_group(task):
    """Worker entry for :meth:`ExecutionContext.run_blocks`.

    ``task`` is ``(worker, refs, group)``: attach the shared arrays
    (zero-copy), run the block worker over the group's blocks in order,
    detach.  Module-level so it pickles; the per-task payload is the
    (small) worker partial, the O(1) refs and the block bounds — never
    the arrays themselves.
    """
    worker, refs, group = task
    arrays, handles = attach_arrays(refs)
    try:
        return [worker(block, **arrays) for block in group]
    finally:
        detach_arrays(handles)


def _resolve_n_jobs(n_jobs: int) -> int:
    if not isinstance(n_jobs, (int, np.integer)) or isinstance(n_jobs, bool):
        raise ValidationError(f"n_jobs must be a positive int or -1, got {n_jobs!r}")
    if n_jobs == -1:
        return max(os.cpu_count() or 1, 1)
    if n_jobs < 1:
        raise ValidationError(f"n_jobs must be a positive int or -1, got {n_jobs!r}")
    return int(n_jobs)


class ExecutionContext:
    """Shared resources for one experiment run.

    Parameters
    ----------
    cache:
        A :class:`FactorizationCache` to share; a fresh one is created
        when omitted.
    n_jobs:
        Default parallel width for :meth:`map`; ``1`` (serial) by
        default, ``-1`` for one worker per CPU core.
    spill_bytes:
        Shared arrays larger than this many bytes are spilled to an
        ``np.memmap`` file instead of ``/dev/shm`` during
        :meth:`run_blocks` (``None`` keeps everything in shared
        memory); see :class:`~repro.engine.shared.SharedArrayPool`.
    spill_dir:
        Directory for spill files (default: the system temp dir).
    telemetry:
        A :class:`~repro.telemetry.Telemetry` handle; every layer that
        receives this context (cache, shared pool, depth kernels,
        chunked executor) emits into its registry.  Defaults to the
        no-op :data:`~repro.telemetry.NULL_TELEMETRY`.
    """

    def __init__(
        self,
        cache: FactorizationCache | None = None,
        n_jobs: int = 1,
        spill_bytes: int | None = None,
        spill_dir=None,
        telemetry=None,
    ):
        if cache is not None and not isinstance(cache, FactorizationCache):
            raise ValidationError(
                f"cache must be a FactorizationCache, got {type(cache).__name__}"
            )
        self.cache = cache if cache is not None else FactorizationCache()
        self.n_jobs = _resolve_n_jobs(n_jobs)
        self.spill_bytes = spill_bytes
        self.spill_dir = spill_dir
        self.telemetry = NULL_TELEMETRY
        self.attach_telemetry(resolve_telemetry(None, telemetry))

    def attach_telemetry(self, telemetry) -> None:
        """Adopt ``telemetry`` (validated) and bind the cache's counters.

        An enabled handle propagates to the shared cache so factorization
        hits/builds emit into the same registry; attaching the null
        default never clobbers a cache that is already instrumented.
        """
        telemetry = resolve_telemetry(None, telemetry)
        self.telemetry = telemetry
        if telemetry.enabled:
            self.cache.attach_telemetry(telemetry)

    # ------------------------------------------------------------------ seeding
    def spawn_generators(self, random_state, n: int) -> list[np.random.Generator]:
        """``n`` independent child generators (one per parallel work unit)."""
        return spawn_random_states(random_state, n)

    # ------------------------------------------------------------------ fan-out
    def imap(
        self,
        fn: Callable,
        items: Sequence,
        n_jobs: int | None = None,
        initializer: Callable | None = None,
        initargs: tuple = (),
    ):
        """Lazily apply ``fn`` to every item, yielding results in order.

        Runs serially when the effective width is 1 (or there is at
        most one item); otherwise fans out across a process pool.
        ``fn``, the items and ``initargs`` must be picklable in the
        parallel case.  Results are yielded in input order as they
        complete either way, so callers can stream progress.

        ``initializer(*initargs)`` is invoked once per worker (and once
        in-process for the serial path) — use it to install bulky
        shared state once instead of shipping it with every item.
        """
        items = list(items)
        width = self.n_jobs if n_jobs is None else _resolve_n_jobs(n_jobs)
        if width <= 1 or len(items) <= 1:
            if initializer is not None:
                initializer(*initargs)
            for item in items:
                yield fn(item)
            return
        with ProcessPoolExecutor(
            max_workers=min(width, len(items)),
            initializer=initializer,
            initargs=initargs,
        ) as pool:
            yield from pool.map(fn, items)

    def map(
        self,
        fn: Callable,
        items: Sequence,
        n_jobs: int | None = None,
        initializer: Callable | None = None,
        initargs: tuple = (),
    ) -> list:
        """Eager :meth:`imap`: apply ``fn`` to every item, preserving order."""
        return list(self.imap(fn, items, n_jobs=n_jobs, initializer=initializer, initargs=initargs))

    def run_blocks(
        self,
        worker: Callable,
        blocks: Sequence,
        arrays: dict | None = None,
        n_jobs: int | None = None,
    ) -> list:
        """Apply ``worker(block, **arrays)`` to every block, in order.

        The shared-memory block executor behind the depth kernels: the
        (large, read-only) ``arrays`` are placed into a
        :class:`~repro.engine.shared.SharedArrayPool` exactly once,
        workers attach zero-copy, and each worker processes a contiguous
        group of blocks (:meth:`distribute`), so the per-task pickle
        payload is O(1) in the curve count.  Results come back in input
        order — the pooled result is bit-identical to the serial one.
        The pool's segments are unlinked on success *and* failure.

        Serial fallbacks (width 1, or fewer than two blocks) call the
        worker in-process with the original arrays, no copies at all.
        """
        blocks = list(blocks)
        arrays = dict(arrays or {})
        width = self.n_jobs if n_jobs is None else _resolve_n_jobs(n_jobs)
        if width <= 1 or len(blocks) <= 1:
            return [worker(block, **arrays) for block in blocks]
        groups = self.distribute(blocks, n_jobs=width)
        if len(groups) <= 1:
            return [worker(block, **arrays) for block in blocks]
        with SharedArrayPool(spill_bytes=self.spill_bytes,
                             spill_dir=self.spill_dir,
                             telemetry=self.telemetry) as pool:
            refs = pool.share(arrays)
            tasks = [(worker, refs, group) for group in groups]
            with ProcessPoolExecutor(max_workers=len(groups)) as executor:
                parts = list(executor.map(_run_shared_group, tasks))
        return [result for part in parts for result in part]

    def distribute(self, items: Sequence, n_jobs: int | None = None) -> list[list]:
        """Split ``items`` into at most ``n_jobs`` contiguous, ordered groups.

        Used by the blocked depth kernels to hand *whole* memory blocks
        to each worker: because every block is computed independently and
        results are concatenated in input order, the fanned-out result is
        bit-identical to the serial one while each payload is pickled
        once per group rather than once per block.
        """
        items = list(items)
        width = self.n_jobs if n_jobs is None else _resolve_n_jobs(n_jobs)
        width = max(min(width, len(items)), 1)
        bounds = np.linspace(0, len(items), width + 1).astype(int)
        return [items[bounds[g] : bounds[g + 1]] for g in range(width) if bounds[g] < bounds[g + 1]]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ExecutionContext(n_jobs={self.n_jobs}, cache_entries={len(self.cache)})"
