"""Lock-safe metrics primitives: counters, gauges, fixed-bucket histograms.

One :class:`MetricsRegistry` per process (or per
:class:`~repro.telemetry.Telemetry` handle) owns every instrument.
Instruments are identified by ``(name, labels)``; repeated
``registry.counter("x", kind="a")`` calls return the *same* object, so
hot paths bind an instrument once and call ``inc``/``observe`` with a
single short lock hold per update.

Histograms use fixed, pre-declared bucket upper bounds (Prometheus
``le`` convention: a bucket counts observations ``<= bound``) plus an
exact-sample reservoir: while the observation count stays within the
reservoir, ``percentile`` is exact (NumPy linear interpolation
semantics); past it, quantiles fall back to linear interpolation within
the bucket — the standard ``histogram_quantile`` estimate.  Two
histograms over the same bounds :meth:`~Histogram.merge` additively,
which is what lets per-shard or per-repeat measurements federate into
one distribution.

Export: :meth:`MetricsRegistry.to_prometheus` renders the text
exposition format (``# HELP`` / ``# TYPE`` / samples, histograms as
cumulative ``_bucket``/``_sum``/``_count`` series) and
:meth:`MetricsRegistry.to_dict` a JSON-able snapshot.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left

from repro.exceptions import ValidationError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_TIME_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
]

#: Default bucket bounds for latency histograms, in seconds (100 µs – 10 s).
DEFAULT_TIME_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Default bucket bounds for size/count histograms (flush sizes, block counts).
DEFAULT_SIZE_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384)

#: Observations kept verbatim before quantiles fall back to bucket
#: interpolation; bounds both memory and merge cost.
_RESERVOIR = 4096


class Counter:
    """Monotonic counter; ``inc`` is the only mutator."""

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: dict):
        self.name = name
        self.labels = labels
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValidationError(f"counter {self.name} cannot decrease (inc {amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """Point-in-time value; ``set``/``inc``/``dec`` under one lock."""

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: dict):
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Fixed-bucket histogram with an exact-sample reservoir.

    ``bounds`` are the inclusive bucket upper bounds (ascending); an
    implicit ``+Inf`` overflow bucket is always present.  ``observe``
    is O(log buckets); ``percentile`` is exact while every observation
    is still in the reservoir and a bucket-interpolated estimate after.
    """

    __slots__ = ("name", "labels", "bounds", "_counts", "_sum", "_count",
                 "_min", "_max", "_samples", "_exact", "_lock")

    def __init__(self, name: str, labels: dict, buckets=DEFAULT_TIME_BUCKETS):
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValidationError(
                f"histogram {name} buckets must be non-empty and strictly "
                f"increasing, got {buckets!r}"
            )
        self.name = name
        self.labels = labels
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)
        self._sum = 0.0
        self._count = 0
        self._min = math.inf
        self._max = -math.inf
        self._samples: list[float] = []
        self._exact = True
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._counts[bisect_left(self.bounds, value)] += 1
            self._sum += value
            self._count += 1
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value
            if self._exact:
                if len(self._samples) < _RESERVOIR:
                    self._samples.append(value)
                else:
                    self._exact = False
                    self._samples = []

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def min(self) -> float:
        return self._min if self._count else math.nan

    @property
    def max(self) -> float:
        return self._max if self._count else math.nan

    def merge(self, other: "Histogram") -> None:
        """Fold ``other``'s observations into this histogram (additive)."""
        if not isinstance(other, Histogram):
            raise ValidationError(f"cannot merge {type(other).__name__} into a Histogram")
        if other.bounds != self.bounds:
            raise ValidationError(
                f"histogram {self.name}: merge needs identical bucket bounds "
                f"({self.bounds} != {other.bounds})"
            )
        with other._lock:
            counts = list(other._counts)
            osum, ocount = other._sum, other._count
            omin, omax = other._min, other._max
            osamples, oexact = list(other._samples), other._exact
        with self._lock:
            for i, c in enumerate(counts):
                self._counts[i] += c
            self._sum += osum
            self._count += ocount
            self._min = min(self._min, omin)
            self._max = max(self._max, omax)
            if self._exact and oexact and len(self._samples) + len(osamples) <= _RESERVOIR:
                self._samples.extend(osamples)
            else:
                self._exact = False
                self._samples = []

    # ------------------------------------------------------------------ quantiles
    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (``q`` in [0, 100]) of the observations.

        Exact (NumPy linear-interpolation semantics) while all
        observations fit the reservoir; bucket-interpolated after.
        Returns ``nan`` when nothing has been observed.
        """
        if not 0 <= q <= 100:
            raise ValidationError(f"percentile q must be in [0, 100], got {q!r}")
        with self._lock:
            if self._count == 0:
                return math.nan
            if self._exact:
                samples = sorted(self._samples)
                rank = (q / 100.0) * (len(samples) - 1)
                lo = int(rank)
                frac = rank - lo
                if frac == 0.0 or lo + 1 >= len(samples):
                    return samples[lo]
                return samples[lo] + (samples[lo + 1] - samples[lo]) * frac
            return self._bucket_percentile(q)

    def _bucket_percentile(self, q: float) -> float:
        """Linear interpolation inside the target bucket (lock held)."""
        target = (q / 100.0) * self._count
        cum = 0
        for i, c in enumerate(self._counts):
            if c == 0:
                continue
            if cum + c >= target:
                lo = self.bounds[i - 1] if i > 0 else min(self._min, self.bounds[0])
                hi = self.bounds[i] if i < len(self.bounds) else self._max
                lo = max(lo, self._min)
                hi = min(hi, self._max)
                if hi <= lo:
                    return hi
                frac = (target - cum) / c
                return lo + (hi - lo) * frac
            cum += c
        return self._max  # pragma: no cover - unreachable (counts sum to _count)

    # ------------------------------------------------------------------ snapshot
    def snapshot(self) -> dict:
        """JSON-able state: counts, sum, min/max and the three quantiles."""
        with self._lock:
            counts = list(self._counts)
            total, ssum = self._count, self._sum
            smin = self._min if self._count else math.nan
            smax = self._max if self._count else math.nan
        cum = 0
        buckets = []
        for bound, c in zip(self.bounds, counts):
            cum += c
            buckets.append([bound, cum])
        buckets.append(["+Inf", total])
        return {
            "count": total,
            "sum": ssum,
            "min": smin,
            "max": smax,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "buckets": buckets,
        }


def _label_key(labels: dict) -> tuple:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape_label(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _render_labels(labels: dict, extra: dict | None = None) -> str:
    items = dict(labels)
    if extra:
        items.update(extra)
    if not items:
        return ""
    inner = ",".join(
        f'{k}="{_escape_label(str(v))}"' for k, v in sorted(items.items())
    )
    return "{" + inner + "}"


class MetricsRegistry:
    """Get-or-create store of every instrument, keyed by name + labels.

    Each metric *family* (one name) has one type; requesting an
    existing name with a different type (or different histogram
    buckets) raises.  All registry operations are guarded by one lock;
    instrument updates use the instrument's own lock, so the registry
    never serializes the hot path.
    """

    _TYPES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}

    def __init__(self):
        self._lock = threading.Lock()
        # name -> {"type", "unit", "help", "buckets", "instruments": {labelkey: obj}}
        self._families: dict[str, dict] = {}

    # ------------------------------------------------------------------ get-or-create
    def _instrument(self, kind: str, name: str, unit: str, help: str,
                    buckets, labels: dict):
        key = _label_key(labels)
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = {
                    "type": kind,
                    "unit": unit or _default_unit(name),
                    "help": help or _default_help(name),
                    "buckets": buckets,
                    "instruments": {},
                }
                self._families[name] = family
            elif family["type"] != kind:
                raise ValidationError(
                    f"metric {name!r} is a {family['type']}, not a {kind}"
                )
            elif kind == "histogram" and buckets is not None and family["buckets"] is not None \
                    and tuple(buckets) != tuple(family["buckets"]):
                raise ValidationError(
                    f"histogram {name!r} re-registered with different buckets"
                )
            instrument = family["instruments"].get(key)
            if instrument is None:
                if kind == "histogram":
                    instrument = Histogram(
                        name, dict(labels),
                        buckets=family["buckets"] or DEFAULT_TIME_BUCKETS,
                    )
                else:
                    instrument = self._TYPES[kind](name, dict(labels))
                family["instruments"][key] = instrument
            return instrument

    def counter(self, name: str, unit: str = "", help: str = "", **labels) -> Counter:
        return self._instrument("counter", name, unit, help, None, labels)

    def gauge(self, name: str, unit: str = "", help: str = "", **labels) -> Gauge:
        return self._instrument("gauge", name, unit, help, None, labels)

    def histogram(self, name: str, buckets=None, unit: str = "", help: str = "",
                  **labels) -> Histogram:
        return self._instrument("histogram", name, unit, help, buckets, labels)

    # ------------------------------------------------------------------ export
    def families(self) -> dict:
        """``name -> (type, unit, help, [instruments])`` snapshot."""
        with self._lock:
            return {
                name: (f["type"], f["unit"], f["help"], list(f["instruments"].values()))
                for name, f in sorted(self._families.items())
            }

    def to_dict(self) -> dict:
        """JSON-able snapshot of every instrument in the registry."""
        out: dict = {"counters": [], "gauges": [], "histograms": []}
        for name, (kind, unit, _help, instruments) in self.families().items():
            for inst in instruments:
                entry = {"name": name, "unit": unit, "labels": dict(inst.labels)}
                if kind == "histogram":
                    entry.update(inst.snapshot())
                    out["histograms"].append(entry)
                elif kind == "counter":
                    entry["value"] = inst.value
                    out["counters"].append(entry)
                else:
                    entry["value"] = inst.value
                    out["gauges"].append(entry)
        return out

    def to_prometheus(self) -> str:
        """The Prometheus text exposition format (version 0.0.4)."""
        lines: list[str] = []
        for name, (kind, unit, help, instruments) in self.families().items():
            text = help if not unit else f"{help} [{unit}]" if help else f"[{unit}]"
            lines.append(f"# HELP {name} {text}".rstrip())
            lines.append(f"# TYPE {name} {kind}")
            for inst in instruments:
                if kind == "histogram":
                    snap = inst.snapshot()
                    for bound, cum in snap["buckets"]:
                        le = "+Inf" if bound == "+Inf" else format(bound, "g")
                        labels = _render_labels(inst.labels, {"le": le})
                        lines.append(f"{name}_bucket{labels} {cum}")
                    labels = _render_labels(inst.labels)
                    lines.append(f"{name}_sum{labels} {format(snap['sum'], 'g')}")
                    lines.append(f"{name}_count{labels} {snap['count']}")
                else:
                    labels = _render_labels(inst.labels)
                    lines.append(f"{name}{labels} {format(inst.value, 'g')}")
        return "\n".join(lines) + "\n"


def _default_unit(name: str) -> str:
    from repro.telemetry import CATALOGUE

    entry = CATALOGUE.get(name)
    return entry[1] if entry else ""


def _default_help(name: str) -> str:
    from repro.telemetry import CATALOGUE

    entry = CATALOGUE.get(name)
    return entry[2] if entry else ""
