"""Unified telemetry: one registry + tracer handle threaded through every layer.

A :class:`Telemetry` handle bundles a
:class:`~repro.telemetry.metrics.MetricsRegistry` and a
:class:`~repro.telemetry.trace.Tracer`.  Thread it through an
:class:`~repro.engine.ExecutionContext` (or a
:class:`~repro.serving.ScoringService`) and every layer — cache, shared
pool, depth kernels, chunked executor, streaming detectors, serving —
emits into the same registry; scrape it as Prometheus text
(``GET /metrics`` on the HTTP front door, or
:meth:`Telemetry.to_prometheus`) or snapshot it as JSON
(:meth:`Telemetry.snapshot`, ``repro telemetry dump``).

The default everywhere is :data:`NULL_TELEMETRY`, a no-op
:class:`NullTelemetry` whose instruments and spans do nothing — the
hot path pays one attribute load and a no-op call, nothing else.

Metric catalogue
----------------
Every metric the instrumented layers emit, with its unit:

====================================  =========  ===========================================
name                                  unit       meaning
====================================  =========  ===========================================
``engine_cache_hits_total``           count      factorization-cache hits, by ``kind``
                                                 (design/penalty/factorization/hat)
``engine_cache_builds_total``         count      factorization-cache misses (builds), by ``kind``
``engine_pool_placements_total``      segments   arrays placed in shared memory by the pool
``engine_pool_spills_total``          files      arrays spilled to memmap files by the pool
``engine_pool_bytes_total``           bytes      bytes placed into shared storage
``engine_pool_live_segments``         segments   gauge: segments/spills not yet unlinked
                                                 (non-zero at rest = leak)
``depth_kernel_invocations_total``    count      blocked-kernel invocations, by ``kernel``
``depth_kernel_blocks_total``         blocks     kernel blocks executed, by ``kernel``
``depth_kernel_seconds``              seconds    histogram: wall time per kernel invocation,
                                                 by ``kernel``
``plan_chunks_total``                 chunks     chunks executed by ``run_chunked``
``plan_chunk_curves_total``           curves     curves pushed through ``run_chunked``
``plan_chunk_seconds``                seconds    histogram: per-chunk step latency
``streaming_arrivals_total``          curves     curves fed to a streaming detector, by ``kind``
``streaming_scored_total``            curves     curves scored (post-warm-up), by ``kind``
``streaming_flagged_total``           curves     curves flagged outlying, by ``kind``
``streaming_drift_checks_total``      count      KS drift checks run, by ``kind``
``streaming_drift_events_total``      count      drift detections, by ``kind``
``streaming_rereferences_total``      count      reference-window rebases, by ``kind``
``streaming_process_seconds``         seconds    histogram: full process() step latency,
                                                 by ``kind``
``streaming_shard_window_fill``       curves     gauge: per-shard reference-window fill,
                                                 by ``shard``
``streaming_merge_seconds``           seconds    histogram: sharded scoring stages, by
                                                 ``stage`` (partials/merged)
``serving_queue_depth_curves``        curves     gauge: curves in the micro-batch queue —
                                                 the single queue-depth definition the
                                                 flush loop and backpressure both read
``serving_inflight_curves``           curves     gauge: curves swapped out by an unresolved
                                                 flush
``serving_served_curves_total``       curves     curves scored by the service
``serving_served_requests_total``     requests   requests resolved successfully
``serving_failed_requests_total``     requests   requests whose scoring group failed
``serving_flushes_total``             count      micro-batch queue flushes
``serving_flush_curves``              curves     histogram: curves resolved per flush
``serving_flush_seconds``             seconds    histogram: flush wall time
``serving_accepted_requests_total``   requests   HTTP requests accepted by the front door
``serving_shed_requests_total``       requests   HTTP requests shed with 429
``serving_request_seconds``           seconds    histogram: end-to-end HTTP latency, by
                                                 ``route`` and ``pipeline`` (spec hash
                                                 when the pipeline has one)
====================================  =========  ===========================================

Trace JSONL format (``Tracer.export_jsonl`` / ``repro telemetry trace``):
one JSON object per line, each a *root* span tree::

    {"name": ..., "trace_id": ..., "span_id": ..., "parent_id": null,
     "start_unix_s": ..., "duration_s": ..., "attrs": {...},
     "children": [<same shape>, ...]}
"""

from __future__ import annotations

from repro.exceptions import ValidationError
from repro.telemetry.metrics import (
    DEFAULT_SIZE_BUCKETS,
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.trace import Tracer

__all__ = [
    "CATALOGUE",
    "Counter",
    "DEFAULT_SIZE_BUCKETS",
    "DEFAULT_TIME_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullTelemetry",
    "NULL_TELEMETRY",
    "Telemetry",
    "Tracer",
    "resolve_telemetry",
]

#: name -> (type, unit, help) for every metric the layers emit; the
#: registry consults this for Prometheus ``# HELP`` text so call sites
#: never repeat documentation.
CATALOGUE: dict[str, tuple[str, str, str]] = {
    "engine_cache_hits_total": ("counter", "count", "Factorization-cache hits by artifact kind"),
    "engine_cache_builds_total": ("counter", "count", "Factorization-cache builds (misses) by artifact kind"),
    "engine_pool_placements_total": ("counter", "segments", "Arrays placed in shared memory"),
    "engine_pool_spills_total": ("counter", "files", "Arrays spilled to memmap files"),
    "engine_pool_bytes_total": ("counter", "bytes", "Bytes placed into shared storage"),
    "engine_pool_live_segments": ("gauge", "segments", "Shared segments/spills not yet unlinked"),
    "depth_kernel_invocations_total": ("counter", "count", "Blocked depth-kernel invocations"),
    "depth_kernel_blocks_total": ("counter", "blocks", "Depth-kernel blocks executed"),
    "depth_kernel_seconds": ("histogram", "seconds", "Wall time per depth-kernel invocation"),
    "plan_chunks_total": ("counter", "chunks", "Chunks executed by run_chunked"),
    "plan_chunk_curves_total": ("counter", "curves", "Curves pushed through run_chunked"),
    "plan_chunk_seconds": ("histogram", "seconds", "Per-chunk step latency in run_chunked"),
    "streaming_arrivals_total": ("counter", "curves", "Curves fed to a streaming detector"),
    "streaming_scored_total": ("counter", "curves", "Curves scored after warm-up"),
    "streaming_flagged_total": ("counter", "curves", "Curves flagged outlying"),
    "streaming_drift_checks_total": ("counter", "count", "KS drift checks run"),
    "streaming_drift_events_total": ("counter", "count", "Drift detections"),
    "streaming_rereferences_total": ("counter", "count", "Reference-window rebases"),
    "streaming_process_seconds": ("histogram", "seconds", "Streaming process() step latency"),
    "streaming_shard_window_fill": ("gauge", "curves", "Per-shard reference-window fill"),
    "streaming_merge_seconds": ("histogram", "seconds", "Sharded scoring stage latency"),
    "serving_queue_depth_curves": ("gauge", "curves", "Curves in the micro-batch queue"),
    "serving_inflight_curves": ("gauge", "curves", "Curves swapped out by an unresolved flush"),
    "serving_served_curves_total": ("counter", "curves", "Curves scored by the service"),
    "serving_served_requests_total": ("counter", "requests", "Requests resolved successfully"),
    "serving_failed_requests_total": ("counter", "requests", "Requests whose scoring group failed"),
    "serving_flushes_total": ("counter", "count", "Micro-batch queue flushes"),
    "serving_flush_curves": ("histogram", "curves", "Curves resolved per flush"),
    "serving_flush_seconds": ("histogram", "seconds", "Flush wall time"),
    "serving_accepted_requests_total": ("counter", "requests", "HTTP requests accepted"),
    "serving_shed_requests_total": ("counter", "requests", "HTTP requests shed with 429"),
    "serving_request_seconds": ("histogram", "seconds", "End-to-end HTTP request latency"),
}


class Telemetry:
    """Live telemetry: a metrics registry plus a span tracer.

    Parameters
    ----------
    registry / tracer:
        Pre-built components to share; fresh ones are created when
        omitted.  Sharing one registry across services/contexts is how
        multiple layers aggregate into a single ``/metrics`` surface.
    """

    enabled = True

    def __init__(self, registry: MetricsRegistry | None = None,
                 tracer: Tracer | None = None):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer()

    # ------------------------------------------------------------------ metrics
    def counter(self, name: str, **labels) -> Counter:
        return self.registry.counter(name, **labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self.registry.gauge(name, **labels)

    def histogram(self, name: str, buckets=None, **labels) -> Histogram:
        return self.registry.histogram(name, buckets=buckets, **labels)

    # ------------------------------------------------------------------ tracing
    def span(self, name: str, **attrs):
        return self.tracer.span(name, **attrs)

    def start_span(self, name: str, **attrs):
        return self.tracer.start_span(name, **attrs)

    def current_trace_id(self) -> str | None:
        return self.tracer.current_trace_id()

    # ------------------------------------------------------------------ export
    def snapshot(self) -> dict:
        return self.registry.to_dict()

    def to_prometheus(self) -> str:
        return self.registry.to_prometheus()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Telemetry(families={len(self.registry.families())})"


class _NullCounter:
    __slots__ = ()
    name = labels = None
    value = 0

    def inc(self, amount: int = 1) -> None:
        pass


class _NullGauge:
    __slots__ = ()
    name = labels = None
    value = 0.0

    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1) -> None:
        pass

    def dec(self, amount: float = 1) -> None:
        pass


class _NullHistogram:
    __slots__ = ()
    name = labels = None
    count = 0
    sum = 0.0

    def observe(self, value: float) -> None:
        pass

    def percentile(self, q: float) -> float:
        return float("nan")

    def merge(self, other) -> None:
        pass

    def snapshot(self) -> dict:
        return {}


class _NullSpan:
    __slots__ = ()
    trace_id = None
    span_id = None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass

    def set(self, **attrs) -> None:
        pass

    def end(self) -> None:
        pass


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()
_NULL_SPAN = _NullSpan()


class NullTelemetry:
    """The disabled default: every instrument and span is a shared no-op.

    ``enabled`` is ``False`` so hot loops can hoist the check; even
    unhoisted, an update through a null instrument is one method call.
    """

    enabled = False
    registry = None
    tracer = None

    def counter(self, name: str, **labels) -> _NullCounter:
        return _NULL_COUNTER

    def gauge(self, name: str, **labels) -> _NullGauge:
        return _NULL_GAUGE

    def histogram(self, name: str, buckets=None, **labels) -> _NullHistogram:
        return _NULL_HISTOGRAM

    def span(self, name: str, **attrs) -> _NullSpan:
        return _NULL_SPAN

    def start_span(self, name: str, **attrs) -> _NullSpan:
        return _NULL_SPAN

    def current_trace_id(self) -> None:
        return None

    def snapshot(self) -> dict:
        return {}

    def to_prometheus(self) -> str:
        return ""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "NullTelemetry()"


#: The process-wide disabled default every layer falls back to.
NULL_TELEMETRY = NullTelemetry()


def resolve_telemetry(obj, explicit=None):
    """The telemetry handle for a layer: ``explicit`` > ``obj.telemetry`` > null.

    ``obj`` is typically an :class:`~repro.engine.ExecutionContext` (or
    ``None``); raises when an explicit handle is not a telemetry object.
    """
    if explicit is not None:
        if not isinstance(explicit, (Telemetry, NullTelemetry)):
            raise ValidationError(
                f"telemetry must be a Telemetry or NullTelemetry, got "
                f"{type(explicit).__name__}"
            )
        return explicit
    telemetry = getattr(obj, "telemetry", None) if obj is not None else None
    return telemetry if telemetry is not None else NULL_TELEMETRY
