"""Low-overhead span tracer producing per-request trace trees.

A *span* is one timed region with a name and attributes; spans opened
while another span is active on the same thread nest under it, so one
request produces one **trace tree**.  Every tree carries a stable
``trace_id`` (assigned when its root opens, monotonic within the
process) that the HTTP front door echoes back in the ``X-Trace-Id``
response header — the handle that links a client-observed latency to
the server-side tree explaining it.

Two entry points:

* :meth:`Tracer.span` — a context manager for synchronous code;
  nesting follows the thread-local span stack.
* :meth:`Tracer.start_span` — a detached root handle (``.end()``) for
  transport code that cannot hold a span open across ``await``
  boundaries (an asyncio event loop interleaves requests on one
  thread, which would corrupt a stack-based parent).

Completed root trees are kept in a bounded ring buffer
(:meth:`Tracer.traces`) and export as JSON Lines — one tree per line —
via :meth:`Tracer.export_jsonl`.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from collections import deque

__all__ = ["Tracer"]


class _SpanHandle:
    """One open span: context manager *and* detached-root handle."""

    __slots__ = ("_tracer", "node", "_start", "_detached", "_done")

    def __init__(self, tracer: "Tracer", node: dict, detached: bool):
        self._tracer = tracer
        self.node = node
        self._start = time.perf_counter()
        self._detached = detached
        self._done = False

    @property
    def trace_id(self) -> str:
        return self.node["trace_id"]

    @property
    def span_id(self) -> str:
        return self.node["span_id"]

    def set(self, **attrs) -> None:
        """Attach (or overwrite) attributes on the open span."""
        self.node["attrs"].update(attrs)

    def __enter__(self) -> "_SpanHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc is not None:
            self.node["attrs"]["error"] = f"{exc_type.__name__}: {exc}"
        self.end()

    def end(self) -> None:
        """Close the span (idempotent); roots land in the trace buffer."""
        if self._done:
            return
        self._done = True
        self.node["duration_s"] = time.perf_counter() - self._start
        self._tracer._finish(self, detached=self._detached)


class Tracer:
    """Thread-safe span tracer with a bounded completed-trace buffer.

    Parameters
    ----------
    max_traces:
        Completed root trees retained (oldest evicted first).
    """

    def __init__(self, max_traces: int = 256):
        self._lock = threading.Lock()
        self._traces: deque[dict] = deque(maxlen=int(max_traces))
        self._local = threading.local()
        self._trace_seq = itertools.count(1)
        self._span_seq = itertools.count(1)
        self._token = f"{os.getpid():08x}"

    # ------------------------------------------------------------------ spans
    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _node(self, name: str, attrs: dict, parent: dict | None) -> dict:
        if parent is None:
            trace_id = f"{self._token}-{next(self._trace_seq):06x}"
            parent_id = None
        else:
            trace_id = parent["trace_id"]
            parent_id = parent["span_id"]
        return {
            "name": name,
            "trace_id": trace_id,
            "span_id": f"s{next(self._span_seq):06x}",
            "parent_id": parent_id,
            "start_unix_s": time.time(),
            "duration_s": None,
            "attrs": dict(attrs),
            "children": [],
        }

    def span(self, name: str, **attrs) -> _SpanHandle:
        """Open a nested span; use as ``with tracer.span("step"):``."""
        stack = self._stack()
        parent = stack[-1] if stack else None
        handle = _SpanHandle(self, self._node(name, attrs, parent), detached=False)
        stack.append(handle.node)
        return handle

    def start_span(self, name: str, **attrs) -> _SpanHandle:
        """Open a detached root span (no thread-local nesting); call
        ``.end()`` — or use ``with`` — when the request completes."""
        return _SpanHandle(self, self._node(name, attrs, None), detached=True)

    def _finish(self, handle: _SpanHandle, detached: bool) -> None:
        node = handle.node
        if detached:
            with self._lock:
                self._traces.append(node)
            return
        stack = self._stack()
        # Tolerate out-of-order exits (a generator GC'd mid-iteration):
        # drop the node and everything opened after it.
        while stack:
            top = stack.pop()
            if top is node:
                break
        if node["parent_id"] is None:
            with self._lock:
                self._traces.append(node)
        else:
            parent = stack[-1] if stack else None
            if parent is not None and parent["span_id"] == node["parent_id"]:
                parent["children"].append(node)
            else:  # pragma: no cover - orphaned by out-of-order teardown
                with self._lock:
                    self._traces.append(node)

    def current_trace_id(self) -> str | None:
        """Trace ID of the innermost open span on this thread, if any."""
        stack = getattr(self._local, "stack", None)
        return stack[-1]["trace_id"] if stack else None

    # ------------------------------------------------------------------ export
    def traces(self) -> list[dict]:
        """Completed root trees, oldest first (deep structure, live dicts)."""
        with self._lock:
            return list(self._traces)

    def clear(self) -> None:
        with self._lock:
            self._traces.clear()

    def export_jsonl(self, path_or_file) -> int:
        """Write one JSON line per completed trace tree; returns the count."""
        trees = self.traces()
        if hasattr(path_or_file, "write"):
            for tree in trees:
                path_or_file.write(json.dumps(tree) + "\n")
        else:
            with open(path_or_file, "w", encoding="utf-8") as fh:
                for tree in trees:
                    fh.write(json.dumps(tree) + "\n")
        return len(trees)
