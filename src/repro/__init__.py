"""repro — geometric-aggregation outlier detection for multivariate functional data.

A complete, from-scratch reproduction of:

    Lejeune, Mothe, Teste.  "Outlier detection in multivariate
    functional data based on a geometric aggregation."  EDBT 2020.
    DOI 10.5441/002/edbt.2020.38

Quickstart
----------
>>> from repro import (GeometricOutlierPipeline, IsolationForest,
...                    CurvatureMapping, make_taxonomy_dataset)
>>> data, labels = make_taxonomy_dataset("correlation", random_state=0)
>>> pipeline = GeometricOutlierPipeline(IsolationForest(random_state=0))
>>> scores = pipeline.fit(data).score_samples(data)

Subpackages
-----------
``repro.fda``        functional-data substrate (bases, smoothing, selection)
``repro.geometry``   differential geometry of paths, mapping functions
``repro.depth``      statistical depths; FUNTA and Dir.out baselines
``repro.detectors``  Isolation Forest, One-Class SVM (+ extensions)
``repro.data``       synthetic ECG and outlier-taxonomy generators
``repro.evaluation`` ROC/AUC, contaminated splits, experiment harness
``repro.core``       the paper's pipeline and the Figure-3 methods
``repro.engine``     shared execution engine (factorization cache, parallel fan-out)
``repro.plan``       declarative scoring specs + the plan compiler/executor
``repro.serving``    pipeline persistence + batched scoring service
``repro.streaming``  online detection over unbounded curve streams
"""

from repro.core import (
    DirOutMethod,
    FuntaMethod,
    GeometricOutlierPipeline,
    MappedDetectorMethod,
    default_methods,
    make_method,
)
from repro.data import make_ecg_dataset, make_fig1_dataset, make_taxonomy_dataset, square_augment
from repro.engine import ExecutionContext, FactorizationCache
from repro.depth import dirout_scores, funta_depth, funta_outlyingness
from repro.detectors import IsolationForest, OneClassSVM
from repro.evaluation import ResultTable, roc_auc, run_contamination_experiment
from repro.fda import BasisSmoother, BSplineBasis, FDataGrid, MFDataGrid
from repro.geometry import CurvatureMapping, SpeedMapping
from repro.plan import (
    DetectorSpec,
    MappingSpec,
    MethodSpec,
    PipelineSpec,
    SmootherSpec,
    StreamSpec,
    WorkloadSpec,
    compile_plan,
    load_spec,
    spec_from_json,
    spec_to_json,
)

__version__ = "1.0.0"

__all__ = [
    "BasisSmoother",
    "BSplineBasis",
    "CurvatureMapping",
    "DetectorSpec",
    "DirOutMethod",
    "ExecutionContext",
    "FactorizationCache",
    "FDataGrid",
    "FuntaMethod",
    "GeometricOutlierPipeline",
    "IsolationForest",
    "MFDataGrid",
    "MappedDetectorMethod",
    "MappingSpec",
    "MethodSpec",
    "OneClassSVM",
    "PipelineSpec",
    "ResultTable",
    "SmootherSpec",
    "SpeedMapping",
    "StreamSpec",
    "WorkloadSpec",
    "compile_plan",
    "default_methods",
    "dirout_scores",
    "funta_depth",
    "funta_outlyingness",
    "load_spec",
    "make_ecg_dataset",
    "make_fig1_dataset",
    "make_method",
    "make_taxonomy_dataset",
    "roc_auc",
    "spec_from_json",
    "spec_to_json",
    "run_contamination_experiment",
    "square_augment",
    "__version__",
]
