"""Command-line interface: regenerate every figure of the paper.

Usage::

    python -m repro fig1
    python -m repro fig2
    python -m repro fig3 --reps 50 --n-jobs 4
    python -m repro taxonomy
    python -m repro all --reps 15

Each subcommand prints the same rows/series as the corresponding bench
in ``benchmarks/`` (the benches additionally assert the expected shape
and time the computation).
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _print_table(title: str, headers: list[str], rows: list[list]) -> None:
    widths = [
        max(len(str(headers[j])), max((len(str(r[j])) for r in rows), default=0))
        for j in range(len(headers))
    ]
    line = "  ".join(str(h).ljust(widths[j]) for j, h in enumerate(headers))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(cell).ljust(widths[j]) for j, cell in enumerate(row)))


def run_fig1(args) -> None:
    """Figure 1: the motivating shape outlier, marginally invisible."""
    from repro.core.methods import MappedDetectorMethod
    from repro.data import make_fig1_dataset
    from repro.evaluation.metrics import roc_auc

    data, labels = make_fig1_dataset(random_state=args.seed)
    method = MappedDetectorMethod("iforest", n_basis=20)
    idx = np.arange(data.n_samples)
    scores = method.score_dataset(data, idx, idx, random_state=0)
    rank = int(np.argsort(-scores).tolist().index(20)) + 1
    _print_table(
        "Figure 1",
        ["quantity", "value"],
        [
            ["samples (n, m, p)", str(data.values.shape)],
            ["inlier |x| max", f"{np.abs(data.values[:20]).max():.2f}"],
            ["outlier |x| max", f"{np.abs(data.values[20]).max():.2f}"],
            ["curvature-pipeline AUC", f"{roc_auc(scores, labels):.3f}"],
            ["outlier rank", f"{rank} / 21"],
        ],
    )


def run_fig2(args) -> None:
    """Figure 2: curvature = 1 / tangent-circle radius on analytic curves."""
    from repro.fda import BSplineBasis, MFDataGrid
    from repro.fda.smoothing import smooth_mfd
    from repro.geometry import CurvatureMapping

    grid = np.linspace(0.0, 2.0 * np.pi, 201)
    rows = []
    for radius in (0.5, 1.0, 2.0, 4.0):
        x = radius * np.cos(grid)
        y = radius * np.sin(grid)
        mfd = MFDataGrid(np.stack([x, y], axis=1)[None], grid)
        fit, _ = smooth_mfd(mfd, lambda dom: BSplineBasis(dom, 25), smoothing=1e-6)
        kappa = CurvatureMapping(regularization=0.0).transform(fit, grid)
        rows.append(
            [f"circle r={radius}", f"{1 / radius:.3f}", f"{kappa.values[:, 10:-10].mean():.3f}"]
        )
    _print_table("Figure 2", ["curve", "analytic kappa", "measured kappa"], rows)


def run_fig3(args) -> None:
    """Figure 3: AUC vs. contamination level (the headline result)."""
    from repro.core.methods import default_methods
    from repro.data import make_ecg_dataset, square_augment
    from repro.evaluation.experiment import run_contamination_experiment

    data, labels, _ = make_ecg_dataset(n_normal=133, n_abnormal=67, random_state=args.seed)
    mfd = square_augment(data)
    table = run_contamination_experiment(
        mfd,
        labels,
        default_methods(),
        n_repetitions=args.reps,
        train_fraction=0.7,
        random_state=args.seed,
        verbose=args.verbose,
        n_jobs=args.n_jobs,
    )
    print()
    print(table.to_text(f"Figure 3: AUC vs contamination ({args.reps} repetitions)"))


def run_taxonomy(args) -> None:
    """Per-outlier-class AUC table (grounds the paper's Sec. 4.3)."""
    from repro.core.methods import DirOutMethod, FuntaMethod, MappedDetectorMethod
    from repro.data import OUTLIER_CLASSES, make_taxonomy_dataset
    from repro.evaluation.metrics import roc_auc

    methods = [
        DirOutMethod(),
        FuntaMethod(),
        MappedDetectorMethod("iforest", n_estimators=200),
        MappedDetectorMethod("ocsvm"),
    ]
    rows = []
    for kind in OUTLIER_CLASSES:
        data, labels = make_taxonomy_dataset(kind, 60, 8, random_state=args.seed)
        idx = np.arange(data.n_samples)
        cells = [kind]
        for method in methods:
            scores = method.score_dataset(data, idx, idx, random_state=3)
            cells.append(f"{roc_auc(scores, labels):.3f}")
        rows.append(cells)
    _print_table(
        "Per-class detection AUC",
        ["outlier class"] + [m.name for m in methods],
        rows,
    )


COMMANDS = {
    "fig1": run_fig1,
    "fig2": run_fig2,
    "fig3": run_fig3,
    "taxonomy": run_taxonomy,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the figures of Lejeune et al., EDBT 2020.",
    )
    parser.add_argument("command", choices=list(COMMANDS) + ["all"])
    parser.add_argument("--reps", type=int, default=15,
                        help="repetitions per contamination level (fig3; paper: 50)")
    parser.add_argument("--seed", type=int, default=7, help="master random seed")
    parser.add_argument("--n-jobs", type=int, default=1,
                        help="parallel workers for the repetition fan-out "
                             "(fig3; -1 = one per core; results are identical "
                             "to the serial run)")
    parser.add_argument("--verbose", action="store_true",
                        help="print per-repetition progress (fig3)")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "all":
        for name in COMMANDS:
            COMMANDS[name](args)
    else:
        COMMANDS[args.command](args)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
