"""Command-line interface: regenerate figures, serve saved pipelines.

Usage::

    python -m repro fig1
    python -m repro fig2
    python -m repro fig3 --reps 50 --n-jobs 4
    python -m repro taxonomy
    python -m repro all --reps 15
    python -m repro serve-score --pipeline model_dir --data batch.npz
    python -m repro serve --pipeline ecg=model_dir --port 8000 --workers 4
    python -m repro stream-score --data stream.npz --kind funta --window 128
    python -m repro telemetry dump --pipeline model_dir --data batch.npz
    python -m repro telemetry trace --pipeline model_dir --data batch.npz
    python -m repro plan validate examples/specs/*.json model_dir
    python -m repro bench-depth --n 200 --m 100 --n-jobs 2
    python -m repro bench-stream --window 128 --arrivals 200

Each figure subcommand prints the same rows/series as the corresponding
bench in ``benchmarks/`` (the benches additionally assert the expected
shape and time the computation).  ``serve-score`` is the inference
entry point: it loads a pipeline persisted by
:func:`repro.serving.save_pipeline` and scores a curve batch stored as
an ``.npz`` with ``values`` (n, m) or (n, m, p) and ``grid`` (m,)
arrays, streaming in bounded-memory chunks.  ``stream-score`` is the
*online* counterpart: curves are treated as an unbounded stream, scored
chunk by chunk against an evolving reference window with an adaptive
threshold and drift monitoring (curves consumed during warm-up get NaN
scores).

``main`` returns 0 on success and 2 on operational errors (missing or
corrupt files, invalid data), printing the reason to stderr.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _print_table(title: str, headers: list[str], rows: list[list]) -> None:
    widths = [
        max(len(str(headers[j])), max((len(str(r[j])) for r in rows), default=0))
        for j in range(len(headers))
    ]
    line = "  ".join(str(h).ljust(widths[j]) for j, h in enumerate(headers))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(cell).ljust(widths[j]) for j, cell in enumerate(row)))


def run_fig1(args) -> None:
    """Figure 1: the motivating shape outlier, marginally invisible."""
    from repro.core.methods import MappedDetectorMethod
    from repro.data import make_fig1_dataset
    from repro.evaluation.metrics import roc_auc

    data, labels = make_fig1_dataset(random_state=args.seed)
    method = MappedDetectorMethod("iforest", n_basis=20)
    idx = np.arange(data.n_samples)
    scores = method.score_dataset(data, idx, idx, random_state=0)
    rank = int(np.argsort(-scores).tolist().index(20)) + 1
    _print_table(
        "Figure 1",
        ["quantity", "value"],
        [
            ["samples (n, m, p)", str(data.values.shape)],
            ["inlier |x| max", f"{np.abs(data.values[:20]).max():.2f}"],
            ["outlier |x| max", f"{np.abs(data.values[20]).max():.2f}"],
            ["curvature-pipeline AUC", f"{roc_auc(scores, labels):.3f}"],
            ["outlier rank", f"{rank} / 21"],
        ],
    )


def run_fig2(args) -> None:
    """Figure 2: curvature = 1 / tangent-circle radius on analytic curves."""
    from repro.fda import BSplineBasis, MFDataGrid
    from repro.fda.smoothing import smooth_mfd
    from repro.geometry import CurvatureMapping

    grid = np.linspace(0.0, 2.0 * np.pi, 201)
    rows = []
    for radius in (0.5, 1.0, 2.0, 4.0):
        x = radius * np.cos(grid)
        y = radius * np.sin(grid)
        mfd = MFDataGrid(np.stack([x, y], axis=1)[None], grid)
        fit, _ = smooth_mfd(mfd, lambda dom: BSplineBasis(dom, 25), smoothing=1e-6)
        kappa = CurvatureMapping(regularization=0.0).transform(fit, grid)
        rows.append(
            [f"circle r={radius}", f"{1 / radius:.3f}", f"{kappa.values[:, 10:-10].mean():.3f}"]
        )
    _print_table("Figure 2", ["curve", "analytic kappa", "measured kappa"], rows)


def run_fig3(args) -> None:
    """Figure 3: AUC vs. contamination level (the headline result).

    The four methods are handed to the harness as declarative
    :class:`~repro.plan.MethodSpec` entries and compiled against the
    run's execution context — the same construction path as
    ``make_method`` and the serving manifests.
    """
    from repro.data import make_ecg_dataset, square_augment
    from repro.evaluation.experiment import run_contamination_experiment
    from repro.plan import DEFAULT_METHOD_SPECS

    data, labels, _ = make_ecg_dataset(n_normal=133, n_abnormal=67, random_state=args.seed)
    mfd = square_augment(data)
    table = run_contamination_experiment(
        mfd,
        labels,
        list(DEFAULT_METHOD_SPECS),
        n_repetitions=args.reps,
        train_fraction=0.7,
        random_state=args.seed,
        verbose=args.verbose,
        n_jobs=args.n_jobs,
    )
    print()
    print(table.to_text(f"Figure 3: AUC vs contamination ({args.reps} repetitions)"))


def run_taxonomy(args) -> None:
    """Per-outlier-class AUC table (grounds the paper's Sec. 4.3)."""
    from repro.core.methods import DirOutMethod, FuntaMethod, MappedDetectorMethod
    from repro.data import OUTLIER_CLASSES, make_taxonomy_dataset
    from repro.evaluation.metrics import roc_auc

    methods = [
        DirOutMethod(),
        FuntaMethod(),
        MappedDetectorMethod("iforest", n_estimators=200),
        MappedDetectorMethod("ocsvm"),
    ]
    rows = []
    for kind in OUTLIER_CLASSES:
        data, labels = make_taxonomy_dataset(kind, 60, 8, random_state=args.seed)
        idx = np.arange(data.n_samples)
        cells = [kind]
        for method in methods:
            scores = method.score_dataset(data, idx, idx, random_state=3)
            cells.append(f"{roc_auc(scores, labels):.3f}")
        rows.append(cells)
    _print_table(
        "Per-class detection AUC",
        ["outlier class"] + [m.name for m in methods],
        rows,
    )


def _load_batch_npz(path):
    """Read a curve batch (``values`` + ``grid`` arrays) from an ``.npz``."""
    from repro.exceptions import PersistenceError
    from repro.fda.fdata import MFDataGrid
    from zipfile import BadZipFile

    try:
        with np.load(path, allow_pickle=False) as bundle:
            missing = {"values", "grid"} - set(bundle.files)
            if missing:
                raise PersistenceError(
                    f"data file {path} is missing arrays: {sorted(missing)}"
                )
            values = bundle["values"]
            grid = bundle["grid"]
    except (OSError, ValueError, BadZipFile) as exc:
        raise PersistenceError(f"cannot read data file {path}: {exc}") from exc
    if values.ndim == 2:
        values = values[:, :, None]
    if values.shape[0] == 0:
        raise PersistenceError(f"data file {path} contains no curves")
    return MFDataGrid(values, grid)


def run_bench_depth(args) -> None:
    """bench-depth: time the depth kernels, persist the perf datapoint.

    ``--scale`` swaps the naive-vs-vectorized gate workload for the
    large scoring workload (no naive oracle timings — at 100k curves
    the loop kernels would dominate the run); ``--n`` defaults per
    mode (200 normal, 100_000 scaled).
    """
    from repro.perf import (
        append_bench_record,
        format_bench_rows,
        run_depth_kernel_bench,
        run_scaled_depth_bench,
    )

    if args.scale:
        n = 100_000 if args.n is None else args.n
        record = run_scaled_depth_bench(
            n=n,
            n_ref=args.n_ref,
            m=args.m,
            seed=args.seed,
            repeats=args.repeats,
            n_jobs=args.n_jobs,
            quick=args.quick,
        )
        title = f"Depth kernels (scaled) — n={n}, n_ref={args.n_ref}, m={args.m}"
    else:
        n = 200 if args.n is None else args.n
        record = run_depth_kernel_bench(
            n=n,
            m=args.m,
            seed=args.seed,
            repeats=args.repeats,
            n_jobs=args.n_jobs,
            quick=args.quick,
        )
        title = f"Depth kernels — n={n}, m={args.m}"
    headers, rows = format_bench_rows(record)
    _print_table(
        f"{title}, git {record['git_sha'][:12]}",
        headers,
        rows,
    )
    if args.output:
        trajectory = append_bench_record(args.output, record)
        print(f"\nperf trajectory: {args.output} ({len(trajectory)} records)")


def _parse_pipeline_args(entries) -> dict:
    """Parse ``name=dir`` pipeline bindings for ``repro serve``."""
    from repro.exceptions import ValidationError

    pipelines = {}
    for entry in entries:
        name, sep, path = entry.partition("=")
        if not sep or not name or not path:
            raise ValidationError(
                f"--pipeline expects NAME=DIR (a deployment name bound to a "
                f"saved-pipeline directory), got {entry!r}"
            )
        if name in pipelines:
            raise ValidationError(f"duplicate pipeline name {name!r} in --pipeline")
        pipelines[name] = path
    return pipelines


def run_serve(args) -> None:
    """serve: the asyncio HTTP front door over one or more saved pipelines.

    Each worker process loads every manifest itself (``mmap`` →
    zero-copy page-cache arrays) and shares no mutable state; requests
    route by pipeline name or spec hash into the micro-batching queue,
    and the queue is bounded by ``--high-water`` (beyond it, POST
    /submit sheds with 429 + Retry-After).
    """
    from repro.serving.server import load_service, serve

    pipelines = _parse_pipeline_args(args.pipeline)
    # Validate every manifest before binding the port (and before
    # forking workers): a typo'd path should fail in one line, not N
    # tracebacks later from inside a worker fleet.
    load_service(pipelines, max_pending=args.max_pending, mmap=not args.no_mmap)
    serve(
        pipelines,
        host=args.host,
        port=args.port,
        workers=args.workers,
        max_pending=args.max_pending,
        high_water=args.high_water,
        flush_interval=args.flush_interval,
        mmap=not args.no_mmap,
    )


def run_serve_score(args) -> None:
    """serve-score: stream a persisted pipeline over an ``.npz`` curve batch.

    The manifest's declarative spec is validated and lowered by the
    plan compiler during :func:`~repro.serving.load_pipeline`; the
    restored pipeline is then wrapped in a stream-mode plan whose
    executor walks the batch in bounded-memory chunks.
    """
    from repro.plan import WorkloadSpec, plan_for_pipeline
    from repro.serving import load_pipeline

    pipeline = load_pipeline(args.pipeline)
    plan = plan_for_pipeline(
        pipeline, WorkloadSpec(mode="stream", chunk_size=args.chunk_size)
    )
    data = _load_batch_npz(args.data)
    chunks = list(plan.score_chunks(data))
    scores = np.concatenate(chunks)
    if args.output:
        np.savez_compressed(args.output, scores=scores)
    top = np.argsort(-scores)[: min(5, scores.shape[0])]
    _print_table(
        "serve-score",
        ["quantity", "value"],
        [
            ["pipeline", str(args.pipeline)],
            ["curves scored", str(scores.shape[0])],
            ["chunks", str(len(chunks))],
            ["score min/mean/max",
             f"{scores.min():.4f} / {scores.mean():.4f} / {scores.max():.4f}"],
            ["top outlier indices", " ".join(str(i) for i in top)],
            ["output", str(args.output) if args.output else "(stdout only)"],
        ],
    )


def run_stream_score(args) -> None:
    """stream-score: online detection over a chunked curve stream.

    The CLI arguments parse into a declarative
    :class:`~repro.plan.StreamSpec`; the plan compiler builds the
    window/threshold/drift stack and the plan executor drives the
    chunked online steps.
    """
    from repro.plan import StreamSpec, WorkloadSpec, compile_plan, run_chunked

    data = _load_batch_npz(args.data)
    spec = StreamSpec(
        kind=args.kind,
        window=args.window,
        policy=args.policy,
        min_reference=args.min_reference,
        contamination=args.contamination,
        threshold_mode=args.threshold_mode,
        drift_baseline=args.drift_baseline,
        drift_recent=args.drift_recent,
        alpha=args.alpha,
        seed=args.seed,
        shards=args.shards,
    )
    plan = compile_plan(spec, WorkloadSpec(mode="stream", chunk_size=args.chunk_size))
    detector = plan.detector

    def online_step(chunk):
        """One chunk through the detector; NaN scores during warm-up."""
        result = detector.process(chunk)
        if result.scores is None:
            return (
                np.full(chunk.n_samples, np.nan),
                np.zeros(chunk.n_samples, dtype=bool),
            )
        chunk_flags = (
            result.flags
            if result.flags is not None
            else np.zeros(chunk.n_samples, dtype=bool)
        )
        return result.scores, chunk_flags

    # run_chunked rather than plan.process_chunks: warm-up padding and
    # flag back-fill need each chunk's size, which StreamBatchResult
    # does not carry.  The chunk size is still threaded once, through
    # the plan's workload.
    scores = []
    flags = []
    for chunk_scores, chunk_flags in run_chunked(
        online_step, data, chunk_size=plan.workload.chunk_size
    ):
        scores.append(chunk_scores)
        flags.append(chunk_flags)
    scores = np.concatenate(scores)
    flags = np.concatenate(flags)
    if args.output:
        np.savez_compressed(args.output, scores=scores, flags=flags)
    stats = detector.stats()
    events = detector.drift_events
    scored = scores[~np.isnan(scores)]
    _print_table(
        "stream-score",
        ["quantity", "value"],
        [
            ["kind / policy", f"{args.kind} / {args.policy}"
             + (f" / {args.shards} shards" if args.shards > 1 else "")],
            ["curves seen", str(stats["n_seen"])],
            ["curves scored", str(stats["n_scored"])],
            ["flagged outliers", str(stats["n_flagged"])],
            ["reference size", str(stats["n_reference"])],
            ["drift events", " ".join(str(e.n_seen) for e in events) or "none"],
            ["score min/mean/max",
             f"{scored.min():.4f} / {scored.mean():.4f} / {scored.max():.4f}"
             if scored.size else "(all warm-up)"],
            ["incremental", str(stats["incremental"])],
            ["output", str(args.output) if args.output else "(stdout only)"],
        ],
    )


def run_telemetry(args) -> None:
    """telemetry: one instrumented scoring pass, exported as metrics or traces.

    Loads a persisted pipeline into a telemetry-enabled execution
    context, streams the ``.npz`` batch through the chunked executor
    under a root span, then emits what the run recorded:

    * ``dump``  — the metrics registry as JSON (default) or Prometheus
      text (``--format prometheus``): cache hits, kernel timings,
      per-chunk latency histograms with p50/p95/p99;
    * ``trace`` — the completed trace trees as JSON Lines, one root
      (the run) per line with per-chunk child spans.
    """
    import json

    from repro.engine import ExecutionContext
    from repro.plan.executor import run_chunked
    from repro.serving.persist import load_pipeline
    from repro.telemetry import Telemetry

    telemetry = Telemetry()
    context = ExecutionContext(telemetry=telemetry)
    pipeline = load_pipeline(args.pipeline, context=context)
    data = _load_batch_npz(args.data)
    n_chunks = 0
    with telemetry.span("telemetry_run", pipeline=str(args.pipeline),
                        curves=data.n_samples):
        for _ in run_chunked(pipeline.score_samples, data,
                             chunk_size=args.chunk_size, telemetry=telemetry):
            n_chunks += 1
    if args.telemetry_command == "dump":
        if args.format == "prometheus":
            text = telemetry.to_prometheus()
        else:
            text = json.dumps(telemetry.snapshot(), indent=2, sort_keys=True) + "\n"
        if args.output:
            with open(args.output, "w", encoding="utf-8") as fh:
                fh.write(text)
            print(f"telemetry dump: {args.output} "
                  f"({data.n_samples} curves, {n_chunks} chunks)")
        else:
            print(text, end="")
    else:
        if args.output:
            count = telemetry.tracer.export_jsonl(args.output)
            print(f"telemetry trace: {args.output} ({count} trace trees)")
        else:
            telemetry.tracer.export_jsonl(sys.stdout)


def run_bench_stream(args) -> None:
    """bench-stream: time incremental vs refit streaming, persist record."""
    from repro.perf import append_bench_record, format_streaming_rows, run_streaming_bench

    record = run_streaming_bench(
        window=args.window,
        m=args.m,
        arrivals=args.arrivals,
        seed=args.seed,
        repeats=args.repeats,
        quick=args.quick,
        shards=args.shards,
    )
    headers, rows = format_streaming_rows(record)
    _print_table(
        f"Streaming — window={args.window}, m={args.m}, "
        f"arrivals={args.arrivals}, git {record['git_sha'][:12]}",
        headers,
        rows,
    )
    if args.output:
        trajectory = append_bench_record(args.output, record)
        print(f"\nperf trajectory: {args.output} ({len(trajectory)} records)")


def run_plan_validate(args) -> None:
    """plan validate: parse, validate and compile declarative specs.

    Accepts spec ``.json`` files (tagged documents — see
    :mod:`repro.plan.specs`) and saved-pipeline directories or
    ``manifest.json`` files (their embedded spec section is validated,
    including v1 manifests via the translation reader).  Exits non-zero
    on the first invalid spec, printing the actionable validation
    message.
    """
    from pathlib import Path

    from repro.plan import WorkloadSpec, compile_plan, load_spec
    from repro.serving.persist import MANIFEST_NAME, read_spec

    rows = []
    for raw in args.paths:
        path = Path(raw)
        if path.is_dir():
            spec = read_spec(path)
        elif path.name == MANIFEST_NAME:
            spec = read_spec(path.parent)
        else:
            spec = load_spec(path)
        if isinstance(spec, WorkloadSpec):
            summary = {"kind": "workload", "mode": spec.mode}
        else:
            # Compile AND build: building proves the spec lowers into
            # live objects (registries resolve, cross-constructor
            # invariants hold), not just that the JSON parses.
            plan = compile_plan(spec)
            plan.build()
            summary = plan.describe()
        rows.append([str(raw), summary.pop("kind"),
                     " ".join(f"{k}={v}" for k, v in sorted(summary.items())), "ok"])
    _print_table("plan validate", ["spec", "kind", "summary", "status"], rows)


COMMANDS = {
    "fig1": run_fig1,
    "fig2": run_fig2,
    "fig3": run_fig3,
    "taxonomy": run_taxonomy,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the figures of Lejeune et al., EDBT 2020, "
                    "and serve persisted pipelines.",
    )
    figure_options = argparse.ArgumentParser(add_help=False)
    figure_options.add_argument(
        "--reps", type=int, default=15,
        help="repetitions per contamination level (fig3; paper: 50)")
    figure_options.add_argument("--seed", type=int, default=7, help="master random seed")
    figure_options.add_argument(
        "--n-jobs", type=int, default=1,
        help="parallel workers for the repetition fan-out "
             "(fig3; -1 = one per core; results are identical "
             "to the serial run)")
    figure_options.add_argument("--verbose", action="store_true",
                                help="print per-repetition progress (fig3)")
    subparsers = parser.add_subparsers(dest="command", required=True)
    for name in (*COMMANDS, "all"):
        subparsers.add_parser(name, parents=[figure_options],
                              help=f"regenerate {name}" if name != "all"
                              else "regenerate every figure")
    bench = subparsers.add_parser(
        "bench-depth",
        help="time naive vs vectorized depth kernels; append the "
             "machine-readable record to the perf trajectory")
    bench.add_argument("--n", type=int, default=None,
                       help="curves in the workload "
                            "(default 200, or 100000 with --scale)")
    bench.add_argument("--m", type=int, default=100, help="grid points per curve")
    bench.add_argument("--seed", type=int, default=7, help="workload random seed")
    bench.add_argument("--repeats", type=int, default=2,
                       help="timing repetitions (best-of)")
    bench.add_argument("--n-jobs", type=int, default=1,
                       help="also time the kernels fanned out over this many "
                            "workers (1 = skip the pool column)")
    bench.add_argument("--scale", action="store_true",
                       help="run the large scoring workload instead of the "
                            "naive-vs-vectorized gate (skips naive timings)")
    bench.add_argument("--n-ref", type=int, default=256,
                       help="reference curves for the --scale workload")
    bench.add_argument("--quick", action="store_true",
                       help="mark the record as a quick-mode datapoint")
    bench.add_argument("--output", default="BENCH_depth_kernels.json",
                       help="perf-trajectory JSON to append to "
                            "('' = print only)")
    stream_bench = subparsers.add_parser(
        "bench-stream",
        help="time incremental streaming updates vs naive refit per arrival; "
             "append the machine-readable record to the perf trajectory")
    stream_bench.add_argument("--window", type=int, default=128,
                              help="reference window capacity")
    stream_bench.add_argument("--m", type=int, default=100, help="grid points per curve")
    stream_bench.add_argument("--arrivals", type=int, default=200,
                              help="single-curve arrivals timed after the prime")
    stream_bench.add_argument("--seed", type=int, default=7, help="workload random seed")
    stream_bench.add_argument("--repeats", type=int, default=2,
                              help="timing repetitions (best-of)")
    stream_bench.add_argument("--shards", type=int, default=1,
                              help="also time the sharded streaming tier with "
                                   "this many shards (records shard_speedup)")
    stream_bench.add_argument("--quick", action="store_true",
                              help="mark the record as a quick-mode datapoint")
    stream_bench.add_argument("--output", default="BENCH_streaming.json",
                              help="perf-trajectory JSON to append to ('' = print only)")
    stream = subparsers.add_parser(
        "stream-score",
        help="online detection over a curve stream (evolving reference, "
             "adaptive threshold, drift monitor)")
    stream.add_argument("--data", required=True,
                        help=".npz with 'values' (n, m[, p]) and 'grid' (m,) arrays, "
                             "consumed in stream order")
    stream.add_argument("--kind", default="funta",
                        choices=("funta", "dirout", "halfspace"),
                        help="streaming scorer kind")
    stream.add_argument("--window", type=int, default=128,
                        help="reference window capacity")
    stream.add_argument("--policy", default="sliding",
                        choices=("sliding", "reservoir"),
                        help="reference maintenance policy")
    stream.add_argument("--chunk-size", type=int, default=64,
                        help="curves per processed chunk")
    stream.add_argument("--min-reference", type=int, default=16,
                        help="warm-up size before scoring starts")
    stream.add_argument("--contamination", type=float, default=0.05,
                        help="expected outlier fraction (threshold quantile)")
    stream.add_argument("--threshold-mode", default="window",
                        choices=("window", "p2", "sketch"),
                        help="exact ring-buffer quantile, O(1)-memory P2, or "
                             "mergeable quantile sketch (shardable)")
    stream.add_argument("--drift-baseline", type=int, default=128,
                        help="baseline scores for the KS drift monitor")
    stream.add_argument("--drift-recent", type=int, default=64,
                        help="rolling recent scores compared against the baseline")
    stream.add_argument("--alpha", type=float, default=0.01,
                        help="KS test level for drift checks")
    stream.add_argument("--shards", type=int, default=1,
                        help="partition the stream across N shard states "
                             "(mergeable windows, federated threshold/drift)")
    stream.add_argument("--seed", type=int, default=7,
                        help="reservoir eviction seed")
    stream.add_argument("--output", default=None,
                        help="optional .npz path for scores + flags")
    telemetry_parser = subparsers.add_parser(
        "telemetry",
        help="run one instrumented scoring pass over a saved pipeline and "
             "export its metrics registry or trace trees")
    telemetry_sub = telemetry_parser.add_subparsers(
        dest="telemetry_command", required=True)
    tel_common = argparse.ArgumentParser(add_help=False)
    tel_common.add_argument("--pipeline", required=True,
                            help="directory written by repro.serving.save_pipeline")
    tel_common.add_argument("--data", required=True,
                            help=".npz with 'values' (n, m[, p]) and 'grid' (m,) arrays")
    tel_common.add_argument("--chunk-size", type=int, default=256,
                            help="curves per streamed scoring chunk")
    tel_dump = telemetry_sub.add_parser(
        "dump", parents=[tel_common],
        help="emit the run's metrics registry (JSON or Prometheus text)")
    tel_dump.add_argument("--format", default="json",
                          choices=("json", "prometheus"),
                          help="snapshot format (default json)")
    tel_dump.add_argument("--output", default=None,
                          help="file to write instead of stdout")
    tel_trace = telemetry_sub.add_parser(
        "trace", parents=[tel_common],
        help="emit the run's trace trees as JSON Lines (one root per line)")
    tel_trace.add_argument("--output", default=None,
                           help="JSONL file to write instead of stdout")
    plan_parser = subparsers.add_parser(
        "plan", help="inspect and validate declarative scoring specs")
    plan_sub = plan_parser.add_subparsers(dest="plan_command", required=True)
    plan_validate = plan_sub.add_parser(
        "validate",
        help="parse, validate and compile spec JSON files / pipeline manifests")
    plan_validate.add_argument(
        "paths", nargs="+",
        help="spec .json files, saved-pipeline directories, or manifest.json paths")
    serve = subparsers.add_parser(
        "serve-score", help="score a curve batch with a persisted pipeline")
    serve.add_argument("--pipeline", required=True,
                       help="directory written by repro.serving.save_pipeline")
    serve.add_argument("--data", required=True,
                       help=".npz with 'values' (n, m[, p]) and 'grid' (m,) arrays")
    serve.add_argument("--chunk-size", type=int, default=256,
                       help="curves per streamed scoring chunk (bounds memory)")
    serve.add_argument("--output", default=None,
                       help="optional .npz path for the scores")
    http = subparsers.add_parser(
        "serve",
        help="HTTP serving front door: POST /score and /submit route curve "
             "batches into the micro-batching queue; GET /healthz and /stats")
    http.add_argument("--pipeline", action="append", required=True,
                      metavar="NAME=DIR",
                      help="deployment name bound to a saved-pipeline directory "
                           "(repeatable; requests address NAME or the spec hash)")
    http.add_argument("--host", default="127.0.0.1", help="listen address")
    http.add_argument("--port", type=int, default=8000,
                      help="listen port (0 = pick a free port)")
    http.add_argument("--workers", type=int, default=1,
                      help="worker processes sharing the listening socket; "
                           "each loads its own manifests and shares no "
                           "mutable state")
    http.add_argument("--max-pending", type=int, default=256,
                      help="micro-batch flush threshold in queued curves")
    http.add_argument("--high-water", type=int, default=4096,
                      help="backpressure bound on outstanding curves — past "
                           "it, POST /submit sheds with 429 + Retry-After")
    http.add_argument("--flush-interval", type=float, default=0.05,
                      help="deadline (s) after which a partial batch flushes")
    http.add_argument("--no-mmap", action="store_true",
                      help="load array bundles eagerly instead of zero-copy "
                           "memory-mapping (mmap is the default)")
    return parser


def main(argv=None) -> int:
    from repro.exceptions import ReproError

    args = build_parser().parse_args(argv)
    try:
        if args.command == "all":
            for name in COMMANDS:
                COMMANDS[name](args)
        elif args.command == "plan":
            run_plan_validate(args)
        elif args.command == "serve":
            run_serve(args)
        elif args.command == "serve-score":
            run_serve_score(args)
        elif args.command == "stream-score":
            run_stream_score(args)
        elif args.command == "telemetry":
            run_telemetry(args)
        elif args.command == "bench-depth":
            run_bench_depth(args)
        elif args.command == "bench-stream":
            run_bench_stream(args)
        else:
            COMMANDS[args.command](args)
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
