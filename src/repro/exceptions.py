"""Exception hierarchy for the :mod:`repro` library.

All errors raised deliberately by the library derive from
:class:`ReproError` so callers can catch library-specific failures with a
single ``except`` clause while letting programming errors (``TypeError``
from NumPy, etc.) propagate unchanged.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ValidationError(ReproError, ValueError):
    """An input array, grid or parameter failed validation.

    Inherits from :class:`ValueError` so generic callers that expect
    ``ValueError`` from bad inputs keep working.
    """


class ConfigurationError(ValidationError):
    """A declarative spec (``repro.plan``) is malformed.

    Raised with an actionable message — unknown types list the known
    registry entries, unknown parameters list the valid keys — by the
    spec validators, so a bad JSON spec or a typo'd keyword argument
    fails at construction time instead of deep inside a fit.

    Subclasses :class:`ValidationError`, so callers catching the broad
    validation family (or plain ``ValueError``) keep working.
    """


class NotFittedError(ReproError, RuntimeError):
    """An estimator method requiring a fitted model was called before ``fit``."""


class ConvergenceError(ReproError, RuntimeError):
    """An iterative solver failed to reach its stopping criterion."""


class GridError(ValidationError):
    """An evaluation grid is malformed (unsorted, duplicated, too short)."""


class BasisError(ValidationError):
    """A basis system is malformed or incompatible with the requested operation."""


class PersistenceError(ReproError):
    """A persisted pipeline artifact is missing, corrupt or incompatible.

    Raised by :mod:`repro.serving` when a manifest/array bundle cannot be
    read, fails validation, or declares an unsupported format version.
    """
