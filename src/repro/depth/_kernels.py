"""Blocked, fully vectorized kernels for the depth substrate.

Every depth notion in this package used to walk a Python loop over
samples, grid points, curve pairs or random directions.  This module
replaces those loops with whole-array NumPy computations over
memory-bounded blocks:

* **FUNTA** — the O(n²·m) pair loop becomes one broadcast sign-change
  computation over ``(block × n_ref × m)`` slabs, with tangent angles
  ``arctan``-ed once per curve instead of once per pair;
* **pointwise profiles** — projection / halfspace / mahalanobis /
  spatial / simplicial depth of every sample at every grid point is
  dispatched as whole ``(n_samples × n_points)`` cross-sections;
  halfspace counts come from an exact double-argsort rank trick rather
  than O(n·n_ref) boolean comparisons per point;
* **Dir.out** — the per-grid-point Stahel–Donoho and Weiszfeld loops
  become batched matrix ops (the geometric median iterates all grid
  points simultaneously, freezing columns as they converge);
* **simplicial depth** — the per-query-point Python loop over C(n,3)
  triangles becomes blocked orientation-sign counting over
  ``(query-block × triangle-block)`` slabs.

Scratch memory is governed by ``block_bytes`` (default
:data:`DEFAULT_BLOCK_BYTES`, ~64 MB): work is cut into contiguous
blocks whose temporaries fit the budget, so huge inputs stream through
a bounded footprint.  Blocks are independent, so an optional
:class:`~repro.engine.ExecutionContext` fans whole blocks out across
its process pool (``context.distribute``) with results *bit-identical*
to the serial order.

The original loop implementations stay reachable on every public depth
function via ``naive=True`` — they are the equivalence oracle the
property tests pin these kernels against.
"""

from __future__ import annotations

import functools
import time

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.linalg import row_blocks
from repro.utils.random import check_random_state

__all__ = [
    "DEFAULT_BLOCK_BYTES",
    "MAD_SCALE",
    "resolve_block_bytes",
    "resolve_dtype",
    "draw_directions",
    "rank_counts",
    "funta_univariate",
    "pointwise_profile",
    "batched_stahel_donoho",
    "batched_spatial_median",
    "batched_outlyingness_vectors",
    "spatial_depth_cloud",
    "simplicial_depth_cloud",
    "halfspace_depth_cloud",
]

#: Default scratch budget per block (~64 MB), tunable per call.
DEFAULT_BLOCK_BYTES = 64 * 1024 * 1024

#: Consistency factor of the MAD for the normal distribution.
MAD_SCALE = 1.4826

_HALF_PI = np.pi / 2.0

#: Numeric backends the kernels compute in.  float64 is the reference
#: (and the oracle); float32 is the fast path gated by the plan layer's
#: ``WorkloadSpec.dtype`` — half the memory traffic on the slab-shaped
#: temporaries, scores within a pinned ULP distance of the float64
#: oracle (see ``tests/test_float32_path.py``).
SUPPORTED_DTYPES = ("float64", "float32")


def resolve_block_bytes(block_bytes) -> int:
    """Validate ``block_bytes`` (``None`` → :data:`DEFAULT_BLOCK_BYTES`)."""
    if block_bytes is None:
        return DEFAULT_BLOCK_BYTES
    if not isinstance(block_bytes, (int, np.integer)) or isinstance(block_bytes, bool):
        raise ValidationError(f"block_bytes must be a positive int, got {block_bytes!r}")
    if block_bytes <= 0:
        raise ValidationError(f"block_bytes must be a positive int, got {block_bytes!r}")
    return int(block_bytes)


def resolve_dtype(dtype) -> np.dtype:
    """Validate a kernel compute dtype (``None`` → float64)."""
    if dtype is None:
        return np.dtype(np.float64)
    resolved = np.dtype(dtype)
    if resolved.name not in SUPPORTED_DTYPES:
        raise ValidationError(
            f"kernel dtype must be one of {list(SUPPORTED_DTYPES)}, got {dtype!r}"
        )
    return resolved


def _as_dtype_pair(values, ref_values, dtype: np.dtype):
    """Cast a (values, reference) pair to the compute dtype, preserving
    object identity for the self-scoring fast paths (``values is
    ref_values`` stays true after the cast)."""
    same = values is ref_values
    values = np.asarray(values, dtype=dtype)
    ref_values = values if same else np.asarray(ref_values, dtype=dtype)
    return values, ref_values


def draw_directions(random_state, n_directions: int, p: int) -> np.ndarray:
    """Random unit directions plus the coordinate axes — shared by the
    naive and vectorized projection/halfspace paths so both consume the
    generator identically."""
    rng = check_random_state(random_state)
    directions = rng.standard_normal((n_directions, p))
    directions = np.vstack([directions, np.eye(p)])
    directions /= np.linalg.norm(directions, axis=1, keepdims=True)
    return directions


def _direction_stack(random_state, n_directions: int, p: int, m: int) -> np.ndarray:
    """One direction set per grid point, drawn exactly like the naive
    per-point loop draws them (one :func:`check_random_state` resolution
    per grid point, in grid order), so an int seed reproduces the naive
    profile bit-for-bit and a Generator is consumed in the same order."""
    stack = np.empty((m, n_directions + p, p))
    for j in range(m):
        stack[j] = draw_directions(random_state, n_directions, p)
    return stack


def _run_blocks(worker, blocks, context, arrays=None, label=None):
    """Apply ``worker(block, **arrays)`` to every block, optionally pooled.

    ``arrays`` holds the large read-only inputs (curve cubes, direction
    stacks, tangent angles).  Serial execution passes them straight
    through; a parallel :class:`~repro.engine.ExecutionContext` places
    them in a :class:`~repro.engine.shared.SharedArrayPool` once and the
    workers attach zero-copy (``context.run_blocks``).  Whole blocks are
    the work units and results come back in input order, so the pooled
    result is bit-identical to the serial one.

    When the context carries an enabled telemetry handle, each call
    counts one invocation + ``len(blocks)`` blocks and records its wall
    time under the ``label`` kernel tag — one timestamp pair per
    invocation (never per block), so kernel numerics and per-block cost
    are untouched.
    """
    arrays = dict(arrays or {})
    serial = context is None or getattr(context, "n_jobs", 1) <= 1 or len(blocks) <= 1
    telemetry = getattr(context, "telemetry", None)
    if telemetry is None or not telemetry.enabled:
        if serial:
            return [worker(block, **arrays) for block in blocks]
        return context.run_blocks(worker, blocks, arrays=arrays)
    kernel = label or getattr(worker, "__name__", "kernel")
    start = time.perf_counter()
    if serial:
        results = [worker(block, **arrays) for block in blocks]
    else:
        results = context.run_blocks(worker, blocks, arrays=arrays)
    elapsed = time.perf_counter() - start
    telemetry.counter("depth_kernel_invocations_total", kernel=kernel).inc()
    telemetry.counter("depth_kernel_blocks_total", kernel=kernel).inc(len(blocks))
    telemetry.histogram("depth_kernel_seconds", kernel=kernel).observe(elapsed)
    return results


# --------------------------------------------------------------------------- ranks
def rank_counts(ref_lanes: np.ndarray, pts_lanes: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Exact per-lane order statistics of ``pts`` within ``ref``.

    Lanes are rows (axis 0); elements live on the contiguous last axis.
    For every lane ``c`` and every ``pts_lanes[c, i]`` returns

    * ``le[c, i]`` — ``#{k : ref_lanes[c, k] <= pts_lanes[c, i]}``
    * ``lt[c, i]`` — ``#{k : ref_lanes[c, k] <  pts_lanes[c, i]}``

    Three integer-exact strategies, picked by tie structure:

    * ``pts_lanes is ref_lanes`` (the ubiquitous self-reference case,
      where every query ties itself): ranks come from one argsort of
      the lanes plus tie-run boundaries — half the width of the
      stacked problem;
    * clean lanes (no reference value equals a query value): one
      unstable stacked argsort; a query at sorted position ``k`` with
      ``i`` queries before it has exactly ``k - i`` reference entries
      below it, and ``le == lt``, regardless of how the sort ordered
      ref-ref or query-query ties;
    * lanes with cross ties (detected via adjacent mixed-group equal
      pairs — a mixed run always exposes one): re-resolved in a batch
      with full tie-run arithmetic (:func:`_rank_counts_tied`).

    No stable sort anywhere, and the counts match the naive boolean
    comparisons bit for bit.  This is what lets halfspace depth drop
    its per-point comparisons without changing the result.
    """
    if pts_lanes is ref_lanes:
        return _rank_counts_self(ref_lanes)
    n_lanes, n_ref = ref_lanes.shape
    n_pts = pts_lanes.shape[1]
    stacked = np.concatenate([ref_lanes, pts_lanes], axis=1)
    order = np.argsort(stacked, axis=1)  # quicksort; tie order irrelevant
    is_pts = order >= n_ref
    sorted_vals = np.take_along_axis(stacked, order, axis=1)
    cross_tie = (sorted_vals[:, 1:] == sorted_vals[:, :-1]) & (
        is_pts[:, 1:] != is_pts[:, :-1]
    )
    bad = cross_tie.any(axis=1)
    positions = np.nonzero(is_pts)[1].reshape(n_lanes, n_pts)
    original = (order[is_pts] - n_ref).reshape(n_lanes, n_pts)
    counts = positions - np.arange(n_pts)[None, :]  # #ref sorted before
    lt = np.empty((n_lanes, n_pts), dtype=np.int64)
    np.put_along_axis(lt, original, counts, axis=1)
    le = lt.copy()
    if bad.any():
        le[bad], lt[bad] = _rank_counts_tied(ref_lanes[bad], pts_lanes[bad])
    return le, lt


def _run_bounds(sorted_vals: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Per-element tie-run boundaries ``[start, end)`` of sorted lanes."""
    n_lanes, total = sorted_vals.shape
    new_run = np.empty((n_lanes, total), dtype=bool)
    new_run[:, 0] = True
    np.not_equal(sorted_vals[:, 1:], sorted_vals[:, :-1], out=new_run[:, 1:])
    index = np.arange(total, dtype=np.int64)[None, :]
    run_start = np.maximum.accumulate(np.where(new_run, index, 0), axis=1)
    # First run start strictly after k: suffix-min of start marks,
    # shifted one position left.
    end_mark = np.where(new_run, index, total)
    suffix_min = np.minimum.accumulate(end_mark[:, ::-1], axis=1)[:, ::-1]
    run_end = np.concatenate(
        [suffix_min[:, 1:], np.full((n_lanes, 1), total, dtype=np.int64)], axis=1
    )
    return run_start, run_end


def _rank_counts_self(lanes: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Rank counts of every lane's values within their own lane.

    For a value in tie run ``[s, e)`` of its sorted lane, ``lt = s``
    and ``le = e`` (the count includes the value itself, exactly as the
    naive ``reference <= x`` comparison does when ``x`` is a member of
    the reference).
    """
    order = np.argsort(lanes, axis=1)
    sorted_vals = np.take_along_axis(lanes, order, axis=1)
    run_start, run_end = _run_bounds(sorted_vals)
    lt = np.empty(lanes.shape, dtype=np.int64)
    le = np.empty(lanes.shape, dtype=np.int64)
    np.put_along_axis(lt, order, run_start, axis=1)
    np.put_along_axis(le, order, run_end, axis=1)
    return le, lt


def _rank_counts_tied(
    ref_lanes: np.ndarray, pts_lanes: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Full tie-run rank counting for lanes with ref/query value ties.

    For a query in tie run ``[s, e)`` of the sorted stacked lane,
    ``lt = #ref before s`` and ``le = #ref before e`` (every reference
    inside the run ties the query) — exact for every tie structure,
    no stable sort required.
    """
    n_lanes, n_ref = ref_lanes.shape
    n_pts = pts_lanes.shape[1]
    total = n_ref + n_pts
    stacked = np.concatenate([ref_lanes, pts_lanes], axis=1)
    order = np.argsort(stacked, axis=1)
    is_pts = order >= n_ref
    sorted_vals = np.take_along_axis(stacked, order, axis=1)
    # Exclusive prefix count of reference entries: Rc[k] = #ref before k.
    ref_count = np.zeros((n_lanes, total + 1), dtype=np.int64)
    np.cumsum(~is_pts, axis=1, out=ref_count[:, 1:])
    run_start, run_end = _run_bounds(sorted_vals)
    positions = np.nonzero(is_pts)[1].reshape(n_lanes, n_pts)
    original = (order[is_pts] - n_ref).reshape(n_lanes, n_pts)
    lt_sorted = np.take_along_axis(
        ref_count, np.take_along_axis(run_start, positions, axis=1), axis=1
    )
    le_sorted = np.take_along_axis(
        ref_count, np.take_along_axis(run_end, positions, axis=1), axis=1
    )
    lt = np.empty((n_lanes, n_pts), dtype=np.int64)
    le = np.empty((n_lanes, n_pts), dtype=np.int64)
    np.put_along_axis(lt, original, lt_sorted, axis=1)
    np.put_along_axis(le, original, le_sorted, axis=1)
    return le, lt


# --------------------------------------------------------------------------- FUNTA
def _funta_cross_stats(
    block,
    values: np.ndarray,
    ref_values: np.ndarray,
    theta_pts: np.ndarray,
    theta_ref: np.ndarray,
    same: bool,
):
    """Crossing counts, pair validity and gathered crossing angles for one
    contiguous row block — the shared core of every FUNTA path."""
    start, stop = block
    b = stop - start
    n_ref = ref_values.shape[0]

    diff = values[start:stop, None, :] - ref_values[None, :, :]  # (b, r, m)
    pos = diff > 0
    neg = diff < 0
    # A crossing lives in interval t when the sign flips or a curve
    # touches (diff == 0); a touch at the last grid point folds into the
    # last interval — exactly the interval set the naive loop collects.
    cross = (pos[:, :, :-1] & neg[:, :, 1:]) | (neg[:, :, :-1] & pos[:, :, 1:])
    touch = ~(pos | neg)
    cross |= touch[:, :, :-1]
    cross[:, :, -1] |= touch[:, :, -1]

    valid = np.ones((b, n_ref), dtype=bool)
    if same:
        local = np.arange(b)
        cross[local, start + local, :] = False
        valid[local, start + local] = False

    counts = cross.sum(axis=2)  # (b, r) crossings per pair
    # Angles are only needed at the (sparse) crossings: gather them
    # instead of materializing the dense (b, r, m-1) angle slab.
    ib, jb, tb = np.nonzero(cross)
    angles = np.abs(theta_pts[start + ib, tb] - theta_ref[jb, tb])
    np.minimum(angles, np.pi - angles, out=angles)
    return b, n_ref, counts, valid, ib, jb, angles


def _funta_pair_totals(
    block,
    values: np.ndarray,
    ref_values: np.ndarray,
    theta_pts: np.ndarray,
    theta_ref: np.ndarray,
    same: bool,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-query effective crossing counts and angle sums over the
    reference (the ``trim == 0`` accumulators, before the depth formula).

    The totals are plain sums over reference curves, so totals computed
    against disjoint reference shards combine by addition — the property
    the sharded streaming scorer exploits.
    """
    b, n_ref, counts, valid, ib, jb, angles = _funta_cross_stats(
        block, values, ref_values, theta_pts, theta_ref, same
    )
    sums = np.bincount(
        ib * n_ref + jb, weights=angles, minlength=b * n_ref
    ).reshape(b, n_ref)
    # A never-crossing pair contributes one maximal angle (pi/2).
    eff_counts = np.where(valid, np.where(counts > 0, counts, 1), 0)
    eff_sums = np.where(valid, np.where(counts > 0, sums, _HALF_PI), 0.0)
    return eff_counts.sum(axis=1), eff_sums.sum(axis=1)


def _funta_block(
    block,
    values: np.ndarray,
    ref_values: np.ndarray,
    theta_pts: np.ndarray,
    theta_ref: np.ndarray,
    trim: float,
    same: bool,
) -> np.ndarray:
    """FUNTA depth of one contiguous row block of ``values``."""
    if trim == 0.0:
        total_counts, total_sums = _funta_pair_totals(
            block, values, ref_values, theta_pts, theta_ref, same
        )
        safe = np.maximum(total_counts, 1)
        depth = np.where(
            total_counts > 0, 1.0 - (total_sums / safe) / _HALF_PI, 1.0
        )
        return np.clip(depth, 0.0, 1.0)

    b, n_ref, counts, valid, ib, jb, angles = _funta_cross_stats(
        block, values, ref_values, theta_pts, theta_ref, same
    )

    # Robustified variant: the trimming quantile needs each sample's full
    # angle multiset, so walk the gathered angles per row (an O(n) loop
    # over contiguous slices — not the O(n²) pair loop).
    depth = np.empty(b)
    bounds = np.searchsorted(ib, np.arange(b + 1))
    missing_counts = (valid & (counts == 0)).sum(axis=1)
    for i in range(b):
        row_angles = angles[bounds[i] : bounds[i + 1]]
        if missing_counts[i]:
            row_angles = np.concatenate(
                [row_angles, np.full(missing_counts[i], _HALF_PI)]
            )
        if row_angles.size == 0:
            depth[i] = 1.0
            continue
        cutoff = np.quantile(row_angles, 1.0 - trim)
        kept = row_angles[row_angles <= cutoff]
        if kept.size:
            row_angles = kept
        depth[i] = 1.0 - float(np.mean(row_angles)) / _HALF_PI
    return np.clip(depth, 0.0, 1.0)


def funta_univariate(
    values: np.ndarray,
    ref_values: np.ndarray,
    grid: np.ndarray,
    trim: float,
    same: bool,
    block_bytes: int | None = None,
    context=None,
    theta_pts: np.ndarray | None = None,
    theta_ref: np.ndarray | None = None,
    dtype=None,
) -> np.ndarray:
    """Blocked vectorized FUNTA depth (one parameter).

    Tangent angles are ``arctan``-ed once per curve — O((n + n_ref)·m)
    — and the crossing detection runs as one broadcast over
    ``(block × n_ref × m)`` slabs bounded by ``block_bytes``.

    ``theta_pts`` / ``theta_ref`` optionally inject precomputed tangent
    angles (``arctan(diff(curves) / diff(grid))``, per curve).  The
    streaming layer maintains the reference angles incrementally in a
    ring buffer, so per-arrival scoring skips the O(n_ref·m) reference
    ``arctan`` entirely; because the cached values are produced by the
    identical elementwise computation, injection is bit-identical to
    recomputing.

    ``dtype`` selects the compute precision of the difference/angle
    slabs (the memory-bound part); counts and the final aggregation stay
    float64 either way.
    """
    block_bytes = resolve_block_bytes(block_bytes)
    compute_dtype = resolve_dtype(dtype)
    values, ref_values = _as_dtype_pair(values, ref_values, compute_dtype)
    n, m = values.shape
    dt = np.diff(np.asarray(grid, dtype=compute_dtype))
    if theta_pts is None:
        theta_pts = np.arctan(np.diff(values, axis=1) / dt)
    else:
        theta_pts = np.asarray(theta_pts, dtype=compute_dtype)
    if theta_ref is None:
        theta_ref = np.arctan(np.diff(ref_values, axis=1) / dt)
    else:
        theta_ref = np.asarray(theta_ref, dtype=compute_dtype)
    # Scratch per row: one difference slab + four boolean masks.
    bytes_per_row = ref_values.shape[0] * m * (compute_dtype.itemsize + 4) * 1.3
    blocks = row_blocks(n, bytes_per_row, block_bytes)
    worker = functools.partial(_funta_block, trim=trim, same=same)
    arrays = {
        "values": values,
        "ref_values": ref_values,
        "theta_pts": theta_pts,
        "theta_ref": theta_ref,
    }
    return np.concatenate(_run_blocks(worker, blocks, context, arrays, label="funta"))


def funta_partials(
    values: np.ndarray,
    ref_values: np.ndarray,
    grid: np.ndarray,
    theta_pts: np.ndarray | None = None,
    theta_ref: np.ndarray | None = None,
    block_bytes: int | None = None,
    dtype=None,
) -> tuple[np.ndarray, np.ndarray]:
    """Additive FUNTA accumulators of ``values`` against one reference shard.

    Returns ``(counts, sums)`` of shape ``(n,)``: the effective crossing
    counts and intersection-angle sums of every query curve against this
    reference block (``trim == 0`` semantics, including the pi/2
    contribution of never-crossing pairs).  Because both are plain sums
    over reference curves, partials from disjoint reference shards
    combine by addition; applying the depth formula to the combined
    totals reproduces the single-reference :func:`funta_univariate`
    depth up to floating-point summation order.
    """
    block_bytes = resolve_block_bytes(block_bytes)
    compute_dtype = resolve_dtype(dtype)
    values, ref_values = _as_dtype_pair(values, ref_values, compute_dtype)
    n, m = values.shape
    dt = np.diff(np.asarray(grid, dtype=compute_dtype))
    if theta_pts is None:
        theta_pts = np.arctan(np.diff(values, axis=1) / dt)
    else:
        theta_pts = np.asarray(theta_pts, dtype=compute_dtype)
    if theta_ref is None:
        theta_ref = np.arctan(np.diff(ref_values, axis=1) / dt)
    else:
        theta_ref = np.asarray(theta_ref, dtype=compute_dtype)
    bytes_per_row = max(ref_values.shape[0], 1) * m * (compute_dtype.itemsize + 4) * 1.3
    blocks = row_blocks(n, bytes_per_row, block_bytes)
    counts = np.empty(n, dtype=np.int64)
    sums = np.empty(n)
    for block in blocks:
        c, s = _funta_pair_totals(
            block, values, ref_values, theta_pts, theta_ref, same=False
        )
        counts[block[0] : block[1]] = c
        sums[block[0] : block[1]] = s
    return counts, sums


# --------------------------------------------------------------------------- SDO
def _sdo_1d_columns(pts: np.ndarray, ref: np.ndarray) -> np.ndarray:
    """|x - med| / MAD per column, with the naive degenerate-MAD guard."""
    med = np.median(ref, axis=0)
    mad = MAD_SCALE * np.median(np.abs(ref - med), axis=0)
    degenerate = mad < 1e-12
    if degenerate.any():
        spread = np.std(ref, axis=0)
        mad = np.where(degenerate, np.where(spread > 1e-12, spread, 1.0), mad)
    return np.abs(pts - med) / mad


def _project_block(cube: np.ndarray, directions: np.ndarray, j0: int, j1: int) -> np.ndarray:
    """Project a grid-point block onto its directions → ``(J, rows, d)``.

    One batched GEMM per block (samples × directions for every grid
    point) — this is the op that replaces the per-grid-point Python
    loop of the naive path.
    """
    return np.matmul(
        cube[:, j0:j1].transpose(1, 0, 2), directions[j0:j1].transpose(0, 2, 1)
    )


def _sdo_block(
    block,
    values: np.ndarray,
    ref_values: np.ndarray,
    directions: np.ndarray,
) -> np.ndarray:
    """Stahel–Donoho outlyingness for one contiguous grid-point block.

    One lane-major batched GEMM per cube — ``(J, d, p) @ (J, p, r)``
    lands every direction's projections on the contiguous last axis, so
    the median partitions run straight on the GEMM output with no
    transpose copy in between.  Medians/MAD are selection statistics, so
    both partitions run in place (the scrambled lane order leaves the
    deviation multiset unchanged).
    """
    j0, j1 = block
    dirs = directions[j0:j1]  # (J, d, p)
    ref_lanes = np.matmul(dirs, ref_values[:, j0:j1].transpose(1, 2, 0))  # (J, d, r)
    if values is ref_values:
        # Self-scoring: queries are the reference projections; copy
        # before the in-place partitions scramble the lane order.
        pts_lanes = ref_lanes.copy()
    else:
        pts_lanes = np.matmul(dirs, values[:, j0:j1].transpose(1, 2, 0))  # (J, d, n)
    med = np.median(ref_lanes, axis=2, overwrite_input=True)  # (J, d)
    dev = np.abs(ref_lanes - med[:, :, None])
    mad = MAD_SCALE * np.median(dev, axis=2, overwrite_input=True)
    degenerate = mad < 1e-12
    if degenerate.any():
        spread = ref_lanes.std(axis=2)  # (J, d) — order-invariant up to roundoff
        mad = np.where(degenerate, np.where(spread > 1e-12, spread, 1.0), mad)
    out = np.abs(pts_lanes - med[:, :, None])
    out /= mad[:, :, None]
    return out.max(axis=1).T  # (n, J)


def batched_stahel_donoho(
    values: np.ndarray,
    ref_values: np.ndarray,
    n_directions: int = 200,
    random_state=None,
    block_bytes: int | None = None,
    context=None,
    dtype=None,
) -> np.ndarray:
    """SDO of every sample at every grid point → ``(n_samples, n_points)``.

    ``values``/``ref_values`` are ``(n, m, p)`` cubes.  Exact (no random
    directions) for p = 1; for p > 1 the per-grid-point direction draws
    replicate the naive loop's generator consumption, so a seeded run
    matches ``naive=True`` to floating-point roundoff.
    """
    block_bytes = resolve_block_bytes(block_bytes)
    compute_dtype = resolve_dtype(dtype)
    values, ref_values = _as_dtype_pair(values, ref_values, compute_dtype)
    n, m, p = values.shape
    if p == 1:
        return _sdo_1d_columns(values[:, :, 0], ref_values[:, :, 0])
    # Directions are drawn in float64 (generator consumption must match
    # the naive loop exactly), then cast to the compute dtype.
    directions = np.asarray(
        _direction_stack(random_state, n_directions, p, m), dtype=compute_dtype
    )
    n_dir = directions.shape[1]
    bytes_per_col = (n + ref_values.shape[0]) * n_dir * compute_dtype.itemsize * 3.2
    blocks = row_blocks(m, bytes_per_col, block_bytes)
    arrays = {"values": values, "ref_values": ref_values, "directions": directions}
    return np.concatenate(
        _run_blocks(_sdo_block, blocks, context, arrays, label="sdo"), axis=1
    )


# --------------------------------------------------------------------------- halfspace
def _halfspace_exact_columns(pts: np.ndarray, ref: np.ndarray) -> np.ndarray:
    """Exact univariate halfspace depth, every column at once.

    One sort of the reference lanes plus two batched binary searches:
    ``#{ref <= x}`` and ``#{ref >= x}`` are integer-exact, so the result
    matches the naive boolean-comparison means bit for bit.
    """
    n_ref = ref.shape[0]
    ref_lanes = np.ascontiguousarray(ref.T)  # (m, n_ref)
    # Preserve object identity so rank_counts can take its self-rank
    # fast path when the cloud is scored against itself.
    pts_lanes = ref_lanes if pts is ref else np.ascontiguousarray(pts.T)
    le, lt = rank_counts(ref_lanes, pts_lanes)
    return (np.minimum(le, n_ref - lt) / n_ref).T


def _halfspace_block(
    block,
    values: np.ndarray,
    ref_values: np.ndarray,
    directions: np.ndarray,
) -> np.ndarray:
    """Random-direction halfspace depth for one grid-point block."""
    j0, j1 = block
    n = values.shape[0]
    n_ref = ref_values.shape[0]
    n_dir = directions.shape[1]
    cols = (j1 - j0) * n_dir
    proj_ref = _project_block(ref_values, directions, j0, j1)  # (J, r, d)
    ref_lanes = np.ascontiguousarray(proj_ref.transpose(0, 2, 1)).reshape(cols, n_ref)
    if values is ref_values:
        pts_lanes = ref_lanes  # identity → self-rank fast path
    else:
        proj_pts = _project_block(values, directions, j0, j1)  # (J, n, d)
        pts_lanes = np.ascontiguousarray(proj_pts.transpose(0, 2, 1)).reshape(cols, n)
    le, lt = rank_counts(ref_lanes, pts_lanes)
    tail = (n_ref - lt) / n_ref  # mean(proj_ref >= proj_pt)
    other = le / n_ref           # mean(proj_ref <= proj_pt)
    depth = np.minimum(tail, other).reshape(j1 - j0, n_dir, n)
    return depth.min(axis=1).T  # (n, J)


def _halfspace_profile(
    values: np.ndarray,
    ref_values: np.ndarray,
    n_directions: int = 500,
    random_state=None,
    block_bytes: int | None = None,
    context=None,
    dtype=None,
) -> np.ndarray:
    block_bytes = resolve_block_bytes(block_bytes)
    compute_dtype = resolve_dtype(dtype)
    values, ref_values = _as_dtype_pair(values, ref_values, compute_dtype)
    n, m, p = values.shape
    if p == 1:
        pts = values[:, :, 0]
        ref = pts if values is ref_values else ref_values[:, :, 0]
        return _halfspace_exact_columns(pts, ref)
    directions = np.asarray(
        _direction_stack(random_state, n_directions, p, m), dtype=compute_dtype
    )
    n_dir = directions.shape[1]
    bytes_per_col = (n + ref_values.shape[0]) * n_dir * compute_dtype.itemsize * 5.0
    blocks = row_blocks(m, bytes_per_col, block_bytes)
    arrays = {"values": values, "ref_values": ref_values, "directions": directions}
    return np.concatenate(
        _run_blocks(_halfspace_block, blocks, context, arrays, label="halfspace"), axis=1
    )


def halfspace_depth_cloud(
    points: np.ndarray,
    reference: np.ndarray,
    directions: np.ndarray,
    block_bytes: int | None = None,
) -> np.ndarray:
    """Random-direction halfspace depth of one cloud, all directions at
    once (the caller draws ``directions`` so generator consumption
    matches the naive per-direction loop)."""
    block_bytes = resolve_block_bytes(block_bytes)
    n_ref = reference.shape[0]
    n = points.shape[0]
    ref_lanes = np.ascontiguousarray((reference @ directions.T).T)  # (D, r)
    pts_lanes = np.ascontiguousarray((points @ directions.T).T)     # (D, n)
    depth = np.full(n, np.inf)
    bytes_per_dir = (n + n_ref) * 8 * 5.0
    for d0, d1 in row_blocks(directions.shape[0], bytes_per_dir, block_bytes):
        le, lt = rank_counts(ref_lanes[d0:d1], pts_lanes[d0:d1])
        tail = (n_ref - lt) / n_ref
        other = le / n_ref
        depth = np.minimum(depth, np.minimum(tail, other).min(axis=0))
    return depth


# --------------------------------------------------------------------------- spatial
def _unit_vector_stats(diffs: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Sum of unit vectors and contributing count over the reference axis.

    ``diffs`` has the reference on axis 1: ``(..., n_ref, ..., p)`` with
    shape ``(n, r, J, p)`` (or ``(b, r, p)`` for a single cloud).
    Zero-distance pairs are dropped, exactly like the naive loop's
    ``norms > 1e-12`` filter.
    """
    sq = diffs[..., 0] ** 2
    for k in range(1, diffs.shape[-1]):
        sq += diffs[..., k] ** 2
    norms = np.sqrt(sq)
    keep = norms > 1e-12
    inv = np.zeros_like(norms)
    np.divide(1.0, norms, out=inv, where=keep)
    units_sum = np.einsum("nr...,nr...p->n...p", inv, diffs)
    count = keep.sum(axis=1)
    return units_sum, count


def _spatial_block(block, values: np.ndarray, ref_values: np.ndarray) -> np.ndarray:
    """Spatial depth for one grid-point block, all samples at once."""
    j0, j1 = block
    diffs = values[:, None, j0:j1, :] - ref_values[None, :, j0:j1, :]  # (n, r, J, p)
    units_sum, count = _unit_vector_stats(diffs)
    mean_units = units_sum / np.maximum(count, 1)[:, :, None]
    depth = 1.0 - np.sqrt(np.sum(mean_units * mean_units, axis=2))
    depth = np.where(count == 0, 1.0, depth)
    return np.clip(depth, 0.0, 1.0)


def _spatial_profile(
    values: np.ndarray,
    ref_values: np.ndarray,
    block_bytes: int | None = None,
    context=None,
    dtype=None,
) -> np.ndarray:
    block_bytes = resolve_block_bytes(block_bytes)
    compute_dtype = resolve_dtype(dtype)
    values, ref_values = _as_dtype_pair(values, ref_values, compute_dtype)
    n, m, p = values.shape
    bytes_per_col = n * ref_values.shape[0] * (p + 2) * compute_dtype.itemsize * 1.6
    blocks = row_blocks(m, bytes_per_col, block_bytes)
    arrays = {"values": values, "ref_values": ref_values}
    return np.concatenate(
        _run_blocks(_spatial_block, blocks, context, arrays, label="spatial"), axis=1
    )


def spatial_depth_cloud(
    points: np.ndarray, reference: np.ndarray, block_bytes: int | None = None
) -> np.ndarray:
    """Spatial depth of one cloud, vectorized over all query points."""
    block_bytes = resolve_block_bytes(block_bytes)
    n, p = points.shape
    depth = np.empty(n)
    bytes_per_row = reference.shape[0] * (p + 2) * 8 * 1.6
    for i0, i1 in row_blocks(n, bytes_per_row, block_bytes):
        diffs = points[i0:i1, None, :] - reference[None, :, :]  # (b, r, p)
        units_sum, count = _unit_vector_stats(diffs)
        mean_units = units_sum / np.maximum(count, 1)[:, None]
        block_depth = 1.0 - np.sqrt(np.sum(mean_units * mean_units, axis=1))
        depth[i0:i1] = np.where(count == 0, 1.0, block_depth)
    return np.clip(depth, 0.0, 1.0)


# --------------------------------------------------------------------------- simplicial
def simplicial_depth_cloud(
    points: np.ndarray, reference: np.ndarray, block_bytes: int | None = None
) -> np.ndarray:
    """Simplicial depth (p = 2) by blocked orientation-sign counting.

    All C(n, 3) reference triangles are tested against blocks of query
    points in one broadcast per ``(query-block × triangle-block)`` slab —
    the same sign test as the naive per-point loop, element for element,
    so results are identical including boundary and degenerate triangles.
    """
    from itertools import combinations

    block_bytes = resolve_block_bytes(block_bytes)
    n_ref = reference.shape[0]
    triangles = np.array(list(combinations(range(n_ref), 3)))
    a = reference[triangles[:, 0]]
    b = reference[triangles[:, 1]]
    c = reference[triangles[:, 2]]
    n_tri = triangles.shape[0]
    n = points.shape[0]
    inside_counts = np.zeros(n, dtype=np.int64)
    # ~8 float64 temporaries of shape (point-block, triangle-block).
    tri_blocks = row_blocks(n_tri, 8.0, max(block_bytes // 8, 1))
    for t0, t1 in tri_blocks:
        at, bt, ct = a[t0:t1], b[t0:t1], c[t0:t1]
        bytes_per_row = (t1 - t0) * 8 * 8.0
        for i0, i1 in row_blocks(n, bytes_per_row, block_bytes):
            x = points[i0:i1, 0][:, None]
            y = points[i0:i1, 1][:, None]
            d1 = (x - bt[None, :, 0]) * (at[None, :, 1] - bt[None, :, 1]) - (
                at[None, :, 0] - bt[None, :, 0]
            ) * (y - bt[None, :, 1])
            d2 = (x - ct[None, :, 0]) * (bt[None, :, 1] - ct[None, :, 1]) - (
                bt[None, :, 0] - ct[None, :, 0]
            ) * (y - ct[None, :, 1])
            d3 = (x - at[None, :, 0]) * (ct[None, :, 1] - at[None, :, 1]) - (
                ct[None, :, 0] - at[None, :, 0]
            ) * (y - at[None, :, 1])
            neg = (d1 < 0) | (d2 < 0) | (d3 < 0)
            pos = (d1 > 0) | (d2 > 0) | (d3 > 0)
            inside_counts[i0:i1] += (~(neg & pos)).sum(axis=1)
    return inside_counts / n_tri


def _simplicial_block(block, values: np.ndarray, ref_values: np.ndarray, block_bytes: int):
    j0, j1 = block
    return np.stack(
        [
            simplicial_depth_cloud(values[:, j, :], ref_values[:, j, :], block_bytes)
            for j in range(j0, j1)
        ],
        axis=1,
    )


def _simplicial_profile(
    values: np.ndarray,
    ref_values: np.ndarray,
    block_bytes: int | None = None,
    context=None,
) -> np.ndarray:
    block_bytes = resolve_block_bytes(block_bytes)
    m = values.shape[1]
    # Grid points are the fan-out unit; the triangle blocking inside
    # each point already bounds memory.
    width = getattr(context, "n_jobs", 1) if context is not None else 1
    per = max(m // max(width, 1), 1)
    blocks = [(j, min(j + per, m)) for j in range(0, m, per)]
    worker = functools.partial(_simplicial_block, block_bytes=block_bytes)
    arrays = {"values": values, "ref_values": ref_values}
    return np.concatenate(
        _run_blocks(worker, blocks, context, arrays, label="simplicial"), axis=1
    )


# --------------------------------------------------------------------------- mahalanobis
def _mahalanobis_profile(values: np.ndarray, ref_values: np.ndarray) -> np.ndarray:
    """Mahalanobis depth profile: the p×p statistics per grid point are
    computed exactly as the naive loop computes them (so degenerate
    pseudo-inverses agree bit-for-bit); the heavy per-sample quadratic
    forms are batched into one einsum."""
    n, m, p = values.shape
    locations = np.empty((m, p))
    precisions = np.empty((m, p, p))
    for j in range(m):
        cloud = ref_values[:, j, :]
        locations[j] = cloud.mean(axis=0)
        cov = np.atleast_2d(np.cov(cloud, rowvar=False))
        cov = cov + 1e-10 * np.trace(cov) / cov.shape[0] * np.eye(cov.shape[0])
        precisions[j] = np.linalg.pinv(cov)
    centered = values - locations[None]
    d_sq = np.einsum("njp,jpq,njq->nj", centered, precisions, centered)
    return 1.0 / (1.0 + np.maximum(d_sq, 0.0))


# --------------------------------------------------------------------------- dispatch
def pointwise_profile(
    values: np.ndarray,
    ref_values: np.ndarray,
    notion: str,
    block_bytes: int | None = None,
    context=None,
    dtype=None,
    **depth_kwargs,
) -> np.ndarray:
    """Vectorized ``(n_samples, n_points)`` depth profile dispatch.

    ``values``/``ref_values`` are ``(n, m, p)`` cubes sharing a grid.
    ``dtype`` selects the kernel compute precision (float64 default;
    float32 is the fast path — the heavy slab temporaries halve their
    memory traffic while counts and aggregations stay exact).
    """
    compute_dtype = resolve_dtype(dtype)
    values, ref_values = _as_dtype_pair(values, ref_values, compute_dtype)
    if notion == "projection":
        sdo = batched_stahel_donoho(
            values,
            ref_values,
            block_bytes=block_bytes,
            context=context,
            dtype=dtype,
            **depth_kwargs,
        )
        return 1.0 / (1.0 + sdo)
    if notion == "halfspace":
        return _halfspace_profile(
            values,
            ref_values,
            block_bytes=block_bytes,
            context=context,
            dtype=dtype,
            **depth_kwargs,
        )
    if notion == "mahalanobis":
        return _mahalanobis_profile(values, ref_values, **depth_kwargs)
    if notion == "spatial":
        return _spatial_profile(
            values,
            ref_values,
            block_bytes=block_bytes,
            context=context,
            dtype=dtype,
            **depth_kwargs,
        )
    if notion == "simplicial":
        if values.shape[2] != 2:
            raise ValidationError("simplicial_depth is implemented for p = 2 only")
        return _simplicial_profile(
            values, ref_values, block_bytes=block_bytes, context=context, **depth_kwargs
        )
    raise ValidationError(f"unknown depth notion {notion!r}")


# --------------------------------------------------------------------------- Weiszfeld
def batched_spatial_median(
    clouds: np.ndarray,
    max_iter: int = 128,
    tol: float = 1e-9,
    return_iterations: bool = False,
):
    """Weiszfeld geometric medians of all grid-point clouds at once.

    ``clouds`` is ``(n_ref, m, p)``; returns ``(m, p)`` (or, with
    ``return_iterations=True``, a ``(median, iterations)`` pair where
    ``iterations[j]`` counts the update steps column ``j`` performed).
    All columns iterate simultaneously; a column freezes as soon as its
    update step drops below the scale-aware tolerance and is sliced out
    of the working set, so late iterations touch only the stragglers —
    and while nothing has converged yet the full arrays are used
    directly, with no per-iteration gather copy.

    Computes in the dtype of ``clouds``; for float32 the convergence
    tolerance is floored at a few ULPs so the loop cannot spin on
    roundoff noise, and the weight-sum guard scales with the dtype's
    smallest normal instead of a hard-coded float64 constant.
    """
    n_ref, m, p = clouds.shape
    median = clouds.mean(axis=0)  # (m, p)
    eff_tol = max(float(tol), 4.0 * float(np.finfo(median.dtype).eps))
    tiny = float(np.finfo(median.dtype).tiny)
    iterations = np.zeros(m, dtype=np.int64)
    # Column-major working copy, made ONCE: the reference axis lands on
    # a contiguous reduction axis (pairwise summation — the same order
    # the per-column naive loop uses, so results stay bit-identical to
    # it), and slicing converged columns out is a cheap first-axis
    # gather instead of a full advanced-index copy per iteration.
    clouds_t = np.ascontiguousarray(clouds.transpose(1, 0, 2))  # (m, r, p)
    active_idx = np.arange(m)
    for _ in range(max_iter):
        if active_idx.size == 0:
            break
        all_active = active_idx.size == m
        sub = clouds_t if all_active else clouds_t[active_idx]  # (a, r, p)
        current = median if all_active else median[active_idx]  # (a, p)
        diffs = sub - current[:, None, :]
        norms = np.sqrt(np.sum(diffs * diffs, axis=2))  # (a, r)
        keep = norms > 1e-12
        any_keep = keep.any(axis=1)
        weights = np.where(keep, 1.0 / np.where(keep, norms, 1.0), 0.0)
        wsum = weights.sum(axis=1)
        new = np.einsum("ar,arp->ap", weights, sub) / np.maximum(wsum, tiny)[:, None]
        # Columns whose cloud collapsed onto the median keep it (the
        # naive loop returns the current median in that case).
        new = np.where(any_keep[:, None], new, current)
        step = np.linalg.norm(new - current, axis=1)
        scale = 1.0 + np.linalg.norm(current, axis=1)
        converged = (step < eff_tol * scale) | ~any_keep
        median[active_idx] = new
        iterations[active_idx] += 1
        active_idx = active_idx[~converged]
    if return_iterations:
        return median, iterations
    return median


def batched_outlyingness_vectors(
    values: np.ndarray,
    ref_values: np.ndarray,
    n_directions: int = 200,
    random_state=None,
    block_bytes: int | None = None,
    context=None,
    max_iter: int = 128,
    tol: float = 1e-9,
    dtype=None,
) -> np.ndarray:
    """Directional outlyingness vectors ``O(X_i(t))`` for all (i, t).

    The batched core of Dir.out: one batched SDO sweep, one batched
    Weiszfeld run for the cross-sectional medians, and a single
    broadcast for the unit directions — no per-grid-point Python loop.
    """
    compute_dtype = resolve_dtype(dtype)
    values, ref_values = _as_dtype_pair(values, ref_values, compute_dtype)
    n, m, p = values.shape
    sdo = batched_stahel_donoho(
        values,
        ref_values,
        n_directions=n_directions,
        random_state=random_state,
        block_bytes=block_bytes,
        context=context,
        dtype=dtype,
    )
    if p == 1:
        centers = np.median(ref_values[:, :, 0], axis=0)[:, None]  # (m, 1)
    else:
        centers = batched_spatial_median(ref_values, max_iter=max_iter, tol=tol)
    diffs = values - centers[None]
    norms = np.linalg.norm(diffs, axis=2, keepdims=True)
    units = np.divide(diffs, norms, out=np.zeros_like(diffs), where=norms > 1e-12)
    return sdo[:, :, None] * units
