"""Magnitude–shape (MS) plot analysis (Dai & Genton, JCGS 2018).

The companion tool to the Dir.out baseline: each sample is summarized by
the point ``(|MO|, VO)`` — mean directional outlyingness magnitude vs.
its variation.  Magnitude outliers sit far right, shape outliers far up,
mixed outliers in the upper-right corner.  Dai & Genton flag outliers by
the robust Mahalanobis distance of ``(MO, VO)`` exceeding an F/chi-square
cutoff; we implement the chi-square approximation on a trimmed
location/scatter estimate (shrinkage-regularized, as elsewhere in this
library) plus a simple quadrant rule that names the outlier type — the
interpretability output the paper's conclusion asks for.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.depth.dirout import directional_outlyingness
from repro.exceptions import ValidationError
from repro.utils.validation import check_in_range

__all__ = ["MSPlotResult", "ms_plot"]

_TYPES = ("inlier", "magnitude", "shape", "mixed")


@dataclass(frozen=True)
class MSPlotResult:
    """The MS-plot coordinates, flags and type labels.

    Attributes
    ----------
    magnitude:
        ``|MO|`` per sample (x axis of the plot).
    shape:
        ``VO`` per sample (y axis of the plot).
    distance:
        Robust Mahalanobis distance of each ``(MO, VO)`` point.
    cutoff:
        The applied chi-square cutoff.
    outlier_mask:
        ``distance > cutoff``.
    types:
        One of ``"inlier"``, ``"magnitude"``, ``"shape"``, ``"mixed"``
        per sample (flagged samples classified by which coordinate
        exceeds its own robust quantile).
    """

    magnitude: np.ndarray
    shape: np.ndarray
    distance: np.ndarray
    cutoff: float
    outlier_mask: np.ndarray
    types: list


def ms_plot(
    data,
    reference=None,
    alpha: float = 0.993,
    n_directions: int = 200,
    random_state=None,
    naive: bool = False,
    block_bytes: int | None = None,
    context=None,
) -> MSPlotResult:
    """Compute MS-plot coordinates, outlier flags and type labels.

    Parameters
    ----------
    data, reference:
        As in :func:`repro.depth.directional_outlyingness`.
    alpha:
        Coverage probability of the chi-square cutoff (Dai & Genton use
        high coverage, e.g. 99.3%).
    n_directions, random_state:
        Projection-depth approximation controls.
    naive, block_bytes, context:
        Passed through to the batched Dir.out kernels (``naive=True``
        keeps the original per-grid-point loop).
    """
    alpha = check_in_range(alpha, 0.5, 1.0, "alpha", inclusive=(False, False))
    decomposition = directional_outlyingness(
        data, reference, n_directions=n_directions, random_state=random_state,
        naive=naive, block_bytes=block_bytes, context=context,
    )
    features = np.column_stack([decomposition.mean, decomposition.variation])
    n, d = features.shape
    if n < d + 2:
        raise ValidationError("too few samples for the MS-plot scatter estimate")

    # Trimmed, shrinkage-regularized location/scatter (robust to the
    # outliers we are trying to find).
    center = np.median(features, axis=0)
    spread = features - center
    cov = np.atleast_2d(np.cov(features, rowvar=False))
    cov += 1e-8 * np.trace(cov) / d * np.eye(d)
    precision = np.linalg.pinv(cov)
    dist0 = np.sqrt(np.maximum(np.sum((spread @ precision) * spread, axis=1), 0.0))
    keep = dist0 <= np.quantile(dist0, 0.75)
    if keep.sum() >= d + 2:
        center = features[keep].mean(axis=0)
        cov = np.atleast_2d(np.cov(features[keep], rowvar=False))
        cov += 1e-8 * np.trace(cov) / d * np.eye(d)
        precision = np.linalg.pinv(cov)
    spread = features - center
    distance = np.sqrt(np.maximum(np.sum((spread @ precision) * spread, axis=1), 0.0))

    cutoff = float(np.sqrt(stats.chi2.ppf(alpha, df=d)))
    outlier_mask = distance > cutoff

    magnitude = decomposition.mean_magnitude
    shape = decomposition.variation
    mag_cut = np.quantile(magnitude[~outlier_mask], 0.9) if (~outlier_mask).any() else 0.0
    shape_cut = np.quantile(shape[~outlier_mask], 0.9) if (~outlier_mask).any() else 0.0
    # Quadrant rule, batched: flagged samples exceeding only the
    # magnitude (resp. shape) quantile get that label; both or neither
    # (distance-flagged without a dominant axis) are "mixed".
    is_mag = magnitude > mag_cut
    is_shape = shape > shape_cut
    labels = np.select(
        [~outlier_mask, is_mag & ~is_shape, is_shape & ~is_mag],
        ["inlier", "magnitude", "shape"],
        default="mixed",
    )
    types = labels.tolist()
    return MSPlotResult(
        magnitude=magnitude,
        shape=shape,
        distance=distance,
        cutoff=cutoff,
        outlier_mask=outlier_mask,
        types=types,
    )
