"""FUNTA — functional tangential angle pseudo-depth (Kuhnt & Rehage 2016).

The baseline the paper compares against for *shape* outliers.  The idea:
a curve that is shaped like the bulk of the data crosses other curves at
shallow angles; a shape outlier crosses them steeply.  For each ordered
pair of curves, every crossing contributes the (acute) angle between the
two tangent lines at the crossing; a curve's pseudo-depth is

    FUNTA(x_i) = 1 - mean over all crossings with reference curves of
                 gamma / (pi/2)          in [0, 1]

so central curves get depth near 1.  Following the original definition
we also provide the *robustified* variant (``trim``) that discards the
largest angles before averaging, and the multivariate extension of the
paper (Sec. 1.2): compute the angle statistic per parameter and average
over the p parameters.

Design choices documented for reproducibility:

* tangent slopes at a crossing are the finite-difference slopes of the
  two curves on the crossing interval;
* a pair of curves that never crosses contributes a single maximal
  angle (pi/2) — a curve isolated in level is maximally atypical for
  this notion, which keeps the score defined for every sample;
* the returned *outlyingness* used in experiments is ``1 - FUNTA``;
* out-of-sample scoring passes a ``reference`` set: test curves are
  compared against the training curves only.

Known limitation (inherent to the angle notion, not this
implementation): for curves whose slopes are large relative to the
``t`` scale, ``arctan`` saturates near ±pi/2 and steep-vs-steep
crossings yield *small* line angles regardless of shape, so FUNTA's
discrimination degrades on fast oscillations — it targets gentle-slope
shape outliers (trend changes), cf. the original paper's examples.
"""

from __future__ import annotations

import numpy as np

from repro.depth import _kernels
from repro.exceptions import ValidationError
from repro.fda.fdata import FDataGrid, MFDataGrid
from repro.utils.validation import check_in_range

__all__ = ["funta_depth", "funta_outlyingness"]

_HALF_PI = np.pi / 2.0


def _crossing_angles(curve_a: np.ndarray, curve_b: np.ndarray, grid: np.ndarray) -> np.ndarray:
    """Acute tangent angles at the crossings of two sampled curves."""
    diff = curve_a - curve_b
    sign = np.sign(diff)
    # A crossing happens in interval j when the sign changes (or hits 0).
    change = np.nonzero((sign[:-1] * sign[1:]) < 0)[0]
    touch = np.nonzero(diff == 0.0)[0]
    intervals = set(change.tolist())
    for j in touch:
        intervals.add(min(int(j), len(grid) - 2))
    if not intervals:
        return np.empty(0)
    idx = np.fromiter(sorted(intervals), dtype=np.int64)
    dt = grid[idx + 1] - grid[idx]
    slope_a = (curve_a[idx + 1] - curve_a[idx]) / dt
    slope_b = (curve_b[idx + 1] - curve_b[idx]) / dt
    angles = np.abs(np.arctan(slope_a) - np.arctan(slope_b))
    # Fold to the acute angle in [0, pi/2].
    return np.minimum(angles, np.pi - angles)


def _funta_univariate(
    values: np.ndarray, ref_values: np.ndarray, grid: np.ndarray, trim: float, same: bool
) -> np.ndarray:
    n = values.shape[0]
    depth = np.empty(n)
    for i in range(n):
        collected = []
        for j in range(ref_values.shape[0]):
            if same and j == i:
                continue
            angles = _crossing_angles(values[i], ref_values[j], grid)
            if angles.size == 0:
                collected.append(np.array([_HALF_PI]))
            else:
                collected.append(angles)
        angles = np.concatenate(collected) if collected else np.empty(0)
        if angles.size == 0:
            depth[i] = 1.0
            continue
        if trim > 0:
            cutoff = np.quantile(angles, 1.0 - trim)
            kept = angles[angles <= cutoff]
            if kept.size:
                angles = kept
        depth[i] = 1.0 - float(np.mean(angles)) / _HALF_PI
    return np.clip(depth, 0.0, 1.0)


def _resolve_pair(data, reference):
    if reference is None:
        return data, True
    if type(reference) is not type(data):
        raise ValidationError("data and reference must be the same container type")
    if reference.n_points != data.n_points or not np.allclose(reference.grid, data.grid):
        raise ValidationError("data and reference must share a grid")
    return reference, False


def funta_depth(
    data,
    reference=None,
    trim: float = 0.0,
    naive: bool = False,
    block_bytes: int | None = None,
    context=None,
    dtype=None,
) -> np.ndarray:
    """FUNTA pseudo-depth per sample (higher = more central).

    Parameters
    ----------
    data:
        :class:`FDataGrid` (univariate) or :class:`MFDataGrid`
        (angles averaged over the p parameters, as the paper describes).
    reference:
        Curves defining "typical" (default: the data themselves, with
        self-pairs excluded).
    trim:
        Robustification: fraction of the *largest* angles discarded per
        sample before averaging (0 = original FUNTA).
    naive:
        ``True`` runs the original O(n²·m) pair loop (the equivalence
        oracle); the default is the blocked broadcast kernel of
        :mod:`repro.depth._kernels`.
    block_bytes:
        Scratch budget per kernel block (default ~64 MB).
    context:
        Optional :class:`~repro.engine.ExecutionContext` whose worker
        pool fans out sample blocks (bit-identical to serial).
    dtype:
        Kernel compute precision for the blocked path (float64 default,
        float32 fast path); the naive oracle is always float64.
    """
    trim = check_in_range(trim, 0.0, 0.5, "trim", inclusive=(True, False))

    def univariate(values, ref_values, grid, same):
        if naive:
            return _funta_univariate(values, ref_values, grid, trim, same)
        return _kernels.funta_univariate(
            values, ref_values, grid, trim, same,
            block_bytes=block_bytes, context=context, dtype=dtype,
        )

    if isinstance(data, FDataGrid):
        ref, same = _resolve_pair(data, reference)
        if ref.n_samples < 2:
            raise ValidationError("funta_depth needs at least 2 reference curves")
        return univariate(data.values, ref.values, data.grid, same)
    if isinstance(data, MFDataGrid):
        ref, same = _resolve_pair(data, reference)
        if ref.n_samples < 2:
            raise ValidationError("funta_depth needs at least 2 reference curves")
        per_param = [
            univariate(data.values[:, :, k], ref.values[:, :, k], data.grid, same)
            for k in range(data.n_parameters)
        ]
        return np.mean(per_param, axis=0)
    raise ValidationError(
        f"data must be FDataGrid or MFDataGrid, got {type(data).__name__}"
    )


def funta_outlyingness(
    data,
    reference=None,
    trim: float = 0.0,
    naive: bool = False,
    block_bytes: int | None = None,
    context=None,
    dtype=None,
) -> np.ndarray:
    """Outlyingness score ``1 - FUNTA`` (higher = more anomalous)."""
    return 1.0 - funta_depth(
        data, reference=reference, trim=trim,
        naive=naive, block_bytes=block_bytes, context=context, dtype=dtype,
    )
