"""Directional outlyingness for MFD (Dai & Genton, CSDA 2019) — "Dir.out".

The second baseline of the paper.  Pointwise, the *directional
outlyingness* of ``X_i(t)`` w.r.t. the cross-sectional distribution is

    O(X_i(t)) = ( 1 / d(X_i(t)) - 1 ) * v(t)

where ``d`` is a depth — Dai & Genton use projection depth, for which
``1/d - 1`` is exactly the Stahel–Donoho outlyingness — and ``v`` is the
unit vector from the cross-sectional (spatial) median toward ``X_i(t)``.
The functional summary decomposes the integrated outlyingness into:

* **MO** (mean directional outlyingness, a vector in R^p): the average
  of ``O`` over ``t`` — captures level/magnitude outlyingness;
* **VO** (variation of directional outlyingness, a scalar): the average
  of ``|O - MO|^2`` over ``t`` — captures shape outlyingness;
* **FO** = ``|MO|^2 + VO`` — total functional outlyingness (by the
  variance decomposition this equals the integrated ``|O|^2``).

The score used in the paper's experiments is the total outlyingness;
``method="mahalanobis"`` instead scores the robust distance on the
``(MO, VO)`` representation, mirroring Dai & Genton's detection rule.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.depth import _kernels
from repro.depth.multivariate import stahel_donoho_outlyingness
from repro.exceptions import ValidationError
from repro.fda.fdata import FDataGrid, MFDataGrid
from repro.fda.quadrature import trapezoid_weights
from repro.utils.validation import check_int

__all__ = [
    "DirectionalOutlyingness",
    "summarize_outlyingness",
    "directional_outlyingness",
    "dirout_scores",
]


def _spatial_median(cloud: np.ndarray, max_iter: int = 128, tol: float = 1e-9) -> np.ndarray:
    """Weiszfeld's algorithm for the geometric median of a point cloud.

    Converges (and exits early) once the update step drops below the
    scale-aware tolerance ``tol * (1 + |median|)`` — an absolute ``tol``
    alone never triggers on large-magnitude clouds, silently degrading
    to the full ``max_iter`` sweep.  The batched kernel
    (:func:`repro.depth._kernels.batched_spatial_median`) applies the
    same criterion per grid point.
    """
    median = cloud.mean(axis=0)
    for _ in range(max_iter):
        diffs = cloud - median
        norms = np.linalg.norm(diffs, axis=1)
        keep = norms > 1e-12
        if not keep.any():
            return median
        weights = 1.0 / norms[keep]
        new = (cloud[keep] * weights[:, None]).sum(axis=0) / weights.sum()
        if np.linalg.norm(new - median) < tol * (1.0 + np.linalg.norm(median)):
            return new
        median = new
    return median


@dataclass(frozen=True)
class DirectionalOutlyingness:
    """The (MO, VO, FO) decomposition for a set of MFD samples.

    Attributes
    ----------
    mean:
        ``MO`` — array ``(n_samples, p)``.
    variation:
        ``VO`` — array ``(n_samples,)``.
    total:
        ``FO = |MO|^2 + VO`` — array ``(n_samples,)``.
    """

    mean: np.ndarray
    variation: np.ndarray
    total: np.ndarray

    @property
    def mean_magnitude(self) -> np.ndarray:
        """``|MO|`` per sample — the magnitude (isolated-type) component."""
        return np.linalg.norm(self.mean, axis=1)


def summarize_outlyingness(out_vectors: np.ndarray, grid: np.ndarray) -> DirectionalOutlyingness:
    """Integrate pointwise outlyingness vectors into (MO, VO, FO).

    ``out_vectors`` is the ``(n, m, p)`` field ``O(X_i(t))``; the
    quadrature is the shared trapezoid rule normalized by the domain
    length.  Factored out so the batch path and the streaming scorer
    (which rebuilds ``O`` from incrementally maintained reference
    statistics) aggregate through one bit-identical code path.
    """
    weights = trapezoid_weights(grid) / (grid[-1] - grid[0])
    mean = np.tensordot(out_vectors, weights, axes=(1, 0))  # (n, p)
    centered = out_vectors - mean[:, None, :]
    variation = np.tensordot(np.sum(centered**2, axis=2), weights, axes=(1, 0))
    total = np.sum(mean**2, axis=1) + variation
    return DirectionalOutlyingness(mean=mean, variation=variation, total=total)


def directional_outlyingness(
    data: MFDataGrid | FDataGrid,
    reference: MFDataGrid | FDataGrid | None = None,
    n_directions: int = 200,
    random_state=None,
    naive: bool = False,
    block_bytes: int | None = None,
    context=None,
    dtype=None,
) -> DirectionalOutlyingness:
    """Compute the Dai–Genton (MO, VO, FO) decomposition.

    Parameters
    ----------
    data:
        Samples to score (UFD is promoted to p = 1 MFD).
    reference:
        Cross-sectional clouds defining "typical" (default: the data).
    n_directions, random_state:
        Controls for the projection-depth approximation (exact when p=1).
    naive:
        ``True`` runs the original loop — per grid point AND per
        direction (the equivalence oracle, always float64); the default
        batches the Stahel–Donoho sweep and the Weiszfeld medians over
        all grid points at once.
    block_bytes, context:
        Kernel scratch budget and optional worker-pool fan-out (see
        :mod:`repro.depth._kernels`).
    dtype:
        Kernel compute precision for the batched path (float64 default,
        float32 fast path).
    """
    if isinstance(data, FDataGrid):
        data = data.to_multivariate()
    if isinstance(reference, FDataGrid):
        reference = reference.to_multivariate()
    if not isinstance(data, MFDataGrid):
        raise ValidationError(f"data must be MFDataGrid, got {type(data).__name__}")
    if reference is None:
        reference = data
    if reference.n_points != data.n_points or not np.allclose(reference.grid, data.grid):
        raise ValidationError("data and reference must share a grid")
    if reference.n_parameters != data.n_parameters:
        raise ValidationError(
            f"data has {data.n_parameters} parameters but reference has "
            f"{reference.n_parameters}"
        )
    if reference.n_samples < 2:
        raise ValidationError("reference must contain at least 2 samples")
    check_int(n_directions, "n_directions", minimum=1)

    n, m, p = data.values.shape
    if not naive:
        out_vectors = _kernels.batched_outlyingness_vectors(
            data.values,
            reference.values,
            n_directions=n_directions,
            random_state=random_state,
            block_bytes=block_bytes,
            context=context,
            dtype=dtype,
        )
    else:
        out_vectors = np.empty((n, m, p))
        for j in range(m):
            cloud = reference.values[:, j, :]
            pts = data.values[:, j, :]
            sdo = stahel_donoho_outlyingness(
                pts, cloud, n_directions=n_directions, random_state=random_state,
                naive=True,
            )
            center = _spatial_median(cloud) if p > 1 else np.array([np.median(cloud[:, 0])])
            diffs = pts - center
            norms = np.linalg.norm(diffs, axis=1, keepdims=True)
            units = np.divide(diffs, norms, out=np.zeros_like(diffs), where=norms > 1e-12)
            out_vectors[:, j, :] = sdo[:, None] * units

    return summarize_outlyingness(out_vectors, data.grid)


def dirout_scores(
    data,
    reference=None,
    method: str = "total",
    n_directions: int = 200,
    random_state=None,
    naive: bool = False,
    block_bytes: int | None = None,
    context=None,
    dtype=None,
) -> np.ndarray:
    """Dir.out outlyingness scores (higher = more anomalous).

    ``method="total"`` returns FO (the aggregate score used for AUC);
    ``method="mahalanobis"`` returns the robust Mahalanobis distance of
    each sample's ``(MO, VO)`` point w.r.t. the reference samples'
    ``(MO, VO)`` cloud, following Dai & Genton's detection rule.
    """
    decomposition = directional_outlyingness(
        data, reference, n_directions=n_directions, random_state=random_state,
        naive=naive, block_bytes=block_bytes, context=context, dtype=dtype,
    )
    if method == "total":
        return decomposition.total
    if method == "mahalanobis":
        features = np.column_stack([decomposition.mean, decomposition.variation])
        location = np.median(features, axis=0)
        centered = features - location
        cov = np.atleast_2d(np.cov(features, rowvar=False))
        cov = cov + 1e-8 * np.trace(cov) / cov.shape[0] * np.eye(cov.shape[0])
        precision = np.linalg.pinv(cov)
        return np.sqrt(np.maximum(np.sum((centered @ precision) * centered, axis=1), 0.0))
    raise ValidationError(f"unknown method {method!r}; use 'total' or 'mahalanobis'")
