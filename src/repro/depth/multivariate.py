"""Pointwise statistical depth functions on R^p point clouds.

A depth function ranks points of a cloud from the centre outward
(Zuo & Serfling 2000): depth near 1 = deeply central, near 0 =
peripheral.  These are the building blocks that the functional
extensions (paper Sec. 1.2) apply at every ``t`` and then aggregate.

Implemented notions:

* **Mahalanobis depth** ``1 / (1 + d_M(x)^2)`` — moment-based, fast,
  not robust;
* **projection depth** (Zuo 2003) ``1 / (1 + SDO(x))`` with the
  Stahel–Donoho outlyingness ``SDO(x) = sup_u |u'x - med(u'X)| / MAD(u'X)``,
  exact in one dimension and approximated by random directions for
  p > 1 — this is the depth inside the Dir.out baseline;
* **halfspace (Tukey) depth** — exact in one dimension, random-direction
  approximation (upper bound, converging from above) for p > 1;
* **spatial depth** ``1 - |mean of unit vectors toward the cloud|``;
* **simplicial depth** (Liu 1990) — exact O(n^3) count for p = 2.
"""

from __future__ import annotations

import numpy as np

from repro.depth import _kernels
from repro.depth._kernels import MAD_SCALE as _MAD_SCALE
from repro.exceptions import ValidationError
from repro.utils.validation import check_int, check_matrix

__all__ = [
    "mahalanobis_depth",
    "stahel_donoho_outlyingness",
    "projection_depth",
    "halfspace_depth",
    "spatial_depth",
    "simplicial_depth",
]


def _check_cloud(points, reference) -> tuple[np.ndarray, np.ndarray]:
    points = check_matrix(points, "points")
    reference = check_matrix(reference, "reference", min_rows=2)
    if points.shape[1] != reference.shape[1]:
        raise ValidationError(
            f"points have {points.shape[1]} coordinates but reference has "
            f"{reference.shape[1]}"
        )
    return points, reference


def mahalanobis_depth(points, reference) -> np.ndarray:
    """Mahalanobis depth of ``points`` w.r.t. the cloud ``reference``."""
    points, reference = _check_cloud(points, reference)
    location = reference.mean(axis=0)
    cov = np.atleast_2d(np.cov(reference, rowvar=False))
    cov = cov + 1e-10 * np.trace(cov) / cov.shape[0] * np.eye(cov.shape[0])
    precision = np.linalg.pinv(cov)
    centered = points - location
    d_sq = np.maximum(np.sum((centered @ precision) * centered, axis=1), 0.0)
    return 1.0 / (1.0 + d_sq)


def _directional_outlyingness_1d(proj_points: np.ndarray, proj_ref: np.ndarray) -> np.ndarray:
    """|x - med| / MAD along one projection, with degenerate-MAD guard."""
    med = np.median(proj_ref)
    mad = _MAD_SCALE * np.median(np.abs(proj_ref - med))
    if mad < 1e-12:
        spread = np.std(proj_ref)
        mad = spread if spread > 1e-12 else 1.0
    return np.abs(proj_points - med) / mad


def stahel_donoho_outlyingness(
    points, reference, n_directions: int = 200, random_state=None,
    naive: bool = False,
) -> np.ndarray:
    """Stahel–Donoho outlyingness ``sup_u |u'x - med| / MAD``.

    Exact for univariate clouds; for p > 1 the supremum is taken over
    ``n_directions`` random unit vectors (plus the coordinate axes,
    which stabilizes low-dimensional behaviour).  The default path
    evaluates every direction's median/MAD in one batched sweep;
    ``naive=True`` keeps the original per-direction loop (the
    equivalence oracle, same discipline as :func:`halfspace_depth`).
    """
    points, reference = _check_cloud(points, reference)
    p = reference.shape[1]
    if p == 1:
        return _directional_outlyingness_1d(points[:, 0], reference[:, 0])
    n_directions = check_int(n_directions, "n_directions", minimum=1)
    directions = _kernels.draw_directions(random_state, n_directions, p)
    proj_ref = reference @ directions.T        # (n_ref, n_dir)
    proj_pts = points @ directions.T           # (n_pts, n_dir)
    if naive:
        out = np.zeros(points.shape[0])
        for d in range(directions.shape[0]):
            out = np.maximum(
                out, _directional_outlyingness_1d(proj_pts[:, d], proj_ref[:, d])
            )
        return out
    med = np.median(proj_ref, axis=0)
    mad = _MAD_SCALE * np.median(np.abs(proj_ref - med), axis=0)
    degenerate = mad < 1e-12
    if degenerate.any():
        std = np.std(proj_ref, axis=0)
        mad = np.where(degenerate, np.where(std > 1e-12, std, 1.0), mad)
    out = np.abs(proj_pts - med) / mad
    return out.max(axis=1)


def projection_depth(
    points, reference, n_directions: int = 200, random_state=None,
    naive: bool = False,
) -> np.ndarray:
    """Projection depth ``1 / (1 + SDO)`` (Zuo 2003)."""
    sdo = stahel_donoho_outlyingness(
        points, reference, n_directions, random_state, naive=naive
    )
    return 1.0 / (1.0 + sdo)


def halfspace_depth(
    points,
    reference,
    n_directions: int = 500,
    random_state=None,
    naive: bool = False,
    block_bytes: int | None = None,
) -> np.ndarray:
    """Tukey halfspace depth, normalized to [0, 1/2].

    Exact in one dimension (minimum of the two empirical tail
    fractions); approximated by minimizing over random directions for
    p > 1 (the approximation can only overestimate the true depth).
    The default path evaluates all directions at once via exact rank
    counting in ``block_bytes``-bounded blocks; ``naive=True`` keeps
    the original per-direction loop (the equivalence oracle).
    """
    points, reference = _check_cloud(points, reference)
    n_ref, p = reference.shape
    if p == 1:
        below = (reference[:, 0][None, :] <= points[:, 0][:, None]).mean(axis=1)
        above = (reference[:, 0][None, :] >= points[:, 0][:, None]).mean(axis=1)
        return np.minimum(below, above)
    n_directions = check_int(n_directions, "n_directions", minimum=1)
    directions = _kernels.draw_directions(random_state, n_directions, p)
    if not naive:
        return _kernels.halfspace_depth_cloud(
            points, reference, directions, block_bytes=block_bytes
        )
    proj_ref = reference @ directions.T
    proj_pts = points @ directions.T
    depth = np.full(points.shape[0], np.inf)
    for d in range(proj_ref.shape[1]):
        tail = (proj_ref[:, d][None, :] >= proj_pts[:, d][:, None]).mean(axis=1)
        other = (proj_ref[:, d][None, :] <= proj_pts[:, d][:, None]).mean(axis=1)
        depth = np.minimum(depth, np.minimum(tail, other))
    return depth


def spatial_depth(
    points, reference, naive: bool = False, block_bytes: int | None = None
) -> np.ndarray:
    """Spatial (L1) depth: ``1 - |E[(x - X)/|x - X|]|``.

    Vectorized over all query points in ``block_bytes``-bounded blocks;
    ``naive=True`` keeps the original per-point loop.
    """
    points, reference = _check_cloud(points, reference)
    if not naive:
        return _kernels.spatial_depth_cloud(points, reference, block_bytes=block_bytes)
    depth = np.empty(points.shape[0])
    for i, x in enumerate(points):
        diffs = x[None, :] - reference
        norms = np.linalg.norm(diffs, axis=1)
        keep = norms > 1e-12
        if not keep.any():
            depth[i] = 1.0
            continue
        units = diffs[keep] / norms[keep, None]
        depth[i] = 1.0 - np.linalg.norm(units.mean(axis=0))
    return np.clip(depth, 0.0, 1.0)


def simplicial_depth(
    points, reference, naive: bool = False, block_bytes: int | None = None
) -> np.ndarray:
    """Simplicial depth for p = 2: fraction of triangles containing the point.

    Exact enumeration over all ``C(n, 3)`` reference triangles via a
    sign test; intended for modest cloud sizes (the functional
    aggregation calls it once per grid point).  The default path counts
    orientation signs for whole (query-block × triangle-block) slabs at
    once; ``naive=True`` keeps the original per-query-point loop.
    """
    points, reference = _check_cloud(points, reference)
    if reference.shape[1] != 2:
        raise ValidationError("simplicial_depth is implemented for p = 2 only")
    n = reference.shape[0]
    if n < 3:
        raise ValidationError("simplicial_depth needs at least 3 reference points")
    if not naive:
        return _kernels.simplicial_depth_cloud(points, reference, block_bytes=block_bytes)
    from itertools import combinations

    triangles = np.array(list(combinations(range(n), 3)))
    a = reference[triangles[:, 0]]
    b = reference[triangles[:, 1]]
    c = reference[triangles[:, 2]]

    def _sign(p1, p2, p3):
        return (p1[:, 0] - p3[:, 0]) * (p2[:, 1] - p3[:, 1]) - (
            p2[:, 0] - p3[:, 0]
        ) * (p1[:, 1] - p3[:, 1])

    depth = np.empty(points.shape[0])
    for i, x in enumerate(points):
        xx = np.broadcast_to(x, a.shape)
        d1 = _sign(xx, a, b)
        d2 = _sign(xx, b, c)
        d3 = _sign(xx, c, a)
        neg = (d1 < 0) | (d2 < 0) | (d3 < 0)
        pos = (d1 > 0) | (d2 > 0) | (d3 > 0)
        inside = ~(neg & pos)
        depth[i] = inside.mean()
    return depth
