"""Statistical depth functions and the paper's depth-based baselines.

Every depth notion runs on the blocked, vectorized kernel layer of
:mod:`repro.depth._kernels` by default (scratch bounded by a
``block_bytes`` budget, optional ``context`` worker-pool fan-out); pass
``naive=True`` to any public function to run the original loop
implementation instead — the equivalence oracle the property tests pin
the kernels against.
"""

from repro.depth._kernels import DEFAULT_BLOCK_BYTES
from repro.depth.boxplot import FunctionalBoxplot, functional_boxplot
from repro.depth.dirout import DirectionalOutlyingness, directional_outlyingness, dirout_scores
from repro.depth.msplot import MSPlotResult, ms_plot
from repro.depth.functional import (
    aggregate_depth,
    functional_depth,
    modified_band_depth,
    pointwise_depth_profile,
    univariate_integrated_depth,
)
from repro.depth.funta import funta_depth, funta_outlyingness
from repro.depth.multivariate import (
    halfspace_depth,
    mahalanobis_depth,
    projection_depth,
    simplicial_depth,
    spatial_depth,
    stahel_donoho_outlyingness,
)

__all__ = [
    "DEFAULT_BLOCK_BYTES",
    "DirectionalOutlyingness",
    "FunctionalBoxplot",
    "MSPlotResult",
    "ms_plot",
    "functional_boxplot",
    "aggregate_depth",
    "directional_outlyingness",
    "dirout_scores",
    "functional_depth",
    "funta_depth",
    "funta_outlyingness",
    "halfspace_depth",
    "mahalanobis_depth",
    "modified_band_depth",
    "pointwise_depth_profile",
    "projection_depth",
    "simplicial_depth",
    "spatial_depth",
    "stahel_donoho_outlyingness",
    "univariate_integrated_depth",
]
