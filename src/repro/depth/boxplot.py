"""Functional boxplot (Sun & Genton 2011) — a classical depth-based rule.

A further baseline of the depth family the paper reviews: order the
curves by modified band depth, take the band spanned by the deepest 50%
(the *central region*), inflate it by the factor 1.5 (the functional
analogue of the boxplot whiskers), and flag every curve that exits the
inflated fence anywhere.

Included for completeness of the depth substrate and for the taxonomy
benches; the rule is binary by nature, so for AUC-style evaluation we
also expose a continuous score: the maximal relative fence violation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.depth.functional import modified_band_depth
from repro.exceptions import ValidationError
from repro.fda.fdata import FDataGrid
from repro.utils.validation import check_in_range, check_positive

__all__ = ["FunctionalBoxplot", "functional_boxplot"]


@dataclass(frozen=True)
class FunctionalBoxplot:
    """The fitted functional boxplot.

    Attributes
    ----------
    median:
        The deepest curve, shape ``(n_points,)``.
    lower, upper:
        Envelope of the central region.
    fence_lower, fence_upper:
        Inflated whisker envelopes.
    outlier_mask:
        Boolean flags per input curve.
    scores:
        Continuous outlyingness: max relative fence violation (0 inside).
    """

    median: np.ndarray
    lower: np.ndarray
    upper: np.ndarray
    fence_lower: np.ndarray
    fence_upper: np.ndarray
    outlier_mask: np.ndarray
    scores: np.ndarray


def functional_boxplot(
    data: FDataGrid,
    central_fraction: float = 0.5,
    inflation: float = 1.5,
    naive: bool = False,
) -> FunctionalBoxplot:
    """Fit the functional boxplot of a sample of curves.

    Parameters
    ----------
    data:
        Univariate functional data on a common grid.
    central_fraction:
        Fraction of deepest curves forming the central region (0.5 in
        the original proposal).
    inflation:
        Whisker inflation factor (1.5 in the original proposal).
    naive:
        Route the band-depth ordering through the explicit pair loop
        instead of the rank-count kernel (equivalence oracle).
    """
    if not isinstance(data, FDataGrid):
        raise ValidationError(f"data must be FDataGrid, got {type(data).__name__}")
    if data.n_samples < 4:
        raise ValidationError("functional_boxplot needs at least 4 curves")
    central_fraction = check_in_range(
        central_fraction, 0.0, 1.0, "central_fraction", inclusive=(False, False)
    )
    inflation = check_positive(inflation, "inflation")

    depth = modified_band_depth(data, naive=naive)
    order = np.argsort(-depth)
    n_central = max(int(np.ceil(central_fraction * data.n_samples)), 2)
    central = data.values[order[:n_central]]

    median = data.values[order[0]]
    lower = central.min(axis=0)
    upper = central.max(axis=0)
    spread = upper - lower
    fence_lower = lower - inflation * spread
    fence_upper = upper + inflation * spread

    below = fence_lower[None, :] - data.values
    above = data.values - fence_upper[None, :]
    violation = np.maximum(np.maximum(below, above), 0.0)
    scale = np.maximum(spread, 1e-12)[None, :]
    scores = (violation / scale).max(axis=1)
    outlier_mask = scores > 0.0
    return FunctionalBoxplot(
        median=median,
        lower=lower,
        upper=upper,
        fence_lower=fence_lower,
        fence_upper=fence_upper,
        outlier_mask=outlier_mask,
        scores=scores,
    )
