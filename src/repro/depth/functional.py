"""Functional depth: pointwise depths aggregated over ``t``.

This module implements the depth-based MFD machinery the paper reviews
(Sec. 1.2) — and whose failure modes (issues (1)–(3)) motivate the
geometric alternative:

* the **integrated** aggregation (Fraiman–Muniz 2001 for UFD; Claeskens
  et al. 2014 for MFD): the sample depth is the integral over ``t`` of
  the pointwise depth — an *average* that can mask isolated outliers
  (issue (2));
* the **infimum** aggregation, the remedy the paper mentions for
  issue (2);
* the **modified band depth** (López-Pintado & Romo 2009), a popular
  UFD depth included for completeness and for the taxonomy benches.
"""

from __future__ import annotations

from itertools import combinations
from typing import Callable

import numpy as np

from repro.depth import _kernels
from repro.depth import multivariate as mvdepth
from repro.exceptions import ValidationError
from repro.fda.fdata import FDataGrid, MFDataGrid
from repro.fda.quadrature import trapezoid_weights
from repro.utils.validation import check_grid

__all__ = [
    "pointwise_depth_profile",
    "aggregate_depth",
    "functional_depth",
    "univariate_integrated_depth",
    "modified_band_depth",
]

_POINTWISE: dict[str, Callable] = {
    "projection": mvdepth.projection_depth,
    "halfspace": mvdepth.halfspace_depth,
    "mahalanobis": mvdepth.mahalanobis_depth,
    "spatial": mvdepth.spatial_depth,
    "simplicial": mvdepth.simplicial_depth,
}

#: Notions whose naive implementation itself takes a ``naive`` flag —
#: the oracle loop pins those to their original per-point code too.
_LOOPED_NOTIONS = ("projection", "halfspace", "spatial", "simplicial")


def pointwise_depth_profile(
    data: MFDataGrid,
    reference: MFDataGrid | None = None,
    notion: str = "projection",
    naive: bool = False,
    block_bytes: int | None = None,
    context=None,
    dtype=None,
    **depth_kwargs,
) -> np.ndarray:
    """Depth of every sample at every grid point → ``(n_samples, n_points)``.

    At each ``t`` the cross-section ``{X_i(t)}`` of ``reference``
    (default: the data themselves) forms a cloud in R^p and the chosen
    pointwise depth is evaluated on it.  The default path dispatches the
    whole ``(n_samples × n_points)`` computation to the blocked kernels
    of :mod:`repro.depth._kernels` (scratch bounded by ``block_bytes``;
    ``context`` optionally fans blocks out across its worker pool with
    bit-identical results; ``dtype`` selects the kernel compute
    precision — float64 default, float32 fast path).  ``naive=True``
    runs the original grid-point-by-grid-point loop — the equivalence
    oracle, always in float64.
    """
    if not isinstance(data, MFDataGrid):
        raise ValidationError(f"data must be MFDataGrid, got {type(data).__name__}")
    if reference is None:
        reference = data
    if reference.n_points != data.n_points or not np.allclose(reference.grid, data.grid):
        raise ValidationError("data and reference must share a grid")
    if reference.n_parameters != data.n_parameters:
        raise ValidationError(
            f"data has {data.n_parameters} parameters but reference has "
            f"{reference.n_parameters}"
        )
    if reference.n_samples < 2:
        raise ValidationError("reference must contain at least 2 samples")
    if notion not in _POINTWISE:
        raise ValidationError(
            f"unknown depth notion {notion!r}; choose from {sorted(_POINTWISE)}"
        )
    if not naive:
        return _kernels.pointwise_profile(
            data.values,
            reference.values,
            notion,
            block_bytes=block_bytes,
            context=context,
            dtype=dtype,
            **depth_kwargs,
        )
    depth_fn = _POINTWISE[notion]
    if notion in _LOOPED_NOTIONS:
        depth_kwargs = {**depth_kwargs, "naive": True}
    profile = np.empty((data.n_samples, data.n_points))
    for j in range(data.n_points):
        cloud = reference.values[:, j, :]
        pts = data.values[:, j, :]
        profile[:, j] = depth_fn(pts, cloud, **depth_kwargs)
    return profile


def aggregate_depth(profile: np.ndarray, grid, aggregation: str = "integral") -> np.ndarray:
    """Aggregate pointwise depths to sample depths.

    ``"integral"``: normalized integral over T (average depth — the
    classical extension); ``"infimum"``: worst pointwise depth (robust
    to isolated masking, paper issue (2)).
    """
    grid = check_grid(grid, "grid")
    profile = np.asarray(profile, dtype=np.float64)
    if profile.ndim != 2 or profile.shape[1] != grid.shape[0]:
        raise ValidationError(
            f"profile shape {profile.shape} incompatible with grid length {grid.shape[0]}"
        )
    if aggregation == "integral":
        weights = trapezoid_weights(grid)
        return (profile @ weights) / (grid[-1] - grid[0])
    if aggregation == "infimum":
        return profile.min(axis=1)
    raise ValidationError(
        f"unknown aggregation {aggregation!r}; use 'integral' or 'infimum'"
    )


def functional_depth(
    data: MFDataGrid,
    reference: MFDataGrid | None = None,
    notion: str = "projection",
    aggregation: str = "integral",
    naive: bool = False,
    block_bytes: int | None = None,
    context=None,
    **depth_kwargs,
) -> np.ndarray:
    """Sample-level functional depth of MFD (higher = more central)."""
    profile = pointwise_depth_profile(
        data, reference, notion, naive=naive, block_bytes=block_bytes,
        context=context, **depth_kwargs,
    )
    ref = data if reference is None else reference
    return aggregate_depth(profile, ref.grid, aggregation)


def univariate_integrated_depth(
    data: FDataGrid,
    reference: FDataGrid | None = None,
    aggregation: str = "integral",
    naive: bool = False,
    block_bytes: int | None = None,
    context=None,
) -> np.ndarray:
    """Fraiman–Muniz depth of UFD: integrated univariate halfspace depth."""
    if not isinstance(data, FDataGrid):
        raise ValidationError(f"data must be FDataGrid, got {type(data).__name__}")
    mfd = data.to_multivariate()
    ref = reference.to_multivariate() if reference is not None else None
    return functional_depth(
        mfd, ref, notion="halfspace", aggregation=aggregation,
        naive=naive, block_bytes=block_bytes, context=context,
    )


def _check_mbd_inputs(data: FDataGrid, reference: FDataGrid | None) -> np.ndarray:
    if not isinstance(data, FDataGrid):
        raise ValidationError(f"data must be FDataGrid, got {type(data).__name__}")
    if reference is None:
        reference = data
    if reference.n_points != data.n_points or not np.allclose(reference.grid, data.grid):
        raise ValidationError("data and reference must share a grid")
    ref = reference.values
    if ref.shape[0] < 2:
        raise ValidationError("modified_band_depth needs at least 2 reference curves")
    return ref


def modified_band_depth(
    data: FDataGrid, reference: FDataGrid | None = None, naive: bool = False
) -> np.ndarray:
    """Modified band depth (J = 2) of univariate functional data.

    ``MBD_i`` is the average, over reference-curve pairs ``{j, k}`` and
    grid points ``t``, of the indicator that ``x_i(t)`` lies inside the
    band ``[min(x_j, x_k)(t), max(x_j, x_k)(t)]``.

    Computed by the rank-count identity rather than the explicit pair
    loop: at each ``t`` the pairs whose band *misses* ``x`` are exactly
    those drawn entirely from the references strictly below ``x`` or
    entirely from those strictly above, so with ``b`` references below
    and ``a`` above the covering count is
    ``C(n,2) - C(b,2) - C(a,2)`` — an O(n·m·log n) computation instead
    of the O(n²·m) pair sweep.  ``naive=True`` runs the explicit pair
    loop (the equivalence oracle), mirroring the escape hatch on the
    other depth notions.
    """
    if naive:
        return _modified_band_depth_pairwise(data, reference)
    ref = _check_mbd_inputs(data, reference)
    n_ref = ref.shape[0]
    values = data.values
    sorted_ref = np.sort(ref, axis=0)
    below = np.empty(values.shape, dtype=np.int64)
    above = np.empty(values.shape, dtype=np.int64)
    for j in range(values.shape[1]):
        column = np.ascontiguousarray(sorted_ref[:, j])
        below[:, j] = np.searchsorted(column, values[:, j], side="left")
        above[:, j] = n_ref - np.searchsorted(column, values[:, j], side="right")
    n_pairs = n_ref * (n_ref - 1) // 2
    missing = below * (below - 1) // 2 + above * (above - 1) // 2
    covering = n_pairs - missing
    return covering.mean(axis=1) / n_pairs


def _modified_band_depth_pairwise(
    data: FDataGrid, reference: FDataGrid | None = None
) -> np.ndarray:
    """Reference implementation: the explicit O(n²·m) pair loop.

    Kept as the ground truth the vectorized rank-count version is
    tested against.
    """
    ref = _check_mbd_inputs(data, reference)
    pairs = list(combinations(range(ref.shape[0]), 2))
    depth = np.zeros(data.n_samples)
    for j, k in pairs:
        lower = np.minimum(ref[j], ref[k])
        upper = np.maximum(ref[j], ref[k])
        inside = (data.values >= lower[None, :]) & (data.values <= upper[None, :])
        depth += inside.mean(axis=1)
    return depth / len(pairs)
