"""The paper's method end-to-end: smooth → map → detect.

:class:`GeometricOutlierPipeline` implements the contribution of the
paper (Sec. 1.3 / 3): multivariate functional data are (1) smoothed into
a B-spline basis with per-parameter basis-size selection by LOO-CV
(Sec. 4.1), (2) aggregated into a univariate geometric representation by
a mapping function — curvature by default (Eq. 5) — evaluated on a
common grid, and (3) fed to a multivariate outlier detector
(Isolation Forest or One-Class SVM).

The pipeline is unsupervised: ``fit`` accepts a contaminated training
set; ``score_samples`` returns outlyingness scores (higher = more
anomalous), ready for ROC/AUC evaluation or thresholding.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.detectors.base import OutlierDetector
from repro.engine import ExecutionContext
from repro.exceptions import NotFittedError, ValidationError
from repro.fda.basis.bspline import BSplineBasis
from repro.fda.fdata import FDataGrid, MFDataGrid, MultivariateBasisFData
from repro.fda.fdata import BasisFData
from repro.fda.selection import select_n_basis
from repro.fda.smoothing import BasisSmoother
from repro.geometry.base import MappingFunction
from repro.geometry.mappings import CompositeMapping, CurvatureMapping
from repro.utils.validation import check_grid, check_int, check_positive

__all__ = ["GeometricOutlierPipeline"]

#: Default basis-size candidates swept by LOO-CV (clipped to the number
#: of measurement points at fit time).
DEFAULT_BASIS_CANDIDATES = (8, 12, 16, 20, 25, 30, 35, 40)


class GeometricOutlierPipeline:
    """Geometric-aggregation outlier detection for MFD (the paper's method).

    Parameters
    ----------
    detector:
        Any :class:`~repro.detectors.OutlierDetector` (unfitted); it is
        fitted on the mapped training curves.
    mapping:
        The geometric aggregation; defaults to the paper's
        :class:`~repro.geometry.CurvatureMapping`.
    n_basis:
        Either an int (fixed basis size for every parameter), a sequence
        of candidate sizes selected per parameter by LOO-CV (the paper's
        procedure), or ``None`` for the default candidate sweep.
    smoothing:
        Roughness-penalty weight ``lambda`` (shared by all parameters).
    penalty_order:
        Derivative order of the roughness penalty (default 2).
    spline_order:
        B-spline order; the default 4 (cubic) supports the two
        derivatives the curvature mapping needs.
    eval_points:
        Number of evaluation points of the common grid on which mapped
        curves are vectorized (paper: the measurement grid length, 85).
        ``None`` reuses the training grid.
    context:
        A shared :class:`~repro.engine.ExecutionContext`.  Its
        factorization cache backs every smoothing/selection solve, so
        pipelines sharing a context never factorize the same
        (basis, grid, λ, penalty order) configuration twice.  A private
        context is created when omitted.
    """

    def __init__(
        self,
        detector: OutlierDetector,
        mapping: MappingFunction | CompositeMapping | None = None,
        n_basis: int | Sequence[int] | None = None,
        smoothing: float = 1e-4,
        penalty_order: int = 2,
        spline_order: int = 4,
        eval_points: int | None = None,
        context: ExecutionContext | None = None,
    ):
        if context is not None and not isinstance(context, ExecutionContext):
            raise ValidationError(
                f"context must be an ExecutionContext, got {type(context).__name__}"
            )
        self.context = context if context is not None else ExecutionContext()
        if not isinstance(detector, OutlierDetector):
            raise ValidationError(
                f"detector must be an OutlierDetector, got {type(detector).__name__}"
            )
        self.detector = detector
        self.mapping = mapping if mapping is not None else CurvatureMapping()
        if not isinstance(self.mapping, (MappingFunction, CompositeMapping)):
            raise ValidationError(
                f"mapping must be a MappingFunction, got {type(mapping).__name__}"
            )
        if n_basis is None:
            self.n_basis = tuple(DEFAULT_BASIS_CANDIDATES)
        elif isinstance(n_basis, (int, np.integer)):
            self.n_basis = check_int(int(n_basis), "n_basis", minimum=spline_order)
        else:
            self.n_basis = tuple(check_int(int(v), "n_basis candidate", minimum=spline_order) for v in n_basis)
            if not self.n_basis:
                raise ValidationError("n_basis candidate list must not be empty")
        self.smoothing = check_positive(smoothing, "smoothing", strict=False)
        self.penalty_order = check_int(penalty_order, "penalty_order", minimum=0)
        self.spline_order = check_int(spline_order, "spline_order", minimum=2)
        min_deriv = getattr(self.mapping, "required_derivatives", 2)
        if self.spline_order - 1 < min_deriv:
            raise ValidationError(
                f"spline_order={self.spline_order} supports derivatives up to "
                f"{self.spline_order - 1} but the mapping needs {min_deriv}"
            )
        self.eval_points = None if eval_points is None else check_int(eval_points, "eval_points", minimum=4)
        # Fitted state.
        self.selected_n_basis_: list[int] | None = None
        self.smoothers_: list[BasisSmoother] | None = None
        self.eval_grid_: np.ndarray | None = None
        self._fitted = False

    # ------------------------------------------------------------------ internals
    def _select_and_fit(
        self, data: MFDataGrid
    ) -> tuple[list[int], list[BasisSmoother], list[BasisFData]]:
        """Batched selection: sizes, smoothers and *fitted* components.

        Every candidate is scored against the shared factorization
        cache, and the winner's fit reuses the cached factor — no
        refit after selection (the engine's batched LOO-CV path).
        """
        max_size = data.n_points  # unpenalized LS needs n_basis <= m
        if isinstance(self.n_basis, int):
            sizes = [min(self.n_basis, max_size)] * data.n_parameters
            smoothers = self._make_smoothers(data, sizes)
            components = [
                smoother.fit_grid(data.parameter(k))
                for k, smoother in enumerate(smoothers)
            ]
            return sizes, smoothers, components
        candidates = [c for c in self.n_basis if c <= max_size]
        if not candidates:
            candidates = [min(min(self.n_basis), max_size)]
        sizes: list[int] = []
        smoothers: list[BasisSmoother] = []
        components: list[BasisFData] = []
        for k in range(data.n_parameters):
            selection = select_n_basis(
                data.parameter(k),
                lambda dom, L: BSplineBasis(dom, L, order=self.spline_order),
                candidates,
                smoothing=self.smoothing,
                penalty_order=self.penalty_order,
                criterion="loocv",
                cache=self.context.cache,
                return_fitted=True,
            )
            sizes.append(int(selection.best))
            smoothers.append(selection.smoother)
            components.append(selection.fit)
        return sizes, smoothers, components

    def _make_smoothers(self, data: MFDataGrid, sizes: list[int]) -> list[BasisSmoother]:
        return [
            BasisSmoother(
                BSplineBasis(data.domain, sizes[k], order=self.spline_order),
                smoothing=self.smoothing,
                penalty_order=self.penalty_order,
                cache=self.context.cache,
            )
            for k in range(data.n_parameters)
        ]

    def _smooth(self, data: MFDataGrid) -> MultivariateBasisFData:
        if self.smoothers_ is None:
            raise NotFittedError("pipeline is not fitted")
        components = [
            smoother.fit_grid(data.parameter(k))
            for k, smoother in enumerate(self.smoothers_)
        ]
        return MultivariateBasisFData(components)

    def _check_input(self, data) -> MFDataGrid:
        if isinstance(data, FDataGrid):
            data = data.to_multivariate()
        if not isinstance(data, MFDataGrid):
            raise ValidationError(
                f"data must be MFDataGrid or FDataGrid, got {type(data).__name__}"
            )
        return data

    # ------------------------------------------------------------------ API
    def transform(self, data) -> np.ndarray:
        """Smooth + map ``data`` and return the feature matrix ``(n, m)``."""
        data = self._check_input(data)
        if not self._fitted:
            raise NotFittedError("pipeline is not fitted")
        fdata = self._smooth(data)
        mapped = self.mapping.transform(fdata, self.eval_grid_)
        return mapped.values

    def prepare(self, data) -> np.ndarray:
        """Select bases, smooth and map ``data``; return training features.

        This is the split-independent half of :meth:`fit`: it installs
        the fitted smoothing state (``selected_n_basis_``,
        ``smoothers_``, ``eval_grid_``) and returns the mapped feature
        matrix without touching the detector.  The winning smoothers
        come out of the batched selection already fitted, so no curve
        is smoothed twice.
        """
        data = self._check_input(data)
        sizes, smoothers, components = self._select_and_fit(data)
        self.selected_n_basis_ = sizes
        self.smoothers_ = smoothers
        if self.eval_points is None:
            self.eval_grid_ = data.grid.copy()
        else:
            low, high = data.domain
            self.eval_grid_ = np.linspace(low, high, self.eval_points)
        self._fitted = True
        mapped = self.mapping.transform(MultivariateBasisFData(components), self.eval_grid_)
        return mapped.values

    def fit(self, data) -> "GeometricOutlierPipeline":
        """Select bases, smooth, map and fit the detector on training MFD."""
        features = self.prepare(data)
        self.detector.fit(features)
        return self

    def score_samples(self, data) -> np.ndarray:
        """Outlyingness score per sample (higher = more anomalous)."""
        features = self.transform(data)
        return self.detector.score_samples(features)

    def predict(self, data) -> np.ndarray:
        """Label samples ``+1`` (inlier) / ``-1`` (outlier)."""
        features = self.transform(data)
        return self.detector.predict(features)

    def fit_score(self, train, test) -> np.ndarray:
        """Convenience: fit on ``train`` and score ``test``."""
        return self.fit(train).score_samples(test)

    # ------------------------------------------------------------------ specs
    @classmethod
    def from_spec(cls, spec, context: ExecutionContext | None = None) -> "GeometricOutlierPipeline":
        """Construct an unfitted pipeline from a declarative spec.

        ``spec`` is a :class:`~repro.plan.PipelineSpec` (or its tagged
        dict form); construction delegates to the plan compiler — the
        library's single spec→object lowering path.
        """
        from repro.plan import compile_plan

        return compile_plan(spec, context=context).build()

    def to_spec(self):
        """The declarative :class:`~repro.plan.PipelineSpec` of this pipeline.

        Round-trips through :meth:`from_spec` to an identically
        configured pipeline; the serving layer persists it as the v2
        manifest's ``spec`` section.
        """
        from repro.plan import pipeline_to_spec

        return pipeline_to_spec(self)

    # ------------------------------------------------------------------ state
    def export_fitted_state(self) -> dict:
        """Everything a fresh process needs to score new batches.

        Returns a nested dict of JSON-able scalars and NumPy arrays (no
        pickled code): the per-parameter smoother configs, the selected
        basis sizes, the evaluation grid, the mapping config and the
        fitted detector state.  :meth:`from_fitted_state` inverts it with
        bit-identical scoring; :func:`repro.serving.save_pipeline` writes
        it to disk as ``.npz`` + JSON manifest.
        """
        if not self._fitted or self.smoothers_ is None:
            raise NotFittedError("pipeline is not fitted")
        return {
            "config": {
                "smoothing": float(self.smoothing),
                "penalty_order": int(self.penalty_order),
                "spline_order": int(self.spline_order),
            },
            "selected_n_basis": [int(v) for v in (self.selected_n_basis_ or [])],
            "smoothers": [smoother.to_config() for smoother in self.smoothers_],
            "eval_grid": self.eval_grid_.copy(),
            "mapping": self.mapping.to_config(),
            "detector": self.detector.export_state(),
        }

    def inject_fitted_state(self, state: dict) -> None:
        """Install exported smoothing state, marking the pipeline fitted.

        Restored smoothers attach to this pipeline's context cache, so
        scoring new curves on a grid the cache has seen skips design
        building and refactorization entirely.  The detector is restored
        separately (see :meth:`from_fitted_state`).
        """
        if "eval_grid" not in state:
            raise ValidationError("fitted state has no 'eval_grid'")
        smoother_configs = state.get("smoothers")
        if not smoother_configs:
            raise ValidationError("fitted state has no smoother configs")
        self.smoothers_ = [
            BasisSmoother.from_config(cfg, cache=self.context.cache)
            for cfg in smoother_configs
        ]
        self.selected_n_basis_ = [int(v) for v in state.get("selected_n_basis", [])]
        self.eval_grid_ = np.asarray(state["eval_grid"], dtype=np.float64)
        self._fitted = True

    @classmethod
    def from_fitted_state(
        cls, state: dict, context: ExecutionContext | None = None
    ) -> "GeometricOutlierPipeline":
        """Rebuild a fitted pipeline from :meth:`export_fitted_state` output.

        ``context`` optionally attaches the restored pipeline to a shared
        serving context (cache + pool); a private context is created when
        omitted.
        """
        from repro.detectors import detector_from_state
        from repro.geometry.mappings import mapping_from_config

        if not isinstance(state, dict):
            raise ValidationError(
                f"fitted state must be a dict, got {type(state).__name__}"
            )
        missing = [key for key in ("detector", "mapping", "smoothers", "eval_grid")
                   if key not in state]
        if missing:
            raise ValidationError(f"fitted state is missing keys: {missing}")
        config = state.get("config", {})
        pipeline = cls(
            detector=detector_from_state(state["detector"]),
            mapping=mapping_from_config(state["mapping"]),
            smoothing=float(config.get("smoothing", 1e-4)),
            penalty_order=int(config.get("penalty_order", 2)),
            spline_order=int(config.get("spline_order", 4)),
            context=context,
        )
        pipeline.inject_fitted_state(state)
        return pipeline
