"""Interpretable per-class ensemble — the paper's future work (Sec. 5).

The conclusion sketches a path toward *interpreting* a detected outlier:
"first … detect some specific outliers with depth functions, second …
train outlier detection algorithms (combined with a mapping function) on
training sets containing each one a unique class of outlier … and then
average all the models trained to form an ensemble one.  As a result,
one could know which model(s) in the ensemble most contribute to the
outlyingness and deduce the outlyingness composition."

:class:`OutlierCompositionEnsemble` implements that proposal:

* one member pipeline per outlier class, each fitted on an inlier set
  *contaminated only with that class* (so each member specializes in
  separating its class from the common inlier population);
* the ensemble score is the average of the members' standardized scores;
* :meth:`composition` returns, per sample, each member's share of the
  total outlyingness — the "outlyingness composition" the paper wants.

Member scores are standardized on the inlier training scores (median /
IQR) so that shares are comparable across members.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.pipeline import GeometricOutlierPipeline
from repro.detectors.iforest import IsolationForest
from repro.exceptions import NotFittedError, ValidationError
from repro.fda.fdata import MFDataGrid
from repro.geometry.base import MappingFunction
from repro.utils.random import check_random_state

__all__ = ["OutlierCompositionEnsemble", "CompositionReport"]


@dataclass(frozen=True)
class CompositionReport:
    """Per-sample outlyingness decomposition.

    Attributes
    ----------
    total:
        Ensemble outlyingness score per sample, shape ``(n,)``.
    shares:
        Non-negative matrix ``(n, n_members)``; each row sums to 1 when
        the row's total standardized outlyingness is positive.
    members:
        Class label of each member, in column order.
    """

    total: np.ndarray
    shares: np.ndarray
    members: list

    def dominant_class(self, index: int) -> str:
        """The member class contributing most to sample ``index``."""
        return self.members[int(np.argmax(self.shares[index]))]


class OutlierCompositionEnsemble:
    """Ensemble of per-outlier-class geometric pipelines.

    Parameters
    ----------
    class_names:
        One label per member (e.g. taxonomy class names).
    mapping:
        Shared mapping function; ``None`` = curvature.
    n_basis, smoothing:
        Passed to each member pipeline.
    detector_factory:
        ``(random_state) -> OutlierDetector`` for member heads; defaults
        to a 200-tree Isolation Forest.
    random_state:
        Master seed; each member gets an independent stream.
    """

    def __init__(
        self,
        class_names: list[str],
        mapping: MappingFunction | None = None,
        n_basis=None,
        smoothing: float = 1e-4,
        detector_factory=None,
        random_state=None,
    ):
        if not class_names:
            raise ValidationError("need at least one member class")
        if len(set(class_names)) != len(class_names):
            raise ValidationError("member class names must be unique")
        self.class_names = list(class_names)
        self.mapping = mapping
        self.n_basis = n_basis
        self.smoothing = smoothing
        if detector_factory is None:
            detector_factory = lambda rs: IsolationForest(
                n_estimators=200, random_state=rs
            )
        self.detector_factory = detector_factory
        self.random_state = random_state
        self._members: dict[str, GeometricOutlierPipeline] = {}
        self._centers: dict[str, float] = {}
        self._scales: dict[str, float] = {}
        self._fitted = False

    def fit(self, training_sets: dict[str, MFDataGrid]) -> "OutlierCompositionEnsemble":
        """Fit one member per class.

        Parameters
        ----------
        training_sets:
            Mapping class name -> MFD training set whose contamination is
            (predominantly) of that single class, as the paper proposes
            (obtained e.g. from depth-based pre-detection).
        """
        missing = set(self.class_names) - set(training_sets)
        if missing:
            raise ValidationError(f"missing training sets for classes: {sorted(missing)}")
        rng = check_random_state(self.random_state)
        self._members.clear()
        for name in self.class_names:
            seed = int(rng.integers(0, 2**31 - 1))
            pipeline = GeometricOutlierPipeline(
                detector=self.detector_factory(seed),
                mapping=self.mapping,
                n_basis=self.n_basis,
                smoothing=self.smoothing,
            )
            pipeline.fit(training_sets[name])
            train_scores = pipeline.score_samples(training_sets[name])
            center = float(np.median(train_scores))
            q75, q25 = np.percentile(train_scores, [75, 25])
            scale = float(q75 - q25) or float(np.std(train_scores)) or 1.0
            self._members[name] = pipeline
            self._centers[name] = center
            self._scales[name] = scale
        self._fitted = True
        return self

    def _member_scores(self, data: MFDataGrid) -> np.ndarray:
        if not self._fitted:
            raise NotFittedError("ensemble is not fitted")
        columns = []
        for name in self.class_names:
            raw = self._members[name].score_samples(data)
            columns.append((raw - self._centers[name]) / self._scales[name])
        return np.column_stack(columns)

    def score_samples(self, data: MFDataGrid) -> np.ndarray:
        """Ensemble outlyingness: mean standardized member score."""
        return self._member_scores(data).mean(axis=1)

    def composition(self, data: MFDataGrid) -> CompositionReport:
        """Decompose each sample's outlyingness over the member classes."""
        standardized = self._member_scores(data)
        positive = np.maximum(standardized, 0.0)
        totals = positive.sum(axis=1)
        shares = np.zeros_like(positive)
        nonzero = totals > 1e-12
        shares[nonzero] = positive[nonzero] / totals[nonzero, None]
        return CompositionReport(
            total=standardized.mean(axis=1),
            shares=shares,
            members=list(self.class_names),
        )
