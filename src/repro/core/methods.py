"""Method registry for the experiments.

Every curve in the paper's Figure 3 is a *method*: a procedure that
takes a contaminated MFD training set and an MFD test set and returns
test outlyingness scores.  This module wraps the pipeline (our method,
with iFor and OCSVM heads) and the depth baselines (FUNTA, Dir.out)
behind one interface so the experiment harness can sweep them uniformly.

To keep 50-repetition sweeps fast, methods split the work into
``prepare`` — anything that does not depend on the train/test split,
e.g. per-parameter basis selection and the smooth-and-map feature
computation, both of which the paper performs per sample — and
``fit_score`` — the split-dependent part (detector fitting, ν tuning,
reference-based depth scoring).
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

from repro.core.pipeline import GeometricOutlierPipeline
from repro.depth.dirout import dirout_scores
from repro.engine import ExecutionContext
from repro.depth.funta import funta_outlyingness
from repro.detectors.iforest import IsolationForest
from repro.detectors.ocsvm import OneClassSVM
from repro.evaluation.tuning import tune_nu
from repro.exceptions import ValidationError
from repro.fda.basis.bspline import BSplineBasis
from repro.fda.fdata import FDataGrid, MFDataGrid
from repro.fda.smoothing import BasisSmoother
from repro.geometry.base import MappingFunction
from repro.geometry.mappings import CompositeMapping, CurvatureMapping
from repro.utils.random import check_random_state

__all__ = [
    "Method",
    "smooth_dataset",
    "MappedDetectorMethod",
    "FuntaMethod",
    "DirOutMethod",
    "default_methods",
    "make_method",
]


class Method(abc.ABC):
    """A scoring procedure evaluated by the experiment harness."""

    name: str = "method"

    @abc.abstractmethod
    def prepare(self, data: MFDataGrid, random_state=None, context=None):
        """Precompute everything split-independent; returns an opaque state.

        ``context`` is an optional shared
        :class:`~repro.engine.ExecutionContext`; methods that smooth
        route their factorizations through its cache so that methods
        sharing a context also share linear-algebra artifacts.
        """

    @abc.abstractmethod
    def fit_score(self, state, train_idx, test_idx, random_state=None) -> np.ndarray:
        """Fit on ``train_idx`` rows of the prepared state, score ``test_idx``."""

    def score_dataset(
        self, data: MFDataGrid, train_idx, test_idx, random_state=None, context=None
    ) -> np.ndarray:
        """One-shot convenience combining prepare + fit_score."""
        state = self.prepare(data, random_state=random_state, context=context)
        return self.fit_score(state, train_idx, test_idx, random_state=random_state)


def _as_mfd(data) -> MFDataGrid:
    if isinstance(data, FDataGrid):
        return data.to_multivariate()
    if isinstance(data, MFDataGrid):
        return data
    raise ValidationError(f"data must be (M)FDataGrid, got {type(data).__name__}")


def _robust_standardize(
    train: np.ndarray, test: np.ndarray, clip: float = 10.0
) -> tuple[np.ndarray, np.ndarray]:
    """Median/IQR feature scaling with symmetric clipping.

    Mapped curves can span orders of magnitude along ``t`` (curvature is
    tiny on fast path segments and large near stalls); median/IQR
    scaling plus clipping keeps single coordinates from dominating the
    detectors' distance computations while preserving rank information.
    """
    center = np.median(train, axis=0)
    q75, q25 = np.percentile(train, [75, 25], axis=0)
    scale = q75 - q25
    fallback = np.std(train, axis=0)
    scale = np.where(scale > 1e-12, scale, np.where(fallback > 1e-12, fallback, 1.0))
    train_z = np.clip((train - center) / scale, -clip, clip)
    test_z = np.clip((test - center) / scale, -clip, clip)
    return train_z, test_z


def smooth_dataset(
    data: MFDataGrid,
    n_basis: int | None = None,
    smoothing: float = 1e-4,
    spline_order: int = 4,
    cache=None,
) -> MFDataGrid:
    """Replace raw curves by their B-spline reconstructions on the grid.

    Used to hand the *functional approximations* (paper Sec. 2) to the
    depth baselines, which — like every functional-data method — operate
    on the reconstructed functions rather than the raw noisy samples.
    ``n_basis=None`` uses a size of roughly a third of the measurement
    count, a conservative default for denoising.  ``cache`` optionally
    shares a :class:`~repro.engine.FactorizationCache` across calls.
    """
    data = _as_mfd(data)
    if n_basis is None:
        n_basis = max(spline_order + 2, min(30, data.n_points // 3))
    smoothers = [
        BasisSmoother(
            BSplineBasis(data.domain, n_basis, order=spline_order),
            smoothing=smoothing,
            cache=cache,
        )
        for _ in range(data.n_parameters)
    ]
    layers = [
        smoothers[k].fit_grid(data.parameter(k)).evaluate(data.grid)
        for k in range(data.n_parameters)
    ]
    return MFDataGrid(np.stack(layers, axis=2), data.grid)


class MappedDetectorMethod(Method):
    """The paper's method: geometric mapping + multivariate detector.

    Parameters
    ----------
    detector_name:
        ``"iforest"`` or ``"ocsvm"``.
    mapping:
        Mapping function (default: curvature — the paper's choice).
    n_basis:
        Passed to :class:`GeometricOutlierPipeline` (default LOO-CV sweep).
    tune:
        For OCSVM, tune ν by 5-fold CV on each training set (paper
        Sec. 4.3).  Ignored for iForest.
    nu_candidates:
        Candidate grid when tuning ν.
    standardize:
        Z-score the mapped features using training statistics before
        the detector (recommended: curvature values span orders of
        magnitude along ``t``, which otherwise dominates RBF distances).
    feature_transform:
        Optional pointwise transform of the mapped curves before
        scaling: ``"log1p"`` (default — compresses the heavy right tail
        of non-negative invariants such as the curvature) or ``None``.
    detector_kwargs:
        Extra constructor arguments for the detector.
    """

    def __init__(
        self,
        detector_name: str,
        mapping: MappingFunction | CompositeMapping | None = None,
        n_basis=None,
        smoothing: float = 1e-4,
        tune: bool = True,
        nu_candidates: Sequence[float] = (0.02, 0.05, 0.10, 0.15, 0.20, 0.25),
        standardize: bool = True,
        feature_transform: str | None = "log1p",
        name: str | None = None,
        **detector_kwargs,
    ):
        if detector_name not in ("iforest", "ocsvm"):
            raise ValidationError(
                f"detector_name must be 'iforest' or 'ocsvm', got {detector_name!r}"
            )
        self.detector_name = detector_name
        self.mapping = mapping if mapping is not None else CurvatureMapping()
        self.n_basis = n_basis
        self.smoothing = smoothing
        self.tune = bool(tune)
        self.nu_candidates = tuple(nu_candidates)
        self.standardize = bool(standardize)
        if feature_transform not in (None, "log1p"):
            raise ValidationError(
                f"feature_transform must be None or 'log1p', got {feature_transform!r}"
            )
        self.feature_transform = feature_transform
        self.detector_kwargs = detector_kwargs
        if name is not None:
            self.name = name
        else:
            label = "iFor" if detector_name == "iforest" else "OCSVM"
            map_label = getattr(self.mapping, "name", "map").capitalize()
            # The paper's Figure-3 label abbreviates "Curvature" to "Curvmap".
            suffix = "Curvmap" if map_label == "Curvature" else map_label
            self.name = f"{label}({suffix})"

    def _make_detector(self, nu: float | None, random_state):
        if self.detector_name == "iforest":
            kwargs = dict(self.detector_kwargs)
            kwargs.setdefault("n_estimators", 100)
            seed = check_random_state(random_state).integers(0, 2**31 - 1)
            return IsolationForest(random_state=int(seed), **kwargs)
        kwargs = dict(self.detector_kwargs)
        if nu is not None:
            kwargs["nu"] = nu
        kwargs.setdefault("nu", 0.1)
        kwargs.setdefault("kernel", "rbf")
        return OneClassSVM(**kwargs)

    def prepare(self, data, random_state=None, context=None):
        data = _as_mfd(data)
        # The split-independent part: basis selection + smoothing + mapping
        # for every sample (per-sample operations, as in the paper).  The
        # shared context's cache guarantees one factorization per distinct
        # (basis, grid, λ, penalty order) configuration across the sweep.
        pipeline = GeometricOutlierPipeline(
            detector=self._make_detector(None, random_state or 0),
            mapping=self.mapping,
            n_basis=self.n_basis,
            smoothing=self.smoothing,
            context=context,
        )
        features = pipeline.prepare(data)
        if self.feature_transform == "log1p":
            # log1p(|f|)*sign(f): monotone, sign-preserving tail compression.
            features = np.sign(features) * np.log1p(np.abs(features))
        return {"features": features, "sizes": pipeline.selected_n_basis_}

    def fit_score(self, state, train_idx, test_idx, random_state=None) -> np.ndarray:
        features = state["features"]
        train = features[np.asarray(train_idx)]
        test = features[np.asarray(test_idx)]
        if self.standardize:
            train, test = _robust_standardize(train, test)
        rng = check_random_state(random_state)
        nu = None
        if self.detector_name == "ocsvm" and self.tune:
            nu = tune_nu(train, candidates=self.nu_candidates, random_state=rng).best
        detector = self._make_detector(nu, rng)
        detector.fit(train)
        return detector.score_samples(test)


class FuntaMethod(Method):
    """FUNTA baseline (Kuhnt & Rehage 2016), reference-based scoring.

    Takes the functional approximations as input (``smooth=True``,
    default): crossing-angle statistics on raw noisy samples are
    dominated by the measurement noise's slopes, which is not what the
    baseline's authors intended.

    Scoring runs through the blocked vectorized kernel layer
    (:mod:`repro.depth._kernels`); ``naive=True`` restores the original
    pair loop and ``block_bytes`` tunes the kernel scratch budget.
    """

    def __init__(
        self,
        trim: float = 0.0,
        smooth: bool = True,
        name: str = "FUNTA",
        naive: bool = False,
        block_bytes: int | None = None,
        dtype=None,
    ):
        self.trim = trim
        self.smooth = bool(smooth)
        self.name = name
        self.naive = bool(naive)
        self.block_bytes = block_bytes
        self.dtype = dtype

    def prepare(self, data, random_state=None, context=None):
        data = _as_mfd(data)
        if self.smooth:
            cache = context.cache if isinstance(context, ExecutionContext) else None
            data = smooth_dataset(data, cache=cache)
        return {"data": data}

    def fit_score(self, state, train_idx, test_idx, random_state=None) -> np.ndarray:
        data = state["data"]
        train = data[np.asarray(train_idx)]
        test = data[np.asarray(test_idx)]
        return funta_outlyingness(
            test, reference=train, trim=self.trim,
            naive=self.naive, block_bytes=self.block_bytes, dtype=self.dtype,
        )


class DirOutMethod(Method):
    """Directional outlyingness baseline (Dai & Genton 2019).

    Scoring runs through the batched Dir.out kernels; ``naive=True``
    restores the original per-grid-point loop and ``block_bytes`` tunes
    the kernel scratch budget.
    """

    def __init__(
        self,
        method: str = "total",
        n_directions: int = 200,
        smooth: bool = True,
        name: str = "Dir.out",
        naive: bool = False,
        block_bytes: int | None = None,
        dtype=None,
    ):
        self.method = method
        self.n_directions = n_directions
        self.smooth = bool(smooth)
        self.name = name
        self.naive = bool(naive)
        self.block_bytes = block_bytes
        self.dtype = dtype

    def prepare(self, data, random_state=None, context=None):
        data = _as_mfd(data)
        if self.smooth:
            cache = context.cache if isinstance(context, ExecutionContext) else None
            data = smooth_dataset(data, cache=cache)
        return {"data": data}

    def fit_score(self, state, train_idx, test_idx, random_state=None) -> np.ndarray:
        data = state["data"]
        train = data[np.asarray(train_idx)]
        test = data[np.asarray(test_idx)]
        return dirout_scores(
            test,
            reference=train,
            method=self.method,
            n_directions=self.n_directions,
            random_state=random_state,
            naive=self.naive,
            block_bytes=self.block_bytes,
            dtype=self.dtype,
        )


def default_methods() -> list[Method]:
    """The four methods of the paper's Figure 3.

    Thin wrapper over :data:`repro.plan.DEFAULT_METHOD_SPECS` compiled
    through the plan layer — the specs are the source of truth (the
    OCSVM kernel width is fixed at ``gamma = 0.05`` on the standardized
    mapped features; see the gamma ablation bench for why ``"scale"``
    under-localizes there).
    """
    from repro.plan import DEFAULT_METHOD_SPECS, compile_plan

    return [compile_plan(spec).build() for spec in DEFAULT_METHOD_SPECS]


def make_method(spec: str, **kwargs) -> Method:
    """Factory from a Figure-3-style label (thin wrapper over ``repro.plan``).

    Accepted specs (case-insensitive): ``"Dir.out"``, ``"FUNTA"``,
    ``"iFor(Curvmap)"``, ``"OCSVM(Curvmap)"``, plus ``"iforest"`` /
    ``"ocsvm"`` aliases.  The label and keyword arguments are parsed
    into a :class:`~repro.plan.MethodSpec` and compiled, so an unknown
    label or keyword raises
    :class:`~repro.exceptions.ConfigurationError` naming the valid
    alternatives instead of failing silently deep inside ``prepare``.
    """
    from repro.plan import MethodSpec, compile_plan

    return compile_plan(MethodSpec(kind=spec, params=kwargs)).build()
