"""The paper's contribution: the geometric-aggregation pipeline and methods."""

from repro.core.methods import (
    DirOutMethod,
    FuntaMethod,
    MappedDetectorMethod,
    Method,
    default_methods,
    make_method,
)
from repro.core.ensemble import CompositionReport, OutlierCompositionEnsemble
from repro.core.pipeline import GeometricOutlierPipeline

__all__ = [
    "CompositionReport",
    "DirOutMethod",
    "OutlierCompositionEnsemble",
    "FuntaMethod",
    "GeometricOutlierPipeline",
    "MappedDetectorMethod",
    "Method",
    "default_methods",
    "make_method",
]
