"""Input validation helpers shared across the library.

These mirror the defensive-programming conventions of mature numerical
libraries: every public entry point funnels its array arguments through
one of these helpers so that error messages are uniform and failures
happen early, at the API boundary, rather than deep inside linear
algebra routines.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import GridError, ValidationError

__all__ = [
    "as_float_array",
    "check_matrix",
    "check_vector",
    "check_grid",
    "check_positive",
    "check_in_range",
    "check_int",
    "check_probability",
    "check_same_length",
]


def as_float_array(values, name: str = "array") -> np.ndarray:
    """Convert ``values`` to a float64 ndarray, rejecting NaN and infinity.

    Parameters
    ----------
    values:
        Anything convertible by :func:`numpy.asarray`.
    name:
        Name used in error messages.

    Returns
    -------
    numpy.ndarray
        A float64 array (a copy only when conversion requires one).
    """
    try:
        array = np.asarray(values, dtype=np.float64)
    except (TypeError, ValueError) as exc:
        raise ValidationError(f"{name} is not convertible to a float array: {exc}") from exc
    if array.size and not np.all(np.isfinite(array)):
        raise ValidationError(f"{name} contains NaN or infinite values")
    return array


def check_vector(values, name: str = "vector", min_length: int = 1) -> np.ndarray:
    """Validate a one-dimensional float vector of at least ``min_length`` entries."""
    array = as_float_array(values, name)
    if array.ndim != 1:
        raise ValidationError(f"{name} must be one-dimensional, got shape {array.shape}")
    if array.shape[0] < min_length:
        raise ValidationError(
            f"{name} must have at least {min_length} entries, got {array.shape[0]}"
        )
    return array


def check_matrix(values, name: str = "matrix", min_rows: int = 1, min_cols: int = 1) -> np.ndarray:
    """Validate a two-dimensional float matrix with minimum shape requirements."""
    array = as_float_array(values, name)
    if array.ndim != 2:
        raise ValidationError(f"{name} must be two-dimensional, got shape {array.shape}")
    rows, cols = array.shape
    if rows < min_rows or cols < min_cols:
        raise ValidationError(
            f"{name} must be at least {min_rows}x{min_cols}, got {rows}x{cols}"
        )
    return array


def check_grid(values, name: str = "grid", min_length: int = 2) -> np.ndarray:
    """Validate an evaluation grid: 1-D, strictly increasing, finite.

    Grids index the continuous variable ``t`` of functional data.  Both
    uniform and irregular spacings are accepted; only strict monotonicity
    is required so that quadrature weights and difference quotients are
    well defined.
    """
    array = check_vector(values, name, min_length=min_length)
    if np.any(np.diff(array) <= 0):
        raise GridError(f"{name} must be strictly increasing")
    return array


def check_positive(value: float, name: str = "value", strict: bool = True) -> float:
    """Validate a positive (or non-negative when ``strict=False``) scalar."""
    try:
        number = float(value)
    except (TypeError, ValueError) as exc:
        raise ValidationError(f"{name} must be a real number, got {value!r}") from exc
    if not np.isfinite(number):
        raise ValidationError(f"{name} must be finite, got {number!r}")
    if strict and number <= 0:
        raise ValidationError(f"{name} must be strictly positive, got {number!r}")
    if not strict and number < 0:
        raise ValidationError(f"{name} must be non-negative, got {number!r}")
    return number


def check_in_range(
    value: float,
    low: float,
    high: float,
    name: str = "value",
    inclusive: tuple[bool, bool] = (True, True),
) -> float:
    """Validate that a scalar lies in the interval [low, high] (bounds per ``inclusive``)."""
    try:
        number = float(value)
    except (TypeError, ValueError) as exc:
        raise ValidationError(f"{name} must be a real number, got {value!r}") from exc
    low_ok = number >= low if inclusive[0] else number > low
    high_ok = number <= high if inclusive[1] else number < high
    if not (low_ok and high_ok):
        left = "[" if inclusive[0] else "("
        right = "]" if inclusive[1] else ")"
        raise ValidationError(f"{name} must lie in {left}{low}, {high}{right}, got {number!r}")
    return number


def check_int(value, name: str = "value", minimum: int | None = None) -> int:
    """Validate an integer, optionally with a lower bound."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ValidationError(f"{name} must be an integer, got {value!r}")
    number = int(value)
    if minimum is not None and number < minimum:
        raise ValidationError(f"{name} must be >= {minimum}, got {number}")
    return number


def check_probability(value: float, name: str = "probability") -> float:
    """Validate a scalar in the closed unit interval."""
    return check_in_range(value, 0.0, 1.0, name=name)


def check_same_length(a: Sequence, b: Sequence, name_a: str = "a", name_b: str = "b") -> None:
    """Validate that two sequences have equal length."""
    if len(a) != len(b):
        raise ValidationError(
            f"{name_a} and {name_b} must have the same length, got {len(a)} and {len(b)}"
        )
