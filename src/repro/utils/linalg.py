"""Small linear-algebra helpers used by the smoothing and detector code."""

from __future__ import annotations

import numpy as np
from scipy import linalg as sla

from repro.exceptions import ValidationError

__all__ = [
    "PSDSolver",
    "solve_psd",
    "symmetrize",
    "safe_inverse_sqrt",
    "pairwise_sq_dists",
    "row_blocks",
    "CholeskyDowndateError",
    "cholesky_update",
    "cholesky_downdate",
]


def symmetrize(matrix: np.ndarray) -> np.ndarray:
    """Return the symmetric part ``(A + A.T) / 2`` of a square matrix."""
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValidationError(f"matrix must be square, got shape {matrix.shape}")
    return 0.5 * (matrix + matrix.T)


class PSDSolver:
    """Reusable factorization of a (nearly) positive semi-definite matrix.

    Performs the robust factorization of :func:`solve_psd` exactly once
    — Cholesky with a geometrically escalating diagonal ridge, pseudo-
    inverse as the last resort — and then solves any number of
    right-hand sides by cheap triangular back-substitution.  The engine
    cache (:mod:`repro.engine`) memoizes these objects so the smoothing
    stack pays for each normal-equation factorization at most once.
    """

    def __init__(self, matrix: np.ndarray, jitter: float = 1e-10):
        matrix = symmetrize(matrix)
        self.n = matrix.shape[0]
        scale = max(np.trace(matrix) / matrix.shape[0], 1.0)
        bump = jitter * scale
        self._chol = None
        self._pinv = None
        for _ in range(8):
            try:
                self._chol = sla.cho_factor(matrix, lower=True, check_finite=False)
                break
            except sla.LinAlgError:
                matrix = matrix + bump * np.eye(matrix.shape[0])
                bump *= 10.0
        else:
            self._pinv = np.linalg.pinv(matrix)

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        """Solve ``matrix @ x = rhs`` using the stored factorization."""
        rhs = np.asarray(rhs, dtype=np.float64)
        if self._chol is not None:
            return sla.cho_solve(self._chol, rhs, check_finite=False)
        return self._pinv @ rhs


def solve_psd(matrix: np.ndarray, rhs: np.ndarray, jitter: float = 1e-10) -> np.ndarray:
    """Solve ``matrix @ x = rhs`` for a (nearly) positive semi-definite matrix.

    Tries a Cholesky factorization first; on failure adds a small ridge
    of ``jitter * trace/n`` to the diagonal (escalating geometrically) and
    finally falls back to the pseudo-inverse.  This is the standard
    robust path for penalized least-squares normal equations whose
    penalty matrix is singular (e.g. roughness penalties annihilate
    polynomials of low degree).
    """
    return PSDSolver(matrix, jitter=jitter).solve(rhs)


def safe_inverse_sqrt(values: np.ndarray, floor: float = 1e-12) -> np.ndarray:
    """Elementwise ``1/sqrt(values)`` with a floor guarding against division by zero."""
    values = np.asarray(values, dtype=np.float64)
    return 1.0 / np.sqrt(np.maximum(values, floor))


def row_blocks(
    n_rows: int, bytes_per_row: float, block_bytes: int, minimum: int = 1
) -> list[tuple[int, int]]:
    """Partition ``range(n_rows)`` into contiguous ``(start, stop)`` blocks.

    Each block's scratch footprint, ``rows * bytes_per_row``, stays at or
    below ``block_bytes`` (but never fewer than ``minimum`` rows per
    block, so a single huge row still gets processed).  The memory
    governor of the blocked depth kernels (:mod:`repro.depth._kernels`).
    """
    if n_rows <= 0:
        return []
    if block_bytes <= 0:
        raise ValidationError(f"block_bytes must be positive, got {block_bytes}")
    rows = int(block_bytes // max(bytes_per_row, 1.0))
    rows = max(rows, minimum)
    return [(start, min(start + rows, n_rows)) for start in range(0, n_rows, rows)]


def pairwise_sq_dists(a: np.ndarray, b: np.ndarray | None = None) -> np.ndarray:
    """Squared Euclidean distances between rows of ``a`` and rows of ``b``.

    Uses the expanded form ``|x|^2 + |y|^2 - 2 x.y`` and clips tiny
    negative values arising from floating-point cancellation.
    """
    a = np.asarray(a, dtype=np.float64)
    b = a if b is None else np.asarray(b, dtype=np.float64)
    if a.ndim != 2 or b.ndim != 2:
        raise ValidationError("pairwise_sq_dists expects 2-D arrays")
    if a.shape[1] != b.shape[1]:
        raise ValidationError(
            f"feature dimensions differ: {a.shape[1]} vs {b.shape[1]}"
        )
    a_sq = np.sum(a * a, axis=1)[:, None]
    b_sq = np.sum(b * b, axis=1)[None, :]
    dists = a_sq + b_sq - 2.0 * (a @ b.T)
    np.maximum(dists, 0.0, out=dists)
    return dists


class CholeskyDowndateError(ValidationError):
    """A rank-one downdate would destroy positive definiteness.

    Raised by :func:`cholesky_downdate` when the matrix ``A - x xᵀ`` is
    (numerically) not positive definite; callers fall back to a full
    refactorization.
    """


def cholesky_update(L: np.ndarray, x: np.ndarray, downdate: bool = False) -> np.ndarray:
    """Rank-one update of a lower Cholesky factor: ``A ± x xᵀ``.

    Given ``L`` with ``L Lᵀ = A``, returns the factor of ``A + x xᵀ``
    (or ``A - x xᵀ`` with ``downdate=True``) in O(d²) via Givens-style
    eliminations — versus O(d³/3) for refactorizing from scratch.  The
    streaming feature scorer uses this to track the reference scatter's
    factor across window insertions and evictions.

    ``L`` and ``x`` are not modified; the updated factor is returned.
    """
    L = np.array(L, dtype=np.float64)
    x = np.array(x, dtype=np.float64).ravel()
    d = L.shape[0]
    if L.ndim != 2 or L.shape[1] != d:
        raise ValidationError(f"L must be square lower-triangular, got shape {L.shape}")
    if x.shape[0] != d:
        raise ValidationError(f"x has length {x.shape[0]}, expected {d}")
    sign = -1.0 if downdate else 1.0
    for k in range(d):
        diag = L[k, k]
        r_sq = diag * diag + sign * x[k] * x[k]
        if r_sq <= 0.0 or diag == 0.0:
            raise CholeskyDowndateError(
                "rank-one downdate lost positive definiteness "
                f"(pivot {k}: r^2 = {r_sq:.3e})"
            )
        r = np.sqrt(r_sq)
        c = r / diag
        s = x[k] / diag
        L[k, k] = r
        if k + 1 < d:
            L[k + 1 :, k] = (L[k + 1 :, k] + sign * s * x[k + 1 :]) / c
            x[k + 1 :] = c * x[k + 1 :] - s * L[k + 1 :, k]
    return L


def cholesky_downdate(L: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Rank-one downdate ``A - x xᵀ`` (see :func:`cholesky_update`)."""
    return cholesky_update(L, x, downdate=True)
