"""Random-state handling.

Every stochastic component in the library accepts a ``random_state``
argument following the familiar convention: ``None`` (fresh entropy), an
``int`` seed, or an existing :class:`numpy.random.Generator` which is
passed through untouched so that callers can thread one generator
through a whole experiment for reproducibility.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError

__all__ = ["check_random_state", "spawn_random_states"]


def check_random_state(random_state=None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``random_state``.

    Parameters
    ----------
    random_state:
        ``None``, an integer seed, a :class:`numpy.random.Generator`, or a
        :class:`numpy.random.SeedSequence`.

    Returns
    -------
    numpy.random.Generator
    """
    if random_state is None:
        return np.random.default_rng()
    if isinstance(random_state, np.random.Generator):
        return random_state
    if isinstance(random_state, (int, np.integer)) and not isinstance(random_state, bool):
        return np.random.default_rng(int(random_state))
    if isinstance(random_state, np.random.SeedSequence):
        return np.random.default_rng(random_state)
    raise ValidationError(
        "random_state must be None, an int, a numpy Generator or a SeedSequence, "
        f"got {random_state!r}"
    )


def spawn_random_states(random_state, n: int) -> list[np.random.Generator]:
    """Spawn ``n`` statistically independent child generators.

    Used by the repetition harness so each repetition gets its own
    stream: results are then invariant to parallelisation order.
    """
    if n < 0:
        raise ValidationError(f"n must be non-negative, got {n}")
    if isinstance(random_state, np.random.SeedSequence):
        seed_seq = random_state
    elif isinstance(random_state, (int, np.integer)) and not isinstance(random_state, bool):
        seed_seq = np.random.SeedSequence(int(random_state))
    elif random_state is None:
        seed_seq = np.random.SeedSequence()
    elif isinstance(random_state, np.random.Generator):
        # Derive children from the generator's own stream.
        seed_seq = np.random.SeedSequence(random_state.integers(0, 2**63 - 1, size=4).tolist())
    else:
        raise ValidationError(f"cannot spawn children from random_state {random_state!r}")
    return [np.random.default_rng(child) for child in seed_seq.spawn(n)]
