"""Shared utilities: validation, RNG handling, linear algebra helpers."""

from repro.utils.linalg import pairwise_sq_dists, safe_inverse_sqrt, solve_psd, symmetrize
from repro.utils.random import check_random_state, spawn_random_states
from repro.utils.validation import (
    as_float_array,
    check_grid,
    check_in_range,
    check_int,
    check_matrix,
    check_positive,
    check_probability,
    check_same_length,
    check_vector,
)

__all__ = [
    "as_float_array",
    "check_grid",
    "check_in_range",
    "check_int",
    "check_matrix",
    "check_positive",
    "check_probability",
    "check_random_state",
    "check_same_length",
    "check_vector",
    "pairwise_sq_dists",
    "safe_inverse_sqrt",
    "solve_psd",
    "spawn_random_states",
    "symmetrize",
]
