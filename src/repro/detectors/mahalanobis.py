"""Robust Mahalanobis-distance detector.

Classical parametric baseline: score = Mahalanobis distance to a
(robustly estimated) location/scatter.  Robustness against training
contamination comes from a reweighted estimator: an initial
shrinkage-covariance fit, followed by trimming the fraction of points
with the largest distances and refitting — a lightweight stand-in for
MCD that keeps the library dependency-free.
"""

from __future__ import annotations

import numpy as np

from repro.detectors.base import OutlierDetector
from repro.exceptions import ValidationError
from repro.utils.validation import check_in_range, check_int

__all__ = ["MahalanobisDetector"]


def _shrunk_covariance(X: np.ndarray, shrinkage: float) -> np.ndarray:
    cov = np.cov(X, rowvar=False)
    cov = np.atleast_2d(cov)
    target = np.eye(cov.shape[0]) * np.trace(cov) / cov.shape[0]
    return (1.0 - shrinkage) * cov + shrinkage * target


class MahalanobisDetector(OutlierDetector):
    """Mahalanobis distance with trimmed re-estimation.

    Parameters
    ----------
    trim:
        Fraction of the most distant training points excluded during
        re-estimation rounds (robustness to contamination).
    n_refits:
        Number of trim-and-refit rounds (0 = classical estimator).
    shrinkage:
        Ledoit–Wolf-style convex shrinkage toward a scaled identity,
        keeping the scatter invertible when n < d.
    """

    def __init__(
        self,
        trim: float = 0.1,
        n_refits: int = 2,
        shrinkage: float = 0.1,
        contamination: float | None = None,
    ):
        super().__init__(contamination=contamination)
        self.trim = check_in_range(trim, 0.0, 0.5, "trim", inclusive=(True, False))
        self.n_refits = check_int(n_refits, "n_refits", minimum=0)
        self.shrinkage = check_in_range(shrinkage, 0.0, 1.0, "shrinkage")
        self.location_: np.ndarray | None = None
        self.precision_: np.ndarray | None = None

    def _estimate(self, X: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        location = X.mean(axis=0)
        cov = _shrunk_covariance(X, self.shrinkage)
        try:
            precision = np.linalg.inv(cov)
        except np.linalg.LinAlgError:
            precision = np.linalg.pinv(cov)
        return location, precision

    def _distances(self, X: np.ndarray, location: np.ndarray, precision: np.ndarray) -> np.ndarray:
        centered = X - location
        return np.sqrt(np.maximum(np.sum((centered @ precision) * centered, axis=1), 0.0))

    def _fit(self, X: np.ndarray) -> None:
        if X.shape[0] < 3:
            raise ValidationError("MahalanobisDetector needs at least 3 training rows")
        location, precision = self._estimate(X)
        for _ in range(self.n_refits):
            if self.trim <= 0:
                break
            dists = self._distances(X, location, precision)
            keep = dists <= np.quantile(dists, 1.0 - self.trim)
            if keep.sum() < 3:
                break
            location, precision = self._estimate(X[keep])
        self.location_ = location
        self.precision_ = precision

    def _score(self, X: np.ndarray) -> np.ndarray:
        return self._distances(X, self.location_, self.precision_)

    def _export_config(self) -> dict:
        config = super()._export_config()
        config["trim"] = self.trim
        config["n_refits"] = self.n_refits
        config["shrinkage"] = self.shrinkage
        return config

    def _export_fitted(self) -> dict:
        return {"location": self.location_, "precision": self.precision_}

    def _import_fitted(self, state: dict) -> None:
        self.location_ = np.asarray(state["location"], dtype=np.float64)
        self.precision_ = np.asarray(state["precision"], dtype=np.float64)
