"""One-Class SVM (Schölkopf et al., Neural Computation 2001) — from scratch.

The ν-formulation estimates the support of the training distribution by
separating the data from the origin in feature space.  Its dual is the
quadratic program::

    minimize    (1/2) alpha' Q alpha
    subject to  0 <= alpha_i <= 1 / (nu * n),   sum_i alpha_i = 1

with ``Q_ij = k(x_i, x_j)``.  The decision function is
``f(x) = sum_i alpha_i k(x_i, x) - rho`` with ``f(x) < 0`` flagging
outliers; ν upper-bounds the fraction of training outliers and
lower-bounds the fraction of support vectors (the ν-property, asserted
in our tests).

The solver is a Sequential Minimal Optimization (SMO) loop with
maximal-violating-pair working-set selection, exactly the strategy of
LIBSVM for this problem class: at each step the pair

    i = argmin { grad_i : alpha_i < C },   j = argmax { grad_j : alpha_j > 0 }

is updated analytically while preserving both constraints.
"""

from __future__ import annotations

import numpy as np

from repro.detectors.base import OutlierDetector
from repro.detectors.kernels import make_kernel, resolve_gamma
from repro.exceptions import ConvergenceError, ValidationError
from repro.utils.validation import check_in_range, check_int, check_positive

__all__ = ["OneClassSVM", "smo_solve"]


def smo_solve(
    Q: np.ndarray,
    upper_bound: float,
    tol: float = 1e-6,
    max_iter: int = 100_000,
) -> tuple[np.ndarray, float, int]:
    """Solve ``min 1/2 a'Qa`` s.t. ``sum a = 1, 0 <= a <= upper_bound``.

    Parameters
    ----------
    Q:
        Symmetric PSD kernel matrix ``(n, n)``.
    upper_bound:
        The box constraint ``C = 1/(nu n)``; must satisfy
        ``n * upper_bound >= 1`` for feasibility.
    tol:
        KKT violation tolerance (duality-gap style stopping rule).
    max_iter:
        Hard cap on SMO iterations.

    Returns
    -------
    (alpha, rho, n_iter):
        Optimal multipliers, offset ``rho``, iterations used.
    """
    n = Q.shape[0]
    if Q.shape != (n, n):
        raise ValidationError(f"Q must be square, got shape {Q.shape}")
    C = float(upper_bound)
    if n * C < 1.0 - 1e-12:
        raise ValidationError(
            f"infeasible problem: n * upper_bound = {n * C:.6g} < 1 "
            "(nu must satisfy nu <= 1)"
        )

    # Feasible start: fill the first floor(1/C) coordinates at the bound,
    # the remainder goes to the next coordinate (Schölkopf's suggestion).
    alpha = np.zeros(n)
    n_full = int(np.floor(1.0 / C + 1e-12))
    alpha[:n_full] = C
    remainder = 1.0 - n_full * C
    if remainder > 1e-15 and n_full < n:
        alpha[n_full] = remainder

    grad = Q @ alpha
    eps = 1e-12
    iteration = 0
    for iteration in range(1, max_iter + 1):
        can_up = alpha < C - eps
        can_down = alpha > eps
        if not can_up.any() or not can_down.any():
            break
        grad_up = np.where(can_up, grad, np.inf)
        grad_down = np.where(can_down, grad, -np.inf)
        i = int(np.argmin(grad_up))
        j = int(np.argmax(grad_down))
        violation = grad[j] - grad[i]
        if violation <= tol:
            break
        curvature = Q[i, i] + Q[j, j] - 2.0 * Q[i, j]
        if curvature <= eps:
            # Flat direction: move as far as the box allows.
            step = min(C - alpha[i], alpha[j])
        else:
            step = min(violation / curvature, C - alpha[i], alpha[j])
        if step <= eps:
            break
        alpha[i] += step
        alpha[j] -= step
        grad += step * (Q[:, i] - Q[:, j])
    else:
        raise ConvergenceError(
            f"SMO did not converge within {max_iter} iterations "
            f"(violation {violation:.3g} > tol {tol:.3g})"
        )

    # Offset rho: average gradient over free support vectors; if none are
    # free, take the midpoint of the bounding gradients (LIBSVM rule).
    free = (alpha > eps) & (alpha < C - eps)
    if free.any():
        rho = float(np.mean(grad[free]))
    else:
        upper = grad[alpha <= eps]
        lower = grad[alpha >= C - eps]
        hi = float(np.min(upper)) if upper.size else float(np.max(grad))
        lo = float(np.max(lower)) if lower.size else float(np.min(grad))
        rho = 0.5 * (hi + lo)
    return alpha, rho, iteration


class OneClassSVM(OutlierDetector):
    """ν One-Class SVM with an SMO dual solver.

    Parameters
    ----------
    nu:
        The ν parameter in (0, 1]: an upper bound on the training
        outlier fraction and lower bound on the support-vector fraction.
        The paper tunes it by 5-fold cross-validation (Sec. 4.3).
    kernel:
        ``'rbf'`` (default), ``'linear'``, ``'poly'`` or ``'sigmoid'``.
    gamma:
        Kernel width: ``'scale'`` (default), ``'auto'`` or a float.
    degree, coef0:
        Polynomial / sigmoid kernel parameters.
    tol, max_iter:
        SMO stopping controls.
    """

    def __init__(
        self,
        nu: float = 0.1,
        kernel: str = "rbf",
        gamma="scale",
        degree: int = 3,
        coef0: float = 0.0,
        tol: float = 1e-6,
        max_iter: int = 100_000,
        contamination: float | None = None,
    ):
        super().__init__(contamination=contamination)
        self.nu = check_in_range(nu, 0.0, 1.0, "nu", inclusive=(False, True))
        self.kernel = kernel
        self.gamma = gamma
        self.degree = check_int(degree, "degree", minimum=1)
        self.coef0 = float(coef0)
        self.tol = check_positive(tol, "tol")
        self.max_iter = check_int(max_iter, "max_iter", minimum=1)
        self.alpha_: np.ndarray | None = None
        self.rho_: float | None = None
        self.support_: np.ndarray | None = None
        self.support_vectors_: np.ndarray | None = None
        self.dual_coef_: np.ndarray | None = None
        self.n_iter_: int | None = None
        self._kernel_fn = None

    def _fit(self, X: np.ndarray) -> None:
        n = X.shape[0]
        if n < 2:
            raise ValidationError("OneClassSVM needs at least 2 training rows")
        gamma_value = resolve_gamma(self.gamma, X)
        self._gamma_value = gamma_value
        self._kernel_fn = make_kernel(self.kernel, gamma_value, self.degree, self.coef0)
        Q = self._kernel_fn(X, X)
        upper = 1.0 / (self.nu * n)
        alpha, rho, n_iter = smo_solve(Q, upper, tol=self.tol, max_iter=self.max_iter)
        self.alpha_ = alpha
        self.rho_ = rho
        self.n_iter_ = n_iter
        sv_mask = alpha > 1e-10
        self.support_ = np.nonzero(sv_mask)[0]
        self.support_vectors_ = X[sv_mask]
        self.dual_coef_ = alpha[sv_mask]

    def raw_decision(self, X) -> np.ndarray:
        """Schölkopf's signed decision ``f(x)`` (negative = outlier)."""
        X = self._check_fitted_input(X)
        gram = self._kernel_fn(X, self.support_vectors_)
        return gram @ self.dual_coef_ - self.rho_

    def _score(self, X: np.ndarray) -> np.ndarray:
        # Outlyingness convention: higher = more anomalous.
        gram = self._kernel_fn(X, self.support_vectors_)
        return self.rho_ - gram @ self.dual_coef_

    def _export_config(self) -> dict:
        config = super()._export_config()
        config.update(
            nu=self.nu,
            kernel=self.kernel,
            gamma=self.gamma if isinstance(self.gamma, str) else float(self.gamma),
            degree=self.degree,
            coef0=self.coef0,
            tol=self.tol,
            max_iter=self.max_iter,
        )
        return config

    def _export_fitted(self) -> dict:
        return {
            # The resolved numeric gamma, not the 'scale'/'auto' spec: the
            # heuristics depend on the training matrix, which is not kept.
            "gamma_value": float(self._gamma_value),
            "rho": float(self.rho_),
            "n_iter": int(self.n_iter_),
            "alpha": self.alpha_,
            "support": self.support_,
            "support_vectors": self.support_vectors_,
            "dual_coef": self.dual_coef_,
        }

    def _import_fitted(self, state: dict) -> None:
        self._gamma_value = float(state["gamma_value"])
        self._kernel_fn = make_kernel(self.kernel, self._gamma_value, self.degree, self.coef0)
        self.rho_ = float(state["rho"])
        self.n_iter_ = int(state["n_iter"])
        self.alpha_ = np.asarray(state["alpha"], dtype=np.float64)
        self.support_ = np.asarray(state["support"], dtype=np.int64)
        self.support_vectors_ = np.asarray(state["support_vectors"], dtype=np.float64)
        self.dual_coef_ = np.asarray(state["dual_coef"], dtype=np.float64)

    def _natural_threshold(self) -> float:
        # f(x) = 0 boundary, i.e. score 0 on the flipped scale.
        return 0.0
