"""Kernel functions for the One-Class SVM.

Each kernel maps two row-matrices to their Gram matrix.  ``gamma`` may
be the string ``"scale"`` (scikit-learn-compatible heuristic
``1 / (d * var(X))``, resolved at fit time) or a positive float.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.linalg import pairwise_sq_dists
from repro.utils.validation import check_positive

__all__ = ["rbf_kernel", "linear_kernel", "polynomial_kernel", "sigmoid_kernel", "make_kernel", "resolve_gamma"]


def rbf_kernel(a: np.ndarray, b: np.ndarray, gamma: float) -> np.ndarray:
    """Gaussian kernel ``exp(-gamma |x - y|^2)``."""
    gamma = check_positive(gamma, "gamma")
    return np.exp(-gamma * pairwise_sq_dists(a, b))


def linear_kernel(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Plain inner product ``<x, y>``."""
    return np.asarray(a) @ np.asarray(b).T


def polynomial_kernel(
    a: np.ndarray, b: np.ndarray, gamma: float, degree: int = 3, coef0: float = 1.0
) -> np.ndarray:
    """Polynomial kernel ``(gamma <x, y> + coef0)^degree``."""
    gamma = check_positive(gamma, "gamma")
    return (gamma * (np.asarray(a) @ np.asarray(b).T) + coef0) ** degree


def sigmoid_kernel(a: np.ndarray, b: np.ndarray, gamma: float, coef0: float = 0.0) -> np.ndarray:
    """Sigmoid kernel ``tanh(gamma <x, y> + coef0)`` (not PSD in general)."""
    gamma = check_positive(gamma, "gamma")
    return np.tanh(gamma * (np.asarray(a) @ np.asarray(b).T) + coef0)


def resolve_gamma(gamma, X: np.ndarray) -> float:
    """Resolve a gamma specification against training data.

    ``"scale"`` → ``1 / (n_features * var(X))`` (variance over all
    entries), ``"auto"`` → ``1 / n_features``, a positive float is
    passed through.
    """
    if gamma == "scale":
        var = float(np.var(X))
        if var <= 0:
            var = 1.0
        return 1.0 / (X.shape[1] * var)
    if gamma == "auto":
        return 1.0 / X.shape[1]
    return check_positive(gamma, "gamma")


def make_kernel(name: str, gamma: float, degree: int = 3, coef0: float = 0.0) -> Callable:
    """Build a two-argument kernel callable from a kernel name."""
    if name == "rbf":
        return lambda a, b: rbf_kernel(a, b, gamma)
    if name == "linear":
        return linear_kernel
    if name == "poly":
        return lambda a, b: polynomial_kernel(a, b, gamma, degree=degree, coef0=coef0 or 1.0)
    if name == "sigmoid":
        return lambda a, b: sigmoid_kernel(a, b, gamma, coef0=coef0)
    raise ValidationError(
        f"unknown kernel {name!r}; choose from 'rbf', 'linear', 'poly', 'sigmoid'"
    )
