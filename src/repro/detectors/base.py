"""Common interface for the multivariate outlier detectors.

All detectors follow the same contract:

* :meth:`fit(X)` learns the model from a (possibly contaminated)
  training matrix — unsupervised, as in the paper (Sec. 4.2);
* :meth:`score_samples(X)` returns an **outlyingness score per row,
  higher = more anomalous** (the orientation used for AUC in the
  experiments; note this is the opposite of scikit-learn's convention);
* :meth:`predict(X)` thresholds the scores into ``+1`` (inlier) /
  ``-1`` (outlier) using each algorithm's natural threshold or the
  ``contamination``-quantile of the training scores.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.exceptions import NotFittedError, ValidationError
from repro.utils.validation import check_matrix

__all__ = ["OutlierDetector"]


class OutlierDetector(abc.ABC):
    """Abstract unsupervised outlier detector on vector data."""

    def __init__(self, contamination: float | None = None):
        if contamination is not None:
            if not 0.0 < contamination < 0.5:
                raise ValidationError(
                    f"contamination must be in (0, 0.5), got {contamination!r}"
                )
        self.contamination = contamination
        self._fitted = False
        self.threshold_: float | None = None
        self.n_features_: int | None = None

    # ------------------------------------------------------------------ hooks
    @abc.abstractmethod
    def _fit(self, X: np.ndarray) -> None:
        """Learn model state from the validated training matrix."""

    @abc.abstractmethod
    def _score(self, X: np.ndarray) -> np.ndarray:
        """Outlyingness scores (higher = more anomalous) for validated rows."""

    def _natural_threshold(self) -> float:
        """Algorithm-specific default decision threshold on the score scale."""
        raise NotImplementedError

    # ------------------------------------------------------------------ API
    def fit(self, X) -> "OutlierDetector":
        """Fit the detector on training rows (contaminated training allowed)."""
        X = check_matrix(X, "X")
        self._fit(X)
        self.n_features_ = X.shape[1]
        self._fitted = True
        if self.contamination is not None:
            train_scores = self._score(X)
            self.threshold_ = float(
                np.quantile(train_scores, 1.0 - self.contamination)
            )
        else:
            try:
                self.threshold_ = float(self._natural_threshold())
            except NotImplementedError:
                self.threshold_ = None
        return self

    def _check_fitted_input(self, X) -> np.ndarray:
        if not self._fitted:
            raise NotFittedError(f"{type(self).__name__} must be fitted before scoring")
        X = check_matrix(X, "X")
        if X.shape[1] != self.n_features_:
            raise ValidationError(
                f"X has {X.shape[1]} features but the detector was fitted with "
                f"{self.n_features_}"
            )
        return X

    def score_samples(self, X) -> np.ndarray:
        """Outlyingness score per row — **higher means more anomalous**."""
        return self._score(self._check_fitted_input(X))

    def decision_function(self, X) -> np.ndarray:
        """Signed inlier-ness: ``threshold - score`` (positive = inlier)."""
        scores = self.score_samples(X)
        if self.threshold_ is None:
            raise NotFittedError(
                f"{type(self).__name__} has no decision threshold; "
                "set contamination to enable predict/decision_function"
            )
        return self.threshold_ - scores

    def predict(self, X) -> np.ndarray:
        """Label rows ``+1`` (inlier) or ``-1`` (outlier)."""
        return np.where(self.decision_function(X) >= 0.0, 1, -1)

    def fit_predict(self, X) -> np.ndarray:
        """Fit on ``X`` and label the same rows."""
        return self.fit(X).predict(X)
