"""Common interface for the multivariate outlier detectors.

All detectors follow the same contract:

* :meth:`fit(X)` learns the model from a (possibly contaminated)
  training matrix — unsupervised, as in the paper (Sec. 4.2);
* :meth:`score_samples(X)` returns an **outlyingness score per row,
  higher = more anomalous** (the orientation used for AUC in the
  experiments; note this is the opposite of scikit-learn's convention);
* :meth:`predict(X)` thresholds the scores into ``+1`` (inlier) /
  ``-1`` (outlier) using each algorithm's natural threshold or the
  ``contamination``-quantile of the training scores.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.exceptions import NotFittedError, ValidationError
from repro.utils.validation import check_matrix

__all__ = ["OutlierDetector"]


class OutlierDetector(abc.ABC):
    """Abstract unsupervised outlier detector on vector data."""

    def __init__(self, contamination: float | None = None):
        if contamination is not None:
            if not 0.0 < contamination < 0.5:
                raise ValidationError(
                    f"contamination must be in (0, 0.5), got {contamination!r}"
                )
        self.contamination = contamination
        self._fitted = False
        self.threshold_: float | None = None
        self.n_features_: int | None = None

    # ------------------------------------------------------------------ hooks
    @abc.abstractmethod
    def _fit(self, X: np.ndarray) -> None:
        """Learn model state from the validated training matrix."""

    @abc.abstractmethod
    def _score(self, X: np.ndarray) -> np.ndarray:
        """Outlyingness scores (higher = more anomalous) for validated rows."""

    def _natural_threshold(self) -> float:
        """Algorithm-specific default decision threshold on the score scale."""
        raise NotImplementedError

    # ------------------------------------------------------------------ API
    def fit(self, X) -> "OutlierDetector":
        """Fit the detector on training rows (contaminated training allowed)."""
        X = check_matrix(X, "X")
        self._fit(X)
        self.n_features_ = X.shape[1]
        self._fitted = True
        if self.contamination is not None:
            train_scores = self._score(X)
            self.threshold_ = float(
                np.quantile(train_scores, 1.0 - self.contamination)
            )
        else:
            try:
                self.threshold_ = float(self._natural_threshold())
            except NotImplementedError:
                self.threshold_ = None
        return self

    def _check_fitted_input(self, X) -> np.ndarray:
        if not self._fitted:
            raise NotFittedError(f"{type(self).__name__} must be fitted before scoring")
        X = check_matrix(X, "X")
        if X.shape[1] != self.n_features_:
            raise ValidationError(
                f"X has {X.shape[1]} features but the detector was fitted with "
                f"{self.n_features_}"
            )
        return X

    def score_samples(self, X) -> np.ndarray:
        """Outlyingness score per row — **higher means more anomalous**."""
        return self._score(self._check_fitted_input(X))

    def decision_function(self, X) -> np.ndarray:
        """Signed inlier-ness: ``threshold - score`` (positive = inlier)."""
        scores = self.score_samples(X)
        if self.threshold_ is None:
            raise NotFittedError(
                f"{type(self).__name__} has no decision threshold; "
                "set contamination to enable predict/decision_function"
            )
        return self.threshold_ - scores

    def predict(self, X) -> np.ndarray:
        """Label rows ``+1`` (inlier) or ``-1`` (outlier)."""
        return np.where(self.decision_function(X) >= 0.0, 1, -1)

    def fit_predict(self, X) -> np.ndarray:
        """Fit on ``X`` and label the same rows."""
        return self.fit(X).predict(X)

    # ------------------------------------------------------------------ state
    def _export_config(self) -> dict:
        """JSON-able constructor kwargs that recreate this detector unfitted.

        Subclasses extend the base dict with their own hyper-parameters;
        every key must be accepted by ``__init__``.
        """
        return {"contamination": self.contamination}

    def _export_fitted(self) -> dict:
        """Subclass hook: the fitted model state as a flat dict.

        Values must be NumPy arrays or JSON-able scalars — nothing that
        would require pickling (no callables, no nested objects).  The
        inverse is :meth:`_import_fitted`.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support state export"
        )

    def _import_fitted(self, state: dict) -> None:
        """Subclass hook: install the dict produced by :meth:`_export_fitted`."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support state import"
        )

    def export_state(self) -> dict:
        """Full state of a fitted detector as arrays + JSON-able scalars.

        Returns ``{"type", "config", "threshold", "n_features", "fitted"}``
        where ``fitted`` is the subclass's :meth:`_export_fitted` dict.
        The result round-trips through :meth:`from_state` with
        bit-identical scores and contains no pickled code, so it can be
        written to ``.npz`` + JSON by :mod:`repro.serving.persist`.
        """
        if not self._fitted:
            raise NotFittedError(
                f"{type(self).__name__} must be fitted before exporting state"
            )
        return {
            "type": type(self).__name__,
            "config": self._export_config(),
            "threshold": self.threshold_,
            "n_features": self.n_features_,
            "fitted": self._export_fitted(),
        }

    @classmethod
    def from_state(cls, state: dict) -> "OutlierDetector":
        """Rebuild a fitted detector from :meth:`export_state` output.

        Call on the concrete class named by ``state["type"]`` (or use
        :func:`repro.detectors.detector_from_state`, which dispatches).
        """
        if not isinstance(state, dict) or "config" not in state or "fitted" not in state:
            raise ValidationError(
                f"detector state must be a dict with 'config' and 'fitted' keys, "
                f"got {type(state).__name__}"
            )
        declared = state.get("type")
        if declared is not None and declared != cls.__name__:
            raise ValidationError(
                f"state was exported from {declared!r} but is being restored "
                f"as {cls.__name__!r}"
            )
        detector = cls(**state["config"])
        detector._import_fitted(state["fitted"])
        threshold = state.get("threshold")
        detector.threshold_ = None if threshold is None else float(threshold)
        n_features = state.get("n_features")
        detector.n_features_ = None if n_features is None else int(n_features)
        detector._fitted = True
        return detector
