"""k-nearest-neighbour distance detector (Ramaswamy et al. 2000 style).

A simple, strong baseline beyond the paper's two detectors: the
outlyingness of a point is its distance to its k-th nearest training
neighbour (or the average of the k nearest distances).  Included as an
extension detector for the ablation benches.
"""

from __future__ import annotations

import numpy as np

from repro.detectors.base import OutlierDetector
from repro.exceptions import ValidationError
from repro.utils.linalg import pairwise_sq_dists
from repro.utils.validation import check_int

__all__ = ["KNNDetector"]


class KNNDetector(OutlierDetector):
    """Distance-to-k-th-neighbour outlier detector.

    Parameters
    ----------
    n_neighbors:
        The ``k`` in k-NN.
    aggregation:
        ``"kth"`` (distance to the k-th neighbour, default) or
        ``"mean"`` (average distance to the k nearest).
    """

    def __init__(
        self,
        n_neighbors: int = 5,
        aggregation: str = "kth",
        contamination: float | None = None,
    ):
        super().__init__(contamination=contamination)
        self.n_neighbors = check_int(n_neighbors, "n_neighbors", minimum=1)
        if aggregation not in ("kth", "mean"):
            raise ValidationError(
                f"aggregation must be 'kth' or 'mean', got {aggregation!r}"
            )
        self.aggregation = aggregation
        self._train: np.ndarray | None = None

    def _fit(self, X: np.ndarray) -> None:
        if X.shape[0] <= self.n_neighbors:
            raise ValidationError(
                f"need more than n_neighbors={self.n_neighbors} training rows, "
                f"got {X.shape[0]}"
            )
        self._train = X.copy()

    def _neighbor_distances(self, X: np.ndarray, exclude_self: bool) -> np.ndarray:
        dists = np.sqrt(pairwise_sq_dists(X, self._train))
        k = self.n_neighbors
        # Only the k (+1 when dropping the zero self-distance) smallest
        # entries matter: partition-select them in O(n) per row, then
        # sort just that prefix.  The selected multiset equals the full
        # sort's prefix, so kth/mean semantics are bit-identical.
        if exclude_self:
            # When scoring training rows, ignore the zero self-distance.
            prefix = np.partition(dists, k, axis=1)[:, : k + 1]
            dists = np.sort(prefix, axis=1)[:, 1:]
        else:
            prefix = np.partition(dists, k - 1, axis=1)[:, :k]
            dists = np.sort(prefix, axis=1)
        return dists

    def _score(self, X: np.ndarray) -> np.ndarray:
        exclude_self = X.shape == self._train.shape and np.array_equal(X, self._train)
        dists = self._neighbor_distances(X, exclude_self)
        if self.aggregation == "kth":
            return dists[:, -1]
        return dists.mean(axis=1)

    def _export_config(self) -> dict:
        config = super()._export_config()
        config["n_neighbors"] = self.n_neighbors
        config["aggregation"] = self.aggregation
        return config

    def _export_fitted(self) -> dict:
        return {"train": self._train}

    def _import_fitted(self, state: dict) -> None:
        self._train = np.asarray(state["train"], dtype=np.float64)
