"""Local Outlier Factor (Breunig et al., SIGMOD 2000) — from scratch.

LOF compares the local density of a point to the local densities of its
neighbours:

* ``k-distance(p)``: distance to the k-th nearest neighbour;
* ``reach-dist_k(p, o) = max(k-distance(o), d(p, o))``;
* ``lrd(p)``: inverse mean reachability distance of p from its k-NN;
* ``LOF(p)``: mean ratio ``lrd(o) / lrd(p)`` over neighbours o.

LOF ≈ 1 for points inside a homogeneous cluster, ≫ 1 for outliers —
already the "higher = more anomalous" orientation of our detector API.
"""

from __future__ import annotations

import numpy as np

from repro.detectors.base import OutlierDetector
from repro.exceptions import ValidationError
from repro.utils.linalg import pairwise_sq_dists
from repro.utils.validation import check_int

__all__ = ["LocalOutlierFactor"]


def _k_smallest(dists: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
    """Indices and distances of each row's k nearest columns, ascending.

    ``argpartition`` selects the k smallest in O(n) per row; only that
    prefix is then sorted — the distance values are identical to a full
    ``argsort`` prefix.
    """
    part = np.argpartition(dists, k - 1, axis=1)[:, :k]
    prefix = np.take_along_axis(dists, part, axis=1)
    inner = np.argsort(prefix, axis=1)
    neighbors = np.take_along_axis(part, inner, axis=1)
    neighbor_dists = np.take_along_axis(prefix, inner, axis=1)
    return neighbors, neighbor_dists


class LocalOutlierFactor(OutlierDetector):
    """LOF detector supporting out-of-sample scoring.

    Parameters
    ----------
    n_neighbors:
        Neighbourhood size ``k`` (original paper suggests 10–50).
    """

    def __init__(self, n_neighbors: int = 20, contamination: float | None = None):
        super().__init__(contamination=contamination)
        self.n_neighbors = check_int(n_neighbors, "n_neighbors", minimum=1)
        self._train: np.ndarray | None = None
        self._k_distance: np.ndarray | None = None
        self._lrd: np.ndarray | None = None

    def _fit(self, X: np.ndarray) -> None:
        n = X.shape[0]
        if n <= self.n_neighbors:
            raise ValidationError(
                f"need more than n_neighbors={self.n_neighbors} training rows, got {n}"
            )
        self._train = X.copy()
        k = self.n_neighbors
        dists = np.sqrt(pairwise_sq_dists(X, X))
        np.fill_diagonal(dists, np.inf)
        neighbors, neighbor_dists = _k_smallest(dists, k)
        self._k_distance = neighbor_dists[:, -1]
        reach = np.maximum(self._k_distance[neighbors], neighbor_dists)
        self._lrd = 1.0 / np.maximum(reach.mean(axis=1), 1e-12)
        self._train_neighbors = neighbors

    def _score(self, X: np.ndarray) -> np.ndarray:
        k = self.n_neighbors
        if X.shape == self._train.shape and np.array_equal(X, self._train):
            neighbors = self._train_neighbors
            lrd_query = self._lrd
        else:
            dists = np.sqrt(pairwise_sq_dists(X, self._train))
            neighbors, neighbor_dists = _k_smallest(dists, k)
            reach = np.maximum(self._k_distance[neighbors], neighbor_dists)
            lrd_query = 1.0 / np.maximum(reach.mean(axis=1), 1e-12)
        return self._lrd[neighbors].mean(axis=1) / np.maximum(lrd_query, 1e-12)

    def _natural_threshold(self) -> float:
        # LOF ~ 1 means "as dense as the neighbours"; the customary
        # decision boundary adds modest slack.
        return 1.5

    def _export_config(self) -> dict:
        config = super()._export_config()
        config["n_neighbors"] = self.n_neighbors
        return config

    def _export_fitted(self) -> dict:
        return {
            "train": self._train,
            "k_distance": self._k_distance,
            "lrd": self._lrd,
            "train_neighbors": self._train_neighbors,
        }

    def _import_fitted(self, state: dict) -> None:
        self._train = np.asarray(state["train"], dtype=np.float64)
        self._k_distance = np.asarray(state["k_distance"], dtype=np.float64)
        self._lrd = np.asarray(state["lrd"], dtype=np.float64)
        self._train_neighbors = np.asarray(state["train_neighbors"], dtype=np.int64)
