"""Learning an outlyingness threshold from labelled scores (paper Sec. 4.2).

The detection methods output a *score* per sample; deployment needs a
*decision*.  The paper notes that when some labels are available, "the
labels can be combined with their corresponding outlyingness scores to
learn an outlyingness threshold that can best discriminate outliers
from inliers.  Such a threshold can be learned from the ROC as well as
an imbalanced classification algorithm … in a one dimensional manner."

This module implements both routes:

* :func:`threshold_from_roc` — the ROC route: pick the threshold
  maximizing Youden's J statistic (TPR − FPR), the standard optimal
  operating point of the ROC curve;
* :func:`threshold_max_f1` — maximize F1 over all score cut points
  (the imbalanced-classification view where precision/recall matter);
* :func:`threshold_from_quantile` — the unsupervised fallback: flag the
  top ``contamination`` fraction of *unlabelled* scores.

For unbounded score streams, :class:`StreamingQuantileThreshold` keeps
the quantile route online: it holds the last ``capacity`` scores in a
ring buffer and re-reads the threshold after every
:meth:`~StreamingQuantileThreshold.update`.  The batch
:func:`threshold_from_quantile` delegates to it (one full-window
update), so the batch and streaming paths share a single quantile
implementation and agree bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.evaluation.metrics import f1_at_threshold, roc_curve
from repro.exceptions import ValidationError
from repro.utils.validation import as_float_array, check_in_range, check_int

__all__ = [
    "LearnedThreshold",
    "StreamingQuantileThreshold",
    "threshold_from_roc",
    "threshold_max_f1",
    "threshold_from_quantile",
]


@dataclass(frozen=True)
class LearnedThreshold:
    """A decision threshold on the outlyingness-score scale.

    Attributes
    ----------
    value:
        The cut point: samples with ``score > value`` are flagged.
    criterion:
        Name of the selection criterion.
    objective:
        The criterion's value at the chosen threshold (e.g. Youden's J).
    """

    value: float
    criterion: str
    objective: float

    def predict(self, scores) -> np.ndarray:
        """Label scores: ``-1`` outlier (score above threshold), ``+1`` inlier."""
        scores = as_float_array(scores, "scores")
        return np.where(scores > self.value, -1, 1)


def _midpoint_thresholds(scores: np.ndarray) -> np.ndarray:
    """Candidate cut points: midpoints between consecutive distinct scores."""
    distinct = np.unique(scores)
    if distinct.shape[0] < 2:
        return distinct
    return 0.5 * (distinct[:-1] + distinct[1:])


def threshold_from_roc(scores, labels) -> LearnedThreshold:
    """Threshold at the ROC's Youden-optimal operating point.

    Maximizes ``J = TPR - FPR``; the returned threshold is placed at the
    midpoint between the boundary scores so that unseen scores equal to
    a training score are classified consistently.
    """
    fpr, tpr, thresholds = roc_curve(scores, labels)
    j_statistic = tpr - fpr
    best = int(np.argmax(j_statistic))
    if best == 0:
        # Degenerate: the empty-positive corner is optimal; fall back to
        # the largest finite threshold.
        best = 1
    # thresholds[best] is the lowest score still flagged; nudge just below.
    cut = float(thresholds[best])
    scores = as_float_array(scores, "scores")
    lower = scores[scores < cut]
    value = 0.5 * (cut + float(lower.max())) if lower.size else cut - 1e-12
    return LearnedThreshold(
        value=value, criterion="youden", objective=float(j_statistic[best])
    )


def threshold_max_f1(scores, labels) -> LearnedThreshold:
    """Threshold maximizing F1 over all midpoint cut candidates."""
    scores = as_float_array(scores, "scores")
    if np.unique(scores).size < 2:
        raise ValidationError("cannot learn a threshold from a single distinct score")
    candidates = _midpoint_thresholds(scores)
    best_value, best_f1 = None, -1.0
    for candidate in candidates:
        f1 = f1_at_threshold(scores, labels, candidate)
        if f1 > best_f1:
            best_value, best_f1 = float(candidate), f1
    return LearnedThreshold(value=best_value, criterion="f1", objective=best_f1)


class StreamingQuantileThreshold:
    """Online quantile threshold over the last ``capacity`` scores.

    The streaming counterpart of :func:`threshold_from_quantile`: a
    preallocated ring buffer holds the most recent scores, and the
    threshold is the ``1 - contamination`` quantile of the buffered
    window — so the decision boundary adapts as the score distribution
    moves, with bounded memory.  :func:`threshold_from_quantile`
    delegates here with ``capacity = len(scores)``, which makes the two
    paths bit-identical on a full window (same :func:`numpy.quantile`
    over the same multiset).

    Parameters
    ----------
    contamination:
        Expected outlier fraction in ``(0, 0.5)``; the threshold sits at
        the ``1 - contamination`` score quantile.
    capacity:
        Ring-buffer length (how much score history backs the quantile).
    """

    def __init__(self, contamination: float, capacity: int = 1024):
        self.contamination = check_in_range(
            contamination, 0.0, 0.5, "contamination", inclusive=(False, False)
        )
        self.capacity = check_int(capacity, "capacity", minimum=2)
        self._buffer = np.empty(self.capacity)
        self.size = 0
        self.n_seen = 0

    def update(self, scores) -> float | None:
        """Fold new scores into the window; returns the fresh threshold
        (or ``None`` until at least two scores have been seen)."""
        scores = as_float_array(scores, "scores").ravel()
        for chunk_start in range(0, scores.size, self.capacity):
            chunk = scores[chunk_start : chunk_start + self.capacity]
            start = self.n_seen % self.capacity
            stop = start + chunk.size
            if stop <= self.capacity:
                self._buffer[start:stop] = chunk
            else:
                split = self.capacity - start
                self._buffer[start:] = chunk[:split]
                self._buffer[: stop - self.capacity] = chunk[split:]
            self.n_seen += chunk.size
            self.size = min(self.n_seen, self.capacity)
        return self.value if self.ready else None

    @property
    def ready(self) -> bool:
        """Whether enough scores arrived to define a quantile (>= 2)."""
        return self.size >= 2

    @property
    def value(self) -> float:
        """The current threshold (``1 - contamination`` window quantile)."""
        if not self.ready:
            raise ValidationError(
                "need at least 2 scores before a quantile threshold exists"
            )
        return float(
            np.quantile(self._buffer[: self.size], 1.0 - self.contamination)
        )

    def learned(self) -> LearnedThreshold:
        """Freeze the current state as a :class:`LearnedThreshold`."""
        return LearnedThreshold(
            value=self.value, criterion="quantile", objective=self.contamination
        )

    def window_scores(self) -> np.ndarray:
        """The retained score window as a multiset (a copy, slot order).

        The quantile is order-free, so trackers over disjoint round-robin
        substreams merge exactly: the union of their windows *is* the
        trailing global window, and ``np.quantile`` over the concatenated
        multisets equals the single-tracker value bit for bit.  The
        federated threshold of the sharded streaming tier reads shard
        trackers through this accessor.
        """
        return self._buffer[: self.size].copy()

    def reset(self) -> None:
        """Forget the buffered scores (drift re-reference hook)."""
        self.size = 0
        self.n_seen = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StreamingQuantileThreshold(contamination={self.contamination}, "
            f"capacity={self.capacity}, size={self.size})"
        )


def threshold_from_quantile(scores, contamination: float) -> LearnedThreshold:
    """Unsupervised threshold: flag the top ``contamination`` fraction.

    Delegates to :class:`StreamingQuantileThreshold` sized to the input,
    so the batch result is bit-identical to a streaming tracker that has
    seen exactly these scores.
    """
    scores = as_float_array(scores, "scores")
    if scores.ndim != 1 or scores.size < 2:
        raise ValidationError("need at least 2 one-dimensional scores")
    tracker = StreamingQuantileThreshold(contamination, capacity=scores.size)
    tracker.update(scores)
    return tracker.learned()
