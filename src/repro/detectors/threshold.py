"""Learning an outlyingness threshold from labelled scores (paper Sec. 4.2).

The detection methods output a *score* per sample; deployment needs a
*decision*.  The paper notes that when some labels are available, "the
labels can be combined with their corresponding outlyingness scores to
learn an outlyingness threshold that can best discriminate outliers
from inliers.  Such a threshold can be learned from the ROC as well as
an imbalanced classification algorithm … in a one dimensional manner."

This module implements both routes:

* :func:`threshold_from_roc` — the ROC route: pick the threshold
  maximizing Youden's J statistic (TPR − FPR), the standard optimal
  operating point of the ROC curve;
* :func:`threshold_max_f1` — maximize F1 over all score cut points
  (the imbalanced-classification view where precision/recall matter);
* :func:`threshold_from_quantile` — the unsupervised fallback: flag the
  top ``contamination`` fraction of *unlabelled* scores.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.evaluation.metrics import f1_at_threshold, roc_curve
from repro.exceptions import ValidationError
from repro.utils.validation import as_float_array, check_in_range

__all__ = [
    "LearnedThreshold",
    "threshold_from_roc",
    "threshold_max_f1",
    "threshold_from_quantile",
]


@dataclass(frozen=True)
class LearnedThreshold:
    """A decision threshold on the outlyingness-score scale.

    Attributes
    ----------
    value:
        The cut point: samples with ``score > value`` are flagged.
    criterion:
        Name of the selection criterion.
    objective:
        The criterion's value at the chosen threshold (e.g. Youden's J).
    """

    value: float
    criterion: str
    objective: float

    def predict(self, scores) -> np.ndarray:
        """Label scores: ``-1`` outlier (score above threshold), ``+1`` inlier."""
        scores = as_float_array(scores, "scores")
        return np.where(scores > self.value, -1, 1)


def _midpoint_thresholds(scores: np.ndarray) -> np.ndarray:
    """Candidate cut points: midpoints between consecutive distinct scores."""
    distinct = np.unique(scores)
    if distinct.shape[0] < 2:
        return distinct
    return 0.5 * (distinct[:-1] + distinct[1:])


def threshold_from_roc(scores, labels) -> LearnedThreshold:
    """Threshold at the ROC's Youden-optimal operating point.

    Maximizes ``J = TPR - FPR``; the returned threshold is placed at the
    midpoint between the boundary scores so that unseen scores equal to
    a training score are classified consistently.
    """
    fpr, tpr, thresholds = roc_curve(scores, labels)
    j_statistic = tpr - fpr
    best = int(np.argmax(j_statistic))
    if best == 0:
        # Degenerate: the empty-positive corner is optimal; fall back to
        # the largest finite threshold.
        best = 1
    # thresholds[best] is the lowest score still flagged; nudge just below.
    cut = float(thresholds[best])
    scores = as_float_array(scores, "scores")
    lower = scores[scores < cut]
    value = 0.5 * (cut + float(lower.max())) if lower.size else cut - 1e-12
    return LearnedThreshold(
        value=value, criterion="youden", objective=float(j_statistic[best])
    )


def threshold_max_f1(scores, labels) -> LearnedThreshold:
    """Threshold maximizing F1 over all midpoint cut candidates."""
    scores = as_float_array(scores, "scores")
    if np.unique(scores).size < 2:
        raise ValidationError("cannot learn a threshold from a single distinct score")
    candidates = _midpoint_thresholds(scores)
    best_value, best_f1 = None, -1.0
    for candidate in candidates:
        f1 = f1_at_threshold(scores, labels, candidate)
        if f1 > best_f1:
            best_value, best_f1 = float(candidate), f1
    return LearnedThreshold(value=best_value, criterion="f1", objective=best_f1)


def threshold_from_quantile(scores, contamination: float) -> LearnedThreshold:
    """Unsupervised threshold: flag the top ``contamination`` fraction."""
    scores = as_float_array(scores, "scores")
    if scores.ndim != 1 or scores.size < 2:
        raise ValidationError("need at least 2 one-dimensional scores")
    contamination = check_in_range(
        contamination, 0.0, 0.5, "contamination", inclusive=(False, False)
    )
    value = float(np.quantile(scores, 1.0 - contamination))
    return LearnedThreshold(value=value, criterion="quantile", objective=contamination)
