"""Isolation Forest (Liu, Ting & Zhou, ICDM 2008) — from scratch.

Anomalies are "few and different", hence easier to *isolate* by random
axis-aligned splits: the expected path length from the root of a random
partitioning tree to an anomaly is shorter than to an inlier.  The
anomaly score of a point with average path length ``E[h(x)]`` over the
forest is::

    s(x) = 2 ** ( -E[h(x)] / c(psi) )

where ``psi`` is the subsample size used to grow each tree and ``c(n)``
is the average path length of an unsuccessful BST search — the
normalizer from the original paper::

    c(n) = 2 H(n-1) - 2 (n-1) / n,   H(i) ~ ln(i) + Euler gamma

Scores live in (0, 1); 0.5 is the classical "no anomaly" reference.
Trees are stored in flat arrays and scoring is vectorized per tree.
"""

from __future__ import annotations

import numpy as np

from repro.detectors.base import OutlierDetector
from repro.exceptions import ValidationError
from repro.utils.random import check_random_state
from repro.utils.validation import check_int

__all__ = ["IsolationForest", "average_path_length"]

_EULER_GAMMA = 0.5772156649015329


def average_path_length(n_samples) -> np.ndarray:
    """The ``c(n)`` normalizer of Liu et al. (vectorized over ``n``)."""
    n = np.atleast_1d(np.asarray(n_samples, dtype=np.float64))
    out = np.zeros_like(n)
    big = n > 2
    out[big] = 2.0 * (np.log(n[big] - 1.0) + _EULER_GAMMA) - 2.0 * (n[big] - 1.0) / n[big]
    out[n == 2] = 1.0
    # n <= 1 -> 0 (cannot split further)
    if np.isscalar(n_samples):
        return out[0]
    return out


class _IsolationTree:
    """One isolation tree stored in flat arrays for vectorized traversal."""

    __slots__ = ("feature", "split", "left", "right", "size", "depth", "_n_nodes")

    def __init__(self, X: np.ndarray, height_limit: int, rng: np.random.Generator):
        # Pre-allocate generously: a tree on psi points has < 2*psi nodes.
        capacity = max(2 * X.shape[0], 8)
        self.feature = np.full(capacity, -1, dtype=np.int64)
        self.split = np.zeros(capacity, dtype=np.float64)
        self.left = np.full(capacity, -1, dtype=np.int64)
        self.right = np.full(capacity, -1, dtype=np.int64)
        self.size = np.zeros(capacity, dtype=np.int64)
        self.depth = np.zeros(capacity, dtype=np.int64)
        self._n_nodes = 0
        self._build(X, np.arange(X.shape[0]), 0, height_limit, rng)
        # Trim to the used prefix.
        used = slice(0, self._n_nodes)
        self.feature = self.feature[used]
        self.split = self.split[used]
        self.left = self.left[used]
        self.right = self.right[used]
        self.size = self.size[used]
        self.depth = self.depth[used]

    def _new_node(self, depth: int, size: int) -> int:
        idx = self._n_nodes
        if idx >= self.feature.shape[0]:
            for name in ("feature", "left", "right"):
                setattr(self, name, np.concatenate((getattr(self, name), np.full(idx, -1, dtype=np.int64))))
            self.split = np.concatenate((self.split, np.zeros(idx)))
            self.size = np.concatenate((self.size, np.zeros(idx, dtype=np.int64)))
            self.depth = np.concatenate((self.depth, np.zeros(idx, dtype=np.int64)))
        self._n_nodes += 1
        self.depth[idx] = depth
        self.size[idx] = size
        return idx

    def _build(self, X, rows, depth, height_limit, rng) -> int:
        node = self._new_node(depth, rows.shape[0])
        if depth >= height_limit or rows.shape[0] <= 1:
            return node
        sub = X[rows]
        lo = sub.min(axis=0)
        hi = sub.max(axis=0)
        candidates = np.nonzero(hi > lo)[0]
        if candidates.size == 0:
            # All points identical: external node.
            return node
        feat = int(rng.choice(candidates))
        threshold = rng.uniform(lo[feat], hi[feat])
        mask = sub[:, feat] < threshold
        left_rows = rows[mask]
        right_rows = rows[~mask]
        if left_rows.size == 0 or right_rows.size == 0:
            # Degenerate draw (threshold at the boundary): stop here.
            return node
        self.feature[node] = feat
        self.split[node] = threshold
        self.left[node] = self._build(X, left_rows, depth + 1, height_limit, rng)
        self.right[node] = self._build(X, right_rows, depth + 1, height_limit, rng)
        return node

    @classmethod
    def from_arrays(cls, feature, split, left, right, size, depth) -> "_IsolationTree":
        """Rebuild a tree from its flat node arrays (state import path)."""
        tree = cls.__new__(cls)
        tree.feature = np.asarray(feature, dtype=np.int64)
        tree.split = np.asarray(split, dtype=np.float64)
        tree.left = np.asarray(left, dtype=np.int64)
        tree.right = np.asarray(right, dtype=np.int64)
        tree.size = np.asarray(size, dtype=np.int64)
        tree.depth = np.asarray(depth, dtype=np.int64)
        tree._n_nodes = tree.feature.shape[0]
        return tree

    def path_length(self, X: np.ndarray) -> np.ndarray:
        """Adjusted path length ``h(x)`` for each row of ``X``."""
        n = X.shape[0]
        current = np.zeros(n, dtype=np.int64)
        active = np.arange(n)
        while active.size:
            nodes = current[active]
            internal = self.feature[nodes] >= 0
            if not internal.any():
                break
            act = active[internal]
            nodes = current[act]
            go_left = X[act, self.feature[nodes]] < self.split[nodes]
            current[act[go_left]] = self.left[nodes[go_left]]
            current[act[~go_left]] = self.right[nodes[~go_left]]
            active = act
        leaves = current
        return self.depth[leaves] + average_path_length(self.size[leaves])


class IsolationForest(OutlierDetector):
    """Isolation Forest outlier detector.

    Parameters
    ----------
    n_estimators:
        Number of isolation trees (paper default 100).
    max_samples:
        Subsample size ``psi`` per tree (paper default 256); capped at
        the training-set size.
    contamination:
        Optional expected outlier fraction used only to set the
        prediction threshold; scores do not depend on it.
    random_state:
        Seed / generator controlling subsampling and splits.
    """

    def __init__(
        self,
        n_estimators: int = 100,
        max_samples: int = 256,
        contamination: float | None = None,
        random_state=None,
    ):
        super().__init__(contamination=contamination)
        self.n_estimators = check_int(n_estimators, "n_estimators", minimum=1)
        self.max_samples = check_int(max_samples, "max_samples", minimum=2)
        self.random_state = random_state
        self._trees: list[_IsolationTree] = []
        self._psi: int | None = None

    def _fit(self, X: np.ndarray) -> None:
        rng = check_random_state(self.random_state)
        n = X.shape[0]
        psi = min(self.max_samples, n)
        if psi < 2:
            raise ValidationError("IsolationForest needs at least 2 training rows")
        height_limit = int(np.ceil(np.log2(psi)))
        self._psi = psi
        self._trees = []
        for _ in range(self.n_estimators):
            rows = rng.choice(n, size=psi, replace=False)
            self._trees.append(_IsolationTree(X[rows], height_limit, rng))

    def _score(self, X: np.ndarray) -> np.ndarray:
        depths = np.zeros(X.shape[0])
        for tree in self._trees:
            depths += tree.path_length(X)
        mean_depth = depths / len(self._trees)
        return 2.0 ** (-mean_depth / average_path_length(self._psi))

    def _natural_threshold(self) -> float:
        # Scores above 0.5 indicate shorter-than-random isolation paths.
        return 0.5

    def _export_config(self) -> dict:
        config = super()._export_config()
        config["n_estimators"] = self.n_estimators
        config["max_samples"] = self.max_samples
        # Generators are not JSON-able; the seed only matters at fit time,
        # and a restored forest is already grown, so persist it only when
        # it is a plain int.
        if isinstance(self.random_state, (int, np.integer)):
            config["random_state"] = int(self.random_state)
        return config

    def _export_fitted(self) -> dict:
        offsets = np.cumsum([0] + [t.feature.shape[0] for t in self._trees])
        concat = lambda name: np.concatenate([getattr(t, name) for t in self._trees])
        return {
            "psi": self._psi,
            "node_offsets": offsets.astype(np.int64),
            "node_feature": concat("feature"),
            "node_split": concat("split"),
            "node_left": concat("left"),
            "node_right": concat("right"),
            "node_size": concat("size"),
            "node_depth": concat("depth"),
        }

    def _import_fitted(self, state: dict) -> None:
        offsets = np.asarray(state["node_offsets"], dtype=np.int64)
        self._psi = int(state["psi"])
        self._trees = [
            _IsolationTree.from_arrays(
                *(state[f"node_{name}"][offsets[i] : offsets[i + 1]]
                  for name in ("feature", "split", "left", "right", "size", "depth"))
            )
            for i in range(offsets.shape[0] - 1)
        ]
