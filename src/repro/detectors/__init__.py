"""Multivariate outlier detection algorithms (paper Sec. 3–4).

The paper applies Isolation Forest and One-Class SVM to the mapped
curves; both are implemented here from their original papers (no
scikit-learn dependency), alongside extension detectors used in the
ablation benches.
"""

from repro.detectors.base import OutlierDetector
from repro.detectors.iforest import IsolationForest, average_path_length
from repro.detectors.kernels import (
    linear_kernel,
    make_kernel,
    polynomial_kernel,
    rbf_kernel,
    resolve_gamma,
    sigmoid_kernel,
)
from repro.detectors.knn import KNNDetector
from repro.detectors.lof import LocalOutlierFactor
from repro.detectors.mahalanobis import MahalanobisDetector
from repro.detectors.ocsvm import OneClassSVM, smo_solve
from repro.detectors.threshold import (
    LearnedThreshold,
    threshold_from_quantile,
    threshold_from_roc,
    threshold_max_f1,
)

__all__ = [
    "IsolationForest",
    "LearnedThreshold",
    "threshold_from_quantile",
    "threshold_from_roc",
    "threshold_max_f1",
    "KNNDetector",
    "LocalOutlierFactor",
    "MahalanobisDetector",
    "OneClassSVM",
    "OutlierDetector",
    "average_path_length",
    "linear_kernel",
    "make_kernel",
    "polynomial_kernel",
    "rbf_kernel",
    "resolve_gamma",
    "sigmoid_kernel",
    "smo_solve",
]
