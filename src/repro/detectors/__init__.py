"""Multivariate outlier detection algorithms (paper Sec. 3–4).

The paper applies Isolation Forest and One-Class SVM to the mapped
curves; both are implemented here from their original papers (no
scikit-learn dependency), alongside extension detectors used in the
ablation benches.
"""

from repro.detectors.base import OutlierDetector
from repro.detectors.iforest import IsolationForest, average_path_length
from repro.detectors.kernels import (
    linear_kernel,
    make_kernel,
    polynomial_kernel,
    rbf_kernel,
    resolve_gamma,
    sigmoid_kernel,
)
from repro.detectors.knn import KNNDetector
from repro.detectors.lof import LocalOutlierFactor
from repro.detectors.mahalanobis import MahalanobisDetector
from repro.detectors.ocsvm import OneClassSVM, smo_solve
from repro.detectors.threshold import (
    LearnedThreshold,
    threshold_from_quantile,
    threshold_from_roc,
    threshold_max_f1,
)

#: Concrete detector classes addressable by short name (CLI, serving
#: manifests) or by class name (the ``"type"`` field of
#: :meth:`OutlierDetector.export_state`).
DETECTOR_REGISTRY: dict[str, type[OutlierDetector]] = {
    "iforest": IsolationForest,
    "ocsvm": OneClassSVM,
    "knn": KNNDetector,
    "lof": LocalOutlierFactor,
    "mahalanobis": MahalanobisDetector,
}


def make_detector(name: str, **kwargs) -> OutlierDetector:
    """Instantiate an unfitted detector by registry name."""
    from repro.exceptions import ValidationError

    cls = DETECTOR_REGISTRY.get(name)
    if cls is None:
        raise ValidationError(
            f"unknown detector {name!r}; known: {sorted(DETECTOR_REGISTRY)}"
        )
    return cls(**kwargs)


def detector_from_state(state: dict) -> OutlierDetector:
    """Rebuild a fitted detector from :meth:`OutlierDetector.export_state`.

    Dispatches on ``state["type"]`` (a class name) and delegates to the
    class's :meth:`~OutlierDetector.from_state`.
    """
    from repro.exceptions import ValidationError

    if not isinstance(state, dict) or "type" not in state:
        raise ValidationError(
            f"detector state must be a dict with a 'type' key, got {type(state).__name__}"
        )
    by_class = {cls.__name__: cls for cls in DETECTOR_REGISTRY.values()}
    cls = by_class.get(state["type"])
    if cls is None:
        raise ValidationError(
            f"unknown detector type {state['type']!r}; known: {sorted(by_class)}"
        )
    return cls.from_state(state)


__all__ = [
    "DETECTOR_REGISTRY",
    "detector_from_state",
    "make_detector",
    "IsolationForest",
    "LearnedThreshold",
    "threshold_from_quantile",
    "threshold_from_roc",
    "threshold_max_f1",
    "KNNDetector",
    "LocalOutlierFactor",
    "MahalanobisDetector",
    "OneClassSVM",
    "OutlierDetector",
    "average_path_length",
    "linear_kernel",
    "make_kernel",
    "polynomial_kernel",
    "rbf_kernel",
    "resolve_gamma",
    "sigmoid_kernel",
    "smo_solve",
]
